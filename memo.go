package koopmancrc

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// MemoSnapshotVersion is the schema version stamped into every exported
// MemoSnapshot. RestoreMemos rejects snapshots from a newer schema, so
// a corpus baked by a future release fails loudly instead of being
// half-understood.
const MemoSnapshotVersion = 1

// BoundMemo is the serialized knowledge about one pattern weight: an
// exact first-length boundary once discovered, or the tightest
// proven-clear prefix and cheapest known hit until then. It mirrors the
// Analyzer's internal bound memo, and the same monotonicity holds — a
// BoundMemo only ever states facts about the polynomial, so merging two
// of them is a pure union of knowledge.
type BoundMemo struct {
	Weight int `json:"weight"`
	// ClearTo: no weight-Weight pattern exists at any data length <=
	// ClearTo.
	ClearTo int `json:"clear_to,omitempty"`
	// HitAt, when non-zero, is a data length with a known pattern;
	// Witness backs it.
	HitAt   int   `json:"hit_at,omitempty"`
	Witness []int `json:"witness,omitempty"`
	// First is the exact smallest data length with a pattern, valid only
	// when Exact is set.
	First int  `json:"first,omitempty"`
	Exact bool `json:"exact,omitempty"`
	// ElapsedNS is the engine cost of the exact boundary search, carried
	// so a restored session reports the original discovery cost.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
}

// WeightMemo is one exact undetectable-pattern count: Count weight-W
// patterns at data length DataLen.
type WeightMemo struct {
	Weight  int    `json:"weight"`
	DataLen int    `json:"data_len"`
	Count   uint64 `json:"count"`
}

// MemoSnapshot is the portable form of an Analyzer session's memoized
// knowledge — weight boundaries with witnesses, exact pattern counts,
// and the engine work it cost to acquire them — keyed by the polynomial
// it describes. Snapshots are what the persistent analysis corpus
// stores: bake once, restore into any number of future sessions, and
// every restored fact is answered with zero engine probes.
//
// Everything in a snapshot is a mathematical fact about the polynomial,
// independent of the session options (MaxHD, limits) under which it was
// discovered, which is why snapshots merge and restore across sessions
// configured differently.
type MemoSnapshot struct {
	Version int `json:"version"`
	Width   int `json:"width"`
	// Poly is the polynomial in Koopman notation.
	Poly uint64 `json:"poly"`
	// Probes is the cumulative engine work the knowledge cost to build,
	// summed across the sessions (and restores) that contributed to it —
	// the "cost to rebuild from scratch" a serving tier weighs when
	// deciding what to keep.
	Probes  int64        `json:"probes,omitempty"`
	Bounds  []BoundMemo  `json:"bounds,omitempty"`
	Weights []WeightMemo `json:"weights,omitempty"`
}

// Entries counts the discrete facts the snapshot holds.
func (m *MemoSnapshot) Entries() int { return len(m.Bounds) + len(m.Weights) }

// Clone deep-copies the snapshot so callers can mutate (merge into) it
// without aliasing a shared store entry.
func (m *MemoSnapshot) Clone() *MemoSnapshot {
	out := &MemoSnapshot{Version: m.Version, Width: m.Width, Poly: m.Poly, Probes: m.Probes}
	if m.Bounds != nil {
		out.Bounds = make([]BoundMemo, len(m.Bounds))
		for i, b := range m.Bounds {
			b.Witness = copyPositions(b.Witness)
			out.Bounds[i] = b
		}
	}
	out.Weights = append([]WeightMemo(nil), m.Weights...)
	return out
}

// Validate checks the snapshot's internal consistency: version and
// width in range, weights sane, exact boundaries with a positive first
// length, and no clear-prefix contradicting a known hit. A snapshot
// read from a CRC-protected corpus can only fail this through a
// software bug or schema drift, never silent disk corruption — but a
// restore must still refuse it, because a corrupt memo would be served
// as truth.
func (m *MemoSnapshot) Validate() error {
	if m == nil {
		return fmt.Errorf("koopmancrc: nil memo snapshot")
	}
	if m.Version < 1 || m.Version > MemoSnapshotVersion {
		return fmt.Errorf("koopmancrc: memo snapshot version %d not supported (have %d)", m.Version, MemoSnapshotVersion)
	}
	if m.Width < 2 || m.Width > 64 {
		return fmt.Errorf("koopmancrc: memo snapshot width %d out of range", m.Width)
	}
	if m.Probes < 0 {
		return fmt.Errorf("koopmancrc: memo snapshot has negative probe count %d", m.Probes)
	}
	for i, b := range m.Bounds {
		if b.Weight < 2 {
			return fmt.Errorf("koopmancrc: bounds[%d]: weight %d below 2", i, b.Weight)
		}
		if b.ClearTo < 0 || b.HitAt < 0 || b.First < 0 {
			return fmt.Errorf("koopmancrc: bounds[%d] (weight %d): negative length", i, b.Weight)
		}
		if b.Exact && b.First < 1 {
			return fmt.Errorf("koopmancrc: bounds[%d] (weight %d): exact boundary without a first length", i, b.Weight)
		}
		hit := b.HitAt
		if b.Exact {
			hit = b.First
		}
		if hit != 0 && b.ClearTo >= hit {
			return fmt.Errorf("koopmancrc: bounds[%d] (weight %d): clear to %d contradicts hit at %d", i, b.Weight, b.ClearTo, hit)
		}
		if len(b.Witness) != 0 && len(b.Witness) != b.Weight {
			return fmt.Errorf("koopmancrc: bounds[%d] (weight %d): witness has %d positions", i, b.Weight, len(b.Witness))
		}
	}
	for i, w := range m.Weights {
		if w.Weight < 2 || w.Weight > 4 {
			return fmt.Errorf("koopmancrc: weights[%d]: weight %d outside 2..4", i, w.Weight)
		}
		if w.DataLen < 1 {
			return fmt.Errorf("koopmancrc: weights[%d]: data length %d below 1", i, w.DataLen)
		}
	}
	return nil
}

// mergeBoundMemo folds o into b, keeping the strictly larger body of
// knowledge on every axis. Exact knowledge is complete and wins; below
// it the clear prefix only grows and the known hit only shrinks.
func mergeBoundMemo(b, o BoundMemo) BoundMemo {
	if b.Exact {
		return b
	}
	if o.Exact {
		if b.ClearTo > o.ClearTo {
			o.ClearTo = b.ClearTo
		}
		return o
	}
	if o.ClearTo > b.ClearTo {
		b.ClearTo = o.ClearTo
	}
	if o.HitAt != 0 && (b.HitAt == 0 || o.HitAt < b.HitAt) {
		b.HitAt, b.Witness = o.HitAt, o.Witness
	}
	return b
}

// Merge unions another snapshot's knowledge into m. Both must describe
// the same polynomial and both must already be valid; the result is
// valid by construction because every fact is monotone. Probes keeps
// the larger contributor — the snapshots may share ancestry, so summing
// would double-count the same discoveries.
func (m *MemoSnapshot) Merge(o *MemoSnapshot) error {
	if m.Width != o.Width || m.Poly != o.Poly {
		return fmt.Errorf("koopmancrc: merging memo snapshots of different polynomials (%d:%#x vs %d:%#x)",
			m.Width, m.Poly, o.Width, o.Poly)
	}
	byWeight := make(map[int]BoundMemo, len(m.Bounds))
	for _, b := range m.Bounds {
		byWeight[b.Weight] = b
	}
	for _, b := range o.Bounds {
		if have, ok := byWeight[b.Weight]; ok {
			byWeight[b.Weight] = mergeBoundMemo(have, b)
		} else {
			byWeight[b.Weight] = b
		}
	}
	m.Bounds = sortedBounds(byWeight)
	counts := make(map[[2]int]uint64, len(m.Weights))
	for _, w := range m.Weights {
		counts[[2]int{w.Weight, w.DataLen}] = w.Count
	}
	for _, w := range o.Weights {
		counts[[2]int{w.Weight, w.DataLen}] = w.Count
	}
	m.Weights = sortedWeights(counts)
	if o.Probes > m.Probes {
		m.Probes = o.Probes
	}
	if o.Version > m.Version {
		m.Version = o.Version
	}
	return nil
}

// sortedBounds flattens a weight-keyed bound map into the snapshot's
// deterministic ascending-weight order.
func sortedBounds(byWeight map[int]BoundMemo) []BoundMemo {
	if len(byWeight) == 0 {
		return nil // keep empty as nil so JSON round trips preserve equality
	}
	out := make([]BoundMemo, 0, len(byWeight))
	for _, b := range byWeight {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Weight < out[j].Weight })
	return out
}

// sortedWeights flattens a (weight, length)-keyed count map into the
// snapshot's deterministic order.
func sortedWeights(counts map[[2]int]uint64) []WeightMemo {
	if len(counts) == 0 {
		return nil // keep empty as nil so JSON round trips preserve equality
	}
	out := make([]WeightMemo, 0, len(counts))
	for k, v := range counts {
		out = append(out, WeightMemo{Weight: k[0], DataLen: k[1], Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight < out[j].Weight
		}
		return out[i].DataLen < out[j].DataLen
	})
	return out
}

// MemoSnapshot exports the session's memoized knowledge as a portable,
// serializable snapshot — the write half of the persistent analysis
// corpus. Like every evaluation method it waits for the session (a
// long-running scan delays the export, honouring ctx), so the snapshot
// is always a consistent point-in-time view.
func (a *Analyzer) MemoSnapshot(ctx context.Context) (*MemoSnapshot, error) {
	if a.p.IsZero() {
		return nil, fmt.Errorf("koopmancrc: analyzer has no polynomial (zero value)")
	}
	var snap *MemoSnapshot
	err := a.run(ctx, func() error {
		snap = a.memoSnapshotLocked()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// memoSnapshotLocked builds the snapshot from the live memo (sem held).
func (a *Analyzer) memoSnapshotLocked() *MemoSnapshot {
	snap := &MemoSnapshot{
		Version: MemoSnapshotVersion,
		Width:   a.p.Width(),
		Poly:    a.p.Koopman(),
		Probes:  a.restoredProbes,
	}
	if a.ev != nil {
		snap.Probes += a.ev.Stats.Probes
	}
	byWeight := make(map[int]BoundMemo, len(a.bounds))
	for w, b := range a.bounds {
		if b.clearTo == 0 && b.hitAt == 0 && !b.exact {
			continue // empty placeholder, no knowledge to export
		}
		byWeight[w] = BoundMemo{
			Weight:    w,
			ClearTo:   b.clearTo,
			HitAt:     b.hitAt,
			Witness:   copyPositions(b.witness),
			First:     b.first,
			Exact:     b.exact,
			ElapsedNS: b.elapsed.Nanoseconds(),
		}
	}
	snap.Bounds = sortedBounds(byWeight)
	counts := make(map[[2]int]uint64, len(a.wts))
	for k, v := range a.wts {
		counts[k] = v
	}
	snap.Weights = sortedWeights(counts)
	return snap
}

// RestoreMemos merges a snapshot's knowledge into the session — the
// read half of the persistent analysis corpus. The snapshot must
// describe the session's polynomial and pass Validate; on any error the
// session is left untouched. Restoring never discards knowledge the
// session already has: live facts and snapshot facts are unioned under
// the same monotonicity rules every query obeys, so a restore is safe
// at any point in a session's life, not just on a fresh one.
//
// Queries answered from restored knowledge perform zero engine probes,
// which is what makes a corpus-backed serving tier observably cheap:
// MemoStats.Probes stays 0 until a query actually exceeds the snapshot.
func (a *Analyzer) RestoreMemos(ctx context.Context, snap *MemoSnapshot) error {
	if err := snap.Validate(); err != nil {
		return err
	}
	if a.p.IsZero() {
		return fmt.Errorf("koopmancrc: analyzer has no polynomial (zero value)")
	}
	if snap.Width != a.p.Width() || snap.Poly != a.p.Koopman() {
		return fmt.Errorf("koopmancrc: memo snapshot is for %d:%#x, session analyzes %d:%#x",
			snap.Width, snap.Poly, a.p.Width(), a.p.Koopman())
	}
	return a.run(ctx, func() error {
		for _, m := range snap.Bounds {
			b := a.boundLocked(m.Weight)
			merged := mergeBoundMemo(BoundMemo{
				Weight:    m.Weight,
				ClearTo:   b.clearTo,
				HitAt:     b.hitAt,
				Witness:   b.witness,
				First:     b.first,
				Exact:     b.exact,
				ElapsedNS: b.elapsed.Nanoseconds(),
			}, m)
			b.clearTo = merged.ClearTo
			b.hitAt = merged.HitAt
			b.witness = copyPositions(merged.Witness)
			b.first = merged.First
			b.exact = merged.Exact
			b.elapsed = time.Duration(merged.ElapsedNS)
			if b.exact {
				b.hitAt = b.first
				if b.first-1 > b.clearTo {
					b.clearTo = b.first - 1
				}
			}
		}
		for _, w := range snap.Weights {
			key := [2]int{w.Weight, w.DataLen}
			if _, ok := a.wts[key]; !ok {
				a.wts[key] = w.Count
			}
		}
		if snap.Probes > a.restoredProbes {
			a.restoredProbes = snap.Probes
		}
		return nil
	})
}

package koopmancrc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAnalyzerMatchesDeprecatedWrappers pins the compatibility contract:
// the deprecated free functions are thin wrappers, so a session must
// produce exactly their answers.
func TestAnalyzerMatchesDeprecatedWrappers(t *testing.T) {
	ctx := context.Background()
	an := NewAnalyzer(IEEE8023, WithMaxHD(8))

	hd, exact, err := an.HDAt(ctx, 400)
	if err != nil || hd != 5 || !exact {
		t.Errorf("HDAt(400) = %d, %v, %v; want 5, true", hd, exact, err)
	}
	w4, err := an.Weight(ctx, 4, 2975)
	if err != nil || w4 != 1 {
		t.Errorf("Weight(4, 2975) = %d, %v; want 1", w4, err)
	}
	wit, found, err := an.Witness(ctx, 4, 2975)
	if err != nil || !found || len(wit) != 4 {
		t.Errorf("Witness(4, 2975) = %v, %v, %v", wit, found, err)
	}
	rep, err := an.Evaluate(ctx, 512)
	if err != nil {
		t.Fatal(err)
	}
	old, err := Evaluate(IEEE8023, 512, &EvaluateOptions{MaxHD: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bands) != len(old.Bands) {
		t.Fatalf("bands %v vs wrapper %v", rep.Bands, old.Bands)
	}
	for i := range rep.Bands {
		if rep.Bands[i] != old.Bands[i] {
			t.Errorf("band %d: %v vs wrapper %v", i, rep.Bands[i], old.Bands[i])
		}
	}
	if rep.Shape != "{32}" || rep.ParityBit {
		t.Errorf("shape %q parity %v", rep.Shape, rep.ParityBit)
	}
}

// TestAnalyzerMemoizesBoundaries asserts the session's core promise:
// repeating a query does no new search work.
func TestAnalyzerMemoizesBoundaries(t *testing.T) {
	ctx := context.Background()
	an := NewAnalyzer(IEEE8023, WithMaxHD(6))
	if _, err := an.Evaluate(ctx, 512); err != nil {
		t.Fatal(err)
	}
	baseline := an.Stats()
	if baseline.Probes == 0 && baseline.StoreOps == 0 {
		t.Fatal("first evaluation did no measurable work; stats are broken")
	}
	if _, err := an.Evaluate(ctx, 512); err != nil {
		t.Fatal(err)
	}
	if _, _, err := an.HDAt(ctx, 400); err != nil {
		t.Fatal(err)
	}
	if _, _, err := an.MaxLenAtHD(ctx, 6, 512); err != nil {
		t.Fatal(err)
	}
	if got := an.Stats(); got != baseline {
		t.Errorf("overlapping re-queries did new work: %+v -> %+v", baseline, got)
	}
	// A longer horizon legitimately needs more work.
	if _, err := an.Evaluate(ctx, 1024); err != nil {
		t.Fatal(err)
	}
	if got := an.Stats(); got == baseline {
		t.Error("extending the horizon should have cost something")
	}
}

// TestAnalyzerEvaluateGrowsConsistently checks that a profile grown in
// steps equals one computed in a single call.
func TestAnalyzerEvaluateGrowsConsistently(t *testing.T) {
	ctx := context.Background()
	grown := NewAnalyzer(CastagnoliISCSI, WithMaxHD(6))
	for _, l := range []int{64, 256, 1024} {
		if _, err := grown.Evaluate(ctx, l); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := grown.Evaluate(ctx, 1024)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewAnalyzer(CastagnoliISCSI, WithMaxHD(6)).Evaluate(ctx, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bands) != len(direct.Bands) {
		t.Fatalf("grown bands %v, direct %v", rep.Bands, direct.Bands)
	}
	for i := range rep.Bands {
		if rep.Bands[i] != direct.Bands[i] {
			t.Errorf("band %d: grown %v, direct %v", i, rep.Bands[i], direct.Bands[i])
		}
	}
}

// TestAnalyzerMemoStats exercises the memo-size accessor the serving
// pool reads: counts grow with discovered knowledge, probes match the
// work counters, and a warm repeat adds nothing.
func TestAnalyzerMemoStats(t *testing.T) {
	ctx := context.Background()
	an := NewAnalyzer(CastagnoliISCSI, WithMaxHD(6))
	if m := an.MemoStats(); m != (MemoStats{}) {
		t.Fatalf("fresh session memo %+v", m)
	}
	if _, err := an.Evaluate(ctx, 512); err != nil {
		t.Fatal(err)
	}
	m1 := an.MemoStats()
	if m1.BoundWeights == 0 || m1.ExactBoundaries == 0 || m1.Probes == 0 {
		t.Fatalf("post-evaluate memo %+v", m1)
	}
	if m1.ExactBoundaries > m1.BoundWeights {
		t.Fatalf("more exact boundaries than bound weights: %+v", m1)
	}
	if got := an.Stats().Probes; got != m1.Probes {
		t.Fatalf("MemoStats probes %d != Stats probes %d", m1.Probes, got)
	}
	if _, err := an.Weight(ctx, 4, 256); err != nil {
		t.Fatal(err)
	}
	m2 := an.MemoStats()
	if m2.WeightEntries != 1 {
		t.Fatalf("weight memo entries %+v", m2)
	}
	// Warm repeat: no new knowledge, no new probes.
	if _, err := an.Evaluate(ctx, 512); err != nil {
		t.Fatal(err)
	}
	if m3 := an.MemoStats(); m3 != m2 {
		t.Fatalf("warm repeat changed the memo: %+v -> %+v", m2, m3)
	}
}

// TestAnalyzerContextCancel checks both the fast path (already-cancelled
// context) and mid-scan cancellation of an expensive evaluation.
func TestAnalyzerContextCancel(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	an := NewAnalyzer(Koopman32K)
	if _, err := an.Evaluate(cancelled, 4096); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Evaluate returned %v, want context.Canceled", err)
	}

	// Mid-evaluation cancellation, deterministically: the progress hook
	// pulls the plug the moment the expensive weight-4 scan starts, and
	// the engine's cancel poll must surface it as ctx.Err().
	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	start := time.Now()
	mid := NewAnalyzer(Koopman32K, WithMaxHD(4), WithProgress(func(p Progress) {
		if p.Weight == 4 {
			cancel2()
		}
	}))
	if _, err := mid.Evaluate(ctx, 131072); !errors.Is(err, context.Canceled) {
		t.Errorf("Evaluate returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v; the cancel hook is not being polled", elapsed)
	}
}

// TestAnalyzerProgressAndLimits exercises the newly public evaluation
// knobs: progress events must flow, and a tiny probe budget must surface
// ErrBudgetExceeded.
func TestAnalyzerProgressAndLimits(t *testing.T) {
	ctx := context.Background()
	var events int
	var lastWeight int
	an := NewAnalyzer(IEEE8023, WithMaxHD(5), WithProgress(func(p Progress) {
		events++
		lastWeight = p.Weight
		if p.Poly != IEEE8023 {
			t.Errorf("progress for %v, want %v", p.Poly, IEEE8023)
		}
	}))
	if _, err := an.Evaluate(ctx, 512); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("no progress events delivered")
	}
	if lastWeight < 2 {
		t.Errorf("last progress weight %d", lastWeight)
	}

	tight := NewAnalyzer(IEEE8023, WithLimits(Limits{MaxProbes: 10}))
	_, _, err := tight.HDAt(ctx, 2048)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("tiny budget returned %v, want ErrBudgetExceeded", err)
	}
}

// TestAnalyzerConcurrentUse runs overlapping queries from many
// goroutines; the session serializes them and every answer must match.
func TestAnalyzerConcurrentUse(t *testing.T) {
	ctx := context.Background()
	an := NewAnalyzer(CastagnoliISCSI, WithMaxHD(6))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				hd, _, err := an.HDAt(ctx, 400)
				if err != nil || hd != 6 {
					t.Errorf("HDAt = %d, %v; want 6", hd, err)
					return
				}
				if _, err := an.Evaluate(ctx, 512); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSelectAnalyzersReusesSessions asserts the acceptance criterion
// directly: a second selection over the same sessions does zero new
// boundary work.
func TestSelectAnalyzersReusesSessions(t *testing.T) {
	ctx := context.Background()
	candidates := []Polynomial{CastagnoliISCSI, IEEE8023}
	analyzers := make([]*Analyzer, len(candidates))
	for i, p := range candidates {
		analyzers[i] = NewAnalyzer(p, WithMaxHD(5))
	}
	first, err := SelectAnalyzers(ctx, analyzers, 1024, WithMaxHD(5))
	if err != nil {
		t.Fatal(err)
	}
	var baseline []EvalStats
	for _, a := range analyzers {
		baseline = append(baseline, a.Stats())
	}
	second, err := SelectAnalyzers(ctx, analyzers, 1024, WithMaxHD(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range analyzers {
		if got := a.Stats(); got != baseline[i] {
			t.Errorf("candidate %v recomputed boundaries: %+v -> %+v", a.Poly(), baseline[i], got)
		}
	}
	if len(first) != len(second) {
		t.Fatal("rankings differ in length")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("ranking drifted: %+v vs %+v", first[i], second[i])
		}
	}
	// And the ranking agrees with the deprecated wrapper.
	old, err := SelectPolynomial(candidates, 1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range old {
		if old[i] != first[i] {
			t.Errorf("wrapper disagrees at %d: %+v vs %+v", i, old[i], first[i])
		}
	}
}

// TestWitnessIsACopy: callers may mutate returned witnesses without
// corrupting the session's memo.
func TestWitnessIsACopy(t *testing.T) {
	ctx := context.Background()
	an := NewAnalyzer(IEEE8023)
	wit, found, err := an.Witness(ctx, 4, 2975)
	if err != nil || !found {
		t.Fatalf("witness: %v %v", found, err)
	}
	want := wit[0]
	wit[0] = -999
	again, _, err := an.Witness(ctx, 4, 2975)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != want {
		t.Errorf("mutating a returned witness corrupted the memo: %v", again)
	}
}

// TestDeprecatedShimsDegenerateMaxHD pins the pre-v1 behaviour for
// maxHD < 2: an instant "at least maxHD+1" answer, not a silent
// substitution of the default depth.
func TestDeprecatedShimsDegenerateMaxHD(t *testing.T) {
	for _, maxHD := range []int{0, 1} {
		hd, exact, err := HammingDistanceAt(IEEE8023, 100, maxHD)
		if err != nil || exact || hd != maxHD+1 {
			t.Errorf("HammingDistanceAt(maxHD=%d) = %d, %v, %v; want %d, false",
				maxHD, hd, exact, err, maxHD+1)
		}
	}
	// SelectPolynomial with maxHD=1 ranks everything at HD 2 with
	// coverage bounded only by the weight-2 boundary, as before.
	sel, err := SelectPolynomial([]Polynomial{IEEE8023}, 100, 1)
	if err != nil || sel[0].HD != 2 || sel[0].CoverageAtHD != 400 {
		t.Errorf("SelectPolynomial(maxHD=1) = %+v, %v; want HD=2 coverage=400", sel, err)
	}
	// Profiling with a degenerate depth is rejected, not defaulted.
	if _, err := NewAnalyzer(IEEE8023, WithMaxHD(1)).Evaluate(context.Background(), 64); err == nil {
		t.Error("Evaluate with MaxHD < 2 should error")
	}
}

func TestSelectValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Select(ctx, nil, 100); err == nil {
		t.Error("empty candidates should error")
	}
	if _, err := SelectAnalyzers(ctx, nil, 100); err == nil {
		t.Error("empty analyzers should error")
	}
	if _, err := SelectAnalyzers(ctx, []*Analyzer{NewAnalyzer(IEEE8023)}, 0); err == nil {
		t.Error("zero dataLen should error")
	}
	if _, err := NewAnalyzer(Polynomial{}).Evaluate(ctx, 64); err == nil {
		t.Error("zero-value polynomial should error, not panic")
	}
}

// TestAnalyzerSpans checks the span hook fires per engine phase with the
// triggering call's context attached.
func TestAnalyzerSpans(t *testing.T) {
	type ctxKey struct{}
	var mu sync.Mutex
	var spans []Span
	var sawCtxVal bool
	an := NewAnalyzer(IEEE8023, WithMaxHD(6), WithSpans(func(ctx context.Context, s Span) {
		mu.Lock()
		defer mu.Unlock()
		spans = append(spans, s)
		if v, _ := ctx.Value(ctxKey{}).(string); v == "rid-1" {
			sawCtxVal = true
		}
	}))
	ctx := context.WithValue(context.Background(), ctxKey{}, "rid-1")
	if _, err := an.Evaluate(ctx, 300); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	if !sawCtxVal {
		t.Error("span hook did not receive the caller's context")
	}
	phases := map[string]bool{}
	for _, s := range spans {
		if s.Poly != IEEE8023 {
			t.Errorf("span poly %v, want IEEE8023", s.Poly)
		}
		phases[s.Phase] = true
	}
	if !phases["w3_scan"] && !phases["w4_scan"] && !phases["boundary"] {
		t.Errorf("no scan phase spans; saw %v", phases)
	}
}

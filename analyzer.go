package koopmancrc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"koopmancrc/internal/hamming"
)

// ErrBudgetExceeded reports that an evaluation exceeded its configured
// probe or memory budget (see WithLimits); results are not available at
// the queried length. Test with errors.Is.
var ErrBudgetExceeded = hamming.ErrBudgetExceeded

// DefaultMaxHD is the largest Hamming distance classified when WithMaxHD
// is not given (the depth of the paper's Table 1 columns).
const DefaultMaxHD = 13

// Limits exposes the evaluation resource budgets of the underlying
// Hamming-distance engine. Zero fields keep the defaults.
type Limits struct {
	// MaxProbes bounds the probe work of a single existence query;
	// queries beyond it fail with ErrBudgetExceeded (default 2^62,
	// effectively unbounded).
	MaxProbes int64
	// MaxStoreEntries is the threshold above which meet-in-the-middle
	// joins switch from a compact positional map to the whole-space
	// bitmap (default 1<<20 entries).
	MaxStoreEntries int
	// MaxPairBuffer bounds the pair-syndrome buffer used by exact
	// weight-4 counting, in 4-byte entries (default 300<<20).
	MaxPairBuffer int
}

// Progress is a live report from a long-running evaluation, delivered to
// the WithProgress hook: the pattern weight being searched, the data-word
// length of the active existence query and the analyzer's cumulative
// probe count. Hooks are called from the evaluating goroutine while the
// session is busy: they must not block and must not call back into the
// Analyzer (doing so would deadlock the session).
type Progress struct {
	Poly    Polynomial
	Weight  int
	DataLen int
	Probes  int64
}

// Span reports one completed engine phase of an evaluation — a boundary
// search, a dedicated W3/W4 scan, one side of a meet-in-the-middle join,
// or an exact weight count — with its wall duration and the probe/store
// work it performed. Phase is one of the hamming.Span* constants
// ("boundary", "w3_scan", "w4_scan", "mitm_store", "mitm_probe",
// "w2_count", "w3_count", "w4_count"). Like Progress hooks, span hooks
// run on the evaluating goroutine and must not block or call back into
// the Analyzer.
type Span struct {
	Poly     Polynomial
	Phase    string
	Weight   int
	DataLen  int
	Duration time.Duration
	Probes   int64
}

// EvalStats is a snapshot of an Analyzer's accumulated work counters.
type EvalStats struct {
	Probes      int64 // subset syndromes tested
	StoreOps    int64 // subset syndromes inserted
	EarlyExits  int64 // searches terminated by the first undetectable error
	Resolutions int64 // bitmap hits re-resolved into explicit witnesses
}

// MemoStats sizes the knowledge an Analyzer session has memoized and the
// engine work spent acquiring it, letting a pool of sessions report the
// cost and value of each one (and evict the cheap-to-rebuild ones first).
type MemoStats struct {
	BoundWeights    int   // pattern weights with any boundary knowledge
	ExactBoundaries int   // weights whose first-length boundary is exact
	WeightEntries   int   // exact (weight, length) count memo entries
	Probes          int64 // engine probes spent across the session's lifetime
}

// Option configures an Analyzer or a Select call.
type Option func(*options)

type options struct {
	maxHD    int
	maxHDSet bool // WithMaxHD was passed explicitly
	progress func(Progress)
	spans    func(context.Context, Span)
	limits   Limits
}

func newOptions(opts []Option) options {
	o := options{maxHD: DefaultMaxHD}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithMaxHD bounds the classified Hamming distances: evaluations stop at
// weight hd and report "at least hd+1" beyond it (default DefaultMaxHD).
// Values below 2 classify nothing — every length reports at least hd+1 —
// matching the engine's semantics; Evaluate rejects them since a profile
// of zero weights is meaningless.
func WithMaxHD(hd int) Option {
	return func(o *options) {
		o.maxHD = hd
		o.maxHDSet = true
	}
}

// WithProgress installs a hook receiving Progress reports during long
// evaluations.
func WithProgress(fn func(Progress)) Option {
	return func(o *options) { o.progress = fn }
}

// WithSpans installs a hook receiving a Span as each engine phase of an
// evaluation completes. The context is the one passed to the Analyzer
// method that triggered the phase (carrying, e.g., a request ID), so
// spans can be attributed to the caller that paid for the work.
func WithSpans(fn func(ctx context.Context, s Span)) Option {
	return func(o *options) { o.spans = fn }
}

// WithLimits overrides the engine resource budgets; zero fields keep
// their defaults.
func WithLimits(l Limits) Option {
	return func(o *options) {
		if l.MaxProbes > 0 {
			o.limits.MaxProbes = l.MaxProbes
		}
		if l.MaxStoreEntries > 0 {
			o.limits.MaxStoreEntries = l.MaxStoreEntries
		}
		if l.MaxPairBuffer > 0 {
			o.limits.MaxPairBuffer = l.MaxPairBuffer
		}
	}
}

// bound is the memoized knowledge about one pattern weight: an exact
// first-length boundary once discovered, or the tightest proven-clear
// prefix and cheapest known hit until then. All fields are monotone —
// queries only ever extend knowledge — which is what makes every
// Analyzer method safe to answer from the memo.
type bound struct {
	clearTo int   // no weight-w pattern at any data length <= clearTo
	hitAt   int   // 0 if unknown; else a data length with a known pattern
	witness []int // pattern positions backing hitAt (or first, once exact)
	first   int   // exact smallest data length with a pattern, if exact
	exact   bool
	elapsed time.Duration // cost of the exact boundary search
}

// Analyzer is a long-lived, concurrency-safe evaluation session for one
// polynomial. It owns the syndrome tables, period and factorization
// facts, and memoizes every weight boundary and existence answer it
// computes, so repeated or overlapping queries — Evaluate then HDAt then
// Select over the same candidate — stop re-paying the boundary scans
// that dominate CRC analysis.
//
// All long-running methods are context-first: cancellation is polled
// inside the engine's scan loops and surfaces as ctx.Err().
type Analyzer struct {
	p   Polynomial
	opt options

	// sem serializes evaluation work (capacity-1 channel rather than a
	// mutex so waiting callers can honour their context's deadline).
	// Everything below it is guarded by holding sem.
	sem    chan struct{}
	ev     *hamming.Evaluator
	ctx    context.Context // context of the in-flight call, read by the cancel hook
	bounds map[int]*bound
	wts    map[[2]int]uint64 // exact weight memo, keyed by {w, dataLen}
	// restoredProbes is the engine work the session's restored knowledge
	// originally cost (see RestoreMemos); exported snapshots carry it
	// forward so "cost to rebuild" survives restarts. It is NOT part of
	// MemoStats.Probes, which reports only this session's live engine
	// work — a restored session answering from the corpus shows 0.
	restoredProbes int64

	// factsMu guards the cheap algebraic memos and the stats snapshot,
	// so Shape/Period/Stats never wait behind a long evaluation.
	factsMu   sync.Mutex
	stats     EvalStats // snapshot taken as each evaluation call returns
	memo      MemoStats // snapshot taken alongside stats
	shape     string
	shapeErr  error
	shapeSet  bool
	period    uint64
	periodErr error
	periodSet bool
}

// NewAnalyzer returns an evaluation session for the polynomial. Options
// fix the session's classification depth, progress hook and resource
// limits.
func NewAnalyzer(p Polynomial, opts ...Option) *Analyzer {
	return &Analyzer{
		p:      p,
		opt:    newOptions(opts),
		sem:    make(chan struct{}, 1),
		bounds: make(map[int]*bound),
		wts:    make(map[[2]int]uint64),
	}
}

// Poly returns the polynomial under analysis.
func (a *Analyzer) Poly() Polynomial { return a.p }

// evaluatorLocked lazily builds the underlying engine (sem held).
func (a *Analyzer) evaluatorLocked() (*hamming.Evaluator, error) {
	if a.ev != nil {
		return a.ev, nil
	}
	if a.p.IsZero() {
		return nil, fmt.Errorf("koopmancrc: analyzer has no polynomial (zero value)")
	}
	hopts := []hamming.Option{
		hamming.WithCancel(func() bool { return a.ctx != nil && a.ctx.Err() != nil }),
	}
	if a.opt.limits.MaxProbes > 0 {
		hopts = append(hopts, hamming.WithMaxProbes(a.opt.limits.MaxProbes))
	}
	if a.opt.limits.MaxStoreEntries > 0 {
		hopts = append(hopts, hamming.WithMaxStoreEntries(a.opt.limits.MaxStoreEntries))
	}
	if a.opt.limits.MaxPairBuffer > 0 {
		hopts = append(hopts, hamming.WithMaxPairBuffer(a.opt.limits.MaxPairBuffer))
	}
	if fn := a.opt.progress; fn != nil {
		p := a.p
		hopts = append(hopts, hamming.WithProgress(func(ev hamming.Event) {
			fn(Progress{Poly: p, Weight: ev.Weight, DataLen: ev.DataLen, Probes: ev.Probes})
		}))
	}
	if fn := a.opt.spans; fn != nil {
		p := a.p
		hopts = append(hopts, hamming.WithSpanHook(func(ev hamming.SpanEvent) {
			// a.ctx is the in-flight call's context (sem held while the
			// engine runs), letting spans carry the caller's request ID.
			ctx := a.ctx
			if ctx == nil {
				ctx = context.Background()
			}
			fn(ctx, Span{
				Poly:     p,
				Phase:    ev.Phase,
				Weight:   ev.Weight,
				DataLen:  ev.DataLen,
				Duration: ev.Duration,
				Probes:   ev.Probes,
			})
		}))
	}
	a.ev = hamming.New(a.p, hopts...)
	return a.ev, nil
}

// mapErr converts the engine's cancellation sentinel into the context's
// error, the convention of context-first APIs.
func mapErr(ctx context.Context, err error) error {
	if err != nil && errors.Is(err, hamming.ErrCanceled) && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// boundLocked returns (creating if needed) the memo entry for weight w.
func (a *Analyzer) boundLocked(w int) *bound {
	b := a.bounds[w]
	if b == nil {
		b = &bound{}
		a.bounds[w] = b
	}
	return b
}

// existsLocked answers "does a weight-w pattern fit at dataLen?" from the
// memo when possible, running (and memoizing) an existence query
// otherwise (sem held, a.ctx set).
func (a *Analyzer) existsLocked(w, dataLen int) ([]int, bool, error) {
	if w == 1 {
		return nil, false, nil // a single flipped bit is always detected
	}
	b := a.boundLocked(w)
	switch {
	case b.exact && b.first <= dataLen:
		return b.witness, true, nil
	case b.exact: // first > dataLen
		return nil, false, nil
	case b.hitAt != 0 && b.hitAt <= dataLen:
		return b.witness, true, nil
	case b.clearTo >= dataLen:
		return nil, false, nil
	}
	ev, err := a.evaluatorLocked()
	if err != nil {
		return nil, false, err
	}
	wit, found, err := ev.Exists(w, dataLen)
	if err != nil {
		return nil, false, err
	}
	if found {
		if b.hitAt == 0 || dataLen < b.hitAt {
			b.hitAt, b.witness = dataLen, wit
		}
	} else if dataLen > b.clearTo {
		b.clearTo = dataLen
	}
	return wit, found, nil
}

// boundaryLocked answers "what is the smallest data length with a
// weight-w pattern, searching up to maxLen?" from the memo when
// possible, running (and memoizing) the exact boundary search otherwise
// (sem held, a.ctx set).
func (a *Analyzer) boundaryLocked(w, maxLen int) (*bound, bool, error) {
	b := a.boundLocked(w)
	if b.exact {
		return b, b.first <= maxLen, nil
	}
	if w == 1 || b.clearTo >= maxLen {
		return b, false, nil
	}
	ev, err := a.evaluatorLocked()
	if err != nil {
		return nil, false, err
	}
	start := time.Now()
	first, wit, found, err := ev.FirstDataLen(w, maxLen)
	if err != nil {
		return nil, false, err
	}
	if found {
		b.exact, b.first, b.hitAt, b.witness = true, first, first, wit
		b.elapsed = time.Since(start)
		if first-1 > b.clearTo {
			b.clearTo = first - 1
		}
		return b, true, nil
	}
	if maxLen > b.clearTo {
		b.clearTo = maxLen
	}
	return b, false, nil
}

// run executes fn with the session locked and the context wired into the
// engine's cancellation hook. Waiting for the session itself honours the
// context: a caller with a deadline fails fast instead of queueing
// behind a long evaluation.
func (a *Analyzer) run(ctx context.Context, fn func() error) error {
	select {
	case a.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-a.sem }()
	a.ctx = ctx
	defer func() { a.ctx = nil }()
	err := mapErr(ctx, fn())
	memo := MemoStats{BoundWeights: len(a.bounds), WeightEntries: len(a.wts)}
	for _, b := range a.bounds {
		if b.exact {
			memo.ExactBoundaries++
		}
	}
	var s hamming.Stats
	if a.ev != nil {
		s = a.ev.Stats
	}
	memo.Probes = s.Probes
	a.factsMu.Lock()
	a.stats = EvalStats{
		Probes:      s.Probes,
		StoreOps:    s.StoreOps,
		EarlyExits:  s.EarlyExits,
		Resolutions: s.Resolutions,
	}
	a.memo = memo
	a.factsMu.Unlock()
	return err
}

// Evaluate computes the full HD-vs-length profile of the polynomial up
// to maxLen data bits — one column of the paper's Table 1. Boundaries
// already discovered by earlier calls (any method, any length) are
// reused, so growing a profile or re-evaluating after HDAt/Select costs
// only the not-yet-known weights.
func (a *Analyzer) Evaluate(ctx context.Context, maxLen int) (*Report, error) {
	if maxLen < 1 {
		return nil, fmt.Errorf("koopmancrc: invalid maxLen %d", maxLen)
	}
	maxHD := a.opt.maxHD
	if maxHD < 2 {
		return nil, fmt.Errorf("koopmancrc: cannot profile with MaxHD %d (need >= 2)", maxHD)
	}
	var ts []hamming.Transition
	err := a.run(ctx, func() error {
		limit := maxLen
		for w := 2; w <= maxHD && limit >= 1; w++ {
			b, found, err := a.boundaryLocked(w, limit)
			if err != nil {
				return fmt.Errorf("evaluate %v: %w", a.p, err)
			}
			if !found {
				continue
			}
			ts = append(ts, hamming.Transition{
				W: w, FirstLen: b.first, Witness: copyPositions(b.witness), Elapsed: b.elapsed,
			})
			if b.first-1 < limit {
				limit = b.first - 1
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	shape, err := a.Shape()
	if err != nil {
		return nil, err
	}
	period, _ := a.Period() // period can exceed uint64-practical ranges only on error
	return &Report{
		Poly:        a.p,
		MaxLen:      maxLen,
		Bands:       hamming.BandsFromTransitions(ts, maxLen, maxHD),
		Transitions: ts,
		Shape:       shape,
		Period:      period,
		ParityBit:   a.ParityBit(),
	}, nil
}

// HDAt returns the exact Hamming distance at one data-word length,
// searching weights up to the session's MaxHD. exact is false when every
// weight up to MaxHD came back clean — the true HD is then at least the
// returned value.
func (a *Analyzer) HDAt(ctx context.Context, dataLen int) (hd int, exact bool, err error) {
	if dataLen < 1 {
		return 0, false, fmt.Errorf("koopmancrc: invalid data length %d", dataLen)
	}
	err = a.run(ctx, func() error {
		for w := 2; w <= a.opt.maxHD; w++ {
			_, found, err := a.existsLocked(w, dataLen)
			if err != nil {
				return err
			}
			if found {
				hd, exact = w, true
				return nil
			}
		}
		hd, exact = a.opt.maxHD+1, false
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	return hd, exact, nil
}

// MaxLenAtHD returns the largest data-word length, searching up to
// horizon, at which the polynomial still guarantees at least the given
// Hamming distance — the paper's figure of merit ("HD=6 up to 16,360
// bits"). ok is false when even length 1 falls short.
func (a *Analyzer) MaxLenAtHD(ctx context.Context, hd, horizon int) (maxLen int, ok bool, err error) {
	if hd < 2 {
		return 0, false, fmt.Errorf("koopmancrc: invalid HD %d", hd)
	}
	if horizon < 1 {
		return 0, false, fmt.Errorf("koopmancrc: invalid horizon %d", horizon)
	}
	err = a.run(ctx, func() error {
		limit := horizon
		for w := 2; w < hd && limit >= 1; w++ {
			b, found, err := a.boundaryLocked(w, limit)
			if err != nil {
				return err
			}
			if found && b.first-1 < limit {
				limit = b.first - 1
			}
		}
		maxLen, ok = limit, limit >= 1
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	return maxLen, ok, nil
}

// Weight returns the exact number of undetectable w-bit error patterns
// at a data-word length (w <= 4), e.g. 223059 for the 802.3 polynomial
// with w=4 at 12112 bits. Results are memoized per (w, length).
func (a *Analyzer) Weight(ctx context.Context, w, dataLen int) (count uint64, err error) {
	err = a.run(ctx, func() error {
		key := [2]int{w, dataLen}
		if v, ok := a.wts[key]; ok {
			count = v
			return nil
		}
		ev, err := a.evaluatorLocked()
		if err != nil {
			return err
		}
		v, err := ev.Weight(w, dataLen)
		if err != nil {
			return err
		}
		a.wts[key] = v
		count = v
		return nil
	})
	if err != nil {
		return 0, err
	}
	return count, nil
}

// Witness returns one undetectable error pattern of exactly w bits at
// the given length, as codeword bit positions (position 0 = last
// transmitted bit). Witnesses discovered by any earlier query are
// reused.
func (a *Analyzer) Witness(ctx context.Context, w, dataLen int) (positions []int, found bool, err error) {
	if dataLen < 1 {
		return nil, false, fmt.Errorf("koopmancrc: invalid data length %d", dataLen)
	}
	if w < 1 {
		return nil, false, fmt.Errorf("koopmancrc: invalid weight %d", w)
	}
	err = a.run(ctx, func() error {
		positions, found, err = a.existsLocked(w, dataLen)
		return err
	})
	if err != nil {
		return nil, false, err
	}
	// The memo retains its own array; callers get a copy they may sort
	// or mutate without corrupting the session.
	return copyPositions(positions), found, nil
}

// copyPositions clones a witness position slice leaving nil as nil.
func copyPositions(w []int) []int {
	if w == nil {
		return nil
	}
	return append([]int(nil), w...)
}

// selectionLocked scores the polynomial for protecting messages of the
// given length, sharing one shrinking-limit boundary scan between the HD
// determination and the coverage exploration (sem held, a.ctx set).
// It reproduces the deprecated SelectPolynomial's answers exactly while
// doing strictly less work: the old path paid a separate existence query
// per weight before re-running every boundary search.
func (a *Analyzer) selectionLocked(dataLen, horizon, maxHD int) (Selection, error) {
	limit := horizon
	for w := 2; w <= maxHD+1; w++ {
		b, found, err := a.boundaryLocked(w, limit)
		if err != nil {
			return Selection{}, fmt.Errorf("select: %v: %w", a.p, err)
		}
		if found && b.first <= dataLen {
			return Selection{Poly: a.p, HD: w, CoverageAtHD: limit}, nil
		}
		if found && b.first-1 < limit {
			limit = b.first - 1
		}
	}
	return Selection{Poly: a.p, HD: maxHD + 1, CoverageAtHD: limit}, nil
}

// Coverage scores the polynomial at one data-word length: its HD there
// and how far that HD persists (explored up to four times the length,
// like Select).
func (a *Analyzer) Coverage(ctx context.Context, dataLen int) (Selection, error) {
	if dataLen < 1 {
		return Selection{}, fmt.Errorf("koopmancrc: invalid data length %d", dataLen)
	}
	var sel Selection
	err := a.run(ctx, func() error {
		var err error
		sel, err = a.selectionLocked(dataLen, 4*dataLen, a.opt.maxHD)
		return err
	})
	if err != nil {
		return Selection{}, err
	}
	return sel, nil
}

// Period returns ord(x) mod G — the codeword length at which 2-bit
// errors first become undetectable is Period()+1. It never waits behind
// an in-flight evaluation.
func (a *Analyzer) Period() (uint64, error) {
	a.factsMu.Lock()
	defer a.factsMu.Unlock()
	if !a.periodSet {
		a.period, a.periodErr = a.p.Period()
		a.periodSet = true
	}
	return a.period, a.periodErr
}

// Shape returns the paper's factorization-class notation, e.g.
// "{1,3,28}". It never waits behind an in-flight evaluation.
func (a *Analyzer) Shape() (string, error) {
	a.factsMu.Lock()
	defer a.factsMu.Unlock()
	if !a.shapeSet {
		a.shape, a.shapeErr = a.p.Shape()
		a.shapeSet = true
	}
	return a.shape, a.shapeErr
}

// ParityBit reports whether (x+1) divides the generator: all odd-weight
// errors are then caught.
func (a *Analyzer) ParityBit() bool { return !a.p.IsZero() && a.p.DivisibleByXPlus1() }

// Stats snapshots the work counters accumulated across the session. The
// snapshot is refreshed as each evaluation call completes (not live
// mid-scan), so monitoring never waits behind an in-flight evaluation.
func (a *Analyzer) Stats() EvalStats {
	a.factsMu.Lock()
	defer a.factsMu.Unlock()
	return a.stats
}

// MemoStats sizes the session's memo: how many weight boundaries and
// exact counts it holds, and the engine probes spent building them. Like
// Stats, the snapshot is refreshed as each evaluation call completes, so
// monitoring never waits behind an in-flight evaluation.
func (a *Analyzer) MemoStats() MemoStats {
	a.factsMu.Lock()
	defer a.factsMu.Unlock()
	return a.memo
}

// Select ranks candidate polynomials for protecting messages of the
// given data-word length: highest HD at that length first, ties broken
// by how far the HD extends (the paper's argument for 0xBA0DC66B over
// 0x8F6E37A0 at iSCSI lengths). Coverage is explored up to four times
// the target length; a candidate whose HD persists beyond that horizon
// reports CoverageAtHD equal to the horizon.
//
// Each candidate gets a fresh Analyzer configured by opts. To reuse
// sessions — and the boundary scans they have already paid for — across
// repeated selections or alongside Evaluate, use SelectAnalyzers.
func Select(ctx context.Context, candidates []Polynomial, dataLen int, opts ...Option) ([]Selection, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("koopmancrc: no candidates")
	}
	analyzers := make([]*Analyzer, len(candidates))
	for i, p := range candidates {
		analyzers[i] = NewAnalyzer(p, opts...)
	}
	return SelectAnalyzers(ctx, analyzers, dataLen, opts...)
}

// SelectAnalyzers is Select over caller-owned evaluation sessions: every
// weight boundary a session has already discovered (through Evaluate,
// HDAt, Coverage or a previous selection) is reused rather than
// recomputed, and the boundaries this call discovers stay cached in the
// sessions for later queries.
//
// Each session is scanned to its own configured MaxHD; an explicit
// WithMaxHD here overrides that for the ranking. Other options
// (WithProgress, WithLimits) cannot be retrofitted onto pre-built
// sessions — configure them at NewAnalyzer — and are ignored here.
func SelectAnalyzers(ctx context.Context, analyzers []*Analyzer, dataLen int, opts ...Option) ([]Selection, error) {
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("koopmancrc: no analyzers")
	}
	if dataLen < 1 {
		return nil, fmt.Errorf("koopmancrc: invalid data length %d", dataLen)
	}
	o := newOptions(opts)
	horizon := 4 * dataLen
	out := make([]Selection, 0, len(analyzers))
	for _, a := range analyzers {
		maxHD := a.opt.maxHD
		if o.maxHDSet {
			maxHD = o.maxHD
		}
		var sel Selection
		err := a.run(ctx, func() error {
			var err error
			sel, err = a.selectionLocked(dataLen, horizon, maxHD)
			return err
		})
		if err != nil {
			return nil, err
		}
		out = append(out, sel)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].HD != out[j].HD {
			return out[i].HD > out[j].HD
		}
		return out[i].CoverageAtHD > out[j].CoverageAtHD
	})
	return out, nil
}

package koopmancrc

// One benchmark per paper artifact (Table 1, Figure 1, Table 2, the §3/§4.1
// weight computations) plus ablations of every §4.1 search optimisation:
// early bailout, FCS-bits-first ordering, filtering with increasing
// lengths, and the filter-don't-count principle. EXPERIMENTS.md interprets
// the numbers against the paper's reported shapes (who is faster, by
// roughly what factor).

import (
	"context"
	"fmt"
	"hash/crc32"
	"math/rand/v2"
	"runtime"
	"testing"

	"koopmancrc/internal/core"
	"koopmancrc/internal/crc"
	"koopmancrc/internal/hamming"
	"koopmancrc/internal/paperdata"
	"koopmancrc/internal/poly"
)

// BenchmarkTable1ProfileColumn regenerates one Table 1 column per named
// polynomial at a reduced 2048-bit range (the full 131072-bit run lives in
// internal/paperdata's TestReproduceTable1 and cmd/crctables).
func BenchmarkTable1ProfileColumn(b *testing.B) {
	for _, col := range poly.Table1() {
		b.Run(col.P.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev := hamming.New(col.P)
				if _, err := ev.Profile(2048, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1FullColumnBA0DC66B is the paper's headline column at full
// range: HD=6 to 16360 and HD=4 to 114663 bits. One iteration performs the
// evaluation that §4.1 reports as "approximately 19 days" (confirming
// 16360) plus the rest of the column.
func BenchmarkTable1FullColumnBA0DC66B(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := hamming.New(poly.Koopman32K)
		prof, err := ev.Profile(paperdata.MaxComputedBits, 13)
		if err != nil {
			b.Fatal(err)
		}
		if l, _ := prof.MaxLenAtHD(6); l != 16360 {
			b.Fatalf("HD=6 bound %d", l)
		}
	}
}

// BenchmarkFigure1Series regenerates the Figure 1 step series (all eight
// polynomials) over a 1024-bit range.
func BenchmarkFigure1Series(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, col := range poly.Table1() {
			ev := hamming.New(col.P)
			prof, err := ev.Profile(1024, 10)
			if err != nil {
				b.Fatal(err)
			}
			for l := 64; l <= 1024; l *= 2 {
				if _, _, ok := prof.HDAtLen(l); !ok {
					b.Fatal("missing band")
				}
			}
		}
	}
}

// BenchmarkTable2CensusWidth12 is the scaled Table 2 analog: exhaustive
// search of a complete design space with census by factorization class.
func BenchmarkTable2CensusWidth12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Search(context.Background(), SearchConfig{
			Width: 12, MinHD: 5, Lengths: []int{16, 48},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Survivors) == 0 {
			b.Fatal("no survivors")
		}
	}
}

// BenchmarkWeightsW4MTU computes the §3 exact weight W4 = 223059 of the
// 802.3 polynomial at MTU length.
func BenchmarkWeightsW4MTU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := hamming.New(poly.IEEE8023)
		w4, err := ev.Weight(4, paperdata.MTUDataBits)
		if err != nil {
			b.Fatal(err)
		}
		if w4 != 223059 {
			b.Fatalf("W4 = %d", w4)
		}
	}
}

// BenchmarkWeightsW4Breakpoint computes W4(2975) = 1, the §4.1 example.
func BenchmarkWeightsW4Breakpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := hamming.New(poly.IEEE8023)
		if w4, err := ev.Weight(4, 2975); err != nil || w4 != 1 {
			b.Fatalf("W4 = %d, %v", w4, err)
		}
	}
}

// The §4.1 worked example: locating the 802.3 HD=5-to-4 breakpoint. The
// paper compares a binary subdivision anchored at the far end against
// filtering with increasing lengths; the same comparison for the weight-5
// boundary (269 bits) searched inside [1, 16384].
func BenchmarkBreakpointIncreasingLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := hamming.New(poly.IEEE8023)
		n, _, found, err := ev.FirstDataLenStrategy(5, 16384, hamming.StrategyIncreasing)
		if err != nil || !found || n != 269 {
			b.Fatalf("boundary %d %v %v", n, found, err)
		}
	}
}

// BenchmarkBreakpointDirect is the baseline: evaluate the full length
// first, then subdivide.
func BenchmarkBreakpointDirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := hamming.New(poly.IEEE8023)
		n, _, found, err := ev.FirstDataLenStrategy(5, 16384, hamming.StrategyDirect)
		if err != nil || !found || n != 269 {
			b.Fatalf("boundary %d %v %v", n, found, err)
		}
	}
}

// Early bailout (§4.1): existence with early exit versus computing the
// exact weight, on the paper-faithful enumeration engine.
func BenchmarkEarlyBailoutExists(b *testing.B) {
	ev := hamming.New(poly.CCITT16)
	for i := 0; i < b.N; i++ {
		if _, found, err := ev.ExistsBrute(4, 64, hamming.OrderLex); err != nil || !found {
			b.Fatalf("%v %v", found, err)
		}
	}
}

// BenchmarkFullWeightNoBailout is the same question answered by full
// weight computation — what early bailout avoids.
func BenchmarkFullWeightNoBailout(b *testing.B) {
	ev := hamming.New(poly.CCITT16)
	for i := 0; i < b.N; i++ {
		w, err := ev.WeightBrute(4, 64)
		if err != nil || w == 0 {
			b.Fatalf("%d %v", w, err)
		}
	}
}

// FCS-bits-first ordering (§4.1): time to the first undetectable pattern
// with and without the heuristic.
func BenchmarkOrderFCSFirst(b *testing.B) {
	ev := hamming.New(poly.CCITT16)
	for i := 0; i < b.N; i++ {
		if _, found, err := ev.ExistsBrute(4, 192, hamming.OrderFCSFirst); err != nil || !found {
			b.Fatalf("%v %v", found, err)
		}
	}
}

// BenchmarkOrderLexicographic is the unordered baseline.
func BenchmarkOrderLexicographic(b *testing.B) {
	ev := hamming.New(poly.CCITT16)
	for i := 0; i < b.N; i++ {
		if _, found, err := ev.ExistsBrute(4, 192, hamming.OrderLex); err != nil || !found {
			b.Fatalf("%v %v", found, err)
		}
	}
}

// Inverse filtering asymmetry (§4.1): rejecting "HD=6 at 16361" via the
// first undetectable weight-4 pattern versus confirming "no weight-5
// pattern at 8192" exactly. The paper's analog: 7.4 seconds versus 19 days
// on 2001 hardware.
func BenchmarkInverseRejectHD6At16361(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := hamming.New(poly.Koopman32K)
		ok, err := ev.MeetsHD(16361, 6)
		if err != nil || ok {
			b.Fatalf("%v %v", ok, err)
		}
	}
}

// BenchmarkInverseConfirmNoW5At8192 pays the full no-early-exit cost.
func BenchmarkInverseConfirmNoW5At8192(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := hamming.New(poly.Koopman32K)
		if _, found, err := ev.Exists(5, 8192); err != nil || found {
			b.Fatalf("%v %v", found, err)
		}
	}
}

// BenchmarkPipelineShardFanout measures the intra-machine worker-pool
// fan-out against the old sequential path on a fixed slice of the
// width-16 space: the sequential RunShard baseline, then Run at 1, 4 and
// GOMAXPROCS workers. The 1-worker case bounds the refactor's overhead
// (it degenerates to RunShard); the others track the multicore speedup
// each dist worker also inherits.
func BenchmarkPipelineShardFanout(b *testing.B) {
	space, err := core.NewSpace(16)
	if err != nil {
		b.Fatal(err)
	}
	filters := []core.Filter{core.HDFilter{
		Lengths: []int{24, 64},
		MinHD:   5,
		Engine:  core.EngineFast,
	}}
	const start, end = 1024, 1024 + 4096
	b.Run("sequential", func(b *testing.B) {
		pl := &core.Pipeline{Space: space, Filters: filters}
		for i := 0; i < b.N; i++ {
			res, err := pl.RunShard(context.Background(), start, end)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Rate(), "polys/s")
		}
	})
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pl := &core.Pipeline{Space: space, Filters: filters, Workers: workers}
			for i := 0; i < b.N; i++ {
				res, err := pl.Run(context.Background(), start, end)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Rate(), "polys/s")
			}
		})
	}
}

// BenchmarkFilterThroughput32 measures the §4.2 metric: 32-bit candidates
// filtered per second for HD>4 at MTU length using the increasing-length
// schedule (the paper sustained ~2 polynomials/s/CPU in 2001). Most
// candidates die at 64 bits, exactly as the schedule intends.
func BenchmarkFilterThroughput32(b *testing.B) {
	space, err := core.NewSpace(32)
	if err != nil {
		b.Fatal(err)
	}
	pl := &core.Pipeline{
		Space: space,
		Filters: []core.Filter{core.HDFilter{
			Lengths: []int{64, 256, 1024, paperdata.MTUDataBits},
			MinHD:   5,
			Engine:  core.EngineFast,
		}},
	}
	rng := rand.New(rand.NewPCG(7, 11))
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		start := rng.Uint64N(space.TotalPolynomials() - 64)
		res, err := pl.Run(context.Background(), start, start+64)
		if err != nil {
			b.Fatal(err)
		}
		count += int(res.Canonical)
	}
	b.ReportMetric(float64(count)/b.Elapsed().Seconds(), "polys/s")
}

// BenchmarkFilterThroughputBrute32 is the same filter run on the
// paper-faithful enumeration engine with FCS-first ordering — the closest
// analog of the paper's actual inner loop (short lengths only; the fast
// engine takes over beyond them).
func BenchmarkFilterThroughputBrute32(b *testing.B) {
	space, err := core.NewSpace(32)
	if err != nil {
		b.Fatal(err)
	}
	pl := &core.Pipeline{
		Space: space,
		Filters: []core.Filter{core.HDFilter{
			Lengths: []int{64, 256},
			MinHD:   5,
			Engine:  core.EngineBruteFCSFirst,
		}},
	}
	rng := rand.New(rand.NewPCG(13, 17))
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		start := rng.Uint64N(space.TotalPolynomials() - 16)
		res, err := pl.Run(context.Background(), start, start+16)
		if err != nil {
			b.Fatal(err)
		}
		count += int(res.Canonical)
	}
	b.ReportMetric(float64(count)/b.Elapsed().Seconds(), "polys/s")
}

// BenchmarkCRCThroughput compares the checksum engines against hash/crc32
// on 64 KiB buffers.
func BenchmarkCRCThroughput(b *testing.B) {
	data := make([]byte, 64<<10)
	rng := rand.New(rand.NewPCG(3, 5))
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	bitwise := crc.NewBitwise(crc.CRC32IEEE)
	table, err := crc.NewTable(crc.CRC32IEEE)
	if err != nil {
		b.Fatal(err)
	}
	slicing, err := crc.NewSlicing8(crc.CRC32IEEE)
	if err != nil {
		b.Fatal(err)
	}
	slicing16, err := crc.NewSlicing16(crc.CRC32IEEE)
	if err != nil {
		b.Fatal(err)
	}
	chorba, err := crc.NewChorba(crc.CRC32IEEE)
	if err != nil {
		b.Fatal(err)
	}
	hardware, err := crc.NewHardware(crc.CRC32IEEE)
	if err != nil {
		b.Fatal(err)
	}
	stdTab := crc32.MakeTable(crc32.IEEE)
	want := crc32.Checksum(data, stdTab)
	engines := []struct {
		name string
		fn   func() uint32
	}{
		{"bitwise", func() uint32 { return bitwise.Checksum(data) }},
		{"table", func() uint32 { return table.Checksum(data) }},
		{"slicing8", func() uint32 { return slicing.Checksum(data) }},
		{"slicing16", func() uint32 { return slicing16.Checksum(data) }},
		{"chorba", func() uint32 { return chorba.Checksum(data) }},
		{"hardware", func() uint32 { return hardware.Checksum(data) }},
		{"stdlib", func() uint32 { return crc32.Checksum(data, stdTab) }},
	}
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if e.fn() != want {
					b.Fatal("checksum mismatch")
				}
			}
		})
	}
}

// BenchmarkSelectSession is the v1-API acceptance benchmark: ranking the
// paper's §4.3 contenders at the iSCSI 512-byte storage-block length
// (4496 data bits) through cached Analyzer sessions versus N independent
// SelectPolynomial calls. The per-call path re-pays every boundary scan
// on every invocation; the session path pays once and answers every
// repeat from the memo — the probes/op metric (work actually done by the
// Hamming engine) makes the difference visible even at -benchtime=1x.
func BenchmarkSelectSession(b *testing.B) {
	candidates := []Polynomial{IEEE8023, CastagnoliISCSI, Koopman32K}
	const dataLen = 4496 // iSCSI 512-byte block (paper §4.3)
	const maxHD = 6

	b.Run("independent-calls", func(b *testing.B) {
		// The pre-v1 workflow: SelectPolynomial builds throwaway state
		// per call, which is exactly a fresh session per candidate per
		// call — instrumented here so the discarded work is countable.
		var probes int64
		for i := 0; i < b.N; i++ {
			for _, p := range candidates {
				a := NewAnalyzer(p, WithMaxHD(maxHD))
				if _, err := SelectAnalyzers(context.Background(), []*Analyzer{a}, dataLen, WithMaxHD(maxHD)); err != nil {
					b.Fatal(err)
				}
				probes += a.Stats().Probes
			}
		}
		b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
	})
	b.Run("cached-sessions", func(b *testing.B) {
		analyzers := make([]*Analyzer, len(candidates))
		for i, p := range candidates {
			analyzers[i] = NewAnalyzer(p, WithMaxHD(maxHD))
		}
		for i := 0; i < b.N; i++ {
			if _, err := SelectAnalyzers(context.Background(), analyzers, dataLen, WithMaxHD(maxHD)); err != nil {
				b.Fatal(err)
			}
		}
		var probes int64
		for _, a := range analyzers {
			probes += a.Stats().Probes
		}
		b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
	})
}

// BenchmarkPeriodComputation times the algebraic period machinery
// (factorization + order), which backs every weight-2 boundary.
func BenchmarkPeriodComputation(b *testing.B) {
	cols := poly.Table1()
	for i := 0; i < b.N; i++ {
		p := cols[i%len(cols)].P
		if _, err := p.Period(); err != nil {
			b.Fatal(err)
		}
	}
}

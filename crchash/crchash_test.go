package crchash_test

import (
	"hash/crc32"
	"sync"
	"testing"

	"koopmancrc"
	"koopmancrc/crchash"
)

func TestForAlgorithmCachesEngines(t *testing.T) {
	e1, err := crchash.ForAlgorithm("CRC-32C/iSCSI")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := crchash.ForAlgorithm("CRC-32C/iSCSI")
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("repeated ForAlgorithm returned distinct engines; cache is not working")
	}
	if _, err := crchash.ForAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestChecksumMatchesStdlib(t *testing.T) {
	data := []byte("The quick brown fox jumps over the lazy dog")
	got, err := crchash.Checksum("CRC-32/IEEE-802.3", data)
	if err != nil {
		t.Fatal(err)
	}
	if want := crc32.ChecksumIEEE(data); got != want {
		t.Errorf("IEEE = %#x, want %#x", got, want)
	}
	got, err = crchash.Checksum("CRC-32C/iSCSI", data)
	if err != nil {
		t.Fatal(err)
	}
	if want := crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli)); got != want {
		t.Errorf("CRC-32C = %#x, want %#x", got, want)
	}
}

// TestChecksumConcurrent hammers the cached engine from many goroutines:
// the cache and the engines must be safe for concurrent use.
func TestChecksumConcurrent(t *testing.T) {
	data := []byte("concurrent checksum traffic")
	want, err := crchash.Checksum("CRC-32C/iSCSI", data)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := crchash.Checksum("CRC-32C/iSCSI", data)
				if err != nil || got != want {
					t.Errorf("got %#x, %v; want %#x", got, err, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestNewEngineKinds(t *testing.T) {
	data := []byte("123456789")
	for _, k := range []crchash.Kind{crchash.Auto, crchash.Bitwise, crchash.Table, crchash.Slicing8} {
		e, err := crchash.NewEngine(crchash.CRC32C, k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got := e.Checksum(data); got != crchash.CRC32C.Check {
			t.Errorf("%v: %#x, want %#x", k, got, crchash.CRC32C.Check)
		}
	}
	// CCITT-FALSE is non-reflected 16-bit: slicing-by-8 must refuse it.
	p, err := crchash.Lookup("CRC-16/CCITT-FALSE")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crchash.NewEngine(p, crchash.Slicing8); err == nil {
		t.Error("slicing-by-8 should reject a non-reflected 16-bit algorithm")
	}
	if crchash.Slicing8.String() != "slicing8" || crchash.Kind(99).String() == "" {
		t.Error("Kind.String misbehaves")
	}
}

func TestRegisterValidation(t *testing.T) {
	p := koopmancrc.MustPolynomial(32, koopmancrc.Normal, "0x04C11DB7")
	if err := crchash.Register(crchash.Params{Poly: p}); err == nil {
		t.Error("empty name should be rejected")
	}
	if err := crchash.Register(crchash.Params{Name: "CRC-32/NOPOLY"}); err == nil {
		t.Error("zero polynomial should be rejected")
	}
	if err := crchash.Register(crchash.Params{Name: "CRC-32C/iSCSI", Poly: p}); err == nil {
		t.Error("duplicate of a built-in name should be rejected")
	}
	// A wrong check value must be caught before the algorithm is usable.
	if err := crchash.Register(crchash.Params{
		Name: "CRC-32/BADCHECK", Poly: p, Init: 0xFFFFFFFF, Check: 0xDEADBEEF,
	}); err == nil {
		t.Error("mismatched check value should be rejected")
	}
	if _, err := crchash.Checksum("CRC-32/BADCHECK", nil); err == nil {
		t.Error("rejected registration must not be resolvable")
	}

	// A valid registration becomes part of the catalogue.
	if err := crchash.Register(crchash.Params{
		Name: "CRC-16/TEST-REG", Poly: koopmancrc.MustPolynomial(16, koopmancrc.Normal, "0x1021"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := crchash.Register(crchash.Params{
		Name: "CRC-16/TEST-REG", Poly: koopmancrc.MustPolynomial(16, koopmancrc.Normal, "0x1021"),
	}); err == nil {
		t.Error("duplicate registration should be rejected")
	}
	found := false
	for _, name := range crchash.Algorithms() {
		if name == "CRC-16/TEST-REG" {
			found = true
		}
	}
	if !found {
		t.Error("registered algorithm missing from Algorithms()")
	}
	if _, err := crchash.ForAlgorithm("CRC-16/TEST-REG"); err != nil {
		t.Errorf("registered algorithm not resolvable: %v", err)
	}
}

func TestDigestSumAppendsBigEndian(t *testing.T) {
	d := crchash.NewDigest(crchash.New(crchash.CRC32C))
	d.Write([]byte("123456789"))
	sum := d.Sum(nil)
	want := []byte{0xE3, 0x06, 0x92, 0x83}
	if len(sum) != 4 || sum[0] != want[0] || sum[1] != want[1] || sum[2] != want[2] || sum[3] != want[3] {
		t.Errorf("Sum = %x, want %x", sum, want)
	}
	d.Reset()
	d.Write([]byte("123456789"))
	if d.Sum32() != crchash.CRC32C.Check {
		t.Error("Reset broke the digest")
	}
}

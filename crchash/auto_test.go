package crchash

import (
	"sync"
	"testing"

	"koopmancrc/internal/crc"
	"koopmancrc/internal/poly"
)

// resetAuto clears the measured profile so a test can re-run the
// startup benchmark under a different CRCHASH_KIND.
func resetAuto() {
	autoState.once = sync.Once{}
	autoState.cur.Store(nil)
}

func TestKindStringParseRoundTrip(t *testing.T) {
	for _, k := range append(Kinds(), Auto) {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if got, err := ParseKind("  Slicing16 "); err != nil || got != Slicing16 {
		t.Errorf("ParseKind should trim and fold case: got %v, %v", got, err)
	}
	if _, err := ParseKind("simd512"); err == nil {
		t.Error("ParseKind should reject unknown names")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("out-of-range String() = %q", Kind(99).String())
	}
}

func TestKindsEnumeratesEveryConcreteKind(t *testing.T) {
	ks := Kinds()
	seen := map[Kind]bool{}
	for _, k := range ks {
		if k == Auto {
			t.Error("Kinds() must not include Auto")
		}
		if seen[k] {
			t.Errorf("Kinds() lists %v twice", k)
		}
		seen[k] = true
		// Every listed kind must be constructible for at least the
		// reflected 32-bit class.
		if !k.Admits(CRC32C) {
			t.Errorf("%v does not admit CRC-32C", k)
		}
	}
	if len(ks) != 6 {
		t.Errorf("Kinds() has %d entries, want 6", len(ks))
	}
}

func TestAdmitsMatchesConstructors(t *testing.T) {
	ccitt, err := Lookup("CRC-16/CCITT-FALSE")
	if err != nil {
		t.Fatal(err)
	}
	arc, err := Lookup("CRC-16/ARC")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{CRC32IEEE, CRC32C, CRC32K, ccitt, arc} {
		for _, k := range Kinds() {
			_, err := NewEngine(p, k)
			if admits := k.Admits(p); admits != (err == nil) {
				t.Errorf("%s/%v: Admits=%v but constructor err=%v", p.Name, k, admits, err)
			}
		}
	}
}

func TestKindOfRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		e, err := NewEngine(CRC32C, k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got := KindOf(e); got != k {
			t.Errorf("KindOf(NewEngine(%v)) = %v", k, got)
		}
	}
	// Auto resolves to some concrete kind, never back to Auto.
	if got := KindOf(New(CRC32C)); got == Auto {
		t.Error("KindOf(New(...)) should name the concrete kernel")
	}
}

func TestAutoProfileMeasuresEveryKernelClass(t *testing.T) {
	r := AutoProfile()
	want := []string{
		"table", "slicing8", "slicing16", "chorba", "chorba[generic]",
		"hardware[ieee]", "hardware[castagnoli]", "hardware[other]",
	}
	byName := map[string]KernelSpeed{}
	for _, ks := range r.Kernels {
		byName[ks.Kernel] = ks
	}
	for _, name := range want {
		ks, ok := byName[name]
		if !ok {
			t.Errorf("profile missing kernel %q", name)
			continue
		}
		if ks.SmallBps <= 0 || ks.LargeBps <= 0 {
			t.Errorf("%s: non-positive throughput %v / %v", name, ks.SmallBps, ks.LargeBps)
		}
	}
	for i := 1; i < len(r.Kernels); i++ {
		if r.Kernels[i-1].LargeBps < r.Kernels[i].LargeBps {
			t.Errorf("profile not sorted fastest-first at index %d", i)
		}
	}
}

func TestAutoKindAdmissibleAndMeasured(t *testing.T) {
	ccitt, err := Lookup("CRC-16/CCITT-FALSE")
	if err != nil {
		t.Fatal(err)
	}
	crc5 := Pure(poly.MustKoopman(5, 0x15))
	for _, p := range []Params{CRC32IEEE, CRC32C, CRC32K, ccitt, crc5} {
		k := AutoKind(p)
		if k == Auto || !k.Admits(p) {
			t.Errorf("%s: AutoKind = %v (admits: %v)", p.Name, k, k.Admits(p))
		}
		if e := New(p); KindOf(e) != k {
			t.Errorf("%s: New built %v, AutoKind says %v", p.Name, KindOf(e), k)
		}
	}
	// Outside the reflected 32-bit class the choice is structural.
	if k := AutoKind(ccitt); k != Table {
		t.Errorf("CCITT-FALSE: AutoKind = %v, want table", k)
	}
	if k := AutoKind(crc5); k != Bitwise {
		t.Errorf("width-5: AutoKind = %v, want bitwise", k)
	}
	// For reflected 32-bit params the winner must be at least as fast as
	// slicing8 in the measured profile (it was a candidate).
	r := AutoProfile()
	speeds := map[string]float64{}
	for _, ks := range r.Kernels {
		speeds[ks.Kernel] = ks.LargeBps
	}
	if win := AutoKind(CRC32K); win != Auto {
		name := win.String()
		if win == Hardware {
			name = "hardware[other]"
		}
		if speeds[name] < speeds["slicing8"] {
			t.Errorf("CRC32K winner %v measured %f B/s, slower than slicing8 %f B/s",
				win, speeds[name], speeds["slicing8"])
		}
	}
}

func TestCRCHashKindOverride(t *testing.T) {
	defer resetAuto()

	t.Setenv("CRCHASH_KIND", "chorba")
	resetAuto()
	if k := AutoKind(CRC32C); k != Chorba {
		t.Errorf("override=chorba: AutoKind(CRC32C) = %v", k)
	}
	if got := AutoProfile().Override; got != "chorba" {
		t.Errorf("profile override = %q, want chorba", got)
	}
	// Params the override does not admit fall back to the measured pick.
	ccitt, err := Lookup("CRC-16/CCITT-FALSE")
	if err != nil {
		t.Fatal(err)
	}
	if k := AutoKind(ccitt); k != Table {
		t.Errorf("override=chorba on CCITT-FALSE: AutoKind = %v, want table fallback", k)
	}

	// Unknown names and "auto" are ignored.
	t.Setenv("CRCHASH_KIND", "warpdrive")
	resetAuto()
	if got := AutoProfile().Override; got != "" {
		t.Errorf("invalid override recorded as %q", got)
	}
	t.Setenv("CRCHASH_KIND", "auto")
	resetAuto()
	if got := AutoProfile().Override; got != "" {
		t.Errorf("override=auto recorded as %q", got)
	}
}

func TestAutoEngineChecksumsCorrectly(t *testing.T) {
	// Whatever Auto picks, the checksum must match the bitwise
	// reference — selection can never change the answer.
	data := []byte("123456789")
	for _, p := range []Params{CRC32IEEE, CRC32C, CRC32K} {
		want := crc.NewBitwise(p).Checksum(data)
		if p.Check != 0 && want != p.Check {
			t.Fatalf("%s: reference %#x disagrees with catalogue check %#x", p.Name, want, p.Check)
		}
		if got := New(p).Checksum(data); got != want {
			t.Errorf("%s: auto engine checksum %#x, want %#x", p.Name, got, want)
		}
	}
}

func TestRemeasureSwapsProfileAndInvalidatesCache(t *testing.T) {
	defer resetAuto()
	resetAuto()

	e1, err := ForAlgorithm("CRC-32/IEEE-802.3")
	if err != nil {
		t.Fatal(err)
	}
	prev, cur := Remeasure()
	if len(prev.Kernels) == 0 || len(cur.Kernels) == 0 {
		t.Fatalf("empty reports: prev %d cur %d kernels", len(prev.Kernels), len(cur.Kernels))
	}
	// The live profile must now be the new one (AutoProfile snapshots it).
	live := AutoProfile()
	if len(live.Kernels) != len(cur.Kernels) {
		t.Fatalf("live profile has %d kernels, remeasured %d", len(live.Kernels), len(cur.Kernels))
	}
	for i := range live.Kernels {
		if live.Kernels[i] != cur.Kernels[i] {
			t.Fatalf("live profile row %d = %+v, remeasured %+v", i, live.Kernels[i], cur.Kernels[i])
		}
	}
	// The catalogued-engine cache was invalidated: the next lookup builds
	// a fresh engine (possibly the same kind) rather than returning the
	// pre-swap instance, and both checksum identically.
	e2, err := ForAlgorithm("CRC-32/IEEE-802.3")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("123456789")
	if a, b := e1.Checksum(data), e2.Checksum(data); a != b {
		t.Fatalf("pre/post-remeasure engines disagree: %#x vs %#x", a, b)
	}
}

func TestRemeasureConcurrentWithReaders(t *testing.T) {
	defer resetAuto()
	resetAuto()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if k := AutoKind(CRC32C); k == Auto {
					t.Error("AutoKind returned Auto")
					return
				}
				if _, err := ForAlgorithm("CRC-32C/iSCSI"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		Remeasure()
	}
	close(stop)
	wg.Wait()
}

package crchash_test

import (
	"fmt"
	"log"

	"koopmancrc"
	"koopmancrc/crchash"
)

// ExampleChecksum computes catalogued checksums; the engine behind each
// algorithm name is built once and cached process-wide.
func ExampleChecksum() {
	data := []byte("123456789") // the catalogue check input
	for _, alg := range []string{"CRC-32/IEEE-802.3", "CRC-32C/iSCSI"} {
		sum, err := crchash.Checksum(alg, data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %08X\n", alg, sum)
	}
	// Output:
	// CRC-32/IEEE-802.3 CBF43926
	// CRC-32C/iSCSI E3069283
}

// ExampleRegister adds a custom algorithm — CRC-32/BZIP2, the
// non-reflected variant of the Ethernet CRC — to the catalogue. The
// declared check value is verified at registration, so a mis-typed
// parameter never reaches production checksums.
func ExampleRegister() {
	p, err := koopmancrc.ParsePolynomial(32, koopmancrc.Normal, "0x04C11DB7")
	if err != nil {
		log.Fatal(err)
	}
	err = crchash.Register(crchash.Params{
		Name:   "CRC-32/BZIP2",
		Poly:   p,
		Init:   0xFFFFFFFF,
		XorOut: 0xFFFFFFFF,
		Check:  0xFC891918,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum, err := crchash.Checksum("CRC-32/BZIP2", []byte("123456789"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CRC-32/BZIP2 %08X\n", sum)
	// Output:
	// CRC-32/BZIP2 FC891918
}

// ExampleNewHash streams data through the hash.Hash32 adapter; the
// result matches the one-shot checksum.
func ExampleNewHash() {
	h, err := crchash.NewHash("CRC-32K/Koopman")
	if err != nil {
		log.Fatal(err)
	}
	h.Write([]byte("stream"))
	h.Write([]byte("ing"))
	oneShot, err := crchash.Checksum("CRC-32K/Koopman", []byte("streaming"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %08X, one-shot %08X\n", h.Sum32(), oneShot)
	// Output:
	// streamed 19914955, one-shot 19914955
}

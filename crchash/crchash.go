// Package crchash computes CRC checksums for widths up to 32 bits: a
// catalogue of standard algorithms in the Rocksoft parameter model, user
// registration of custom algorithms, six engine kinds (bit-at-a-time,
// byte-table, slicing-by-8, slicing-by-16, the table-free Chorba fold,
// and a hardware-assisted hash/crc32 delegate) cross-validated against
// the bitwise reference, and hash.Hash32-compatible digests. Kind Auto
// picks among them by a once-per-process startup micro-benchmark,
// overridable with the CRCHASH_KIND environment variable.
//
// This is the checksum half of the koopmancrc module, split out so that
// serving paths that only compute CRCs need none of the evaluation
// machinery. Engines for catalogued algorithms are built once and cached
// process-wide — repeated Checksum calls never redo the catalogue lookup
// or table construction — and every engine is safe for concurrent use
// once built.
package crchash

import (
	"fmt"
	"hash"
	"strconv"
	"strings"
	"sync"

	"koopmancrc/internal/crc"
	"koopmancrc/internal/poly"
)

// Params describes a CRC algorithm in the Rocksoft parameter model
// (generator polynomial, init, input/output reflection, final XOR, and
// an optional catalogue check value over the ASCII bytes "123456789").
type Params = crc.Params

// Engine computes CRCs for one parameter set: one-shot Checksum plus the
// Init/Update/Finalize streaming triple. Engines are stateless after
// construction and safe for concurrent use.
type Engine = crc.Engine

// Digest adapts an Engine to hash.Hash32 so any catalogued algorithm can
// drop into code written against hash/crc32.
type Digest = crc.Digest

// Catalogued standard parameter sets (see Algorithms for the full list
// by name).
var (
	// CRC32IEEE is the IEEE 802.3 / ISO-HDLC CRC-32 used by Ethernet,
	// gzip and zip.
	CRC32IEEE = crc.CRC32IEEE
	// CRC32C is the Castagnoli CRC-32C adopted by iSCSI (RFC 3720), SCTP
	// and ext4.
	CRC32C = crc.CRC32C
	// CRC32K wraps the paper's 0xBA0DC66B in the same framing
	// conventions as CRC-32/CRC-32C.
	CRC32K = crc.CRC32K
)

// Kind selects a checksum engine implementation.
type Kind int

// Available engine kinds.
const (
	// Auto picks the fastest admissible kernel by measurement: a
	// once-per-process startup micro-benchmark times every reflected
	// 32-bit kernel on small and large payloads and Auto rides the
	// winner (overridable via the CRCHASH_KIND environment variable).
	// Parameter sets outside the reflected 32-bit class fall back to
	// the structurally fastest engine they admit.
	Auto Kind = iota
	// Bitwise is the bit-at-a-time reference engine, valid for every
	// width and reflection combination.
	Bitwise
	// Table is the 256-entry byte-table engine (width divisible by 8,
	// RefIn == RefOut).
	Table
	// Slicing8 processes eight bytes per step (reflected 32-bit
	// algorithms only) — the kind of software implementation the iSCSI
	// effort contemplated for CRC-32C.
	Slicing8
	// Slicing16 processes sixteen bytes per step (reflected 32-bit
	// algorithms only), doubling Slicing8's stride so the table loads
	// for a whole block are independent.
	Slicing16
	// Chorba is the table-free XOR-folding kernel after "Chorba: A
	// novel CRC32 implementation" (reflected 32-bit algorithms only):
	// no table memory and no cache pressure, at some cost in raw
	// throughput against the slicing kernels.
	Chorba
	// Hardware delegates to the standard library's hash/crc32, which
	// uses CLMUL folding (IEEE) and the SSE4.2/ARMv8 CRC32C
	// instructions (Castagnoli) where the platform has them
	// (reflected 32-bit algorithms only).
	Hardware
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Auto:
		return "auto"
	case Bitwise:
		return "bitwise"
	case Table:
		return "table"
	case Slicing8:
		return "slicing8"
	case Slicing16:
		return "slicing16"
	case Chorba:
		return "chorba"
	case Hardware:
		return "hardware"
	default:
		return "Kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Kinds returns the concrete engine kinds — every kind except Auto, in
// reference-first order — so callers (and cmd/crcbench) can iterate
// kernels without hardcoding the list.
func Kinds() []Kind {
	return []Kind{Bitwise, Table, Slicing8, Slicing16, Chorba, Hardware}
}

// ParseKind maps a kind name (as produced by String, case-insensitive)
// back to the Kind. It is the parser behind the CRCHASH_KIND override
// and cmd/crcbench's -kinds flag.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto":
		return Auto, nil
	case "bitwise":
		return Bitwise, nil
	case "table":
		return Table, nil
	case "slicing8":
		return Slicing8, nil
	case "slicing16":
		return Slicing16, nil
	case "chorba":
		return Chorba, nil
	case "hardware":
		return Hardware, nil
	default:
		return 0, fmt.Errorf("crchash: unknown engine kind %q", s)
	}
}

// Admits reports whether the parameter set can be served by this kind —
// the same predicate the constructors enforce, without paying table
// construction to ask.
func (k Kind) Admits(p Params) bool {
	switch k {
	case Auto, Bitwise:
		return true
	case Table:
		return p.Poly.Width()%8 == 0 && p.RefIn == p.RefOut
	case Slicing8, Slicing16, Chorba, Hardware:
		return p.Poly.Width() == 32 && p.RefIn && p.RefOut
	default:
		return false
	}
}

// KindOf reports which concrete kind built the engine, so serving
// layers can surface the kernel that actually computed a checksum.
// Engines not built by this package report Auto.
func KindOf(e Engine) Kind {
	switch e.(type) {
	case *crc.Bitwise:
		return Bitwise
	case *crc.Table:
		return Table
	case *crc.Slicing8:
		return Slicing8
	case *crc.Slicing16:
		return Slicing16
	case *crc.Chorba:
		return Chorba
	case *crc.Hardware:
		return Hardware
	default:
		return Auto
	}
}

// New returns the fastest engine the parameter set admits (Kind Auto):
// the measured once-per-process winner for reflected 32-bit algorithms,
// the structurally fastest kernel otherwise.
func New(p Params) Engine { return autoEngine(p) }

// NewEngine builds an engine of an explicit kind, erroring when the
// parameters do not admit it (e.g. Table for a width not divisible by 8).
func NewEngine(p Params, k Kind) (Engine, error) {
	switch k {
	case Auto:
		return autoEngine(p), nil
	case Bitwise:
		return crc.NewBitwise(p), nil
	case Table:
		return crc.NewTable(p)
	case Slicing8:
		return crc.NewSlicing8(p)
	case Slicing16:
		return crc.NewSlicing16(p)
	case Chorba:
		return crc.NewChorba(p)
	case Hardware:
		return crc.NewHardware(p)
	default:
		return nil, fmt.Errorf("crchash: unknown engine kind %v", k)
	}
}

// NewDigest returns a hash.Hash32 over the engine's algorithm.
func NewDigest(e Engine) *Digest { return crc.NewDigest(e) }

// Pure returns the parameter set that makes the CRC a plain polynomial
// remainder: crc(data) = data(x) * x^width mod G(x) — the convention
// under which Hamming-distance analysis holds bit-for-bit.
func Pure(p poly.P) Params { return crc.Pure(p) }

// Lookup finds a catalogued algorithm by name, e.g. "CRC-32C/iSCSI".
func Lookup(name string) (Params, error) { return crc.Lookup(name) }

// Algorithms lists the catalogued algorithm names — built-in standards
// plus user registrations — sorted.
func Algorithms() []string {
	cat := crc.Catalogue()
	out := make([]string, len(cat))
	for i, p := range cat {
		out[i] = p.Name
	}
	return out
}

// Register adds a user-defined algorithm to the catalogue under its
// Name, after which Checksum, ForAlgorithm and NewHash resolve it like
// any standard. Names must be unique; a non-zero Check value is verified
// against the reference engine before the algorithm is accepted.
func Register(p Params) error { return crc.Register(p) }

// engines caches one built engine per catalogued algorithm name.
// Registration is append-only and names are unique, so a cached engine
// can never go stale.
var engines sync.Map // string -> Engine

// ForAlgorithm returns the process-wide cached engine for a catalogued
// algorithm: the catalogue lookup and table construction happen once per
// name, not once per call. The engine is safe for concurrent use.
func ForAlgorithm(name string) (Engine, error) {
	if e, ok := engines.Load(name); ok {
		return e.(Engine), nil
	}
	params, err := crc.Lookup(name)
	if err != nil {
		return nil, err
	}
	e, _ := engines.LoadOrStore(name, autoEngine(params))
	return e.(Engine), nil
}

// Checksum computes the CRC of data under a catalogued algorithm name
// (e.g. "CRC-32/IEEE-802.3", "CRC-32C/iSCSI", "CRC-32K/Koopman"), using
// the cached engine.
func Checksum(algorithm string, data []byte) (uint32, error) {
	e, err := ForAlgorithm(algorithm)
	if err != nil {
		return 0, err
	}
	return e.Checksum(data), nil
}

// NewHash returns a fresh hash.Hash32 over a catalogued algorithm,
// backed by the cached engine.
func NewHash(algorithm string) (hash.Hash32, error) {
	e, err := ForAlgorithm(algorithm)
	if err != nil {
		return nil, err
	}
	return crc.NewDigest(e), nil
}

package crchash_test

import (
	"testing"

	"koopmancrc/crchash"
	"koopmancrc/internal/poly"
)

// FuzzKernelCrossValidation drives every concrete checksum kernel over
// a fuzzer-chosen parameter set and payload and asserts they all agree
// with the bitwise reference — both one-shot and through a chunked
// hash.Hash32 digest whose write boundaries the fuzzer also chooses
// (so the 8/16/24-byte stride kernels see partial words at arbitrary
// offsets). Selection can never change the answer; a kernel that
// drifts from the reference on any (params, payload, split) triple is
// a bug this fuzzer is built to surface.
func FuzzKernelCrossValidation(f *testing.F) {
	f.Add(uint64(0xBA0DC66B), uint32(0xFFFFFFFF), uint32(0xFFFFFFFF), []byte("123456789"), uint16(3))
	f.Add(uint64(0x82608EDB), uint32(0), uint32(0), []byte{}, uint16(0)) // 802.3 in Koopman form
	f.Add(uint64(0x8F6E37A0), uint32(0xFFFFFFFF), uint32(0), []byte("hello crc world"), uint16(7))
	f.Add(uint64(1), uint32(1), uint32(1), make([]byte, 64), uint16(17))
	f.Add(uint64(0xDEADBEEF), uint32(0x12345678), uint32(0x9ABCDEF0), make([]byte, 100), uint16(23))

	f.Fuzz(func(t *testing.T, kpoly uint64, init, xorout uint32, data []byte, cut uint16) {
		// Koopman form with the top bit forced keeps every fuzz input a
		// valid degree-32 generator.
		p, err := poly.FromKoopman(32, kpoly&0xFFFFFFFF|1<<31)
		if err != nil {
			t.Fatalf("forced top bit but Koopman parse failed: %v", err)
		}
		params := crchash.Params{
			Poly: p, Init: init, RefIn: true, RefOut: true, XorOut: xorout,
		}
		ref, err := crchash.NewEngine(params, crchash.Bitwise)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Checksum(data)
		for _, k := range crchash.Kinds() {
			if !k.Admits(params) {
				continue
			}
			e, err := crchash.NewEngine(params, k)
			if err != nil {
				t.Fatalf("%v admits params but constructor failed: %v", k, err)
			}
			if got := e.Checksum(data); got != want {
				t.Errorf("%v: one-shot %#x != reference %#x (poly %v, len %d)",
					k, got, want, p, len(data))
			}
			// Chunked digest writes at a fuzzer-chosen boundary, then
			// single-byte writes across the next stride so every kernel
			// sees sub-word tails mid-stream.
			d := crchash.NewDigest(e)
			split := int(cut) % (len(data) + 1)
			d.Write(data[:split])
			rest := data[split:]
			for len(rest) > 0 && len(rest) <= 24 {
				d.Write(rest[:1])
				rest = rest[1:]
			}
			d.Write(rest)
			if got := d.Sum32(); got != want {
				t.Errorf("%v: chunked digest %#x != reference %#x (split %d, len %d)",
					k, got, want, split, len(data))
			}
		}
	})
}

package crchash

import (
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"koopmancrc/internal/crc"
	"koopmancrc/internal/poly"
)

// Kind Auto is a measured choice. The first time an Auto engine is
// built for a reflected 32-bit algorithm, a once-per-process
// micro-benchmark times every kernel in that class — the slicing and
// table kernels, the Chorba fold in both its unrolled and generic
// forms, and the stdlib delegate in its three performance classes
// (CLMUL-folded IEEE, CRC32C-instruction Castagnoli, and the portable
// fallback every other generator gets) — on a small and a large
// payload. Auto then ranks the kinds a parameter set admits by their
// measured large-payload throughput and builds the winner.
//
// CRCHASH_KIND overrides the measurement: when it names a concrete
// kind (e.g. "slicing16", "hardware"), Auto builds that kind for every
// parameter set admitting it and falls back to the measured choice for
// the rest. Unknown names are ignored.

// KernelSpeed is one measured row of the startup micro-benchmark.
type KernelSpeed struct {
	// Kernel names the measured variant: a plain kind name, or a kind
	// qualified by its performance class ("hardware[ieee]",
	// "hardware[castagnoli]", "hardware[other]", "chorba[generic]").
	Kernel string `json:"kernel"`
	// Kind is the engine kind the row scores.
	Kind Kind `json:"-"`
	// SmallBps and LargeBps are measured bytes/second on the small
	// (512 B) and large (256 KiB) payloads.
	SmallBps float64 `json:"small_bps"`
	LargeBps float64 `json:"large_bps"`
}

// AutoReport is the startup micro-benchmark's outcome.
type AutoReport struct {
	// Override holds the raw CRCHASH_KIND value when it named a valid
	// concrete kind, "" otherwise.
	Override string `json:"override,omitempty"`
	// Kernels lists every measured variant, fastest large-payload
	// first.
	Kernels []KernelSpeed `json:"kernels"`
}

const (
	autoSmallPayload = 512
	autoLargePayload = 256 << 10
	// autoBudget bounds each kernel+payload measurement; the whole
	// startup benchmark stays under ~20 ms.
	autoBudget = 1200 * time.Microsecond
)

// autoProfileState is one immutable measurement outcome. The live
// profile is swapped atomically so Remeasure can replace it under
// concurrent AutoKind/AutoProfile readers.
type autoProfileState struct {
	report   AutoReport
	byName   map[string]*KernelSpeed
	overKind Kind
	overSet  bool
}

var autoState struct {
	once sync.Once
	cur  atomic.Pointer[autoProfileState]
}

// genericPoly is a non-catalogued generator used to measure the code
// paths arbitrary registered polynomials would take: the stdlib
// delegate's portable fallback and the Chorba generic fold.
var genericPoly = poly.MustKoopman(32, 0xDEADBEEF)

func reflectedParams(p poly.P) Params {
	return Params{Poly: p, Init: 0xFFFFFFFF, RefIn: true, RefOut: true, XorOut: 0xFFFFFFFF}
}

// measureBps times one engine on a payload for the budget and returns
// bytes/second.
func measureBps(e Engine, data []byte, budget time.Duration) float64 {
	e.Checksum(data) // warm tables, branch predictors and the stdlib's lazy init
	var done int64
	start := time.Now()
	for time.Since(start) < budget {
		e.Checksum(data)
		done += int64(len(data))
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(done) / elapsed.Seconds()
}

func autoMeasure() *autoProfileState {
	st := &autoProfileState{}
	small := make([]byte, autoSmallPayload)
	large := make([]byte, autoLargePayload)
	// Deterministic non-trivial fill; the kernels are data-oblivious,
	// this only keeps the payload from being all zeros.
	seed := uint64(0x9E3779B97F4A7C15)
	for i := range large {
		seed = seed*6364136223846793005 + 1442695040888963407
		large[i] = byte(seed >> 56)
		if i < len(small) {
			small[i] = byte(seed >> 56)
		}
	}

	koopman := reflectedParams(poly.Koopman32K)
	generic := reflectedParams(genericPoly)
	rows := []struct {
		name  string
		kind  Kind
		build func() (Engine, error)
	}{
		// Poly-independent kernels, measured on the paper's polynomial
		// (no stdlib fast path can interfere there).
		{"table", Table, func() (Engine, error) { return crc.NewTable(koopman) }},
		{"slicing8", Slicing8, func() (Engine, error) { return crc.NewSlicing8(koopman) }},
		{"slicing16", Slicing16, func() (Engine, error) { return crc.NewSlicing16(koopman) }},
		{"chorba", Chorba, func() (Engine, error) { return crc.NewChorba(koopman) }},
		{"chorba[generic]", Chorba, func() (Engine, error) { return crc.NewChorba(generic) }},
		// The stdlib delegate's three performance classes.
		{"hardware[ieee]", Hardware, func() (Engine, error) { return crc.NewHardware(crc.CRC32IEEE) }},
		{"hardware[castagnoli]", Hardware, func() (Engine, error) { return crc.NewHardware(crc.CRC32C) }},
		{"hardware[other]", Hardware, func() (Engine, error) { return crc.NewHardware(generic) }},
	}

	st.byName = make(map[string]*KernelSpeed, len(rows))
	for _, row := range rows {
		e, err := row.build()
		if err != nil {
			continue // cannot happen for these fixed parameter sets
		}
		ks := KernelSpeed{
			Kernel:   row.name,
			Kind:     row.kind,
			SmallBps: measureBps(e, small, autoBudget),
			LargeBps: measureBps(e, large, autoBudget),
		}
		st.report.Kernels = append(st.report.Kernels, ks)
	}
	sort.SliceStable(st.report.Kernels, func(i, j int) bool {
		return st.report.Kernels[i].LargeBps > st.report.Kernels[j].LargeBps
	})
	for i := range st.report.Kernels {
		ks := &st.report.Kernels[i]
		st.byName[ks.Kernel] = ks
	}

	if v := os.Getenv("CRCHASH_KIND"); v != "" {
		if k, err := ParseKind(v); err == nil && k != Auto {
			st.overKind, st.overSet = k, true
			st.report.Override = v
		}
	}
	return st
}

// currentProfile returns the live measurement, running the startup
// benchmark on first use.
func currentProfile() *autoProfileState {
	autoState.once.Do(func() { autoState.cur.Store(autoMeasure()) })
	return autoState.cur.Load()
}

// snapshotReport deep-copies a profile's report so callers never alias
// the live rows.
func snapshotReport(st *autoProfileState) AutoReport {
	out := AutoReport{Override: st.report.Override}
	out.Kernels = append(out.Kernels, st.report.Kernels...)
	return out
}

// AutoProfile runs (once) and returns the live kernel micro-benchmark:
// every measured kernel variant with its small- and large-payload
// throughput, fastest first, plus any active CRCHASH_KIND override.
// After a Remeasure this reflects the most recent measurement.
func AutoProfile() AutoReport {
	return snapshotReport(currentProfile())
}

// Remeasure re-runs the kernel micro-benchmark, atomically swaps the
// live profile, and invalidates the catalogued-engine cache so future
// ForAlgorithm builds select against the new measurement. It returns the
// previous and new reports so callers (e.g. crcserve's drift watch) can
// quantify the change. Engines handed out before the swap keep working —
// they are correct under any profile, just possibly no longer the
// fastest choice.
func Remeasure() (prev, cur AutoReport) {
	prevSt := currentProfile()
	curSt := autoMeasure()
	autoState.cur.Store(curSt)
	engines.Range(func(k, _ any) bool {
		engines.Delete(k)
		return true
	})
	return snapshotReport(prevSt), snapshotReport(curSt)
}

// speedFor resolves the measured row scoring kind k for parameter set
// p within one profile, accounting for the class-dependent kernels.
func speedFor(st *autoProfileState, k Kind, p Params) *KernelSpeed {
	name := k.String()
	switch k {
	case Hardware:
		switch uint32(p.Poly.Reversed()) {
		case 0xEDB88320:
			name = "hardware[ieee]"
		case 0x82F63B78:
			name = "hardware[castagnoli]"
		default:
			name = "hardware[other]"
		}
	case Chorba:
		if ch, err := crc.NewChorba(p); err != nil || !ch.Unrolled() {
			name = "chorba[generic]"
		}
	}
	return st.byName[name]
}

// AutoKind reports the kind Auto builds for the parameter set: the
// CRCHASH_KIND override when set and admissible, otherwise the
// measured large-payload winner among the kinds the set admits (for
// parameter sets outside the reflected 32-bit class, the structurally
// fastest kind — Table, then Bitwise).
func AutoKind(p Params) Kind {
	st := currentProfile()
	if st.overSet && st.overKind.Admits(p) {
		return st.overKind
	}
	if !Slicing16.Admits(p) { // not reflected 32-bit: nothing to measure
		if Table.Admits(p) {
			return Table
		}
		return Bitwise
	}
	best, bestBps := Slicing8, -1.0
	// Measured candidates, fastest-expected first so ties stay stable.
	for _, k := range []Kind{Hardware, Slicing16, Slicing8, Chorba, Table} {
		if ks := speedFor(st, k, p); ks != nil && ks.LargeBps > bestBps {
			best, bestBps = k, ks.LargeBps
		}
	}
	return best
}

// autoEngine builds the engine Auto selects for the parameter set.
func autoEngine(p Params) Engine {
	k := AutoKind(p)
	if e, err := NewEngine(p, k); err == nil {
		return e
	}
	// Unreachable when AutoKind honors Admits; the reference engine
	// admits everything.
	return crc.NewBitwise(p)
}

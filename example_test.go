package koopmancrc_test

import (
	"context"
	"fmt"
	"log"

	"koopmancrc"
)

// ExampleAnalyzer walks one evaluation session through the questions the
// paper asks of the 802.3 polynomial: its HD at a 40-byte TCP ack, the
// longest length holding HD=6, the §4.1 exact weight anchor, and the
// band profile — each answer reusing the boundaries the previous ones
// discovered.
func ExampleAnalyzer() {
	ctx := context.Background()
	an := koopmancrc.NewAnalyzer(koopmancrc.IEEE8023, koopmancrc.WithMaxHD(6))

	hd, exact, err := an.HDAt(ctx, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HD at 400 bits: %d (exact=%v)\n", hd, exact)

	l, _, err := an.MaxLenAtHD(ctx, 6, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HD=6 holds to %d bits\n", l)

	w4, err := an.Weight(ctx, 4, 2975)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("W4 at 2975 bits: %d\n", w4)

	rep, err := an.Evaluate(ctx, 512)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range rep.Bands {
		ge := ""
		if b.AtLeast {
			ge = ">="
		}
		fmt.Printf("HD%s%d: %d-%d\n", ge, b.HD, b.From, b.To)
	}
	// Output:
	// HD at 400 bits: 5 (exact=true)
	// HD=6 holds to 268 bits
	// W4 at 2975 bits: 1
	// HD>=7: 1-171
	// HD6: 172-268
	// HD5: 269-512
}

// ExampleSelect ranks the paper's §4.3 contenders for a 2048-bit data
// word: the proposed 0xBA0DC66B and the drafted iSCSI polynomial
// 0x8F6E37A0 both reach HD=6 there, but the proposal holds it much
// further — the paper's argument in one call.
func ExampleSelect() {
	ranked, err := koopmancrc.Select(context.Background(),
		[]koopmancrc.Polynomial{
			koopmancrc.CastagnoliISCSI, // the iSCSI draft's choice
			koopmancrc.Koopman32K,      // the paper's proposal
			koopmancrc.IEEE8023,        // the legacy Ethernet CRC
		},
		2048, koopmancrc.WithMaxHD(6))
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range ranked {
		fmt.Printf("%d. %v  HD=%d holds to %d bits\n", i+1, s.Poly, s.HD, s.CoverageAtHD)
	}
	// Output:
	// 1. 0xBA0DC66B  HD=6 holds to 8192 bits
	// 2. 0x8F6E37A0  HD=6 holds to 5243 bits
	// 3. 0x82608EDB  HD=5 holds to 2974 bits
}

// Package core implements the paper's central contribution: enumeration and
// filtering of the complete CRC polynomial design space. It provides the
// candidate space with reciprocal-pair deduplication (§3), the multi-stage
// filtering pipeline with the §4.1 optimisations, inverse filtering, and the
// factorization-class census behind Table 2.
package core

import (
	"fmt"

	"koopmancrc/internal/poly"
)

// Space is the design space of width-bit CRC generator polynomials.
//
// Every generator has its top coefficient set, leaving 2^(width-1) distinct
// polynomials (the +1 term is implicit in Koopman representation).
// Reciprocal pairs have identical error-detection performance, so only the
// canonical member of each pair — the one with the numerically smaller
// Koopman value — is evaluated; palindromes (self-reciprocal polynomials)
// are their own canonical member, which is why the paper counts
// 1,073,774,592 = 2^30 + 2^15 candidates rather than exactly 2^30.
type Space struct {
	Width int
}

// NewSpace validates the width and returns the design space.
func NewSpace(width int) (Space, error) {
	if width < 2 || width > 32 {
		return Space{}, fmt.Errorf("core: unsupported width %d", width)
	}
	return Space{Width: width}, nil
}

// TotalPolynomials is the number of distinct generators (before reciprocal
// deduplication): 2^(width-1).
func (s Space) TotalPolynomials() uint64 { return 1 << uint(s.Width-1) }

// Palindromes is the number of self-reciprocal generators.
func (s Space) Palindromes() uint64 {
	// The full (width+1)-bit polynomial has fixed endpoint coefficients;
	// a palindrome is determined by the free half of the remaining bits:
	// (width-1)/2 mirrored pairs plus, for even widths, a middle bit.
	free := (s.Width - 1) / 2
	if s.Width%2 == 0 {
		free++
	}
	return 1 << uint(free)
}

// CanonicalCount is the number of candidates after reciprocal
// deduplication: one per reciprocal pair plus all palindromes.
func (s Space) CanonicalCount() uint64 {
	return (s.TotalPolynomials()-s.Palindromes())/2 + s.Palindromes()
}

// kRange returns the raw Koopman value range [lo, hi) of the space: all
// width-bit values with the top bit set.
func (s Space) kRange() (uint64, uint64) {
	return 1 << uint(s.Width-1), 1 << uint(s.Width)
}

// Contains reports whether k is a raw member of the space.
func (s Space) Contains(k uint64) bool {
	lo, hi := s.kRange()
	return k >= lo && k < hi
}

// Canonical reports whether the polynomial with Koopman value k is the
// canonical member of its reciprocal pair.
func (s Space) Canonical(k uint64) (bool, error) {
	p, err := poly.FromKoopman(s.Width, k)
	if err != nil {
		return false, err
	}
	return k <= p.Reciprocal().Koopman(), nil
}

// Enumerate calls fn for every canonical polynomial whose raw index falls
// in [startIdx, endIdx), where raw index i denotes Koopman value
// 2^(width-1)+i and endIdx is capped at 2^(width-1). Enumeration stops
// early if fn returns false. It returns the number of canonical candidates
// visited.
//
// Indexing by raw value keeps work division trivial for the distributed
// search: any partition of [0, 2^(width-1)) covers the whole space exactly
// once.
func (s Space) Enumerate(startIdx, endIdx uint64, fn func(p poly.P) bool) (uint64, error) {
	lo, _ := s.kRange()
	if endIdx > s.TotalPolynomials() {
		endIdx = s.TotalPolynomials()
	}
	var visited uint64
	for i := startIdx; i < endIdx; i++ {
		k := lo + i
		p, err := poly.FromKoopman(s.Width, k)
		if err != nil {
			return visited, fmt.Errorf("enumerate %#x: %w", k, err)
		}
		if k > p.Reciprocal().Koopman() {
			continue // non-canonical member of a reciprocal pair
		}
		visited++
		if !fn(p) {
			break
		}
	}
	return visited, nil
}

package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"koopmancrc/internal/gf2"
	"koopmancrc/internal/hamming"
	"koopmancrc/internal/poly"
)

// EngineKind selects which evaluation engine a filter stage uses.
type EngineKind int

// Engine kinds.
const (
	// EngineFast is the syndrome meet-in-the-middle engine.
	EngineFast EngineKind = iota + 1
	// EngineBruteLex is the paper's enumeration engine in plain order.
	EngineBruteLex
	// EngineBruteFCSFirst adds the paper's FCS-bits-first ordering.
	EngineBruteFCSFirst
)

// Filter is one stage of the polynomial filtering pipeline. Stages must be
// ordered cheapest-first; a candidate is dropped at the first stage that
// rejects it (the paper's early-bailout principle applied at pipeline
// granularity).
type Filter interface {
	// Name identifies the stage in statistics.
	Name() string
	// Keep reports whether the candidate survives this stage.
	Keep(ev *hamming.Evaluator) (bool, error)
}

// ParityFilter keeps polynomials by (x+1)-divisibility.
type ParityFilter struct {
	// RequireDivisible keeps only (x+1)-divisible generators when true;
	// only non-divisible ones when false.
	RequireDivisible bool
}

// Name implements Filter.
func (f ParityFilter) Name() string {
	if f.RequireDivisible {
		return "parity(x+1)"
	}
	return "parity(not x+1)"
}

// Keep implements Filter.
func (f ParityFilter) Keep(ev *hamming.Evaluator) (bool, error) {
	return ev.Poly().DivisibleByXPlus1() == f.RequireDivisible, nil
}

// ShapeFilter keeps polynomials whose irreducible factorization has the
// given degree multiset, e.g. "{1,3,28}".
type ShapeFilter struct {
	Shape string
}

// Name implements Filter.
func (f ShapeFilter) Name() string { return "shape" + f.Shape }

// Keep implements Filter.
func (f ShapeFilter) Keep(ev *hamming.Evaluator) (bool, error) {
	s, err := ev.Poly().Shape()
	if err != nil {
		return false, err
	}
	return s == f.Shape, nil
}

// HDFilter keeps polynomials achieving at least MinHD at every length in
// Lengths, evaluated in order — the paper's filtering with increasing
// lengths. Each length's check bails out at the first undetectable pattern.
type HDFilter struct {
	Lengths []int
	MinHD   int
	Engine  EngineKind
}

// Name implements Filter.
func (f HDFilter) Name() string {
	return fmt.Sprintf("hd>=%d@%v", f.MinHD, f.Lengths)
}

// Keep implements Filter.
func (f HDFilter) Keep(ev *hamming.Evaluator) (bool, error) {
	switch f.Engine {
	case EngineBruteLex:
		for _, l := range f.Lengths {
			ok, err := ev.MeetsHDBrute(l, f.MinHD, hamming.OrderLex)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case EngineBruteFCSFirst:
		for _, l := range f.Lengths {
			ok, err := ev.MeetsHDBrute(l, f.MinHD, hamming.OrderFCSFirst)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	default:
		return ev.MeetsHDAtLengths(f.Lengths, f.MinHD)
	}
}

// StageStats records per-stage pipeline statistics.
type StageStats struct {
	Name    string
	In      uint64
	Out     uint64
	Elapsed time.Duration
}

// ShardResult is the outcome of a pipeline run over one shard of the
// space — the unit of work that the intra-machine worker pool and the
// internal/dist coordinator both hand out, and that Merge recombines.
type ShardResult struct {
	// Start and End bound the raw index range [Start, End) this result
	// covers. A merged result covers the hull of its inputs.
	Start, End uint64
	// Survivors are the canonical polynomials passing every stage, in
	// ascending Koopman order.
	Survivors []poly.P
	// Canonical counts candidates evaluated (after reciprocal dedup).
	Canonical uint64
	// Stages holds per-stage statistics in pipeline order.
	Stages []StageStats
	// Elapsed is the wall-clock time of a single-shard run; Merge sums
	// it into aggregate compute time, and the parallel Run overwrites
	// the merged value with its own wall clock.
	Elapsed time.Duration
}

// Rate returns candidates filtered per second, the paper's §4.2 throughput
// metric (~2 polynomials/s/CPU on 2001 hardware).
func (r ShardResult) Rate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Canonical) / r.Elapsed.Seconds()
}

// Merge combines shard results into one: candidate counts and per-stage
// statistics are summed, survivors are concatenated and re-sorted into
// ascending Koopman order, and Elapsed accumulates the shards' compute
// time. Merging is associative and order-independent, so partial results
// may arrive in any order (jobs complete out of order both across the
// local worker pool and across dist workers).
func Merge(shards ...*ShardResult) *ShardResult {
	out := &ShardResult{}
	first := true
	for _, s := range shards {
		if s == nil {
			continue
		}
		if first {
			out.Start, out.End = s.Start, s.End
			first = false
		} else {
			if s.Start < out.Start {
				out.Start = s.Start
			}
			if s.End > out.End {
				out.End = s.End
			}
		}
		out.Canonical += s.Canonical
		out.Elapsed += s.Elapsed
		out.Survivors = append(out.Survivors, s.Survivors...)
		out.Stages = MergeStages(out.Stages, s.Stages)
	}
	sort.Slice(out.Survivors, func(i, j int) bool {
		return out.Survivors[i].Koopman() < out.Survivors[j].Koopman()
	})
	return out
}

// MergeStages folds per-stage statistics into an aggregate keyed by
// stage name, summing In/Out/Elapsed and appending stages dst has not
// seen. It is the stage half of Merge, shared with internal/dist's
// coordinator-side aggregation of worker-reported statistics.
func MergeStages(dst, add []StageStats) []StageStats {
	for _, st := range add {
		merged := false
		for i := range dst {
			if dst[i].Name == st.Name {
				dst[i].In += st.In
				dst[i].Out += st.Out
				dst[i].Elapsed += st.Elapsed
				merged = true
				break
			}
		}
		if !merged {
			dst = append(dst, st)
		}
	}
	return dst
}

// Pipeline applies filters in order over a polynomial space.
type Pipeline struct {
	Space   Space
	Filters []Filter
	// Workers is the fan-out degree of Run: the shard is carved into
	// sub-shards filtered concurrently. Zero means GOMAXPROCS; one
	// forces the sequential path.
	Workers int
	// Progress, when non-nil, is incremented once per canonical
	// candidate evaluated — a live counter another goroutine may read
	// while a run is in flight (e.g. a dist worker reporting per-job
	// progress in its heartbeats). It is never reset by the pipeline.
	Progress *atomic.Uint64
}

// RunShard sequentially evaluates raw indices [startIdx, endIdx) of the
// space on the calling goroutine. The context cancels long runs between
// candidates. This is the shardable work unit: both Run's worker pool
// and each internal/dist worker job reduce to RunShard calls whose
// results recombine with Merge.
func (pl *Pipeline) RunShard(ctx context.Context, startIdx, endIdx uint64) (*ShardResult, error) {
	res := &ShardResult{Start: startIdx, End: endIdx, Stages: make([]StageStats, len(pl.Filters))}
	for i, f := range pl.Filters {
		res.Stages[i].Name = f.Name()
	}
	start := time.Now()
	var runErr error
	_, err := pl.Space.Enumerate(startIdx, endIdx, func(p poly.P) bool {
		if err := ctx.Err(); err != nil {
			runErr = err
			return false
		}
		res.Canonical++
		if pl.Progress != nil {
			pl.Progress.Add(1)
		}
		ev := hamming.New(p)
		for i, f := range pl.Filters {
			stageStart := time.Now()
			res.Stages[i].In++
			keep, err := f.Keep(ev)
			res.Stages[i].Elapsed += time.Since(stageStart)
			if err != nil {
				runErr = fmt.Errorf("stage %s on %v: %w", f.Name(), p, err)
				return false
			}
			if !keep {
				return true
			}
			res.Stages[i].Out++
		}
		res.Survivors = append(res.Survivors, p)
		return true
	})
	res.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// Run evaluates raw indices [startIdx, endIdx) of the space, fanning the
// range out over Workers goroutines (GOMAXPROCS by default) in dynamically
// scheduled sub-shards and merging their results. Elapsed in the returned
// result is the wall-clock time of the whole run, so Rate reflects the
// multicore speedup. The survivor set and per-stage statistics are
// identical to a sequential RunShard over the same range.
func (pl *Pipeline) Run(ctx context.Context, startIdx, endIdx uint64) (*ShardResult, error) {
	if endIdx > pl.Space.TotalPolynomials() {
		endIdx = pl.Space.TotalPolynomials()
	}
	workers := pl.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if startIdx < endIdx && uint64(workers) > endIdx-startIdx {
		workers = int(endIdx - startIdx)
	}
	if workers <= 1 || startIdx >= endIdx {
		return pl.RunShard(ctx, startIdx, endIdx)
	}
	span := endIdx - startIdx
	// Small sub-shards keep the pool busy despite non-uniform candidate
	// cost (most die at the first length; survivors cost far more).
	chunk := span / uint64(workers*8)
	if chunk == 0 {
		chunk = 1
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next    atomic.Uint64
		mu      sync.Mutex
		shards  []*ShardResult
		firstEr error
		wg      sync.WaitGroup
	)
	next.Store(startIdx)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := next.Add(chunk) - chunk
				if lo >= endIdx {
					return
				}
				hi := lo + chunk
				if hi > endIdx {
					hi = endIdx
				}
				res, err := pl.RunShard(runCtx, lo, hi)
				mu.Lock()
				if err != nil {
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					cancel() // sibling sub-shards abort at their next candidate
					return
				}
				shards = append(shards, res)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	merged := Merge(shards...)
	merged.Start, merged.End = startIdx, endIdx
	merged.Elapsed = time.Since(start)
	return merged, nil
}

// Census groups polynomials by factorization shape — the paper's Table 2.
// Keys are shape strings such as "{1,1,15,15}"; values are counts.
func Census(polys []poly.P) (map[string]int, error) {
	out := make(map[string]int)
	for _, p := range polys {
		s, err := p.Shape()
		if err != nil {
			return nil, fmt.Errorf("census: %v: %w", p, err)
		}
		out[s]++
	}
	return out, nil
}

// AllDivisibleByXPlus1 reports whether every polynomial has the implicit
// parity property — the paper's Table 2 finding for the HD=6 survivors.
func AllDivisibleByXPlus1(polys []poly.P) bool {
	for _, p := range polys {
		if !p.DivisibleByXPlus1() {
			return false
		}
	}
	return true
}

// ShapeOf returns the factorization shape of a raw full polynomial — a
// convenience wrapper for census consumers.
func ShapeOf(full gf2.Poly) (string, error) {
	p, err := poly.FromFull(full)
	if err != nil {
		return "", err
	}
	return p.Shape()
}

package core

import (
	"context"
	"fmt"
	"time"

	"koopmancrc/internal/gf2"
	"koopmancrc/internal/hamming"
	"koopmancrc/internal/poly"
)

// EngineKind selects which evaluation engine a filter stage uses.
type EngineKind int

// Engine kinds.
const (
	// EngineFast is the syndrome meet-in-the-middle engine.
	EngineFast EngineKind = iota + 1
	// EngineBruteLex is the paper's enumeration engine in plain order.
	EngineBruteLex
	// EngineBruteFCSFirst adds the paper's FCS-bits-first ordering.
	EngineBruteFCSFirst
)

// Filter is one stage of the polynomial filtering pipeline. Stages must be
// ordered cheapest-first; a candidate is dropped at the first stage that
// rejects it (the paper's early-bailout principle applied at pipeline
// granularity).
type Filter interface {
	// Name identifies the stage in statistics.
	Name() string
	// Keep reports whether the candidate survives this stage.
	Keep(ev *hamming.Evaluator) (bool, error)
}

// ParityFilter keeps polynomials by (x+1)-divisibility.
type ParityFilter struct {
	// RequireDivisible keeps only (x+1)-divisible generators when true;
	// only non-divisible ones when false.
	RequireDivisible bool
}

// Name implements Filter.
func (f ParityFilter) Name() string {
	if f.RequireDivisible {
		return "parity(x+1)"
	}
	return "parity(not x+1)"
}

// Keep implements Filter.
func (f ParityFilter) Keep(ev *hamming.Evaluator) (bool, error) {
	return ev.Poly().DivisibleByXPlus1() == f.RequireDivisible, nil
}

// ShapeFilter keeps polynomials whose irreducible factorization has the
// given degree multiset, e.g. "{1,3,28}".
type ShapeFilter struct {
	Shape string
}

// Name implements Filter.
func (f ShapeFilter) Name() string { return "shape" + f.Shape }

// Keep implements Filter.
func (f ShapeFilter) Keep(ev *hamming.Evaluator) (bool, error) {
	s, err := ev.Poly().Shape()
	if err != nil {
		return false, err
	}
	return s == f.Shape, nil
}

// HDFilter keeps polynomials achieving at least MinHD at every length in
// Lengths, evaluated in order — the paper's filtering with increasing
// lengths. Each length's check bails out at the first undetectable pattern.
type HDFilter struct {
	Lengths []int
	MinHD   int
	Engine  EngineKind
}

// Name implements Filter.
func (f HDFilter) Name() string {
	return fmt.Sprintf("hd>=%d@%v", f.MinHD, f.Lengths)
}

// Keep implements Filter.
func (f HDFilter) Keep(ev *hamming.Evaluator) (bool, error) {
	switch f.Engine {
	case EngineBruteLex:
		for _, l := range f.Lengths {
			ok, err := ev.MeetsHDBrute(l, f.MinHD, hamming.OrderLex)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case EngineBruteFCSFirst:
		for _, l := range f.Lengths {
			ok, err := ev.MeetsHDBrute(l, f.MinHD, hamming.OrderFCSFirst)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	default:
		return ev.MeetsHDAtLengths(f.Lengths, f.MinHD)
	}
}

// StageStats records per-stage pipeline statistics.
type StageStats struct {
	Name    string
	In      uint64
	Out     uint64
	Elapsed time.Duration
}

// Result is the outcome of a pipeline run over a space partition.
type Result struct {
	// Survivors are the canonical polynomials passing every stage.
	Survivors []poly.P
	// Canonical counts candidates evaluated (after reciprocal dedup).
	Canonical uint64
	// Stages holds per-stage statistics in pipeline order.
	Stages []StageStats
	// Elapsed is the total wall-clock time of the run.
	Elapsed time.Duration
}

// Rate returns candidates filtered per second, the paper's §4.2 throughput
// metric (~2 polynomials/s/CPU on 2001 hardware).
func (r Result) Rate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Canonical) / r.Elapsed.Seconds()
}

// Pipeline applies filters in order over a polynomial space.
type Pipeline struct {
	Space   Space
	Filters []Filter
}

// Run evaluates raw indices [startIdx, endIdx) of the space. The context
// cancels long runs between candidates.
func (pl *Pipeline) Run(ctx context.Context, startIdx, endIdx uint64) (*Result, error) {
	res := &Result{Stages: make([]StageStats, len(pl.Filters))}
	for i, f := range pl.Filters {
		res.Stages[i].Name = f.Name()
	}
	start := time.Now()
	var runErr error
	_, err := pl.Space.Enumerate(startIdx, endIdx, func(p poly.P) bool {
		if err := ctx.Err(); err != nil {
			runErr = err
			return false
		}
		res.Canonical++
		ev := hamming.New(p)
		for i, f := range pl.Filters {
			stageStart := time.Now()
			res.Stages[i].In++
			keep, err := f.Keep(ev)
			res.Stages[i].Elapsed += time.Since(stageStart)
			if err != nil {
				runErr = fmt.Errorf("stage %s on %v: %w", f.Name(), p, err)
				return false
			}
			if !keep {
				return true
			}
			res.Stages[i].Out++
		}
		res.Survivors = append(res.Survivors, p)
		return true
	})
	res.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// Census groups polynomials by factorization shape — the paper's Table 2.
// Keys are shape strings such as "{1,1,15,15}"; values are counts.
func Census(polys []poly.P) (map[string]int, error) {
	out := make(map[string]int)
	for _, p := range polys {
		s, err := p.Shape()
		if err != nil {
			return nil, fmt.Errorf("census: %v: %w", p, err)
		}
		out[s]++
	}
	return out, nil
}

// AllDivisibleByXPlus1 reports whether every polynomial has the implicit
// parity property — the paper's Table 2 finding for the HD=6 survivors.
func AllDivisibleByXPlus1(polys []poly.P) bool {
	for _, p := range polys {
		if !p.DivisibleByXPlus1() {
			return false
		}
	}
	return true
}

// ShapeOf returns the factorization shape of a raw full polynomial — a
// convenience wrapper for census consumers.
func ShapeOf(full gf2.Poly) (string, error) {
	p, err := poly.FromFull(full)
	if err != nil {
		return "", err
	}
	return p.Shape()
}

package core

import (
	"context"
	"testing"

	"koopmancrc/internal/hamming"
	"koopmancrc/internal/poly"
)

func TestSpaceCountsMatchPaper(t *testing.T) {
	// §1: "The entire set of 1,073,774,592 distinct polynomials has been
	// evaluated" — 2^30 pairs plus 2^15 palindromes.
	s, err := NewSpace(32)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalPolynomials(); got != 1<<31 {
		t.Errorf("TotalPolynomials = %d", got)
	}
	if got := s.Palindromes(); got != 1<<16 {
		t.Errorf("Palindromes = %d, want 65536", got)
	}
	if got := s.CanonicalCount(); got != 1073774592 {
		t.Errorf("CanonicalCount = %d, want 1073774592 (the paper's count)", got)
	}
}

func TestSpaceEnumerationCoversEveryPolynomialOnce(t *testing.T) {
	// For width 8: every one of the 128 generators must be reachable as
	// either a canonical candidate or the reciprocal of one, exactly once.
	s, err := NewSpace(8)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]int)
	visited, err := s.Enumerate(0, s.TotalPolynomials(), func(p poly.P) bool {
		seen[p.Koopman()]++
		r := p.Reciprocal()
		if r != p {
			seen[r.Koopman()]++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != s.CanonicalCount() {
		t.Errorf("visited %d canonical, want %d", visited, s.CanonicalCount())
	}
	if uint64(len(seen)) != s.TotalPolynomials() {
		t.Errorf("covered %d polynomials, want %d", len(seen), s.TotalPolynomials())
	}
	for k, c := range seen {
		if c != 1 {
			t.Errorf("polynomial %#x covered %d times", k, c)
		}
	}
}

func TestSpaceEnumerationRangesCompose(t *testing.T) {
	s, _ := NewSpace(8)
	var whole []uint64
	if _, err := s.Enumerate(0, 128, func(p poly.P) bool {
		whole = append(whole, p.Koopman())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var parts []uint64
	for _, r := range [][2]uint64{{0, 17}, {17, 64}, {64, 101}, {101, 128}} {
		if _, err := s.Enumerate(r[0], r[1], func(p poly.P) bool {
			parts = append(parts, p.Koopman())
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(whole) != len(parts) {
		t.Fatalf("whole %d != parts %d", len(whole), len(parts))
	}
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("mismatch at %d: %#x vs %#x", i, whole[i], parts[i])
		}
	}
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(1); err == nil {
		t.Error("width 1 should be rejected")
	}
	if _, err := NewSpace(33); err == nil {
		t.Error("width 33 should be rejected")
	}
}

func TestSmallWidthCanonicalCountByHand(t *testing.T) {
	// Width 3: polynomials 1001,1011,1101,1111 (full form); 1011 and 1101
	// are reciprocal, 1001 and 1111 palindromic: 3 canonical candidates.
	s, _ := NewSpace(3)
	if got := s.CanonicalCount(); got != 3 {
		t.Errorf("CanonicalCount(3) = %d, want 3", got)
	}
	count, err := s.Enumerate(0, 4, func(poly.P) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("enumerated %d, want 3", count)
	}
}

func TestPipelineEnginesAgree(t *testing.T) {
	// The fast and paper-faithful engines must select identical survivor
	// sets — the paper's "comparing answers obtained with simple code to
	// optimized code" validation (§4.5).
	s, _ := NewSpace(8)
	run := func(kind EngineKind) []poly.P {
		pl := &Pipeline{
			Space:   s,
			Filters: []Filter{HDFilter{Lengths: []int{8, 19}, MinHD: 4, Engine: kind}},
		}
		res, err := pl.Run(context.Background(), 0, s.TotalPolynomials())
		if err != nil {
			t.Fatal(err)
		}
		return res.Survivors
	}
	fast := run(EngineFast)
	bruteLex := run(EngineBruteLex)
	bruteFCS := run(EngineBruteFCSFirst)
	if len(fast) == 0 {
		t.Fatal("expected some width-8 polynomials with HD>=4 at 19 bits")
	}
	for i, kind := range [][]poly.P{bruteLex, bruteFCS} {
		if len(kind) != len(fast) {
			t.Fatalf("engine %d: %d survivors, fast engine %d", i, len(kind), len(fast))
		}
		for j := range kind {
			if kind[j] != fast[j] {
				t.Fatalf("engine %d: survivor %d is %v, fast engine has %v", i, j, kind[j], fast[j])
			}
		}
	}
}

func TestPipelineStageStats(t *testing.T) {
	s, _ := NewSpace(8)
	pl := &Pipeline{
		Space: s,
		Filters: []Filter{
			ParityFilter{RequireDivisible: true},
			HDFilter{Lengths: []int{16}, MinHD: 4, Engine: EngineFast},
		},
	}
	res, err := pl.Run(context.Background(), 0, s.TotalPolynomials())
	if err != nil {
		t.Fatal(err)
	}
	if res.Canonical != s.CanonicalCount() {
		t.Errorf("Canonical = %d, want %d", res.Canonical, s.CanonicalCount())
	}
	if len(res.Stages) != 2 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	if res.Stages[0].In != res.Canonical {
		t.Errorf("stage 0 In = %d, want %d", res.Stages[0].In, res.Canonical)
	}
	if res.Stages[1].In != res.Stages[0].Out {
		t.Errorf("stage chaining broken: %d -> %d", res.Stages[0].Out, res.Stages[1].In)
	}
	if uint64(len(res.Survivors)) != res.Stages[1].Out {
		t.Errorf("survivors %d != last stage out %d", len(res.Survivors), res.Stages[1].Out)
	}
	for _, p := range res.Survivors {
		if !p.DivisibleByXPlus1() {
			t.Errorf("survivor %v not divisible by x+1", p)
		}
	}
	if res.Rate() <= 0 {
		t.Error("rate should be positive")
	}
}

func TestRunShardsMergeEqualsWholeRun(t *testing.T) {
	// Any partition of the range, merged, must equal one sequential
	// RunShard over the whole range — the invariant both the local
	// worker pool and the dist coordinator rely on.
	s, _ := NewSpace(8)
	pl := &Pipeline{
		Space:   s,
		Filters: []Filter{HDFilter{Lengths: []int{9, 19}, MinHD: 4, Engine: EngineFast}},
	}
	whole, err := pl.RunShard(context.Background(), 0, s.TotalPolynomials())
	if err != nil {
		t.Fatal(err)
	}
	var shards []*ShardResult
	// Deliberately out-of-order shard completion.
	for _, r := range [][2]uint64{{64, 101}, {0, 17}, {101, 128}, {17, 64}} {
		sh, err := pl.RunShard(context.Background(), r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sh)
	}
	merged := Merge(shards...)
	if merged.Start != 0 || merged.End != 128 {
		t.Errorf("merged range [%d,%d), want [0,128)", merged.Start, merged.End)
	}
	if merged.Canonical != whole.Canonical {
		t.Errorf("merged canonical %d, whole %d", merged.Canonical, whole.Canonical)
	}
	if len(merged.Survivors) != len(whole.Survivors) {
		t.Fatalf("merged %d survivors, whole %d", len(merged.Survivors), len(whole.Survivors))
	}
	for i := range merged.Survivors {
		if merged.Survivors[i] != whole.Survivors[i] {
			t.Errorf("survivor %d: merged %v, whole %v", i, merged.Survivors[i], whole.Survivors[i])
		}
	}
	if len(merged.Stages) != len(whole.Stages) {
		t.Fatalf("merged %d stages, whole %d", len(merged.Stages), len(whole.Stages))
	}
	for i := range merged.Stages {
		if merged.Stages[i].Name != whole.Stages[i].Name ||
			merged.Stages[i].In != whole.Stages[i].In ||
			merged.Stages[i].Out != whole.Stages[i].Out {
			t.Errorf("stage %d: merged %+v, whole %+v", i, merged.Stages[i], whole.Stages[i])
		}
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	m := Merge()
	if m.Canonical != 0 || len(m.Survivors) != 0 {
		t.Errorf("empty merge = %+v", m)
	}
	sh := &ShardResult{Start: 3, End: 9, Canonical: 2}
	m = Merge(nil, sh, nil)
	if m.Start != 3 || m.End != 9 || m.Canonical != 2 {
		t.Errorf("merge with nils = %+v", m)
	}
}

func TestParallelRunMatchesSequential(t *testing.T) {
	s, _ := NewSpace(10)
	seq := &Pipeline{
		Space:   s,
		Filters: []Filter{HDFilter{Lengths: []int{11, 25}, MinHD: 4, Engine: EngineFast}},
		Workers: 1,
	}
	want, err := seq.Run(context.Background(), 0, s.TotalPolynomials())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Survivors) == 0 {
		t.Fatal("expected width-10 survivors")
	}
	for _, workers := range []int{0, 2, 7} {
		par := &Pipeline{Space: s, Filters: seq.Filters, Workers: workers}
		got, err := par.Run(context.Background(), 0, s.TotalPolynomials())
		if err != nil {
			t.Fatal(err)
		}
		if got.Canonical != want.Canonical {
			t.Errorf("workers=%d: canonical %d, want %d", workers, got.Canonical, want.Canonical)
		}
		if len(got.Survivors) != len(want.Survivors) {
			t.Fatalf("workers=%d: %d survivors, want %d", workers, len(got.Survivors), len(want.Survivors))
		}
		for i := range got.Survivors {
			if got.Survivors[i] != want.Survivors[i] {
				t.Errorf("workers=%d: survivor %d is %v, want %v", workers, i, got.Survivors[i], want.Survivors[i])
			}
		}
		if len(got.Stages) != 1 || got.Stages[0].In != want.Stages[0].In || got.Stages[0].Out != want.Stages[0].Out {
			t.Errorf("workers=%d: stage stats %+v, want %+v", workers, got.Stages, want.Stages)
		}
	}
}

func TestParallelRunPartialRange(t *testing.T) {
	s, _ := NewSpace(10)
	pl := &Pipeline{
		Space:   s,
		Filters: []Filter{HDFilter{Lengths: []int{11}, MinHD: 4, Engine: EngineFast}},
		Workers: 4,
	}
	want, err := pl.RunShard(context.Background(), 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Run(context.Background(), 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	if got.Start != 100 || got.End != 400 {
		t.Errorf("range [%d,%d), want [100,400)", got.Start, got.End)
	}
	if got.Canonical != want.Canonical || len(got.Survivors) != len(want.Survivors) {
		t.Errorf("parallel partial range: %d/%d, want %d/%d",
			got.Canonical, len(got.Survivors), want.Canonical, len(want.Survivors))
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	s, _ := NewSpace(16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pl := &Pipeline{Space: s, Filters: []Filter{HDFilter{Lengths: []int{64}, MinHD: 4, Engine: EngineFast}}}
	if _, err := pl.Run(ctx, 0, s.TotalPolynomials()); err == nil {
		t.Fatal("cancelled run should return an error")
	}
}

func TestShapeFilter(t *testing.T) {
	ev := hamming.New(poly.Koopman32K)
	keep, err := ShapeFilter{Shape: "{1,3,28}"}.Keep(ev)
	if err != nil || !keep {
		t.Errorf("Keep = %v, %v; want true", keep, err)
	}
	keep, err = ShapeFilter{Shape: "{32}"}.Keep(ev)
	if err != nil || keep {
		t.Errorf("Keep = %v, %v; want false", keep, err)
	}
}

func TestCensus(t *testing.T) {
	c, err := Census([]poly.P{poly.IEEE8023, poly.Koopman32K, poly.Koopman1130, poly.KoopmanSparse6})
	if err != nil {
		t.Fatal(err)
	}
	if c["{32}"] != 1 || c["{1,3,28}"] != 1 || c["{1,1,30}"] != 2 {
		t.Errorf("census = %v", c)
	}
	if AllDivisibleByXPlus1([]poly.P{poly.Koopman32K, poly.Koopman1130}) != true {
		t.Error("parity polynomials misclassified")
	}
	if AllDivisibleByXPlus1([]poly.P{poly.IEEE8023}) != false {
		t.Error("802.3 is not divisible by x+1")
	}
}

func TestInverseFilterAnchors(t *testing.T) {
	// §4.1: inverse filtering established maximum lengths; for the 802.3
	// polynomial HD=5 holds through exactly 2974 bits, and for the iSCSI
	// polynomial HD=6 through 5243 bits.
	res, err := InverseFilter([]poly.P{poly.IEEE8023}, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLen != 2974 {
		t.Errorf("802.3 max length at HD=5 = %d, want 2974", res.MaxLen)
	}
	res, err = InverseFilter([]poly.P{poly.IEEE8023, poly.CastagnoliISCSI}, 6, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLen != 1024 || res.Best != poly.CastagnoliISCSI {
		t.Errorf("best at HD=6 = %v len %d, want iSCSI poly at cap 1024", res.Best, res.MaxLen)
	}
	if res.PerPoly[poly.IEEE8023.String()] != 268 {
		t.Errorf("802.3 max at HD=6 = %d, want 268", res.PerPoly[poly.IEEE8023.String()])
	}
}

func TestImplicitConfirmHeuristic(t *testing.T) {
	// CCITT-16 at 32751 bits: the brute-force weight-3 pass needs ~5*10^8
	// combinations, far beyond the budget, so the timeout heuristic fires
	// and exact verification agrees (HD>=4 holds).
	ok, implicit, agreed, err := ImplicitConfirm(poly.CCITT16, 32751, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !implicit || !agreed {
		t.Errorf("ImplicitConfirm(32751) = ok=%v implicit=%v agreed=%v", ok, implicit, agreed)
	}
	// At 32752 the weight-2 failure {0, 32767} is found within budget:
	// quick rejection, no heuristic needed.
	ok, implicit, _, err = ImplicitConfirm(poly.CCITT16, 32752, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ok || implicit {
		t.Errorf("ImplicitConfirm(32752) = ok=%v implicit=%v, want quick rejection", ok, implicit)
	}
}

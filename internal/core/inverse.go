package core

import (
	"errors"
	"fmt"

	"koopmancrc/internal/hamming"
	"koopmancrc/internal/poly"
)

// InverseResult reports an inverse-filtering run.
type InverseResult struct {
	// MaxLen is the largest data-word length at which any input polynomial
	// achieves the target HD (0 if none does at or above the probed range).
	MaxLen int
	// Best is the polynomial achieving MaxLen.
	Best poly.P
	// PerPoly maps each polynomial (Koopman form string) to its own
	// maximum length at the target HD.
	PerPoly map[string]int
	// ImplicitConfirmations counts evaluations decided by the budget
	// heuristic before exact confirmation — the §4.1 "long execution time
	// is implicit confirmation" trick.
	ImplicitConfirmations int
}

// InverseFilter determines the maximum data-word length at which each of
// the given polynomials achieves at least minHD, searching no further than
// maxLen. This reproduces the paper's inverse filtering: runs at long
// lengths reject quickly via early bailout, establishing firm upper bounds,
// and the bound is lowered until the HD is achieved.
func InverseFilter(polys []poly.P, minHD, maxLen int) (*InverseResult, error) {
	res := &InverseResult{PerPoly: make(map[string]int, len(polys))}
	for _, p := range polys {
		ev := hamming.New(p)
		best, err := maxLenAtHD(ev, minHD, maxLen)
		if err != nil {
			return nil, fmt.Errorf("inverse filter %v: %w", p, err)
		}
		res.PerPoly[p.String()] = best
		if best > res.MaxLen {
			res.MaxLen = best
			res.Best = p
		}
	}
	return res, nil
}

// maxLenAtHD returns the largest length <= maxLen with HD >= minHD (0 if
// even length 1 fails).
func maxLenAtHD(ev *hamming.Evaluator, minHD, maxLen int) (int, error) {
	// The HD>=minHD property is monotone (true for every length below the
	// first weight boundary), so the largest passing length is one less
	// than the smallest failing weight boundary.
	limit := maxLen + 1
	for w := 2; w < minHD; w++ {
		first, _, found, err := ev.FirstDataLen(w, limit-1)
		if err != nil {
			return 0, err
		}
		if found && first < limit {
			limit = first
		}
	}
	return limit - 1, nil
}

// ImplicitConfirm is the paper's §4.1 timeout heuristic in budget form:
// evaluate the HD predicate with the paper-faithful brute engine under a
// probe budget. Exceeding the budget — the analogue of the 30-second abort
// on 2001 hardware — is treated as implicit confirmation that the HD holds
// (early bailout would have fired quickly otherwise), and the claim is then
// verified exactly with the fast engine.
//
// It returns the verdict, whether the heuristic fired, and whether the
// heuristic's guess agreed with the exact answer.
func ImplicitConfirm(p poly.P, dataLen, minHD int, probeBudget int64) (ok, implicit, agreed bool, err error) {
	brute := hamming.New(p, hamming.WithMaxProbes(probeBudget))
	ok, bruteErr := brute.MeetsHDBrute(dataLen, minHD, hamming.OrderFCSFirst)
	if bruteErr == nil {
		return ok, false, true, nil
	}
	if !errors.Is(bruteErr, hamming.ErrBudgetExceeded) {
		return false, false, false, bruteErr
	}
	// Budget exceeded: implicit confirmation, verified exactly.
	exact := hamming.New(p)
	ok, err = exact.MeetsHD(dataLen, minHD)
	if err != nil {
		return false, true, false, err
	}
	return ok, true, ok, nil
}

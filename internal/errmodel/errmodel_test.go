package errmodel

import (
	"math"
	"math/rand/v2"
	"testing"

	"koopmancrc/internal/crc"
	"koopmancrc/internal/hamming"
	"koopmancrc/internal/poly"
)

func TestWitnessCorruptionIsUndetectable(t *testing.T) {
	// Convert a weight-4 undetectable pattern of the 802.3 polynomial at
	// 2975 data bits (the §4.1 breakpoint; W4 = 1 there) into a concrete
	// corrupted frame: the CRC must NOT notice, while the paper's
	// 0xBA0DC66B (HD=6 at this length) must.
	ev := hamming.New(poly.IEEE8023)
	wit, found, err := ev.Exists(4, 2975)
	if err != nil || !found {
		t.Fatalf("witness: %v %v", found, err)
	}

	const payloadBytes = (2975 + 7) / 8 // witness needs a codeword of >= 3007 bits
	if payloadBytes*8+32 < wit[len(wit)-1]+1 {
		t.Fatalf("frame too small for witness %v", wit)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	engine8023 := crc.NewBitwise(crc.Pure(poly.IEEE8023))
	engineK := crc.NewBitwise(crc.Pure(poly.Koopman32K))

	frame := append([]byte(nil), payload...)
	fcs := engine8023.Checksum(payload)
	frame = append(frame, byte(fcs>>24), byte(fcs>>16), byte(fcs>>8), byte(fcs))
	if engine8023.Checksum(frame) != 0 {
		t.Fatal("valid codeword should have zero remainder")
	}
	before := engineK.Checksum(frame)

	if err := FlipCodewordPositions(frame, wit); err != nil {
		t.Fatal(err)
	}
	if engine8023.Checksum(frame) != 0 {
		t.Fatal("witness corruption should be invisible to the 802.3 CRC")
	}
	if engineK.Checksum(frame) == before {
		t.Fatal("0xBA0DC66B should detect the 802.3-undetectable 4-bit error")
	}
}

func TestFlipPositionsValidation(t *testing.T) {
	frame := make([]byte, 4)
	if err := FlipCodewordPositions(frame, []int{32}); err == nil {
		t.Error("out-of-range position should error")
	}
	if err := FlipCodewordPositions(frame, []int{-1}); err == nil {
		t.Error("negative position should error")
	}
	// Flipping twice restores the frame.
	if err := FlipCodewordPositions(frame, []int{0, 7, 31}); err != nil {
		t.Fatal(err)
	}
	if err := FlipCodewordPositions(frame, []int{0, 7, 31}); err != nil {
		t.Fatal(err)
	}
	for _, b := range frame {
		if b != 0 {
			t.Fatal("double flip should cancel")
		}
	}
}

func TestOddWeightAlwaysDetectedByParityPolynomial(t *testing.T) {
	// CRC-8/ATM's generator x^8+x^2+x+1 is divisible by (x+1): every
	// odd-weight error must be caught, regardless of position.
	est := NewEstimator(crc.NewBitwise(crc.Pure(poly.ATM8)), 7)
	for _, w := range []int{1, 3, 5, 7} {
		rep, err := est.Run(FixedWeight{W: w}, 16, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Undetected != 0 {
			t.Errorf("weight %d: %d undetected errors for (x+1)-divisible generator", w, rep.Undetected)
		}
	}
}

func TestFixedWeightBelowHDAlwaysDetected(t *testing.T) {
	// 0xBA0DC66B keeps HD=6 at MTU length: every 1..5-bit error within an
	// MTU frame is detected.
	if testing.Short() {
		t.Skip("MTU-frame Monte Carlo in -short mode")
	}
	est := NewEstimator(crc.New(crc.CRC32K), 11)
	for _, w := range []int{2, 3, 4, 5} {
		rep, err := est.Run(FixedWeight{W: w}, 1514, 400)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Undetected != 0 {
			t.Errorf("weight %d: %d undetected within HD=6 regime", w, rep.Undetected)
		}
	}
}

func TestBurstWithinWidthAlwaysDetected(t *testing.T) {
	for _, params := range []crc.Params{crc.CRC32IEEE, crc.CRC32C, crc.CRC32K} {
		est := NewEstimator(crc.New(params), 13)
		rep, err := est.Run(Burst{MaxLen: 32}, 256, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Undetected != 0 {
			t.Errorf("%s: %d undetected bursts <= 32 bits", params.Name, rep.Undetected)
		}
	}
}

func TestUndetectedRateMatchesWeightsForTinyCRC(t *testing.T) {
	// For a width-8 CRC and weight-2 errors the undetected fraction is
	// exactly W2 / C(total,2); Monte Carlo must converge to it.
	// x^8+x^2+x+1 has period 127, so a 136-bit codeword (16-byte payload)
	// admits exactly 9 undetectable 2-bit patterns {i, i+127}.
	p := poly.ATM8
	const payloadBytes = 16
	total := payloadBytes*8 + 8
	ev := hamming.New(p)
	w2, err := ev.Weight(2, payloadBytes*8)
	if err != nil {
		t.Fatal(err)
	}
	if w2 == 0 {
		t.Fatal("test needs a length with undetectable 2-bit errors")
	}
	want := float64(w2) / float64(total*(total-1)/2)

	est := NewEstimator(crc.NewBitwise(crc.Pure(p)), 17)
	rep, err := est.Run(FixedWeight{W: 2}, payloadBytes, 400000)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.UndetectedFraction()
	if math.Abs(got-want) > want/2 {
		t.Errorf("undetected fraction %.5f, analytic %.5f", got, want)
	}
}

func TestBSCStatistics(t *testing.T) {
	est := NewEstimator(crc.New(crc.CRC8SMBus), 23)
	rep, err := est.Run(BSC{BER: 1e-2}, 32, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean+rep.Detected+rep.Undetected != rep.Trials {
		t.Errorf("accounting broken: %+v", rep)
	}
	// With 264 bits/frame at BER 1e-2 almost every frame is corrupted and
	// the vast majority of corruptions are detected.
	if rep.Detected == 0 {
		t.Error("expected detections")
	}
	if rep.UndetectedFraction() > 0.05 {
		t.Errorf("undetected fraction %.4f implausibly high", rep.UndetectedFraction())
	}
}

func TestEstimatorValidation(t *testing.T) {
	est := NewEstimator(crc.New(crc.CRC32IEEE), 1)
	if _, err := est.Run(BSC{BER: 0.1}, 0, 10); err == nil {
		t.Error("zero payload should error")
	}
	if _, err := est.Run(BSC{BER: 0.1}, 10, 0); err == nil {
		t.Error("zero trials should error")
	}
	p5, _ := poly.FromNormal(5, 0x05)
	est5 := NewEstimator(crc.NewBitwise(crc.Pure(p5)), 1)
	if _, err := est5.Run(BSC{BER: 0.1}, 10, 10); err == nil {
		t.Error("non-byte width should error")
	}
}

func TestChannelNames(t *testing.T) {
	for _, c := range []Channel{BSC{BER: 0.5}, FixedWeight{W: 3}, Burst{MaxLen: 8}} {
		if c.Name() == "" {
			t.Errorf("%T has empty name", c)
		}
	}
}

// Package errmodel injects transmission errors into CRC-protected frames
// and measures detection outcomes. It provides the channel models the paper
// reasons about — independent bit errors at a given BER (§3's "moderate
// BER" argument), fixed-weight error patterns (the basis of Hamming
// distance), and bursts — plus witness-driven corruption that converts an
// undetectable pattern found by the hamming engine into a concrete
// corrupted frame.
package errmodel

import (
	"fmt"
	"math/rand/v2"

	"koopmancrc/internal/crc"
)

// Channel corrupts a frame in place and returns the number of bits it
// flipped. Implementations must be deterministic given the rng.
type Channel interface {
	// Corrupt flips bits of frame (length fixed) using rng.
	Corrupt(frame []byte, rng *rand.Rand) int
	// Name identifies the channel in reports.
	Name() string
}

// BSC is a binary symmetric channel: each bit flips independently with
// probability BER.
type BSC struct {
	BER float64
}

var _ Channel = BSC{}

// Name implements Channel.
func (c BSC) Name() string { return fmt.Sprintf("bsc(ber=%g)", c.BER) }

// Corrupt implements Channel.
func (c BSC) Corrupt(frame []byte, rng *rand.Rand) int {
	flips := 0
	for i := range frame {
		for b := 0; b < 8; b++ {
			if rng.Float64() < c.BER {
				frame[i] ^= 1 << uint(b)
				flips++
			}
		}
	}
	return flips
}

// FixedWeight flips exactly W distinct bits chosen uniformly — the error
// class Hamming distance speaks about directly.
type FixedWeight struct {
	W int
}

var _ Channel = FixedWeight{}

// Name implements Channel.
func (c FixedWeight) Name() string { return fmt.Sprintf("fixed-weight(%d)", c.W) }

// Corrupt implements Channel.
func (c FixedWeight) Corrupt(frame []byte, rng *rand.Rand) int {
	total := len(frame) * 8
	if c.W > total {
		return 0
	}
	chosen := make(map[int]struct{}, c.W)
	for len(chosen) < c.W {
		pos := int(rng.Uint64N(uint64(total)))
		if _, dup := chosen[pos]; dup {
			continue
		}
		chosen[pos] = struct{}{}
		frame[pos/8] ^= 1 << uint(7-pos%8)
	}
	return c.W
}

// Burst flips a contiguous burst of length up to MaxLen bits with the first
// and last bit of the burst always set (the conventional burst definition).
type Burst struct {
	MaxLen int
}

var _ Channel = Burst{}

// Name implements Channel.
func (c Burst) Name() string { return fmt.Sprintf("burst(max=%d)", c.MaxLen) }

// Corrupt implements Channel.
func (c Burst) Corrupt(frame []byte, rng *rand.Rand) int {
	total := len(frame) * 8
	if total == 0 || c.MaxLen < 1 {
		return 0
	}
	length := 1 + int(rng.Uint64N(uint64(min(c.MaxLen, total))))
	start := int(rng.Uint64N(uint64(total - length + 1)))
	flips := 0
	for b := 0; b < length; b++ {
		if b == 0 || b == length-1 || rng.Uint64()&1 == 0 {
			pos := start + b
			frame[pos/8] ^= 1 << uint(7-pos%8)
			flips++
		}
	}
	return flips
}

// FlipCodewordPositions applies an undetectable-error witness from the
// hamming engine to a frame. Witness positions are polynomial exponents
// over the codeword: position 0 is the last-transmitted bit (the lowest FCS
// bit), so frame bit index = total-1-position, MSB-first within bytes. The
// frame must be a whole codeword (data followed by FCS) produced with a
// pure, non-reflected CRC.
func FlipCodewordPositions(frame []byte, positions []int) error {
	total := len(frame) * 8
	for _, p := range positions {
		if p < 0 || p >= total {
			return fmt.Errorf("errmodel: position %d outside %d-bit frame", p, total)
		}
		idx := total - 1 - p
		frame[idx/8] ^= 1 << uint(7-idx%8)
	}
	return nil
}

// Report aggregates the outcome of a trial run.
type Report struct {
	Channel    string
	Trials     int
	Clean      int // channel flipped no bits
	Detected   int
	Undetected int
}

// UndetectedFraction is the fraction of corrupted frames that passed the
// CRC check.
func (r Report) UndetectedFraction() float64 {
	corrupted := r.Trials - r.Clean
	if corrupted == 0 {
		return 0
	}
	return float64(r.Undetected) / float64(corrupted)
}

// Estimator runs Monte-Carlo detection trials for one CRC algorithm.
type Estimator struct {
	engine crc.Engine
	rng    *rand.Rand
}

// NewEstimator builds an estimator with a deterministic seed.
func NewEstimator(e crc.Engine, seed uint64) *Estimator {
	return &Estimator{engine: e, rng: rand.New(rand.NewPCG(seed, 0xC0DEC0DE))}
}

// Run performs trials: each generates a random payload of payloadLen bytes,
// appends the CRC, corrupts the frame through the channel and checks
// whether the receiver notices (stored FCS vs recomputed FCS).
func (s *Estimator) Run(ch Channel, payloadLen, trials int) (Report, error) {
	if payloadLen < 1 || trials < 1 {
		return Report{}, fmt.Errorf("errmodel: invalid run parameters payload=%d trials=%d", payloadLen, trials)
	}
	rep := Report{Channel: ch.Name(), Trials: trials}
	width := s.engine.Params().Poly.Width()
	if width%8 != 0 {
		return Report{}, fmt.Errorf("errmodel: width %d not byte-aligned", width)
	}
	fcsBytes := width / 8
	payload := make([]byte, payloadLen)
	frame := make([]byte, payloadLen+fcsBytes)
	for t := 0; t < trials; t++ {
		for i := range payload {
			payload[i] = byte(s.rng.Uint64())
		}
		fcs := s.engine.Checksum(payload)
		copy(frame, payload)
		for i := 0; i < fcsBytes; i++ {
			frame[payloadLen+i] = byte(fcs >> uint(8*(fcsBytes-1-i)))
		}
		flips := ch.Corrupt(frame, s.rng)
		if flips == 0 {
			rep.Clean++
			continue
		}
		gotFCS := uint32(0)
		for i := 0; i < fcsBytes; i++ {
			gotFCS = gotFCS<<8 | uint32(frame[payloadLen+i])
		}
		if s.engine.Checksum(frame[:payloadLen]) == gotFCS {
			rep.Undetected++
		} else {
			rep.Detected++
		}
	}
	return rep, nil
}

package paperdata

import (
	"testing"

	"koopmancrc/internal/hamming"
	"koopmancrc/internal/poly"
)

func TestColumnsWellFormed(t *testing.T) {
	cols := Table1Columns()
	if len(cols) != 8 {
		t.Fatalf("%d columns, want 8", len(cols))
	}
	for _, c := range cols {
		shape, err := c.P.Shape()
		if err != nil {
			t.Fatalf("%s: %v", c.Label, err)
		}
		if shape != c.Shape {
			t.Errorf("%s: computed shape %s, recorded %s", c.Label, shape, c.Shape)
		}
		if c.Period != 0 {
			got, err := c.P.Period()
			if err != nil {
				t.Fatal(err)
			}
			if got != c.Period {
				t.Errorf("%s: period %d, recorded %d", c.Label, got, c.Period)
			}
		}
		// Anchors must be strictly descending in HD and ascending in To.
		for i := 1; i < len(c.Anchors); i++ {
			if c.Anchors[i].HD >= c.Anchors[i-1].HD {
				t.Errorf("%s: anchors not descending at %d", c.Label, i)
			}
			if c.Anchors[i].To <= c.Anchors[i-1].To {
				t.Errorf("%s: anchor ends not ascending at %d", c.Label, i)
			}
		}
		last := c.Anchors[len(c.Anchors)-1]
		if last.To != MaxComputedBits || !last.Open {
			t.Errorf("%s: last anchor should extend to the computed range end", c.Label)
		}
	}
}

func TestTable2ExpectedTotals(t *testing.T) {
	// §4.2's prose says filtering left 21,292 polynomials with HD=6 at MTU
	// length, but the published Table 2 classes sum to 21,392 — an internal
	// inconsistency of the paper (off by exactly 100). We pin the table sum
	// and document the prose discrepancy in EXPERIMENTS.md.
	total := 0
	for _, n := range Table2Expected {
		total += n
	}
	if total != Table2Sum {
		t.Errorf("Table 2 classes sum to %d, want %d", total, Table2Sum)
	}
	if HD6SurvivorsAtMTU == Table2Sum {
		t.Error("prose and table sums unexpectedly agree; update the documented discrepancy")
	}
}

func TestCompareProfileAgainstCheapColumns(t *testing.T) {
	// The two cheap columns whose every anchor resolves quickly: 802.3
	// limited to 4K bits and the iSCSI polynomial limited to 8K bits are
	// covered in package hamming; here exercise the comparison plumbing on
	// a truncated 802.3 profile.
	ev := hamming.New(poly.IEEE8023)
	prof, err := ev.Profile(300, 13)
	if err != nil {
		t.Fatal(err)
	}
	col := Column{
		Label: "802.3 truncated", P: poly.IEEE8023,
		Anchors: []BandAnchor{
			{HD: 8, To: 91, Source: "prose"},
			{HD: 7, To: 171, Source: "prose"},
			{HD: 6, To: 268, Source: "prose"},
		},
	}
	for _, r := range CompareProfile(col, prof) {
		if !r.Match {
			t.Errorf("%s: expected %s, measured %s", r.Name, r.Expected, r.Measured)
		}
	}
}

// TestReproduceTable1 is the full Table 1 / Figure 1 reproduction to
// 131072 bits — the paper's central artifact. It takes a few minutes of
// single-core time and is skipped in -short runs (cmd/crctables produces
// the same comparison as a report).
func TestReproduceTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 reproduction in -short mode")
	}
	for _, col := range Table1Columns() {
		col := col
		t.Run(col.Label, func(t *testing.T) {
			ev := hamming.New(col.P)
			prof, err := ev.Profile(MaxComputedBits, col.MaxHD)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range CompareProfile(col, prof) {
				if !r.Match {
					t.Errorf("%s [%s]: expected %s, measured %s", r.Name, r.Source, r.Expected, r.Measured)
				} else {
					t.Logf("%s: %s (source: %s) ✓", r.Name, r.Measured, r.Source)
				}
			}
			// §4.2 global claims, checked per polynomial: no HD=6 at or
			// above 32739 bits, no HD=5 at or above 65507 bits.
			if l, ok := prof.MaxLenAtHD(6); ok && l >= NoHD6AtOrAbove {
				t.Errorf("HD=6 survives to %d, contradicting the paper's global bound %d", l, NoHD6AtOrAbove)
			}
			if l, ok := prof.MaxLenAtHD(5); ok && l >= NoHD5AtOrAbove {
				t.Errorf("HD=5 survives to %d, contradicting the paper's global bound %d", l, NoHD5AtOrAbove)
			}
		})
	}
}

func TestWeightAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("exact MTU weights in -short mode")
	}
	for _, a := range WeightAnchors() {
		ev := hamming.New(a.P)
		got, err := ev.Weight(a.W, a.DataLen)
		if err != nil {
			t.Fatalf("W%d(%d): %v", a.W, a.DataLen, err)
		}
		if got != a.Count {
			t.Errorf("%v W%d(%d) = %d, want %d [%s]", a.P, a.W, a.DataLen, got, a.Count, a.Source)
		}
	}
}

// Package paperdata records the quantitative claims of Koopman, "32-Bit
// Cyclic Redundancy Codes for Internet Applications" (DSN 2002, with the
// 2014 errata), in machine-checkable form, and compares computed results
// against them. It is the single source of truth for EXPERIMENTS.md.
//
// Provenance of each anchor is tagged: "prose" (stated in the running
// text), "table1" (legible Table 1 cell), "errata" (the 2014 correction),
// "derived" (reconstructed from garbled Table 1 cells via band contiguity
// and cross-row consistency; see DESIGN.md), or "measured" (our
// computation; the source cell is illegible).
package paperdata

import (
	"fmt"

	"koopmancrc/internal/hamming"
	"koopmancrc/internal/poly"
)

// Message lengths from the paper (data-word bits, excluding the CRC).
const (
	// AckDataBits is a 40-byte TCP acknowledgment packet: 400-bit data
	// word including 80 bits of protocol overhead.
	AckDataBits = 400
	// Ack512DataBits is an acknowledgment carrying 512 bytes of data.
	Ack512DataBits = 4496
	// MTUDataBits is the Ethernet maximum transmission unit data word,
	// the paper's headline evaluation length.
	MTUDataBits = 12112
	// MTUCodewordBits includes the 32-bit FCS.
	MTUCodewordBits = 12144
	// JumboDataBits is a 9000-byte Gigabit Ethernet jumbo frame payload.
	JumboDataBits = 72112
	// MaxComputedBits is the largest data-word length Table 1 covers.
	MaxComputedBits = 131072
	// Table1MinBits is the smallest length Table 1 reports.
	Table1MinBits = 8
)

// BandAnchor states that a polynomial holds exactly the given HD up to and
// including data-word length To (and the next band begins at To+1).
type BandAnchor struct {
	HD     int
	To     int
	Open   bool   // band extends beyond the computed range (To==MaxComputedBits)
	Source string // provenance tag
}

// Column is one Table 1 column: a polynomial and its expected band ends.
type Column struct {
	Label   string
	P       poly.P
	Shape   string
	Period  uint64       // expected ord(x); 0 when beyond Table 1's range
	Anchors []BandAnchor // descending HD, contiguous over [Table1MinBits, MaxComputedBits]
	MaxHD   int          // profile depth needed to resolve every anchor
}

// Table1Columns returns the expected Table 1 content.
func Table1Columns() []Column {
	return []Column{
		{
			Label: "IEEE 802.3", P: poly.IEEE8023, Shape: "{32}", Period: 0,
			MaxHD: 13,
			Anchors: []BandAnchor{
				{HD: 12, To: 12, Source: "derived"},
				{HD: 11, To: 21, Source: "derived"},
				{HD: 10, To: 34, Source: "derived"},
				{HD: 9, To: 57, Source: "derived"},
				{HD: 8, To: 91, Source: "prose"},
				{HD: 7, To: 171, Source: "prose"},
				{HD: 6, To: 268, Source: "prose"},
				{HD: 5, To: 2974, Source: "prose"},
				{HD: 4, To: 91607, Source: "prose"},
				{HD: 3, To: MaxComputedBits, Open: true, Source: "prose"},
			},
		},
		{
			Label: "Castagnoli iSCSI 0x8F6E37A0", P: poly.CastagnoliISCSI, Shape: "{1,31}",
			Period: 2147483647, MaxHD: 13,
			Anchors: []BandAnchor{
				{HD: 12, To: 20, Source: "derived"},
				{HD: 10, To: 47, Source: "derived"},
				{HD: 8, To: 177, Source: "table1"},
				{HD: 6, To: 5243, Source: "table1"},
				{HD: 4, To: MaxComputedBits, Open: true, Source: "table1"},
			},
		},
		{
			Label: "Koopman 0xBA0DC66B", P: poly.Koopman32K, Shape: "{1,3,28}",
			Period: 114695, MaxHD: 13,
			Anchors: []BandAnchor{
				{HD: 12, To: 16, Source: "derived"},
				{HD: 10, To: 18, Source: "derived"},
				{HD: 8, To: 152, Source: "table1"},
				{HD: 6, To: 16360, Source: "prose"},
				{HD: 4, To: 114663, Source: "prose"},
				{HD: 2, To: MaxComputedBits, Open: true, Source: "table1"},
			},
		},
		{
			Label: "Castagnoli 0xFA567D89", P: poly.Castagnoli1131515, Shape: "{1,1,15,15}",
			Period: 65534, MaxHD: 13,
			Anchors: []BandAnchor{
				{HD: 12, To: 11, Source: "derived"},
				{HD: 10, To: 24, Source: "derived"},
				{HD: 8, To: 274, Source: "table1"},
				{HD: 6, To: 32736, Source: "table1"},
				{HD: 4, To: 65502, Source: "table1"},
				{HD: 2, To: MaxComputedBits, Open: true, Source: "table1"},
			},
		},
		{
			Label: "Koopman 0x992C1A4C", P: poly.Koopman1130, Shape: "{1,1,30}",
			Period: 65538, MaxHD: 13,
			Anchors: []BandAnchor{
				{HD: 12, To: 16, Source: "derived"},
				{HD: 10, To: 26, Source: "derived"},
				{HD: 8, To: 134, Source: "table1"},
				{HD: 6, To: 32738, Source: "errata"},
				{HD: 4, To: 65506, Source: "derived"},
				{HD: 2, To: MaxComputedBits, Open: true, Source: "table1"},
			},
		},
		{
			Label: "Koopman 0x90022004", P: poly.KoopmanSparse6, Shape: "{1,1,30}",
			Period: 65538, MaxHD: 7,
			Anchors: []BandAnchor{
				{HD: 6, To: 32738, Source: "table1"},
				{HD: 4, To: 65506, Source: "derived"},
				{HD: 2, To: MaxComputedBits, Open: true, Source: "table1"},
			},
		},
		{
			Label: "Castagnoli 0xD419CC15", P: poly.CastagnoliHD5, Shape: "{32}",
			Period: 65537, MaxHD: 13,
			Anchors: []BandAnchor{
				{HD: 12, To: 17, Source: "derived"},
				{HD: 11, To: 21, Source: "derived"},
				{HD: 10, To: 27, Source: "derived"},
				{HD: 8, To: 58, Source: "derived"},
				{HD: 7, To: 81, Source: "derived"},
				{HD: 6, To: 1060, Source: "table1"},
				{HD: 5, To: 65505, Source: "table1"},
				{HD: 2, To: MaxComputedBits, Open: true, Source: "table1"},
			},
		},
		{
			Label: "Koopman 0x80108400", P: poly.KoopmanSparse5, Shape: "{32}",
			Period: 65537, MaxHD: 6,
			Anchors: []BandAnchor{
				{HD: 5, To: 65505, Source: "table1"},
				{HD: 2, To: MaxComputedBits, Open: true, Source: "table1"},
			},
		},
	}
}

// WeightAnchor is an exact weight value stated in the paper.
type WeightAnchor struct {
	P       poly.P
	W       int
	DataLen int
	Count   uint64
	Source  string
}

// WeightAnchors returns the paper's exact weight claims.
func WeightAnchors() []WeightAnchor {
	return []WeightAnchor{
		{P: poly.IEEE8023, W: 4, DataLen: MTUDataBits, Count: 223059, Source: "prose §3"},
		{P: poly.IEEE8023, W: 4, DataLen: 2975, Count: 1, Source: "prose §4.1"},
		{P: poly.IEEE8023, W: 4, DataLen: 2974, Count: 0, Source: "prose §4.1"},
	}
}

// GlobalClaims are paper statements about the whole design space that our
// reproduction checks on the Table 1 polynomials (full-space verification
// is the original multi-CPU-year campaign).
const (
	// NoHD6AtOrAbove is the length from §4.2: "no possible polynomials of
	// any class with HD=6 at or above 32739 bits".
	NoHD6AtOrAbove = 32739
	// NoHD5AtOrAbove: "no polynomials with HD=5 at or above 65507 bits".
	NoHD5AtOrAbove = 65507
	// HD6SurvivorsAtMTU is the §4.2 prose count of polynomials with HD=6
	// at 12112 bits (21,292), all divisible by (x+1).
	HD6SurvivorsAtMTU = 21292
	// Table2Sum is what the published Table 2 classes actually add up to.
	// It disagrees with the prose count by exactly 100 — an internal
	// inconsistency of the paper that EXPERIMENTS.md documents (we cannot
	// resolve which figure is correct without the full-space campaign).
	Table2Sum = 21392
)

// Table2Expected is the paper's Table 2: distinct polynomials achieving
// HD=6 at MTU length, per factorization class.
var Table2Expected = map[string]int{
	"{1,1,30}":        658,
	"{1,3,28}":        448,
	"{1,1,15,15}":     9887,
	"{1,1,2,28}":      895,
	"{1,3,14,14}":     4154,
	"{1,1,1,1,28}":    448,
	"{1,1,2,14,14}":   2639,
	"{1,1,1,1,14,14}": 2263,
}

// CheckResult is one compared value.
type CheckResult struct {
	Name     string
	Expected string
	Measured string
	Source   string
	Match    bool
}

// CompareProfile checks a computed profile against a column's anchors.
func CompareProfile(col Column, prof *hamming.Profile) []CheckResult {
	var out []CheckResult
	for _, a := range col.Anchors {
		got, ok := prof.MaxLenAtHD(a.HD)
		name := fmt.Sprintf("%s HD=%d through", col.Label, a.HD)
		expected := fmt.Sprintf("%d", a.To)
		if a.Open {
			expected = fmt.Sprintf(">=%d", a.To)
		}
		measured := "none"
		if ok {
			measured = fmt.Sprintf("%d", got)
		}
		match := ok && (got == a.To || (a.Open && got >= a.To))
		out = append(out, CheckResult{
			Name: name, Expected: expected, Measured: measured,
			Source: a.Source, Match: match,
		})
	}
	return out
}

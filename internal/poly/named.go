package poly

// Named polynomials. The 32-bit entries are the eight polynomials of the
// paper's Table 1 plus the misprinted Castagnoli value discussed in §3;
// smaller widths are the standards used for validation (§4.5).
var (
	// IEEE8023 is the IEEE 802.3 (Ethernet) CRC-32, Koopman 0x82608EDB,
	// normal 0x04C11DB7.
	IEEE8023 = MustKoopman(32, 0x82608EDB)

	// CastagnoliISCSI is Castagnoli's {1,31} polynomial 0x8F6E37A0
	// (normal 0x1EDC6F41), recommended by Sheinwald et al. for iSCSI and
	// standardized as CRC-32C.
	CastagnoliISCSI = MustKoopman(32, 0x8F6E37A0)

	// Koopman32K is the paper's new {1,3,28} polynomial 0xBA0DC66B with
	// HD=6 to 16360 bits and HD=4 to 114663 bits.
	Koopman32K = MustKoopman(32, 0xBA0DC66B)

	// Castagnoli1131515 is Castagnoli's optimal {1,1,15,15} polynomial
	// 0xFA567D89 (full form 0x1F4ACFB13), HD=6 to almost 32K bits.
	Castagnoli1131515 = MustKoopman(32, 0xFA567D89)

	// CastagnoliMisprint is the value actually printed in Table XI of
	// Castagnoli 1993 (1F6ACFB13): a one-bit transcription error from the
	// intended 1F4ACFB13. The paper shows it achieves HD=6 only to 382 bits.
	CastagnoliMisprint = MustKoopman(32, 0xFB567D89)

	// Koopman1130 is the {1,1,30} polynomial 0x992C1A4C characterized in
	// the paper; per the 2014 errata it has HD=6 through 32738 bits.
	Koopman1130 = MustKoopman(32, 0x992C1A4C)

	// KoopmanSparse6 is 0x90022004, the polynomial with the fewest non-zero
	// coefficients (five) attaining HD=6 to almost 32K bits.
	KoopmanSparse6 = MustKoopman(32, 0x90022004)

	// CastagnoliHD5 is Castagnoli's irreducible {32} polynomial 0xD419CC15
	// with HD=5 to almost 64K bits.
	CastagnoliHD5 = MustKoopman(32, 0xD419CC15)

	// KoopmanSparse5 is 0x80108400, the minimum-weight polynomial achieving
	// HD=5 up to nearly 64K bits.
	KoopmanSparse5 = MustKoopman(32, 0x80108400)

	// CCITT16 is the CRC-16/CCITT generator x^16+x^12+x^5+1.
	CCITT16 = MustKoopman(16, 0x8810)

	// ARC16 is the CRC-16/ARC ("CRC-16/IBM") generator x^16+x^15+x^2+1.
	ARC16 = MustKoopman(16, 0xC002)

	// ATM8 is the CRC-8/ATM HEC generator x^8+x^2+x+1.
	ATM8 = MustKoopman(8, 0x83)

	// DARC8 is the CRC-8/DARC generator x^8+x^5+x^4+x^3+1 (normal 0x39).
	DARC8 = MustKoopman(8, 0x9C)
)

// NamedPoly pairs a polynomial with the label used in the paper's tables.
type NamedPoly struct {
	Label string
	P     P
}

// Table1 returns the eight polynomials of the paper's Table 1 / Figure 1 in
// column order.
func Table1() []NamedPoly {
	return []NamedPoly{
		{"IEEE 802.3", IEEE8023},
		{"Castagnoli (iSCSI)", CastagnoliISCSI},
		{"Koopman {1,3,28}", Koopman32K},
		{"Castagnoli {1,1,15,15}", Castagnoli1131515},
		{"Koopman {1,1,30}", Koopman1130},
		{"Koopman 0x90022004", KoopmanSparse6},
		{"Castagnoli {32}", CastagnoliHD5},
		{"Koopman 0x80108400", KoopmanSparse5},
	}
}

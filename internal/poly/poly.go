// Package poly defines the CRC generator polynomial representations used
// throughout the repository and the conversions between them.
//
// A width-r CRC generator is a degree-r polynomial over GF(2) with non-zero
// constant term. Four representations are in common use:
//
//   - Koopman: an r-bit integer whose bit i holds the coefficient of
//     x^(i+1); the +1 term is implicit and the top bit (x^r) is explicit.
//     This is the paper's notation (0x82608EDB for the 802.3 CRC).
//   - Normal (MSB-first): an r-bit integer whose bit i holds the coefficient
//     of x^i; the x^r term is implicit (0x04C11DB7 for the 802.3 CRC).
//   - Reversed (LSB-first): the bit-reversal of the normal form, used by
//     reflected implementations such as hash/crc32 (0xEDB88320).
//   - Full: the explicit (r+1)-bit polynomial (0x104C11DB7).
package poly

import (
	"fmt"
	"strconv"
	"strings"

	"koopmancrc/internal/gf2"
)

// Notation identifies a polynomial encoding convention.
type Notation int

// Supported notations.
const (
	Koopman Notation = iota + 1
	Normal
	Reversed
	Full
)

// String returns the notation name.
func (n Notation) String() string {
	switch n {
	case Koopman:
		return "koopman"
	case Normal:
		return "normal"
	case Reversed:
		return "reversed"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Notation(%d)", int(n))
	}
}

// P is a CRC generator polynomial of a given width. The zero value is
// invalid; construct with FromKoopman and friends.
type P struct {
	width   int    // CRC width r (degree of the generator), 1..32
	koopman uint64 // Koopman representation, top bit always set
}

// FromKoopman builds a polynomial from the paper's representation. The top
// bit (coefficient of x^width) must be set, which is exactly the condition
// that the generator has degree width.
func FromKoopman(width int, k uint64) (P, error) {
	if width < 1 || width > 32 {
		return P{}, fmt.Errorf("poly: unsupported width %d", width)
	}
	if k>>(uint(width)-1) != 1 {
		return P{}, fmt.Errorf("poly: %#x does not encode a degree-%d generator (top bit clear or overflow)", k, width)
	}
	return P{width: width, koopman: k}, nil
}

// MustKoopman is FromKoopman for known-good constants; it panics on error.
func MustKoopman(width int, k uint64) P {
	p, err := FromKoopman(width, k)
	if err != nil {
		panic(err)
	}
	return p
}

// FromNormal builds a polynomial from the normal (MSB-first, implicit x^r)
// representation. The constant term (+1) must be present.
func FromNormal(width int, n uint64) (P, error) {
	if width < 1 || width > 32 {
		return P{}, fmt.Errorf("poly: unsupported width %d", width)
	}
	if n&1 == 0 {
		return P{}, fmt.Errorf("poly: normal form %#x has zero constant term", n)
	}
	if width < 64 && n>>uint(width) != 0 {
		return P{}, fmt.Errorf("poly: normal form %#x overflows width %d", n, width)
	}
	full := n | 1<<uint(width)
	return P{width: width, koopman: full >> 1}, nil
}

// FromReversed builds a polynomial from the reflected (LSB-first)
// representation used by hash/crc32.
func FromReversed(width int, r uint64) (P, error) {
	if width >= 1 && width < 64 && r>>uint(width) != 0 {
		// Without this check the overflow bits would silently reverse
		// out of range, accepting a corrupted constant.
		return P{}, fmt.Errorf("poly: reversed form %#x overflows width %d", r, width)
	}
	n := uint64(gf2.Reverse(gf2.Poly(r), width))
	return FromNormal(width, n)
}

// FromFull builds a polynomial from the explicit (width+1)-bit form.
func FromFull(full gf2.Poly) (P, error) {
	d := full.Deg()
	if d < 1 || d > 32 {
		return P{}, fmt.Errorf("poly: full form %#x has unsupported degree %d", uint64(full), d)
	}
	if full&1 == 0 {
		return P{}, fmt.Errorf("poly: full form %#x has zero constant term", uint64(full))
	}
	return P{width: d, koopman: uint64(full) >> 1}, nil
}

// Width returns the CRC width r (the generator degree).
func (p P) Width() int { return p.width }

// Koopman returns the paper's representation.
func (p P) Koopman() uint64 { return p.koopman }

// Full returns the explicit polynomial.
func (p P) Full() gf2.Poly { return gf2.Poly(p.koopman<<1 | 1) }

// Normal returns the MSB-first representation with implicit x^r term.
func (p P) Normal() uint64 { return uint64(p.Full()) &^ (1 << uint(p.width)) }

// Reversed returns the LSB-first (reflected) representation.
func (p P) Reversed() uint64 { return uint64(gf2.Reverse(gf2.Poly(p.Normal()), p.width)) }

// In returns the representation of p in the given notation.
func (p P) In(n Notation) uint64 {
	switch n {
	case Koopman:
		return p.Koopman()
	case Normal:
		return p.Normal()
	case Reversed:
		return p.Reversed()
	case Full:
		return uint64(p.Full())
	default:
		return 0
	}
}

// IsZero reports whether p is the invalid zero value.
func (p P) IsZero() bool { return p.width == 0 }

// String formats the polynomial as its Koopman hex form, e.g. "0xBA0DC66B".
func (p P) String() string {
	digits := (p.width + 3) / 4
	return fmt.Sprintf("0x%0*X", digits, p.koopman)
}

// Reciprocal returns the reciprocal polynomial (coefficients reversed).
// CRC error-detection performance is identical for reciprocal pairs, which
// is what halves the paper's search space.
func (p P) Reciprocal() P {
	full := gf2.Reciprocal(p.Full())
	return P{width: p.width, koopman: uint64(full) >> 1}
}

// IsPalindrome reports whether p is self-reciprocal. Palindromic generators
// are the reason the 32-bit design space has slightly more than 2^30
// members after reciprocal deduplication.
func (p P) IsPalindrome() bool { return p == p.Reciprocal() }

// Terms returns the exponents with non-zero coefficients, descending, e.g.
// [32 26 23 ... 1 0] for the 802.3 generator.
func (p P) Terms() []int {
	full := p.Full()
	var out []int
	for i := p.width; i >= 0; i-- {
		if full&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// AlgebraicString renders the polynomial as "x^32 + x^26 + ... + x + 1".
func (p P) AlgebraicString() string {
	var b strings.Builder
	for i, e := range p.Terms() {
		if i > 0 {
			b.WriteString(" + ")
		}
		switch e {
		case 0:
			b.WriteString("1")
		case 1:
			b.WriteString("x")
		default:
			b.WriteString("x^")
			b.WriteString(strconv.Itoa(e))
		}
	}
	return b.String()
}

// Factorize returns the irreducible factorization of the generator.
func (p P) Factorize() ([]gf2.Factor, error) {
	return gf2.Factorize(p.Full())
}

// Shape returns the paper's factorization-class notation, e.g. "{1,3,28}".
func (p P) Shape() (string, error) {
	factors, err := p.Factorize()
	if err != nil {
		return "", err
	}
	return ShapeString(gf2.Shape(factors)), nil
}

// ShapeString formats a sorted degree multiset as the paper's notation.
func ShapeString(degrees []int) string {
	parts := make([]string, len(degrees))
	for i, d := range degrees {
		parts[i] = strconv.Itoa(d)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// DivisibleByXPlus1 reports whether (x+1) divides the generator — the
// implicit-parity property shared, per the paper, by every polynomial with
// HD=6 at MTU length.
func (p P) DivisibleByXPlus1() bool {
	return gf2.Mod(p.Full(), gf2.XPlus1) == 0
}

// Period returns ord(x) modulo the generator: the maximum codeword length
// (in bits) at which all 2-bit errors are still detected is Period()+1...
// precisely, the first undetectable 2-bit error spans positions {0, Period()}
// and therefore needs a codeword of Period()+1 bits.
func (p P) Period() (uint64, error) {
	return gf2.OrderOfX(p.Full())
}

// Parse reads a polynomial written as hex (0x-prefixed or bare) in the given
// notation and width.
func Parse(width int, notation Notation, s string) (P, error) {
	s = strings.TrimPrefix(strings.TrimSpace(strings.ToLower(s)), "0x")
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return P{}, fmt.Errorf("poly: parse %q: %w", s, err)
	}
	switch notation {
	case Koopman:
		return FromKoopman(width, v)
	case Normal:
		return FromNormal(width, v)
	case Reversed:
		return FromReversed(width, v)
	case Full:
		return FromFull(gf2.Poly(v))
	default:
		return P{}, fmt.Errorf("poly: unknown notation %v", notation)
	}
}

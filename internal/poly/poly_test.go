package poly

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"koopmancrc/internal/gf2"
)

func TestRepresentations8023(t *testing.T) {
	// The classic CRC-32 in all four notations.
	p := IEEE8023
	if got := p.Koopman(); got != 0x82608EDB {
		t.Errorf("Koopman = %#x", got)
	}
	if got := p.Normal(); got != 0x04C11DB7 {
		t.Errorf("Normal = %#x, want 0x04C11DB7", got)
	}
	if got := p.Reversed(); got != 0xEDB88320 {
		t.Errorf("Reversed = %#x, want 0xEDB88320", got)
	}
	if got := p.Full(); got != 0x104C11DB7 {
		t.Errorf("Full = %#x, want 0x104C11DB7", uint64(got))
	}
}

func TestRepresentationsCRC32C(t *testing.T) {
	p := CastagnoliISCSI
	if got := p.Normal(); got != 0x1EDC6F41 {
		t.Errorf("Normal = %#x, want 0x1EDC6F41 (CRC-32C)", got)
	}
	if got := p.Reversed(); got != 0x82F63B78 {
		t.Errorf("Reversed = %#x, want 0x82F63B78 (hash/crc32 Castagnoli)", got)
	}
}

func TestKoopman32KMatchesStdlibConstant(t *testing.T) {
	// hash/crc32 exposes Koopman == 0xEB31D82E (reversed); that constant is
	// exactly the paper's 0xBA0DC66B.
	if got := Koopman32K.Reversed(); got != 0xEB31D82E {
		t.Errorf("Reversed = %#x, want 0xEB31D82E", got)
	}
}

func TestCastagnoliFullForms(t *testing.T) {
	if got := Castagnoli1131515.Full(); got != 0x1F4ACFB13 {
		t.Errorf("Full = %#x, want 0x1F4ACFB13 (corrected Castagnoli value)", uint64(got))
	}
	if got := CastagnoliMisprint.Full(); got != 0x1F6ACFB13 {
		t.Errorf("Full = %#x, want 0x1F6ACFB13 (as misprinted)", uint64(got))
	}
}

func TestCCITT16(t *testing.T) {
	if got := CCITT16.Normal(); got != 0x1021 {
		t.Errorf("Normal = %#x, want 0x1021", got)
	}
	if got := CCITT16.Full(); got != 0x11021 {
		t.Errorf("Full = %#x, want 0x11021", uint64(got))
	}
}

func TestConversionRoundTrips(t *testing.T) {
	f := func(k uint32) bool {
		p, err := FromKoopman(32, uint64(k)|1<<31)
		if err != nil {
			return false
		}
		n, err := FromNormal(32, p.Normal())
		if err != nil || n != p {
			return false
		}
		r, err := FromReversed(32, p.Reversed())
		if err != nil || r != p {
			return false
		}
		fu, err := FromFull(p.Full())
		return err == nil && fu == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestConversionRoundTripsNarrowWidths(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, w := range []int{3, 8, 15, 16, 24, 31} {
		for i := 0; i < 200; i++ {
			k := rng.Uint64N(1<<uint(w)) | 1<<uint(w-1)
			p, err := FromKoopman(w, k)
			if err != nil {
				t.Fatal(err)
			}
			if q, err := FromNormal(w, p.Normal()); err != nil || q != p {
				t.Fatalf("width %d normal round trip failed for %v", w, p)
			}
			if q, err := FromReversed(w, p.Reversed()); err != nil || q != p {
				t.Fatalf("width %d reversed round trip failed for %v", w, p)
			}
		}
	}
}

func TestFromKoopmanValidation(t *testing.T) {
	if _, err := FromKoopman(32, 0x7FFFFFFF); err == nil {
		t.Error("expected error: top bit clear")
	}
	if _, err := FromKoopman(32, 0x1FFFFFFFF); err == nil {
		t.Error("expected error: overflow")
	}
	if _, err := FromKoopman(0, 1); err == nil {
		t.Error("expected error: width 0")
	}
	if _, err := FromKoopman(33, 1<<32); err == nil {
		t.Error("expected error: width 33")
	}
}

func TestFromNormalValidation(t *testing.T) {
	if _, err := FromNormal(32, 0x04C11DB6); err == nil {
		t.Error("expected error: even constant term")
	}
}

func TestReciprocal(t *testing.T) {
	// Reciprocal of the 802.3 polynomial: full form bit-reversed.
	r := IEEE8023.Reciprocal()
	if r.Width() != 32 {
		t.Fatalf("width = %d", r.Width())
	}
	want := gf2.Reciprocal(IEEE8023.Full())
	if r.Full() != want {
		t.Errorf("Reciprocal().Full() = %#x, want %#x", uint64(r.Full()), uint64(want))
	}
	if got := r.Reciprocal(); got != IEEE8023 {
		t.Errorf("double reciprocal = %v", got)
	}
}

func TestReciprocalProperty(t *testing.T) {
	f := func(k uint32) bool {
		p, err := FromKoopman(32, uint64(k)|1<<31)
		if err != nil {
			return false
		}
		r := p.Reciprocal()
		// Reciprocal preserves width and term count and is an involution.
		return r.Width() == 32 && len(r.Terms()) == len(p.Terms()) && r.Reciprocal() == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIsPalindrome(t *testing.T) {
	// x^2+x+1 -> full 0x7, palindrome.
	p := MustKoopman(2, 0x3)
	if !p.IsPalindrome() {
		t.Error("x^2+x+1 should be a palindrome")
	}
	if IEEE8023.IsPalindrome() {
		t.Error("802.3 generator is not a palindrome")
	}
}

func TestTermsAndAlgebraicString(t *testing.T) {
	p := CCITT16
	wantTerms := []int{16, 12, 5, 0}
	if got := p.Terms(); !reflect.DeepEqual(got, wantTerms) {
		t.Errorf("Terms = %v, want %v", got, wantTerms)
	}
	if got := p.AlgebraicString(); got != "x^16 + x^12 + x^5 + 1" {
		t.Errorf("AlgebraicString = %q", got)
	}
	if got := IEEE8023.AlgebraicString(); got != "x^32 + x^26 + x^23 + x^22 + x^16 + x^12 + x^11 + x^10 + x^8 + x^7 + x^5 + x^4 + x^2 + x + 1" {
		t.Errorf("802.3 AlgebraicString = %q", got)
	}
}

func TestShape(t *testing.T) {
	tests := []struct {
		p    P
		want string
	}{
		{IEEE8023, "{32}"},
		{CastagnoliISCSI, "{1,31}"},
		{Koopman32K, "{1,3,28}"},
		{Castagnoli1131515, "{1,1,15,15}"},
		{Koopman1130, "{1,1,30}"},
		{KoopmanSparse6, "{1,1,30}"},
		{CastagnoliHD5, "{32}"},
		{KoopmanSparse5, "{32}"},
		{CCITT16, "{1,15}"},
	}
	for _, tt := range tests {
		got, err := tt.p.Shape()
		if err != nil {
			t.Fatalf("%v: %v", tt.p, err)
		}
		if got != tt.want {
			t.Errorf("Shape(%v) = %s, want %s", tt.p, got, tt.want)
		}
	}
}

func TestDivisibleByXPlus1(t *testing.T) {
	tests := []struct {
		p    P
		want bool
	}{
		{IEEE8023, false},
		{CastagnoliISCSI, true},
		{Koopman32K, true},
		{Castagnoli1131515, true},
		{Koopman1130, true},
		{KoopmanSparse6, true},
		{CastagnoliHD5, false},
		{KoopmanSparse5, false},
	}
	for _, tt := range tests {
		if got := tt.p.DivisibleByXPlus1(); got != tt.want {
			t.Errorf("DivisibleByXPlus1(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := Koopman32K.String(); got != "0xBA0DC66B" {
		t.Errorf("String = %q", got)
	}
	if got := ATM8.String(); got != "0x83" {
		t.Errorf("String = %q", got)
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		s        string
		width    int
		notation Notation
		want     P
	}{
		{"0xBA0DC66B", 32, Koopman, Koopman32K},
		{"ba0dc66b", 32, Koopman, Koopman32K},
		{"0x04C11DB7", 32, Normal, IEEE8023},
		{"0xEDB88320", 32, Reversed, IEEE8023},
		{"0x104C11DB7", 32, Full, IEEE8023},
		{"0x8810", 16, Koopman, CCITT16},
	}
	for _, tt := range tests {
		got, err := Parse(tt.width, tt.notation, tt.s)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.s, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %v, want %v", tt.s, got, tt.want)
		}
	}
	if _, err := Parse(32, Koopman, "zz"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Parse(32, Notation(99), "0x1"); err == nil {
		t.Error("expected unknown notation error")
	}
}

func TestTable1Completeness(t *testing.T) {
	cols := Table1()
	if len(cols) != 8 {
		t.Fatalf("Table1 has %d columns, want 8", len(cols))
	}
	seen := make(map[uint64]bool)
	for _, c := range cols {
		if c.P.Width() != 32 {
			t.Errorf("%s: width %d", c.Label, c.P.Width())
		}
		if seen[c.P.Koopman()] {
			t.Errorf("%s: duplicate polynomial", c.Label)
		}
		seen[c.P.Koopman()] = true
	}
}

func TestNotationString(t *testing.T) {
	for n, want := range map[Notation]string{
		Koopman: "koopman", Normal: "normal", Reversed: "reversed", Full: "full",
	} {
		if got := n.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(n), got, want)
		}
	}
}

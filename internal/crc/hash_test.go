package crc

import (
	"hash/crc32"
	"io"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestDigestMatchesStdlibHash(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	std := crc32.NewIEEE()
	ours := NewDigest(New(CRC32IEEE))
	for trial := 0; trial < 30; trial++ {
		std.Reset()
		ours.Reset()
		n := 1 + int(rng.Uint64N(4096))
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		// Write in randomly sized chunks.
		for off := 0; off < n; {
			chunk := 1 + int(rng.Uint64N(257))
			if off+chunk > n {
				chunk = n - off
			}
			if _, err := std.Write(data[off : off+chunk]); err != nil {
				t.Fatal(err)
			}
			if _, err := ours.Write(data[off : off+chunk]); err != nil {
				t.Fatal(err)
			}
			off += chunk
		}
		if std.Sum32() != ours.Sum32() {
			t.Fatalf("Sum32 mismatch: %#x vs %#x", ours.Sum32(), std.Sum32())
		}
	}
}

func TestDigestSumAppends(t *testing.T) {
	d := NewDigest(New(CRC32C))
	if _, err := io.Copy(d, strings.NewReader("123456789")); err != nil {
		t.Fatal(err)
	}
	got := d.Sum([]byte{0xAA})
	want := []byte{0xAA, 0xE3, 0x06, 0x92, 0x83} // check value 0xE3069283
	if len(got) != len(want) {
		t.Fatalf("Sum = %x", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sum = %x, want %x", got, want)
		}
	}
	if d.Size() != 4 || d.BlockSize() != 1 {
		t.Errorf("Size=%d BlockSize=%d", d.Size(), d.BlockSize())
	}
}

func TestDigestNarrowWidth(t *testing.T) {
	d := NewDigest(New(CRC16ARC))
	if _, err := d.Write([]byte("123456789")); err != nil {
		t.Fatal(err)
	}
	if d.Sum32() != 0xBB3D {
		t.Errorf("Sum32 = %#x, want 0xBB3D", d.Sum32())
	}
	if got := d.Sum(nil); len(got) != 2 || got[0] != 0xBB || got[1] != 0x3D {
		t.Errorf("Sum = %x", got)
	}
	d.Reset()
	if _, err := d.Write([]byte("123456789")); err != nil {
		t.Fatal(err)
	}
	if d.Sum32() != 0xBB3D {
		t.Error("Reset broke the digest")
	}
}

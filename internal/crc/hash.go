package crc

import "hash"

// Digest adapts an Engine to the standard hash.Hash32 interface so any
// catalogued algorithm can drop into code written against hash/crc32.
type Digest struct {
	engine Engine
	state  uint32
}

var _ hash.Hash32 = (*Digest)(nil)

// NewDigest returns a hash.Hash32 over the engine's algorithm.
func NewDigest(e Engine) *Digest {
	return &Digest{engine: e, state: e.Init()}
}

// Write implements io.Writer; it never fails.
func (d *Digest) Write(p []byte) (int, error) {
	d.state = d.engine.Update(d.state, p)
	return len(p), nil
}

// Sum32 implements hash.Hash32.
func (d *Digest) Sum32() uint32 { return d.engine.Finalize(d.state) }

// Sum appends the big-endian CRC to b.
func (d *Digest) Sum(b []byte) []byte {
	s := d.Sum32()
	w := d.engine.Params().Poly.Width()
	for i := (w + 7) / 8; i > 0; i-- {
		b = append(b, byte(s>>uint(8*(i-1))))
	}
	return b
}

// Reset implements hash.Hash.
func (d *Digest) Reset() { d.state = d.engine.Init() }

// Size implements hash.Hash.
func (d *Digest) Size() int { return (d.engine.Params().Poly.Width() + 7) / 8 }

// BlockSize implements hash.Hash.
func (d *Digest) BlockSize() int { return 1 }

package crc

import (
	"encoding/binary"
	"fmt"
)

// Chorba is a table-free XOR-folding engine for reflected 32-bit
// algorithms, after "Chorba: A novel CRC32 implementation" (Russell,
// arXiv:2412.16398). Instead of lookup tables it uses the congruence
//
//	x^95 ≡ r95(x)  (mod G)
//
// to substitute every consumed 64-bit word of the message with an
// equivalent XOR pattern strictly inside the next 128 bits of the
// stream: a one at stream position j equals ones at positions j+95-d
// for each term x^d of r95, and with deg(r95) ≤ 31 those offsets all
// fall in [64, 95], clearing the word being consumed. The whole kernel
// is a handful of shifts and XORs on two carry registers — no table
// memory, no cache pressure — and the per-polynomial shift sequence is
// just the set bits of x^95 mod G.
//
// The three catalogued 32-bit generators get unrolled kernels with
// constant shift counts (see chorba_fold.go); every other reflected
// 32-bit polynomial runs the same fold through a loop over its shift
// list. The final <24 bytes finish through the table-free reflected
// bit loop.
type Chorba struct {
	params Params
	rpoly  uint32  // reversed generator, for the bit-serial tail
	shifts []uint8 // left-shift amounts: 31-d for each term x^d of x^95 mod G
	fold   func(uint32, []byte, uint32) uint32
}

var _ Engine = (*Chorba)(nil)

// NewChorba builds the table-free folding engine.
func NewChorba(p Params) (*Chorba, error) {
	if p.Poly.Width() != 32 {
		return nil, fmt.Errorf("crc: chorba requires width 32, got %d", p.Poly.Width())
	}
	if !p.RefIn || !p.RefOut {
		return nil, fmt.Errorf("crc: chorba requires reflected input and output")
	}
	e := &Chorba{params: p, rpoly: uint32(p.Poly.Reversed())}
	if f, ok := chorbaUnrolled[e.rpoly]; ok {
		e.fold = f
		return e, nil
	}
	r95 := xnModG(p, 95)
	for d := 31; d >= 0; d-- {
		if r95&(1<<uint(d)) != 0 {
			e.shifts = append(e.shifts, uint8(31-d))
		}
	}
	return e, nil
}

// le64 loads one 64-bit little-endian stream word: with reflected
// (LSB-first) input, bit k of the word is stream bit k.
func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// xnModG computes x^n mod G for the parameter set's generator.
func xnModG(p Params, n int) uint32 {
	gfull := uint64(p.Poly.Full())
	rem := uint64(1)
	for i := 0; i < n; i++ {
		rem <<= 1
		if rem&(1<<32) != 0 {
			rem ^= gfull
		}
	}
	return uint32(rem)
}

// refBitwiseUpdate is the table-free reflected byte loop shared by the
// folding kernels for short inputs and tails. The state is held in
// reflected form, like every reflected engine in this package.
func refBitwiseUpdate(rpoly, state uint32, data []byte) uint32 {
	for _, b := range data {
		state ^= uint32(b)
		for k := 0; k < 8; k++ {
			state = (state >> 1) ^ (rpoly & -(state & 1))
		}
	}
	return state
}

// chorbaTail materialises the two carry words over the remaining 16..23
// bytes and finishes bit-serially.
func chorbaTail(rpoly uint32, data []byte, c1, c2 uint64) uint32 {
	var buf [23]byte
	r := copy(buf[:], data)
	binary.LittleEndian.PutUint64(buf[0:8], binary.LittleEndian.Uint64(buf[0:8])^c1)
	binary.LittleEndian.PutUint64(buf[8:16], binary.LittleEndian.Uint64(buf[8:16])^c2)
	return refBitwiseUpdate(rpoly, 0, buf[:r])
}

// foldGeneric runs the fold with a per-polynomial shift list. It is the
// kernel for reflected 32-bit generators without an unrolled variant.
func (e *Chorba) foldGeneric(state uint32, data []byte) uint32 {
	c1, c2 := uint64(state), uint64(0)
	for len(data) >= 24 {
		w := binary.LittleEndian.Uint64(data) ^ c1
		c1, c2 = c2, 0
		for _, s := range e.shifts {
			c1 ^= w << s
			if s > 0 {
				c2 ^= w >> (64 - s)
			}
		}
		data = data[8:]
	}
	return chorbaTail(e.rpoly, data, c1, c2)
}

// Unrolled reports whether this generator has a constant-shift unrolled
// kernel (the catalogued 32-bit generators) rather than the roughly 4x
// slower variable-shift generic fold.
func (e *Chorba) Unrolled() bool { return e.fold != nil }

// Params implements Engine.
func (e *Chorba) Params() Params { return e.params }

// Init implements Engine.
func (e *Chorba) Init() uint32 { return reverseBits(e.params.Init, 32) }

// Finalize implements Engine.
func (e *Chorba) Finalize(state uint32) uint32 { return state ^ e.params.XorOut }

// Update implements Engine.
func (e *Chorba) Update(state uint32, data []byte) uint32 {
	if len(data) < 24 {
		return refBitwiseUpdate(e.rpoly, state, data)
	}
	if e.fold != nil {
		return e.fold(state, data, e.rpoly)
	}
	return e.foldGeneric(state, data)
}

// Checksum implements Engine.
func (e *Chorba) Checksum(data []byte) uint32 {
	return e.Finalize(e.Update(e.Init(), data))
}

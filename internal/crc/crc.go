// Package crc implements parameterised CRC computation for widths up to 32
// bits with six engines: bit-at-a-time (the reference), byte-wise table
// lookup, slicing-by-8, slicing-by-16, a table-free Chorba-style folding
// kernel, and a stdlib hash/crc32 delegate that rides CLMUL/SSE4.2 where
// the platform has them. Algorithms follow the Rocksoft model
// (init / reflect-in / reflect-out / xor-out) so every catalogued standard
// can be expressed; the engines are cross-checked against each other, against
// hash/crc32 and against GF(2) polynomial arithmetic in the tests.
package crc

import (
	"fmt"
	"math/bits"

	"koopmancrc/internal/gf2"
	"koopmancrc/internal/poly"
)

// Params describes a CRC algorithm in the Rocksoft parameter model.
type Params struct {
	Name   string // catalogue name, informational
	Poly   poly.P // generator polynomial
	Init   uint32 // initial register value (non-reflected convention)
	RefIn  bool   // process input bytes least-significant-bit first
	RefOut bool   // bit-reverse the register before XorOut
	XorOut uint32 // final XOR value
	Check  uint32 // CRC of the ASCII bytes "123456789", 0 if unknown
}

// Pure returns the parameter set that makes the CRC a plain polynomial
// remainder: crc(data) = data(x) * x^width mod G(x). This is the convention
// under which error-detection analysis (syndromes, weights, Hamming
// distance) is performed; reflection and init/xor values do not change
// which error patterns are detectable.
func Pure(p poly.P) Params {
	return Params{Name: "pure-" + p.String(), Poly: p}
}

// Mask returns the width-bit mask for the parameter set.
func (p Params) Mask() uint32 {
	w := p.Poly.Width()
	if w == 32 {
		return ^uint32(0)
	}
	return 1<<uint(w) - 1
}

// Engine computes CRCs for one parameter set.
type Engine interface {
	// Params returns the algorithm parameters the engine implements.
	Params() Params
	// Checksum returns the CRC of data.
	Checksum(data []byte) uint32
	// Update continues a CRC over more data; seed it with Init()...
	// Update(Init(), data) == Checksum(data) and updates compose:
	// Update(Update(s, a), b) == Update(s, append(a, b...)).
	Update(state uint32, data []byte) uint32
	// Init returns the initial streaming state.
	Init() uint32
	// Finalize converts a streaming state into the externally visible CRC.
	Finalize(state uint32) uint32
}

// reverseBits reverses the low w bits of v.
func reverseBits(v uint32, w int) uint32 {
	return bits.Reverse32(v) >> uint(32-w)
}

// Bitwise is the reference engine: one bit at a time, valid for every
// width 1..32 and every reflection combination.
type Bitwise struct {
	params Params
}

var _ Engine = (*Bitwise)(nil)

// NewBitwise returns the reference engine for the given parameters.
func NewBitwise(p Params) *Bitwise { return &Bitwise{params: p} }

// Params implements Engine.
func (e *Bitwise) Params() Params { return e.params }

// Init implements Engine.
func (e *Bitwise) Init() uint32 { return e.params.Init & e.params.Mask() }

// Finalize implements Engine.
func (e *Bitwise) Finalize(state uint32) uint32 {
	w := e.params.Poly.Width()
	if e.params.RefOut {
		state = reverseBits(state, w)
	}
	return (state ^ e.params.XorOut) & e.params.Mask()
}

// Update implements Engine.
func (e *Bitwise) Update(state uint32, data []byte) uint32 {
	w := e.params.Poly.Width()
	gen := uint32(e.params.Poly.Normal())
	mask := e.params.Mask()
	topBit := uint32(1) << uint(w-1)
	for _, b := range data {
		if e.params.RefIn {
			b = bits.Reverse8(b)
		}
		for bit := 7; bit >= 0; bit-- {
			in := uint32(b>>uint(bit)) & 1
			top := (state & topBit) != 0
			state = (state << 1) & mask
			if top != (in != 0) {
				state ^= gen
			}
		}
	}
	return state
}

// Checksum implements Engine.
func (e *Bitwise) Checksum(data []byte) uint32 {
	return e.Finalize(e.Update(e.Init(), data))
}

// Table is a 256-entry lookup-table engine for widths that are a multiple of
// 8. It requires RefIn == RefOut (every catalogued standard in this
// repository satisfies that).
type Table struct {
	params Params
	tab    [256]uint32
	shift  uint // w-8, for the normal (non-reflected) form
}

var _ Engine = (*Table)(nil)

// NewTable builds the lookup-table engine.
func NewTable(p Params) (*Table, error) {
	w := p.Poly.Width()
	if w%8 != 0 {
		return nil, fmt.Errorf("crc: table engine requires width divisible by 8, got %d", w)
	}
	if p.RefIn != p.RefOut {
		return nil, fmt.Errorf("crc: table engine requires RefIn == RefOut")
	}
	t := &Table{params: p, shift: uint(w - 8)}
	if p.RefIn {
		rev := uint32(p.Poly.Reversed())
		for i := 0; i < 256; i++ {
			c := uint32(i)
			for k := 0; k < 8; k++ {
				if c&1 != 0 {
					c = (c >> 1) ^ rev
				} else {
					c >>= 1
				}
			}
			t.tab[i] = c
		}
	} else {
		gen := uint32(p.Poly.Normal())
		mask := p.Mask()
		top := uint32(1) << uint(w-1)
		for i := 0; i < 256; i++ {
			c := uint32(i) << t.shift
			for k := 0; k < 8; k++ {
				if c&top != 0 {
					c = ((c << 1) & mask) ^ gen
				} else {
					c = (c << 1) & mask
				}
			}
			t.tab[i] = c
		}
	}
	return t, nil
}

// Params implements Engine.
func (e *Table) Params() Params { return e.params }

// Init implements Engine. For reflected algorithms the streaming state is
// held in reflected form so the byte loop is branch-free.
func (e *Table) Init() uint32 {
	init := e.params.Init & e.params.Mask()
	if e.params.RefIn {
		return reverseBits(init, e.params.Poly.Width())
	}
	return init
}

// Finalize implements Engine.
func (e *Table) Finalize(state uint32) uint32 {
	// Reflected engines keep the register pre-reflected, so RefOut is a
	// no-op there; normal engines never reflect.
	return (state ^ e.params.XorOut) & e.params.Mask()
}

// Update implements Engine.
func (e *Table) Update(state uint32, data []byte) uint32 {
	if e.params.RefIn {
		for _, b := range data {
			state = (state >> 8) ^ e.tab[byte(state)^b]
		}
		return state
	}
	for _, b := range data {
		state = ((state << 8) & e.params.Mask()) ^ e.tab[byte(state>>e.shift)^b]
	}
	return state
}

// Checksum implements Engine.
func (e *Table) Checksum(data []byte) uint32 {
	return e.Finalize(e.Update(e.Init(), data))
}

// Slicing8 is the slicing-by-8 engine for reflected 32-bit algorithms,
// processing eight bytes per step — the kind of software implementation the
// iSCSI effort contemplated for CRC-32C.
type Slicing8 struct {
	params Params
	tab    [8][256]uint32
}

var _ Engine = (*Slicing8)(nil)

// NewSlicing8 builds the slicing-by-8 engine.
func NewSlicing8(p Params) (*Slicing8, error) {
	if p.Poly.Width() != 32 {
		return nil, fmt.Errorf("crc: slicing-by-8 requires width 32, got %d", p.Poly.Width())
	}
	if !p.RefIn || !p.RefOut {
		return nil, fmt.Errorf("crc: slicing-by-8 requires reflected input and output")
	}
	e := &Slicing8{params: p}
	rev := uint32(p.Poly.Reversed())
	for i := 0; i < 256; i++ {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ rev
			} else {
				c >>= 1
			}
		}
		e.tab[0][i] = c
	}
	for i := 0; i < 256; i++ {
		c := e.tab[0][i]
		for k := 1; k < 8; k++ {
			c = e.tab[0][byte(c)] ^ (c >> 8)
			e.tab[k][i] = c
		}
	}
	return e, nil
}

// Params implements Engine.
func (e *Slicing8) Params() Params { return e.params }

// Init implements Engine.
func (e *Slicing8) Init() uint32 { return reverseBits(e.params.Init, 32) }

// Finalize implements Engine.
func (e *Slicing8) Finalize(state uint32) uint32 { return state ^ e.params.XorOut }

// Update implements Engine.
func (e *Slicing8) Update(state uint32, data []byte) uint32 {
	for len(data) >= 8 {
		s := state ^ (uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24)
		state = e.tab[7][byte(s)] ^
			e.tab[6][byte(s>>8)] ^
			e.tab[5][byte(s>>16)] ^
			e.tab[4][byte(s>>24)] ^
			e.tab[3][data[4]] ^
			e.tab[2][data[5]] ^
			e.tab[1][data[6]] ^
			e.tab[0][data[7]]
		data = data[8:]
	}
	for _, b := range data {
		state = (state >> 8) ^ e.tab[0][byte(state)^b]
	}
	return state
}

// Checksum implements Engine.
func (e *Slicing8) Checksum(data []byte) uint32 {
	return e.Finalize(e.Update(e.Init(), data))
}

// New returns the fastest engine the parameter set admits on structural
// grounds: the stdlib hardware delegate for generators it accelerates
// (IEEE, Castagnoli — its software fallback is itself slicing-by-8, so
// this never loses), then slicing-by-16, then byte-table, falling back
// to the reference bitwise engine. The public crchash package layers a
// measured once-per-process selection on top of this ordering.
func New(p Params) Engine {
	if h, err := NewHardware(p); err == nil && h.Accelerated() {
		return h
	}
	if s, err := NewSlicing16(p); err == nil {
		return s
	}
	if t, err := NewTable(p); err == nil {
		return t
	}
	return NewBitwise(p)
}

// RemainderCRC computes data(x) * x^width mod G(x) via gf2 arithmetic — an
// independent mathematical definition of the pure CRC used to validate the
// engines. Data bytes are interpreted MSB-first as the paper (and every
// network standard) transmits them.
func RemainderCRC(p poly.P, data []byte) uint32 {
	return uint32(remainder(p.Full(), p.Width(), data))
}

func remainder(g gf2.Poly, width int, data []byte) gf2.Poly {
	var rem gf2.Poly
	top := gf2.Poly(1) << uint(width)
	for _, b := range data {
		for bit := 7; bit >= 0; bit-- {
			rem <<= 1
			if b&(1<<uint(bit)) != 0 {
				rem |= 1
			}
			if rem&top != 0 {
				rem ^= g
			}
		}
	}
	// Multiply by x^width (append zero FCS field).
	for i := 0; i < width; i++ {
		rem <<= 1
		if rem&top != 0 {
			rem ^= g
		}
	}
	return rem
}

package crc

import (
	"fmt"
	"sort"
	"sync"

	"koopmancrc/internal/poly"
)

// Catalogued standard algorithms. Check values are the CRCs of the ASCII
// string "123456789" from the public CRC catalogues and are asserted in the
// tests.
var (
	// CRC32IEEE is the IEEE 802.3 / ISO-HDLC CRC-32 used by Ethernet, gzip
	// and zip (hash/crc32's ChecksumIEEE).
	CRC32IEEE = Params{
		Name: "CRC-32/IEEE-802.3", Poly: poly.IEEE8023,
		Init: 0xFFFFFFFF, RefIn: true, RefOut: true, XorOut: 0xFFFFFFFF,
		Check: 0xCBF43926,
	}

	// CRC32C is the Castagnoli CRC-32C adopted by iSCSI (RFC 3720), SCTP
	// and ext4 — the polynomial this paper's §4.3 proposes to improve upon.
	CRC32C = Params{
		Name: "CRC-32C/iSCSI", Poly: poly.CastagnoliISCSI,
		Init: 0xFFFFFFFF, RefIn: true, RefOut: true, XorOut: 0xFFFFFFFF,
		Check: 0xE3069283,
	}

	// CRC32K wraps the paper's 0xBA0DC66B in the same framing conventions
	// as CRC-32/CRC-32C (hash/crc32's Koopman table).
	CRC32K = Params{
		Name: "CRC-32K/Koopman", Poly: poly.Koopman32K,
		Init: 0xFFFFFFFF, RefIn: true, RefOut: true, XorOut: 0xFFFFFFFF,
	}

	// CRC16CCITTFalse is CRC-16/CCITT-FALSE (non-reflected 0x1021).
	CRC16CCITTFalse = Params{
		Name: "CRC-16/CCITT-FALSE", Poly: poly.CCITT16,
		Init: 0xFFFF, Check: 0x29B1,
	}

	// CRC16XModem is CRC-16/XMODEM (non-reflected 0x1021, zero init).
	CRC16XModem = Params{
		Name: "CRC-16/XMODEM", Poly: poly.CCITT16,
		Check: 0x31C3,
	}

	// CRC16ARC is CRC-16/ARC (reflected 0x8005).
	CRC16ARC = Params{
		Name: "CRC-16/ARC", Poly: poly.ARC16,
		RefIn: true, RefOut: true, Check: 0xBB3D,
	}

	// CRC8SMBus is CRC-8 (SMBus PEC, non-reflected 0x07).
	CRC8SMBus = Params{
		Name: "CRC-8/SMBUS", Poly: poly.ATM8,
		Check: 0xF4,
	}

	// CRC8DARC is CRC-8/DARC (reflected 0x39).
	CRC8DARC = Params{
		Name: "CRC-8/DARC", Poly: poly.DARC8,
		RefIn: true, RefOut: true, Check: 0x15,
	}
)

// registered holds user-added algorithms (see Register), guarded for
// concurrent registration and lookup.
var (
	regMu      sync.RWMutex
	registered []Params
)

// builtin returns the compiled-in standard parameter sets.
func builtin() []Params {
	return []Params{
		CRC32IEEE, CRC32C, CRC32K,
		CRC16CCITTFalse, CRC16XModem, CRC16ARC,
		CRC8SMBus, CRC8DARC,
	}
}

// registerCheckInput is the catalogue convention: every Check value is
// the CRC of these nine ASCII bytes.
var registerCheckInput = []byte("123456789")

// Register adds a user-defined algorithm to the catalogue under its
// Name. Names must be non-empty and unique across built-in and
// previously registered algorithms. A non-zero Check value is verified
// against the reference bitwise engine before the algorithm is accepted,
// so a mis-transcribed parameter set fails loudly at registration
// instead of silently corrupting checksums.
func Register(p Params) error {
	if p.Name == "" {
		return fmt.Errorf("crc: Register needs a non-empty Name")
	}
	if p.Poly.IsZero() {
		return fmt.Errorf("crc: Register %q: no generator polynomial", p.Name)
	}
	if p.Check != 0 {
		if got := NewBitwise(p).Checksum(registerCheckInput); got != p.Check {
			return fmt.Errorf("crc: Register %q: check value %#08x, but parameters compute %#08x",
				p.Name, p.Check, got)
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, q := range builtin() {
		if q.Name == p.Name {
			return fmt.Errorf("crc: algorithm %q is already catalogued", p.Name)
		}
	}
	for _, q := range registered {
		if q.Name == p.Name {
			return fmt.Errorf("crc: algorithm %q is already registered", p.Name)
		}
	}
	registered = append(registered, p)
	return nil
}

// Catalogue returns all catalogued parameter sets — built-in standards
// plus user registrations — sorted by name.
func Catalogue() []Params {
	all := builtin()
	regMu.RLock()
	all = append(all, registered...)
	regMu.RUnlock()
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Lookup finds a catalogued algorithm by name.
func Lookup(name string) (Params, error) {
	for _, p := range Catalogue() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("crc: unknown algorithm %q", name)
}

package crc

import (
	"fmt"
	"hash/crc32"
)

// Hardware delegates to the standard library's hash/crc32, which uses
// CLMUL folding for the IEEE polynomial and the SSE4.2 / ARMv8 CRC32C
// instructions for Castagnoli where the CPU has them. For any other
// reflected 32-bit generator the delegate is hash/crc32's portable
// byte-table loop, so construction succeeds but nothing is offloaded —
// Accelerated reports which case an engine landed in, and the measured
// Auto selection in crchash only picks Hardware when it actually wins.
type Hardware struct {
	params Params
	tab    *crc32.Table
	accel  bool
}

var _ Engine = (*Hardware)(nil)

// NewHardware builds the stdlib-delegating engine.
func NewHardware(p Params) (*Hardware, error) {
	if p.Poly.Width() != 32 {
		return nil, fmt.Errorf("crc: hardware engine requires width 32, got %d", p.Poly.Width())
	}
	if !p.RefIn || !p.RefOut {
		return nil, fmt.Errorf("crc: hardware engine requires reflected input and output")
	}
	rev := uint32(p.Poly.Reversed())
	return &Hardware{
		params: p,
		tab:    crc32.MakeTable(rev),
		accel:  rev == crc32.IEEE || rev == crc32.Castagnoli,
	}, nil
}

// Accelerated reports whether hash/crc32 has an architecture fast path
// for this generator (IEEE and Castagnoli); whether the running CPU
// actually provides the instructions is the stdlib's runtime decision,
// which the crchash startup micro-benchmark observes empirically.
func (e *Hardware) Accelerated() bool { return e.accel }

// Params implements Engine.
func (e *Hardware) Params() Params { return e.params }

// Init implements Engine. The state is held in reflected form like
// every reflected engine in this package.
func (e *Hardware) Init() uint32 { return reverseBits(e.params.Init, 32) }

// Finalize implements Engine.
func (e *Hardware) Finalize(state uint32) uint32 { return state ^ e.params.XorOut }

// Update implements Engine. hash/crc32's Update is the same reflected
// table recurrence wrapped in complements — Update(c, tab, p) computes
// ^update(^c, p) over the raw reflected register — so un-complementing
// at the boundary yields exactly this package's pure reflected state,
// for any Init/XorOut convention.
func (e *Hardware) Update(state uint32, data []byte) uint32 {
	return ^crc32.Update(^state, e.tab, data)
}

// Checksum implements Engine.
func (e *Hardware) Checksum(data []byte) uint32 {
	return e.Finalize(e.Update(e.Init(), data))
}

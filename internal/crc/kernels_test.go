package crc

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"koopmancrc/internal/poly"
)

// reflected32Kernels builds every reflected-32-bit kernel for the
// parameter set, keyed by a short name.
func reflected32Kernels(t *testing.T, p Params) map[string]Engine {
	t.Helper()
	s8, err := NewSlicing8(p)
	if err != nil {
		t.Fatal(err)
	}
	s16, err := NewSlicing16(p)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChorba(p)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHardware(p)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(p)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Engine{
		"table": tab, "slicing8": s8, "slicing16": s16, "chorba": ch, "hardware": hw,
	}
}

// randomReflected32Params derives a random reflected 32-bit parameter
// set (generator, init and xorout all random) from the rng.
func randomReflected32Params(rng *rand.Rand) Params {
	// Koopman form with the top bit forced keeps the generator degree 32;
	// an odd low bit is not required in that notation.
	k := rng.Uint64()&0xFFFFFFFF | 1<<31
	return Params{
		Name:   fmt.Sprintf("rand-%08x", k),
		Poly:   poly.MustKoopman(32, k),
		Init:   uint32(rng.Uint64()),
		RefIn:  true,
		RefOut: true,
		XorOut: uint32(rng.Uint64()),
	}
}

// TestKernelsCrossValidateRandomParams drives every reflected-32-bit
// kernel against the bitwise reference over random generators, random
// init/xorout conventions and payload lengths that exercise the odd
// (non-8-aligned, non-16-aligned, sub-cutover) paths of each kernel.
func TestKernelsCrossValidateRandomParams(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 211))
	for trial := 0; trial < 12; trial++ {
		p := randomReflected32Params(rng)
		ref := NewBitwise(p)
		kernels := reflected32Kernels(t, p)
		for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 39, 40, 63, 100, 257, 1024, 4097} {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.Uint64())
			}
			want := ref.Checksum(data)
			for name, e := range kernels {
				if got := e.Checksum(data); got != want {
					t.Fatalf("%s: %s mismatch at len %d: got %#x want %#x", p.Name, name, n, got, want)
				}
			}
		}
	}
}

// TestKernelsChunkedDigestOddOffsets pins that hash.Hash32 digests over
// each kernel produce the one-shot answer when writes are split at odd,
// adversarial offsets (1-byte writes straddling the 8/16/24-byte kernel
// strides included).
func TestKernelsChunkedDigestOddOffsets(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 77))
	params := []Params{CRC32IEEE, CRC32C, CRC32K, randomReflected32Params(rng)}
	for _, p := range params {
		ref := NewBitwise(p)
		data := make([]byte, 1033) // prime-ish, not a multiple of any stride
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		want := ref.Checksum(data)
		for name, e := range reflected32Kernels(t, p) {
			for _, cuts := range [][]int{
				{1}, {7}, {17}, {23}, {24}, {1, 2, 3}, {5, 30, 100, 1000}, {512, 513},
			} {
				d := NewDigest(e)
				prev := 0
				for _, c := range cuts {
					d.Write(data[prev:c])
					prev = c
				}
				d.Write(data[prev:])
				if got := d.Sum32(); got != want {
					t.Fatalf("%s: %s chunked at %v: got %#x want %#x", p.Name, name, cuts, got, want)
				}
			}
		}
	}
}

// TestKernelsRefuseInadmissibleParams pins that the reflected-32-only
// kernels reject non-reflected and non-32-bit parameter sets with a
// clear error naming the requirement.
func TestKernelsRefuseInadmissibleParams(t *testing.T) {
	nonReflected := CRC32IEEE
	nonReflected.RefIn, nonReflected.RefOut = false, false
	halfReflected := CRC32IEEE
	halfReflected.RefOut = false
	cases := []struct {
		name    string
		params  Params
		wantSub string
	}{
		{"width16", CRC16ARC, "width 32"},
		{"width8", CRC8DARC, "width 32"},
		{"non-reflected", nonReflected, "reflected"},
		{"half-reflected", halfReflected, "reflected"},
	}
	builders := map[string]func(Params) (Engine, error){
		"slicing16": func(p Params) (Engine, error) { return NewSlicing16(p) },
		"chorba":    func(p Params) (Engine, error) { return NewChorba(p) },
		"hardware":  func(p Params) (Engine, error) { return NewHardware(p) },
	}
	for bname, build := range builders {
		for _, tc := range cases {
			if _, err := build(tc.params); err == nil {
				t.Errorf("%s: expected error for %s params", bname, tc.name)
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("%s/%s: error %q does not name the %q requirement", bname, tc.name, err, tc.wantSub)
			}
		}
	}
}

// TestChorbaUnrolledShiftsMatch re-derives each unrolled kernel's shift
// sequence from x^95 mod G and checks the hardcoded constants by
// comparing the unrolled kernel's output against a generic-fold engine
// forced onto the same polynomial. A drifted shift constant changes the
// checksum on essentially any input.
func TestChorbaUnrolledShiftsMatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 15))
	for _, p := range []Params{CRC32IEEE, CRC32C, CRC32K} {
		e, err := NewChorba(p)
		if err != nil {
			t.Fatal(err)
		}
		if e.fold == nil {
			t.Fatalf("%s: expected an unrolled chorba kernel", p.Name)
		}
		// Force the generic path on a clone.
		g := &Chorba{params: p, rpoly: uint32(p.Poly.Reversed())}
		r95 := xnModG(p, 95)
		for d := 31; d >= 0; d-- {
			if r95&(1<<uint(d)) != 0 {
				g.shifts = append(g.shifts, uint8(31-d))
			}
		}
		if got := len(g.shifts); got != bits.OnesCount32(r95) {
			t.Fatalf("%s: shift list length %d != popcount(r95) %d", p.Name, got, bits.OnesCount32(r95))
		}
		for _, n := range []int{24, 100, 1000, 4096} {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.Uint64())
			}
			if eu, gu := e.Checksum(data), g.Checksum(data); eu != gu {
				t.Fatalf("%s: unrolled %#x != generic fold %#x at len %d", p.Name, eu, gu, n)
			}
		}
	}
}

// TestHardwareAccelerated pins which generators the stdlib delegate
// reports an architecture fast path for.
func TestHardwareAccelerated(t *testing.T) {
	for _, tc := range []struct {
		p    Params
		want bool
	}{
		{CRC32IEEE, true},
		{CRC32C, true},
		{CRC32K, false},
	} {
		hw, err := NewHardware(tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if hw.Accelerated() != tc.want {
			t.Errorf("%s: Accelerated() = %v, want %v", tc.p.Name, hw.Accelerated(), tc.want)
		}
	}
}

// throughput measures one engine's bytes/sec over a 1 MiB payload with
// a tiny fixed time budget — enough resolution to separate a CLMUL or
// CRC32-instruction path (tens of GB/s) from software slicing.
func throughput(e Engine, data []byte) float64 {
	e.Checksum(data) // warm tables and caches
	var done int64
	start := time.Now()
	for time.Since(start) < 30*time.Millisecond {
		e.Checksum(data)
		done += int64(len(data))
	}
	return float64(done) / time.Since(start).Seconds()
}

// TestHardwarePathEngaged asserts the stdlib delegate actually beats
// slicing-by-8 on this host for an accelerated generator. On hosts
// without CLMUL/SSE4.2 (or non-amd64/arm64 builds, GOAMD64 regardless)
// the stdlib falls back to its own software slicing, so the ratio test
// is skipped rather than failed — detection is empirical, not a CPU
// feature probe.
func TestHardwarePathEngaged(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement in -short mode")
	}
	data := make([]byte, 1<<20)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	hw, err := NewHardware(CRC32C)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := NewSlicing8(CRC32C)
	if err != nil {
		t.Fatal(err)
	}
	hwBps, s8Bps := throughput(hw, data), throughput(s8, data)
	ratio := hwBps / s8Bps
	t.Logf("hardware %.2f GB/s, slicing8 %.2f GB/s, ratio %.2fx", hwBps/1e9, s8Bps/1e9, ratio)
	if ratio < 1.5 {
		t.Skip("no hardware CRC acceleration detected on this host (stdlib fell back to software)")
	}
	if hwBps < 2*s8Bps {
		t.Errorf("hardware path engaged but only %.2fx slicing8", ratio)
	}
}

package crc

// Unrolled Chorba fold kernels for the three catalogued 32-bit
// generators. The shift sequences are the set bits of x^95 mod G,
// spelled out so the compiler emits constant-count shifts instead of
// the variable-shift loop in foldGeneric (about 4x faster in practice).
// TestChorbaUnrolledShiftsMatch re-derives every sequence from the
// polynomial and fails if a constant here drifts from the math.
//
//	CRC-32/IEEE-802.3 (reversed 0xEDB88320): x^95 mod G = 0x79005533
//	CRC-32C/iSCSI     (reversed 0x82F63B78): x^95 mod G = 0xE4BE3C92
//	CRC-32K/Koopman   (reversed 0xEB31D82E): x^95 mod G = 0xA54DA6B9

// chorbaUnrolled maps a reversed generator to its unrolled kernel.
var chorbaUnrolled = map[uint32]func(uint32, []byte, uint32) uint32{
	0xEDB88320: chorbaFoldIEEE,
	0x82F63B78: chorbaFoldCastagnoli,
	0xEB31D82E: chorbaFoldKoopman,
}

func chorbaFoldIEEE(state uint32, data []byte, rpoly uint32) uint32 {
	c1, c2 := uint64(state), uint64(0)
	for len(data) >= 24 {
		w := le64(data) ^ c1
		c1 = c2 ^ w<<31 ^ w<<30 ^ w<<27 ^ w<<26 ^ w<<23 ^ w<<21 ^ w<<19 ^
			w<<17 ^ w<<7 ^ w<<4 ^ w<<3 ^ w<<2 ^ w<<1
		c2 = w>>33 ^ w>>34 ^ w>>37 ^ w>>38 ^ w>>41 ^ w>>43 ^ w>>45 ^
			w>>47 ^ w>>57 ^ w>>60 ^ w>>61 ^ w>>62 ^ w>>63
		data = data[8:]
	}
	return chorbaTail(rpoly, data, c1, c2)
}

func chorbaFoldCastagnoli(state uint32, data []byte, rpoly uint32) uint32 {
	c1, c2 := uint64(state), uint64(0)
	for len(data) >= 24 {
		w := le64(data) ^ c1
		c1 = c2 ^ w<<30 ^ w<<27 ^ w<<24 ^ w<<21 ^ w<<20 ^ w<<19 ^ w<<18 ^
			w<<14 ^ w<<13 ^ w<<12 ^ w<<11 ^ w<<10 ^ w<<8 ^ w<<5 ^ w<<2 ^ w<<1 ^ w
		c2 = w>>34 ^ w>>37 ^ w>>40 ^ w>>43 ^ w>>44 ^ w>>45 ^ w>>46 ^
			w>>50 ^ w>>51 ^ w>>52 ^ w>>53 ^ w>>54 ^ w>>56 ^ w>>59 ^ w>>62 ^ w>>63
		data = data[8:]
	}
	return chorbaTail(rpoly, data, c1, c2)
}

func chorbaFoldKoopman(state uint32, data []byte, rpoly uint32) uint32 {
	c1, c2 := uint64(state), uint64(0)
	for len(data) >= 24 {
		w := le64(data) ^ c1
		c1 = c2 ^ w<<31 ^ w<<28 ^ w<<27 ^ w<<26 ^ w<<24 ^ w<<22 ^ w<<21 ^
			w<<18 ^ w<<16 ^ w<<15 ^ w<<13 ^ w<<12 ^ w<<9 ^ w<<7 ^ w<<5 ^ w<<2 ^ w
		c2 = w>>33 ^ w>>36 ^ w>>37 ^ w>>38 ^ w>>40 ^ w>>42 ^ w>>43 ^
			w>>46 ^ w>>48 ^ w>>49 ^ w>>51 ^ w>>52 ^ w>>55 ^ w>>57 ^ w>>59 ^ w>>62
		data = data[8:]
	}
	return chorbaTail(rpoly, data, c1, c2)
}

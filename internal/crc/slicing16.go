package crc

import (
	"encoding/binary"
	"fmt"
)

// Slicing16 is the slicing-by-16 engine for reflected 32-bit algorithms,
// processing sixteen bytes per step. It doubles Slicing8's stride: the
// sixteen 256-entry tables advance each byte's contribution past the
// whole 16-byte block in one lookup, so the sixteen loads per block are
// independent and the XOR reduction is the only serial chain.
type Slicing16 struct {
	params Params
	tab    [16][256]uint32
}

var _ Engine = (*Slicing16)(nil)

// NewSlicing16 builds the slicing-by-16 engine.
func NewSlicing16(p Params) (*Slicing16, error) {
	if p.Poly.Width() != 32 {
		return nil, fmt.Errorf("crc: slicing-by-16 requires width 32, got %d", p.Poly.Width())
	}
	if !p.RefIn || !p.RefOut {
		return nil, fmt.Errorf("crc: slicing-by-16 requires reflected input and output")
	}
	e := &Slicing16{params: p}
	rev := uint32(p.Poly.Reversed())
	for i := 0; i < 256; i++ {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ rev
			} else {
				c >>= 1
			}
		}
		e.tab[0][i] = c
	}
	for i := 0; i < 256; i++ {
		c := e.tab[0][i]
		for k := 1; k < 16; k++ {
			c = e.tab[0][byte(c)] ^ (c >> 8)
			e.tab[k][i] = c
		}
	}
	return e, nil
}

// Params implements Engine.
func (e *Slicing16) Params() Params { return e.params }

// Init implements Engine.
func (e *Slicing16) Init() uint32 { return reverseBits(e.params.Init, 32) }

// Finalize implements Engine.
func (e *Slicing16) Finalize(state uint32) uint32 { return state ^ e.params.XorOut }

// Update implements Engine.
func (e *Slicing16) Update(state uint32, data []byte) uint32 {
	for len(data) >= 16 {
		s := state ^ binary.LittleEndian.Uint32(data)
		state = e.tab[15][byte(s)] ^
			e.tab[14][byte(s>>8)] ^
			e.tab[13][byte(s>>16)] ^
			e.tab[12][byte(s>>24)] ^
			e.tab[11][data[4]] ^
			e.tab[10][data[5]] ^
			e.tab[9][data[6]] ^
			e.tab[8][data[7]] ^
			e.tab[7][data[8]] ^
			e.tab[6][data[9]] ^
			e.tab[5][data[10]] ^
			e.tab[4][data[11]] ^
			e.tab[3][data[12]] ^
			e.tab[2][data[13]] ^
			e.tab[1][data[14]] ^
			e.tab[0][data[15]]
		data = data[16:]
	}
	for _, b := range data {
		state = (state >> 8) ^ e.tab[0][byte(state)^b]
	}
	return state
}

// Checksum implements Engine.
func (e *Slicing16) Checksum(data []byte) uint32 {
	return e.Finalize(e.Update(e.Init(), data))
}

package crc

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"koopmancrc/internal/gf2"
	"koopmancrc/internal/poly"
)

var checkInput = []byte("123456789")

func engines(t *testing.T, p Params) []Engine {
	t.Helper()
	out := []Engine{NewBitwise(p)}
	if tab, err := NewTable(p); err == nil {
		out = append(out, tab)
	}
	if s8, err := NewSlicing8(p); err == nil {
		out = append(out, s8)
	}
	if s16, err := NewSlicing16(p); err == nil {
		out = append(out, s16)
	}
	if ch, err := NewChorba(p); err == nil {
		out = append(out, ch)
	}
	if hw, err := NewHardware(p); err == nil {
		out = append(out, hw)
	}
	return out
}

func TestCatalogueCheckValues(t *testing.T) {
	for _, params := range Catalogue() {
		if params.Check == 0 {
			continue // no published check value
		}
		for _, e := range engines(t, params) {
			if got := e.Checksum(checkInput); got != params.Check {
				t.Errorf("%s %T: Checksum(123456789) = %#x, want %#x",
					params.Name, e, got, params.Check)
			}
		}
	}
}

func TestAgainstStdlibCRC32(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	tables := map[string]*crc32.Table{
		"IEEE":       crc32.MakeTable(crc32.IEEE),
		"Castagnoli": crc32.MakeTable(crc32.Castagnoli),
		"Koopman":    crc32.MakeTable(crc32.Koopman),
	}
	ours := map[string]Params{
		"IEEE":       CRC32IEEE,
		"Castagnoli": CRC32C,
		"Koopman":    CRC32K,
	}
	for name, tab := range tables {
		params := ours[name]
		for trial := 0; trial < 50; trial++ {
			n := int(rng.Uint64N(2048))
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.Uint64())
			}
			want := crc32.Checksum(data, tab)
			for _, e := range engines(t, params) {
				if got := e.Checksum(data); got != want {
					t.Fatalf("%s %T: mismatch vs hash/crc32: got %#x want %#x (len %d)",
						name, e, got, want, n)
				}
			}
		}
	}
}

func TestStdlibKoopmanConstantIsPaperPolynomial(t *testing.T) {
	// Go's crc32.Koopman == 0xEB31D82E is the reflected form of the paper's
	// 0xBA0DC66B — the {1,3,28} polynomial found by this paper's search.
	if uint32(poly.Koopman32K.Reversed()) != crc32.Koopman {
		t.Fatalf("poly.Koopman32K.Reversed() = %#x, want crc32.Koopman = %#x",
			poly.Koopman32K.Reversed(), crc32.Koopman)
	}
}

func TestEnginesAgreeProperty(t *testing.T) {
	for _, params := range Catalogue() {
		params := params
		es := engines(t, params)
		if len(es) < 2 {
			continue
		}
		f := func(data []byte) bool {
			want := es[0].Checksum(data)
			for _, e := range es[1:] {
				if e.Checksum(data) != want {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", params.Name, err)
		}
	}
}

func TestStreamingUpdateComposes(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, params := range Catalogue() {
		for _, e := range engines(t, params) {
			data := make([]byte, 1+int(rng.Uint64N(512)))
			for i := range data {
				data[i] = byte(rng.Uint64())
			}
			cut := int(rng.Uint64N(uint64(len(data))))
			state := e.Update(e.Init(), data[:cut])
			state = e.Update(state, data[cut:])
			if got, want := e.Finalize(state), e.Checksum(data); got != want {
				t.Errorf("%s %T: streaming %#x != one-shot %#x", params.Name, e, got, want)
			}
		}
	}
}

func TestPureCRCMatchesPolynomialRemainder(t *testing.T) {
	// The pure CRC (no init/reflect/xor) must equal data(x)*x^w mod G(x):
	// this is the bridge between the byte engines and the GF(2) machinery
	// the Hamming-distance analysis relies on.
	rng := rand.New(rand.NewPCG(3, 1))
	polys := []poly.P{poly.IEEE8023, poly.CastagnoliISCSI, poly.Koopman32K, poly.CCITT16, poly.ATM8}
	for _, pp := range polys {
		e := NewBitwise(Pure(pp))
		for trial := 0; trial < 100; trial++ {
			data := make([]byte, 1+rng.Uint64N(64))
			for i := range data {
				data[i] = byte(rng.Uint64())
			}
			if got, want := e.Checksum(data), RemainderCRC(pp, data); got != want {
				t.Fatalf("%v: engine %#x != remainder %#x", pp, got, want)
			}
		}
	}
}

func TestCodewordProperty(t *testing.T) {
	// Appending the pure CRC as an FCS yields a codeword divisible by G:
	// crc(data || fcs) == 0. This is the defining property used throughout
	// the paper's analysis.
	rng := rand.New(rand.NewPCG(9, 9))
	for _, pp := range []poly.P{poly.IEEE8023, poly.Koopman32K, poly.CCITT16} {
		e := NewBitwise(Pure(pp))
		for trial := 0; trial < 50; trial++ {
			data := make([]byte, 1+rng.Uint64N(128))
			for i := range data {
				data[i] = byte(rng.Uint64())
			}
			fcs := e.Checksum(data)
			var frame []byte
			switch pp.Width() {
			case 32:
				frame = binary.BigEndian.AppendUint32(append([]byte(nil), data...), fcs)
			case 16:
				frame = binary.BigEndian.AppendUint16(append([]byte(nil), data...), uint16(fcs))
			case 8:
				frame = append(append([]byte(nil), data...), byte(fcs))
			}
			if got := e.Checksum(frame); got != 0 {
				t.Fatalf("%v: crc(data||fcs) = %#x, want 0", pp, got)
			}
		}
	}
}

func TestLinearityOfPureCRC(t *testing.T) {
	// With zero init/xorout the CRC is GF(2)-linear:
	// crc(a XOR b) = crc(a) XOR crc(b) for equal-length inputs. Linearity is
	// what reduces undetected-error analysis to codeword weight analysis.
	rng := rand.New(rand.NewPCG(17, 23))
	e := NewBitwise(Pure(poly.IEEE8023))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Uint64N(256)
		a := make([]byte, n)
		b := make([]byte, n)
		x := make([]byte, n)
		for i := range a {
			a[i] = byte(rng.Uint64())
			b[i] = byte(rng.Uint64())
			x[i] = a[i] ^ b[i]
		}
		if e.Checksum(x) != e.Checksum(a)^e.Checksum(b) {
			t.Fatal("pure CRC is not linear")
		}
	}
}

func TestBurstDetection(t *testing.T) {
	// "All burst errors of size less than or equal to the number of bits in
	// the CRC are detected" (paper §3): a burst of length <= w cannot be a
	// multiple of a degree-w generator with non-zero constant term.
	rng := rand.New(rand.NewPCG(31, 37))
	for _, pp := range []poly.P{poly.IEEE8023, poly.Koopman32K, poly.CastagnoliISCSI} {
		e := NewBitwise(Pure(pp))
		data := make([]byte, 256)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		base := e.Checksum(data)
		for trial := 0; trial < 300; trial++ {
			burstLen := 1 + int(rng.Uint64N(32)) // bits, <= width
			start := int(rng.Uint64N(uint64(len(data)*8 - burstLen)))
			corrupted := append([]byte(nil), data...)
			// Burst pattern with first and last bit set.
			for b := 0; b < burstLen; b++ {
				if b == 0 || b == burstLen-1 || rng.Uint64()&1 == 0 {
					pos := start + b
					corrupted[pos/8] ^= 1 << uint(7-pos%8)
				}
			}
			if e.Checksum(corrupted) == base {
				t.Fatalf("%v: undetected burst of length %d bits", pp, burstLen)
			}
		}
	}
}

func TestTableEngineErrors(t *testing.T) {
	if _, err := NewTable(Pure(poly.MustKoopman(5, 0x15))); err == nil {
		t.Error("expected error for width 5 table engine")
	}
	mixed := CRC32IEEE
	mixed.RefOut = false
	if _, err := NewTable(mixed); err == nil {
		t.Error("expected error for mixed reflection")
	}
}

func TestSlicing8Errors(t *testing.T) {
	if _, err := NewSlicing8(CRC16ARC); err == nil {
		t.Error("expected error for width 16 slicing engine")
	}
	if _, err := NewSlicing8(CRC16CCITTFalse); err == nil {
		t.Error("expected error for non-reflected slicing engine")
	}
}

func TestNewPicksFastestEngine(t *testing.T) {
	// IEEE and Castagnoli have stdlib architecture fast paths; the paper's
	// Koopman polynomial does not, so it gets the widest slicing kernel.
	if hw, ok := New(CRC32IEEE).(*Hardware); !ok || !hw.Accelerated() {
		t.Error("New(CRC32IEEE) should return an accelerated hardware engine")
	}
	if hw, ok := New(CRC32C).(*Hardware); !ok || !hw.Accelerated() {
		t.Error("New(CRC32C) should return an accelerated hardware engine")
	}
	if _, ok := New(CRC32K).(*Slicing16); !ok {
		t.Error("New(CRC32K) should return a slicing-by-16 engine")
	}
	if _, ok := New(CRC16CCITTFalse).(*Table); !ok {
		t.Error("New(CRC16CCITTFalse) should return a table engine")
	}
	if _, ok := New(Pure(poly.MustKoopman(5, 0x15))).(*Bitwise); !ok {
		t.Error("New(width 5) should return a bitwise engine")
	}
}

func TestLookup(t *testing.T) {
	got, err := Lookup("CRC-32C/iSCSI")
	if err != nil {
		t.Fatal(err)
	}
	if got.Poly != poly.CastagnoliISCSI {
		t.Errorf("Lookup returned wrong polynomial %v", got.Poly)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestOddWidthBitwise(t *testing.T) {
	// CRC-5/USB: poly 0x05 normal (width 5), reflected, init 0x1F,
	// xorout 0x1F, check 0x19.
	p5, err := poly.FromNormal(5, 0x05)
	if err != nil {
		t.Fatal(err)
	}
	e := NewBitwise(Params{Name: "CRC-5/USB", Poly: p5, Init: 0x1F, RefIn: true, RefOut: true, XorOut: 0x1F})
	if got := e.Checksum(checkInput); got != 0x19 {
		t.Errorf("CRC-5/USB check = %#x, want 0x19", got)
	}
}

func TestRemainderCRCAgreesWithGF2Mod(t *testing.T) {
	// Cross-check remainder() against a direct gf2.Mod computation for
	// short inputs that fit in a uint64 polynomial.
	rng := rand.New(rand.NewPCG(5, 5))
	pp := poly.ATM8
	for trial := 0; trial < 200; trial++ {
		data := []byte{byte(rng.Uint64()), byte(rng.Uint64()), byte(rng.Uint64())}
		var v gf2.Poly
		for _, b := range data {
			v = v<<8 | gf2.Poly(b)
		}
		want := uint32(gf2.Mod(v<<8, pp.Full()))
		if got := RemainderCRC(pp, data); got != want {
			t.Fatalf("RemainderCRC = %#x, gf2.Mod = %#x", got, want)
		}
	}
}

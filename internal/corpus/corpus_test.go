package corpus

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"koopmancrc"
	"koopmancrc/internal/journal"
)

// bakeSnapshot evaluates one fast 8-bit polynomial and exports its memo.
func bakeSnapshot(t *testing.T, koopman string) *koopmancrc.MemoSnapshot {
	t.Helper()
	ctx := context.Background()
	a := koopmancrc.NewAnalyzer(koopmancrc.MustPolynomial(8, koopmancrc.Koopman, koopman), koopmancrc.WithMaxHD(6))
	if _, err := a.Evaluate(ctx, 64); err != nil {
		t.Fatalf("Evaluate %s: %v", koopman, err)
	}
	snap, err := a.MemoSnapshot(ctx)
	if err != nil {
		t.Fatalf("MemoSnapshot %s: %v", koopman, err)
	}
	return snap
}

func TestStorePutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	atm := bakeSnapshot(t, "0x83")
	darc := bakeSnapshot(t, "0x9c")

	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(atm); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(darc); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// An identical re-Put adds nothing and must not touch the WAL.
	if err := s.Put(atm); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	st := s.Stats()
	if st.Entries != 2 || st.Appends != 2 || st.Bytes == 0 || st.Facts == 0 {
		t.Fatalf("stats after puts = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, ok := s2.Get(8, 0x83)
	if !ok {
		t.Fatalf("0x83 lost across reopen")
	}
	if !reflect.DeepEqual(got, atm) {
		t.Fatalf("0x83 changed across reopen:\n got %+v\nwant %+v", got, atm)
	}
	if _, ok := s2.Get(8, 0x9c); !ok {
		t.Fatalf("0x9c lost across reopen")
	}
	if _, ok := s2.Get(8, 0xea); ok {
		t.Fatalf("Get invented an entry")
	}
	if keys := s2.Keys(); len(keys) != 2 || keys[0] != (Key{8, 0x83}) || keys[1] != (Key{8, 0x9c}) {
		t.Fatalf("Keys = %v", keys)
	}
	// Get returns a copy: mutating it must not corrupt the store.
	got.Bounds = nil
	if again, _ := s2.Get(8, 0x83); len(again.Bounds) == 0 {
		t.Fatalf("Get returned an aliased entry")
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{CompactEvery: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	snap := bakeSnapshot(t, "0x83")
	// Grow the entry across Puts so each one reaches the WAL.
	first := &koopmancrc.MemoSnapshot{Version: 1, Width: 8, Poly: 0x83,
		Bounds: []koopmancrc.BoundMemo{{Weight: 2, ClearTo: 10}}}
	for i, p := range []*koopmancrc.MemoSnapshot{first, snap, bakeSnapshot(t, "0x9c"), bakeSnapshot(t, "0xea")} {
		if err := s.Put(p); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if st := s.Stats(); st.Compactions != 2 {
		t.Fatalf("stats = %+v, want 2 compactions (every 2 appends)", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, ok := s2.Get(8, 0x83)
	if !ok {
		t.Fatalf("0x83 lost across compaction")
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("0x83 after compaction:\n got %+v\nwant %+v", got, snap)
	}
	if len(s2.Keys()) != 3 {
		t.Fatalf("Keys = %v", s2.Keys())
	}
}

// TestTornTailTruncated extends internal/journal's torn-tail guarantee
// to the corpus record schema: a crash mid-append leaves a partial memo
// line, and the corpus must open with every complete record and none of
// the tail.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	atm := bakeSnapshot(t, "0x83")
	if err := s.Put(atm); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.j.Close(); err != nil { // crash: skip Close's compaction
		t.Fatalf("close journal: %v", err)
	}

	wal := filepath.Join(dir, "wal.jlog")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":2,"type":"memo","data":{"version":1,"width":8,"poly":156`); err != nil {
		t.Fatalf("tear wal: %v", err)
	}
	f.Close()

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.TruncatedAtOpen == 0 {
		t.Fatalf("torn tail not reported: %+v", st)
	}
	got, ok := s2.Get(8, 0x83)
	if !ok || !reflect.DeepEqual(got, atm) {
		t.Fatalf("complete record damaged by torn-tail recovery: ok=%v", ok)
	}
	if _, ok := s2.Get(8, 0x9c); ok {
		t.Fatalf("torn record served as knowledge")
	}
}

// TestCorruptRecordTruncatesSuffix flips a byte inside a durable memo
// record: the CRC catches it and the record (plus everything after it)
// is dropped, never decoded into answers.
func TestCorruptRecordTruncatesSuffix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	atm := bakeSnapshot(t, "0x83")
	darc := bakeSnapshot(t, "0x9c")
	if err := s.Put(atm); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(darc); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	wal := filepath.Join(dir, "wal.jlog")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Corrupt a byte in the middle of the second record's JSON body.
	lines := 0
	pos := -1
	for i, b := range data {
		if b == '\n' {
			lines++
			if lines == 1 {
				pos = i + 20
				break
			}
		}
	}
	if pos < 0 || pos >= len(data) {
		t.Fatalf("wal too short to corrupt: %d bytes", len(data))
	}
	data[pos] ^= 0x40
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatalf("write wal: %v", err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen over corrupt record: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.TruncatedAtOpen == 0 {
		t.Fatalf("corruption not reported: %+v", st)
	}
	if got, ok := s2.Get(8, 0x83); !ok || !reflect.DeepEqual(got, atm) {
		t.Fatalf("record before the corruption damaged")
	}
	if _, ok := s2.Get(8, 0x9c); ok {
		t.Fatalf("corrupt record served as knowledge")
	}
}

// TestInvalidContentSkipped covers the other failure class: a record
// whose CRC is fine (it was durably written) but whose content fails
// snapshot validation. It must be skipped and counted, not served.
func TestInvalidContentSkipped(t *testing.T) {
	dir := t.TempDir()
	j, _, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	atm := bakeSnapshot(t, "0x83")
	if err := j.Append(recType, atm); err != nil {
		t.Fatalf("append valid: %v", err)
	}
	// Exact boundary without a first length: well-formed JSON, invalid memo.
	if err := j.Append(recType, map[string]any{
		"version": 1, "width": 8, "poly": 0x9c,
		"bounds": []map[string]any{{"weight": 2, "exact": true}},
	}); err != nil {
		t.Fatalf("append invalid: %v", err)
	}
	if err := j.Append("unrelated", map[string]any{"x": 1}); err != nil {
		t.Fatalf("append foreign: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	st := s.Stats()
	if st.SkippedAtOpen != 2 {
		t.Fatalf("SkippedAtOpen = %d, want 2 (invalid memo + foreign type)", st.SkippedAtOpen)
	}
	if _, ok := s.Get(8, 0x9c); ok {
		t.Fatalf("invalid record served as knowledge")
	}
	if got, ok := s.Get(8, 0x83); !ok || !reflect.DeepEqual(got, atm) {
		t.Fatalf("valid record lost alongside the invalid one")
	}
}

func TestPutRejectsInvalidAndClosed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(&koopmancrc.MemoSnapshot{Version: 1, Width: 1, Poly: 1}); err == nil {
		t.Fatalf("Put accepted an invalid snapshot")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put(bakeSnapshot(t, "0x83")); err == nil {
		t.Fatalf("Put accepted after Close")
	}
	// Gets keep answering from memory after Close.
	if _, ok := s.Get(8, 0x83); ok {
		t.Fatalf("closed empty store invented an entry")
	}
}

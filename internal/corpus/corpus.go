// Package corpus is the persistent analysis corpus: a disk-backed,
// crash-safe store of Analyzer memo snapshots keyed by polynomial,
// layered on internal/journal's CRC-protected WAL with snapshot
// compaction.
//
// The corpus is what turns evaluation from a per-process cost into a
// one-time cost: bake the paper's survey space offline (internal/dist),
// then warm-start any number of serving sessions from the store with
// zero engine probes. Every record is a koopmancrc.MemoSnapshot — pure
// monotone facts about one polynomial — so concurrent writers, crashes
// mid-append and replay in any order all converge on the union of
// knowledge, never a conflict.
//
// Crash safety is inherited from the journal: a torn final line or a
// CRC-corrupt suffix is truncated at open (reported in Stats, never an
// error), and compaction commits via atomic rename. On top of that the
// corpus validates every replayed snapshot and skips — rather than
// serves — any record that is well-formed JSON but semantically invalid,
// so a software bug in a past writer can not become a wrong answer now.
package corpus

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"koopmancrc"
	"koopmancrc/internal/journal"
)

// recType is the WAL record type of one memo snapshot append.
const recType = "memo"

// storeVersion versions the compacted snapshot document.
const storeVersion = 1

// DefaultCompactEvery is the number of WAL appends after which the
// store compacts into a fresh snapshot (see Config.CompactEvery).
const DefaultCompactEvery = 256

// Config tunes a Store.
type Config struct {
	// CompactEvery triggers snapshot compaction after this many WAL
	// appends (default DefaultCompactEvery). The WAL otherwise grows by
	// one full merged snapshot per Put; compaction folds them into one
	// record per polynomial.
	CompactEvery int
}

// Stats describes the store's contents and its life so far.
type Stats struct {
	// Entries is the number of polynomials with stored knowledge.
	Entries int
	// Facts is the total number of discrete memo facts (bounds + counts)
	// across all entries.
	Facts int
	// Bytes approximates the serialized size of the stored entries (the
	// JSON payload bytes, excluding journal framing).
	Bytes int64
	// TruncatedAtOpen counts WAL bytes discarded when the store was
	// opened: a torn tail or corrupt suffix from a crash mid-append.
	TruncatedAtOpen int64
	// SkippedAtOpen counts replayed records dropped because their
	// content failed validation (schema drift or a past writer bug).
	SkippedAtOpen int
	// Appends and Compactions count Puts that reached the WAL and
	// snapshot compactions since open.
	Appends     int64
	Compactions int64
}

// storeDoc is the compacted snapshot document.
type storeDoc struct {
	Version int                        `json:"version"`
	Entries []*koopmancrc.MemoSnapshot `json:"entries,omitempty"`
}

// Key identifies one polynomial in the store.
type Key struct {
	Width int
	Poly  uint64
}

// String renders the key as "width:koopman-hex".
func (k Key) String() string { return fmt.Sprintf("%d:%#x", k.Width, k.Poly) }

// Store is an open corpus. All methods are safe for concurrent use; the
// in-memory view and the journal move together under one lock, so a
// reader never observes knowledge the log could lose.
type Store struct {
	mu      sync.Mutex
	j       *journal.Journal
	entries map[Key]*koopmancrc.MemoSnapshot
	sizes   map[Key]int64
	stats   Stats
	compact int
	// sinceCompact counts WAL appends since the last compaction.
	sinceCompact int
	closed       bool
}

// Open opens (creating if needed) the corpus in dir, replaying the
// journal: the compacted snapshot first, then WAL appends in order,
// merging each polynomial's records into the union of their knowledge.
// A torn or corrupt WAL tail is truncated (Stats.TruncatedAtOpen);
// records that decode but fail validation are skipped
// (Stats.SkippedAtOpen). Neither is an error — the corpus always opens
// with every durable, valid fact it holds.
func Open(dir string, cfg Config) (*Store, error) {
	j, rec, err := journal.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	s := &Store{
		j:       j,
		entries: make(map[Key]*koopmancrc.MemoSnapshot),
		sizes:   make(map[Key]int64),
		compact: cfg.CompactEvery,
	}
	if s.compact <= 0 {
		s.compact = DefaultCompactEvery
	}
	s.stats.TruncatedAtOpen = rec.Truncated
	if rec.Snapshot != nil {
		var doc storeDoc
		if err := json.Unmarshal(rec.Snapshot, &doc); err != nil {
			j.Close()
			return nil, fmt.Errorf("corpus: corrupt snapshot document in %s: %w", dir, err)
		}
		if doc.Version > storeVersion {
			j.Close()
			return nil, fmt.Errorf("corpus: %s uses snapshot version %d (have %d)", dir, doc.Version, storeVersion)
		}
		for _, e := range doc.Entries {
			s.absorbLocked(e)
		}
	}
	for _, r := range rec.Entries {
		if r.Type != recType {
			s.stats.SkippedAtOpen++
			continue
		}
		var snap koopmancrc.MemoSnapshot
		if err := json.Unmarshal(r.Data, &snap); err != nil {
			s.stats.SkippedAtOpen++
			continue
		}
		s.absorbLocked(&snap)
	}
	// Replaying more WAL records than a compaction interval means the
	// last run crashed before compacting; fold them up front so the WAL
	// shrinks instead of replaying ever longer.
	if len(rec.Entries) >= s.compact {
		if err := s.compactLocked(); err != nil {
			j.Close()
			return nil, err
		}
	}
	return s, nil
}

// absorbLocked merges one replayed snapshot into the in-memory view,
// skipping (and counting) invalid ones.
func (s *Store) absorbLocked(snap *koopmancrc.MemoSnapshot) {
	if err := snap.Validate(); err != nil {
		s.stats.SkippedAtOpen++
		return
	}
	key := Key{Width: snap.Width, Poly: snap.Poly}
	if have, ok := s.entries[key]; ok {
		if err := have.Merge(snap); err != nil {
			s.stats.SkippedAtOpen++
		}
		s.noteSizeLocked(key, have)
		return
	}
	s.entries[key] = snap.Clone()
	s.noteSizeLocked(key, snap)
}

// noteSizeLocked refreshes the serialized-size accounting for one key.
func (s *Store) noteSizeLocked(key Key, snap *koopmancrc.MemoSnapshot) {
	if b, err := json.Marshal(snap); err == nil {
		s.sizes[key] = int64(len(b))
	}
}

// Get returns a deep copy of the stored knowledge for one polynomial
// (identified by width and Koopman notation), or false if the corpus
// holds nothing for it. The copy is the caller's to mutate.
func (s *Store) Get(width int, poly uint64) (*koopmancrc.MemoSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.entries[Key{Width: width, Poly: poly}]
	if !ok {
		return nil, false
	}
	return snap.Clone(), true
}

// Keys lists the polynomials with stored knowledge, ordered by width
// then Koopman value.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Width != out[j].Width {
			return out[i].Width < out[j].Width
		}
		return out[i].Poly < out[j].Poly
	})
	return out
}

// Put merges a snapshot into the store and durably appends the merged
// result: when Put returns nil the knowledge survives a crash. A
// snapshot adding nothing to what is stored is skipped without touching
// disk, so a warm session persisted repeatedly costs one fsync only
// when it actually learned something.
func (s *Store) Put(snap *koopmancrc.MemoSnapshot) error {
	if err := snap.Validate(); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("corpus: store is closed")
	}
	key := Key{Width: snap.Width, Poly: snap.Poly}
	merged := snap.Clone()
	if have, ok := s.entries[key]; ok {
		prev, err := json.Marshal(have)
		if err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		if err := merged.Merge(have); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		now, err := json.Marshal(merged)
		if err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		if string(prev) == string(now) {
			return nil // nothing new learned; spare the fsync
		}
	}
	raw, err := json.Marshal(merged)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	if err := s.j.Append(recType, json.RawMessage(raw)); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	s.entries[key] = merged
	s.sizes[key] = int64(len(raw))
	s.stats.Appends++
	s.sinceCompact++
	if s.sinceCompact >= s.compact {
		return s.compactLocked()
	}
	return nil
}

// Compact folds the WAL into a fresh snapshot document now.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("corpus: store is closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	doc := storeDoc{Version: storeVersion}
	for _, k := range s.keysLocked() {
		doc.Entries = append(doc.Entries, s.entries[k])
	}
	if err := s.j.Snapshot(doc); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	s.sinceCompact = 0
	s.stats.Compactions++
	return nil
}

// keysLocked is Keys without re-locking.
func (s *Store) keysLocked() []Key {
	out := make([]Key, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Width != out[j].Width {
			return out[i].Width < out[j].Width
		}
		return out[i].Poly < out[j].Poly
	})
	return out
}

// Stats snapshots the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	for _, e := range s.entries {
		st.Facts += e.Entries()
	}
	for _, n := range s.sizes {
		st.Bytes += n
	}
	return st
}

// Close compacts once more if the WAL holds appends, then closes the
// journal. Further Puts fail; Gets keep answering from memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if s.sinceCompact > 0 {
		err = s.compactLocked()
	}
	s.closed = true
	if cerr := s.j.Close(); err == nil {
		err = cerr
	}
	return err
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text-format (0.0.4) document:
// line syntax, metric and label name grammar, label-value escaping,
// known TYPE declarations, duplicate series, and histogram coherence
// (parseable le bounds, cumulative bucket counts, a +Inf bucket
// matching _count). It is the pure-Go validator behind the exposition
// tests and the CI smoke job — a scrape that fails here would fail a
// real Prometheus server's parser too.
func CheckExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	types := map[string]string{}       // family -> declared type
	seen := map[string]struct{}{}      // full series key -> present
	hist := map[string]*histCheck{}    // histogram family -> bucket audit
	sawSample := map[string]struct{}{} // family -> a sample appeared
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line, types, sawSample); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(s.name, types)
		if s.exemplar != nil {
			// OpenMetrics allows exemplars on histogram buckets and
			// counters only; this repository emits them on buckets.
			bucketOK := types[fam] == "histogram" && strings.HasSuffix(s.name, "_bucket")
			if !bucketOK && types[fam] != "counter" {
				return fmt.Errorf("line %d: exemplar on non-bucket, non-counter sample %s", lineNo, s.name)
			}
		}
		sawSample[fam] = struct{}{}
		key := s.name + "\xfe" + s.labelKey(true)
		if _, dup := seen[key]; dup {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, line)
		}
		seen[key] = struct{}{}
		if types[fam] == "histogram" {
			h := hist[fam]
			if h == nil {
				h = &histCheck{series: map[string]*histSeries{}}
				hist[fam] = h
			}
			if err := h.record(fam, s); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for fam, h := range hist {
		if err := h.verify(fam); err != nil {
			return err
		}
	}
	return nil
}

// checkComment validates # HELP / # TYPE lines; other comments pass.
func checkComment(line string, types map[string]string, sawSample map[string]struct{}) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare "#" comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q for %q", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		if _, ok := sawSample[name]; ok {
			return fmt.Errorf("TYPE for %q after its samples", name)
		}
		types[name] = typ
	}
	return nil
}

// sample is one parsed exposition line.
type sample struct {
	name     string
	labels   [][2]string // name, decoded value — in input order
	value    float64
	exemplar *exemplarSample // OpenMetrics trailer, when present
}

// exemplarSample is a parsed `# {labels} value [timestamp]` trailer.
type exemplarSample struct {
	labels [][2]string
	value  float64
}

// labelKey joins labels into a comparison key; dropLE strips the le
// label so histogram buckets of one series group together. Labels are
// sorted: {a="1",b="2"} and {b="2",a="1"} name the same series.
func (s *sample) labelKey(keepLE bool) string {
	pairs := make([]string, 0, len(s.labels))
	for _, l := range s.labels {
		if !keepLE && l[0] == "le" {
			continue
		}
		pairs = append(pairs, l[0]+"="+l[1])
	}
	sort.Strings(pairs)
	return strings.Join(pairs, "\xff")
}

// le returns the decoded le label and whether it is present.
func (s *sample) le() (string, bool) {
	for _, l := range s.labels {
		if l[0] == "le" {
			return l[1], true
		}
	}
	return "", false
}

// parseSample parses `name{labels} value [timestamp]`, with an optional
// OpenMetrics exemplar trailer (`# {labels} value [timestamp]`).
func parseSample(line string) (*sample, error) {
	s := &sample{}
	i := 0
	for i < len(line) && isNameByte(line[i], i == 0) {
		i++
	}
	s.name = line[:i]
	if !validName(s.name) {
		return nil, fmt.Errorf("bad metric name in %q", line)
	}
	if i < len(line) && line[i] == '{' {
		rest, labels, err := parseLabels(line[i:])
		if err != nil {
			return nil, fmt.Errorf("%w in %q", err, line)
		}
		s.labels = labels
		line = rest
	} else {
		line = line[i:]
	}
	// The exemplar separator is only looked for past the label set, so a
	// label value containing " # " cannot be misread as a trailer.
	if idx := strings.Index(line, " # "); idx >= 0 {
		ex, err := parseExemplar(line[idx+3:])
		if err != nil {
			return nil, fmt.Errorf("%w in %q", err, line)
		}
		s.exemplar = ex
		line = line[:idx]
	}
	fields := strings.Fields(line)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("expected value [timestamp] after series, got %q", line)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return nil, fmt.Errorf("bad sample value %q", fields[0])
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes a {name="value",...} block, decoding the format's
// three escapes and rejecting any other backslash sequence. It returns
// the unconsumed remainder of the line.
func parseLabels(in string) (rest string, labels [][2]string, err error) {
	i := 1 // past '{'
	names := map[string]struct{}{}
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == ',') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return in[i+1:], labels, nil
		}
		start := i
		for i < len(in) && isNameByte(in[i], i == start) {
			i++
		}
		name := in[start:i]
		if !validName(name) {
			return "", nil, fmt.Errorf("bad label name %q", name)
		}
		if _, dup := names[name]; dup {
			return "", nil, fmt.Errorf("duplicate label %q", name)
		}
		names[name] = struct{}{}
		if i >= len(in) || in[i] != '=' {
			return "", nil, fmt.Errorf("missing '=' after label %q", name)
		}
		i++
		if i >= len(in) || in[i] != '"' {
			return "", nil, fmt.Errorf("unquoted value for label %q", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return "", nil, fmt.Errorf("unterminated value for label %q", name)
			}
			c := in[i]
			switch c {
			case '"':
				i++
				goto done
			case '\\':
				if i+1 >= len(in) {
					return "", nil, fmt.Errorf("dangling backslash in label %q", name)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, fmt.Errorf("invalid escape \\%c in label %q", in[i+1], name)
				}
				i += 2
			case '\n':
				return "", nil, fmt.Errorf("raw newline in label %q", name)
			default:
				val.WriteByte(c)
				i++
			}
		}
	done:
		labels = append(labels, [2]string{name, val.String()})
	}
}

// parseExemplar parses the OpenMetrics trailer after "# ": a label set,
// a value, and an optional float timestamp. The label set must obey the
// spec's 128-rune budget across names and values combined.
func parseExemplar(in string) (*exemplarSample, error) {
	if len(in) == 0 || in[0] != '{' {
		return nil, fmt.Errorf("exemplar needs a {label} set, got %q", in)
	}
	rest, labels, err := parseLabels(in)
	if err != nil {
		return nil, fmt.Errorf("exemplar labels: %w", err)
	}
	runes := 0
	for _, l := range labels {
		runes += len([]rune(l[0])) + len([]rune(l[1]))
	}
	if runes > 128 {
		return nil, fmt.Errorf("exemplar label set is %d runes, exceeding the 128-rune budget", runes)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("expected exemplar value [timestamp], got %q", rest)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
	}
	return &exemplarSample{labels: labels, value: v}, nil
}

func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c == ':':
		return true // recording-rule names; valid in metric names
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf strips a histogram/summary child suffix when the base name
// has a TYPE declaration, so name_bucket rows audit against name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t, declared := types[base]; declared && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

// histSeries audits one histogram series (one label set) of a family.
type histSeries struct {
	buckets []histBucket
	count   float64
	hasCnt  bool
}

type histBucket struct {
	le  float64
	cum float64
}

type histCheck struct {
	series map[string]*histSeries
}

func (h *histCheck) at(key string) *histSeries {
	s := h.series[key]
	if s == nil {
		s = &histSeries{}
		h.series[key] = s
	}
	return s
}

func (h *histCheck) record(fam string, s *sample) error {
	key := s.labelKey(false)
	switch {
	case s.name == fam+"_bucket":
		le, ok := s.le()
		if !ok {
			return fmt.Errorf("%s_bucket without le label", fam)
		}
		bound, err := parseFloat(le)
		if err != nil {
			return fmt.Errorf("unparseable le %q on %s", le, fam)
		}
		h.at(key).buckets = append(h.at(key).buckets, histBucket{le: bound, cum: s.value})
	case s.name == fam+"_count":
		hs := h.at(key)
		hs.count, hs.hasCnt = s.value, true
	case s.name == fam+"_sum", s.name == fam:
		// sum needs no audit; a bare histogram-family sample is unusual
		// but not invalid.
	}
	return nil
}

func (h *histCheck) verify(fam string) error {
	for key, hs := range h.series {
		if len(hs.buckets) == 0 {
			continue
		}
		bs := append([]histBucket(nil), hs.buckets...)
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("histogram %s{%s}: no +Inf bucket", fam, key)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].cum < bs[i-1].cum {
				return fmt.Errorf("histogram %s{%s}: bucket counts decrease at le=%v", fam, key, bs[i].le)
			}
		}
		if hs.hasCnt && last.cum != hs.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != count %v", fam, key, last.cum, hs.count)
		}
	}
	return nil
}

package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeSnapshot(t *testing.T) {
	tr := NewTrace("/v1/evaluate")
	root := tr.Root()
	if tr.ID() == "" || root == nil {
		t.Fatal("trace without id or root")
	}
	root.SetAttr("request_id", "abc")
	child := root.StartChild("pool.acquire")
	child.SetAttr("hit", "false")
	child.End()
	flight := root.StartChild("flight")
	flight.AddLeaf("engine.boundary", 3*time.Millisecond, Attr{K: "probes", V: "17"})
	flight.SetError("budget exceeded")
	flight.End()
	root.SetError("budget exceeded")
	root.End()

	td := tr.Data()
	if td.TraceID != tr.ID() || td.Name != "/v1/evaluate" {
		t.Fatalf("snapshot identity: %+v", td)
	}
	if td.Error != "budget exceeded" {
		t.Fatalf("trace error = %q", td.Error)
	}
	if td.Spans != 4 {
		t.Fatalf("spans = %d, want 4", td.Spans)
	}
	if len(td.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(td.Root.Children))
	}
	fl := td.Root.Children[1]
	if fl.Name != "flight" || fl.Error != "budget exceeded" {
		t.Fatalf("flight span: %+v", fl)
	}
	if len(fl.Children) != 1 || fl.Children[0].Name != "engine.boundary" {
		t.Fatalf("engine leaf missing: %+v", fl.Children)
	}
	leaf := fl.Children[0]
	if leaf.DurationNS != (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("leaf duration = %d", leaf.DurationNS)
	}
	if len(leaf.Attrs) != 1 || leaf.Attrs[0].K != "probes" {
		t.Fatalf("leaf attrs: %+v", leaf.Attrs)
	}
	if td.Root.DurationNS <= 0 {
		t.Fatalf("root duration = %d", td.Root.DurationNS)
	}
}

// TestNilSpanInert proves tracing-off call sites need no guards: every
// operation on a nil span (and children derived from it) is a no-op.
func TestNilSpanInert(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	c.SetAttr("k", "v")
	c.SetError("boom")
	c.AddLeaf("leaf", time.Millisecond)
	c.End()
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span stored in context")
	}
}

func TestSpanFromContextRoundTrip(t *testing.T) {
	tr := NewTrace("bg")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	if SpanFromContext(ctx) != tr.Root() {
		t.Fatal("span did not round-trip through context")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a span")
	}
}

func TestSpanCapBounded(t *testing.T) {
	tr := NewTrace("big")
	root := tr.Root()
	for i := 0; i < 2*maxSpansPerTrace; i++ {
		root.AddLeaf("leaf", time.Microsecond)
	}
	td := tr.Data()
	if td.Spans != maxSpansPerTrace {
		t.Fatalf("spans = %d, want cap %d", td.Spans, maxSpansPerTrace)
	}
	if td.DroppedSpans != maxSpansPerTrace+1 {
		t.Fatalf("dropped = %d, want %d", td.DroppedSpans, maxSpansPerTrace+1)
	}
}

// makeTD builds a completed-trace snapshot directly; the recorder only
// ever sees TraceData, so tests can control durations deterministically.
func makeTD(name string, d time.Duration, errMsg string) *TraceData {
	id := NewTraceID()
	return &TraceData{
		TraceID:    id,
		Name:       name,
		Start:      time.Now(),
		DurationNS: d.Nanoseconds(),
		Error:      errMsg,
		Spans:      1,
		Root:       &SpanData{ID: "00000001", Name: name, DurationNS: d.Nanoseconds()},
	}
}

// TestRecorderErroredPinning floods a full recorder with slow healthy
// traces and proves the errored trace survives: error pins beat ring
// eviction as long as anything unpinned exists.
func TestRecorderErroredPinning(t *testing.T) {
	r := NewFlightRecorder(16, 1) // sample everything: maximum eviction pressure
	errTD := makeTD("/v1/evaluate", 5*time.Millisecond, "deadline exceeded")
	if kept, reason := r.Record(errTD); !kept || reason != "error" {
		t.Fatalf("errored trace kept=%v reason=%q", kept, reason)
	}
	for i := 0; i < 200; i++ {
		r.Record(makeTD("/v1/evaluate", time.Duration(i+1)*time.Millisecond, ""))
	}
	got, ok := r.Get(errTD.TraceID)
	if !ok {
		t.Fatal("errored trace evicted despite unpinned entries in the ring")
	}
	if got.Retained != "error" {
		t.Fatalf("retained = %q, want error", got.Retained)
	}
	sums := r.Summaries(TraceFilter{ErrorsOnly: true})
	if len(sums) != 1 || sums[0].TraceID != errTD.TraceID {
		t.Fatalf("ErrorsOnly summaries: %+v", sums)
	}
}

// TestRecorderPinBudget floods a small recorder with errored traces
// and proves pinning stays bounded: error pins stop at a quarter of the
// ring, the overflow errors stay retained but evictable, and a slow
// trace arriving after the flood can still pin — the ring never wedges
// into an all-pinned state.
func TestRecorderPinBudget(t *testing.T) {
	r := NewFlightRecorder(16, 0) // pin budget 8, error share 4
	first := make([]string, 0, 4)
	for i := 0; i < 100; i++ {
		td := makeTD("other", 100*time.Microsecond, "HTTP 500")
		if kept, reason := r.Record(td); !kept || reason != "error" {
			t.Fatalf("errored trace kept=%v reason=%q", kept, reason)
		}
		if len(first) < 4 {
			first = append(first, td.TraceID)
		}
	}
	// The error share's worth of pins survives the flood.
	for i, id := range first {
		if _, ok := r.Get(id); !ok {
			t.Errorf("pinned error %d evicted within budget", i)
		}
	}
	// A slow trace after the flood still qualifies, pins, and survives
	// further error pressure.
	slow := makeTD("/v1/evaluate", 50*time.Millisecond, "")
	if kept, reason := r.Record(slow); !kept || reason != "slow" {
		t.Fatalf("slow trace kept=%v reason=%q", kept, reason)
	}
	for i := 0; i < 50; i++ {
		r.Record(makeTD("other", 100*time.Microsecond, "HTTP 500"))
	}
	if _, ok := r.Get(slow.TraceID); !ok {
		t.Fatal("slow trace evicted by the error flood")
	}
	if st := r.Stats(); st.Live > 16 {
		t.Fatalf("live %d exceeds capacity", st.Live)
	}
}

// TestRecorderSlowestKInvariant records traces of known durations and
// proves the K slowest per endpoint are always retrievable afterwards,
// whatever order they arrived in.
func TestRecorderSlowestKInvariant(t *testing.T) {
	r := NewFlightRecorder(32, 0) // no probabilistic keep: slow-K only
	const n = 100
	// Interleave ascending and descending so the slow set churns.
	durs := make([]time.Duration, 0, n)
	for i := 0; i < n/2; i++ {
		durs = append(durs, time.Duration(i+1)*time.Millisecond)
		durs = append(durs, time.Duration(n-i)*time.Millisecond)
	}
	ids := map[time.Duration]string{}
	for _, d := range durs {
		td := makeTD("/v1/hd", d, "")
		r.Record(td)
		ids[d] = td.TraceID
	}
	for i := 0; i < slowKDefault; i++ {
		d := time.Duration(n-i) * time.Millisecond
		if _, ok := r.Get(ids[d]); !ok {
			t.Errorf("slowest-%d trace (%v) not retained", i+1, d)
		}
	}
	// A second endpoint keeps its own slow set — but its underfull set
	// only admits traces past the warm-up floor, so a microsecond
	// request is not "slow" merely for arriving first.
	if kept, _ := r.Record(makeTD("/v1/maxlen", time.Microsecond, "")); kept {
		t.Fatal("sub-floor warm-up trace retained as slow")
	}
	other := makeTD("/v1/maxlen", 2*time.Millisecond, "")
	if kept, reason := r.Record(other); !kept || reason != "slow" {
		t.Fatalf("first above-floor trace of a fresh endpoint kept=%v reason=%q", kept, reason)
	}
	if got := r.Summaries(TraceFilter{Name: "/v1/maxlen"}); len(got) != 1 {
		t.Fatalf("per-endpoint filter returned %d", len(got))
	}
	// MinDuration filtering.
	slow := r.Summaries(TraceFilter{Name: "/v1/hd", MinDuration: time.Duration(n-2) * time.Millisecond})
	if len(slow) != 3 {
		t.Fatalf("MinDuration filter returned %d, want 3", len(slow))
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewFlightRecorder(1024, 1)
	for i := 0; i < 100; i++ {
		if kept, _ := r.Record(makeTD("/x", time.Millisecond, "")); !kept {
			t.Fatal("sampleRate 1 dropped a trace")
		}
	}
	r0 := NewFlightRecorder(1024, 0)
	var kept int
	for i := 0; i < 100; i++ {
		// Identical durations: after the slow set fills, nothing further
		// qualifies (strictly-greater comparison) and rate 0 drops the rest.
		if ok, _ := r0.Record(makeTD("/x", time.Millisecond, "")); ok {
			kept++
		}
	}
	if kept != slowKDefault {
		t.Fatalf("sampleRate 0 kept %d, want only the slow-K %d", kept, slowKDefault)
	}
	st := r0.Stats()
	if st.Recorded != 100 || st.Retained != uint64(slowKDefault) || st.Live != slowKDefault {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRecorderConcurrent races recorders against scrapers and evictions;
// the -race CI job runs it with the detector on.
func TestRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64, 0.5)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				errMsg := ""
				if i%7 == 0 {
					errMsg = "boom"
				}
				ep := []string{"/a", "/b", "/c"}[i%3]
				r.Record(makeTD(ep, time.Duration(i%50)*time.Millisecond, errMsg))
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		sums := r.Summaries(TraceFilter{Limit: 10})
		for _, s := range sums {
			if td, ok := r.Get(s.TraceID); ok && td.TraceID != s.TraceID {
				t.Error("Get returned a different trace")
			}
		}
		r.Stats()
	}
	close(stop)
	wg.Wait()
	if st := r.Stats(); st.Live > 64 {
		t.Fatalf("live %d exceeds capacity", st.Live)
	}
}

func TestNilRecorderInert(t *testing.T) {
	var r *FlightRecorder
	if kept, _ := r.Record(makeTD("/x", time.Millisecond, "")); kept {
		t.Fatal("nil recorder kept a trace")
	}
	if _, ok := r.Get("x"); ok {
		t.Fatal("nil recorder returned a trace")
	}
	if r.Summaries(TraceFilter{}) != nil {
		t.Fatal("nil recorder returned summaries")
	}
}

// TestExemplarExposition proves ObserveExemplar renders an OpenMetrics
// trailer the validator accepts, that the trailer lands on the bucket
// the value belongs to, and that the classic 0.0.4 exposition — whose
// parser errors on exemplars — stays exemplar-free.
func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("req_seconds", "latency", []float64{0.01, 0.1, 1}, "endpoint")
	h.With("/v1/evaluate").ObserveExemplar(0.05, "deadbeef01234567")
	h.With("/v1/evaluate").Observe(0.002) // no exemplar on this bucket
	h.With("/v1/evaluate").ObserveExemplar(5, "feedface89abcdef")

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exemplar exposition rejected: %v\n%s", err, out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics exposition lacks the # EOF terminator:\n%s", out)
	}
	wantMid := `req_seconds_bucket{endpoint="/v1/evaluate",le="0.1"} 2 # {trace_id="deadbeef01234567"} 0.05`
	wantInf := `req_seconds_bucket{endpoint="/v1/evaluate",le="+Inf"} 3 # {trace_id="feedface89abcdef"} 5`
	for _, want := range []string{wantMid, wantInf} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="0.01"} 1 #`) {
		t.Errorf("exemplar leaked onto an unexemplared bucket:\n%s", out)
	}

	// The 0.0.4 exposition must not carry the trailers: a classic
	// Prometheus scrape fails entirely on the '#' after a value.
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), " # {") {
		t.Errorf("exemplar trailer leaked into the 0.0.4 exposition:\n%s", b.String())
	}
	if err := CheckExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("0.0.4 exposition rejected: %v\n%s", err, b.String())
	}
}

// TestOpenMetricsCounterFamily: OpenMetrics declares a counter family
// under its base name while the samples keep the _total suffix.
func TestOpenMetricsCounterFamily(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("req_total", "requests", "code").With("200").Inc()
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# TYPE req counter\n", `req_total{code="200"} 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE req_total counter\n") {
		t.Errorf("0.0.4 exposition renamed the counter family:\n%s", b.String())
	}
}

// TestExemplarRejections drives the validator with malformed or
// misplaced exemplars a strict OpenMetrics parser would reject.
func TestExemplarRejections(t *testing.T) {
	histHeader := "# TYPE h histogram\n"
	okTail := "h_bucket{le=\"+Inf\"} 1\nh_count 1\nh_sum 1\n"
	bad := map[string]string{
		"exemplar on gauge":        "# TYPE g gauge\ng 1 # {trace_id=\"ab\"} 1\n",
		"exemplar on untyped":      "u 1 # {trace_id=\"ab\"} 1\n",
		"exemplar on hist sum":     histHeader + "h_bucket{le=\"+Inf\"} 1\nh_count 1\nh_sum 1 # {trace_id=\"ab\"} 1\n",
		"missing value":            histHeader + "h_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"}\n" + "h_count 1\nh_sum 1\n",
		"no label set":             histHeader + "h_bucket{le=\"+Inf\"} 1 # 0.5\n" + "h_count 1\nh_sum 1\n",
		"unterminated labels":      histHeader + "h_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab} 0.5\n" + "h_count 1\nh_sum 1\n",
		"bad exemplar value":       histHeader + "h_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} wat\n" + "h_count 1\nh_sum 1\n",
		"bad exemplar timestamp":   histHeader + "h_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} 0.5 notatime\n" + "h_count 1\nh_sum 1\n",
		"trailing garbage":         histHeader + "h_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} 0.5 1.0 extra\n" + "h_count 1\nh_sum 1\n",
		"oversized exemplar label": histHeader + "h_bucket{le=\"+Inf\"} 1 # {trace_id=\"" + strings.Repeat("a", 129) + "\"} 0.5\n" + "h_count 1\nh_sum 1\n",
	}
	for name, doc := range bad {
		if err := CheckExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, doc)
		}
	}
	good := []string{
		"# TYPE c_total counter\nc_total 5 # {trace_id=\"ab\"} 1\n",
		histHeader + "h_bucket{le=\"1\"} 1 # {trace_id=\"ab\"} 0.5\n" + okTail,
		histHeader + "h_bucket{le=\"1\"} 1 # {trace_id=\"ab\"} 0.5 1712345678.123\n" + okTail,
	}
	for _, doc := range good {
		if err := CheckExposition(strings.NewReader(doc)); err != nil {
			t.Errorf("valid exemplar rejected: %v\n%s", err, doc)
		}
	}
}

func BenchmarkRecorderRecord(b *testing.B) {
	r := NewFlightRecorder(256, 0.1)
	tds := make([]*TraceData, 256)
	for i := range tds {
		tds[i] = makeTD(fmt.Sprintf("/ep%d", i%4), time.Duration(i)*time.Microsecond, "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		td := tds[i%len(tds)]
		// Re-mint the ID so byID never collides with a live entry.
		td.TraceID = NewTraceID()
		r.Record(td)
	}
}

func BenchmarkObserveExemplar(b *testing.B) {
	h := newHistogram(LatencyBuckets())
	id := NewTraceID()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ObserveExemplar(0.00042, id)
		}
	})
}

package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// ridKey is the context key request IDs travel under. An unexported
// struct type, so no other package can collide with it.
type ridKey struct{}

// ridSeq is the minting state: a random 64-bit base drawn once at
// startup, incremented per ID. Request IDs are correlation handles, not
// secrets — they appear in response headers and log lines — so they
// need uniqueness within a deployment's retention window, not
// unpredictability, and one atomic add keeps the mint off the
// measurable part of the request path (crypto/rand per call costs more
// than the rest of the per-request instrumentation combined).
var ridSeq atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		ridSeq.Store(binary.BigEndian.Uint64(b[:]))
	}
	// On the (effectively impossible) error path IDs count up from zero:
	// still unique per process, which is all correlation needs.
}

// NewRequestID mints a 16-hex-character request ID, unique per process
// and starting from a random 64-bit base.
func NewRequestID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], ridSeq.Add(1))
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the request ID. Empty ids
// return ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID returns the context's request ID, or "" when none is set.
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

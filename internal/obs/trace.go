package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"
)

// This file is the in-process tracing layer: a Trace owns a tree of
// Spans recording what one request (or one background job) actually did
// — pool acquire, singleflight, corpus warm-start, engine probe phases —
// with wall-clock timing, small string attributes and error status.
// Completed traces are snapshotted into immutable TraceData and handed
// to a FlightRecorder (see recorder.go) for tail-sampled retention.
//
// Trace and span IDs are minted off the same atomic sequence as request
// IDs (reqid.go): correlation handles, not secrets, so one atomic add
// beats crypto/rand per span by orders of magnitude and keeps tracing
// inside the serving layer's per-request instrumentation budget.

// maxSpansPerTrace bounds one trace's tree so a pathological request
// (a select over many candidates, a scan emitting thousands of phase
// events) cannot grow a trace without limit. Spans past the cap are
// counted, not stored.
const maxSpansPerTrace = 512

// NewTraceID mints a 16-hex-character trace ID, unique per process.
func NewTraceID() string { return NewRequestID() }

// NewSpanID mints an 8-hex-character span ID for callers that assemble
// TraceData outside a live Trace — the dist layer stitches worker-sent
// wire spans under coordinator-minted span IDs.
func NewSpanID() string { return newSpanID() }

// newSpanID mints an 8-hex-character span ID from the shared sequence.
func newSpanID() string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(ridSeq.Add(1)))
	return hex.EncodeToString(b[:])
}

// Attr is one span attribute. A small ordered slice beats a map for the
// handful of attributes a span carries.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Trace is one span tree under construction. All spans of a trace share
// its mutex: span operations are short (append, field set) and a request
// touches them a handful of times, so one lock is cheaper than per-span
// state. The root span and a small attribute buffer live inside the
// Trace allocation itself, so starting a trace costs one heap object
// plus the ID string — the per-request budget the serve middleware
// pays even for traces sampling will drop.
type Trace struct {
	mu      sync.Mutex
	id      string
	root    Span
	attrBuf [4]Attr // backs the root's first attributes without a heap slice
	spans   int
	dropped int
}

// Span is one timed operation inside a trace. The zero/nil Span is inert:
// every method on a nil *Span is a no-op (and StartChild returns nil), so
// call sites need no "is tracing on" guards.
type Span struct {
	t        *Trace
	id       string
	name     string
	start    time.Time
	end      time.Time
	err      string
	attrs    []Attr
	children []*Span
}

// NewTrace starts a trace whose root span has the given name (for
// request traces, the bounded endpoint label) and initial attributes —
// passing them here copies into the trace's inline buffer instead of a
// locked SetAttr per attribute, which matters on the per-request path.
// The root span's ID is the trace ID's low half (unique per process,
// zero extra minting); its clock starts now. Call Root().End() before
// snapshotting with Data.
func NewTrace(name string, attrs ...Attr) *Trace {
	t := &Trace{id: NewTraceID()}
	t.root = Span{t: t, id: t.id[8:], name: name, start: time.Now()}
	t.root.attrs = append(t.attrBuf[:0], attrs...)
	t.spans = 1
	return t
}

// ID returns the trace ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return &t.root
}

// StartChild opens a child span; its clock starts now. Returns nil (still
// safe to use) on a nil receiver or when the trace's span cap is reached.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans >= maxSpansPerTrace {
		t.dropped++
		return nil
	}
	c := &Span{t: t, id: newSpanID(), name: name, start: time.Now()}
	s.children = append(s.children, c)
	t.spans++
	return c
}

// AddLeaf attaches an already-completed child span whose duration is
// known after the fact — how engine phase events report — backdating its
// start so the timeline stays coherent.
func (s *Span) AddLeaf(name string, d time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans >= maxSpansPerTrace {
		t.dropped++
		return
	}
	now := time.Now()
	c := &Span{t: t, id: newSpanID(), name: name, start: now.Add(-d), end: now, attrs: attrs}
	s.children = append(s.children, c)
	t.spans++
}

// End stamps the span's end time (first call wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
}

// SetAttr appends one attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.attrs = append(s.attrs, Attr{K: k, V: v})
}

// SetError marks the span failed. The first message wins, so a specific
// error recorded on the request path is not overwritten by a generic
// status mapped later.
func (s *Span) SetError(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.err == "" {
		s.err = msg
	}
}

// spanKey is the context key the current span travels under.
type spanKey struct{}

// ContextWithSpan returns a context carrying the span. A nil span
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's current span, or nil (inert).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SpanData is the immutable snapshot of one span, shaped for JSON.
type SpanData struct {
	ID         string      `json:"id"`
	Name       string      `json:"name"`
	Start      time.Time   `json:"start"`
	DurationNS int64       `json:"duration_ns"`
	Error      string      `json:"error,omitempty"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Children   []*SpanData `json:"children,omitempty"`
}

// TraceData is the immutable snapshot of one completed trace — what the
// flight recorder retains and /v1/traces/{id} serves. Name is the root
// span's name (the endpoint label for request traces); Retained is
// filled by the recorder with why the trace was kept.
type TraceData struct {
	TraceID      string    `json:"trace_id"`
	Name         string    `json:"name"`
	Start        time.Time `json:"start"`
	DurationNS   int64     `json:"duration_ns"`
	Error        string    `json:"error,omitempty"`
	Retained     string    `json:"retained,omitempty"`
	Spans        int       `json:"spans"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Root         *SpanData `json:"root"`
}

// rootState returns the root span's name, elapsed nanoseconds and error
// under the trace lock — the cheap inputs the recorder's tail-sampling
// decision needs, so the dropped majority of traces never pays for a
// full Data snapshot.
func (t *Trace) rootState() (name string, durNS int64, errMsg string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.root.end
	if end.IsZero() {
		end = time.Now()
	}
	return t.root.name, end.Sub(t.root.start).Nanoseconds(), t.root.err
}

// Data snapshots the trace. Unended spans (the trace's own clock keeps
// running for them) are closed at the snapshot instant so durations are
// always coherent. Call after Root().End().
func (t *Trace) Data() *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	root := snapshotSpan(&t.root, now)
	return &TraceData{
		TraceID:      t.id,
		Name:         t.root.name,
		Start:        root.Start,
		DurationNS:   root.DurationNS,
		Error:        t.root.err,
		Spans:        t.spans,
		DroppedSpans: t.dropped,
		Root:         root,
	}
}

func snapshotSpan(s *Span, now time.Time) *SpanData {
	end := s.end
	if end.IsZero() {
		end = now
	}
	d := &SpanData{
		ID:         s.id,
		Name:       s.name,
		Start:      s.start,
		DurationNS: end.Sub(s.start).Nanoseconds(),
		Error:      s.err,
	}
	if len(s.attrs) > 0 {
		d.Attrs = append([]Attr(nil), s.attrs...)
	}
	for _, c := range s.children {
		d.Children = append(d.Children, snapshotSpan(c, now))
	}
	return d
}

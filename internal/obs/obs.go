// Package obs is the repository's dependency-free observability
// substrate: log-bucketed histograms, labeled counters and collected
// gauges behind a Registry that renders the Prometheus text exposition
// format, plus request-ID context plumbing for tracing a request from
// serve middleware down into the engine's probe loops.
//
// # Hot-path cost
//
// Counter.Add and Histogram.Observe are a few atomic operations with no
// locks and no allocation; CounterVec/HistogramVec resolve labels
// through one sync.Map load after the first use of a label set. The
// mutex in Registry guards only metric registration and exposition —
// never an observation — so instrumented hot paths stay within a couple
// of nanoseconds of uninstrumented ones.
//
// # Exposition
//
// Registry.WritePrometheus renders every registered metric in the
// classic Prometheus text format (version 0.0.4): HELP/TYPE headers,
// escaped label values, cumulative histogram buckets with a trailing
// +Inf — and no exemplars, which that format's parser rejects.
// Registry.WriteOpenMetrics renders the same families as OpenMetrics
// text: histogram buckets carry their exemplar trailers and the
// document ends with the mandatory "# EOF" terminator; serve it only
// under a negotiated application/openmetrics-text content type.
// CheckExposition (see check.go) is a pure-Go validator for both
// flavors, used by tests and the CI smoke job.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// labelSep joins label values into sync.Map keys. 0xff cannot appear in
// valid UTF-8 label values, so joined keys never collide.
const labelSep = "\xff"

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored; counters are
// monotone by definition).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	labels []string
	m      sync.Map // joined label values -> *Counter
}

// With returns the counter for the label values (created on first use).
// The number of values must match the vector's label names.
func (v *CounterVec) With(values ...string) *Counter {
	key := strings.Join(values, labelSep)
	if c, ok := v.m.Load(key); ok {
		return c.(*Counter)
	}
	c, _ := v.m.LoadOrStore(key, new(Counter))
	return c.(*Counter)
}

// Histogram is a fixed-boundary histogram with atomic observation: one
// binary search over the (typically log-spaced) upper bounds, two atomic
// adds and a CAS loop for the float sum. Values above the last boundary
// land only in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
	// exemplars holds the latest exemplar per bucket (last slot = +Inf),
	// published via ObserveExemplar and rendered as OpenMetrics exemplar
	// trailers on the bucket lines.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar links one observed value to the trace that produced it.
type exemplar struct {
	traceID string
	value   float64
}

// bucketIndex returns the index of the smallest bound >= v, or
// len(bounds) for the implicit +Inf bucket.
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Values beyond every bound belong only to +Inf (tracked by count).
	if i := h.bucketIndex(v); i < len(h.bounds) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and attaches the trace ID as the
// bucket's exemplar: the exposition then links the bucket to a concrete
// retained trace (`... # {trace_id="..."} value`). Call it only for
// traces the flight recorder actually kept, so every exemplar a scrape
// shows resolves via /v1/traces/{id}.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if traceID != "" {
		h.exemplars[h.bucketIndex(v)].Store(&exemplar{traceID: traceID, value: v})
	}
	h.Observe(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds, plus
// count and sum. Concurrent observations may straddle the loads — the
// snapshot is a consistent-enough view for scraping, never torn memory.
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.bounds))
	var acc int64
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		cum[i] = acc
	}
	return cum, h.count.Load(), h.Sum()
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	labels []string
	bounds []float64
	m      sync.Map // joined label values -> *Histogram
}

// With returns the histogram for the label values (created on first
// use).
func (v *HistogramVec) With(values ...string) *Histogram {
	key := strings.Join(values, labelSep)
	if h, ok := v.m.Load(key); ok {
		return h.(*Histogram)
	}
	h := newHistogram(v.bounds)
	got, _ := v.m.LoadOrStore(key, h)
	return got.(*Histogram)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		buckets:   make([]atomic.Int64, len(bounds)),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// ExpBuckets returns n log-spaced histogram bounds starting at start,
// each factor times the previous — the log bucketing every latency and
// size histogram in this repository uses.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 1µs to ~8.4s in doubling steps — wide enough for
// both a memoized request (~tens of µs) and a cold multi-second boundary
// scan.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 24) }

// WorkBuckets spans 1 to ~4.3e9 operations in 4x steps, for probe and
// size counts.
func WorkBuckets() []float64 { return ExpBuckets(1, 4, 17) }

// metricKind is the exposition TYPE of a registered family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one registered metric family, in registration order.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string

	counter    *Counter
	counterVec *CounterVec
	histogram  *Histogram
	histVec    *HistogramVec
	gaugeFn    func() float64
	// collectFn emits dynamic label sets at exposition time (per-worker
	// rates, per-session costs) without pre-registering every series.
	collectFn func(emit func(labelValues []string, v float64))
}

// Registry is an ordered collection of metric families. Registration is
// typically done once at construction; the Registry is then safe for
// concurrent observation and exposition.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

func (r *Registry) add(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", f.name))
	}
	r.byName[f.name] = struct{}{}
	r.families = append(r.families, f)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := new(Counter)
	r.add(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels}
	r.add(&family{name: name, help: help, kind: kindCounter, labels: labels, counterVec: v})
	return v
}

// NewHistogram registers and returns a histogram with the given upper
// bounds (strictly increasing; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	checkBounds(name, bounds)
	h := newHistogram(bounds)
	r.add(&family{name: name, help: help, kind: kindHistogram, histogram: h})
	return h
}

// NewHistogramVec registers and returns a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	checkBounds(name, bounds)
	v := &HistogramVec{labels: labels, bounds: bounds}
	r.add(&family{name: name, help: help, kind: kindHistogram, labels: labels, histVec: v})
	return v
}

// NewGaugeFunc registers a gauge whose value is read by fn at exposition
// time. fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// NewGaugeCollector registers a labeled gauge family whose series are
// produced by collect at exposition time: collect calls emit once per
// live series. This is how dynamic populations — pool sessions, dist
// workers, held leases — surface without pre-registering every label
// set. collect must be safe for concurrent use.
func (r *Registry) NewGaugeCollector(name, help string, labels []string, collect func(emit func(labelValues []string, v float64))) {
	r.add(&family{name: name, help: help, kind: kindGauge, labels: labels, collectFn: collect})
}

func checkBounds(name string, bounds []float64) {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// OpenMetricsContentType is the content type a negotiated OpenMetrics
// exposition (WriteOpenMetrics) must be served under.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// AcceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics text exposition. Prometheus servers configured for
// exemplar scraping send application/openmetrics-text ahead of
// text/plain; everything else falls back to the classic format.
func AcceptsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text")
}

// WritePrometheus renders every registered family in the classic
// Prometheus text exposition format (version 0.0.4), in registration
// order, with label-sorted series for deterministic output. The 0.0.4
// parser errors on exemplar trailers — a single one fails the whole
// scrape — so this output is exemplar-free; WriteOpenMetrics carries
// them.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics renders every registered family as the OpenMetrics
// text exposition: counter families are declared under their base name
// (the mandatory _total suffix stays on the sample lines), histogram
// buckets carry their latest exemplar trailers, and the document ends
// with the required "# EOF" terminator. Serve this only under
// OpenMetricsContentType — the classic text-format parser rejects it.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.write(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) write(w io.Writer, om bool) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w, om); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer, om bool) error {
	var b strings.Builder
	typ := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[f.kind]
	header := f.name
	if om && f.kind == kindCounter {
		// OpenMetrics names the counter family without the _total suffix
		// its samples carry.
		header = strings.TrimSuffix(f.name, "_total")
	}
	fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", header, escapeHelp(f.help), header, typ)
	switch {
	case f.counter != nil:
		writeSample(&b, f.name, "", nil, nil, float64(f.counter.Value()))
	case f.counterVec != nil:
		for _, s := range sortedSeries(&f.counterVec.m) {
			writeSample(&b, f.name, "", f.labels, s.values, float64(s.v.(*Counter).Value()))
		}
	case f.histogram != nil:
		writeHistogram(&b, f.name, f.labels, nil, f.histogram, om)
	case f.histVec != nil:
		for _, s := range sortedSeries(&f.histVec.m) {
			writeHistogram(&b, f.name, f.labels, s.values, s.v.(*Histogram), om)
		}
	case f.gaugeFn != nil:
		writeSample(&b, f.name, "", nil, nil, f.gaugeFn())
	case f.collectFn != nil:
		type row struct {
			values []string
			v      float64
		}
		var rows []row
		f.collectFn(func(lv []string, v float64) {
			if len(lv) == len(f.labels) {
				rows = append(rows, row{append([]string(nil), lv...), v})
			}
		})
		sort.Slice(rows, func(i, j int) bool {
			return strings.Join(rows[i].values, labelSep) < strings.Join(rows[j].values, labelSep)
		})
		for _, rw := range rows {
			writeSample(&b, f.name, "", f.labels, rw.values, rw.v)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// series pairs the decoded label values of one vec entry with its
// metric.
type series struct {
	values []string
	v      any
}

func sortedSeries(m *sync.Map) []series {
	var out []series
	m.Range(func(k, v any) bool {
		key := k.(string)
		var values []string
		if key != "" {
			values = strings.Split(key, labelSep)
		}
		out = append(out, series{values: values, v: v})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, labelSep) < strings.Join(out[j].values, labelSep)
	})
	return out
}

func writeHistogram(b *strings.Builder, name string, labels, values []string, h *Histogram, om bool) {
	cum, count, sum := h.snapshot()
	for i, bound := range h.bounds {
		writeBucket(b, name, formatFloat(bound), labels, values, float64(cum[i]), h.exemplars[i].Load(), om)
	}
	writeBucket(b, name, "+Inf", labels, values, float64(count), h.exemplars[len(h.bounds)].Load(), om)
	writeSample(b, name+"_sum", "", labels, values, sum)
	writeSample(b, name+"_count", "", labels, values, float64(count))
}

// writeBucket emits one cumulative bucket line, with the bucket's latest
// exemplar as an OpenMetrics trailer when one has been recorded — but
// only in OpenMetrics mode: the 0.0.4 parser fails the entire scrape on
// the '#' after the value.
func writeBucket(b *strings.Builder, name, le string, labels, values []string, v float64, ex *exemplar, om bool) {
	if ex == nil || !om {
		writeSample(b, name+"_bucket", le, labels, values, v)
		return
	}
	writeSampleBare(b, name+"_bucket", le, labels, values, v)
	b.WriteString(` # {trace_id="`)
	b.WriteString(escapeLabel(ex.traceID))
	b.WriteString(`"} `)
	b.WriteString(formatFloat(ex.value))
	b.WriteByte('\n')
}

// writeSample emits one exposition line. le, when non-empty, is appended
// as the trailing bucket label.
func writeSample(b *strings.Builder, name, le string, labels, values []string, v float64) {
	writeSampleBare(b, name, le, labels, values, v)
	b.WriteByte('\n')
}

// writeSampleBare is writeSample without the line terminator, so bucket
// lines can append an exemplar trailer.
func writeSampleBare(b *strings.Builder, name, le string, labels, values []string, v float64) {
	b.WriteString(name)
	if len(values) > 0 || le != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			val := ""
			if i < len(values) {
				val = values[i]
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(val))
			b.WriteByte('"')
		}
		if le != "" {
			if len(values) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="` + le + `"`)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
}

// escapeLabel escapes a label value exactly as the exposition format
// defines — backslash, double quote and newline; every other byte is
// emitted literally (the format is UTF-8 and defines no other escapes,
// so Go's %q, which invents \t and \u escapes, would be wrong here).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeHelp escapes a HELP text: backslashes and newlines only, per the
// exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketEdges pins the edge semantics of the log-bucketed
// histogram: zero and sub-resolution values land in the first bucket,
// a value exactly on a bound counts into that bound's bucket (le is
// inclusive), and overflow values appear only in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	h.Observe(0)      // below every bound
	h.Observe(1e-9)   // sub-resolution
	h.Observe(1)      // exactly on a bound: le="1" is inclusive
	h.Observe(10.0)   // exactly on the middle bound
	h.Observe(99.999) // inside the last finite bucket
	h.Observe(100.01) // overflow: only +Inf
	h.Observe(1e300)  // extreme overflow

	cum, count, sum := h.snapshot()
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	want := []int64{3, 4, 5} // cumulative per finite bound
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[le=%v] = %d, want %d", h.bounds[i], cum[i], w)
		}
	}
	wantSum := 0.0 + 1e-9 + 1 + 10 + 99.999 + 100.01 + 1e300
	if math.Abs(sum-wantSum) > wantSum*1e-12 {
		t.Errorf("sum = %g, want %g", sum, wantSum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	if len(LatencyBuckets()) == 0 || len(WorkBuckets()) == 0 {
		t.Fatal("default bucket sets empty")
	}
}

// TestConcurrentObserveVsExpose races observers against scrapers; run
// under -race this is the lock-cheap hot path's safety proof.
func TestConcurrentObserveVsExpose(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("test_latency_seconds", "test", LatencyBuckets(), "endpoint")
	c := r.NewCounterVec("test_requests_total", "test", "endpoint", "code")
	r.NewGaugeFunc("test_live", "test", func() float64 { return 1 })
	r.NewGaugeCollector("test_workers", "test", []string{"id"}, func(emit func([]string, float64)) {
		emit([]string{"w1"}, 2)
	})

	const writers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep := []string{"/a", "/b"}[i%2]
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.With(ep).Observe(float64(i) * 1e-5)
				c.With(ep, "200").Inc()
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if err := CheckExposition(strings.NewReader(b.String())); err != nil {
			t.Fatalf("mid-race exposition invalid: %v\n%s", err, b.String())
		}
	}
	close(stop)
	wg.Wait()
}

// TestExpositionEscaping routes hostile label values through the writer
// and proves the checker (a strict format parser) both accepts the
// output and decodes the values back intact.
func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("escapes_total", `help with \backslash and
newline`, "val")
	hostile := []string{
		`plain`,
		`back\slash`,
		`dou"ble`,
		"new\nline",
		`all\"of` + "\nthem",
		`utf8 héllo ⚡`,
		``,
	}
	for _, v := range hostile {
		c.With(v).Add(1)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("escaped exposition rejected: %v\n%s", err, out)
	}
	// Decode every sample line back and collect the label values.
	got := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		for _, l := range s.labels {
			got[l[1]] = true
		}
	}
	for _, v := range hostile {
		if v != "" && !got[v] {
			t.Errorf("label value %q did not round-trip; output:\n%s", v, out)
		}
	}
}

func TestRegistryFullDocumentValidates(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("plain_total", "plain counter")
	h := r.NewHistogram("phase_seconds", "phase latency", LatencyBuckets())
	h.Observe(0.002)
	h.Observe(3)
	hv := r.NewHistogramVec("labeled_seconds", "labeled latency", []float64{0.1, 1}, "phase")
	hv.With("w4_scan").Observe(0.5)
	hv.With("mitm_probe").Observe(2) // overflow → only +Inf
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("document invalid: %v\n%s", err, b.String())
	}
	for _, want := range []string{
		"# TYPE phase_seconds histogram",
		`phase_seconds_bucket{le="+Inf"} 2`,
		`labeled_seconds_bucket{phase="mitm_probe",le="+Inf"} 1`,
		`labeled_seconds_count{phase="w4_scan"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

// TestCheckerRejects drives the validator with documents a real scraper
// would reject.
func TestCheckerRejects(t *testing.T) {
	bad := map[string]string{
		"bad metric name":    "0bad 1\n",
		"bad value":          "m xyz\n",
		"bad escape":         "m{l=\"a\\t\"} 1\n",
		"unterminated label": "m{l=\"a} 1\n",
		"duplicate series":   "m{a=\"1\"} 1\nm{a=\"1\"} 2\n",
		"unknown type":       "# TYPE m wat\nm 1\n",
		"no +Inf bucket":     "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n",
		"decreasing buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n",
		"inf != count":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\nh_sum 1\n",
		"unparseable le":     "# TYPE h histogram\nh_bucket{le=\"wat\"} 4\nh_count 4\nh_sum 1\n",
	}
	for name, doc := range bad {
		if err := CheckExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, doc)
		}
	}
	good := "# HELP ok fine\n# TYPE ok counter\nok 1\nuntyped_thing{a=\"b\"} 2 1712345678\n"
	if err := CheckExposition(strings.NewReader(good)); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids %q %q: want 16 hex chars, distinct", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Fatalf("RequestID = %q, want %q", got, a)
	}
	if RequestID(context.Background()) != "" {
		t.Fatal("empty context should carry no id")
	}
	if WithRequestID(context.Background(), "") != context.Background() {
		t.Fatal("empty id should not allocate a context")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(LatencyBuckets())
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.00042)
		}
	})
}

func BenchmarkCounterVecWith(b *testing.B) {
	var v CounterVec
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.With("/v1/evaluate", "200").Inc()
		}
	})
}

package obs

import (
	"sort"
	"sync"
	"time"
)

// FlightRecorder retains completed traces in a bounded ring with tail
// sampling: the retention decision is made when the trace finishes, so
// the traces worth debugging — errored ones and the slowest K per
// endpoint — are always kept, while the healthy fast majority is down-
// sampled probabilistically. Eviction is clock-style: when the ring is
// full the hand advances past pinned entries (errored or currently
// slowest-K) and overwrites the first unpinned one, falling back to the
// oldest pinned entry only when everything is pinned.
//
// Pinning is budgeted: at most half the ring can be pinned at once
// (and error pins at most half of that), so a flood of errored or slow
// traces (an incident, or a hostile client manufacturing errors) can
// never wedge the ring into a state where eviction must overwrite
// pinned entries — retention beyond the budget is best-effort, and slow
// pinning survives an error flood. A warm-up trace additionally needs at least
// slowFloorNS of duration to count as "slow" while its endpoint's set
// is underfull, so the first few requests per endpoint are not pinned
// merely for arriving first.
//
// All operations take one short mutex; Record is O(1) amortized (the
// clock hand moves at most once around per insert), so recording stays
// off the measurable part of the request path.
type FlightRecorder struct {
	mu         sync.Mutex
	capacity   int
	sampleRate float64
	slowK      int
	pinBudget  int // max entries pinned at once: capacity/2

	entries []*recEntry          // ring slots, nil until filled
	filled  int                  // occupied slots, so a full ring skips the empty-slot scan
	hand    int                  // next eviction-scan position
	byID    map[string]*recEntry // trace id -> live entry
	slow    map[string][]*recEntry
	pins    int // entries with pinnedErr or pinnedSlow set
	errPins int // entries with pinnedErr set, capped at half the budget

	seq      uint64 // insertion order stamp
	rng      uint64 // splitmix64 state for the probabilistic sample
	recorded uint64
	kept     uint64
	evicted  uint64
}

// recEntry is one ring slot. pinnedErr never clears while the entry is
// live (though a budget-exhausted recorder may never set it); pinnedSlow
// clears when a faster trace displaces this one from its endpoint's
// slowest-K set, making the entry evictable again. An entry can sit in
// its endpoint's slow set with pinnedSlow false when the pin budget was
// exhausted at insert time.
type recEntry struct {
	td         *TraceData
	seq        uint64
	slot       int
	pinnedErr  bool
	pinnedSlow bool
}

// slowKDefault is how many slowest traces per endpoint stay pinned.
const slowKDefault = 8

// slowFloorNS is the minimum duration for a trace to enter an underfull
// slowest-K set: sub-millisecond requests are never "slow" merely
// because their endpoint's set has not filled yet.
const slowFloorNS = int64(time.Millisecond)

// NewFlightRecorder returns a recorder retaining at most capacity traces
// (minimum 16 enforced so the slowest-K pins cannot starve the ring) and
// keeping healthy fast traces with probability sampleRate (clamped to
// [0, 1]).
func NewFlightRecorder(capacity int, sampleRate float64) *FlightRecorder {
	if capacity < 16 {
		capacity = 16
	}
	if sampleRate < 0 {
		sampleRate = 0
	}
	if sampleRate > 1 {
		sampleRate = 1
	}
	return &FlightRecorder{
		capacity:   capacity,
		sampleRate: sampleRate,
		slowK:      slowKDefault,
		pinBudget:  capacity / 2,
		entries:    make([]*recEntry, capacity),
		byID:       make(map[string]*recEntry, capacity),
		slow:       make(map[string][]*recEntry),
		rng:        ridSeq.Add(1), // random-based seed, free of crypto/rand per recorder
	}
}

// Record applies the tail-sampling decision to a completed trace and,
// when it is retained, stores it (stamping td.Retained with the reason:
// "error", "slow" or "sampled"). td must not be mutated afterwards.
func (r *FlightRecorder) Record(td *TraceData) (retained bool, reason string) {
	if r == nil || td == nil {
		return false, ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded++
	isErr := td.Error != ""
	isSlow := r.qualifiesSlowLocked(td.Name, td.DurationNS)
	switch {
	case isErr:
		reason = "error"
	case isSlow:
		reason = "slow"
	case r.randLocked() < r.sampleRate:
		reason = "sampled"
	default:
		return false, ""
	}
	td.Retained = reason
	e := &recEntry{td: td, seq: r.seq}
	r.seq++
	r.insertLocked(e)
	if isErr {
		r.pinErrLocked(e)
	}
	if isSlow {
		r.pinSlowLocked(e)
	}
	r.kept++
	return true, reason
}

// RecordTrace applies the same tail-sampling decision to a completed
// live trace, but snapshots the span tree only when the trace is
// retained: the dropped majority pays for the decision (one short
// lock over three scalar fields), never for Data. Call after
// Root().End(). The decision and the insert are two lock acquisitions;
// between them another trace can enter the slowest-K set, so a trace
// that qualified as "slow" may pin in at the set's edge — a benign
// race that at worst keeps one borderline trace.
func (r *FlightRecorder) RecordTrace(tr *Trace) (retained bool, reason string) {
	if r == nil || tr == nil {
		return false, ""
	}
	name, durNS, errMsg := tr.rootState()
	isErr := errMsg != ""
	r.mu.Lock()
	r.recorded++
	isSlow := r.qualifiesSlowLocked(name, durNS)
	switch {
	case isErr:
		reason = "error"
	case isSlow:
		reason = "slow"
	case r.randLocked() < r.sampleRate:
		reason = "sampled"
	default:
		r.mu.Unlock()
		return false, ""
	}
	r.mu.Unlock()

	td := tr.Data() // takes the trace lock; must not nest inside r.mu
	td.Retained = reason
	r.mu.Lock()
	defer r.mu.Unlock()
	e := &recEntry{td: td, seq: r.seq}
	r.seq++
	r.insertLocked(e)
	if isErr {
		r.pinErrLocked(e)
	}
	if isSlow {
		r.pinSlowLocked(e)
	}
	r.kept++
	return true, reason
}

// qualifiesSlowLocked reports whether a trace with this endpoint name
// and duration would enter the endpoint's slowest-K set. An underfull
// set only admits traces at least slowFloorNS long, so warm-up traffic
// is not retained as "slow" regardless of how fast it was; a full set
// admits only traces strictly slower than its fastest member (which,
// by induction, already cleared the floor).
func (r *FlightRecorder) qualifiesSlowLocked(name string, durNS int64) bool {
	set := r.slow[name]
	if len(set) < r.slowK {
		return durNS >= slowFloorNS
	}
	return durNS > set[0].td.DurationNS
}

// pinErrLocked pins an errored entry against eviction, if the pin
// budget allows; past the budget the trace is still retained, just
// evictable. Error pins take at most half the budget, so an error
// flood (an incident, or a client manufacturing request errors) can
// never starve slow-trace pinning.
func (r *FlightRecorder) pinErrLocked(e *recEntry) {
	if r.pins >= r.pinBudget || r.errPins >= r.pinBudget/2 {
		return
	}
	e.pinnedErr = true
	r.pins++
	r.errPins++
}

// pinSlowLocked inserts e into its endpoint's slowest-K set (ascending
// by duration), unpinning whatever it displaces. The pin itself is
// subject to the budget: past it the entry still orders the set (so
// slow qualification keeps working) but stays evictable.
func (r *FlightRecorder) pinSlowLocked(e *recEntry) {
	name := e.td.Name
	set := r.slow[name]
	if len(set) >= r.slowK {
		r.unpinSlowLocked(set[0])
		set = set[1:]
	}
	i := sort.Search(len(set), func(i int) bool { return set[i].td.DurationNS > e.td.DurationNS })
	set = append(set, nil)
	copy(set[i+1:], set[i:])
	set[i] = e
	if e.pinnedErr || r.pins < r.pinBudget {
		if !e.pinnedErr && !e.pinnedSlow {
			r.pins++
		}
		e.pinnedSlow = true
	}
	r.slow[name] = set
}

// unpinSlowLocked clears an entry's slow pin, releasing its budget slot
// unless an error pin still holds the entry.
func (r *FlightRecorder) unpinSlowLocked(e *recEntry) {
	if !e.pinnedSlow {
		return
	}
	e.pinnedSlow = false
	if !e.pinnedErr {
		r.pins--
	}
}

// insertLocked places e in the ring, evicting clock-style if full.
func (r *FlightRecorder) insertLocked(e *recEntry) {
	// Empty slot first: the ring fills before anything is evicted. The
	// scan only runs while slots remain — once the ring is full every
	// insert goes straight to the eviction scan instead of walking the
	// whole ring looking for a hole that cannot exist.
	if r.filled < r.capacity {
		for i := 0; i < r.capacity; i++ {
			slot := (r.hand + i) % r.capacity
			if r.entries[slot] == nil {
				r.placeLocked(e, slot)
				r.hand = (slot + 1) % r.capacity
				return
			}
		}
	}
	// Full: advance the hand past pinned entries; if everything is
	// pinned, the hand's own (oldest-scanned) entry goes.
	victim := r.hand
	for i := 0; i < r.capacity; i++ {
		slot := (r.hand + i) % r.capacity
		v := r.entries[slot]
		if !v.pinnedErr && !v.pinnedSlow {
			victim = slot
			break
		}
	}
	r.evictLocked(victim)
	r.placeLocked(e, victim)
	r.hand = (victim + 1) % r.capacity
}

func (r *FlightRecorder) placeLocked(e *recEntry, slot int) {
	e.slot = slot
	r.entries[slot] = e // always a hole: empty-scan hit or freshly evicted
	r.filled++
	r.byID[e.td.TraceID] = e
}

func (r *FlightRecorder) evictLocked(slot int) {
	v := r.entries[slot]
	if v == nil {
		return
	}
	delete(r.byID, v.td.TraceID)
	// Membership is checked regardless of the pin flag: a budget-
	// exhausted insert leaves entries in the slow set unpinned.
	set := r.slow[v.td.Name]
	for i, se := range set {
		if se == v {
			r.slow[v.td.Name] = append(set[:i:i], set[i+1:]...)
			break
		}
	}
	if v.pinnedErr || v.pinnedSlow {
		r.pins--
	}
	if v.pinnedErr {
		r.errPins--
	}
	r.entries[slot] = nil
	r.filled--
	r.evicted++
}

// randLocked is splitmix64 scaled to [0, 1) — good enough for sampling,
// free of any math/rand locking.
func (r *FlightRecorder) randLocked() float64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Get returns the retained trace with the given ID.
func (r *FlightRecorder) Get(id string) (*TraceData, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	if !ok {
		return nil, false
	}
	return e.td, true
}

// TraceFilter selects traces for Summaries. Zero fields match
// everything; Limit 0 means no cap.
type TraceFilter struct {
	Name        string        // root span name (endpoint label)
	MinDuration time.Duration // keep traces at least this long
	ErrorsOnly  bool
	Limit       int
}

// TraceSummary is the one-line view of a retained trace.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Error      string    `json:"error,omitempty"`
	Retained   string    `json:"retained"`
	Spans      int       `json:"spans"`
}

// Summaries lists retained traces matching the filter, newest first.
func (r *FlightRecorder) Summaries(f TraceFilter) []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	matched := make([]*recEntry, 0, len(r.byID))
	for _, e := range r.entries {
		if e == nil {
			continue
		}
		td := e.td
		if f.Name != "" && td.Name != f.Name {
			continue
		}
		if td.DurationNS < f.MinDuration.Nanoseconds() {
			continue
		}
		if f.ErrorsOnly && td.Error == "" {
			continue
		}
		matched = append(matched, e)
	}
	r.mu.Unlock()
	sort.Slice(matched, func(i, j int) bool { return matched[i].seq > matched[j].seq })
	if f.Limit > 0 && len(matched) > f.Limit {
		matched = matched[:f.Limit]
	}
	out := make([]TraceSummary, len(matched))
	for i, e := range matched {
		td := e.td
		out[i] = TraceSummary{
			TraceID:    td.TraceID,
			Name:       td.Name,
			Start:      td.Start,
			DurationNS: td.DurationNS,
			Error:      td.Error,
			Retained:   td.Retained,
			Spans:      td.Spans,
		}
	}
	return out
}

// RecorderStats are the recorder's lifetime counters.
type RecorderStats struct {
	Recorded uint64 `json:"recorded"`
	Retained uint64 `json:"retained"`
	Evicted  uint64 `json:"evicted"`
	Live     int    `json:"live"`
}

// Stats snapshots the counters.
func (r *FlightRecorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return RecorderStats{Recorded: r.recorded, Retained: r.kept, Evicted: r.evicted, Live: len(r.byID)}
}

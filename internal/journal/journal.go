package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"koopmancrc/internal/crc"
)

const (
	snapshotName = "snapshot.jlog"
	walName      = "wal.jlog"
)

// lineCRC protects every record line. CRC-32C is the catalogue's iSCSI
// polynomial; using our own engine here is deliberate dogfooding.
var lineCRC = crc.New(crc.CRC32C)

// Record is one journal entry. Seq increases strictly across the life of
// a journal, including across snapshot compactions.
type Record struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// snapType is the reserved Type of the record in snapshot.jlog.
const snapType = "snapshot"

// Recovery is the state reconstructed from a journal directory.
type Recovery struct {
	// Snapshot is the latest compacted state, nil if none was taken.
	Snapshot json.RawMessage
	// SnapshotSeq is the sequence watermark the snapshot covers.
	SnapshotSeq uint64
	// Entries are the WAL records after the watermark, in append order.
	Entries []Record
	// Truncated counts WAL bytes discarded during recovery: a torn final
	// line or a suffix starting at the first record whose CRC failed.
	Truncated int64
}

// Journal is an open, writable journal. Append and Snapshot are safe for
// concurrent use.
type Journal struct {
	mu     sync.Mutex
	dir    string
	wal    *os.File
	seq    uint64
	closed bool
	// failed is sticky: once a WAL write or sync errors, the on-disk
	// tail state is unknown (a partial line may or may not be there),
	// so further appends could reuse a sequence number and make replay
	// truncate durable records as a regression. The journal fails stop
	// instead; recovery of the directory happens at the next Open.
	failed error
}

// encodeLine renders a record as "crc32c-hex SP json LF".
func encodeLine(rec Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("%08x %s\n", lineCRC.Checksum(body), body)), nil
}

// decodeLine parses and CRC-verifies one line (without its newline).
func decodeLine(line []byte) (Record, error) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, fmt.Errorf("journal: malformed record line")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("journal: bad record checksum field: %w", err)
	}
	body := line[9:]
	if got := lineCRC.Checksum(body); got != uint32(want) {
		return rec, fmt.Errorf("journal: record checksum mismatch: %08x != %08x", got, want)
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("journal: bad record body: %w", err)
	}
	return rec, nil
}

// scanWAL walks raw WAL bytes, returning the records after the snapshot
// watermark and the byte length of the durable prefix. Scanning stops at
// the first torn line (no trailing newline), checksum failure, or
// sequence regression; everything after that point is untrusted.
func scanWAL(data []byte, after uint64) (entries []Record, validLen int64) {
	last := uint64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn final line
		}
		rec, err := decodeLine(data[:nl])
		if err != nil {
			break
		}
		if rec.Seq <= last {
			break
		}
		last = rec.Seq
		validLen += int64(nl + 1)
		data = data[nl+1:]
		if rec.Seq <= after {
			// Covered by the snapshot already: a crash landed between the
			// snapshot rename and the WAL truncation. Durable, redundant.
			continue
		}
		entries = append(entries, rec)
	}
	return entries, validLen
}

// errTornRead marks a snapshot/WAL pair that cannot belong to one
// moment in time: the first surviving WAL record does not continue the
// snapshot's watermark, so records in between are missing. Appends and
// crash recovery never produce this state — only reading the two files
// while a writer compacts between the reads (stale snapshot, already-
// truncated WAL) does, which a reader fixes by re-reading.
var errTornRead = fmt.Errorf("journal: snapshot and wal read from different compaction epochs")

// readState loads the snapshot and scans the WAL without mutating disk.
func readState(dir string) (*Recovery, int64, error) {
	rec := &Recovery{}
	snap, err := os.ReadFile(filepath.Join(dir, snapshotName))
	switch {
	case err == nil:
		r, derr := decodeLine(bytes.TrimSuffix(snap, []byte("\n")))
		if derr != nil {
			return nil, 0, fmt.Errorf("journal: corrupt snapshot in %s: %w", dir, derr)
		}
		rec.Snapshot = r.Data
		rec.SnapshotSeq = r.Seq
	case !os.IsNotExist(err):
		return nil, 0, err
	}
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, err
	}
	entries, validLen := scanWAL(data, rec.SnapshotSeq)
	if len(entries) > 0 && entries[0].Seq != rec.SnapshotSeq+1 {
		// Sequence numbers are dense, so the records in
		// (SnapshotSeq, entries[0].Seq) exist but are in neither file
		// we read: a torn read across a concurrent compaction.
		return nil, 0, errTornRead
	}
	rec.Entries = entries
	rec.Truncated = int64(len(data)) - validLen
	return rec, validLen, nil
}

// Read replays a journal directory without opening it for writing. Safe
// to run against a live writer: a compaction landing between the
// snapshot and WAL reads is detected (the record sequence is dense, so
// a gap betrays the torn read) and retried against the fresh files. A
// torn or corrupt WAL tail is ignored (reported in Truncated) but not
// truncated on disk.
func Read(dir string) (*Recovery, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		var rec *Recovery
		rec, _, err = readState(dir)
		if err != errTornRead {
			return rec, err
		}
	}
	return nil, err
}

// Open creates the directory if needed, replays the journal (truncating
// any torn or corrupt WAL tail so the log ends at its last durable
// record) and returns the journal opened for appending alongside the
// recovered state.
func Open(dir string) (*Journal, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rec, validLen, err := readState(dir)
	if err == errTornRead {
		// Open has the directory to itself; a gap here is not a racing
		// compaction but real damage (records removed mid-log).
		return nil, nil, fmt.Errorf("journal: %s is missing records between the snapshot and the wal", dir)
	}
	if err != nil {
		return nil, nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if rec.Truncated > 0 {
		if err := wal.Truncate(validLen); err != nil {
			wal.Close()
			return nil, nil, fmt.Errorf("journal: truncating corrupt tail: %w", err)
		}
		if err := wal.Sync(); err != nil {
			wal.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
	}
	seq := rec.SnapshotSeq
	if n := len(rec.Entries); n > 0 {
		seq = rec.Entries[n-1].Seq
	}
	return &Journal{dir: dir, wal: wal, seq: seq}, rec, nil
}

// Seq returns the sequence number of the last durable record.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Append durably writes one record: the line is written and fsync'd
// before Append returns, so an acknowledged record survives a crash.
func (j *Journal) Append(typ string, v any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(typ, v, true)
}

// AppendNoSync writes one record without forcing it to disk. The record
// becomes durable with the next synced operation on the journal (a
// plain Append, a Snapshot, or Close); until then a crash may lose it —
// the right trade for high-rate audit records whose loss is benign.
func (j *Journal) AppendNoSync(typ string, v any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(typ, v, false)
}

func (j *Journal) appendLocked(typ string, v any, sync bool) error {
	if j.closed {
		return fmt.Errorf("journal: appending to closed journal")
	}
	if j.failed != nil {
		return j.failed
	}
	if typ == snapType {
		return fmt.Errorf("journal: record type %q is reserved", snapType)
	}
	var data json.RawMessage
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		data = b
	}
	line, err := encodeLine(Record{Seq: j.seq + 1, Type: typ, Data: data})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.wal.Write(line); err != nil {
		j.failed = fmt.Errorf("journal: wal write failed, journal disabled: %w", err)
		return j.failed
	}
	if sync {
		if err := j.wal.Sync(); err != nil {
			j.failed = fmt.Errorf("journal: wal sync failed, journal disabled: %w", err)
			return j.failed
		}
	}
	j.seq++
	return nil
}

// Snapshot compacts the journal: v becomes the new snapshot (covering
// every record appended so far) and the WAL is reset. The snapshot file
// is replaced atomically and the rename is the commit point — a crash at
// any step leaves either the old state or the new one, never a mix,
// because replay skips WAL records at or below the snapshot watermark.
func (j *Journal) Snapshot(v any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: snapshotting closed journal")
	}
	if j.failed != nil {
		// The WAL tail state is unknown; a snapshot over it could race
		// a lingering half-line with the watermark. Fail stop.
		return j.failed
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line, err := encodeLine(Record{Seq: j.seq, Type: snapType, Data: b})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmp := filepath.Join(j.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(line); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// Committed. The WAL's contents are now redundant; dropping them is
	// pure compaction (and losing the race to a crash here is harmless).
	if err := j.wal.Truncate(0); err != nil {
		return fmt.Errorf("journal: resetting wal: %w", err)
	}
	return j.wal.Sync()
}

// Close fsyncs and closes the WAL. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.wal.Sync()
	if cerr := j.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Package journal implements the durable checkpoint log underneath the
// distributed search: an append-only, fsync'd, line-delimited-JSON
// write-ahead log with snapshot compaction and crash-safe replay.
//
// A journal lives in one directory holding two files:
//
//	snapshot.jlog — at most one record: the latest compacted state,
//	                replaced atomically (write-temp, fsync, rename).
//	wal.jlog      — records appended (and fsync'd) since that snapshot.
//
// Every record is one line of the form
//
//	crc32c-hex SP {"seq":N,"type":"...","data":{...}} LF
//
// where the leading checksum is CRC-32C over the JSON body — the journal
// dogfoods this repository's own internal/crc engines. Sequence numbers
// increase strictly across the life of the journal; a snapshot stores
// the sequence number of the last record it covers, so WAL records at or
// below that watermark are redundant and skipped on replay. That makes
// compaction crash-safe: the atomic snapshot rename is the commit point,
// and a crash before the subsequent WAL truncation merely leaves
// already-covered records that replay ignores.
//
// Recovery is deliberately forgiving about the tail and strict about the
// snapshot: a torn final WAL line (crash mid-append) or a record failing
// its CRC causes the WAL to be truncated at the last durable record — a
// clean loss of the unflushed suffix, never a wedge — while a corrupt
// snapshot is unrecoverable state and surfaces as an error.
package journal

package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func mustOpen(t *testing.T, dir string) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

func appendN(t *testing.T, j *Journal, typ string, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := j.Append(typ, payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
}

func entryNs(t *testing.T, entries []Record) []int {
	t.Helper()
	out := make([]int, len(entries))
	for i, e := range entries {
		var p payload
		if err := json.Unmarshal(e.Data, &p); err != nil {
			t.Fatal(err)
		}
		out[i] = p.N
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, dir)
	if rec.Snapshot != nil || len(rec.Entries) != 0 {
		t.Fatalf("fresh journal recovered state: %+v", rec)
	}
	appendN(t, j, "ev", 0, 5)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec2 := mustOpen(t, dir)
	defer j2.Close()
	if rec2.Truncated != 0 {
		t.Errorf("clean journal truncated %d bytes", rec2.Truncated)
	}
	if got := entryNs(t, rec2.Entries); len(got) != 5 {
		t.Fatalf("replayed %d entries, want 5: %v", len(got), got)
	}
	for i, e := range rec2.Entries {
		if e.Seq != uint64(i+1) || e.Type != "ev" {
			t.Errorf("entry %d = seq %d type %q, want seq %d type ev", i, e.Seq, e.Type, i+1)
		}
	}
	// Appends continue the sequence after reopen.
	if err := j2.Append("ev", payload{N: 5}); err != nil {
		t.Fatal(err)
	}
	if j2.Seq() != 6 {
		t.Errorf("seq after reopen+append = %d, want 6", j2.Seq())
	}
}

func TestReadMatchesOpen(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, "ev", 0, 3)
	j.Close()

	rec, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ns := entryNs(t, rec.Entries); len(ns) != 3 || ns[0] != 0 || ns[2] != 2 {
		t.Errorf("Read entries = %v", ns)
	}
	if _, err := Read(filepath.Join(dir, "nope")); err == nil {
		t.Error("Read on a missing directory should error")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, "ev", 0, 3)
	j.Close()

	// Crash mid-append: a partial line with no trailing newline.
	wal := filepath.Join(dir, walName)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"seq":4,"type":"ev","da`)
	f.Close()

	j2, rec := mustOpen(t, dir)
	if rec.Truncated == 0 {
		t.Error("torn tail not reported in Truncated")
	}
	if got := entryNs(t, rec.Entries); len(got) != 3 {
		t.Fatalf("entries after torn tail = %v, want the 3 durable records", got)
	}
	// The torn bytes are gone from disk and appends resume cleanly.
	if err := j2.Append("ev", payload{N: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	rec2, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := entryNs(t, rec2.Entries); len(got) != 4 || got[3] != 3 {
		t.Errorf("entries after repair+append = %v", got)
	}
	if rec2.Truncated != 0 {
		t.Errorf("repair left %d corrupt bytes on disk", rec2.Truncated)
	}
}

func TestBadRecordCRCTruncatesSuffix(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, "ev", 0, 4)
	j.Close()

	// Flip one payload byte inside the third line; records 3 and 4 are
	// untrusted from that point, records 1 and 2 must survive.
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lineLen := len(data) / 4
	data[2*lineLen+15] ^= 0x01
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, dir)
	defer j2.Close()
	if rec.Truncated == 0 {
		t.Error("corrupt record not reported in Truncated")
	}
	if got := entryNs(t, rec.Entries); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("entries after mid-log corruption = %v, want [0 1]", got)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, "ev", 0, 10)
	if err := j.Snapshot(payload{N: 42, S: "state"}); err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "ev", 10, 12)
	j.Close()

	_, rec := mustOpen(t, dir)
	var snap payload
	if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.N != 42 || snap.S != "state" {
		t.Errorf("snapshot = %+v", snap)
	}
	if rec.SnapshotSeq != 10 {
		t.Errorf("snapshot watermark = %d, want 10", rec.SnapshotSeq)
	}
	if got := entryNs(t, rec.Entries); len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Errorf("post-snapshot entries = %v, want [10 11]", got)
	}
	// Compaction actually shrank the WAL to just the two tail records.
	fi, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 || fi.Size() > 2*200 {
		t.Errorf("wal size after compaction = %d bytes", fi.Size())
	}
}

func TestCrashBetweenSnapshotAndWALReset(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, "ev", 0, 6)
	preSnap, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot(payload{N: 6}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash after the snapshot rename committed but before
	// the WAL reset: restore the pre-snapshot WAL bytes.
	if err := os.WriteFile(filepath.Join(dir, walName), preSnap, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := mustOpen(t, dir)
	if rec.Snapshot == nil || rec.SnapshotSeq != 6 {
		t.Fatalf("snapshot not recovered: %+v", rec)
	}
	if len(rec.Entries) != 0 {
		t.Errorf("records covered by the snapshot replayed again: %v", entryNs(t, rec.Entries))
	}
	// New appends continue above the watermark, not over old sequence
	// numbers.
	if err := j2.Append("ev", payload{N: 7}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	rec2, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Entries) != 1 || rec2.Entries[0].Seq != 7 {
		t.Errorf("post-crash append replayed as %+v, want one record at seq 7", rec2.Entries)
	}
}

func TestCorruptSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, "ev", 0, 2)
	if err := j.Snapshot(payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	snap := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Error("corrupt snapshot must surface as an error, not silent loss")
	}
}

func TestReservedSnapshotType(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir())
	defer j.Close()
	if err := j.Append("snapshot", payload{N: 1}); err == nil {
		t.Error("appending the reserved snapshot type should error")
	}
}

func TestAppendNoSyncDurableAfterNextSync(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	if err := j.AppendNoSync("audit", payload{N: 0}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendNoSync("audit", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	// A synced append (or Close) makes the buffered records durable too.
	if err := j.Append("ev", payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	rec, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := entryNs(t, rec.Entries); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("entries = %v, want [0 1 2]", got)
	}
	for i, e := range rec.Entries {
		if e.Seq != uint64(i+1) {
			t.Errorf("entry %d seq = %d, want %d (no-sync appends share the sequence)", i, e.Seq, i+1)
		}
	}
}

func TestWriteFailureIsSticky(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir())
	appendN(t, j, "ev", 0, 2)
	// Force every subsequent write to fail by yanking the fd out from
	// under the journal.
	j.wal.Close()
	first := j.Append("ev", payload{N: 2})
	if first == nil {
		t.Fatal("append on a dead fd should error")
	}
	// The failure must latch: no later append or snapshot may succeed,
	// or a reused sequence number would make recovery truncate durable
	// records as a regression.
	if err := j.Append("ev", payload{N: 3}); err == nil {
		t.Error("append after a write failure should keep failing")
	}
	if err := j.Snapshot(payload{N: 3}); err == nil {
		t.Error("snapshot after a write failure should fail")
	}
	if j.Seq() != 2 {
		t.Errorf("seq advanced to %d across failed appends, want 2", j.Seq())
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir())
	j.Close()
	if err := j.Append("ev", payload{N: 1}); err == nil {
		t.Error("append after Close should error")
	}
	if err := j.Snapshot(payload{N: 1}); err == nil {
		t.Error("snapshot after Close should error")
	}
}

// TestTornSnapshotWALPairDetected: a snapshot and WAL that belong to
// different compaction epochs (stale snapshot, post-compaction WAL —
// what a reader racing a live writer's Snapshot can observe) leave a
// sequence gap, which both Read and Open must refuse to replay as if
// nothing were missing.
func TestTornSnapshotWALPairDetected(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendN(t, j, "ev", 0, 3) // seq 1..3
	if err := j.Snapshot(payload{N: 99}); err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "ev", 3, 5) // seq 4..5 in the reset WAL
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Roll the snapshot back to an older epoch (watermark 1): the WAL's
	// first record (seq 4) no longer continues it — records 2..3 are in
	// neither file.
	stale, err := encodeLine(Record{Seq: 1, Type: snapType, Data: json.RawMessage(`{"n":0}`)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotName), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Read(dir); err == nil {
		t.Error("Read replayed a torn snapshot/wal pair without error")
	}
	if _, _, err := Open(dir); err == nil {
		t.Error("Open replayed a gapped journal without error")
	}
}

package gf2

import (
	"math/bits"
	"sort"
)

// Factor64 returns the prime factorization of n as a sorted slice of primes
// with multiplicity (e.g. 12 -> [2 2 3]). Factor64(0) and Factor64(1) return
// nil. It uses trial division for small primes and Brent's variant of
// Pollard's rho with deterministic Miller–Rabin for the rest, which is more
// than fast enough for the 2^d-1 values (d <= 63) needed for polynomial
// order computation.
func Factor64(n uint64) []uint64 {
	if n < 2 {
		return nil
	}
	var out []uint64
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47} {
		for n%p == 0 {
			out = append(out, p)
			n /= p
		}
	}
	var rec func(m uint64)
	rec = func(m uint64) {
		if m == 1 {
			return
		}
		if IsPrime64(m) {
			out = append(out, m)
			return
		}
		d := pollardRho(m)
		rec(d)
		rec(m / d)
	}
	rec(n)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistinctPrimes64 returns the distinct prime divisors of n, sorted.
func DistinctPrimes64(n uint64) []uint64 {
	all := Factor64(n)
	var out []uint64
	for i, p := range all {
		if i == 0 || p != all[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// IsPrime64 reports whether n is prime, using a Miller–Rabin test with a
// base set that is deterministic for all 64-bit integers.
func IsPrime64(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	// These bases are a known deterministic set for n < 2^64.
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powMod64(a%n, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulMod64(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

func mulMod64(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return bits.Rem64(hi, lo, m)
}

func powMod64(b, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	r := uint64(1)
	b %= m
	for e > 0 {
		if e&1 == 1 {
			r = mulMod64(r, b, m)
		}
		b = mulMod64(b, b, m)
		e >>= 1
	}
	return r
}

// pollardRho returns a non-trivial divisor of composite odd n using Brent's
// cycle-finding variant.
func pollardRho(n uint64) uint64 {
	if n%2 == 0 {
		return 2
	}
	for c := uint64(1); ; c++ {
		f := func(x uint64) uint64 { return mulMod64(x, x, n) + c }
		x, y, d := uint64(2), uint64(2), uint64(1)
		for d == 1 {
			x = f(x)
			y = f(f(y))
			diff := x - y
			if x < y {
				diff = y - x
			}
			if diff == 0 {
				break // cycle without factor; retry with new c
			}
			d = gcd64(diff, n)
		}
		if d != 1 && d != n {
			return d
		}
	}
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

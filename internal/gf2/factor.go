package gf2

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Factor is one irreducible factor of a polynomial together with its
// multiplicity in the factorization.
type Factor struct {
	P    Poly // irreducible factor
	Mult int  // multiplicity (>= 1)
}

// Deg returns the degree of the factor polynomial.
func (f Factor) Deg() int { return f.P.Deg() }

// IsIrreducible reports whether f is irreducible over GF(2) using Rabin's
// test: f of degree n is irreducible iff x^(2^n) == x (mod f) and, for every
// prime divisor q of n, gcd(x^(2^(n/q)) - x, f) == 1.
func IsIrreducible(f Poly) bool {
	n := f.Deg()
	switch {
	case n <= 0:
		return false
	case n == 1:
		return true // x and x+1
	}
	if f&1 == 0 {
		return false // divisible by x
	}
	// x^(2^n) mod f via n squarings of x.
	h := Mod(X, f)
	for i := 0; i < n; i++ {
		h = MulMod(h, h, f)
	}
	if h != Mod(X, f) {
		return false
	}
	for _, q := range primeDivisorsInt(n) {
		k := n / q
		g := Mod(X, f)
		for i := 0; i < k; i++ {
			g = MulMod(g, g, f)
		}
		if Gcd(f, g.Add(X)) != One {
			return false
		}
	}
	return true
}

// primeDivisorsInt returns the distinct prime divisors of small n (n <= 64).
func primeDivisorsInt(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// Factorize returns the complete factorization of f into irreducible factors
// with multiplicities, sorted by (degree, value). It returns an error for the
// zero and constant polynomials, which have no factorization into
// irreducibles.
//
// The algorithm is the textbook chain for GF(2): strip powers of x, take the
// square-free decomposition (characteristic-2 Yun), split each square-free
// part by distinct-degree factorization, and finish with Cantor–Zassenhaus
// equal-degree splitting using the GF(2) trace map.
func Factorize(f Poly) ([]Factor, error) {
	if f.Deg() <= 0 {
		return nil, fmt.Errorf("gf2: cannot factor constant polynomial %#x", uint64(f))
	}
	rng := rand.New(rand.NewPCG(0x9E3779B97F4A7C15, uint64(f)))
	var out []Factor
	// Strip the x^k factor so every remaining part has non-zero constant term.
	if k := trailingZeros(f); k > 0 {
		out = append(out, Factor{P: X, Mult: k})
		f >>= uint(k)
	}
	for _, sq := range squareFree(f) {
		for _, p := range splitSquareFree(sq.P, rng) {
			out = append(out, Factor{P: p, Mult: sq.Mult})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if d1, d2 := out[i].Deg(), out[j].Deg(); d1 != d2 {
			return d1 < d2
		}
		return out[i].P < out[j].P
	})
	return out, nil
}

func trailingZeros(f Poly) int {
	n := 0
	for f&1 == 0 && f != 0 {
		n++
		f >>= 1
	}
	return n
}

// squareFree returns the square-free decomposition of f (constant term must
// be non-zero): pairwise-coprime square-free parts with multiplicities whose
// product (with exponents) is f.
func squareFree(f Poly) []Factor {
	if f.Deg() <= 0 {
		return nil
	}
	fp := Derivative(f)
	if fp == 0 {
		// f = g(x)^2 over GF(2); recurse on the square root.
		sub := squareFree(Sqrt(f))
		for i := range sub {
			sub[i].Mult *= 2
		}
		return sub
	}
	var out []Factor
	c := Gcd(f, fp)
	w := Div(f, c)
	for i := 1; w != One; i++ {
		y := Gcd(w, c)
		if z := Div(w, y); z != One {
			out = append(out, Factor{P: z, Mult: i})
		}
		w = y
		c = Div(c, y)
	}
	if c != One {
		// The leftover carries the factors whose multiplicity is even;
		// it is a perfect square.
		sub := squareFree(Sqrt(c))
		for _, s := range sub {
			out = append(out, Factor{P: s.P, Mult: 2 * s.Mult})
		}
	}
	return out
}

// splitSquareFree fully factors a square-free polynomial with non-zero
// constant term into irreducibles (each appearing once).
func splitSquareFree(f Poly, rng *rand.Rand) []Poly {
	if f.Deg() <= 0 {
		return nil
	}
	var out []Poly
	// Distinct-degree factorization: peel off the product of all irreducible
	// factors of degree d for d = 1, 2, ...
	g := f
	h := Mod(X, g)
	for d := 1; 2*d <= g.Deg(); d++ {
		h = MulMod(h, h, g) // h = x^(2^d) mod g
		gd := Gcd(g, h.Add(Mod(X, g)))
		if gd != One {
			out = append(out, equalDegree(gd, d, rng)...)
			g = Div(g, gd)
			if g.Deg() <= 0 {
				break
			}
			h = Mod(h, g)
		}
	}
	if g.Deg() > 0 {
		out = append(out, g) // remaining part is irreducible
	}
	return out
}

// equalDegree splits h, a product of distinct irreducible factors all of
// degree d, into those factors using the GF(2) trace map (Cantor–Zassenhaus).
func equalDegree(h Poly, d int, rng *rand.Rand) []Poly {
	if h.Deg() == d {
		return []Poly{h}
	}
	for {
		// Random polynomial of degree < deg(h).
		r := Poly(rng.Uint64()) & ((1 << uint(h.Deg())) - 1)
		if r.Deg() < 1 {
			continue
		}
		// Trace: T(r) = r + r^2 + r^4 + ... + r^(2^(d-1)) mod h maps to GF(2)
		// on each factor, so gcd(h, T(r)) splits h with probability ~1/2.
		t := Mod(r, h)
		acc := t
		for i := 1; i < d; i++ {
			t = MulMod(t, t, h)
			acc ^= t
		}
		g := Gcd(h, acc)
		if g.Deg() > 0 && g.Deg() < h.Deg() {
			out := equalDegree(g, d, rng)
			return append(out, equalDegree(Div(h, g), d, rng)...)
		}
	}
}

// Product multiplies out a factorization, the inverse of Factorize. The
// caller must ensure the result degree fits in 63 bits.
func Product(factors []Factor) Poly {
	r := One
	for _, f := range factors {
		for i := 0; i < f.Mult; i++ {
			r = Mul(r, f.P)
		}
	}
	return r
}

// Shape returns the multiset of factor degrees (with multiplicity expanded),
// sorted ascending — the paper's "{1,3,28}" notation as a slice.
func Shape(factors []Factor) []int {
	var out []int
	for _, f := range factors {
		for i := 0; i < f.Mult; i++ {
			out = append(out, f.Deg())
		}
	}
	sort.Ints(out)
	return out
}

// Package gf2 implements arithmetic over GF(2)[x] for polynomials of degree
// at most 63, along with irreducibility testing, complete factorization,
// primitivity testing and multiplicative-order (period) computation.
//
// A polynomial is represented as a Poly (uint64) where bit i holds the
// coefficient of x^i. The package is the algebraic substrate for CRC
// polynomial evaluation: a CRC generator of degree r fits in r+1 bits, so a
// uint64 covers every polynomial this repository cares about (r <= 32) with
// room to spare.
package gf2

import "math/bits"

// Poly is a polynomial over GF(2); bit i is the coefficient of x^i.
type Poly uint64

// Common small polynomials.
const (
	// Zero is the zero polynomial.
	Zero Poly = 0
	// One is the constant polynomial 1.
	One Poly = 1
	// X is the monomial x.
	X Poly = 2
	// XPlus1 is x+1, the parity factor central to the paper's Table 2.
	XPlus1 Poly = 3
)

// Deg returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Deg() int {
	if p == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(p))
}

// Weight returns the number of non-zero coefficients of p.
func (p Poly) Weight() int { return bits.OnesCount64(uint64(p)) }

// Add returns p + q (which over GF(2) is also p - q).
func (p Poly) Add(q Poly) Poly { return p ^ q }

// Mul returns the carry-less product p*q. The caller must ensure
// Deg(p)+Deg(q) <= 63; higher-degree products silently wrap and must be
// computed with MulMod instead.
func Mul(p, q Poly) Poly {
	var r Poly
	for q != 0 {
		if q&1 != 0 {
			r ^= p
		}
		p <<= 1
		q >>= 1
	}
	return r
}

// DivMod returns the quotient and remainder of p divided by m.
// It panics if m is zero, mirroring integer division semantics.
func DivMod(p, m Poly) (quo, rem Poly) {
	if m == 0 {
		panic("gf2: division by zero polynomial")
	}
	dm := m.Deg()
	for {
		dp := p.Deg()
		if dp < dm {
			return quo, p
		}
		shift := uint(dp - dm)
		p ^= m << shift
		quo |= 1 << shift
	}
}

// Mod returns p modulo m. It panics if m is zero.
func Mod(p, m Poly) Poly {
	_, r := DivMod(p, m)
	return r
}

// Div returns the quotient of p divided by m. It panics if m is zero.
func Div(p, m Poly) Poly {
	q, _ := DivMod(p, m)
	return q
}

// Divides reports whether d divides p (d non-zero).
func Divides(d, p Poly) bool { return Mod(p, d) == 0 }

// MulMod returns p*q mod m using shift-and-reduce, which is safe for any
// modulus degree up to 63 (no intermediate overflow). It panics if m is zero.
func MulMod(p, q, m Poly) Poly {
	p = Mod(p, m)
	q = Mod(q, m)
	dm := m.Deg()
	if dm <= 0 {
		return 0 // everything is congruent to 0 mod a constant
	}
	top := Poly(1) << uint(dm)
	var r Poly
	for q != 0 {
		if q&1 != 0 {
			r ^= p
		}
		q >>= 1
		p <<= 1
		if p&top != 0 {
			p ^= m
		}
	}
	return r
}

// ExpMod returns b^e mod m by square-and-multiply. It panics if m is zero.
func ExpMod(b Poly, e uint64, m Poly) Poly {
	if m.Deg() <= 0 {
		return 0
	}
	r := One
	b = Mod(b, m)
	for e != 0 {
		if e&1 != 0 {
			r = MulMod(r, b, m)
		}
		b = MulMod(b, b, m)
		e >>= 1
	}
	return r
}

// Gcd returns the greatest common divisor of p and q (monic by construction
// over GF(2)). Gcd(0, 0) is 0.
func Gcd(p, q Poly) Poly {
	for q != 0 {
		p, q = q, Mod(p, q)
	}
	return p
}

// Derivative returns the formal derivative of p. Over GF(2) only odd-degree
// terms survive: d/dx x^(2k+1) = x^(2k), d/dx x^(2k) = 0.
func Derivative(p Poly) Poly {
	const oddMask = 0xAAAAAAAAAAAAAAAA // bits at odd positions
	return Poly(uint64(p)&oddMask) >> 1
}

// Sqrt returns g such that g*g == p, assuming p is a perfect square
// (equivalently, over GF(2), p has coefficients only at even positions:
// p(x) = g(x^2) = g(x)^2). Odd-position coefficients are ignored.
func Sqrt(p Poly) Poly {
	var g Poly
	for i := 0; i < 32; i++ {
		if p&(1<<(2*uint(i))) != 0 {
			g |= 1 << uint(i)
		}
	}
	return g
}

// Reverse returns the reciprocal of p with respect to the given number of
// bits: the coefficient vector of p is bit-reversed within width bits.
// For a polynomial of degree d with non-zero constant term, Reverse(p, d+1)
// is the classical reciprocal polynomial x^d * p(1/x).
func Reverse(p Poly, width int) Poly {
	return Poly(bits.Reverse64(uint64(p)) >> uint(64-width))
}

// Reciprocal returns the reciprocal polynomial x^Deg(p) * p(1/x).
func Reciprocal(p Poly) Poly {
	if p == 0 {
		return 0
	}
	return Reverse(p, p.Deg()+1)
}

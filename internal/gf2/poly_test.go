package gf2

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDeg(t *testing.T) {
	tests := []struct {
		p    Poly
		want int
	}{
		{0, -1},
		{1, 0},
		{X, 1},
		{XPlus1, 1},
		{0x8, 3},
		{0x104C11DB7, 32},
		{1 << 63, 63},
	}
	for _, tt := range tests {
		if got := tt.p.Deg(); got != tt.want {
			t.Errorf("Deg(%#x) = %d, want %d", uint64(tt.p), got, tt.want)
		}
	}
}

func TestMulSmall(t *testing.T) {
	tests := []struct {
		a, b, want Poly
	}{
		{0, 0x5, 0},
		{1, 0x5, 0x5},
		{X, X, 0x4},
		{XPlus1, XPlus1, 0x5}, // (x+1)^2 = x^2+1
		{0x7, 0x7, 0x15},      // (x^2+x+1)^2 = x^4+x^2+1
		{XPlus1, 0x7, 0x9},    // (x+1)(x^2+x+1) = x^3+1
		{0xD, XPlus1, 0x17},   // (x^3+x^2+1)(x+1) = x^4+x^2+x+1
	}
	for _, tt := range tests {
		if got := Mul(tt.a, tt.b); got != tt.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", uint64(tt.a), uint64(tt.b), uint64(got), uint64(tt.want))
		}
		if got := Mul(tt.b, tt.a); got != tt.want {
			t.Errorf("Mul commuted (%#x,%#x) = %#x, want %#x", uint64(tt.b), uint64(tt.a), uint64(got), uint64(tt.want))
		}
	}
}

func TestDivModReconstruction(t *testing.T) {
	f := func(a uint64, m uint64) bool {
		mp := Poly(m)
		if mp == 0 {
			mp = 1
		}
		// Keep degrees in range so Mul cannot overflow.
		ap := Poly(a)
		q, r := DivMod(ap, mp)
		if r != 0 && r.Deg() >= mp.Deg() {
			return false
		}
		if q.Deg()+mp.Deg() > 63 {
			return true // skip overflow-prone reconstruction
		}
		return Mul(q, mp)^r == ap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestModByOne(t *testing.T) {
	if got := Mod(0x12345, 1); got != 0 {
		t.Errorf("Mod(p, 1) = %#x, want 0", uint64(got))
	}
}

func TestDivModPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DivMod by zero did not panic")
		}
	}()
	DivMod(0x5, 0)
}

func TestMulModMatchesMulThenMod(t *testing.T) {
	f := func(a, b uint32, m uint32) bool {
		mp := Poly(m) | 1<<20 // ensure degree 20 modulus
		ap, bp := Poly(a), Poly(b)
		want := Mod(Mul(Mod(ap, mp), Mod(bp, mp)), mp)
		return MulMod(ap, bp, mp) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExpMod(t *testing.T) {
	m := Poly(0x13) // x^4+x+1, primitive
	// x^15 == 1 mod primitive degree-4 polynomial.
	if got := ExpMod(X, 15, m); got != One {
		t.Errorf("x^15 mod 0x13 = %#x, want 1", uint64(got))
	}
	if got := ExpMod(X, 5, m); got == One {
		t.Error("x^5 mod 0x13 = 1; order should be 15")
	}
	if got := ExpMod(X, 0, m); got != One {
		t.Errorf("x^0 = %#x, want 1", uint64(got))
	}
}

func TestGcd(t *testing.T) {
	a := Mul(0x7, 0xB)  // (x^2+x+1)(x^3+x+1)
	b := Mul(0x7, 0x19) // (x^2+x+1)(x^4+x^3+1)
	if got := Gcd(a, b); got != 0x7 {
		t.Errorf("Gcd = %#x, want 0x7", uint64(got))
	}
	if got := Gcd(0, 0x7); got != 0x7 {
		t.Errorf("Gcd(0,p) = %#x, want p", uint64(got))
	}
	if got := Gcd(0, 0); got != 0 {
		t.Errorf("Gcd(0,0) = %#x, want 0", uint64(got))
	}
}

func TestDerivative(t *testing.T) {
	// d/dx (x^3 + x^2 + x + 1) = x^2 + 1 over GF(2).
	if got := Derivative(0xF); got != 0x5 {
		t.Errorf("Derivative(0xF) = %#x, want 0x5", uint64(got))
	}
	// Derivative of a square is zero.
	f := func(g uint32) bool {
		gp := Poly(g)
		return Derivative(Mul(gp, gp)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSqrtOfSquare(t *testing.T) {
	f := func(g uint32) bool {
		gp := Poly(g)
		return Sqrt(Mul(gp, gp)) == gp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestReciprocalInvolution(t *testing.T) {
	f := func(p uint64) bool {
		pp := Poly(p) | 1 // non-zero constant term
		return Reciprocal(Reciprocal(pp)) == pp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestReciprocalKnown(t *testing.T) {
	// Reciprocal of x^3+x+1 (0xB) is x^3+x^2+1 (0xD).
	if got := Reciprocal(0xB); got != 0xD {
		t.Errorf("Reciprocal(0xB) = %#x, want 0xD", uint64(got))
	}
}

func TestWeight(t *testing.T) {
	if got := Poly(0x104C11DB7).Weight(); got != 15 {
		t.Errorf("Weight(CRC-32 generator) = %d, want 15 terms", got)
	}
}

func TestMulLinearity(t *testing.T) {
	f := func(a, b, c uint16) bool {
		ap, bp, cp := Poly(a), Poly(b), Poly(c)
		return Mul(ap, bp^cp) == Mul(ap, bp)^Mul(ap, cp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		a := Poly(rng.Uint64N(1 << 10))
		b := Poly(rng.Uint64N(1 << 10))
		c := Poly(rng.Uint64N(1 << 10))
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			t.Fatalf("associativity failed for %#x %#x %#x", uint64(a), uint64(b), uint64(c))
		}
	}
}

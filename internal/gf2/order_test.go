package gf2

import (
	"math/rand/v2"
	"testing"
)

func TestOrderOfXPaperAnchors(t *testing.T) {
	// Periods implied by Table 1's HD=2 row: the first data-word length with
	// an undetected 2-bit error is period - 31 for a 32-bit CRC, so
	// period = (first HD=2 length) + 31.
	tests := []struct {
		name    string
		koopman uint64
		period  uint64
	}{
		{"0xBA0DC66B", 0xBA0DC66B, 114695},     // HD=2 from 114664
		{"0xFA567D89", 0xFA567D89, 65534},      // HD=2 from 65503
		{"0x992C1A4C", 0x992C1A4C, 65538},      // HD=2 from 65507
		{"0x90022004", 0x90022004, 65538},      // HD=2 from 65507
		{"0xD419CC15", 0xD419CC15, 65537},      // HD=2 from 65506
		{"0x80108400", 0x80108400, 65537},      // HD=2 from 65506
		{"0x8F6E37A0", 0x8F6E37A0, 2147483647}, // {1,31} with primitive degree-31 factor
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := OrderOfX(fullPoly(tt.koopman))
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.period {
				t.Errorf("OrderOfX = %d, want %d", got, tt.period)
			}
		})
	}
}

func TestOrderOfX8023(t *testing.T) {
	// Our computation finds the 802.3 generator has the maximal period
	// 2^32-1 (primitive). The paper's parenthetical says "not primitive";
	// the deviation is recorded in EXPERIMENTS.md. Either way the period is
	// consistent with Table 1 (no HD=2 transition within 131072 bits).
	period, err := OrderOfX(fullPoly(0x82608EDB))
	if err != nil {
		t.Fatal(err)
	}
	if period != 1<<32-1 {
		t.Errorf("period = %d, want 2^32-1", period)
	}
	if period <= 131072+31 {
		t.Errorf("period %d too small; Table 1 shows HD>=3 through 131072 bits", period)
	}
}

func TestOrderOfXCCITT16(t *testing.T) {
	// CRC-16/CCITT x^16+x^12+x^5+1 = (x+1)(primitive degree 15): period 32767.
	got, err := OrderOfX(0x11021)
	if err != nil {
		t.Fatal(err)
	}
	if got != 32767 {
		t.Errorf("OrderOfX(0x11021) = %d, want 32767", got)
	}
}

func TestOrderOfXSmall(t *testing.T) {
	tests := []struct {
		p    Poly
		want uint64
	}{
		{XPlus1, 1},
		{0x7, 3},   // x^2+x+1: x has order 3
		{0xB, 7},   // primitive degree 3
		{0x13, 15}, // primitive degree 4
		{0x1F, 5},  // x^4+x^3+x^2+x+1: order 5
		{0x9, 3},   // x^3+1 = (x+1)(x^2+x+1): lcm(1,3) = 3
		{0x5, 2},   // (x+1)^2: order 1 * 2^1 = 2
		{0x11, 4},  // (x+1)^4: order 1 * 2^2 = 4
	}
	for _, tt := range tests {
		got, err := OrderOfX(tt.p)
		if err != nil {
			t.Fatalf("OrderOfX(%#x): %v", uint64(tt.p), err)
		}
		if got != tt.want {
			t.Errorf("OrderOfX(%#x) = %d, want %d", uint64(tt.p), got, tt.want)
		}
	}
}

func TestOrderOfXErrNotUnit(t *testing.T) {
	if _, err := OrderOfX(X); err != ErrNotUnit {
		t.Errorf("OrderOfX(x) error = %v, want ErrNotUnit", err)
	}
}

func TestOrderMatchesDirectSimulation(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < 200; i++ {
		p := Poly(rng.Uint64N(1<<16)) | 1<<15 | 1 // degree 15, unit constant term
		want, ok := DirectOrderOfX(p, 1<<17)
		if !ok {
			t.Fatalf("direct order of %#x not found within limit", uint64(p))
		}
		got, err := OrderOfX(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("OrderOfX(%#x) = %d, direct simulation says %d", uint64(p), got, want)
		}
	}
}

func TestOrderDefinitionProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 100; i++ {
		p := Poly(rng.Uint64N(1<<14)) | 1<<13 | 1
		o, err := OrderOfX(p)
		if err != nil {
			t.Fatal(err)
		}
		if ExpMod(X, o, p) != One {
			t.Fatalf("x^order != 1 mod %#x", uint64(p))
		}
		for _, q := range DistinctPrimes64(o) {
			if ExpMod(X, o/q, p) == One {
				t.Fatalf("order of x mod %#x is not minimal: x^(o/%d) == 1", uint64(p), q)
			}
		}
	}
}

func TestIsPrimitiveSmall(t *testing.T) {
	// Primitive polynomials of degree 4: x^4+x+1 and x^4+x^3+1, but not
	// x^4+x^3+x^2+x+1 (order 5).
	tests := []struct {
		p    Poly
		want bool
	}{
		{0x13, true},
		{0x19, true},
		{0x1F, false},
		{XPlus1, true},
		{X, false},
		{0x15, false}, // reducible
	}
	for _, tt := range tests {
		if got := IsPrimitive(tt.p); got != tt.want {
			t.Errorf("IsPrimitive(%#x) = %v, want %v", uint64(tt.p), got, tt.want)
		}
	}
}

func TestPrimitiveCountDegree8(t *testing.T) {
	// Number of primitive polynomials of degree n is phi(2^n-1)/n: for n=8,
	// phi(255)/8 = 128/8 = 16.
	count := 0
	for p := Poly(1 << 8); p < 1<<9; p++ {
		if IsPrimitive(p) {
			count++
		}
	}
	if count != 16 {
		t.Errorf("counted %d primitive degree-8 polynomials, want 16", count)
	}
}

func TestFactor64(t *testing.T) {
	tests := []struct {
		n    uint64
		want []uint64
	}{
		{0, nil},
		{1, nil},
		{2, []uint64{2}},
		{12, []uint64{2, 2, 3}},
		{1<<32 - 1, []uint64{3, 5, 17, 257, 65537}},
		{1<<31 - 1, []uint64{2147483647}}, // Mersenne prime
		{1<<28 - 1, []uint64{3, 5, 29, 43, 113, 127}},
		{1<<30 - 1, []uint64{3, 3, 7, 11, 31, 151, 331}},
		{65538, []uint64{2, 3, 3, 11, 331}},
	}
	for _, tt := range tests {
		got := Factor64(tt.n)
		if len(got) != len(tt.want) {
			t.Errorf("Factor64(%d) = %v, want %v", tt.n, got, tt.want)
			continue
		}
		prod := uint64(1)
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Factor64(%d) = %v, want %v", tt.n, got, tt.want)
				break
			}
			prod *= got[i]
		}
		if tt.n >= 2 && prod != tt.n {
			t.Errorf("Factor64(%d) product = %d", tt.n, prod)
		}
	}
}

func TestIsPrime64SmallExhaustive(t *testing.T) {
	isPrime := func(n uint64) bool {
		if n < 2 {
			return false
		}
		for d := uint64(2); d*d <= n; d++ {
			if n%d == 0 {
				return false
			}
		}
		return true
	}
	for n := uint64(0); n < 2000; n++ {
		if got := IsPrime64(n); got != isPrime(n) {
			t.Errorf("IsPrime64(%d) = %v", n, got)
		}
	}
}

func TestFactor64RandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for i := 0; i < 200; i++ {
		n := rng.Uint64N(1<<40) + 2
		fs := Factor64(n)
		prod := uint64(1)
		for _, p := range fs {
			if !IsPrime64(p) {
				t.Fatalf("Factor64(%d): non-prime factor %d", n, p)
			}
			prod *= p
		}
		if prod != n {
			t.Fatalf("Factor64(%d): product %d", n, prod)
		}
	}
}

package gf2

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// fullPoly converts the paper's Koopman representation (implicit +1 term,
// bit i = coefficient of x^(i+1)) into the explicit polynomial.
func fullPoly(koopman uint64) Poly { return Poly(koopman<<1 | 1) }

func TestIsIrreducibleSmall(t *testing.T) {
	// All irreducible polynomials of degree <= 4 over GF(2).
	irreducible := map[Poly]bool{
		0x2: true, 0x3: true, // x, x+1
		0x7: true,            // x^2+x+1
		0xB: true, 0xD: true, // degree 3
		0x13: true, 0x19: true, 0x1F: true, // degree 4
	}
	for p := Poly(2); p < 0x20; p++ {
		if got := IsIrreducible(p); got != irreducible[p] {
			t.Errorf("IsIrreducible(%#x) = %v, want %v", uint64(p), got, irreducible[p])
		}
	}
}

func TestIsIrreducibleCounts(t *testing.T) {
	// The number of monic irreducible polynomials of degree n over GF(2) is
	// given by the necklace counting formula: 2,1,2,3,6,9,18,30 for n=1..8.
	want := map[int]int{1: 2, 2: 1, 3: 2, 4: 3, 5: 6, 6: 9, 7: 18, 8: 30}
	counts := make(map[int]int)
	for p := Poly(2); p < 1<<9; p++ {
		if IsIrreducible(p) {
			counts[p.Deg()]++
		}
	}
	for n, w := range want {
		if counts[n] != w {
			t.Errorf("degree %d: counted %d irreducibles, want %d", n, counts[n], w)
		}
	}
}

func TestFactorizePaperPolynomials(t *testing.T) {
	// The paper gives explicit factorizations in Koopman notation, e.g.
	// 0xBA0DC66B = (0x1)(0x6)(0x82CA9A0). Each factor is itself in Koopman
	// form with an implicit +1 term.
	tests := []struct {
		name    string
		koopman uint64
		factors []Factor // expected, sorted by (deg, value)
	}{
		{
			name:    "0xBA0DC66B {1,3,28}",
			koopman: 0xBA0DC66B,
			factors: []Factor{
				{P: fullPoly(0x1), Mult: 1},
				{P: fullPoly(0x6), Mult: 1},
				{P: fullPoly(0x82CA9A0), Mult: 1},
			},
		},
		{
			name:    "0xFA567D89 {1,1,15,15}",
			koopman: 0xFA567D89,
			factors: []Factor{
				{P: fullPoly(0x1), Mult: 2},
				{P: fullPoly(0x4008), Mult: 1},
				{P: fullPoly(0x642F), Mult: 1},
			},
		},
		{
			name:    "0x992C1A4C {1,1,30}",
			koopman: 0x992C1A4C,
			factors: []Factor{
				{P: fullPoly(0x1), Mult: 2},
				{P: fullPoly(0x2D095216), Mult: 1},
			},
		},
		{
			name:    "0x90022004 {1,1,30}",
			koopman: 0x90022004,
			factors: []Factor{
				{P: fullPoly(0x1), Mult: 2},
				{P: fullPoly(0x2FFF5FFE), Mult: 1},
			},
		},
		{
			name:    "0x8F6E37A0 {1,31} (iSCSI / CRC-32C)",
			koopman: 0x8F6E37A0,
			factors: []Factor{
				{P: fullPoly(0x1), Mult: 1},
				{P: fullPoly(0x7ADA129F), Mult: 1},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Factorize(fullPoly(tt.koopman))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tt.factors) {
				t.Errorf("Factorize = %+v, want %+v", got, tt.factors)
			}
		})
	}
}

func TestFactorizeIrreduciblePaperPolynomials(t *testing.T) {
	// {32} class: irreducible but not primitive.
	for _, k := range []uint64{0xD419CC15, 0x80108400} {
		f := fullPoly(k)
		if !IsIrreducible(f) {
			t.Errorf("%#x: expected irreducible", k)
		}
		if IsPrimitive(f) {
			t.Errorf("%#x: expected non-primitive (paper: irreducible, not primitive)", k)
		}
	}
	// The 802.3 generator is irreducible. The paper's parenthetical calls it
	// "irreducible, but not primitive"; our order computation — validated
	// against direct simulation and the seven Table-1-implied periods — finds
	// ord(x) = 2^32-1, i.e. primitive. EXPERIMENTS.md records the deviation.
	if !IsIrreducible(fullPoly(0x82608EDB)) {
		t.Error("0x82608EDB: expected irreducible")
	}
	if !IsPrimitive(fullPoly(0x82608EDB)) {
		t.Error("0x82608EDB: computed order should be 2^32-1 (primitive); see EXPERIMENTS.md")
	}
	// The degree-31 factor of the iSCSI polynomial is primitive (the paper's
	// {1,31} class restricted the large factor to primitive polynomials).
	if !IsPrimitive(fullPoly(0x7ADA129F)) {
		t.Error("degree-31 factor of 0x8F6E37A0 should be primitive")
	}
}

func TestFactorizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for i := 0; i < 300; i++ {
		p := Poly(rng.Uint64N(1<<20)) | 1<<19 | 1 // degree 19, constant term 1
		factors, err := Factorize(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := Product(factors); got != p {
			t.Fatalf("Product(Factorize(%#x)) = %#x", uint64(p), uint64(got))
		}
		for _, f := range factors {
			if !IsIrreducible(f.P) {
				t.Fatalf("factor %#x of %#x is not irreducible", uint64(f.P), uint64(p))
			}
		}
	}
}

func TestFactorizeWithMultiplicities(t *testing.T) {
	// (x+1)^3 (x^2+x+1)^2 (x^3+x+1)
	p := Product([]Factor{{P: XPlus1, Mult: 3}, {P: 0x7, Mult: 2}, {P: 0xB, Mult: 1}})
	got, err := Factorize(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []Factor{{P: XPlus1, Mult: 3}, {P: 0x7, Mult: 2}, {P: 0xB, Mult: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Factorize = %+v, want %+v", got, want)
	}
}

func TestFactorizePowersOfX(t *testing.T) {
	got, err := Factorize(0x8) // x^3
	if err != nil {
		t.Fatal(err)
	}
	want := []Factor{{P: X, Mult: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Factorize(x^3) = %+v, want %+v", got, want)
	}
}

func TestFactorizeConstantError(t *testing.T) {
	if _, err := Factorize(1); err == nil {
		t.Error("Factorize(1) should error")
	}
	if _, err := Factorize(0); err == nil {
		t.Error("Factorize(0) should error")
	}
}

func TestShape(t *testing.T) {
	factors, err := Factorize(fullPoly(0xBA0DC66B))
	if err != nil {
		t.Fatal(err)
	}
	if got := Shape(factors); !reflect.DeepEqual(got, []int{1, 3, 28}) {
		t.Errorf("Shape = %v, want [1 3 28]", got)
	}
	factors, err = Factorize(fullPoly(0xFA567D89))
	if err != nil {
		t.Fatal(err)
	}
	if got := Shape(factors); !reflect.DeepEqual(got, []int{1, 1, 15, 15}) {
		t.Errorf("Shape = %v, want [1 1 15 15]", got)
	}
}

func TestFactorizeRandomSquares(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 100; i++ {
		g := Poly(rng.Uint64N(1<<12)) | 1<<11 | 1
		p := Mul(g, g)
		factors, err := Factorize(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := Product(factors); got != p {
			t.Fatalf("square round-trip failed for %#x", uint64(p))
		}
		for _, f := range factors {
			if f.Mult%2 != 0 {
				t.Fatalf("square %#x has odd-multiplicity factor %+v", uint64(p), f)
			}
		}
	}
}

package gf2

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrNotUnit is returned when asking for the order of x modulo a polynomial
// divisible by x (x is then a zero divisor, not a unit).
var ErrNotUnit = errors.New("gf2: x is not a unit (polynomial has zero constant term)")

// OrderOfX returns the multiplicative order of x in GF(2)[x]/(f): the
// smallest e > 0 with x^e == 1 (mod f). This is the classical "period" of a
// CRC generator polynomial and determines the largest codeword length with
// no undetected 2-bit errors (positions i and i+period collide).
//
// f must have a non-zero constant term. The order is computed per
// irreducible factor (dividing 2^d-1 down by its prime factors) and combined
// with the characteristic-2 multiplicity rule ord(p^e) = ord(p) *
// 2^ceil(log2 e), then lcm'd across factors.
func OrderOfX(f Poly) (uint64, error) {
	if f&1 == 0 {
		return 0, ErrNotUnit
	}
	if f.Deg() < 1 {
		return 0, fmt.Errorf("gf2: order undefined modulo constant %#x", uint64(f))
	}
	factors, err := Factorize(f)
	if err != nil {
		return 0, err
	}
	order := uint64(1)
	for _, fa := range factors {
		o := orderOfXModIrreducible(fa.P)
		if fa.Mult > 1 {
			o *= uint64(1) << uint(ceilLog2(fa.Mult))
		}
		order = lcm64(order, o)
	}
	return order, nil
}

// orderOfXModIrreducible computes ord(x) modulo an irreducible p of degree d
// by starting from the group order 2^d-1 and removing prime factors while
// x^(o/q) stays 1.
func orderOfXModIrreducible(p Poly) uint64 {
	d := p.Deg()
	if d == 1 {
		return 1 // p = x+1: x == 1 already
	}
	o := (uint64(1) << uint(d)) - 1
	for _, q := range DistinctPrimes64(o) {
		for o%q == 0 && ExpMod(X, o/q, p) == One {
			o /= q
		}
	}
	return o
}

// IsPrimitive reports whether f is a primitive polynomial: irreducible of
// degree d with ord(x) = 2^d - 1.
func IsPrimitive(f Poly) bool {
	d := f.Deg()
	if d < 1 || !IsIrreducible(f) {
		return false
	}
	if d == 1 {
		return f == XPlus1 // x is not primitive (not even a unit modulo x)
	}
	return orderOfXModIrreducible(f) == (uint64(1)<<uint(d))-1
}

// DirectOrderOfX computes ord(x) mod f by explicit iteration, up to limit
// steps. It returns (order, true) if found within the limit, else (0, false).
// Intended as an independent cross-check of OrderOfX for small periods.
func DirectOrderOfX(f Poly, limit uint64) (uint64, bool) {
	if f&1 == 0 || f.Deg() < 1 {
		return 0, false
	}
	dm := f.Deg()
	top := Poly(1) << uint(dm)
	cur := Mod(X, f)
	if cur == One { // deg f == 1, f = x+1
		return 1, true
	}
	for e := uint64(1); e <= limit; e++ {
		if cur == One {
			return e, true
		}
		cur <<= 1
		if cur&top != 0 {
			cur ^= f
		}
	}
	return 0, false
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func lcm64(a, b uint64) uint64 {
	return a / gcd64(a, b) * b
}

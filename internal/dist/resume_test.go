package dist_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"koopmancrc"
	"koopmancrc/internal/core"
	"koopmancrc/internal/dist"
	"koopmancrc/internal/journal"
)

// computeJob runs a job's [start, end) slice through the real pipeline
// so raw protocol clients in these tests report genuine results.
func computeJob(t *testing.T, spec dist.SearchSpec, start, end uint64) (canonical uint64, survivors []uint64) {
	t.Helper()
	res, err := koopmancrc.Search(context.Background(), koopmancrc.SearchConfig{
		Width: spec.Width, MinHD: spec.MinHD, Lengths: spec.Lengths,
		StartIdx: start, EndIdx: end, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Survivors {
		survivors = append(survivors, p.Koopman())
	}
	return res.Candidates, survivors
}

// takeJob requests an assignment and returns (job message, true), or
// (reply, false) for wait/shutdown.
func (c *rawClient) takeJob(worker string) (map[string]any, bool) {
	c.t.Helper()
	c.send(map[string]any{"type": "next", "worker": worker})
	reply := c.recv()
	return reply, reply["type"] == "job"
}

// finishJob reports a genuinely computed result for a job message and
// does not wait for the reply (the caller reads it as its next message).
func (c *rawClient) finishJob(spec dist.SearchSpec, worker string, jobMsg map[string]any) {
	c.t.Helper()
	canonical, survivors := computeJob(c.t, spec, uint64(jobMsg["start"].(float64)), uint64(jobMsg["end"].(float64)))
	c.send(map[string]any{
		"type": "result", "worker": worker, "job_id": jobMsg["job_id"],
		"canonical": canonical, "survivors": survivors,
	})
}

// TestCheckpointResumeMatchesUninterrupted is the crash/resume parity
// check: a coordinator is killed mid-sweep, a second one resumes from
// the journal, and the final Summary must equal an uninterrupted run —
// without any completed job being granted again.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	// Run 1: complete exactly 6 of the 16 jobs, abandon a 7th mid-job,
	// then kill the coordinator.
	coord1, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 8, LeaseTimeout: time.Minute,
		CheckpointDir: dir, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	w1 := dialRaw(t, coord1.Addr())
	doneRun1 := make(map[uint64]bool)
	var pendingReply map[string]any
	for i := 0; i < 6; i++ {
		var jobMsg map[string]any
		if pendingReply != nil {
			jobMsg = pendingReply
		} else {
			reply, ok := w1.takeJob("mortal")
			if !ok {
				t.Fatalf("run 1 job %d: got %v, want a job", i, reply["type"])
			}
			jobMsg = reply
		}
		doneRun1[uint64(jobMsg["job_id"].(float64))] = true
		w1.finishJob(smallSpec, "mortal", jobMsg)
		reply := w1.recv() // result acts as an implicit next
		if reply["type"] == "job" {
			pendingReply = reply
		} else {
			t.Fatalf("run 1 after result: got %v, want next job", reply["type"])
		}
	}
	abandoned := uint64(pendingReply["job_id"].(float64))
	if doneRun1[abandoned] {
		t.Fatalf("job %d both done and abandoned", abandoned)
	}
	w1.conn.Close() // die holding the lease on the abandoned job
	if done, total := coord1.Progress(); done != 6*8 || total != 128 {
		t.Fatalf("run 1 progress = %d/%d indices, want 48/128", done, total)
	}
	if err := coord1.Close(); err != nil { // the "crash" (with final flush)
		t.Fatal(err)
	}

	// The journal on disk reflects exactly the six completions.
	rec, err := journal.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil {
		t.Fatal("no snapshot flushed by Close")
	}

	// Run 2: resume. The test is the worker, so every re-grant is seen.
	coord2, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 8, LeaseTimeout: time.Minute,
		CheckpointDir: dir, Resume: true, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	w2 := dialRaw(t, coord2.Addr())
	granted := make(map[uint64]int)
	var reply map[string]any
	var ok bool
	reply, ok = w2.takeJob("phoenix")
	for ok {
		id := uint64(reply["job_id"].(float64))
		granted[id]++
		w2.finishJob(smallSpec, "phoenix", reply)
		reply = w2.recv()
		ok = reply["type"] == "job"
	}
	if reply["type"] != "shutdown" {
		t.Fatalf("run 2 ended with %v, want shutdown", reply["type"])
	}

	// Exactly-once accounting: no job completed before the crash is
	// granted again, and every remaining job is granted exactly once.
	for id := range doneRun1 {
		if granted[id] != 0 {
			t.Errorf("job %d was completed before the crash but re-granted %d times", id, granted[id])
		}
	}
	if len(granted) != 16-len(doneRun1) {
		t.Errorf("resumed run granted %d distinct jobs, want %d", len(granted), 16-len(doneRun1))
	}
	for id, n := range granted {
		if n != 1 {
			t.Errorf("job %d granted %d times in the resumed run", id, n)
		}
	}
	if granted[abandoned] != 1 {
		t.Errorf("abandoned job %d granted %d times after resume, want 1", abandoned, granted[abandoned])
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 16 || sum.Resumed != 6 {
		t.Errorf("jobs = %d resumed = %d, want 16 and 6", sum.Jobs, sum.Resumed)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)

	// Census parity with the uninterrupted run, as the paper's Table 2
	// would be derived from the merged survivors.
	census, err := core.Census(sum.Survivors)
	if err != nil {
		t.Fatal(err)
	}
	want := singleMachine(t, smallSpec)
	if len(census) != len(want.CensusByShape) {
		t.Errorf("census has %d shapes, want %d", len(census), len(want.CensusByShape))
	}
	for shape, n := range want.CensusByShape {
		if census[shape] != n {
			t.Errorf("census[%s] = %d, want %d", shape, census[shape], n)
		}
	}
}

func TestResumeCompletedSweepYieldsSummaryImmediately(t *testing.T) {
	dir := t.TempDir()
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 16, LeaseTimeout: time.Minute,
		CheckpointDir: dir, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: "solo", Logf: t.Logf})
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	coord.Close()

	// Resuming a finished sweep needs no workers at all.
	coord2, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 16, LeaseTimeout: time.Minute,
		CheckpointDir: dir, Resume: true, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	sum, err := coord2.Wait(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != sum.Jobs {
		t.Errorf("resumed = %d, want all %d jobs", sum.Resumed, sum.Jobs)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
}

func TestCheckpointGuards(t *testing.T) {
	dir := t.TempDir()
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 8, LeaseTimeout: time.Minute, CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Close()

	// A fresh (non-resume) coordinator must refuse an existing journal.
	if _, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 8, LeaseTimeout: time.Minute, CheckpointDir: dir,
	}); err == nil {
		t.Error("fresh coordinator on an existing checkpoint should error")
	}
	// Resume must reject a different spec...
	other := smallSpec
	other.MinHD = 3
	if _, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: other, JobSize: 8, LeaseTimeout: time.Minute, CheckpointDir: dir, Resume: true,
	}); err == nil {
		t.Error("resume with a different spec should error")
	}
	// ... but a retuned base job size is fine: every job's range is
	// journaled with its grant, so the carve no longer has to match.
	retuned, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 16, LeaseTimeout: time.Minute, CheckpointDir: dir, Resume: true,
	})
	if err != nil {
		t.Errorf("resume with a retuned job size should succeed: %v", err)
	} else {
		retuned.Close()
	}
	// ... and Resume without a checkpoint dir or without a journal.
	if _, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 8, LeaseTimeout: time.Minute, Resume: true,
	}); err == nil {
		t.Error("Resume without CheckpointDir should error")
	}
	if _, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 8, LeaseTimeout: time.Minute,
		CheckpointDir: t.TempDir(), Resume: true,
	}); err == nil {
		t.Error("resume of an empty journal should error")
	}
}

// TestHeartbeatKeepsLeaseAlive holds a job far past the lease timeout
// while heartbeating; the lease must survive and the job must not be
// requeued.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      128, // the whole width-8 space: one job
		LeaseTimeout: 200 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	slow := dialRaw(t, coord.Addr())
	jobMsg, ok := slow.takeJob("tortoise")
	if !ok {
		t.Fatalf("got %v, want a job", jobMsg["type"])
	}
	if jobMsg["lease_ns"].(float64) != float64(200*time.Millisecond) {
		t.Errorf("lease_ns = %v, want %v", jobMsg["lease_ns"], float64(200*time.Millisecond))
	}
	// Hold the job for 3x the lease, heartbeating the whole time.
	for i := 0; i < 12; i++ {
		time.Sleep(50 * time.Millisecond)
		slow.send(map[string]any{"type": "heartbeat", "worker": "tortoise", "job_id": jobMsg["job_id"]})
	}
	slow.finishJob(smallSpec, "tortoise", jobMsg)
	if reply := slow.recv(); reply["type"] != "shutdown" {
		t.Fatalf("after the only job: got %v, want shutdown", reply["type"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requeues != 0 {
		t.Errorf("requeues = %d, want 0 (heartbeats must renew the lease)", sum.Requeues)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
}

// TestHeartbeatFromWrongWorkerDoesNotRenew: only the lease holder can
// keep a lease alive.
func TestHeartbeatFromWrongWorkerDoesNotRenew(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      16,
		LeaseTimeout: 80 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	victim := dialRaw(t, coord.Addr())
	jobMsg, ok := victim.takeJob("victim")
	if !ok {
		t.Fatalf("got %v, want a job", jobMsg["type"])
	}
	// An imposter heartbeats the victim's job; it must not renew.
	imposter := dialRaw(t, coord.Addr())
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				imposter.send(map[string]any{"type": "heartbeat", "worker": "imposter", "job_id": jobMsg["job_id"]})
			}
		}
	}()
	defer close(stop)

	// A healthy worker sweeps the space, requiring the victim's job to
	// be requeued despite the imposter's heartbeats.
	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: "healthy", Logf: t.Logf})
	done := make(chan error, 1)
	go func() {
		_, err := w.Run(context.Background())
		done <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sum.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1 (imposter heartbeats must not renew the lease)", sum.Requeues)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
}

// TestWorkerSendsHeartbeats drives a real Worker from a fake coordinator
// and observes mid-job heartbeat messages on the wire.
func TestWorkerSendsHeartbeats(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type outcome struct {
		heartbeats int
		resultID   float64
		err        error
	}
	got := make(chan outcome, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- outcome{err: err}
			return
		}
		defer conn.Close()
		// A json.Decoder, not a bufio.Scanner: the width-16 result line
		// carries ~16k survivors, far past Scanner's 64KB token cap.
		dec := json.NewDecoder(bufio.NewReader(conn))
		enc := json.NewEncoder(conn)
		var o outcome
		for {
			var m map[string]any
			if err := dec.Decode(&m); err != nil {
				o.err = err
				break
			}
			switch m["type"] {
			case "next":
				// One slow job: the full width-16 space (>100ms
				// sequential) with a 30ms lease, so the worker's
				// lease/3 heartbeat cadence must fire mid-job even on
				// a single-CPU host where the compute goroutine only
				// yields at preemption granularity (~10ms).
				enc.Encode(map[string]any{
					"type": "job", "job_id": 7, "start": 0, "end": 32768,
					"spec":     map[string]any{"width": 16, "min_hd": 4, "lengths": []int{17, 34}},
					"lease_ns": int64(30 * time.Millisecond),
				})
			case "heartbeat":
				if id := m["job_id"].(float64); id != 7 {
					o.err = fmt.Errorf("heartbeat for job %v, want 7", id)
				}
				o.heartbeats++
			case "result":
				o.resultID = m["job_id"].(float64)
				enc.Encode(map[string]any{"type": "shutdown"})
				got <- o
				return
			}
		}
		got <- o
	}()

	w := dist.NewWorker(ln.Addr().String(), dist.WorkerConfig{ID: "hb", Parallelism: 1, Logf: t.Logf})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	jobs, err := w.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if jobs != 1 {
		t.Errorf("worker completed %d jobs, want 1", jobs)
	}
	o := <-got
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.resultID != 7 {
		t.Errorf("result for job %v, want 7", o.resultID)
	}
	if o.heartbeats < 1 {
		t.Errorf("observed %d mid-job heartbeats, want >= 1", o.heartbeats)
	}
	t.Logf("observed %d heartbeats during the job", o.heartbeats)
}

// TestStageStatsAggregated checks that per-stage drop statistics ride
// the wire and merge in the coordinator's Summary.
func TestStageStatsAggregated(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 8, LeaseTimeout: time.Minute, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: "solo", Logf: t.Logf})
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Stages) != 1 {
		t.Fatalf("summary has %d stages, want 1 (the HD filter): %+v", len(sum.Stages), sum.Stages)
	}
	st := sum.Stages[0]
	if st.In != sum.Canonical {
		t.Errorf("stage in = %d, want every canonical candidate (%d)", st.In, sum.Canonical)
	}
	if st.Out != uint64(len(sum.Survivors)) {
		t.Errorf("stage out = %d, want the survivor count (%d)", st.Out, len(sum.Survivors))
	}
	if st.Elapsed <= 0 {
		t.Errorf("stage elapsed = %v, want > 0", st.Elapsed)
	}
}

package dist

import (
	"reflect"
	"testing"
)

// TestBatchRoundTrip checks that coalesced result lines survive the
// gzip/base64 trip bit-for-bit.
func TestBatchRoundTrip(t *testing.T) {
	results := []*message{
		{Type: msgResult, Worker: "alpha", JobID: 3, Canonical: 17,
			Survivors: []uint64{0x80, 0x83, 0x9b}, ElapsedNS: 1234,
			Stages: []StageStat{{Name: "hd", In: 40, Out: 3, ElapsedNS: 99}}},
		{Type: msgResult, Worker: "alpha", JobID: 4, Canonical: 0, ElapsedNS: 5},
		{Type: msgResult, Worker: "alpha", JobID: 9, Canonical: 2,
			Survivors: []uint64{0xff}},
	}
	b, err := encodeBatch("alpha", results)
	if err != nil {
		t.Fatal(err)
	}
	if b.Type != msgResultBatch || b.Worker != "alpha" || b.Count != 3 {
		t.Fatalf("envelope = %+v", b)
	}
	got, err := decodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results) {
		t.Fatalf("decoded %d results, want %d", len(got), len(results))
	}
	for i := range results {
		if !reflect.DeepEqual(got[i], results[i]) {
			t.Errorf("result %d = %+v, want %+v", i, got[i], results[i])
		}
	}
}

// TestBatchDecodeRejectsGarbage checks the error paths an untrusted
// worker could exercise.
func TestBatchDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeBatch(&message{Type: msgResultBatch, Worker: "x", Batch: "not base64!!", Count: 1}); err == nil {
		t.Error("bad base64 should error")
	}
	if _, err := decodeBatch(&message{Type: msgResultBatch, Worker: "x", Batch: "aGVsbG8=", Count: 1}); err == nil {
		t.Error("non-gzip payload should error")
	}
	if _, err := decodeBatch(&message{Type: msgResultBatch, Worker: "x"}); err == nil {
		t.Error("missing count should error")
	}
	if _, err := decodeBatch(&message{Type: msgResultBatch, Worker: "x", Count: maxBatchResults + 1}); err == nil {
		t.Error("absurd count should be rejected before any decompression")
	}
	b, err := encodeBatch("x", []*message{{Type: msgResult, JobID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b.Count = 7
	if _, err := decodeBatch(b); err == nil {
		t.Error("count mismatch should error")
	}
	// A frame holding more results than it claims must stop mid-stream.
	two, err := encodeBatch("x", []*message{{Type: msgResult, JobID: 1}, {Type: msgResult, JobID: 2}})
	if err != nil {
		t.Fatal(err)
	}
	two.Count = 1
	if _, err := decodeBatch(two); err == nil {
		t.Error("over-claimed batch should error during streaming")
	}
	// Non-result messages cannot ride a result batch past handleConn's
	// type dispatch.
	smuggled, err := encodeBatch("x", []*message{{Type: msgHeartbeat, JobID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeBatch(smuggled); err == nil {
		t.Error("smuggled non-result message should be rejected")
	}
}

package dist

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"koopmancrc"
	"koopmancrc/internal/obs"
	"koopmancrc/internal/poly"
)

// BakeSpec describes one offline corpus bake: the polynomials to
// evaluate and how deep.
type BakeSpec struct {
	// Width applies to every polynomial in Polys (Koopman notation).
	Width int
	Polys []uint64
	// MaxLen is the data-word length ceiling of the HD-vs-length profile.
	MaxLen int
	// MaxHD bounds the classified Hamming distances (0 keeps the
	// analyzer default).
	MaxHD int
	// WeightLens, when non-empty, additionally bakes exact
	// undetectable-pattern counts for weights 2..min(4, MaxHD) at each
	// listed data length.
	WeightLens []int
}

func (s BakeSpec) validate() error {
	if s.Width < 2 || s.Width > 64 {
		return fmt.Errorf("bake: width %d out of range", s.Width)
	}
	if len(s.Polys) == 0 {
		return fmt.Errorf("bake: no polynomials")
	}
	if s.MaxLen < 1 {
		return fmt.Errorf("bake: invalid maxlen %d", s.MaxLen)
	}
	if s.MaxHD < 0 {
		return fmt.Errorf("bake: invalid maxhd %d", s.MaxHD)
	}
	for _, l := range s.WeightLens {
		if l < 1 || l > s.MaxLen {
			return fmt.Errorf("bake: weight length %d outside 1..%d", l, s.MaxLen)
		}
	}
	return nil
}

// BakeSink is where finished memos go — satisfied by *corpus.Store. Get
// feeds resume (knowledge already stored is restored before evaluating,
// so a re-run after a crash skips straight past finished polynomials);
// Put must be durable when it returns nil.
type BakeSink interface {
	Get(width int, polyK uint64) (*koopmancrc.MemoSnapshot, bool)
	Put(*koopmancrc.MemoSnapshot) error
}

// BakeConfig tunes the local fan-out.
type BakeConfig struct {
	// Workers is the number of concurrent evaluation goroutines
	// (default GOMAXPROCS).
	Workers int
	// Limits bounds each analyzer's engine budgets.
	Limits koopmancrc.Limits
	// Logf, when set, receives one progress line per polynomial.
	Logf func(format string, args ...any)
	// Recorder, when non-nil, receives one trace per polynomial — a
	// "bake" root with the analyzer's engine phases as leaf spans, the
	// evaluation error on failures — so a long sweep's slowest and
	// failed polynomials stay inspectable afterwards.
	Recorder *obs.FlightRecorder
}

// BakeSummary reports one bake run.
type BakeSummary struct {
	// Baked counts polynomials that contributed new knowledge to the
	// sink; Warm counts those whose stored knowledge already covered the
	// spec (a resumed run reports finished work here).
	Baked int
	Warm  int
	// Probes is the total engine work spent across the run.
	Probes int64
	// Failed lists per-polynomial errors (the bake continues past them).
	Failed []BakeFailure
}

// BakeFailure is one polynomial the bake could not finish.
type BakeFailure struct {
	Poly uint64
	Err  error
}

// Bake evaluates every polynomial in the spec and persists the memos to
// the sink — the offline half of the persistent analysis corpus. The
// fan-out is a local worker pool (one analyzer per polynomial, Workers
// concurrent); sweeping a corpus across a TCP worker fleet rides the
// same sink interface but is future work.
//
// Bake is resumable by construction: before evaluating, each worker
// restores the sink's stored knowledge for its polynomial, so work
// finished by a previous (even crashed) run is answered from the memo
// with zero engine probes and re-persisted only if something new was
// learned. Cancelling the context stops the sweep promptly; everything
// already Put stays durable.
func Bake(ctx context.Context, spec BakeSpec, sink BakeSink, cfg BakeConfig) (*BakeSummary, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if sink == nil {
		return nil, fmt.Errorf("bake: nil sink")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(spec.Polys) {
		workers = len(spec.Polys)
	}

	var (
		mu      sync.Mutex
		summary BakeSummary
		wg      sync.WaitGroup
	)
	jobs := make(chan uint64)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobs {
				baked, probes, err := bakeOne(ctx, spec, sink, cfg, k)
				mu.Lock()
				switch {
				case err != nil:
					summary.Failed = append(summary.Failed, BakeFailure{Poly: k, Err: err})
				case baked:
					summary.Baked++
				default:
					summary.Warm++
				}
				summary.Probes += probes
				mu.Unlock()
			}
		}()
	}
feed:
	for _, k := range spec.Polys {
		select {
		case jobs <- k:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	sort.Slice(summary.Failed, func(i, j int) bool { return summary.Failed[i].Poly < summary.Failed[j].Poly })
	if err := ctx.Err(); err != nil {
		return &summary, err
	}
	return &summary, nil
}

// bakeOne evaluates a single polynomial against the spec and persists
// the resulting memo when it grew.
func bakeOne(ctx context.Context, spec BakeSpec, sink BakeSink, cfg BakeConfig, k uint64) (baked bool, probes int64, err error) {
	p, err := poly.FromKoopman(spec.Width, k)
	if err != nil {
		return false, 0, err
	}
	var root *obs.Span
	if cfg.Recorder != nil {
		tr := obs.NewTrace("bake")
		root = tr.Root()
		root.SetAttr("poly", fmt.Sprintf("%#x", k))
		root.SetAttr("width", fmt.Sprintf("%d", spec.Width))
		defer func() {
			if err != nil {
				root.SetError(err.Error())
			}
			root.End()
			cfg.Recorder.Record(tr.Data())
		}()
	}
	opts := []koopmancrc.Option{koopmancrc.WithLimits(cfg.Limits)}
	if spec.MaxHD > 0 {
		opts = append(opts, koopmancrc.WithMaxHD(spec.MaxHD))
	}
	if root != nil {
		opts = append(opts, koopmancrc.WithSpans(func(_ context.Context, sp koopmancrc.Span) {
			root.AddLeaf("engine."+sp.Phase, sp.Duration,
				obs.Attr{K: "weight", V: fmt.Sprintf("%d", sp.Weight)},
				obs.Attr{K: "data_len", V: fmt.Sprintf("%d", sp.DataLen)},
				obs.Attr{K: "probes", V: fmt.Sprintf("%d", sp.Probes)})
		}))
	}
	a := koopmancrc.NewAnalyzer(p, opts...)

	had, ok := sink.Get(spec.Width, k)
	if ok {
		if err := a.RestoreMemos(ctx, had); err != nil {
			// A stored snapshot that fails restore (schema drift) is not
			// fatal: bake cold and overwrite it with fresh knowledge.
			had = nil
		}
	} else {
		had = nil
	}

	if _, err := a.Evaluate(ctx, spec.MaxLen); err != nil {
		return false, a.MemoStats().Probes, err
	}
	maxW := 4
	if spec.MaxHD > 0 && spec.MaxHD < maxW {
		maxW = spec.MaxHD
	}
	for _, l := range spec.WeightLens {
		var w2 uint64
		for w := 2; w <= maxW; w++ {
			if w == 4 && w2 > 0 {
				// The engine's pair-collision W4 formula requires W2 == 0
				// at the length; past that point W4 is simply not baked.
				continue
			}
			n, err := a.Weight(ctx, w, l)
			if err != nil {
				return false, a.MemoStats().Probes, err
			}
			if w == 2 {
				w2 = n
			}
		}
	}

	snap, err := a.MemoSnapshot(ctx)
	if err != nil {
		return false, a.MemoStats().Probes, err
	}
	probes = a.MemoStats().Probes
	if probes == 0 && had != nil {
		// The stored knowledge answered everything; nothing to persist.
		if cfg.Logf != nil {
			cfg.Logf("bake %d:%#x: warm (corpus already covers spec)", spec.Width, k)
		}
		return false, 0, nil
	}
	if err := sink.Put(snap); err != nil {
		return false, probes, err
	}
	if cfg.Logf != nil {
		cfg.Logf("bake %d:%#x: %d facts, %d probes", spec.Width, k, snap.Entries(), probes)
	}
	return true, probes, nil
}

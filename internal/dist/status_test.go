package dist_test

import (
	"context"
	"testing"
	"time"

	"koopmancrc/internal/dist"
)

// TestStatusMatchesResumedLedger is the acceptance check for the
// read-only status view: the counts ReadStatus reports from a mid-sweep
// checkpoint must exactly match the ledger a resumed coordinator
// reconstructs from the same journal.
func TestStatusMatchesResumedLedger(t *testing.T) {
	dir := t.TempDir()
	coord1, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 8, LeaseTimeout: time.Minute,
		CheckpointDir: dir, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Complete five jobs, abandon a sixth mid-lease, then "crash".
	w1 := dialRaw(t, coord1.Addr())
	var wantCanonical uint64
	var wantSurvivors int
	var pending map[string]any
	for i := 0; i < 5; i++ {
		var jobMsg map[string]any
		if pending != nil {
			jobMsg = pending
			pending = nil
		} else {
			reply, ok := w1.takeJob("mortal")
			if !ok {
				t.Fatalf("job %d: got %v, want a job", i, reply["type"])
			}
			jobMsg = reply
		}
		canonical, survivors := computeJob(t, smallSpec,
			uint64(jobMsg["start"].(float64)), uint64(jobMsg["end"].(float64)))
		wantCanonical += canonical
		wantSurvivors += len(survivors)
		w1.send(map[string]any{
			"type": "result", "worker": "mortal", "job_id": jobMsg["job_id"],
			"canonical": canonical, "survivors": survivors,
			"elapsed_ns": int64(50 * time.Millisecond),
		})
		reply := w1.recv()
		if reply["type"] != "job" {
			t.Fatalf("after result %d: got %v, want next job", i, reply["type"])
		}
		pending = reply
	}
	w1.conn.Close() // abandon the sixth job mid-lease
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}

	// The read-only view of the orphaned checkpoint.
	st, err := dist.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.Width != smallSpec.Width || st.Spec.MinHD != smallSpec.MinHD {
		t.Errorf("status spec = %+v, want %+v", st.Spec, smallSpec)
	}
	if st.TotalIndices != 128 || st.JobSize != 8 {
		t.Errorf("status space = %d indices / base %d, want 128 / 8", st.TotalIndices, st.JobSize)
	}
	if st.CarvedJobs != 6 || st.DoneJobs != 5 || st.PendingJobs != 1 {
		t.Errorf("status jobs = %d carved / %d done / %d pending, want 6/5/1",
			st.CarvedJobs, st.DoneJobs, st.PendingJobs)
	}
	if st.DoneIndices != 40 || st.PendingIndices != 8 || st.UncarvedIndices != 80 {
		t.Errorf("status indices = %d done / %d pending / %d uncarved, want 40/8/80",
			st.DoneIndices, st.PendingIndices, st.UncarvedIndices)
	}
	if st.Canonical != wantCanonical {
		t.Errorf("status canonical = %d, want %d", st.Canonical, wantCanonical)
	}
	if st.Survivors != wantSurvivors {
		t.Errorf("status survivors = %d, want %d", st.Survivors, wantSurvivors)
	}
	if st.Complete {
		t.Error("status reports a mid-sweep checkpoint as complete")
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "mortal" {
		t.Fatalf("status workers = %+v, want exactly [mortal]", st.Workers)
	}
	ws := st.Workers[0]
	if ws.JobsDone != 5 || ws.Canonical != wantCanonical {
		t.Errorf("worker status = %d jobs / %d canonical, want 5 / %d", ws.JobsDone, ws.Canonical, wantCanonical)
	}
	if ws.Compute != 5*50*time.Millisecond {
		t.Errorf("worker compute = %v, want 250ms", ws.Compute)
	}
	if ws.Rate <= 0 {
		t.Errorf("worker rate = %v, want > 0 after five timed jobs", ws.Rate)
	}
	if st.IndexRate <= 0 || st.ETA <= 0 {
		t.Errorf("IndexRate = %v ETA = %v, want both > 0 mid-sweep", st.IndexRate, st.ETA)
	}

	// The resumed coordinator must agree with the status view exactly.
	coord2, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 8, LeaseTimeout: time.Minute,
		CheckpointDir: dir, Resume: true, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if done, total := coord2.Progress(); done != st.DoneIndices || total != st.TotalIndices {
		t.Errorf("resumed Progress = %d/%d, status said %d/%d", done, total, st.DoneIndices, st.TotalIndices)
	}

	w2 := dist.NewWorker(coord2.Addr(), dist.WorkerConfig{ID: "phoenix", Logf: t.Logf})
	if _, err := w2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != st.DoneJobs {
		t.Errorf("resumed coordinator restored %d jobs, status said %d were done", sum.Resumed, st.DoneJobs)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
	coord2.Close()

	// After completion the status view must agree with the Summary.
	final, err := dist.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Complete {
		t.Error("final status not marked complete")
	}
	if final.DoneIndices != final.TotalIndices || final.UncarvedIndices != 0 || final.PendingIndices != 0 {
		t.Errorf("final status indices = %d done / %d pending / %d uncarved of %d",
			final.DoneIndices, final.PendingIndices, final.UncarvedIndices, final.TotalIndices)
	}
	if final.Canonical != sum.Canonical {
		t.Errorf("final status canonical = %d, summary has %d", final.Canonical, sum.Canonical)
	}
	if final.Survivors != len(sum.Survivors) {
		t.Errorf("final status survivors = %d, summary has %d", final.Survivors, len(sum.Survivors))
	}
	if final.DoneJobs != sum.Jobs {
		t.Errorf("final status jobs = %d, summary carved %d", final.DoneJobs, sum.Jobs)
	}
	if final.Requeues != sum.Requeues {
		t.Errorf("final status requeues = %d, summary has %d", final.Requeues, sum.Requeues)
	}
}

// TestStatusReportsRequeueHistory: lease expiries show up in the status
// view with the job and the worker that lost it.
func TestStatusReportsRequeueHistory(t *testing.T) {
	dir := t.TempDir()
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 16, LeaseTimeout: 50 * time.Millisecond,
		CheckpointDir: dir, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	victim := dialRaw(t, coord.Addr())
	jobMsg, ok := victim.takeJob("victim")
	if !ok {
		t.Fatalf("got %v, want a job", jobMsg["type"])
	}
	victim.conn.Close() // die holding the lease

	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: "healthy", Logf: t.Logf})
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requeues < 1 {
		t.Fatalf("requeues = %d, want >= 1", sum.Requeues)
	}
	coord.Close()

	st, err := dist.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requeues != sum.Requeues {
		t.Errorf("status requeues = %d, summary has %d", st.Requeues, sum.Requeues)
	}
	if len(st.RequeueLog) == 0 {
		t.Fatal("status requeue log is empty")
	}
	found := false
	for _, rq := range st.RequeueLog {
		if rq.Worker == "victim" && rq.JobID == uint64(jobMsg["job_id"].(float64)) {
			found = true
			if rq.Time.IsZero() {
				t.Error("requeue event has no timestamp")
			}
		}
	}
	if !found {
		t.Errorf("requeue log %+v does not name the victim's job", st.RequeueLog)
	}
}

// TestStatusErrors: a missing directory and a directory with no journal
// both fail loudly instead of reporting an empty sweep.
func TestStatusErrors(t *testing.T) {
	if _, err := dist.ReadStatus("/nonexistent/checkpoint/dir"); err == nil {
		t.Error("ReadStatus on a missing directory should error")
	}
	if _, err := dist.ReadStatus(t.TempDir()); err == nil {
		t.Error("ReadStatus on an empty directory should error")
	}
}

// TestProgressAcrossRequeueAndResumeDoesNotDoubleCount: heartbeat
// progress is a throughput signal, never ledger state. A worker that
// heartbeats progress, loses its lease and keeps heartbeating stale
// counts must not perturb the sweep's accounting — across the requeue
// and across a checkpoint resume.
func TestProgressAcrossRequeueAndResumeDoesNotDoubleCount(t *testing.T) {
	dir := t.TempDir()
	coord1, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 16, LeaseTimeout: 60 * time.Millisecond,
		TargetJobTime: 100 * time.Millisecond,
		CheckpointDir: dir, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker takes a job, reports some progress, then goes
	// silent until its lease expires.
	doomed := dialRaw(t, coord1.Addr())
	jobMsg, ok := doomed.takeJob("doomed")
	if !ok {
		t.Fatalf("got %v, want a job", jobMsg["type"])
	}
	doomed.send(map[string]any{"type": "heartbeat", "worker": "doomed", "job_id": jobMsg["job_id"], "progress": 7})
	time.Sleep(200 * time.Millisecond) // lease expires; the job is requeued

	// Stale heartbeats with inflated progress after losing the lease:
	// ignored — no lease renewal, no throughput update, no ledger
	// contribution.
	for i := 0; i < 3; i++ {
		doomed.send(map[string]any{"type": "heartbeat", "worker": "doomed", "job_id": jobMsg["job_id"], "progress": 99999})
		time.Sleep(10 * time.Millisecond)
	}
	if done, _ := coord1.Progress(); done != 0 {
		t.Errorf("Progress counts %d indices done, want 0 — heartbeat progress is not completion", done)
	}
	if err := coord1.Close(); err != nil { // crash with the requeue journaled
		t.Fatal(err)
	}

	// Status from the orphaned journal: the requeue is visible, but no
	// progress leaked into the candidate accounting.
	st, err := dist.ReadStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.DoneJobs != 0 || st.DoneIndices != 0 || st.Canonical != 0 {
		t.Errorf("status after in-flight-only progress = %d jobs / %d indices / %d canonical, want all 0",
			st.DoneJobs, st.DoneIndices, st.Canonical)
	}
	if st.Requeues < 1 {
		t.Errorf("status requeues = %d, want >= 1", st.Requeues)
	}

	// Resume and finish with a healthy worker: the abandoned job's
	// candidates are counted exactly once.
	coord2, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 16, LeaseTimeout: time.Minute,
		TargetJobTime: 100 * time.Millisecond,
		CheckpointDir: dir, Resume: true, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	w := dist.NewWorker(coord2.Addr(), dist.WorkerConfig{ID: "healthy", Logf: t.Logf})
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != 0 {
		t.Errorf("resumed = %d jobs, want 0 (nothing was completed before the crash)", sum.Resumed)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
}

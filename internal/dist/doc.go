// Package dist implements the paper's §4.2 distributed design-space
// search: the 2^30 canonical 32-bit candidates were filtered on ~50 idle
// workstations over three months by handing out slices of the space and
// recombining partial results.
//
// A Coordinator carves a core.Space into [start, end) jobs on demand and
// serves them to Workers over a line-delimited JSON TCP protocol. Each
// assignment carries a lease; workers renew their lease with mid-job
// heartbeats that also report the job's live candidate count, so expiry
// means a worker died or hung — not that a healthy worker is slow — and
// expired jobs are requeued automatically, with duplicate results from
// slow workers discarded so no candidate is lost or double-counted.
// With CoordinatorConfig.TargetJobTime set, the coordinator folds
// completed-job rates and heartbeat progress deltas into a per-worker
// throughput estimate and sizes each fresh grant so one job costs
// roughly the target wall time on that worker, clamped to
// [MinJobSize, MaxJobSize]: stragglers receive smaller jobs instead of
// dominating tail latency, and fast machines amortize protocol overhead
// over bigger ones. Every worker filters its jobs with the same
// core.Pipeline engine as the local koopmancrc.Search path — including
// the intra-machine worker-pool fan-out, so one dist worker per machine
// saturates all of its cores. Completed jobs merge into a Summary once
// the whole space is covered, including fleet-wide per-stage filter
// statistics shipped back with each result.
//
// With CoordinatorConfig.CheckpointDir set, the coordinator layers the
// internal/journal write-ahead log under the ledger: grants (with their
// ranges — the carve itself is a runtime decision under adaptive
// sizing), completions, requeues and sizing decisions are journaled as
// they happen and periodically compacted into snapshots. A crashed or
// interrupted coordinator restarts with Resume, which reconstructs
// done/pending jobs, partial survivors and per-worker sizing state from
// disk and continues the sweep with exactly-once accounting — completed
// jobs are never re-granted. ReadStatus replays the same ledger
// read-only, so an operator can report done/pending jobs, per-worker
// throughput, requeue history and an ETA from the journal without
// touching a running coordinator; because status and resume share one
// replay path, the two views cannot disagree.
//
// The wire protocol is a strict request/response exchange initiated by
// the worker (heartbeats being the one fire-and-forget exception); see
// protocol.go. cmd/crcsearch exposes all of it (-mode coord | worker |
// status, with -checkpoint/-resume and -target/-minjobsize/-maxjobsize)
// and examples/distsearch runs the whole architecture in-process over
// localhost, including a mid-sweep coordinator kill, a read-only status
// inspection of the orphaned journal, and a resume.
package dist

// Package dist implements the paper's §4.2 distributed design-space
// search: the 2^30 canonical 32-bit candidates were filtered on ~50 idle
// workstations over three months by handing out slices of the space and
// recombining partial results.
//
// A Coordinator carves a core.Space into fixed-size [start, end) jobs and
// serves them to Workers over a line-delimited JSON TCP protocol. Each
// assignment carries a lease; workers renew their lease with mid-job
// heartbeats, so expiry means a worker died or hung — not that a healthy
// worker is slow — and expired jobs are requeued automatically, with
// duplicate results from slow workers discarded so no candidate is lost
// or double-counted. Every worker filters its jobs with the same
// core.Pipeline engine as the local koopmancrc.Search path — including
// the intra-machine worker-pool fan-out, so one dist worker per machine
// saturates all of its cores. Completed jobs merge into a Summary once
// the whole space is covered, including fleet-wide per-stage filter
// statistics shipped back with each result.
//
// With CoordinatorConfig.CheckpointDir set, the coordinator layers the
// internal/journal write-ahead log under the ledger: grants, completions
// and requeues are journaled as they happen and periodically compacted
// into snapshots. A crashed or interrupted coordinator restarts with
// Resume, which reconstructs done/pending jobs and partial survivors
// from disk and continues the sweep with exactly-once accounting —
// completed jobs are never re-granted.
//
// The wire protocol is a strict request/response exchange initiated by
// the worker (heartbeats being the one fire-and-forget exception); see
// protocol.go. cmd/crcsearch exposes both halves (-mode coord | worker,
// with -checkpoint/-resume) and examples/distsearch runs the whole
// architecture in-process over localhost, including a mid-sweep
// coordinator kill and resume.
package dist

// Package dist implements the paper's §4.2 distributed design-space
// search: the 2^30 canonical 32-bit candidates were filtered on ~50 idle
// workstations over three months by handing out slices of the space and
// recombining partial results.
//
// A Coordinator carves a core.Space into fixed-size [start, end) jobs and
// serves them to Workers over a line-delimited JSON TCP protocol. Each
// assignment carries a lease; jobs whose lease expires (a worker died or
// hung) are requeued automatically, and duplicate results from slow
// workers are discarded so no candidate is lost or double-counted. Every
// worker filters its jobs with the same core.Pipeline engine as the local
// koopmancrc.Search path — including the intra-machine worker-pool
// fan-out, so one dist worker per machine saturates all of its cores.
// Completed jobs merge into a Summary once the whole space is covered.
//
// The wire protocol is a strict request/response exchange initiated by
// the worker; see protocol.go. cmd/crcsearch exposes both halves
// (-mode coord | worker) and examples/distsearch runs the architecture
// in-process over localhost.
package dist

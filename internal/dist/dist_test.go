package dist_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"koopmancrc"
	"koopmancrc/internal/dist"
)

// smallSpec is a search small enough for in-process tests: the complete
// width-8 space (128 raw indices, 72 canonical candidates).
var smallSpec = dist.SearchSpec{Width: 8, MinHD: 4, Lengths: []int{9, 19}}

func singleMachine(t *testing.T, spec dist.SearchSpec) *koopmancrc.SearchResult {
	t.Helper()
	res, err := koopmancrc.Search(context.Background(), koopmancrc.SearchConfig{
		Width: spec.Width, MinHD: spec.MinHD, Lengths: spec.Lengths,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkMatchesSingleMachine(t *testing.T, spec dist.SearchSpec, sum *dist.Summary) {
	t.Helper()
	want := singleMachine(t, spec)
	if sum.Canonical != want.Candidates {
		t.Errorf("canonical = %d, want %d (candidates lost or double-counted)", sum.Canonical, want.Candidates)
	}
	if len(sum.Survivors) != len(want.Survivors) {
		t.Fatalf("%d survivors, single machine found %d", len(sum.Survivors), len(want.Survivors))
	}
	for i := range sum.Survivors {
		if sum.Survivors[i] != want.Survivors[i] {
			t.Errorf("survivor %d = %v, single machine has %v", i, sum.Survivors[i], want.Survivors[i])
		}
	}
}

func TestCoordinatorThreeWorkersMatchesSingleMachine(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      8, // 16 jobs across 3 workers
		LeaseTimeout: 30 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var wg sync.WaitGroup
	jobs := make([]int, 3)
	for i, id := range []string{"alpha", "beta", "gamma"} {
		w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: id, Logf: t.Logf})
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := w.Run(context.Background())
			if err != nil {
				t.Errorf("worker %s: %v", id, err)
			}
			jobs[i] = n
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if sum.Jobs != 16 {
		t.Errorf("jobs = %d, want 16", sum.Jobs)
	}
	if sum.Requeues != 0 {
		t.Errorf("requeues = %d, want 0 (no worker died)", sum.Requeues)
	}
	total := 0
	for _, n := range jobs {
		total += n
	}
	if total != sum.Jobs {
		t.Errorf("workers completed %d jobs, coordinator carved %d", total, sum.Jobs)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
}

// rawClient speaks the wire protocol directly so tests can misbehave in
// ways a real Worker never would.
type rawClient struct {
	t    *testing.T
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &rawClient{t: t, conn: conn, sc: bufio.NewScanner(conn), enc: json.NewEncoder(conn)}
}

func (c *rawClient) send(m map[string]any) {
	c.t.Helper()
	if err := c.enc.Encode(m); err != nil {
		c.t.Fatal(err)
	}
}

func (c *rawClient) recv() map[string]any {
	c.t.Helper()
	if !c.sc.Scan() {
		c.t.Fatalf("connection closed: %v", c.sc.Err())
	}
	var m map[string]any
	if err := json.Unmarshal(c.sc.Bytes(), &m); err != nil {
		c.t.Fatal(err)
	}
	return m
}

func TestLeaseRequeueAfterWorkerDeath(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      16,
		LeaseTimeout: 50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// A "worker" takes a job and dies without reporting it.
	victim := dialRaw(t, coord.Addr())
	victim.send(map[string]any{"type": "next", "worker": "victim"})
	reply := victim.recv()
	if reply["type"] != "job" {
		t.Fatalf("victim got %v, want a job", reply["type"])
	}
	victim.conn.Close()

	// A healthy worker sweeps the space, including the requeued job.
	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: "healthy", Logf: t.Logf})
	done := make(chan error, 1)
	go func() {
		_, err := w.Run(context.Background())
		done <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sum.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1 (victim's lease must expire)", sum.Requeues)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
}

func TestStaleResultAfterRequeueIsNotDoubleCounted(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      16,
		LeaseTimeout: 50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// A slow worker takes a job and holds it past its lease.
	slow := dialRaw(t, coord.Addr())
	slow.send(map[string]any{"type": "next", "worker": "slow"})
	job := slow.recv()
	if job["type"] != "job" {
		t.Fatalf("slow worker got %v, want a job", job["type"])
	}

	// A healthy worker finishes the whole space, including the requeued
	// copy of the slow worker's job.
	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: "healthy", Logf: t.Logf})
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// The slow worker finally reports a bogus duplicate; it must be
	// ignored, not merged on top of the completed summary.
	slow.send(map[string]any{
		"type": "result", "worker": "slow", "job_id": job["job_id"],
		"canonical": 9999, "survivors": []uint64{1 << (smallSpec.Width - 1)},
	})
	if reply := slow.recv(); reply["type"] != "shutdown" {
		t.Errorf("stale result reply = %v, want shutdown", reply["type"])
	}
	if sum.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1", sum.Requeues)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
}

func TestCloseUnblocksWait(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 16, LeaseTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() {
		_, err := coord.Wait(context.Background())
		waitErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Wait block
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waitErr:
		if err == nil {
			t.Error("Wait on a closed, incomplete coordinator should error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Wait")
	}
}

func TestWaitHonoursContext(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: smallSpec, JobSize: 16, LeaseTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := coord.Wait(ctx); err == nil {
		t.Error("Wait should return the context error when no workers connect")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: dist.SearchSpec{Width: 99, MinHD: 4, Lengths: []int{8}},
	}); err == nil {
		t.Error("bad width should error")
	}
	if _, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: dist.SearchSpec{Width: 8, MinHD: 1, Lengths: []int{8}},
	}); err == nil {
		t.Error("bad MinHD should error")
	}
	if _, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec: dist.SearchSpec{Width: 8, MinHD: 4},
	}); err == nil {
		t.Error("missing lengths should error")
	}
}

func TestWorkerRunAgainstNoCoordinator(t *testing.T) {
	w := dist.NewWorker("127.0.0.1:1", dist.WorkerConfig{ID: "lost"})
	if _, err := w.Run(context.Background()); err == nil {
		t.Error("dialing a dead coordinator should error")
	}
}

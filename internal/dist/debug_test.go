package dist_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"koopmancrc/internal/dist"
	"koopmancrc/internal/obs"
)

// TestDebugListenerExposesLedger runs a small sweep with the telemetry
// listener on and checks that /metrics is a valid Prometheus exposition
// carrying the ledger — worker rates, coverage, requeue counters — and
// that /healthz answers.
func TestDebugListenerExposesLedger(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      8,
		LeaseTimeout: 30 * time.Second,
		Logf:         t.Logf,
		DebugAddr:    "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	base := "http://" + coord.DebugAddr()
	if coord.DebugAddr() == "" {
		t.Fatal("DebugAddr empty with DebugAddr configured")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	// Scrape mid-sweep concurrently with the workers to exercise the
	// collector locking, then once more after completion for the final
	// ledger assertions.
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			code, body := get("/metrics")
			if code != http.StatusOK {
				t.Errorf("/metrics: %d", code)
				return
			}
			if err := obs.CheckExposition(strings.NewReader(body)); err != nil {
				t.Errorf("mid-sweep exposition invalid: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for _, id := range []string{"alpha", "beta"} {
		w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: id, Logf: t.Logf})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %s: %v", id, err)
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()

	_, body := get("/metrics")
	if err := obs.CheckExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("final exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"dist_indices_total 128",
		"dist_indices_done 128",
		"dist_jobs_done 16",
		"dist_requeues_total 0",
		`dist_worker_rate_candidates_per_second{worker="alpha"}`,
		`dist_worker_rate_candidates_per_second{worker="beta"}`,
		`dist_worker_jobs_done{worker=`,
		"dist_survivors",
		"# TYPE dist_lease_age_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(body, "dist_canonical_total "+itoa(sum.Canonical)) {
		t.Errorf("dist_canonical_total does not match summary %d:\n%s", sum.Canonical, body)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

package dist

import (
	"time"

	"koopmancrc/internal/obs"
)

// AssembleJobTraceForTest exposes the wire-span stitcher so package
// dist_test can feed it hostile worker input directly.
func AssembleJobTraceForTest(rootSpan string, spans []WireSpan) *obs.TraceData {
	j := &job{
		traceID:   obs.NewTraceID(),
		rootSpan:  rootSpan,
		grantedAt: time.Now().Add(-time.Millisecond),
	}
	return assembleJobTrace(j, "test-worker", "", spans, time.Now())
}

package dist

import (
	"strconv"
	"time"

	"koopmancrc/internal/obs"
)

// Distributed trace propagation: the coordinator mints one trace per job
// grant and sends its IDs with the job; the worker reports its compute
// as flat wire spans parented under the grant; the coordinator stitches
// them into a TraceData span tree in its flight recorder, served at the
// DebugAddr listener's /v1/traces. One coherent trace per job, spanning
// coordinator → worker → pipeline stages.
//
// Like the journal's v2 records, the trace fields are schema-versioned
// by tolerance: they ride the existing message envelope as new optional
// fields, which old coordinators and workers simply ignore — a mixed
// fleet keeps working, it just yields traces with missing worker spans.

// WireSpan is the flat wire form of one completed span. Workers cannot
// nest spans into the coordinator's live trace, so they ship ID/parent
// links and let the coordinator rebuild the tree.
type WireSpan struct {
	ID      string     `json:"id"`
	Parent  string     `json:"parent,omitempty"`
	Name    string     `json:"name"`
	StartNS int64      `json:"start_ns"`
	DurNS   int64      `json:"dur_ns"`
	Err     string     `json:"err,omitempty"`
	Attrs   []obs.Attr `json:"attrs,omitempty"`
}

// traceCapacity bounds the coordinator's flight recorder. Sample rate 1
// keeps every completed job's trace until ring eviction displaces it;
// errored traces (lease expiries) stay pinned regardless.
const traceCapacity = 256

// buildSpanTree reconstructs the children of rootID from flat wire
// spans, treating the list as untrusted input: spans whose parent is
// missing (or whose links form a cycle) attach under the root rather
// than vanishing, and at most maxWireSpans are kept.
func buildSpanTree(rootID string, spans []WireSpan) []*obs.SpanData {
	const maxWireSpans = 512
	if len(spans) > maxWireSpans {
		spans = spans[:maxWireSpans]
	}
	nodes := make(map[string]*obs.SpanData, len(spans))
	for _, ws := range spans {
		if ws.ID == "" || ws.ID == rootID || nodes[ws.ID] != nil {
			continue // malformed or duplicate id: drop rather than corrupt the tree
		}
		nodes[ws.ID] = &obs.SpanData{
			ID:         ws.ID,
			Name:       ws.Name,
			Start:      time.Unix(0, ws.StartNS),
			DurationNS: ws.DurNS,
			Error:      ws.Err,
			Attrs:      ws.Attrs,
		}
	}
	var roots []*obs.SpanData
	linked := make(map[string]bool, len(nodes))
	for _, ws := range spans {
		n := nodes[ws.ID]
		if n == nil || linked[ws.ID] {
			continue // dropped above, or a duplicate id re-resolving the original node
		}
		linked[ws.ID] = true
		if p := nodes[ws.Parent]; p != nil && ws.Parent != ws.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// assembleJobTrace builds the TraceData of one completed (or expired)
// job lease: a "dist.job" root covering grant → outcome, with the
// worker's wire spans stitched underneath.
func assembleJobTrace(j *job, worker, errMsg string, spans []WireSpan, now time.Time) *obs.TraceData {
	root := &obs.SpanData{
		ID:         j.rootSpan,
		Name:       "dist.job",
		Start:      j.grantedAt,
		DurationNS: now.Sub(j.grantedAt).Nanoseconds(),
		Error:      errMsg,
		Attrs: []obs.Attr{
			{K: "job_id", V: u64str(j.id)},
			{K: "worker", V: worker},
			{K: "start", V: u64str(j.start)},
			{K: "end", V: u64str(j.end)},
		},
		Children: buildSpanTree(j.rootSpan, spans),
	}
	count := 1 + countSpans(root.Children)
	return &obs.TraceData{
		TraceID:    j.traceID,
		Name:       "dist.job",
		Start:      root.Start,
		DurationNS: root.DurationNS,
		Error:      errMsg,
		Spans:      count,
		Root:       root,
	}
}

func countSpans(children []*obs.SpanData) int {
	n := 0
	for _, c := range children {
		n += 1 + countSpans(c.Children)
	}
	return n
}

func u64str(v uint64) string { return strconv.FormatUint(v, 10) }

// Traces exposes the coordinator's retained job traces — the test and
// tooling view onto what the DebugAddr /v1/traces endpoint serves.
func (c *Coordinator) Traces(f obs.TraceFilter) []obs.TraceSummary {
	return c.recorder.Summaries(f)
}

// Trace returns one retained job trace by ID.
func (c *Coordinator) Trace(id string) (*obs.TraceData, bool) {
	return c.recorder.Get(id)
}

package dist

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"koopmancrc/internal/core"
	"koopmancrc/internal/journal"
	"koopmancrc/internal/poly"
)

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// Spec is the search served to every worker.
	Spec SearchSpec
	// JobSize is the number of raw indices per job (default 4096).
	JobSize uint64
	// LeaseTimeout bounds how long an assigned job may stay silent
	// before it is requeued for another worker (default 30s). Workers
	// send mid-job heartbeats at a third of this interval, so it only
	// needs to exceed a few heartbeat periods — not the worst-case job
	// duration — for slow-but-healthy workers to keep their leases.
	LeaseTimeout time.Duration
	// CheckpointDir, when non-empty, enables the durable journal: the
	// coordinator records grants, completions and requeues as they
	// happen and compacts them into snapshots, so a crashed sweep can
	// be resumed from disk.
	CheckpointDir string
	// Resume reconstructs the ledger from an existing CheckpointDir
	// journal instead of starting the sweep at job zero. The journaled
	// spec, job size and job count must match this configuration.
	Resume bool
	// SnapshotEvery is the journal compaction cadence in appended
	// records (default 64).
	SnapshotEvery int
	// Logf, when set, receives progress lines (assignments, requeues).
	Logf func(format string, args ...any)
}

// Summary is the merged outcome of a completed distributed search.
type Summary struct {
	// Jobs is the number of jobs the space was carved into.
	Jobs int
	// Requeues counts lease expiries that sent a job back to the queue,
	// including ones restored from a resumed checkpoint.
	Requeues int
	// Resumed is the number of jobs restored as already done from a
	// checkpoint journal (0 for a fresh sweep).
	Resumed int
	// Canonical is the total number of canonical candidates evaluated.
	Canonical uint64
	// Survivors pass the HD filter at every scheduled length, in
	// ascending Koopman order.
	Survivors []poly.P
	// Stages aggregates the workers' per-stage filter statistics across
	// every job, in pipeline order.
	Stages []core.StageStats
	// Elapsed is the coordinator wall-clock time from start to the last
	// job's result (the current process only, on a resumed sweep).
	Elapsed time.Duration
}

type jobState int

const (
	jobPending jobState = iota
	jobAssigned
	jobDone
)

type job struct {
	id         uint64
	start, end uint64
	state      jobState
	worker     string
	deadline   time.Time
}

// Coordinator owns the job queue of a distributed search: it carves the
// space into [start, end) jobs, leases them to workers over TCP, requeues
// expired leases, journals the ledger when checkpointing is enabled and
// merges results into a Summary.
type Coordinator struct {
	cfg   CoordinatorConfig
	space core.Space
	ln    net.Listener

	mu           sync.Mutex
	jobs         []*job
	queue        []uint64
	doneJobs     int
	requeues     int
	resumed      int
	canonical    uint64
	survivors    []poly.P
	stages       []core.StageStats
	summary      *Summary
	conns        map[net.Conn]struct{}
	jnl          *journal.Journal
	appendsSince int

	started   time.Time
	doneCh    chan struct{}
	closedCh  chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewCoordinator validates the spec, carves the whole space into jobs,
// opens (or resumes) the checkpoint journal if configured, and starts
// listening on addr (e.g. "127.0.0.1:0" for an ephemeral port).
func NewCoordinator(addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	space, err := core.NewSpace(cfg.Spec.Width)
	if err != nil {
		return nil, err
	}
	if len(cfg.Spec.Lengths) == 0 || cfg.Spec.MinHD < 2 {
		return nil, fmt.Errorf("dist: spec needs lengths and MinHD >= 2")
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("dist: Resume requires CheckpointDir")
	}
	if cfg.JobSize == 0 {
		cfg.JobSize = 4096
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 30 * time.Second
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:      cfg,
		space:    space,
		conns:    make(map[net.Conn]struct{}),
		started:  time.Now(),
		doneCh:   make(chan struct{}),
		closedCh: make(chan struct{}),
	}
	total := space.TotalPolynomials()
	for start := uint64(0); start < total; start += cfg.JobSize {
		end := start + cfg.JobSize
		if end > total {
			end = total
		}
		id := uint64(len(c.jobs))
		c.jobs = append(c.jobs, &job{id: id, start: start, end: end})
		c.queue = append(c.queue, id)
	}
	if cfg.CheckpointDir != "" {
		jnl, rec, err := journal.Open(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		c.jnl = jnl
		if cfg.Resume {
			if err := c.restore(rec); err != nil {
				jnl.Close()
				return nil, err
			}
			c.cfg.Logf("dist: resumed checkpoint %s: %d/%d jobs done, %d survivors so far",
				cfg.CheckpointDir, c.doneJobs, len(c.jobs), len(c.survivors))
		} else {
			if rec.Snapshot != nil || len(rec.Entries) > 0 {
				jnl.Close()
				return nil, fmt.Errorf("dist: checkpoint %s already holds a journal; set Resume to continue it",
					cfg.CheckpointDir)
			}
			if err := jnl.Append(recBegin, beginRec{Spec: cfg.Spec, JobSize: cfg.JobSize, Jobs: len(c.jobs)}); err != nil {
				jnl.Close()
				return nil, err
			}
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if c.jnl != nil {
			c.jnl.Close()
		}
		return nil, err
	}
	c.ln = ln
	if c.doneJobs == len(c.jobs) {
		// A resumed checkpoint of a finished sweep: nothing left to
		// lease. Workers that connect are told to shut down.
		c.mu.Lock()
		c.completeLocked()
		c.mu.Unlock()
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.leaseLoop()
	return c, nil
}

// Addr returns the coordinator's listen address, suitable for NewWorker.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Progress returns how many of the carved jobs have reported so far.
func (c *Coordinator) Progress() (done, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doneJobs, len(c.jobs)
}

// Wait blocks until every job has reported (returning the merged
// Summary), the context is cancelled, or the coordinator is closed.
func (c *Coordinator) Wait(ctx context.Context) (*Summary, error) {
	select {
	case <-c.doneCh:
		return c.summaryLocked(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closedCh:
		// Close raced with completion; prefer the summary if it exists.
		select {
		case <-c.doneCh:
			return c.summaryLocked(), nil
		default:
		}
		return nil, fmt.Errorf("dist: coordinator closed before the space was covered")
	}
}

func (c *Coordinator) summaryLocked() *Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.summary
}

// Close stops the listener, disconnects workers, flushes a final
// checkpoint snapshot and unblocks Wait. It is idempotent and safe to
// call after completion; with a checkpoint configured it is also the
// clean way to suspend a sweep for a later Resume.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		close(c.closedCh)
		c.ln.Close()
		c.mu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	// All connection handlers have drained; the ledger is quiescent.
	c.mu.Lock()
	if c.jnl != nil {
		c.snapshotLocked()
		if err := c.jnl.Close(); err != nil {
			c.cfg.Logf("dist: closing checkpoint journal: %v", err)
		}
		c.jnl = nil
	}
	c.mu.Unlock()
	return nil
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		// A connection accepted concurrently with Close can miss its
		// sweep of c.conns; close it here so handleConn exits at once
		// instead of leasing jobs (and blocking Close) after shutdown.
		select {
		case <-c.closedCh:
			conn.Close()
		default:
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// leaseLoop requeues jobs whose lease expired — the fault-tolerance path
// for workers that died or hung mid-job. Healthy workers renew their
// lease with heartbeats, so expiry means sustained silence, not slowness.
func (c *Coordinator) leaseLoop() {
	defer c.wg.Done()
	interval := c.cfg.LeaseTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.closedCh:
			return
		case <-c.doneCh:
			return
		case now := <-t.C:
			c.mu.Lock()
			for _, j := range c.jobs {
				if j.state == jobAssigned && now.After(j.deadline) {
					j.state = jobPending
					c.queue = append(c.queue, j.id)
					c.requeues++
					c.jnlAppendLocked(recRequeue, requeueRec{JobID: j.id, Worker: j.worker}, false)
					c.cfg.Logf("dist: lease expired on job %d [%d,%d) held by %q; requeued",
						j.id, j.start, j.end, j.worker)
				}
			}
			c.mu.Unlock()
		}
	}
}

func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
		conn.Close()
	}()
	w := newWire(conn)
	for {
		m, err := w.recv()
		if err != nil {
			return
		}
		switch m.Type {
		case msgResult:
			if err := c.recordResult(m); err != nil {
				c.cfg.Logf("dist: dropping result from %q: %v", m.Worker, err)
				return
			}
		case msgNext:
			// fall through to assignment
		case msgHeartbeat:
			// Fire-and-forget lease renewal from a busy worker's side
			// goroutine; no reply, or it would interleave with the job
			// reply the worker's main loop is waiting for.
			c.renewLease(m.JobID, m.Worker)
			continue
		default:
			c.cfg.Logf("dist: unknown message %q from %q", m.Type, m.Worker)
			return
		}
		if err := w.send(c.nextAssignment(m.Worker)); err != nil {
			return
		}
	}
}

// renewLease extends a job's deadline if it is still assigned to the
// heartbeating worker. Heartbeats for requeued or completed jobs are
// ignored: a worker that lost its lease to sustained silence does not
// get it back by resuming heartbeats.
func (c *Coordinator) renewLease(id uint64, worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= uint64(len(c.jobs)) {
		return
	}
	j := c.jobs[id]
	if j.state == jobAssigned && j.worker == worker {
		j.deadline = time.Now().Add(c.cfg.LeaseTimeout)
	}
}

// nextAssignment pops the next pending job for a worker, or tells it to
// wait (leases outstanding) or shut down (space covered).
func (c *Coordinator) nextAssignment(worker string) *message {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.doneJobs == len(c.jobs) {
		return &message{Type: msgShutdown}
	}
	for len(c.queue) > 0 {
		id := c.queue[0]
		c.queue = c.queue[1:]
		j := c.jobs[id]
		if j.state != jobPending {
			continue // completed while requeued — a slow worker delivered after all
		}
		j.state = jobAssigned
		j.worker = worker
		j.deadline = time.Now().Add(c.cfg.LeaseTimeout)
		c.jnlAppendLocked(recGrant, grantRec{JobID: j.id, Worker: worker}, false)
		spec := c.cfg.Spec
		return &message{
			Type: msgJob, JobID: j.id, Spec: &spec, Start: j.start, End: j.end,
			LeaseNS: int64(c.cfg.LeaseTimeout),
		}
	}
	return &message{Type: msgWait}
}

// recordResult merges one job's partial result, ignoring duplicates so a
// requeued job that two workers both finish is counted exactly once. An
// accepted result is journaled before the coordinator acknowledges it.
func (c *Coordinator) recordResult(m *message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.JobID >= uint64(len(c.jobs)) {
		return fmt.Errorf("unknown job id %d", m.JobID)
	}
	j := c.jobs[m.JobID]
	if j.state == jobDone {
		c.cfg.Logf("dist: duplicate result for job %d from %q ignored", j.id, m.Worker)
		return nil
	}
	survivors := make([]poly.P, 0, len(m.Survivors))
	for _, k := range m.Survivors {
		p, err := poly.FromKoopman(c.cfg.Spec.Width, k)
		if err != nil {
			return fmt.Errorf("job %d survivor %#x: %w", j.id, k, err)
		}
		survivors = append(survivors, p)
	}
	j.state = jobDone
	j.worker = m.Worker
	c.canonical += m.Canonical
	c.survivors = append(c.survivors, survivors...)
	c.stages = core.MergeStages(c.stages, fromWireStages(m.Stages))
	c.doneJobs++
	c.jnlAppendLocked(recDone, doneRec{
		JobID: j.id, Worker: m.Worker, Canonical: m.Canonical,
		Survivors: m.Survivors, ElapsedNS: m.ElapsedNS, Stages: m.Stages,
	}, true)
	c.cfg.Logf("dist: job %d [%d,%d) done by %q in %v (%d/%d jobs)",
		j.id, j.start, j.end, m.Worker, time.Duration(m.ElapsedNS), c.doneJobs, len(c.jobs))
	if c.doneJobs == len(c.jobs) {
		c.completeLocked()
	}
	return nil
}

// completeLocked seals the sweep (c.mu held): survivors are re-sorted
// into the order a sequential single-machine run would produce (jobs
// complete out of order), the Summary is built, a final snapshot
// compacts the journal and Wait unblocks.
func (c *Coordinator) completeLocked() {
	sort.Slice(c.survivors, func(i, k int) bool {
		return c.survivors[i].Koopman() < c.survivors[k].Koopman()
	})
	c.summary = &Summary{
		Jobs:      len(c.jobs),
		Requeues:  c.requeues,
		Resumed:   c.resumed,
		Canonical: c.canonical,
		Survivors: c.survivors,
		Stages:    c.stages,
		Elapsed:   time.Since(c.started),
	}
	c.snapshotLocked()
	close(c.doneCh)
}

package dist

import (
	"context"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"koopmancrc/internal/core"
	"koopmancrc/internal/journal"
	"koopmancrc/internal/obs"
	"koopmancrc/internal/poly"
)

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// Spec is the search served to every worker.
	Spec SearchSpec
	// JobSize is the number of raw indices per job before the
	// coordinator has any throughput data for a worker (default 4096).
	// With adaptive sizing off (TargetJobTime zero) every job is
	// exactly this size.
	JobSize uint64
	// TargetJobTime, when positive, enables adaptive job sizing: each
	// fresh grant to a worker is sized so the job should take roughly
	// this much wall time, using that worker's observed throughput
	// (completed-job rates blended with live heartbeat progress).
	// Stragglers then get smaller jobs and stop dominating tail
	// latency; fast machines get bigger ones and amortize protocol
	// overhead. Requeued jobs keep their original ranges.
	TargetJobTime time.Duration
	// MinJobSize and MaxJobSize clamp adaptive grants in raw indices
	// (defaults 1 and 64*JobSize). A worker whose reported throughput
	// is zero, absurd or not yet known always receives a job of at
	// least one index, so sizing can never stall the queue.
	MinJobSize uint64
	MaxJobSize uint64
	// LeaseTimeout bounds how long an assigned job may stay silent
	// before it is requeued for another worker (default 30s). Workers
	// send mid-job heartbeats at a third of this interval, so it only
	// needs to exceed a few heartbeat periods — not the worst-case job
	// duration — for slow-but-healthy workers to keep their leases.
	LeaseTimeout time.Duration
	// CheckpointDir, when non-empty, enables the durable journal: the
	// coordinator records grants, completions, requeues and sizing
	// decisions as they happen and compacts them into snapshots, so a
	// crashed sweep can be resumed from disk and inspected read-only
	// with ReadStatus.
	CheckpointDir string
	// Resume reconstructs the ledger from an existing CheckpointDir
	// journal instead of starting the sweep at index zero. The
	// journaled spec must match this configuration; sizing knobs
	// (JobSize, TargetJobTime, clamps) may be retuned across a resume
	// because every job's range is journaled with its grant.
	Resume bool
	// SnapshotEvery is the journal compaction cadence in appended
	// records (default 64).
	SnapshotEvery int
	// Logf, when set, receives progress lines (assignments, requeues,
	// sizing changes).
	Logf func(format string, args ...any)
	// DebugAddr, when non-empty, starts a read-only HTTP telemetry
	// listener on that address (e.g. "127.0.0.1:0"): /metrics serves the
	// live ledger — per-worker EWMA rates and grant sizes, lease ages,
	// requeue and coverage counters — in Prometheus text exposition,
	// /v1/traces and /v1/traces/{id} serve the per-job trace recorder
	// (one span tree per grant, spanning coordinator → worker → pipeline
	// stages), and /healthz answers liveness probes. The listener is
	// unauthenticated; bind it to loopback or an operator network.
	DebugAddr string
}

// Summary is the merged outcome of a completed distributed search.
type Summary struct {
	// Jobs is the number of jobs the space was carved into.
	Jobs int
	// Requeues counts lease expiries that sent a job back to the queue,
	// including ones restored from a resumed checkpoint.
	Requeues int
	// Resumed is the number of jobs restored as already done from a
	// checkpoint journal (0 for a fresh sweep).
	Resumed int
	// Canonical is the total number of canonical candidates evaluated.
	Canonical uint64
	// Survivors pass the HD filter at every scheduled length, in
	// ascending Koopman order.
	Survivors []poly.P
	// Stages aggregates the workers' per-stage filter statistics across
	// every job, in pipeline order.
	Stages []core.StageStats
	// Elapsed is the coordinator wall-clock time from start to the last
	// job's result (the current process only, on a resumed sweep).
	Elapsed time.Duration
}

type jobState int

const (
	jobPending jobState = iota
	jobAssigned
	jobDone
)

type job struct {
	id         uint64
	start, end uint64
	state      jobState
	worker     string
	deadline   time.Time
	// progress / progressAt track the worker's last heartbeat-reported
	// candidate count for this lease, for live throughput sampling.
	// Both reset on every grant, so a requeued job's new lease never
	// inherits (or double-counts) a dead worker's progress.
	progress   uint64
	progressAt time.Time
	// traceID / rootSpan / grantedAt are the lease's trace context,
	// minted fresh on every grant (a requeued job gets a new trace — its
	// old one is recorded as errored when the lease expires).
	traceID   string
	rootSpan  string
	grantedAt time.Time
}

// rateAlpha is the EWMA weight of a new throughput sample; samples come
// from completed jobs (canonical/elapsed) and heartbeat progress deltas.
const rateAlpha = 0.4

// requeueLogCap bounds the requeue history kept for snapshots and the
// status view; Requeues keeps the exact total regardless.
const requeueLogCap = 128

// appendRequeue appends one requeue event, evicting the oldest so the
// log always holds the newest requeueLogCap events — an operator
// debugging a flaky fleet needs the recent expiries, not the first ones.
func appendRequeue(log []requeueRec, rq requeueRec) []requeueRec {
	log = append(log, rq)
	if len(log) > requeueLogCap {
		log = append(log[:0], log[len(log)-requeueLogCap:]...)
	}
	return log
}

// materialResize reports whether a grant-size change is worth a journal
// record and a log line. The EWMA estimate drifts a little on almost
// every sample, so journaling every delta would double per-grant journal
// traffic; a quarter of the previous size is the threshold for a real
// sizing decision.
func materialResize(old, new uint64) bool {
	if old == 0 {
		return true
	}
	d := new - old
	if new < old {
		d = old - new
	}
	return d*4 >= old
}

// workerStat is the coordinator's per-worker throughput ledger. It is
// rebuilt on resume by replaying done and resize records, so the same
// struct backs the live coordinator, the restore path and ReadStatus.
type workerStat struct {
	rate      float64       // EWMA canonical candidates/sec
	jobsDone  int           // jobs this worker completed
	canonical uint64        // canonical candidates across those jobs
	elapsed   time.Duration // summed compute time across those jobs
	lastSize  uint64        // last journaled sizing decision (fresh grants stay within materialResize of it)
}

// observe folds one throughput sample into the EWMA. Zero or absurd
// samples (no candidates, non-positive duration, overflow to ±Inf) carry
// no signal and are discarded — they must never drive the estimate, and
// with it the grant size, to zero or infinity.
func (ws *workerStat) observe(candidates uint64, dt time.Duration) {
	if candidates == 0 || dt <= 0 {
		return
	}
	sample := float64(candidates) / dt.Seconds()
	if math.IsNaN(sample) || math.IsInf(sample, 0) || sample <= 0 {
		return
	}
	if ws.rate <= 0 {
		ws.rate = sample
		return
	}
	ws.rate = rateAlpha*sample + (1-rateAlpha)*ws.rate
}

// observeDone records a completed job. The math is shared verbatim with
// journal replay so a resumed coordinator and ReadStatus reconstruct
// exactly the stats the live coordinator had.
func (ws *workerStat) observeDone(canonical uint64, elapsed time.Duration) {
	ws.observe(canonical, elapsed)
	ws.jobsDone++
	ws.canonical += canonical
	ws.elapsed += elapsed
}

// Coordinator owns the job queue of a distributed search: it carves the
// space into [start, end) jobs on demand — sized per worker when adaptive
// sizing is on — leases them to workers over TCP, requeues expired
// leases, journals the ledger when checkpointing is enabled and merges
// results into a Summary.
type Coordinator struct {
	cfg     CoordinatorConfig
	ln      net.Listener
	debugLn net.Listener // optional telemetry listener (cfg.DebugAddr)

	mu           sync.Mutex
	jobs         []*job   // carved so far; index == job id
	queue        []uint64 // pending carved jobs (requeues, restored remainders)
	nextStart    uint64   // first raw index not yet carved into any job
	total        uint64   // raw indices in the whole space
	doneJobs     int
	doneIdx      uint64 // raw indices covered by done jobs
	requeues     int
	requeueLog   []requeueRec
	resumed      int
	canonical    uint64
	survivors    []poly.P
	stages       []core.StageStats
	workers      map[string]*workerStat
	summary      *Summary
	recorder     *obs.FlightRecorder // per-job traces behind Traces()/DebugAddr
	conns        map[net.Conn]struct{}
	jnl          *journal.Journal
	appendsSince int
	beginTS      int64 // sweep start (unix nanos), preserved across resume

	started   time.Time
	doneCh    chan struct{}
	closedCh  chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewCoordinator validates the spec, opens (or resumes) the checkpoint
// journal if configured, and starts listening on addr (e.g.
// "127.0.0.1:0" for an ephemeral port). Jobs are carved lazily as
// workers ask for them, so the job count of a sweep is not fixed up
// front when adaptive sizing is on.
func NewCoordinator(addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	space, err := core.NewSpace(cfg.Spec.Width)
	if err != nil {
		return nil, err
	}
	if len(cfg.Spec.Lengths) == 0 || cfg.Spec.MinHD < 2 {
		return nil, fmt.Errorf("dist: spec needs lengths and MinHD >= 2")
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("dist: Resume requires CheckpointDir")
	}
	if cfg.JobSize == 0 {
		cfg.JobSize = 4096
	}
	if cfg.MinJobSize == 0 {
		cfg.MinJobSize = 1
	}
	if cfg.MaxJobSize == 0 {
		cfg.MaxJobSize = 64 * cfg.JobSize
	}
	if cfg.MinJobSize > cfg.MaxJobSize {
		return nil, fmt.Errorf("dist: MinJobSize %d > MaxJobSize %d", cfg.MinJobSize, cfg.MaxJobSize)
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 30 * time.Second
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:      cfg,
		total:    space.TotalPolynomials(),
		workers:  make(map[string]*workerStat),
		recorder: obs.NewFlightRecorder(traceCapacity, 1),
		conns:    make(map[net.Conn]struct{}),
		started:  time.Now(),
		doneCh:   make(chan struct{}),
		closedCh: make(chan struct{}),
	}
	c.beginTS = c.started.UnixNano()
	if cfg.CheckpointDir != "" {
		jnl, rec, err := journal.Open(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		c.jnl = jnl
		if cfg.Resume {
			if err := c.restore(rec); err != nil {
				jnl.Close()
				return nil, err
			}
			c.cfg.Logf("dist: resumed checkpoint %s: %d jobs done (%d/%d indices), %d survivors so far",
				cfg.CheckpointDir, c.doneJobs, c.doneIdx, c.total, len(c.survivors))
		} else {
			if rec.Snapshot != nil || len(rec.Entries) > 0 {
				jnl.Close()
				return nil, fmt.Errorf("dist: checkpoint %s already holds a journal; set Resume to continue it",
					cfg.CheckpointDir)
			}
			begin := beginRec{
				Version: journalVersion, Spec: cfg.Spec, JobSize: cfg.JobSize,
				Total: c.total, TS: c.beginTS,
			}
			if err := jnl.Append(recBegin, begin); err != nil {
				jnl.Close()
				return nil, err
			}
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if c.jnl != nil {
			c.jnl.Close()
		}
		return nil, err
	}
	c.ln = ln
	if cfg.DebugAddr != "" {
		if err := c.startDebug(cfg.DebugAddr); err != nil {
			ln.Close()
			if c.jnl != nil {
				c.jnl.Close()
			}
			return nil, fmt.Errorf("dist: debug listener: %w", err)
		}
	}
	c.mu.Lock()
	if c.coveredLocked() {
		// A resumed checkpoint of a finished sweep: nothing left to
		// lease. Workers that connect are told to shut down.
		c.completeLocked()
	}
	c.mu.Unlock()
	c.wg.Add(2)
	go c.acceptLoop()
	go c.leaseLoop()
	return c, nil
}

// Addr returns the coordinator's listen address, suitable for NewWorker.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Progress reports raw-index coverage: how many of the space's total
// indices belong to completed jobs. Indices, not job counts, because
// adaptive sizing makes the final job count emerge as the sweep runs.
func (c *Coordinator) Progress() (done, total uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doneIdx, c.total
}

// coveredLocked reports whether the whole space has been carved and
// every carved job has reported (c.mu held).
func (c *Coordinator) coveredLocked() bool {
	return c.nextStart >= c.total && c.doneJobs == len(c.jobs)
}

// Wait blocks until every job has reported (returning the merged
// Summary), the context is cancelled, or the coordinator is closed.
func (c *Coordinator) Wait(ctx context.Context) (*Summary, error) {
	select {
	case <-c.doneCh:
		return c.summaryLocked(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closedCh:
		// Close raced with completion; prefer the summary if it exists.
		select {
		case <-c.doneCh:
			return c.summaryLocked(), nil
		default:
		}
		return nil, fmt.Errorf("dist: coordinator closed before the space was covered")
	}
}

func (c *Coordinator) summaryLocked() *Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.summary
}

// Close stops the listener, disconnects workers, flushes a final
// checkpoint snapshot and unblocks Wait. It is idempotent and safe to
// call after completion; with a checkpoint configured it is also the
// clean way to suspend a sweep for a later Resume.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		close(c.closedCh)
		c.ln.Close()
		if c.debugLn != nil {
			c.debugLn.Close()
		}
		c.mu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	// All connection handlers have drained; the ledger is quiescent.
	c.mu.Lock()
	if c.jnl != nil {
		c.snapshotLocked()
		if err := c.jnl.Close(); err != nil {
			c.cfg.Logf("dist: closing checkpoint journal: %v", err)
		}
		c.jnl = nil
	}
	c.mu.Unlock()
	return nil
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		// A connection accepted concurrently with Close can miss its
		// sweep of c.conns; close it here so handleConn exits at once
		// instead of leasing jobs (and blocking Close) after shutdown.
		select {
		case <-c.closedCh:
			conn.Close()
		default:
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// leaseLoop requeues jobs whose lease expired — the fault-tolerance path
// for workers that died or hung mid-job. Healthy workers renew their
// lease with heartbeats, so expiry means sustained silence, not slowness.
func (c *Coordinator) leaseLoop() {
	defer c.wg.Done()
	interval := c.cfg.LeaseTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.closedCh:
			return
		case <-c.doneCh:
			return
		case now := <-t.C:
			c.mu.Lock()
			for _, j := range c.jobs {
				if j.state == jobAssigned && now.After(j.deadline) {
					j.state = jobPending
					c.queue = append(c.queue, j.id)
					c.requeues++
					rq := requeueRec{JobID: j.id, Worker: j.worker, TS: now.UnixNano()}
					c.requeueLog = appendRequeue(c.requeueLog, rq)
					c.jnlAppendLocked(recRequeue, rq, false)
					// The expired lease's trace is recorded as errored —
					// pinned by the recorder, so a flaky fleet's lost jobs
					// stay inspectable at /v1/traces long after the sweep
					// moved on (the requeue mints a fresh trace).
					c.recorder.Record(assembleJobTrace(j, j.worker,
						"lease expired; job requeued", nil, now))
					c.cfg.Logf("dist: lease expired on job %d [%d,%d) held by %q; requeued",
						j.id, j.start, j.end, j.worker)
				}
			}
			c.mu.Unlock()
		}
	}
}

func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
		conn.Close()
	}()
	w := newWire(conn)
	for {
		m, err := w.recv()
		if err != nil {
			return
		}
		switch m.Type {
		case msgResult:
			if err := c.recordResult(m); err != nil {
				c.cfg.Logf("dist: dropping result from %q: %v", m.Worker, err)
				return
			}
		case msgResultBatch:
			results, err := decodeBatch(m)
			if err != nil {
				c.cfg.Logf("dist: %v", err)
				return
			}
			for _, r := range results {
				if err := c.recordResult(r); err != nil {
					c.cfg.Logf("dist: dropping batched result from %q: %v", m.Worker, err)
					return
				}
			}
		case msgNext:
			// fall through to assignment
		case msgHeartbeat:
			// Fire-and-forget lease renewal from a busy worker's side
			// goroutine; no reply, or it would interleave with the job
			// reply the worker's main loop is waiting for. Held jobs —
			// completed results the worker is still batching — get bare
			// renewals from the same message.
			c.renewLease(m.JobID, m.Worker, m.Progress)
			for _, id := range m.Held {
				c.renewLease(id, m.Worker, 0)
			}
			continue
		default:
			c.cfg.Logf("dist: unknown message %q from %q", m.Type, m.Worker)
			return
		}
		if err := w.send(c.nextAssignment(m.Worker)); err != nil {
			return
		}
	}
}

// workerLocked returns (creating if needed) the stats entry for a
// worker id (c.mu held).
func (c *Coordinator) workerLocked(id string) *workerStat {
	ws := c.workers[id]
	if ws == nil {
		ws = &workerStat{}
		c.workers[id] = ws
	}
	return ws
}

// renewLease extends a job's deadline if it is still assigned to the
// heartbeating worker, and folds the heartbeat's progress delta into
// that worker's throughput estimate. Heartbeats for requeued or
// completed jobs are ignored: a worker that lost its lease to sustained
// silence does not get it back — and its stale progress counts never
// reach the ledger or the estimate — by resuming heartbeats.
func (c *Coordinator) renewLease(id uint64, worker string, progress uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= uint64(len(c.jobs)) {
		return
	}
	j := c.jobs[id]
	if j.state != jobAssigned || j.worker != worker {
		return
	}
	now := time.Now()
	j.deadline = now.Add(c.cfg.LeaseTimeout)
	if progress > j.progress {
		c.workerLocked(worker).observe(progress-j.progress, now.Sub(j.progressAt))
		j.progress = progress
		j.progressAt = now
	}
}

// grantSizeLocked sizes a fresh grant for a worker (c.mu held): the
// worker's EWMA candidate rate times the target wall time, converted to
// raw indices via the sweep-wide indices-per-candidate ratio observed so
// far (≈2: reciprocal dedup roughly halves the raw space). Clamped to
// [MinJobSize, MaxJobSize] and floored at one index, so a zero, unknown
// or absurd rate can never produce an empty grant or starve the queue.
func (c *Coordinator) grantSizeLocked(ws *workerStat) uint64 {
	if c.cfg.TargetJobTime <= 0 {
		return c.cfg.JobSize // fixed sizing: every job exactly JobSize, as documented
	}
	size := c.cfg.JobSize
	if ws.rate > 0 {
		perCand := 2.0
		if c.canonical > 0 && c.doneIdx > 0 {
			perCand = float64(c.doneIdx) / float64(c.canonical)
		}
		ideal := ws.rate * c.cfg.TargetJobTime.Seconds() * perCand
		if math.IsNaN(ideal) || ideal >= float64(c.cfg.MaxJobSize) {
			size = c.cfg.MaxJobSize
		} else {
			size = uint64(ideal)
		}
	}
	if size > c.cfg.MaxJobSize {
		size = c.cfg.MaxJobSize
	}
	if size < c.cfg.MinJobSize {
		size = c.cfg.MinJobSize
	}
	if size == 0 {
		size = 1
	}
	return size
}

// nextAssignment hands a worker its next job: a requeued one first, else
// a fresh slice carved off the uncovered space and sized for this
// worker. Tells it to wait (leases outstanding) or shut down (space
// covered) otherwise.
func (c *Coordinator) nextAssignment(worker string) *message {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coveredLocked() {
		return &message{Type: msgShutdown}
	}
	for len(c.queue) > 0 {
		id := c.queue[0]
		c.queue = c.queue[1:]
		j := c.jobs[id]
		if j.state != jobPending {
			continue // completed while requeued — a slow worker delivered after all
		}
		return c.grantLocked(j, worker)
	}
	if c.nextStart < c.total {
		ws := c.workerLocked(worker)
		size := c.grantSizeLocked(ws)
		end := c.nextStart + size
		if end > c.total || end < c.nextStart {
			end = c.total
		}
		j := &job{id: uint64(len(c.jobs)), start: c.nextStart, end: end}
		c.jobs = append(c.jobs, j)
		c.nextStart = end
		if got := j.end - j.start; materialResize(ws.lastSize, got) {
			c.jnlAppendLocked(recResize, resizeRec{
				Worker: worker, Size: got, Rate: ws.rate, TS: time.Now().UnixNano(),
			}, false)
			c.cfg.Logf("dist: sizing jobs for %q at %d indices (rate ~%.0f candidates/s)",
				worker, got, ws.rate)
			ws.lastSize = got
		}
		return c.grantLocked(j, worker)
	}
	return &message{Type: msgWait}
}

// grantLocked leases a pending job to a worker (c.mu held), resetting
// the per-lease progress tracking and journaling the grant with its
// range — the journal's record of how the space was carved.
func (c *Coordinator) grantLocked(j *job, worker string) *message {
	now := time.Now()
	j.state = jobAssigned
	j.worker = worker
	j.deadline = now.Add(c.cfg.LeaseTimeout)
	j.progress = 0
	j.progressAt = now
	j.traceID = obs.NewTraceID()
	j.rootSpan = obs.NewSpanID()
	j.grantedAt = now
	c.jnlAppendLocked(recGrant, grantRec{
		JobID: j.id, Worker: worker, Start: j.start, End: j.end, TS: now.UnixNano(),
	}, false)
	spec := c.cfg.Spec
	return &message{
		Type: msgJob, JobID: j.id, Spec: &spec, Start: j.start, End: j.end,
		LeaseNS: int64(c.cfg.LeaseTimeout), BatchOK: true,
		TraceID: j.traceID, ParentSpan: j.rootSpan,
	}
}

// recordResult merges one job's partial result, ignoring duplicates so a
// requeued job that two workers both finish is counted exactly once. An
// accepted result is journaled before the coordinator acknowledges it.
func (c *Coordinator) recordResult(m *message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.JobID >= uint64(len(c.jobs)) {
		return fmt.Errorf("unknown job id %d", m.JobID)
	}
	j := c.jobs[m.JobID]
	if j.state == jobDone {
		c.cfg.Logf("dist: duplicate result for job %d from %q ignored", j.id, m.Worker)
		return nil
	}
	survivors := make([]poly.P, 0, len(m.Survivors))
	for _, k := range m.Survivors {
		p, err := poly.FromKoopman(c.cfg.Spec.Width, k)
		if err != nil {
			return fmt.Errorf("job %d survivor %#x: %w", j.id, k, err)
		}
		survivors = append(survivors, p)
	}
	j.state = jobDone
	j.worker = m.Worker
	// Stitch the worker's wire spans under the grant's root and retain
	// the job's trace. A worker that predates tracing sends no spans; the
	// trace still records the grant → result envelope.
	if j.traceID != "" {
		c.recorder.Record(assembleJobTrace(j, m.Worker, "", m.Spans, time.Now()))
	}
	c.canonical += m.Canonical
	c.doneIdx += j.end - j.start
	c.survivors = append(c.survivors, survivors...)
	c.stages = core.MergeStages(c.stages, fromWireStages(m.Stages))
	c.doneJobs++
	c.workerLocked(m.Worker).observeDone(m.Canonical, time.Duration(m.ElapsedNS))
	c.jnlAppendLocked(recDone, doneRec{
		JobID: j.id, Worker: m.Worker, Canonical: m.Canonical,
		Survivors: m.Survivors, ElapsedNS: m.ElapsedNS, Stages: m.Stages,
		TS: time.Now().UnixNano(),
	}, true)
	c.cfg.Logf("dist: job %d [%d,%d) done by %q in %v (%d jobs, %d/%d indices)",
		j.id, j.start, j.end, m.Worker, time.Duration(m.ElapsedNS), c.doneJobs, c.doneIdx, c.total)
	if c.coveredLocked() {
		c.completeLocked()
	}
	return nil
}

// completeLocked seals the sweep (c.mu held): survivors are re-sorted
// into the order a sequential single-machine run would produce (jobs
// complete out of order), the Summary is built, a final snapshot
// compacts the journal and Wait unblocks.
func (c *Coordinator) completeLocked() {
	sort.Slice(c.survivors, func(i, k int) bool {
		return c.survivors[i].Koopman() < c.survivors[k].Koopman()
	})
	c.summary = &Summary{
		Jobs:      len(c.jobs),
		Requeues:  c.requeues,
		Resumed:   c.resumed,
		Canonical: c.canonical,
		Survivors: c.survivors,
		Stages:    c.stages,
		Elapsed:   time.Since(c.started),
	}
	c.snapshotLocked()
	close(c.doneCh)
}

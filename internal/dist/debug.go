package dist

import (
	"encoding/json"
	"net"
	"net/http"
	"time"

	"koopmancrc/internal/obs"
)

// startDebug opens the coordinator's optional telemetry listener: a
// plain HTTP server with /metrics in Prometheus text exposition (the
// live ledger — per-worker EWMA rates and grant sizes, lease ages of
// assigned jobs, requeue and coverage counters), /v1/traces and
// /v1/traces/{id} serving the per-job trace recorder (grant → worker →
// pipeline-stage span trees; expired leases retained as errored), and
// /healthz for liveness probes. The endpoint is read-only and
// unauthenticated, so it belongs on loopback or an operator network,
// never the open internet.
func (c *Coordinator) startDebug(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.debugLn = ln
	mux := http.NewServeMux()
	reg := c.debugRegistry()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Same negotiation as serve: the classic 0.0.4 exposition stays
		// exemplar-free; an OpenMetrics scrape gets the terminated form.
		if r.URL.Query().Get("format") == "openmetrics" ||
			obs.AcceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", obs.OpenMetricsContentType)
			_ = reg.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		f := obs.TraceFilter{Limit: 100}
		q := r.URL.Query()
		if v := q.Get("error"); v == "true" || v == "1" {
			f.ErrorsOnly = true
		}
		if v := q.Get("min_duration"); v != "" {
			if d, err := time.ParseDuration(v); err == nil {
				f.MinDuration = d
			}
		}
		traces := c.recorder.Summaries(f)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"count": len(traces), "traces": traces,
		})
	})
	mux.HandleFunc("GET /v1/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		td, ok := c.recorder.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(td)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = srv.Serve(ln) // returns when Close closes the listener
	}()
	return nil
}

// DebugAddr returns the telemetry listener's address, or "" when
// CoordinatorConfig.DebugAddr was empty.
func (c *Coordinator) DebugAddr() string {
	if c.debugLn == nil {
		return ""
	}
	return c.debugLn.Addr().String()
}

// debugRegistry builds the exposition over the live ledger. Every
// collector takes c.mu only for the duration of one scrape, so
// telemetry never holds up grants; the job and worker label sets are
// bounded by the fleet size (lease ages only cover currently-assigned
// jobs), so scrape cardinality cannot grow with sweep length.
func (c *Coordinator) debugRegistry() *obs.Registry {
	r := obs.NewRegistry()
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return f()
		}
	}
	r.NewGaugeFunc("dist_indices_total",
		"Raw indices in the whole search space.",
		locked(func() float64 { return float64(c.total) }))
	r.NewGaugeFunc("dist_indices_done",
		"Raw indices covered by completed jobs.",
		locked(func() float64 { return float64(c.doneIdx) }))
	r.NewGaugeFunc("dist_jobs_carved",
		"Jobs carved from the space so far.",
		locked(func() float64 { return float64(len(c.jobs)) }))
	r.NewGaugeFunc("dist_jobs_done",
		"Jobs completed.",
		locked(func() float64 { return float64(c.doneJobs) }))
	r.NewGaugeFunc("dist_jobs_queued",
		"Carved jobs waiting in the queue (requeues and restored remainders).",
		locked(func() float64 { return float64(len(c.queue)) }))
	r.NewGaugeFunc("dist_requeues_total",
		"Lease expiries that sent a job back to the queue.",
		locked(func() float64 { return float64(c.requeues) }))
	r.NewGaugeFunc("dist_canonical_total",
		"Canonical candidates evaluated across the fleet.",
		locked(func() float64 { return float64(c.canonical) }))
	r.NewGaugeFunc("dist_survivors",
		"Polynomials that passed every filter so far.",
		locked(func() float64 { return float64(len(c.survivors)) }))
	r.NewGaugeFunc("dist_connections",
		"Open worker connections.",
		locked(func() float64 { return float64(len(c.conns)) }))

	r.NewGaugeCollector("dist_worker_rate_candidates_per_second",
		"Per-worker EWMA throughput estimate in canonical candidates per second.",
		[]string{"worker"}, func(emit func([]string, float64)) {
			c.mu.Lock()
			defer c.mu.Unlock()
			for id, ws := range c.workers {
				emit([]string{id}, ws.rate)
			}
		})
	r.NewGaugeCollector("dist_worker_jobs_done",
		"Jobs completed per worker.",
		[]string{"worker"}, func(emit func([]string, float64)) {
			c.mu.Lock()
			defer c.mu.Unlock()
			for id, ws := range c.workers {
				emit([]string{id}, float64(ws.jobsDone))
			}
		})
	r.NewGaugeCollector("dist_worker_grant_size",
		"Last journaled grant size per worker in raw indices.",
		[]string{"worker"}, func(emit func([]string, float64)) {
			c.mu.Lock()
			defer c.mu.Unlock()
			for id, ws := range c.workers {
				emit([]string{id}, float64(ws.lastSize))
			}
		})
	r.NewGaugeCollector("dist_lease_age_seconds",
		"Seconds since the last lease renewal of each currently-assigned job.",
		[]string{"worker"}, func(emit func([]string, float64)) {
			now := time.Now()
			c.mu.Lock()
			defer c.mu.Unlock()
			// One row per worker — its oldest assigned lease — so the
			// series set stays keyed by fleet member, not by job id.
			oldest := make(map[string]float64)
			for _, j := range c.jobs {
				if j.state != jobAssigned {
					continue
				}
				age := now.Sub(j.deadline.Add(-c.cfg.LeaseTimeout)).Seconds()
				if age < 0 {
					age = 0
				}
				if cur, ok := oldest[j.worker]; !ok || age > cur {
					oldest[j.worker] = age
				}
			}
			for w, age := range oldest {
				emit([]string{w}, age)
			}
		})
	return r
}

package dist

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"koopmancrc/internal/core"
	"koopmancrc/internal/obs"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// ID names the worker in coordinator logs, lease bookkeeping and
	// per-worker throughput estimation. IDs must be unique across the
	// fleet — two workers sharing an id blend into one throughput
	// estimate and can renew each other's leases — so the default is
	// derived from hostname and pid rather than a fixed string.
	ID string
	// Parallelism is the intra-machine fan-out applied to each job
	// (core.Pipeline.Workers); zero means GOMAXPROCS, so one dist
	// worker per machine saturates all of its cores.
	Parallelism int
	// PollInterval is the retry delay after a wait reply (default 200ms).
	PollInterval time.Duration
	// ResultBatch is the number of completed-job results the worker
	// coalesces into one gzipped result_batch message (default 8).
	// Adaptive sizing shrinks jobs to balance load, which multiplies
	// result lines; batching amortizes them. Values <= 1 send every
	// result individually. Batching only activates against coordinators
	// that advertise support, and the worker keeps renewing the leases
	// of jobs whose results it is still holding, so a long job between
	// flushes never gets a held result requeued.
	ResultBatch int
	// Logf, when set, receives per-job progress lines.
	Logf func(format string, args ...any)
	// Logger receives structured events — one per completed job, per
	// heartbeat tick and per batch flush, all at Debug level — carrying
	// the worker id, job range, live progress and held-lease counts that
	// correlate with the coordinator's ledger. Nil means slog.Default().
	Logger *slog.Logger
}

// DefaultResultBatch is the result coalescing factor used when
// WorkerConfig.ResultBatch is zero.
const DefaultResultBatch = 8

// Worker connects to a coordinator, pulls jobs until the space is
// covered and filters each job with the shared core.Pipeline engine.
type Worker struct {
	addr string
	cfg  WorkerConfig

	batchesSent int // result_batch messages sent (observability, tests)
}

// ID returns the worker's resolved id (the configured one, or the
// hostname-pid default).
func (w *Worker) ID() string { return w.cfg.ID }

// BatchesSent reports how many result_batch messages this worker has
// sent — zero against a coordinator that never advertised batching, or
// with coalescing disabled. Read it after Run returns.
func (w *Worker) BatchesSent() int { return w.batchesSent }

// NewWorker returns a worker that will dial the coordinator at addr.
func NewWorker(addr string, cfg WorkerConfig) *Worker {
	if cfg.ID == "" {
		cfg.ID = defaultWorkerID()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.ResultBatch == 0 {
		cfg.ResultBatch = DefaultResultBatch
	}
	if cfg.ResultBatch > maxBatchResults {
		cfg.ResultBatch = maxBatchResults // coordinators reject bigger batches
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Worker{addr: addr, cfg: cfg}
}

// Run processes jobs until the coordinator sends shutdown, returning the
// number of jobs completed. The context aborts the connection and any
// in-flight filtering.
func (w *Worker) Run(ctx context.Context) (int, error) {
	conn, err := net.Dial("tcp", w.addr)
	if err != nil {
		return 0, fmt.Errorf("dist: worker %s: %w", w.cfg.ID, err)
	}
	wr := newWire(conn)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			wr.close()
		case <-stop:
			wr.close()
		}
	}()

	// pending holds completed results not yet delivered (batching mode
	// only); their job leases are renewed alongside the running job's so
	// a held result is never requeued while a long job computes.
	jobs := 0
	var pending []*message
	var oldest time.Time // completion time of pending[0]
	flush := func() (*message, error) {
		b, err := encodeBatch(w.cfg.ID, pending)
		if err != nil {
			return nil, err
		}
		w.cfg.Logf("dist: worker %s: flushing %d batched results", w.cfg.ID, len(pending))
		w.cfg.Logger.Debug("dist_batch_flush",
			"worker", w.cfg.ID, "results", len(pending), "held_since", oldest)
		w.batchesSent++
		pending = pending[:0]
		return b, nil
	}
	req := &message{Type: msgNext, Worker: w.cfg.ID}
	for {
		if err := wr.send(req); err != nil {
			return jobs, w.ctxErr(ctx, err)
		}
		reply, err := wr.recv()
		if err != nil {
			return jobs, w.ctxErr(ctx, err)
		}
		switch reply.Type {
		case msgShutdown:
			// The coordinator only shuts a worker down once the space is
			// covered; results still held here can only be duplicates of
			// requeued jobs another worker finished. Nothing to deliver.
			return jobs, nil
		case msgWait:
			// No fresh work while results are held: deliver them now
			// (the send doubles as the next work request) instead of
			// letting their leases run down during the idle wait.
			if len(pending) > 0 {
				if req, err = flush(); err != nil {
					return jobs, err
				}
				continue
			}
			select {
			case <-ctx.Done():
				return jobs, ctx.Err()
			case <-time.After(w.cfg.PollInterval):
			}
			req = &message{Type: msgNext, Worker: w.cfg.ID}
		case msgJob:
			res, err := w.runJob(ctx, wr, reply, pendingJobIDs(pending))
			if err != nil {
				return jobs, err
			}
			jobs++
			if !reply.BatchOK || w.cfg.ResultBatch <= 1 {
				req = res // legacy path: every result is its own message
				continue
			}
			if len(pending) == 0 {
				oldest = time.Now()
			}
			pending = append(pending, res)
			// Flush on a full batch, or when the oldest held result has
			// aged a third of its lease — well before the silence
			// threshold that would requeue it.
			hold := time.Duration(reply.LeaseNS) / 3
			if len(pending) >= w.cfg.ResultBatch || (hold > 0 && time.Since(oldest) >= hold) {
				if req, err = flush(); err != nil {
					return jobs, err
				}
				continue
			}
			req = &message{Type: msgNext, Worker: w.cfg.ID}
		default:
			return jobs, fmt.Errorf("dist: worker %s: unexpected reply %q", w.cfg.ID, reply.Type)
		}
	}
}

// pendingJobIDs lists the job ids of held results, for lease renewal.
func pendingJobIDs(pending []*message) []uint64 {
	if len(pending) == 0 {
		return nil
	}
	ids := make([]uint64, len(pending))
	for i, m := range pending {
		ids[i] = m.JobID
	}
	return ids
}

// runJob filters one [start, end) slice of the space and packages the
// shard result as the wire reply. While the computation runs, a side
// goroutine heartbeats over the same connection at a third of the job's
// lease — carrying the live candidate count — so a slow-but-healthy
// worker keeps its lease on long jobs and the coordinator can estimate
// this worker's throughput before the job completes. The heartbeat also
// renews the leases of alsoRenew — jobs whose results this worker is
// still batching.
func (w *Worker) runJob(ctx context.Context, wr *wire, m *message, alsoRenew []uint64) (*message, error) {
	if m.Spec == nil {
		return nil, fmt.Errorf("dist: worker %s: job %d has no spec", w.cfg.ID, m.JobID)
	}
	space, err := core.NewSpace(m.Spec.Width)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", w.cfg.ID, err)
	}
	var progress atomic.Uint64
	pl := &core.Pipeline{
		Space:    space,
		Filters:  []core.Filter{core.HDFilter{Lengths: m.Spec.Lengths, MinHD: m.Spec.MinHD, Engine: core.EngineFast}},
		Workers:  w.cfg.Parallelism,
		Progress: &progress,
	}
	if m.LeaseNS > 0 {
		stopHB := make(chan struct{})
		defer close(stopHB)
		go w.heartbeat(wr, m.JobID, time.Duration(m.LeaseNS), &progress, stopHB, alsoRenew)
	}
	started := time.Now()
	res, err := pl.Run(ctx, m.Start, m.End)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: job %d: %w", w.cfg.ID, m.JobID, err)
	}
	w.cfg.Logf("dist: worker %s: job %d [%d,%d): %d canonical, %d survivors in %v",
		w.cfg.ID, m.JobID, m.Start, m.End, res.Canonical, len(res.Survivors), res.Elapsed)
	w.cfg.Logger.Debug("dist_job_done",
		"worker", w.cfg.ID, "job", m.JobID, "start", m.Start, "end", m.End,
		"canonical", res.Canonical, "survivors", len(res.Survivors),
		"elapsed", res.Elapsed)
	survivors := make([]uint64, len(res.Survivors))
	for i, p := range res.Survivors {
		survivors[i] = p.Koopman()
	}
	out := &message{
		Type:      msgResult,
		Worker:    w.cfg.ID,
		JobID:     m.JobID,
		Canonical: res.Canonical,
		Survivors: survivors,
		ElapsedNS: res.Elapsed.Nanoseconds(),
		Stages:    toWireStages(res.Stages),
	}
	if m.TraceID != "" {
		// A traced grant: report the compute as wire spans — one
		// "worker.job" span under the coordinator's root, one child per
		// pipeline stage — for coordinator-side tree assembly.
		js := WireSpan{
			ID: obs.NewSpanID(), Parent: m.ParentSpan, Name: "worker.job",
			StartNS: started.UnixNano(), DurNS: res.Elapsed.Nanoseconds(),
			Attrs: []obs.Attr{
				{K: "worker", V: w.cfg.ID},
				{K: "canonical", V: strconv.FormatUint(res.Canonical, 10)},
				{K: "survivors", V: strconv.Itoa(len(res.Survivors))},
			},
		}
		out.TraceID = m.TraceID
		out.Spans = append(out.Spans, js)
		// StageStats carries durations, not start times, so each stage
		// span starts where the previous one's duration ends. For the
		// sharded pipeline that is an approximation (stages overlap
		// across shards), but it renders the stage order instead of
		// stacking every stage at t=0.
		offNS := int64(0)
		for _, st := range res.Stages {
			out.Spans = append(out.Spans, WireSpan{
				ID: obs.NewSpanID(), Parent: js.ID, Name: "stage." + st.Name,
				StartNS: started.UnixNano() + offNS, DurNS: st.Elapsed.Nanoseconds(),
				Attrs: []obs.Attr{
					{K: "in", V: strconv.FormatUint(st.In, 10)},
					{K: "out", V: strconv.FormatUint(st.Out, 10)},
				},
			})
			offNS += st.Elapsed.Nanoseconds()
		}
	}
	return out, nil
}

// heartbeat renews the lease on jobID every lease/3 until stop closes,
// reporting the job's live canonical-candidate count with each renewal.
// alsoRenew job ids — completed jobs whose results await a batch flush —
// ride the same message as bare renewals, so heartbeat traffic stays one
// line per tick regardless of batch size. Send failures are ignored:
// the main loop owns the connection and will surface the error when it
// next touches the wire.
func (w *Worker) heartbeat(wr *wire, jobID uint64, lease time.Duration, progress *atomic.Uint64, stop <-chan struct{}, alsoRenew []uint64) {
	interval := lease / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p := progress.Load()
			w.cfg.Logger.Debug("dist_heartbeat",
				"worker", w.cfg.ID, "job", jobID, "progress", p, "held", len(alsoRenew))
			_ = wr.send(&message{
				Type: msgHeartbeat, Worker: w.cfg.ID, JobID: jobID,
				Progress: p, Held: alsoRenew,
			})
		}
	}
}

// defaultWorkerID is unique per process, so a fleet launched without
// explicit ids still gets per-machine throughput estimates instead of
// every worker blending into one shared "worker" entry.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// ctxErr prefers the context's error over a connection error it caused.
func (w *Worker) ctxErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("dist: worker %s: %w", w.cfg.ID, err)
}

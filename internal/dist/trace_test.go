package dist_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"koopmancrc"
	"koopmancrc/internal/dist"
	"koopmancrc/internal/obs"
)

// memSink is an in-memory BakeSink for tests that don't need a real
// corpus store on disk.
type memSink struct {
	mu sync.Mutex
	m  map[uint64]*koopmancrc.MemoSnapshot
}

func newMemSink() *memSink { return &memSink{m: map[uint64]*koopmancrc.MemoSnapshot{}} }

func (s *memSink) Get(width int, polyK uint64) (*koopmancrc.MemoSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.m[polyK]
	return snap, ok
}

func (s *memSink) Put(snap *koopmancrc.MemoSnapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[snap.Poly] = snap
	return nil
}

// TestJobTracePropagation is the dist acceptance path: a real sweep over
// TCP yields one trace per job whose span tree crosses the process
// boundary — the coordinator's "dist.job" root with the worker's
// "worker.job" span and its pipeline-stage children stitched underneath
// — retrievable through both the Go API and the DebugAddr listener.
func TestJobTracePropagation(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      32, // 4 jobs
		LeaseTimeout: 30 * time.Second,
		DebugAddr:    "127.0.0.1:0",
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: "tracer", Logf: t.Logf})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := w.Run(context.Background()); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	traces := coord.Traces(obs.TraceFilter{})
	if len(traces) != sum.Jobs {
		t.Fatalf("%d traces retained, want one per job (%d)", len(traces), sum.Jobs)
	}
	for _, s := range traces {
		if s.Name != "dist.job" {
			t.Errorf("trace %s named %q, want dist.job", s.TraceID, s.Name)
		}
		if s.Error != "" {
			t.Errorf("clean sweep produced errored trace %s: %q", s.TraceID, s.Error)
		}
		td, ok := coord.Trace(s.TraceID)
		if !ok {
			t.Fatalf("summary %s does not resolve", s.TraceID)
		}
		var workerSpan, stageSpans int
		for _, c := range td.Root.Children {
			if c.Name == "worker.job" {
				workerSpan++
				prev := c.Start
				for _, sc := range c.Children {
					if strings.HasPrefix(sc.Name, "stage.") {
						stageSpans++
						// Stage spans start at accumulated offsets, never
						// all stacked on the job start out of order.
						if sc.Start.Before(prev) {
							t.Errorf("stage span %s starts before its predecessor", sc.Name)
						}
						prev = sc.Start
					}
				}
			}
		}
		if workerSpan != 1 {
			t.Errorf("trace %s has %d worker.job spans, want 1: %+v", s.TraceID, workerSpan, td.Root)
		}
		if stageSpans == 0 {
			t.Errorf("trace %s has no pipeline stage spans under worker.job", s.TraceID)
		}
	}

	// The same traces are served on the debug listener.
	resp, err := http.Get("http://" + coord.DebugAddr() + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Count  int                `json:"count"`
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Count != sum.Jobs {
		t.Fatalf("debug listener lists %d traces, want %d", list.Count, sum.Jobs)
	}
	one, err := http.Get("http://" + coord.DebugAddr() + "/v1/traces/" + list.Traces[0].TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer one.Body.Close()
	if one.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/{id}: %d", one.StatusCode)
	}
	var td obs.TraceData
	if err := json.NewDecoder(one.Body).Decode(&td); err != nil {
		t.Fatal(err)
	}
	if td.Root == nil || td.Root.Name != "dist.job" {
		t.Fatalf("debug trace root: %+v", td.Root)
	}

	miss, err := http.Get("http://" + coord.DebugAddr() + "/v1/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id: %d, want 404", miss.StatusCode)
	}
}

// TestExpiredLeaseTraceRetainedAsError pins the failure path: a worker
// that takes a job and dies leaves an errored, pinned trace behind when
// the lease expires, and the requeued grant gets a fresh trace.
func TestExpiredLeaseTraceRetainedAsError(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      64, // 2 jobs
		LeaseTimeout: 50 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Take a job and vanish without heartbeats.
	c := dialRaw(t, coord.Addr())
	c.send(map[string]any{"type": "next", "worker": "ghost"})
	reply := c.recv()
	if reply["type"] != "job" {
		t.Fatalf("reply %v, want job", reply["type"])
	}
	if reply["trace_id"] == "" || reply["parent_span"] == "" {
		t.Fatalf("grant carries no trace context: %v", reply)
	}
	deadTrace, _ := reply["trace_id"].(string)
	c.conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		errored := coord.Traces(obs.TraceFilter{ErrorsOnly: true})
		if len(errored) > 0 {
			if errored[0].TraceID != deadTrace {
				t.Fatalf("errored trace %s, want the dead lease's %s", errored[0].TraceID, deadTrace)
			}
			td, ok := coord.Trace(deadTrace)
			if !ok || td.Error == "" {
				t.Fatalf("expired lease trace not retrievable as errored: %+v", td)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired into an errored trace")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A healthy worker finishes the sweep; the requeued job's fresh trace
	// must be distinct from the dead lease's.
	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: "healthy", Logf: t.Logf})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() { _, err := w.Run(ctx); done <- err }()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	clean := 0
	for _, s := range coord.Traces(obs.TraceFilter{}) {
		if s.TraceID == deadTrace && s.Error == "" {
			t.Error("dead lease's trace lost its error on requeue")
		}
		if s.Error == "" {
			clean++
		}
	}
	if clean < 2 {
		t.Errorf("%d clean job traces after completion, want >= 2", clean)
	}
}

// TestBuildSpanTreeHostileInput exercises the wire-span stitcher against
// the malformed shapes an untrusted worker could send.
func TestBuildSpanTreeHostileInput(t *testing.T) {
	root := "aaaaaaaa"
	spans := []dist.WireSpan{
		{ID: "s1", Parent: root, Name: "worker.job", DurNS: 10},
		{ID: "s2", Parent: "s1", Name: "stage.filter", DurNS: 5},
		{ID: "s3", Parent: "missing", Name: "orphan", DurNS: 1}, // unknown parent → root
		{ID: "s4", Parent: "s4", Name: "self-cycle", DurNS: 1},  // self-parent → root
		{ID: "", Name: "no-id"},                                 // dropped
		{ID: root, Name: "id-collides-with-root"},               // dropped
		{ID: "s1", Name: "duplicate-id"},                        // dropped
	}
	td := dist.AssembleJobTraceForTest(root, spans)
	names := map[string]int{}
	var walk func(sd *obs.SpanData)
	walk = func(sd *obs.SpanData) {
		names[sd.Name]++
		for _, c := range sd.Children {
			walk(c)
		}
	}
	walk(td.Root)
	if names["worker.job"] != 1 || names["stage.filter"] != 1 {
		t.Errorf("well-formed spans mangled: %v", names)
	}
	if names["orphan"] != 1 || names["self-cycle"] != 1 {
		t.Errorf("orphans must attach to the root, not vanish: %v", names)
	}
	if names["no-id"] != 0 || names["id-collides-with-root"] != 0 || names["duplicate-id"] != 0 {
		t.Errorf("malformed spans must be dropped: %v", names)
	}
	if td.Spans != 5 {
		t.Errorf("span count %d, want 5 (root + 4 kept)", td.Spans)
	}
}

// TestBakeRecorderTraces checks BakeConfig.Recorder: one trace per
// polynomial with engine leaf spans, failures marked errored.
func TestBakeRecorderTraces(t *testing.T) {
	rec := obs.NewFlightRecorder(64, 1)
	sink := newMemSink()
	spec := dist.BakeSpec{Width: 8, Polys: []uint64{0x83, 0x9c}, MaxLen: 64, MaxHD: 4}
	sum, err := dist.Bake(context.Background(), spec, sink, dist.BakeConfig{
		Workers: 2, Recorder: rec, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Baked != 2 {
		t.Fatalf("baked %d, want 2", sum.Baked)
	}
	traces := rec.Summaries(obs.TraceFilter{Name: "bake"})
	if len(traces) != 2 {
		t.Fatalf("%d bake traces, want 2", len(traces))
	}
	for _, s := range traces {
		td, ok := rec.Get(s.TraceID)
		if !ok {
			t.Fatalf("bake trace %s not retrievable", s.TraceID)
		}
		engine := 0
		for _, c := range td.Root.Children {
			if strings.HasPrefix(c.Name, "engine.") {
				engine++
			}
		}
		if engine == 0 {
			t.Errorf("bake trace %s has no engine phase spans", s.TraceID)
		}
	}
}

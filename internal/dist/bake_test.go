package dist

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"koopmancrc"
	"koopmancrc/internal/corpus"
)

func TestBakePersistsAndResumesWarm(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	spec := BakeSpec{Width: 8, Polys: []uint64{0x83, 0x9c}, MaxLen: 64, MaxHD: 6, WeightLens: []int{32}}

	s, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("corpus.Open: %v", err)
	}
	sum, err := Bake(ctx, spec, s, BakeConfig{Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Bake: %v", err)
	}
	if sum.Baked != 2 || sum.Warm != 0 || len(sum.Failed) != 0 || sum.Probes == 0 {
		t.Fatalf("cold bake summary = %+v", sum)
	}
	snap, ok := s.Get(8, 0x83)
	if !ok || snap.Entries() == 0 {
		t.Fatalf("bake left no knowledge for 0x83")
	}
	// Profile + the three exact counts at length 32.
	if len(snap.Weights) != 3 {
		t.Fatalf("baked weights = %+v, want w=2..4 at len 32", snap.Weights)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Re-run against the same corpus: everything is already covered, so
	// the sweep finishes with zero engine probes and zero new appends.
	s2, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	sum2, err := Bake(ctx, spec, s2, BakeConfig{Workers: 2})
	if err != nil {
		t.Fatalf("warm Bake: %v", err)
	}
	if sum2.Baked != 0 || sum2.Warm != 2 || sum2.Probes != 0 {
		t.Fatalf("warm bake summary = %+v, want all warm at zero probes", sum2)
	}
	if st := s2.Stats(); st.Appends != 0 {
		t.Fatalf("warm bake appended %d records, want 0", st.Appends)
	}
}

// TestBakeResumesAfterCrash simulates a crash mid-bake: one polynomial
// durably finished, the WAL torn mid-append. The re-run must truncate
// the tear, treat the finished polynomial as warm, and bake the rest.
func TestBakeResumesAfterCrash(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	s, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("corpus.Open: %v", err)
	}
	if _, err := Bake(ctx, BakeSpec{Width: 8, Polys: []uint64{0x83}, MaxLen: 64, MaxHD: 6}, s, BakeConfig{}); err != nil {
		t.Fatalf("first bake: %v", err)
	}
	// Crash: no Close (no compaction), plus a torn half-record in the WAL.
	f, err := os.OpenFile(filepath.Join(dir, "wal.jlog"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.WriteString(`00000000 {"seq":2,"type":"memo","data":{"version":1,"wid`); err != nil {
		t.Fatalf("tear wal: %v", err)
	}
	f.Close()

	s2, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.TruncatedAtOpen == 0 {
		t.Fatalf("torn tail not truncated: %+v", st)
	}
	sum, err := Bake(ctx, BakeSpec{Width: 8, Polys: []uint64{0x83, 0x9c}, MaxLen: 64, MaxHD: 6}, s2, BakeConfig{})
	if err != nil {
		t.Fatalf("resume bake: %v", err)
	}
	if sum.Warm != 1 || sum.Baked != 1 {
		t.Fatalf("resume summary = %+v, want 1 warm (0x83) + 1 baked (0x9c)", sum)
	}
	if _, ok := s2.Get(8, 0x9c); !ok {
		t.Fatalf("resume did not bake 0x9c")
	}
}

func TestBakeCancellation(t *testing.T) {
	dir := t.TempDir()
	s, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("corpus.Open: %v", err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Bake(ctx, BakeSpec{Width: 8, Polys: []uint64{0x83, 0x9c}, MaxLen: 64, MaxHD: 6}, s, BakeConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Bake under cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestBakeCollectsPerPolyFailures(t *testing.T) {
	dir := t.TempDir()
	s, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("corpus.Open: %v", err)
	}
	defer s.Close()
	// 0x80 has no x^0 term in Koopman notation's implicit +1... it does;
	// but an out-of-range value for the width fails FromKoopman.
	sum, err := Bake(context.Background(),
		BakeSpec{Width: 8, Polys: []uint64{0x83, 0x1ff}, MaxLen: 64, MaxHD: 6}, s, BakeConfig{})
	if err != nil {
		t.Fatalf("Bake: %v", err)
	}
	if sum.Baked != 1 || len(sum.Failed) != 1 || sum.Failed[0].Poly != 0x1ff {
		t.Fatalf("summary = %+v, want 0x1ff failed and 0x83 baked", sum)
	}
}

func TestBakeSpecValidation(t *testing.T) {
	sink := nullSink{}
	ctx := context.Background()
	bad := []BakeSpec{
		{Width: 1, Polys: []uint64{0x83}, MaxLen: 64},
		{Width: 8, MaxLen: 64},
		{Width: 8, Polys: []uint64{0x83}},
		{Width: 8, Polys: []uint64{0x83}, MaxLen: 64, MaxHD: -1},
		{Width: 8, Polys: []uint64{0x83}, MaxLen: 64, WeightLens: []int{128}},
	}
	for i, spec := range bad {
		if _, err := Bake(ctx, spec, sink, BakeConfig{}); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
	if _, err := Bake(ctx, BakeSpec{Width: 8, Polys: []uint64{0x83}, MaxLen: 64}, nil, BakeConfig{}); err == nil {
		t.Errorf("nil sink accepted")
	}
}

// nullSink satisfies BakeSink without storage, for validation tests.
type nullSink struct{}

func (nullSink) Get(int, uint64) (*koopmancrc.MemoSnapshot, bool) { return nil, false }
func (nullSink) Put(*koopmancrc.MemoSnapshot) error               { return nil }

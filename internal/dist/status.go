package dist

import (
	"sort"
	"time"

	"koopmancrc/internal/journal"
)

// WorkerStatus is one worker's journal-reconstructed throughput ledger.
type WorkerStatus struct {
	// ID is the worker's self-reported id.
	ID string `json:"id"`
	// JobsDone is how many jobs this worker completed.
	JobsDone int `json:"jobs_done"`
	// Canonical is the candidate count across those jobs.
	Canonical uint64 `json:"canonical"`
	// Compute is the summed per-job compute time the worker reported.
	Compute time.Duration `json:"compute_ns"`
	// Rate is the coordinator's EWMA throughput estimate in canonical
	// candidates per second, as of the newest journal record.
	Rate float64 `json:"rate"`
	// LastGrantSize is the worker's last journaled sizing decision in
	// raw indices; fresh grants track it within a small drift threshold
	// (see materialResize).
	LastGrantSize uint64 `json:"last_grant_size"`
}

// RequeueEvent is one journaled lease expiry.
type RequeueEvent struct {
	// JobID is the job that went back to the queue.
	JobID uint64 `json:"job_id"`
	// Worker held the expired lease.
	Worker string `json:"worker"`
	// Time is when the coordinator requeued the job.
	Time time.Time `json:"time"`
}

// Status is the read-only view of a checkpointed sweep, reconstructed
// purely from the journal: ReadStatus never contacts (or interferes
// with) a running coordinator, and because it replays the same ledger
// the resume path does, its counts always match what a resumed
// coordinator would start from.
type Status struct {
	// Spec identifies the sweep.
	Spec SearchSpec `json:"spec"`
	// JobSize is the journaled base grant size in raw indices.
	JobSize uint64 `json:"job_size"`
	// TotalIndices is the raw size of the search space.
	TotalIndices uint64 `json:"total_indices"`
	// CarvedJobs / DoneJobs / PendingJobs count jobs the coordinator
	// has carved, completed and still owes (carved but not done).
	CarvedJobs  int `json:"carved_jobs"`
	DoneJobs    int `json:"done_jobs"`
	PendingJobs int `json:"pending_jobs"`
	// DoneIndices / PendingIndices / UncarvedIndices partition the
	// space: covered by done jobs, covered by carved-but-unfinished
	// jobs, and not yet carved at all.
	DoneIndices     uint64 `json:"done_indices"`
	PendingIndices  uint64 `json:"pending_indices"`
	UncarvedIndices uint64 `json:"uncarved_indices"`
	// Canonical counts candidates evaluated; Survivors counts
	// polynomials that passed every filter so far.
	Canonical uint64 `json:"canonical"`
	Survivors int    `json:"survivors"`
	// Requeues is the exact lease-expiry total; RequeueLog holds the
	// most recent requeueLogCap events with holders and times.
	Requeues   int            `json:"requeues"`
	RequeueLog []RequeueEvent `json:"requeue_log,omitempty"`
	// Workers lists per-worker throughput ledgers, sorted by id.
	Workers []WorkerStatus `json:"workers"`
	// Started is when the sweep first began (preserved across
	// resumes); LastActivity is the newest journal record. Active is
	// the span between them — journal-observed sweep time, which for a
	// suspended sweep excludes nothing but is the best ETA base the
	// journal alone can offer.
	Started      time.Time     `json:"started"`
	LastActivity time.Time     `json:"last_activity"`
	Active       time.Duration `json:"active_ns"`
	// IndexRate is the sweep-wide throughput in raw indices per second
	// over Active; ETA extrapolates it over the uncovered remainder.
	// Both are zero when the journal holds too little to estimate.
	IndexRate float64       `json:"index_rate"`
	ETA       time.Duration `json:"eta_ns"`
	// Complete reports whether the space is fully covered.
	Complete bool `json:"complete"`
}

// ReadStatus replays a checkpoint directory without opening it for
// writing and reports sweep progress, per-worker throughput, requeue
// history and an ETA. Safe to run against the checkpoint of a live
// coordinator: it reads whatever is durable on disk and mutates
// nothing.
func ReadStatus(dir string) (*Status, error) {
	rec, err := journal.Read(dir)
	if err != nil {
		return nil, err
	}
	ls, err := replayLedger(rec)
	if err != nil {
		return nil, err
	}
	st := &Status{
		Spec:         ls.begin.Spec,
		JobSize:      ls.begin.JobSize,
		TotalIndices: ls.begin.Total,
		CarvedJobs:   len(ls.jobs),
		DoneJobs:     ls.doneJobs,
		PendingJobs:  len(ls.jobs) - ls.doneJobs,
		DoneIndices:  ls.doneIdx,
		Canonical:    ls.canonical,
		Survivors:    len(ls.survivors),
		Requeues:     ls.requeues,
		Started:      time.Unix(0, ls.begin.TS),
		LastActivity: time.Unix(0, ls.lastTS),
	}
	for _, j := range ls.jobs {
		if !j.done {
			st.PendingIndices += j.end - j.start
		}
	}
	st.UncarvedIndices = st.TotalIndices - ls.nextStart
	st.Complete = ls.nextStart >= st.TotalIndices && st.DoneJobs == st.CarvedJobs
	for _, r := range ls.requeueLog {
		st.RequeueLog = append(st.RequeueLog, RequeueEvent{JobID: r.JobID, Worker: r.Worker, Time: time.Unix(0, r.TS)})
	}
	ids := make([]string, 0, len(ls.workers))
	for id := range ls.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := ls.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID: id, JobsDone: ws.jobsDone, Canonical: ws.canonical,
			Compute: ws.elapsed, Rate: ws.rate, LastGrantSize: ws.lastSize,
		})
	}
	if ls.lastTS > ls.begin.TS {
		st.Active = time.Duration(ls.lastTS - ls.begin.TS)
	}
	if st.Active > 0 && st.DoneIndices > 0 {
		st.IndexRate = float64(st.DoneIndices) / st.Active.Seconds()
		remaining := st.TotalIndices - st.DoneIndices
		if st.IndexRate > 0 && remaining > 0 {
			st.ETA = time.Duration(float64(remaining) / st.IndexRate * float64(time.Second))
		}
	}
	return st, nil
}

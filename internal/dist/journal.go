package dist

import (
	"encoding/json"
	"fmt"

	"koopmancrc/internal/core"
	"koopmancrc/internal/journal"
	"koopmancrc/internal/poly"
)

// Journal record types written by a checkpointing coordinator. Grants
// and requeues are observability and audit records (a resumed ledger
// treats every non-done job as pending regardless); done records and the
// periodic snapshot are what exactly-once resumption is rebuilt from.
const (
	recBegin   = "begin"
	recGrant   = "grant"
	recRequeue = "requeue"
	recDone    = "done"
)

// beginRec pins the sweep's identity. A resume validates it so a
// checkpoint directory can never silently continue a different search.
type beginRec struct {
	Spec    SearchSpec `json:"spec"`
	JobSize uint64     `json:"job_size"`
	Jobs    int        `json:"jobs"`
}

// grantRec records a job lease handed to a worker.
type grantRec struct {
	JobID  uint64 `json:"job_id"`
	Worker string `json:"worker"`
}

// requeueRec records a lease expiry that sent a job back to the queue.
type requeueRec struct {
	JobID  uint64 `json:"job_id"`
	Worker string `json:"worker,omitempty"`
}

// doneRec records one job's accepted result — the unit of exactly-once
// accounting across a crash.
type doneRec struct {
	JobID     uint64      `json:"job_id"`
	Worker    string      `json:"worker"`
	Canonical uint64      `json:"canonical"`
	Survivors []uint64    `json:"survivors,omitempty"`
	ElapsedNS int64       `json:"elapsed_ns"`
	Stages    []StageStat `json:"stages,omitempty"`
}

// ledgerSnap is the compacted whole-ledger state stored by snapshots.
type ledgerSnap struct {
	Begin     beginRec    `json:"begin"`
	Done      []uint64    `json:"done"`
	Requeues  int         `json:"requeues"`
	Canonical uint64      `json:"canonical"`
	Survivors []uint64    `json:"survivors,omitempty"`
	Stages    []StageStat `json:"stages,omitempty"`
}

// checkBegin validates a journaled sweep identity against this
// coordinator's configuration.
func (c *Coordinator) checkBegin(b beginRec) error {
	if !b.Spec.equal(c.cfg.Spec) {
		return fmt.Errorf("dist: checkpoint is for spec %+v, coordinator configured %+v", b.Spec, c.cfg.Spec)
	}
	if b.JobSize != c.cfg.JobSize || b.Jobs != len(c.jobs) {
		return fmt.Errorf("dist: checkpoint carved %d jobs of %d indices, coordinator carved %d of %d",
			b.Jobs, b.JobSize, len(c.jobs), c.cfg.JobSize)
	}
	return nil
}

// markDoneFromJournal applies one recovered completion to the ledger,
// ignoring duplicates exactly like the live recordResult path.
func (c *Coordinator) markDoneFromJournal(d doneRec) error {
	if d.JobID >= uint64(len(c.jobs)) {
		return fmt.Errorf("dist: checkpoint done record for unknown job %d", d.JobID)
	}
	j := c.jobs[d.JobID]
	if j.state == jobDone {
		return nil
	}
	for _, k := range d.Survivors {
		p, err := poly.FromKoopman(c.cfg.Spec.Width, k)
		if err != nil {
			return fmt.Errorf("dist: checkpoint job %d survivor %#x: %w", d.JobID, k, err)
		}
		c.survivors = append(c.survivors, p)
	}
	j.state = jobDone
	j.worker = d.Worker
	c.canonical += d.Canonical
	c.stages = core.MergeStages(c.stages, fromWireStages(d.Stages))
	c.doneJobs++
	return nil
}

// restore rebuilds the ledger from a replayed journal: snapshot first,
// then the WAL records above its watermark. Jobs without a done record
// — including ones that were granted when the old coordinator died — go
// back to pending.
func (c *Coordinator) restore(rec *journal.Recovery) error {
	seenBegin := false
	if rec.Snapshot != nil {
		var s ledgerSnap
		if err := json.Unmarshal(rec.Snapshot, &s); err != nil {
			return fmt.Errorf("dist: checkpoint snapshot: %w", err)
		}
		if err := c.checkBegin(s.Begin); err != nil {
			return err
		}
		seenBegin = true
		c.requeues = s.Requeues
		c.canonical = s.Canonical
		c.stages = fromWireStages(s.Stages)
		for _, k := range s.Survivors {
			p, err := poly.FromKoopman(c.cfg.Spec.Width, k)
			if err != nil {
				return fmt.Errorf("dist: checkpoint survivor %#x: %w", k, err)
			}
			c.survivors = append(c.survivors, p)
		}
		for _, id := range s.Done {
			if id >= uint64(len(c.jobs)) {
				return fmt.Errorf("dist: checkpoint marks unknown job %d done", id)
			}
			if c.jobs[id].state != jobDone {
				c.jobs[id].state = jobDone
				c.doneJobs++
			}
		}
	}
	for _, e := range rec.Entries {
		switch e.Type {
		case recBegin:
			var b beginRec
			if err := json.Unmarshal(e.Data, &b); err != nil {
				return fmt.Errorf("dist: checkpoint begin record: %w", err)
			}
			if err := c.checkBegin(b); err != nil {
				return err
			}
			seenBegin = true
		case recGrant:
			// Leases don't survive the coordinator that issued them.
		case recRequeue:
			c.requeues++
		case recDone:
			var d doneRec
			if err := json.Unmarshal(e.Data, &d); err != nil {
				return fmt.Errorf("dist: checkpoint done record: %w", err)
			}
			if err := c.markDoneFromJournal(d); err != nil {
				return err
			}
		default:
			c.cfg.Logf("dist: ignoring unknown checkpoint record type %q (seq %d)", e.Type, e.Seq)
		}
	}
	if !seenBegin {
		return fmt.Errorf("dist: checkpoint has no begin record (empty or foreign journal)")
	}
	c.resumed = c.doneJobs
	// Rebuild the queue with only the jobs still owed.
	c.queue = c.queue[:0]
	for _, j := range c.jobs {
		if j.state != jobDone {
			j.state = jobPending
			c.queue = append(c.queue, j.id)
		}
	}
	return nil
}

// jnlAppendLocked appends one ledger record (c.mu held), compacting into
// a snapshot every SnapshotEvery appends. Recovery-critical records
// (begin, done) fsync before returning; audit records (grants, requeues)
// are buffered and ride the next synced operation, keeping the per-
// assignment fsync off the handout hot path. Journal failures are
// reported but do not stop the sweep: the search result stays correct,
// only resumability degrades.
func (c *Coordinator) jnlAppendLocked(typ string, v any, sync bool) {
	if c.jnl == nil {
		return
	}
	var err error
	if sync {
		err = c.jnl.Append(typ, v)
	} else {
		err = c.jnl.AppendNoSync(typ, v)
	}
	if err != nil {
		c.cfg.Logf("dist: checkpoint append failed: %v", err)
		return
	}
	c.appendsSince++
	if c.appendsSince >= c.cfg.SnapshotEvery {
		c.snapshotLocked()
	}
}

// snapshotLocked compacts the full ledger into the journal's snapshot
// (c.mu held).
func (c *Coordinator) snapshotLocked() {
	if c.jnl == nil {
		return
	}
	snap := ledgerSnap{
		Begin:     beginRec{Spec: c.cfg.Spec, JobSize: c.cfg.JobSize, Jobs: len(c.jobs)},
		Done:      make([]uint64, 0, c.doneJobs),
		Requeues:  c.requeues,
		Canonical: c.canonical,
		Survivors: make([]uint64, len(c.survivors)),
		Stages:    toWireStages(c.stages),
	}
	for _, j := range c.jobs {
		if j.state == jobDone {
			snap.Done = append(snap.Done, j.id)
		}
	}
	for i, p := range c.survivors {
		snap.Survivors[i] = p.Koopman()
	}
	if err := c.jnl.Snapshot(snap); err != nil {
		c.cfg.Logf("dist: checkpoint snapshot failed: %v", err)
		return
	}
	c.appendsSince = 0
}

package dist

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"koopmancrc/internal/core"
	"koopmancrc/internal/journal"
	"koopmancrc/internal/poly"
)

// Journal record types written by a checkpointing coordinator. Grants
// define how the space was carved (adaptive sizing makes job ranges a
// runtime decision, so the carve itself must be journaled); done records
// and the periodic snapshot are what exactly-once resumption is rebuilt
// from; requeue and resize records are audit/observability state that
// the status view and resumed sizing read back.
//
// Grants, requeues and resizes are appended without fsync: the WAL is
// strictly append-ordered, so the sync on any later record (every done
// is synced) also makes them durable, and a grant lost from the tail is
// harmless — its job was never completed, so the range is simply carved
// again after resume.
const (
	recBegin   = "begin"
	recGrant   = "grant"
	recRequeue = "requeue"
	recDone    = "done"
	recResize  = "resize"
)

// journalVersion is bumped when the record schema changes incompatibly.
// Version 2 introduced ranged grants (adaptive sizing), timestamps,
// resize records and the per-worker stats snapshot.
const journalVersion = 2

// beginRec pins the sweep's identity. A resume validates it so a
// checkpoint directory can never silently continue a different search.
// Sizing knobs are deliberately not part of the identity: every job's
// range rides its grant record, so JobSize/TargetJobTime may be retuned
// between runs of the same sweep.
type beginRec struct {
	Version int        `json:"version"`
	Spec    SearchSpec `json:"spec"`
	JobSize uint64     `json:"job_size"`
	Total   uint64     `json:"total"`
	TS      int64      `json:"ts"`
}

// grantRec records a job lease handed to a worker. The first grant for a
// job id is the carve decision that defines its [start, end) range;
// later grants for the same id are re-leases of a requeued job.
type grantRec struct {
	JobID  uint64 `json:"job_id"`
	Worker string `json:"worker"`
	Start  uint64 `json:"start"`
	End    uint64 `json:"end"`
	TS     int64  `json:"ts"`
}

// requeueRec records a lease expiry that sent a job back to the queue.
type requeueRec struct {
	JobID  uint64 `json:"job_id"`
	Worker string `json:"worker,omitempty"`
	TS     int64  `json:"ts"`
}

// resizeRec records an adaptive-sizing decision: from this point the
// worker's fresh grants are Size raw indices, estimated from Rate
// canonical candidates/sec. Replayed on resume so sizing state (and the
// heartbeat-driven part of the estimate, which is never journaled
// directly) survives a crash.
type resizeRec struct {
	Worker string  `json:"worker"`
	Size   uint64  `json:"size"`
	Rate   float64 `json:"rate"`
	TS     int64   `json:"ts"`
}

// doneRec records one job's accepted result — the unit of exactly-once
// accounting across a crash.
type doneRec struct {
	JobID     uint64      `json:"job_id"`
	Worker    string      `json:"worker"`
	Canonical uint64      `json:"canonical"`
	Survivors []uint64    `json:"survivors,omitempty"`
	ElapsedNS int64       `json:"elapsed_ns"`
	Stages    []StageStat `json:"stages,omitempty"`
	TS        int64       `json:"ts"`
}

// snapJob is one carved job in a snapshot.
type snapJob struct {
	ID     uint64 `json:"id"`
	Start  uint64 `json:"start"`
	End    uint64 `json:"end"`
	Done   bool   `json:"done,omitempty"`
	Worker string `json:"worker,omitempty"`
}

// workerSnap is one worker's throughput ledger in a snapshot.
type workerSnap struct {
	ID        string  `json:"id"`
	Rate      float64 `json:"rate"`
	JobsDone  int     `json:"jobs_done"`
	Canonical uint64  `json:"canonical"`
	ElapsedNS int64   `json:"elapsed_ns"`
	LastSize  uint64  `json:"last_size"`
}

// ledgerSnap is the compacted whole-ledger state stored by snapshots.
type ledgerSnap struct {
	Begin      beginRec     `json:"begin"`
	NextStart  uint64       `json:"next_start"`
	Jobs       []snapJob    `json:"jobs"`
	Requeues   int          `json:"requeues"`
	RequeueLog []requeueRec `json:"requeue_log,omitempty"`
	Canonical  uint64       `json:"canonical"`
	Survivors  []uint64     `json:"survivors,omitempty"`
	Stages     []StageStat  `json:"stages,omitempty"`
	Workers    []workerSnap `json:"workers,omitempty"`
	TS         int64        `json:"ts"`
}

// ledgerJob is a carved job as reconstructed from the journal.
type ledgerJob struct {
	id, start, end uint64
	done           bool
	worker         string
}

// ledgerState is the full sweep state a journal replay reconstructs. It
// is the single source both the coordinator's restore path and the
// read-only ReadStatus view are built from, so the two can never
// disagree about what a checkpoint contains.
type ledgerState struct {
	begin      beginRec
	jobs       []ledgerJob // index == job id
	nextStart  uint64
	doneJobs   int
	doneIdx    uint64
	requeues   int
	requeueLog []requeueRec
	canonical  uint64
	survivors  []uint64
	stages     []StageStat
	workers    map[string]*workerStat
	lastTS     int64 // newest record timestamp seen
}

func (ls *ledgerState) worker(id string) *workerStat {
	ws := ls.workers[id]
	if ws == nil {
		ws = &workerStat{}
		ls.workers[id] = ws
	}
	return ws
}

func (ls *ledgerState) seeTS(ts int64) {
	if ts > ls.lastTS {
		ls.lastTS = ts
	}
}

// applyDone marks one journaled completion, mirroring the live
// recordResult accounting (duplicates ignored, worker stats updated with
// the same observeDone math).
func (ls *ledgerState) applyDone(d doneRec) error {
	if d.JobID >= uint64(len(ls.jobs)) {
		return fmt.Errorf("dist: checkpoint done record for uncarved job %d", d.JobID)
	}
	j := &ls.jobs[d.JobID]
	if j.done {
		return nil
	}
	j.done = true
	j.worker = d.Worker
	ls.doneJobs++
	ls.doneIdx += j.end - j.start
	ls.canonical += d.Canonical
	ls.survivors = append(ls.survivors, d.Survivors...)
	ls.stages = mergeWireStages(ls.stages, d.Stages)
	ls.worker(d.Worker).observeDone(d.Canonical, time.Duration(d.ElapsedNS))
	ls.seeTS(d.TS)
	return nil
}

// mergeWireStages folds wire-form stage stats without the round trip
// through core.StageStats.
func mergeWireStages(dst, add []StageStat) []StageStat {
	merged := core.MergeStages(fromWireStages(dst), fromWireStages(add))
	return toWireStages(merged)
}

// replayLedger rebuilds the sweep state from a replayed journal:
// snapshot first, then the WAL records above its watermark. It validates
// the journal's internal consistency (version, record ordering) but not
// against any particular coordinator configuration — that is the
// caller's job, so the read-only status path can replay a checkpoint
// without knowing the sweep's spec up front.
func replayLedger(rec *journal.Recovery) (*ledgerState, error) {
	ls := &ledgerState{workers: make(map[string]*workerStat)}
	seenBegin := false
	if rec.Snapshot != nil {
		var s ledgerSnap
		if err := json.Unmarshal(rec.Snapshot, &s); err != nil {
			return nil, fmt.Errorf("dist: checkpoint snapshot: %w", err)
		}
		if err := checkVersion(s.Begin); err != nil {
			return nil, err
		}
		seenBegin = true
		ls.begin = s.Begin
		ls.nextStart = s.NextStart
		ls.requeues = s.Requeues
		ls.requeueLog = s.RequeueLog
		ls.canonical = s.Canonical
		ls.survivors = s.Survivors
		ls.stages = s.Stages
		ls.jobs = make([]ledgerJob, len(s.Jobs))
		for i, sj := range s.Jobs {
			if sj.ID != uint64(i) {
				return nil, fmt.Errorf("dist: checkpoint snapshot job %d has id %d", i, sj.ID)
			}
			ls.jobs[i] = ledgerJob{id: sj.ID, start: sj.Start, end: sj.End, done: sj.Done, worker: sj.Worker}
			if sj.Done {
				ls.doneJobs++
				ls.doneIdx += sj.End - sj.Start
			}
		}
		for _, w := range s.Workers {
			ls.workers[w.ID] = &workerStat{
				rate: w.Rate, jobsDone: w.JobsDone, canonical: w.Canonical,
				elapsed: time.Duration(w.ElapsedNS), lastSize: w.LastSize,
			}
		}
		ls.seeTS(s.TS)
	}
	for _, e := range rec.Entries {
		switch e.Type {
		case recBegin:
			var b beginRec
			if err := json.Unmarshal(e.Data, &b); err != nil {
				return nil, fmt.Errorf("dist: checkpoint begin record: %w", err)
			}
			if err := checkVersion(b); err != nil {
				return nil, err
			}
			if seenBegin {
				return nil, fmt.Errorf("dist: checkpoint holds two begin records")
			}
			seenBegin = true
			ls.begin = b
			ls.seeTS(b.TS)
		case recGrant:
			var g grantRec
			if err := json.Unmarshal(e.Data, &g); err != nil {
				return nil, fmt.Errorf("dist: checkpoint grant record: %w", err)
			}
			switch {
			case g.JobID == uint64(len(ls.jobs)):
				// The carve decision for a fresh job.
				ls.jobs = append(ls.jobs, ledgerJob{id: g.JobID, start: g.Start, end: g.End, worker: g.Worker})
				if g.End > ls.nextStart {
					ls.nextStart = g.End
				}
			case g.JobID < uint64(len(ls.jobs)):
				// A re-lease of a requeued job; leases don't survive the
				// coordinator that issued them, but the holder is audit
				// state worth keeping.
				if !ls.jobs[g.JobID].done {
					ls.jobs[g.JobID].worker = g.Worker
				}
			default:
				return nil, fmt.Errorf("dist: checkpoint grant for job %d skips %d uncarved jobs",
					g.JobID, g.JobID-uint64(len(ls.jobs)))
			}
			ls.seeTS(g.TS)
		case recRequeue:
			var r requeueRec
			if err := json.Unmarshal(e.Data, &r); err != nil {
				return nil, fmt.Errorf("dist: checkpoint requeue record: %w", err)
			}
			ls.requeues++
			ls.requeueLog = appendRequeue(ls.requeueLog, r)
			ls.seeTS(r.TS)
		case recResize:
			var r resizeRec
			if err := json.Unmarshal(e.Data, &r); err != nil {
				return nil, fmt.Errorf("dist: checkpoint resize record: %w", err)
			}
			ws := ls.worker(r.Worker)
			ws.lastSize = r.Size
			if r.Rate > 0 {
				ws.rate = r.Rate
			}
			ls.seeTS(r.TS)
		case recDone:
			var d doneRec
			if err := json.Unmarshal(e.Data, &d); err != nil {
				return nil, fmt.Errorf("dist: checkpoint done record: %w", err)
			}
			if err := ls.applyDone(d); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("dist: unknown checkpoint record type %q (seq %d)", e.Type, e.Seq)
		}
	}
	if !seenBegin {
		return nil, fmt.Errorf("dist: checkpoint has no begin record (empty or foreign journal)")
	}
	return ls, nil
}

// checkVersion rejects journals written by an incompatible schema.
func checkVersion(b beginRec) error {
	if b.Version != journalVersion {
		return fmt.Errorf("dist: checkpoint journal is schema version %d, this build reads version %d",
			b.Version, journalVersion)
	}
	return nil
}

// checkBegin validates a journaled sweep identity against this
// coordinator's configuration.
func (c *Coordinator) checkBegin(b beginRec) error {
	if !b.Spec.equal(c.cfg.Spec) {
		return fmt.Errorf("dist: checkpoint is for spec %+v, coordinator configured %+v", b.Spec, c.cfg.Spec)
	}
	if b.Total != c.total {
		return fmt.Errorf("dist: checkpoint covers %d raw indices, coordinator's space has %d", b.Total, c.total)
	}
	return nil
}

// restore installs a replayed ledger into the coordinator. Jobs without
// a done record — including ones that were granted when the old
// coordinator died — go back to pending, and per-worker throughput and
// sizing state carries over so the first grants after a resume are
// already adapted.
func (c *Coordinator) restore(rec *journal.Recovery) error {
	ls, err := replayLedger(rec)
	if err != nil {
		return err
	}
	if err := c.checkBegin(ls.begin); err != nil {
		return err
	}
	if ls.begin.JobSize != c.cfg.JobSize {
		c.cfg.Logf("dist: base job size retuned from %d to %d across resume", ls.begin.JobSize, c.cfg.JobSize)
	}
	for _, k := range ls.survivors {
		p, err := poly.FromKoopman(c.cfg.Spec.Width, k)
		if err != nil {
			return fmt.Errorf("dist: checkpoint survivor %#x: %w", k, err)
		}
		c.survivors = append(c.survivors, p)
	}
	c.beginTS = ls.begin.TS
	c.nextStart = ls.nextStart
	c.requeues = ls.requeues
	c.requeueLog = ls.requeueLog
	c.canonical = ls.canonical
	c.doneIdx = ls.doneIdx
	c.doneJobs = ls.doneJobs
	c.stages = fromWireStages(ls.stages)
	c.workers = ls.workers
	c.jobs = make([]*job, len(ls.jobs))
	for i, lj := range ls.jobs {
		j := &job{id: lj.id, start: lj.start, end: lj.end, worker: lj.worker}
		if lj.done {
			j.state = jobDone
		} else {
			j.state = jobPending
			c.queue = append(c.queue, j.id)
		}
		c.jobs[i] = j
	}
	c.resumed = c.doneJobs
	return nil
}

// jnlAppendLocked appends one ledger record (c.mu held), compacting into
// a snapshot every SnapshotEvery appends. Recovery-critical records
// (begin, done) fsync before returning; carve/audit records (grants,
// requeues, resizes) are buffered and ride the next synced operation,
// keeping the per-assignment fsync off the handout hot path. Journal
// failures are reported but do not stop the sweep: the search result
// stays correct, only resumability degrades.
func (c *Coordinator) jnlAppendLocked(typ string, v any, sync bool) {
	if c.jnl == nil {
		return
	}
	var err error
	if sync {
		err = c.jnl.Append(typ, v)
	} else {
		err = c.jnl.AppendNoSync(typ, v)
	}
	if err != nil {
		c.cfg.Logf("dist: checkpoint append failed: %v", err)
		return
	}
	c.appendsSince++
	if c.appendsSince >= c.cfg.SnapshotEvery {
		c.snapshotLocked()
	}
}

// snapshotLocked compacts the full ledger — including the carve table
// and per-worker sizing state — into the journal's snapshot (c.mu held).
func (c *Coordinator) snapshotLocked() {
	if c.jnl == nil {
		return
	}
	snap := ledgerSnap{
		Begin: beginRec{
			Version: journalVersion, Spec: c.cfg.Spec, JobSize: c.cfg.JobSize,
			Total: c.total, TS: c.beginTS,
		},
		NextStart:  c.nextStart,
		Jobs:       make([]snapJob, len(c.jobs)),
		Requeues:   c.requeues,
		RequeueLog: c.requeueLog,
		Canonical:  c.canonical,
		Survivors:  make([]uint64, len(c.survivors)),
		Stages:     toWireStages(c.stages),
		TS:         time.Now().UnixNano(),
	}
	for i, j := range c.jobs {
		snap.Jobs[i] = snapJob{ID: j.id, Start: j.start, End: j.end, Done: j.state == jobDone, Worker: j.worker}
	}
	for i, p := range c.survivors {
		snap.Survivors[i] = p.Koopman()
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := c.workers[id]
		snap.Workers = append(snap.Workers, workerSnap{
			ID: id, Rate: ws.rate, JobsDone: ws.jobsDone, Canonical: ws.canonical,
			ElapsedNS: ws.elapsed.Nanoseconds(), LastSize: ws.lastSize,
		})
	}
	if err := c.jnl.Snapshot(snap); err != nil {
		c.cfg.Logf("dist: checkpoint snapshot failed: %v", err)
		return
	}
	c.appendsSince = 0
}

package dist

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"koopmancrc/internal/core"
)

// SearchSpec is the search every job belongs to, fixed for the lifetime
// of a Coordinator and echoed in each job message so workers need no
// out-of-band configuration.
type SearchSpec struct {
	// Width of the polynomials to search (2..32).
	Width int `json:"width"`
	// MinHD is the Hamming distance to demand.
	MinHD int `json:"min_hd"`
	// Lengths is the increasing-length filter schedule (bits); the last
	// entry is the target length.
	Lengths []int `json:"lengths"`
}

// equal reports whether two specs describe the same search.
func (s SearchSpec) equal(o SearchSpec) bool {
	if s.Width != o.Width || s.MinHD != o.MinHD || len(s.Lengths) != len(o.Lengths) {
		return false
	}
	for i, l := range s.Lengths {
		if l != o.Lengths[i] {
			return false
		}
	}
	return true
}

// Message types. The worker initiates every exchange and the coordinator
// answers each worker message with exactly one reply — except heartbeat,
// which is fire-and-forget so a worker can renew its lease from a side
// goroutine while the job computation (and the main request/reply loop)
// is still in flight:
//
//	worker → coord: next         (idle, requesting work; carries worker id)
//	worker → coord: result       (a completed job; also an implicit next)
//	worker → coord: result_batch (several coalesced results, gzipped; also
//	                              an implicit next — only sent to
//	                              coordinators that advertised batch_ok)
//	worker → coord: heartbeat    (mid-job lease renewal + progress; no reply)
//	coord → worker: job      (an assignment: spec + [start, end) + lease)
//	coord → worker: wait     (no job available now — leases outstanding)
//	coord → worker: shutdown (space fully covered; disconnect)
const (
	msgNext        = "next"
	msgResult      = "result"
	msgResultBatch = "result_batch"
	msgHeartbeat   = "heartbeat"
	msgJob         = "job"
	msgWait        = "wait"
	msgShutdown    = "shutdown"
)

// StageStat is the wire (and journal) form of core.StageStats, so
// per-stage drop statistics survive the trip from worker to coordinator.
type StageStat struct {
	Name      string `json:"name"`
	In        uint64 `json:"in"`
	Out       uint64 `json:"out"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// toWireStages converts pipeline stage statistics to their wire form.
func toWireStages(in []core.StageStats) []StageStat {
	out := make([]StageStat, len(in))
	for i, s := range in {
		out[i] = StageStat{Name: s.Name, In: s.In, Out: s.Out, ElapsedNS: s.Elapsed.Nanoseconds()}
	}
	return out
}

// fromWireStages is the inverse of toWireStages.
func fromWireStages(in []StageStat) []core.StageStats {
	out := make([]core.StageStats, len(in))
	for i, s := range in {
		out[i] = core.StageStats{Name: s.Name, In: s.In, Out: s.Out, Elapsed: time.Duration(s.ElapsedNS)}
	}
	return out
}

// message is the single line-delimited JSON envelope for every exchange.
// Survivors travel as raw Koopman values; the coordinator rebuilds poly.P
// from the spec width.
type message struct {
	Type   string      `json:"type"`
	Worker string      `json:"worker,omitempty"`
	Spec   *SearchSpec `json:"spec,omitempty"`
	// Zero is meaningful for all numeric fields (job 0 starts at index
	// 0 and an empty shard has 0 candidates), so none are omitempty.
	JobID     uint64   `json:"job_id"`
	Start     uint64   `json:"start"`
	End       uint64   `json:"end"`
	Canonical uint64   `json:"canonical"`
	Survivors []uint64 `json:"survivors,omitempty"`
	ElapsedNS int64    `json:"elapsed_ns"`
	// LeaseNS, on a job message, is the coordinator's lease timeout:
	// workers derive their heartbeat cadence from it (0 = coordinator
	// predates heartbeats; don't send any).
	LeaseNS int64 `json:"lease_ns,omitempty"`
	// Progress, on a heartbeat, is the number of canonical candidates
	// the worker has evaluated so far in the job being renewed. The
	// coordinator turns successive deltas into a live throughput
	// estimate that feeds adaptive job sizing and sweep ETAs.
	Progress uint64 `json:"progress,omitempty"`
	// Held, on a heartbeat, lists completed jobs whose results the
	// worker is still coalescing into a batch; each gets a bare lease
	// renewal (no progress) so one message renews the whole set.
	Held []uint64 `json:"held,omitempty"`
	// Stages, on a result message, carries the job's per-stage filter
	// statistics for coordinator-side aggregation.
	Stages []StageStat `json:"stages,omitempty"`
	// BatchOK, on a job message, advertises that this coordinator
	// understands result_batch messages; workers never batch without it,
	// so old coordinators keep working against new workers.
	BatchOK bool `json:"batch_ok,omitempty"`
	// Batch, on a result_batch message, is the base64 of the gzipped
	// LDJSON result lines being coalesced — the same lines the worker
	// would otherwise have sent one message each. Count echoes how many
	// for logging without decompression.
	Batch string `json:"batch,omitempty"`
	Count int    `json:"count,omitempty"`
	// TraceID and ParentSpan, on a job message, propagate the
	// coordinator's per-grant trace context; the worker echoes TraceID on
	// the result and parents its spans under ParentSpan. Spans, on a
	// result, carries the worker's completed spans for coordinator-side
	// assembly. All three are ignored by peers that predate tracing, so
	// mixed fleets interoperate (see trace.go).
	TraceID    string     `json:"trace_id,omitempty"`
	ParentSpan string     `json:"parent_span,omitempty"`
	Spans      []WireSpan `json:"spans,omitempty"`
}

// maxBatchResults bounds how many results one result_batch may carry —
// far above any sane ResultBatch setting. It bounds the message count
// only; maxBatchDecodedBytes bounds their total decompressed size.
const maxBatchResults = 4096

// maxBatchDecodedBytes caps the decompressed size of one result_batch
// (256 MiB — room for thousands of jobs with millions of survivors).
// Without it a few-KB gzip bomb could expand into coordinator memory
// unboundedly; the per-result path has no such amplification because
// the sender must actually transmit every byte.
const maxBatchDecodedBytes = 256 << 20

// encodeBatch coalesces result messages into one result_batch envelope:
// the results are serialized as LDJSON exactly as they would travel
// individually, gzipped and base64-wrapped. Survivor lists are highly
// compressible (long runs of nearby integers), which is what makes many
// small adaptive jobs affordable on the wire.
func encodeBatch(worker string, results []*message) (*message, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	enc := json.NewEncoder(zw)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return nil, fmt.Errorf("dist: encoding result batch: %w", err)
		}
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("dist: compressing result batch: %w", err)
	}
	return &message{
		Type:   msgResultBatch,
		Worker: worker,
		Batch:  base64.StdEncoding.EncodeToString(buf.Bytes()),
		Count:  len(results),
	}, nil
}

// decodeBatch is the inverse of encodeBatch, treating the frame as
// untrusted input: the claimed Count is validated up front and enforced
// while streaming, decompression is capped at maxBatchDecodedBytes, and
// every inner message must be a result — the type check handleConn's
// switch performs for the per-result path.
func decodeBatch(m *message) ([]*message, error) {
	if m.Count < 1 || m.Count > maxBatchResults {
		return nil, fmt.Errorf("dist: result batch from %q claims %d results (limit %d)",
			m.Worker, m.Count, maxBatchResults)
	}
	raw, err := base64.StdEncoding.DecodeString(m.Batch)
	if err != nil {
		return nil, fmt.Errorf("dist: bad result batch from %q: %w", m.Worker, err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("dist: bad result batch from %q: %w", m.Worker, err)
	}
	defer zr.Close()
	// A truncated read at the cap surfaces as a decode error below.
	dec := json.NewDecoder(io.LimitReader(zr, maxBatchDecodedBytes))
	out := make([]*message, 0, m.Count)
	for {
		var r message
		if err := dec.Decode(&r); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dist: bad result batch from %q: %w", m.Worker, err)
		}
		if r.Type != msgResult {
			return nil, fmt.Errorf("dist: result batch from %q smuggles a %q message",
				m.Worker, r.Type)
		}
		if len(out) == m.Count {
			return nil, fmt.Errorf("dist: result batch from %q holds more than its claimed %d results",
				m.Worker, m.Count)
		}
		out = append(out, &r)
	}
	if m.Count != len(out) {
		return nil, fmt.Errorf("dist: result batch from %q claims %d results, holds %d",
			m.Worker, m.Count, len(out))
	}
	return out, nil
}

// wire frames line-delimited JSON messages over a connection. Decoding
// streams through json.Decoder, so a result carrying millions of
// survivors (a permissive filter on a large job) has no fixed line-size
// cap that could wedge the job in a requeue loop. Sends are serialized
// by a mutex because a worker's heartbeat goroutine writes concurrently
// with its request/reply loop.
type wire struct {
	conn net.Conn
	mu   sync.Mutex
	enc  *json.Encoder
	dec  *json.Decoder
}

func newWire(conn net.Conn) *wire {
	return &wire{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
}

// send writes one message as a single JSON line.
func (w *wire) send(m *message) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(m)
}

// recv blocks for the next message.
func (w *wire) recv() (*message, error) {
	var m message
	if err := w.dec.Decode(&m); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("dist: connection closed")
		}
		return nil, fmt.Errorf("dist: bad message: %w", err)
	}
	return &m, nil
}

func (w *wire) close() error { return w.conn.Close() }

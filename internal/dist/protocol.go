package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
)

// SearchSpec is the search every job belongs to, fixed for the lifetime
// of a Coordinator and echoed in each job message so workers need no
// out-of-band configuration.
type SearchSpec struct {
	// Width of the polynomials to search (2..32).
	Width int `json:"width"`
	// MinHD is the Hamming distance to demand.
	MinHD int `json:"min_hd"`
	// Lengths is the increasing-length filter schedule (bits); the last
	// entry is the target length.
	Lengths []int `json:"lengths"`
}

// Message types. The worker initiates every exchange and the coordinator
// answers each worker message with exactly one reply:
//
//	worker → coord: next   (idle, requesting work; carries worker id)
//	worker → coord: result (a completed job; also an implicit next)
//	coord → worker: job      (an assignment: spec + [start, end))
//	coord → worker: wait     (no job available now — leases outstanding)
//	coord → worker: shutdown (space fully covered; disconnect)
const (
	msgNext     = "next"
	msgResult   = "result"
	msgJob      = "job"
	msgWait     = "wait"
	msgShutdown = "shutdown"
)

// message is the single line-delimited JSON envelope for every exchange.
// Survivors travel as raw Koopman values; the coordinator rebuilds poly.P
// from the spec width.
type message struct {
	Type   string      `json:"type"`
	Worker string      `json:"worker,omitempty"`
	Spec   *SearchSpec `json:"spec,omitempty"`
	// Zero is meaningful for all numeric fields (job 0 starts at index
	// 0 and an empty shard has 0 candidates), so none are omitempty.
	JobID     uint64   `json:"job_id"`
	Start     uint64   `json:"start"`
	End       uint64   `json:"end"`
	Canonical uint64   `json:"canonical"`
	Survivors []uint64 `json:"survivors,omitempty"`
	ElapsedNS int64    `json:"elapsed_ns"`
}

// wire frames line-delimited JSON messages over a connection. Decoding
// streams through json.Decoder, so a result carrying millions of
// survivors (a permissive filter on a large job) has no fixed line-size
// cap that could wedge the job in a requeue loop.
type wire struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func newWire(conn net.Conn) *wire {
	return &wire{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
}

// send writes one message as a single JSON line.
func (w *wire) send(m *message) error {
	return w.enc.Encode(m)
}

// recv blocks for the next message.
func (w *wire) recv() (*message, error) {
	var m message
	if err := w.dec.Decode(&m); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("dist: connection closed")
		}
		return nil, fmt.Errorf("dist: bad message: %w", err)
	}
	return &m, nil
}

func (w *wire) close() error { return w.conn.Close() }

package dist_test

import (
	"context"
	"testing"
	"time"

	"koopmancrc/internal/dist"
)

// scripted drives one raw protocol client through a sweep one
// assignment at a time, reporting genuine results with a crafted
// per-job elapsed time — an "artificial" worker whose throughput the
// coordinator observes without the test paying real wall time.
type scripted struct {
	t         *testing.T
	c         *rawClient
	id        string
	elapsedNS int64
	sizes     []uint64 // raw-index size of every job granted, in order
	pending   map[string]any
	finished  bool
}

// step processes at most one assignment: request (or pick up the
// pending reply), and if it is a job, record its size and report a
// genuine result carrying the scripted elapsed time.
func (s *scripted) step(spec dist.SearchSpec) {
	s.t.Helper()
	var reply map[string]any
	if s.pending != nil {
		reply = s.pending
		s.pending = nil
	} else {
		s.c.send(map[string]any{"type": "next", "worker": s.id})
		reply = s.c.recv()
	}
	switch reply["type"] {
	case "shutdown":
		s.finished = true
	case "wait":
		// Poll again on the next step.
	case "job":
		start, end := uint64(reply["start"].(float64)), uint64(reply["end"].(float64))
		s.sizes = append(s.sizes, end-start)
		canonical, survivors := computeJob(s.t, spec, start, end)
		s.c.send(map[string]any{
			"type": "result", "worker": s.id, "job_id": reply["job_id"],
			"canonical": canonical, "survivors": survivors, "elapsed_ns": s.elapsedNS,
		})
		s.pending = s.c.recv() // the result's reply is the next assignment
	default:
		s.t.Fatalf("worker %s: unexpected reply %v", s.id, reply["type"])
	}
}

// TestAdaptiveSizingShrinksSlowWorkerGrants is the acceptance scenario:
// a three-worker sweep where one worker is artificially slow. Later
// grants to the slow worker must shrink (down to the clamp floor) while
// the fast worker's grow (up to the clamp ceiling), and the merged
// result must still exactly match a single-machine run.
func TestAdaptiveSizingShrinksSlowWorkerGrants(t *testing.T) {
	const (
		base    = 8
		minJob  = 1
		maxJob  = 32
		slowNS  = int64(10 * time.Second)       // ~0.5 candidates/s
		fastNS  = int64(time.Millisecond)       // ~5000 candidates/s
		midNS   = int64(100 * time.Millisecond) // ~50 candidates/s
		timeout = time.Minute
	)
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:          smallSpec,
		JobSize:       base,
		TargetJobTime: 100 * time.Millisecond,
		MinJobSize:    minJob,
		MaxJobSize:    maxJob,
		LeaseTimeout:  time.Minute,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	workers := []*scripted{
		{t: t, c: dialRaw(t, coord.Addr()), id: "tortoise", elapsedNS: slowNS},
		{t: t, c: dialRaw(t, coord.Addr()), id: "hare", elapsedNS: fastNS},
		{t: t, c: dialRaw(t, coord.Addr()), id: "steady", elapsedNS: midNS},
	}
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, w := range workers {
			if !w.finished {
				w.step(smallSpec)
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep did not complete in time")
		}
	}

	slow, fast := workers[0], workers[1]
	if len(slow.sizes) < 2 || len(fast.sizes) < 2 {
		t.Fatalf("expected multiple grants per worker, got slow=%v fast=%v", slow.sizes, fast.sizes)
	}
	if slow.sizes[0] != base {
		t.Errorf("slow worker's first grant = %d, want the base size %d (no data yet)", slow.sizes[0], base)
	}
	for i, sz := range slow.sizes[1:] {
		if sz >= base {
			t.Errorf("slow worker grant %d = %d indices, want < base %d once its rate is known", i+1, sz, base)
		}
	}
	if last := slow.sizes[len(slow.sizes)-1]; last != minJob {
		t.Errorf("slow worker's final grant = %d, want the clamp floor %d", last, minJob)
	}
	sawCeiling := false
	for _, sz := range fast.sizes[1:] {
		if sz == maxJob {
			sawCeiling = true
		}
		if sz < base {
			t.Errorf("fast worker got a grant of %d indices, should never shrink below base %d", sz, base)
		}
	}
	if !sawCeiling {
		t.Errorf("fast worker's grants %v never reached the clamp ceiling %d", fast.sizes, maxJob)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
}

// TestAdaptiveClampFloorOnAbsurdThroughput is the regression test for
// sizing pathologies: a worker whose reported throughput is zero (no
// candidates), absurd (zero elapsed, an infinite-rate sample) or
// vanishingly small must keep receiving jobs of at least one index —
// never an empty grant — and the sweep must still terminate.
func TestAdaptiveClampFloorOnAbsurdThroughput(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:          smallSpec,
		JobSize:       16,
		TargetJobTime: time.Millisecond, // tiny target: ideal sizes round toward zero
		MinJobSize:    0,                // explicit zero must still floor at one index
		MaxJobSize:    64,
		LeaseTimeout:  time.Minute,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Interleave two pathologies: a glacial worker (hours per job,
	// vanishing rate) and a worker reporting zero elapsed (an
	// infinite-rate sample that must be discarded, not turned into a
	// huge or empty grant).
	workers := []*scripted{
		{t: t, c: dialRaw(t, coord.Addr()), id: "glacial", elapsedNS: int64(10 * time.Hour)},
		{t: t, c: dialRaw(t, coord.Addr()), id: "instant", elapsedNS: 0},
	}
	deadline := time.Now().Add(time.Minute)
	for {
		all := true
		for _, w := range workers {
			if !w.finished {
				w.step(smallSpec)
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep starved: did not complete with pathological throughput reports")
		}
	}
	for _, w := range workers {
		for i, sz := range w.sizes {
			if sz == 0 {
				t.Errorf("worker %s grant %d is empty; adaptive sizing must floor at one index", w.id, i)
			}
		}
	}
	// The glacial worker's rate is finite but microscopic: its grants
	// must sit exactly on the one-index floor once observed.
	glacial := workers[0]
	if len(glacial.sizes) > 1 {
		if last := glacial.sizes[len(glacial.sizes)-1]; last != 1 {
			t.Errorf("glacial worker's final grant = %d, want the implicit floor 1", last)
		}
	}
	// The zero-elapsed samples carry no signal, so the instant worker
	// keeps receiving base-size grants — except possibly a final slice
	// clipped by the end of the space.
	instant := workers[1]
	for i, sz := range instant.sizes {
		if i < len(instant.sizes)-1 && sz != 16 {
			t.Errorf("instant worker grant %d = %d, want base 16 (infinite-rate samples must be ignored)", i, sz)
		}
		if i == len(instant.sizes)-1 && sz > 16 {
			t.Errorf("instant worker's final grant = %d, want <= base 16", sz)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
}

// TestHeartbeatProgressDrivesSizing: a worker that has never completed
// a job still gets adaptively sized grants, because heartbeat progress
// deltas feed the throughput estimate mid-job.
func TestHeartbeatProgressDrivesSizing(t *testing.T) {
	const maxJob = 64
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:          smallSpec,
		JobSize:       4,
		TargetJobTime: time.Second,
		MaxJobSize:    maxJob,
		LeaseTimeout:  time.Minute,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	w := dialRaw(t, coord.Addr())
	jobMsg, ok := w.takeJob("pulse")
	if !ok {
		t.Fatalf("got %v, want a job", jobMsg["type"])
	}
	// Report enormous progress over a few milliseconds: a very fast
	// worker, observed purely through heartbeats.
	time.Sleep(20 * time.Millisecond)
	w.send(map[string]any{"type": "heartbeat", "worker": "pulse", "job_id": jobMsg["job_id"], "progress": 100000})
	time.Sleep(20 * time.Millisecond) // let the coordinator process the heartbeat

	// Complete the job with a zero elapsed time, which the estimator
	// discards — so the next grant's size is driven by the heartbeat
	// alone.
	w.finishJob(smallSpec, "pulse", jobMsg)
	reply := w.recv()
	if reply["type"] != "job" {
		t.Fatalf("after result: got %v, want the next job", reply["type"])
	}
	size := uint64(reply["end"].(float64)) - uint64(reply["start"].(float64))
	if size != maxJob {
		t.Errorf("grant after fast heartbeats = %d indices, want the ceiling %d", size, maxJob)
	}
}

package dist_test

import (
	"context"
	"testing"
	"time"

	"koopmancrc/internal/dist"
)

// TestBatchedWorkerMatchesSingleMachine drives a full sweep through a
// worker that coalesces results aggressively (tiny jobs, small batch)
// and checks the merged summary is identical to a single-machine run —
// batching must change wire traffic, never accounting.
func TestBatchedWorkerMatchesSingleMachine(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      4, // 32 jobs, so batches genuinely coalesce
		LeaseTimeout: 30 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{
		ID: "batcher", ResultBatch: 4, Logf: t.Logf,
	})
	done := make(chan error, 1)
	go func() {
		_, err := w.Run(context.Background())
		done <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
	if w.BatchesSent() == 0 {
		t.Error("worker never sent a result batch despite ResultBatch=4 over 32 jobs")
	}
	if sum.Jobs != 32 {
		t.Errorf("jobs = %d, want 32", sum.Jobs)
	}
}

// TestBatchingDisabledSendsPlainResults pins the legacy path: with
// coalescing off every result is its own message and the sweep still
// completes exactly.
func TestBatchingDisabledSendsPlainResults(t *testing.T) {
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         smallSpec,
		JobSize:      8,
		LeaseTimeout: 30 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{
		ID: "plain", ResultBatch: 1, Logf: t.Logf,
	})
	done := make(chan error, 1)
	go func() {
		_, err := w.Run(context.Background())
		done <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	checkMatchesSingleMachine(t, smallSpec, sum)
	if w.BatchesSent() != 0 {
		t.Errorf("ResultBatch=1 worker sent %d batches, want 0", w.BatchesSent())
	}
}

package hamming

import "fmt"

// Weight returns the exact number of undetectable error patterns of exactly
// w bits within the codeword of the given data-word length — the paper's
// weight W_w. Exact computation is supported for w <= 4; the paper itself
// notes that exact weights beyond the first non-zero one are "largely
// unimportant" (§3) and that exact weighting of the HD=6 survivors was
// impractical (§4.2). Use WeightBrute for small lengths and higher weights.
func (e *Evaluator) Weight(w, dataLen int) (uint64, error) {
	if dataLen < 1 {
		return 0, fmt.Errorf("hamming: invalid data length %d", dataLen)
	}
	switch w {
	case 1:
		return 0, nil
	case 2:
		return e.weight2(dataLen)
	case 3:
		return e.weight3(dataLen)
	case 4:
		return e.weight4(dataLen)
	default:
		return 0, fmt.Errorf("hamming: exact weight computation supports w <= 4, got %d (use WeightBrute)", w)
	}
}

// weight2 counts pairs {i, i+k*period}: the 2-bit patterns x^i (1 + x^(kp)).
func (e *Evaluator) weight2(dataLen int) (uint64, error) {
	period, err := e.Period()
	if err != nil {
		return 0, err
	}
	n := uint64(e.codewordLen(dataLen))
	if steps := (n - 1) / period; steps > uint64(e.opts.MaxProbes) {
		return 0, fmt.Errorf("%w: exact W2 at %d codeword bits needs %d scan steps (limit %d)",
			ErrBudgetExceeded, n, steps, e.opts.MaxProbes)
	}
	if err := e.begin(2, dataLen); err != nil {
		return 0, err
	}
	defer e.spanStart(SpanW2Count, 2, dataLen)()
	var total uint64
	for k := uint64(1); k*period <= n-1; k++ {
		total += n - k*period
		e.Stats.Probes++
		if err := e.tick(2, dataLen, 1); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// weight3 counts weight-3 multiples of G by enumerating canonical patterns
// {0, a, c} (bit 0 set) and crediting each with its N-c translates.
func (e *Evaluator) weight3(dataLen int) (uint64, error) {
	n := e.codewordLen(dataLen)
	if int64(n-1) > e.opts.MaxProbes {
		return 0, fmt.Errorf("%w: exact W3 at %d codeword bits needs %d scan steps (limit %d)",
			ErrBudgetExceeded, n, n-1, e.opts.MaxProbes)
	}
	if err := e.begin(3, dataLen); err != nil {
		return 0, err
	}
	defer e.spanStart(SpanW3Count, 3, dataLen)()
	syn := e.syndromes(n)
	counts := newU32Count(n)
	var total uint64
	for c := 1; c < n; c++ {
		e.Stats.Probes++
		if err := e.tick(3, dataLen, 1); err != nil {
			return 0, err
		}
		if m := counts.count(syn[c]); m > 0 {
			total += uint64(m) * uint64(n-c)
		}
		counts.add(1 ^ syn[c])
	}
	e.Stats.StoreOps += int64(n - 1)
	return total, nil
}

// weight4 counts weight-4 multiples of G via pair-syndrome collisions:
// every weight-4 codeword {i,j,k,l} is counted by exactly three unordered
// pairs of position pairs with equal syndromes, so
//
//	W4 = sum over syndrome values s of C(m_s, 2) / 3
//
// where m_s is the number of position pairs with syndrome s. The formula
// requires W2 = 0 at this length (otherwise pairs may share positions),
// which is detected via zero-syndrome runs and reported as an error.
func (e *Evaluator) weight4(dataLen int) (uint64, error) {
	n := e.codewordLen(dataLen)
	pairs := int64(n) * int64(n-1) / 2
	if pairs > int64(e.opts.MaxPairBuffer) {
		return 0, fmt.Errorf("%w: exact W4 at %d codeword bits needs %d pair entries (limit %d)",
			ErrBudgetExceeded, n, pairs, e.opts.MaxPairBuffer)
	}
	if err := e.begin(4, dataLen); err != nil {
		return 0, err
	}
	defer e.spanStart(SpanW4Count, 4, dataLen)()
	syn := e.syndromes(n)
	buf := make([]uint32, pairs)
	idx := 0
	for i := 0; i < n; i++ {
		if err := e.tick(4, dataLen, int64(n-i-1)); err != nil {
			return 0, err
		}
		si := syn[i]
		for j := i + 1; j < n; j++ {
			buf[idx] = si ^ syn[j]
			idx++
		}
	}
	e.Stats.StoreOps += pairs
	sorted := radixSortUint32(buf, nil)
	if len(sorted) > 0 && sorted[0] == 0 {
		// A zero pair syndrome is a weight-2 codeword: pairs may then share
		// positions and the three-pairings-per-codeword argument breaks.
		return 0, fmt.Errorf("hamming: W2 > 0 at data length %d; pair-collision W4 formula inapplicable", dataLen)
	}
	var matches uint64
	run := uint64(1)
	for i := 1; i <= len(sorted); i++ {
		if i < len(sorted) && sorted[i] == sorted[i-1] {
			run++
			continue
		}
		if run > 1 {
			matches += run * (run - 1) / 2
		}
		run = 1
	}
	if matches%3 != 0 {
		return 0, fmt.Errorf("hamming: internal error: %d pair matches not divisible by 3", matches)
	}
	return matches / 3, nil
}

// Weights returns exact W2..Wmax at the given length (max <= 4), the
// paper's weight-vector notation {W2, W3, W4, ...}.
func (e *Evaluator) Weights(dataLen, max int) ([]uint64, error) {
	if max < 2 || max > 4 {
		return nil, fmt.Errorf("hamming: Weights supports max in 2..4, got %d", max)
	}
	out := make([]uint64, 0, max-1)
	for w := 2; w <= max; w++ {
		v, err := e.Weight(w, dataLen)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

package hamming

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Band is a maximal range of data-word lengths sharing one Hamming
// distance, a cell of the paper's Table 1.
type Band struct {
	HD      int  // Hamming distance over the range
	AtLeast bool // true if HD is a lower bound (profile's maxHD reached)
	From    int  // first data-word length, inclusive, in bits
	To      int  // last data-word length, inclusive, in bits
}

// Transition records where weight w first becomes non-zero.
type Transition struct {
	W        int           // pattern weight
	FirstLen int           // smallest data-word length with W_w > 0
	Witness  []int         // example undetectable pattern (bit positions)
	Elapsed  time.Duration // search time, for the §4.1 cost discussion
}

// Profile is the complete HD-vs-length characterisation of a polynomial up
// to MaxLen — one column of the paper's Table 1 / one curve of Figure 1.
type Profile struct {
	Poly        string
	MaxLen      int
	MaxHD       int
	Transitions []Transition // ascending by weight; only weights that occur
	Bands       []Band       // ascending by From, covering [1, MaxLen]
}

// Profile computes the band structure up to maxLen data bits, classifying
// Hamming distances up to maxHD. It discovers boundaries weight by weight,
// capping each search at the smallest boundary already found (lengths
// beyond it already have a lower HD, so the exact higher-weight boundary
// there is irrelevant) — the same observation that drives the paper's
// inverse filtering.
func (e *Evaluator) Profile(maxLen, maxHD int) (*Profile, error) {
	if maxLen < 1 {
		return nil, fmt.Errorf("hamming: invalid maxLen %d", maxLen)
	}
	if maxHD < 2 {
		return nil, fmt.Errorf("hamming: invalid maxHD %d", maxHD)
	}
	p := &Profile{Poly: e.p.String(), MaxLen: maxLen, MaxHD: maxHD}
	limit := maxLen
	for w := 2; w <= maxHD && limit >= 1; w++ {
		start := time.Now()
		first, wit, found, err := e.FirstDataLen(w, limit)
		if err != nil {
			return nil, fmt.Errorf("weight-%d boundary for %v: %w", w, e.p, err)
		}
		if !found {
			continue
		}
		p.Transitions = append(p.Transitions, Transition{
			W: w, FirstLen: first, Witness: wit, Elapsed: time.Since(start),
		})
		if first-1 < limit {
			limit = first - 1
		}
	}
	p.Bands = bandsFromTransitions(p.Transitions, maxLen, maxHD)
	return p, nil
}

// BandsFromTransitions converts weight boundaries into the contiguous HD
// bands covering [1, maxLen], exactly as Profile does — exported so
// memoizing callers that discover transitions incrementally can build the
// same band structure.
func BandsFromTransitions(ts []Transition, maxLen, maxHD int) []Band {
	return bandsFromTransitions(ts, maxLen, maxHD)
}

// bandsFromTransitions converts weight boundaries into contiguous HD bands.
func bandsFromTransitions(ts []Transition, maxLen, maxHD int) []Band {
	events := append([]Transition(nil), ts...)
	sort.Slice(events, func(i, j int) bool { return events[i].FirstLen < events[j].FirstLen })
	var bands []Band
	cur := 1
	minW := 0 // 0 = no boundary active yet: HD is at least maxHD+1
	flush := func(to int) {
		if to < cur {
			return
		}
		if minW == 0 {
			bands = append(bands, Band{HD: maxHD + 1, AtLeast: true, From: cur, To: to})
		} else {
			bands = append(bands, Band{HD: minW, From: cur, To: to})
		}
		cur = to + 1
	}
	for i := 0; i < len(events); {
		l := events[i].FirstLen
		if l > maxLen {
			break
		}
		flush(l - 1)
		for i < len(events) && events[i].FirstLen == l {
			if minW == 0 || events[i].W < minW {
				minW = events[i].W
			}
			i++
		}
	}
	flush(maxLen)
	return bands
}

// HDAtLen returns the Hamming distance at the given length according to the
// profile (lower bound if the band is marked AtLeast).
func (p *Profile) HDAtLen(dataLen int) (hd int, atLeast bool, ok bool) {
	for _, b := range p.Bands {
		if dataLen >= b.From && dataLen <= b.To {
			return b.HD, b.AtLeast, true
		}
	}
	return 0, false, false
}

// BandFor returns the band containing the given HD value, if any.
func (p *Profile) BandFor(hd int) (Band, bool) {
	for _, b := range p.Bands {
		if b.HD == hd && !b.AtLeast {
			return b, true
		}
	}
	return Band{}, false
}

// MaxLenAtHD returns the largest length at which the profile guarantees at
// least the given Hamming distance — the figure of merit the paper quotes
// (e.g. "HD=6 up to 16,360 bits" for 0xBA0DC66B).
func (p *Profile) MaxLenAtHD(hd int) (int, bool) {
	best := 0
	for _, b := range p.Bands {
		if b.HD >= hd && b.To > best {
			best = b.To
		}
	}
	return best, best > 0
}

// String renders the profile in the paper's Table 1 cell style.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (to %d bits):", p.Poly, p.MaxLen)
	for _, b := range p.Bands {
		ge := ""
		if b.AtLeast {
			ge = ">="
		}
		fmt.Fprintf(&sb, " HD%s%d:%d-%d", ge, b.HD, b.From, b.To)
	}
	return sb.String()
}

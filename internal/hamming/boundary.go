package hamming

import "fmt"

// Strategy selects how FirstDataLen locates a weight boundary for w >= 5.
type Strategy int

// Available strategies.
const (
	// StrategyIncreasing is the paper's §4.1 method: filter at
	// geometrically increasing lengths until the breakpoint is straddled,
	// then binary-subdivide the final interval. Cheap evaluations at short
	// lengths reject quickly; only the last interval pays full cost.
	StrategyIncreasing Strategy = iota + 1
	// StrategyDirect evaluates the full length first and only then binary
	// searches. It is the baseline the paper's method is compared against.
	StrategyDirect
)

// FirstDataLen returns the smallest data-word length (up to maxLen) at
// which some undetectable error pattern of exactly w bits fits, together
// with a witness pattern. found is false if no such length exists within
// maxLen.
func (e *Evaluator) FirstDataLen(w, maxLen int) (int, []int, bool, error) {
	return e.FirstDataLenStrategy(w, maxLen, StrategyIncreasing)
}

// FirstDataLenStrategy is FirstDataLen with an explicit search strategy for
// the w >= 5 boundary search.
func (e *Evaluator) FirstDataLenStrategy(w, maxLen int, s Strategy) (int, []int, bool, error) {
	if w < 2 {
		return 0, nil, false, fmt.Errorf("hamming: invalid weight %d", w)
	}
	if maxLen < 1 {
		return 0, nil, false, nil
	}
	switch w {
	case 2:
		period, err := e.Period()
		if err != nil {
			return 0, nil, false, err
		}
		// First 2-bit pattern spans positions {0, period}: codeword length
		// period+1, data length period+1-width.
		if period > uint64(e.codewordLen(maxLen)-1) {
			return 0, nil, false, nil
		}
		return e.dataLenFor(int(period)), []int{0, int(period)}, true, nil
	case 3:
		return e.firstLen3(maxLen)
	case 4:
		return e.firstLen4(maxLen)
	default:
		return e.firstLenSearch(w, maxLen, s)
	}
}

// firstLen3 scans codeword positions once, maintaining the syndromes of all
// {0,a} prefixes: the first position c whose syndrome completes a weight-3
// pattern is the boundary.
func (e *Evaluator) firstLen3(maxLen int) (int, []int, bool, error) {
	if err := e.begin(3, maxLen); err != nil {
		return 0, nil, false, err
	}
	defer e.spanStart(SpanW3Scan, 3, maxLen)()
	n := e.codewordLen(maxLen)
	syn := e.syndromes(n)
	m := newU32Map(n)
	for c := 1; c < n; c++ {
		if err := e.tick(3, maxLen, 1); err != nil {
			return 0, nil, false, err
		}
		if a := m.get(syn[c]); a >= 0 && int(a) != c {
			wit := []int{0, int(a), c}
			if err := e.verifyWitness(3, n, wit); err != nil {
				return 0, nil, false, err
			}
			e.Stats.EarlyExits++
			return e.dataLenFor(c), wit, true, nil
		}
		m.put(1^syn[c], int32(c))
	}
	e.Stats.Probes += int64(n)
	return 0, nil, false, nil
}

// firstLen4 is the incremental pair scan: for each new maximum position c it
// probes every pair {b,c} against the stored {0,a} syndromes. The first hit
// is the exact weight-4 boundary; the scan is O(c*^2) with a small
// cache-resident hash table.
func (e *Evaluator) firstLen4(maxLen int) (int, []int, bool, error) {
	if err := e.begin(4, maxLen); err != nil {
		return 0, nil, false, err
	}
	defer e.spanStart(SpanW4Scan, 4, maxLen)()
	n := e.codewordLen(maxLen)
	syn := e.syndromes(n)
	m := newU32Map(n)
	// Probes fold into Stats row by row (not once at the end) so the
	// counts carried by progress events stay live through what can be a
	// multi-minute scan; start anchors this call's budget check.
	start := e.Stats.Probes
	for c := 1; c < n; c++ {
		if err := e.tick(4, maxLen, int64(c-1)); err != nil {
			return 0, nil, false, err
		}
		sc := syn[c]
		for b := 1; b < c; b++ {
			if a := m.get(syn[b] ^ sc); a >= 0 {
				ia := int(a)
				if ia == b || ia == c {
					continue // degenerate: implies a lower-weight pattern
				}
				wit := []int{0, ia, b, c}
				if ia > b {
					wit = []int{0, b, ia, c}
				}
				if err := e.verifyWitness(4, n, wit); err != nil {
					return 0, nil, false, err
				}
				e.Stats.EarlyExits++
				e.Stats.Probes += int64(b)
				return e.dataLenFor(c), wit, true, nil
			}
		}
		e.Stats.Probes += int64(c - 1)
		if e.Stats.Probes-start > e.opts.MaxProbes {
			return 0, nil, false, fmt.Errorf("%w: weight-4 scan at %d codeword bits", ErrBudgetExceeded, c)
		}
		m.put(1^sc, int32(c))
	}
	return 0, nil, false, nil
}

// firstLenSearch locates a w>=5 boundary with existence queries.
func (e *Evaluator) firstLenSearch(w, maxLen int, s Strategy) (int, []int, bool, error) {
	defer e.spanStart(SpanBoundary, w, maxLen)()
	// lo is the largest length known to have no weight-w pattern; hi the
	// smallest known to have one.
	lo, hi := 0, 0
	var hiWitness []int
	switch s {
	case StrategyDirect:
		wit, found, err := e.Exists(w, maxLen)
		if err != nil {
			return 0, nil, false, err
		}
		if !found {
			return 0, nil, false, nil
		}
		hi, hiWitness = maxLen, wit
	default: // StrategyIncreasing
		prev := 0
		for l := 8; ; l *= 2 {
			if l > maxLen {
				l = maxLen
			}
			wit, found, err := e.Exists(w, l)
			if err != nil {
				return 0, nil, false, err
			}
			if found {
				lo, hi, hiWitness = prev, l, wit
				break
			}
			prev = l
			if l == maxLen {
				return 0, nil, false, nil
			}
		}
		lo = prev
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		wit, found, err := e.Exists(w, mid)
		if err != nil {
			return 0, nil, false, err
		}
		if found {
			hi, hiWitness = mid, wit
		} else {
			lo = mid
		}
	}
	return hi, hiWitness, true, nil
}

// HDAt returns the exact Hamming distance at the given data-word length,
// searching weights up to maxHD. If no undetectable pattern of weight <=
// maxHD exists, it returns maxHD+1 with exact = false (the true HD is at
// least that).
func (e *Evaluator) HDAt(dataLen, maxHD int) (hd int, exact bool, err error) {
	for w := 2; w <= maxHD; w++ {
		_, found, err := e.Exists(w, dataLen)
		if err != nil {
			return 0, false, err
		}
		if found {
			return w, true, nil
		}
	}
	return maxHD + 1, false, nil
}

// MeetsHD reports whether the polynomial attains at least the given Hamming
// distance at the data-word length: no undetectable pattern of weight
// < minHD exists. This is the paper's filtering predicate — evaluation
// stops at the first non-zero weight rather than computing exact weights.
func (e *Evaluator) MeetsHD(dataLen, minHD int) (bool, error) {
	for w := 2; w < minHD; w++ {
		_, found, err := e.Exists(w, dataLen)
		if err != nil {
			return false, err
		}
		if found {
			return false, nil
		}
	}
	return true, nil
}

// MeetsHDAtLengths applies MeetsHD at each length in order — the paper's
// "filtering with increasing lengths": a polynomial rejected at a short
// length is never evaluated at the expensive longer ones.
func (e *Evaluator) MeetsHDAtLengths(lengths []int, minHD int) (bool, error) {
	for _, l := range lengths {
		ok, err := e.MeetsHD(l, minHD)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

package hamming

import "fmt"

// Order selects the enumeration order of the brute-force engine.
type Order int

// Enumeration orders.
const (
	// OrderLex enumerates patterns in plain combinadic order.
	OrderLex Order = iota + 1
	// OrderFCSFirst tries patterns with one or two bits inside the FCS
	// field before all others — the paper's §4.1 observation that most
	// polynomials' first undetectable error involves FCS bits, which makes
	// the early bailout trigger sooner.
	OrderFCSFirst
)

// ExistsBrute searches for a weight-w undetectable pattern by direct
// enumeration of bit combinations, exactly as the paper's search software
// did: canonical patterns (position 0 fixed, justified by dividing any
// multiple of G by x), early bailout at the first hit, and an optional
// FCS-bits-first ordering. It is exponentially slower than Exists at long
// lengths and serves as the reference implementation and the subject of the
// §4.1 optimisation benchmarks.
func (e *Evaluator) ExistsBrute(w, dataLen int, order Order) ([]int, bool, error) {
	if w < 1 {
		return nil, false, fmt.Errorf("hamming: invalid weight %d", w)
	}
	if dataLen < 1 {
		return nil, false, fmt.Errorf("hamming: invalid data length %d", dataLen)
	}
	n := e.codewordLen(dataLen)
	if w > n {
		return nil, false, nil
	}
	if w == 1 {
		return nil, false, nil
	}
	syn := e.syndromes(n)
	// Unlike the fast engine's pre-flight estimate, the brute engine
	// enforces its budget during enumeration: early bailout may find an
	// undetectable pattern long before the budget is reached, exactly as
	// the paper's timeout heuristic (§4.1) relies on.
	e.bruteBudget = e.opts.MaxProbes
	switch order {
	case OrderFCSFirst:
		return e.bruteFCSFirst(syn, n, w)
	default:
		pos := make([]int, 0, w-1)
		return e.bruteRange(syn, pos, 1, n, w-1, 1)
	}
}

// bruteRange enumerates `left` further positions from [start, limit) on top
// of accumulated syndrome acc, with early exit.
func (e *Evaluator) bruteRange(syn []uint32, pos []int, start, limit, left int, acc uint32) ([]int, bool, error) {
	if left == 0 {
		e.Stats.Probes++
		if acc == 0 {
			e.Stats.EarlyExits++
			wit := append([]int{0}, pos...)
			return wit, true, nil
		}
		e.bruteBudget--
		if e.bruteBudget <= 0 {
			return nil, false, fmt.Errorf("%w: brute-force enumeration", ErrBudgetExceeded)
		}
		return nil, false, nil
	}
	for i := start; i <= limit-left; i++ {
		pos = append(pos, i)
		if wit, found, err := e.bruteRange(syn, pos, i+1, limit, left-1, acc^syn[i]); found || err != nil {
			return wit, found, err
		}
		pos = pos[:len(pos)-1]
	}
	return nil, false, nil
}

// bruteFCSFirst enumerates canonical patterns grouped by how many of their
// bits (besides the fixed position 0) fall inside the FCS field
// [1, width). Groups with one and zero extra FCS bits — i.e. patterns
// touching the FCS in at most two bits total — are tried first.
func (e *Evaluator) bruteFCSFirst(syn []uint32, n, w int) ([]int, bool, error) {
	fcsEnd := e.width
	if fcsEnd > n {
		fcsEnd = n
	}
	// extra = number of pattern bits in [1, fcsEnd); order 1, 0, 2, 3, ...
	groups := make([]int, 0, w)
	groups = append(groups, 1, 0)
	for g := 2; g <= w-1; g++ {
		groups = append(groups, g)
	}
	for _, extra := range groups {
		if extra > fcsEnd-1 || w-1-extra > n-fcsEnd {
			continue
		}
		pos := make([]int, 0, w-1)
		var recFCS func(start, left int, acc uint32) ([]int, bool, error)
		recFCS = func(start, left int, acc uint32) ([]int, bool, error) {
			if left == 0 {
				// Remaining bits come from the data region [fcsEnd, n).
				return e.bruteRange(syn, pos, fcsEnd, n, w-1-extra, acc)
			}
			for i := start; i <= fcsEnd-left; i++ {
				pos = append(pos, i)
				if wit, found, err := recFCS(i+1, left-1, acc^syn[i]); found || err != nil {
					return wit, found, err
				}
				pos = pos[:len(pos)-1]
			}
			return nil, false, nil
		}
		if wit, found, err := recFCS(1, extra, 1); found || err != nil {
			return wit, found, err
		}
	}
	return nil, false, nil
}

// WeightBrute counts all weight-w multiples of G within the codeword by
// full enumeration (no canonicalisation, no early exit) — the "compute the
// exact weight" baseline that the paper's filtering avoids. Intended for
// small lengths and for validating the fast engine.
func (e *Evaluator) WeightBrute(w, dataLen int) (uint64, error) {
	if w < 1 || dataLen < 1 {
		return 0, fmt.Errorf("hamming: invalid arguments w=%d dataLen=%d", w, dataLen)
	}
	n := e.codewordLen(dataLen)
	if w > n {
		return 0, nil
	}
	if c := binomAtMost(n, w, 1<<62); c > e.opts.MaxProbes {
		return 0, fmt.Errorf("%w: brute-force W%d at %d codeword bits needs %d combinations",
			ErrBudgetExceeded, w, n, c)
	}
	syn := e.syndromes(n)
	var total uint64
	var rec func(start, left int, acc uint32)
	rec = func(start, left int, acc uint32) {
		if left == 0 {
			e.Stats.Probes++
			if acc == 0 {
				total++
			}
			return
		}
		for i := start; i <= n-left; i++ {
			rec(i+1, left-1, acc^syn[i])
		}
	}
	rec(0, w, 0)
	return total, nil
}

// MeetsHDBrute is the paper-faithful filtering predicate: brute-force
// enumeration with early bailout (and optional FCS-first ordering) of all
// weights below minHD.
func (e *Evaluator) MeetsHDBrute(dataLen, minHD int, order Order) (bool, error) {
	for w := 2; w < minHD; w++ {
		_, found, err := e.ExistsBrute(w, dataLen, order)
		if err != nil {
			return false, err
		}
		if found {
			return false, nil
		}
	}
	return true, nil
}

package hamming

import "math/bits"

// u32map is a minimal open-addressed hash map from uint32 keys to int32
// values, tuned for the inner loops of the boundary scans where Go's
// built-in map is too slow. Capacity is fixed at construction; values are
// stored +1 so the zero word means "empty" even for key 0.
type u32map struct {
	slots []uint64 // key<<32 | (value+1)
	shift uint
}

// newU32Map creates a map able to hold n entries at ~50% load.
func newU32Map(n int) *u32map {
	sz := 1
	for sz < 2*n {
		sz <<= 1
	}
	if sz < 16 {
		sz = 16
	}
	return &u32map{
		slots: make([]uint64, sz),
		shift: uint(64 - bits.Len(uint(sz-1))),
	}
}

func (m *u32map) idx(key uint32) int {
	// Fibonacci hashing spreads the syndrome bits across the table.
	return int((uint64(key) * 0x9E3779B97F4A7C15) >> m.shift)
}

// put inserts key->val (no duplicate check: first write wins).
func (m *u32map) put(key uint32, val int32) {
	mask := len(m.slots) - 1
	i := m.idx(key)
	for {
		s := m.slots[i]
		if s == 0 {
			m.slots[i] = uint64(key)<<32 | uint64(uint32(val+1))
			return
		}
		if uint32(s>>32) == key {
			return // keep the first (smallest-position) entry
		}
		i = (i + 1) & mask
	}
}

// get returns the value for key, or -1 if absent.
func (m *u32map) get(key uint32) int32 {
	mask := len(m.slots) - 1
	i := m.idx(key)
	for {
		s := m.slots[i]
		if s == 0 {
			return -1
		}
		if uint32(s>>32) == key {
			return int32(uint32(s)) - 1
		}
		i = (i + 1) & mask
	}
}

// u32count is an open-addressed multiset counter over uint32 keys.
type u32count struct {
	keys   []uint32
	counts []uint32
	used   []bool
	mask   int
	shift  uint
}

func newU32Count(n int) *u32count {
	sz := 1
	for sz < 2*n {
		sz <<= 1
	}
	if sz < 16 {
		sz = 16
	}
	return &u32count{
		keys:   make([]uint32, sz),
		counts: make([]uint32, sz),
		used:   make([]bool, sz),
		mask:   sz - 1,
		shift:  uint(64 - bits.Len(uint(sz-1))),
	}
}

func (m *u32count) idx(key uint32) int {
	return int((uint64(key) * 0x9E3779B97F4A7C15) >> m.shift)
}

// add increments the count of key.
func (m *u32count) add(key uint32) {
	i := m.idx(key)
	for {
		if !m.used[i] {
			m.used[i] = true
			m.keys[i] = key
			m.counts[i] = 1
			return
		}
		if m.keys[i] == key {
			m.counts[i]++
			return
		}
		i = (i + 1) & m.mask
	}
}

// count returns the multiplicity of key.
func (m *u32count) count(key uint32) uint32 {
	i := m.idx(key)
	for {
		if !m.used[i] {
			return 0
		}
		if m.keys[i] == key {
			return m.counts[i]
		}
		i = (i + 1) & m.mask
	}
}

// radixSortUint32 sorts a in place (using scratch of equal length) by four
// byte passes — linear time for the hundreds of millions of pair syndromes
// produced by exact weight-4 counting.
func radixSortUint32(a, scratch []uint32) []uint32 {
	if len(scratch) < len(a) {
		scratch = make([]uint32, len(a))
	}
	src, dst := a, scratch[:len(a)]
	for pass := 0; pass < 4; pass++ {
		shift := uint(8 * pass)
		var count [257]int
		for _, v := range src {
			count[int(byte(v>>shift))+1]++
		}
		for i := 1; i < 257; i++ {
			count[i] += count[i-1]
		}
		for _, v := range src {
			b := byte(v >> shift)
			dst[count[b]] = v
			count[b]++
		}
		src, dst = dst, src
	}
	return src // four passes: result is back in the original slice
}

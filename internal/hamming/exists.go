package hamming

import (
	"fmt"
	"sort"
)

// Exists reports whether an undetectable error pattern of exactly w bits
// fits within the codeword of the given data-word length (dataLen + width
// bits total). On success it returns the sorted bit positions of one such
// pattern — a weight-w multiple of the generator. Position 0 is the lowest
// FCS bit.
//
// Weight 2 follows directly from the polynomial period. Higher weights use
// a meet-in-the-middle join over position syndromes: a canonical pattern
// contains position 0, its remaining w-1 positions are split into a stored
// p-subset side and a probed q-subset side, and a probe hitting a stored
// syndrome value is exactly an undetectable pattern (up to position
// overlap, which is re-verified before reporting).
func (e *Evaluator) Exists(w, dataLen int) ([]int, bool, error) {
	if w < 1 {
		return nil, false, fmt.Errorf("hamming: invalid weight %d", w)
	}
	if dataLen < 1 {
		return nil, false, fmt.Errorf("hamming: invalid data length %d", dataLen)
	}
	n := e.codewordLen(dataLen)
	if w > n {
		return nil, false, nil
	}
	switch w {
	case 1:
		// A single flipped bit always has non-zero syndrome.
		return nil, false, nil
	case 2:
		period, err := e.Period()
		if err != nil {
			return nil, false, err
		}
		if period <= uint64(n-1) {
			return []int{0, int(period)}, true, nil
		}
		return nil, false, nil
	default:
		return e.meetInMiddle(w, n)
	}
}

// meetInMiddle searches for a weight-w multiple of G within n codeword bits.
func (e *Evaluator) meetInMiddle(w, n int) ([]int, bool, error) {
	if err := e.begin(w, n-e.width); err != nil {
		return nil, false, err
	}
	rem := w - 1
	p := rem / 2
	q := rem - p // p <= q; the smaller side is materialised
	storeCount := binomAtMost(n-1, p, 1<<62)
	probeCount := binomAtMost(n-1, q, 1<<62)
	if storeCount+probeCount > e.opts.MaxProbes {
		return nil, false, fmt.Errorf("%w: weight %d at %d codeword bits needs %d operations",
			ErrBudgetExceeded, w, n, storeCount+probeCount)
	}
	syn := e.syndromes(n)

	var set synSet
	if storeCount <= int64(e.opts.MaxStoreEntries) && e.width > 20 {
		set = newMapSet(int(storeCount))
	} else {
		set = bitmapSet(e.bitset())
	}
	endStore := e.spanStart(SpanMITMStore, w, n-e.width)
	if err := e.enumStore(syn, n, w, p, set); err != nil {
		endStore()
		return nil, false, err
	}
	e.Stats.StoreOps += storeCount
	endStore()

	endProbe := e.spanStart(SpanMITMProbe, w, n-e.width)
	witness, found, err := e.probe(syn, n, w, p, q, set)
	endProbe()
	if err != nil {
		return nil, false, err
	}
	if found {
		e.Stats.EarlyExits++
		if err := e.verifyWitness(w, n, witness); err != nil {
			return nil, false, err
		}
		return witness, true, nil
	}
	return nil, false, nil
}

// verifyWitness defensively re-checks a reported pattern: correct weight,
// in-range sorted distinct positions, zero syndrome.
func (e *Evaluator) verifyWitness(w, n int, witness []int) error {
	if len(witness) != w {
		return fmt.Errorf("hamming: internal error: witness size %d != weight %d", len(witness), w)
	}
	var acc uint32
	for i, pos := range witness {
		if pos < 0 || pos >= n || (i > 0 && pos <= witness[i-1]) {
			return fmt.Errorf("hamming: internal error: bad witness %v", witness)
		}
		acc ^= e.syn[pos]
	}
	if acc != 0 {
		return fmt.Errorf("hamming: internal error: witness %v has syndrome %#x", witness, acc)
	}
	return nil
}

// synSet is a presence set over syndrome values.
type synSet interface {
	add(uint32)
	has(uint32) bool
}

// bitmapSet covers the whole 2^width syndrome space; exact and O(1), used
// when the store side is large.
type bitmapSet []uint64

func (b bitmapSet) add(v uint32)      { b[v>>6] |= 1 << (v & 63) }
func (b bitmapSet) has(v uint32) bool { return b[v>>6]&(1<<(v&63)) != 0 }

// mapSet is a compact open-addressed presence set for small store sides,
// avoiding the 512 MiB bitmap for 32-bit generators on trivial queries.
type mapSet struct{ m *u32map }

func newMapSet(n int) mapSet       { return mapSet{m: newU32Map(n)} }
func (s mapSet) add(v uint32)      { s.m.put(v, 0) }
func (s mapSet) has(v uint32) bool { return s.m.get(v) >= 0 }

// enumStore inserts the syndromes of all p-subsets of positions [1, n).
// The weight w of the enclosing query labels progress events.
func (e *Evaluator) enumStore(syn []uint32, n, w, p int, set synSet) error {
	dataLen := n - e.width
	switch p {
	case 1:
		for i := 1; i < n; i++ {
			set.add(syn[i])
		}
	case 2:
		for i := 1; i < n; i++ {
			if err := e.tick(w, dataLen, int64(n-i)); err != nil {
				return err
			}
			si := syn[i]
			for j := i + 1; j < n; j++ {
				set.add(si ^ syn[j])
			}
		}
	default:
		var rec func(start, left int, acc uint32) error
		rec = func(start, left int, acc uint32) error {
			if left == 0 {
				set.add(acc)
				return e.tick(w, dataLen, 1)
			}
			for i := start; i <= n-left; i++ {
				if err := rec(i+1, left-1, acc^syn[i]); err != nil {
					return err
				}
			}
			return nil
		}
		return rec(1, p, 0)
	}
	return nil
}

// probe enumerates q-subsets of [1, n) joined with position 0, testing each
// syndrome against the store set; hits are resolved into explicit disjoint
// witnesses. The weight w of the enclosing query labels progress events.
func (e *Evaluator) probe(syn []uint32, n, w, p, q int, set synSet) ([]int, bool, error) {
	dataLen := n - e.width
	base := syn[0] // == 1
	switch q {
	case 1:
		for b := 1; b < n; b++ {
			if set.has(base ^ syn[b]) {
				if wit, ok := e.resolve(syn, n, p, base^syn[b], []int{0, b}); ok {
					return wit, true, nil
				}
			}
		}
		e.Stats.Probes += int64(n - 1)
	case 2:
		for b := 1; b < n; b++ {
			if err := e.tick(w, dataLen, int64(n-1-b)); err != nil {
				return nil, false, err
			}
			vb := base ^ syn[b]
			for c := b + 1; c < n; c++ {
				if set.has(vb ^ syn[c]) {
					if wit, ok := e.resolve(syn, n, p, vb^syn[c], []int{0, b, c}); ok {
						return wit, true, nil
					}
				}
			}
			e.Stats.Probes += int64(n - 1 - b)
		}
	case 3:
		for b := 1; b < n; b++ {
			vb := base ^ syn[b]
			for c := b + 1; c < n; c++ {
				if err := e.tick(w, dataLen, int64(n-1-c)); err != nil {
					return nil, false, err
				}
				vc := vb ^ syn[c]
				for d := c + 1; d < n; d++ {
					if set.has(vc ^ syn[d]) {
						if wit, ok := e.resolve(syn, n, p, vc^syn[d], []int{0, b, c, d}); ok {
							return wit, true, nil
						}
					}
				}
				e.Stats.Probes += int64(n - 1 - c)
			}
		}
	default:
		pos := make([]int, 0, q+1)
		var rec func(start, left int, acc uint32) ([]int, bool, error)
		rec = func(start, left int, acc uint32) ([]int, bool, error) {
			if left == 0 {
				e.Stats.Probes++
				if err := e.tick(w, dataLen, 1); err != nil {
					return nil, false, err
				}
				if set.has(acc) {
					probeSet := append([]int{0}, pos...)
					if wit, ok := e.resolve(syn, n, p, acc, probeSet); ok {
						return wit, true, nil
					}
				}
				return nil, false, nil
			}
			for i := start; i <= n-left; i++ {
				pos = append(pos, i)
				wit, ok, err := rec(i+1, left-1, acc^syn[i])
				if ok || err != nil {
					return wit, ok, err
				}
				pos = pos[:len(pos)-1]
			}
			return nil, false, nil
		}
		return rec(1, q, base)
	}
	return nil, false, nil
}

// resolve turns a store hit into an explicit witness: it re-enumerates
// p-subsets with the target syndrome and returns the first one disjoint
// from the probe positions. A hit with no disjoint completion implies a
// lower-weight undetectable pattern; such anomalies are skipped (the caller
// will already have found them at the lower weight).
func (e *Evaluator) resolve(syn []uint32, n, p int, target uint32, probeSet []int) ([]int, bool) {
	e.Stats.Resolutions++
	inProbe := func(i int) bool {
		for _, b := range probeSet {
			if b == i {
				return true
			}
		}
		return false
	}
	emit := func(storePos []int) []int {
		out := make([]int, 0, len(probeSet)+p)
		out = append(out, probeSet...)
		out = append(out, storePos...)
		sort.Ints(out)
		return out
	}
	switch p {
	case 1:
		for i := 1; i < n; i++ {
			if syn[i] == target && !inProbe(i) {
				return emit([]int{i}), true
			}
		}
	case 2:
		for i := 1; i < n; i++ {
			if inProbe(i) {
				continue
			}
			want := target ^ syn[i]
			for j := i + 1; j < n; j++ {
				if syn[j] == want && !inProbe(j) {
					return emit([]int{i, j}), true
				}
			}
		}
	default:
		pos := make([]int, 0, p)
		var rec func(start, left int, acc uint32) ([]int, bool)
		rec = func(start, left int, acc uint32) ([]int, bool) {
			if left == 0 {
				if acc == target {
					return emit(append([]int(nil), pos...)), true
				}
				return nil, false
			}
			for i := start; i <= n-left; i++ {
				if inProbe(i) {
					continue
				}
				pos = append(pos, i)
				if wit, ok := rec(i+1, left-1, acc^syn[i]); ok {
					return wit, true
				}
				pos = pos[:len(pos)-1]
			}
			return nil, false
		}
		return rec(1, p, 0)
	}
	return nil, false
}

// binomAtMost returns min(C(n,k), limit), guarding against overflow.
func binomAtMost(n, k int, limit int64) int64 {
	if k < 0 || n < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := int64(1)
	for i := 1; i <= k; i++ {
		// result *= (n-k+i); result /= i — with overflow guard.
		next := result * int64(n-k+i)
		if next/int64(n-k+i) != result || next < 0 {
			return limit
		}
		result = next / int64(i)
		if result >= limit {
			return limit
		}
	}
	return result
}

// Package hamming computes the error-detection performance of CRC generator
// polynomials: undetectable-error weights, Hamming-distance boundaries and
// the HD-vs-length band profiles of the paper's Table 1 and Figure 1.
//
// # Model
//
// By CRC linearity (paper §3) a k-bit corruption of a codeword is
// undetectable exactly when the k flipped positions themselves form a
// codeword, i.e. when the error polynomial is a multiple of the generator
// G(x). Position i of an (n+r)-bit codeword corresponds to the monomial x^i
// (position 0 is the last-transmitted FCS bit). A pattern is therefore
// undetectable iff the XOR of the position syndromes x^i mod G is zero, and
// the minimum Hamming distance at data-word length n is the smallest weight
// of any non-zero multiple of G fitting in n+r bits.
//
// Dividing by x shows every minimal pattern can be taken to include
// position 0, which is what makes meet-in-the-middle search over syndrome
// sets exact.
//
// # Engines
//
// Two engines are provided. The fast engine (Exists, FirstDataLen, Weight,
// Profile) exploits the syndrome formulation; the brute-force engine
// (ExistsBrute, WeightBrute) enumerates bit patterns exactly as the paper's
// software did — including the FCS-bits-first ordering and early-bailout
// optimisations of §4.1 — and serves as the reference implementation the
// fast engine is validated against.
package hamming

import (
	"errors"
	"fmt"
	"time"

	"koopmancrc/internal/poly"
)

// Default resource limits.
const (
	// DefaultMaxStoreEntries bounds the number of subset syndromes
	// materialised on the store side of a meet-in-the-middle join before
	// switching to the whole-space bitmap.
	DefaultMaxStoreEntries = 1 << 20
	// DefaultMaxPairBuffer bounds the pair-syndrome buffer used by exact
	// weight-4 counting (entries, 4 bytes each).
	DefaultMaxPairBuffer = 300 << 20
	// DefaultMaxProbes bounds the total probe work of a single existence
	// query; queries beyond it return ErrBudgetExceeded.
	DefaultMaxProbes = int64(1) << 62
)

// ErrBudgetExceeded reports that an evaluation exceeded its configured
// probe or memory budget; results are not available at this length.
var ErrBudgetExceeded = errors.New("hamming: evaluation budget exceeded")

// ErrCanceled reports that an evaluation was aborted by its cancel hook
// (see WithCancel) before completing.
var ErrCanceled = errors.New("hamming: evaluation canceled")

// Event describes the progress of a long-running evaluation: the weight
// being searched, the data-word length of the active existence query and
// the evaluator's cumulative probe count. Events are emitted at the start
// of each query and periodically inside long scans.
type Event struct {
	Weight  int   // pattern weight being searched
	DataLen int   // data-word length of the active query
	Probes  int64 // cumulative probes across the evaluator's lifetime
}

// Span phases emitted by the evaluator's span hook, one per distinct
// search machinery: the geometric/binary boundary search (which nests
// meet-in-the-middle queries), the dedicated weight-3/4 incremental
// scans, the two halves of a meet-in-the-middle join, and the exact
// weight-counting passes.
const (
	SpanBoundary  = "boundary"
	SpanW3Scan    = "w3_scan"
	SpanW4Scan    = "w4_scan"
	SpanMITMStore = "mitm_store"
	SpanMITMProbe = "mitm_probe"
	SpanW2Count   = "w2_count"
	SpanW3Count   = "w3_count"
	SpanW4Count   = "w4_count"
)

// SpanEvent describes one completed engine phase: which machinery ran
// (one of the Span* constants), the weight and data-word length it was
// working on, how long it took and how many work operations (probes +
// store inserts) it performed. Events are emitted when the phase ends,
// including phases cut short by cancellation or budget errors.
type SpanEvent struct {
	Phase    string
	Weight   int
	DataLen  int
	Duration time.Duration
	Probes   int64 // work operations attributed to this phase
}

// Stats accumulates work counters across evaluator calls, used by the
// benchmark harness to report the effect of each of the paper's
// optimisations.
type Stats struct {
	Probes      int64 // subset syndromes tested
	StoreOps    int64 // subset syndromes inserted
	EarlyExits  int64 // searches terminated by the first undetectable error
	Resolutions int64 // bitmap hits re-resolved into explicit witnesses
}

// Options configure an Evaluator.
type Options struct {
	MaxStoreEntries int
	MaxPairBuffer   int
	MaxProbes       int64
	// Progress, when non-nil, receives Events at query boundaries and
	// periodically inside long scans.
	Progress func(Event)
	// Cancel, when non-nil, is polled inside long scans; returning true
	// aborts the query with an error wrapping ErrCanceled.
	Cancel func() bool
	// Span, when non-nil, receives a SpanEvent as each engine phase
	// completes.
	Span func(SpanEvent)
}

// Option mutates evaluator options.
type Option func(*Options)

// WithMaxProbes bounds the probe work per existence query.
func WithMaxProbes(n int64) Option { return func(o *Options) { o.MaxProbes = n } }

// WithProgress installs a progress hook receiving Events.
func WithProgress(fn func(Event)) Option { return func(o *Options) { o.Progress = fn } }

// WithCancel installs a cancellation hook polled inside long scans (for
// wiring context.Context into an evaluation, poll ctx.Err() != nil).
func WithCancel(fn func() bool) Option { return func(o *Options) { o.Cancel = fn } }

// WithSpanHook installs a hook receiving a SpanEvent at the end of each
// engine phase.
func WithSpanHook(fn func(SpanEvent)) Option { return func(o *Options) { o.Span = fn } }

// WithMaxPairBuffer bounds the exact weight-4 pair buffer (entries).
func WithMaxPairBuffer(n int) Option { return func(o *Options) { o.MaxPairBuffer = n } }

// WithMaxStoreEntries sets the threshold above which meet-in-the-middle
// joins switch from a positional map to the whole-space bitmap.
func WithMaxStoreEntries(n int) Option { return func(o *Options) { o.MaxStoreEntries = n } }

// Evaluator computes error-detection properties of one generator
// polynomial. It caches the syndrome table and period across queries and is
// not safe for concurrent use; create one evaluator per goroutine.
type Evaluator struct {
	p      poly.P
	width  int
	normal uint32 // generator sans x^w term
	mask   uint32 // width-bit mask
	topBit uint32

	syn []uint32 // syn[i] = x^i mod G

	period    uint64
	periodErr error
	periodSet bool

	bitmap []uint64 // lazily allocated 2^width-bit scratch set

	bruteBudget int64 // per-call probe budget of the brute engine

	tickOps int64 // scan operations since the last progress/cancel poll

	opts  Options
	Stats Stats
}

// tickEvery is how many scan operations pass between progress emissions
// and cancellation polls inside long loops — frequent enough that
// cancellation feels immediate, rare enough to stay off the hot path.
const tickEvery = 1 << 20

// begin emits the query-start event and gives cancellation a fast exit
// between the sub-queries of a boundary search.
func (e *Evaluator) begin(w, dataLen int) error {
	if e.opts.Progress != nil {
		e.opts.Progress(Event{Weight: w, DataLen: dataLen, Probes: e.Stats.Probes})
	}
	if e.opts.Cancel != nil && e.opts.Cancel() {
		return fmt.Errorf("%w: weight-%d query at %d data bits", ErrCanceled, w, dataLen)
	}
	return nil
}

// tick accumulates scan work and, roughly every tickEvery operations,
// emits a progress event and polls the cancel hook. Loops call it once
// per outer iteration with the inner work just performed.
func (e *Evaluator) tick(w, dataLen int, ops int64) error {
	e.tickOps += ops
	if e.tickOps < tickEvery {
		return nil
	}
	e.tickOps = 0
	return e.begin(w, dataLen)
}

// noopSpanEnd is the shared do-nothing span terminator, so uninstrumented
// evaluations pay one nil check and no allocation per phase.
var noopSpanEnd = func() {}

// spanStart opens an engine phase and returns the function that closes
// it, capturing wall time and the work-counter delta (probes + store
// inserts) between the two calls. Callers either defer the result or
// invoke it explicitly on every exit path.
func (e *Evaluator) spanStart(phase string, w, dataLen int) func() {
	if e.opts.Span == nil {
		return noopSpanEnd
	}
	t0 := time.Now()
	w0 := e.Stats.Probes + e.Stats.StoreOps
	return func() {
		e.opts.Span(SpanEvent{
			Phase:    phase,
			Weight:   w,
			DataLen:  dataLen,
			Duration: time.Since(t0),
			Probes:   e.Stats.Probes + e.Stats.StoreOps - w0,
		})
	}
}

// New returns an evaluator for the polynomial.
func New(p poly.P, opts ...Option) *Evaluator {
	o := Options{
		MaxStoreEntries: DefaultMaxStoreEntries,
		MaxPairBuffer:   DefaultMaxPairBuffer,
		MaxProbes:       DefaultMaxProbes,
	}
	for _, fn := range opts {
		fn(&o)
	}
	w := p.Width()
	mask := ^uint32(0)
	if w < 32 {
		mask = 1<<uint(w) - 1
	}
	return &Evaluator{
		p:      p,
		width:  w,
		normal: uint32(p.Normal()),
		mask:   mask,
		topBit: 1 << uint(w-1),
		syn:    []uint32{1}, // x^0 mod G = 1 (deg G >= 1)
		opts:   o,
	}
}

// Poly returns the polynomial under evaluation.
func (e *Evaluator) Poly() poly.P { return e.p }

// Width returns the CRC width.
func (e *Evaluator) Width() int { return e.width }

// step advances a syndrome by one position: s -> x*s mod G.
func (e *Evaluator) step(s uint32) uint32 {
	top := s & e.topBit
	s = (s << 1) & e.mask
	if top != 0 {
		s ^= e.normal
	}
	return s
}

// syndromes returns the syndrome table extended to at least n entries.
func (e *Evaluator) syndromes(n int) []uint32 {
	for len(e.syn) < n {
		e.syn = append(e.syn, e.step(e.syn[len(e.syn)-1]))
	}
	return e.syn[:n]
}

// Period returns ord(x) mod G — the codeword length at which 2-bit errors
// first become undetectable is Period()+1.
func (e *Evaluator) Period() (uint64, error) {
	if !e.periodSet {
		e.period, e.periodErr = e.p.Period()
		e.periodSet = true
	}
	if e.periodErr != nil {
		return 0, fmt.Errorf("period of %v: %w", e.p, e.periodErr)
	}
	return e.period, nil
}

// codewordLen converts a data-word length to the total codeword length.
func (e *Evaluator) codewordLen(dataLen int) int { return dataLen + e.width }

// dataLenFor converts the maximum position of a canonical pattern into the
// smallest data-word length whose codeword can contain it.
func (e *Evaluator) dataLenFor(maxPos int) int {
	n := maxPos + 1 - e.width
	if n < 1 {
		n = 1
	}
	return n
}

// bitset returns the scratch bitmap covering all 2^width syndromes,
// cleared.
func (e *Evaluator) bitset() []uint64 {
	words := 1
	if e.width >= 6 {
		words = 1 << uint(e.width-6)
	}
	if cap(e.bitmap) < words {
		e.bitmap = make([]uint64, words)
		return e.bitmap
	}
	e.bitmap = e.bitmap[:words]
	clear(e.bitmap)
	return e.bitmap
}

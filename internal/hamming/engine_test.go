package hamming

import (
	"errors"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"koopmancrc/internal/gf2"
	"koopmancrc/internal/poly"
)

// randPoly returns a random generator polynomial of the given width.
func randPoly(rng *rand.Rand, width int) poly.P {
	for {
		k := rng.Uint64N(1<<uint(width)) | 1<<uint(width-1)
		p, err := poly.FromKoopman(width, k)
		if err == nil {
			return p
		}
	}
}

// xp1Poly returns a random width-bit generator divisible by (x+1).
func xp1Poly(rng *rand.Rand, width int) poly.P {
	for {
		g := gf2.Poly(rng.Uint64N(1<<uint(width-1))) | 1<<uint(width-1) | 1
		full := gf2.Mul(g, gf2.XPlus1)
		if full.Deg() != width || full&1 == 0 {
			continue
		}
		p, err := poly.FromFull(full)
		if err == nil {
			return p
		}
	}
}

func TestExistsMatchesBruteForce8Bit(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 1))
	for trial := 0; trial < 40; trial++ {
		p := randPoly(rng, 8)
		e := New(p)
		for _, n := range []int{1, 2, 5, 9, 17, 24} {
			for w := 2; w <= 6; w++ {
				count, err := e.WeightBrute(w, n)
				if err != nil {
					t.Fatal(err)
				}
				wit, found, err := e.Exists(w, n)
				if err != nil {
					t.Fatal(err)
				}
				if found != (count > 0) {
					t.Fatalf("%v w=%d n=%d: Exists=%v but brute count=%d", p, w, n, found, count)
				}
				if found && len(wit) != w {
					t.Fatalf("%v: witness %v has wrong weight", p, wit)
				}
			}
		}
	}
}

func TestExistsMatchesBruteForce16Bit(t *testing.T) {
	rng := rand.New(rand.NewPCG(202, 2))
	for trial := 0; trial < 8; trial++ {
		p := randPoly(rng, 16)
		e := New(p)
		for _, n := range []int{3, 12, 25} {
			for w := 2; w <= 5; w++ {
				count, err := e.WeightBrute(w, n)
				if err != nil {
					t.Fatal(err)
				}
				_, found, err := e.Exists(w, n)
				if err != nil {
					t.Fatal(err)
				}
				if found != (count > 0) {
					t.Fatalf("%v w=%d n=%d: Exists=%v brute=%d", p, w, n, found, count)
				}
			}
		}
	}
}

func TestExistsBruteMatchesFastEngine(t *testing.T) {
	rng := rand.New(rand.NewPCG(303, 3))
	for trial := 0; trial < 20; trial++ {
		p := randPoly(rng, 8)
		e := New(p)
		for _, order := range []Order{OrderLex, OrderFCSFirst} {
			for _, n := range []int{4, 11, 20} {
				for w := 2; w <= 5; w++ {
					wantWit, want, err := e.Exists(w, n)
					if err != nil {
						t.Fatal(err)
					}
					_ = wantWit
					wit, got, err := e.ExistsBrute(w, n, order)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("%v w=%d n=%d order=%d: brute=%v fast=%v", p, w, n, order, got, want)
					}
					if got {
						if err := e.verifyWitness(w, e.codewordLen(n), wit); err != nil {
							t.Fatalf("brute witness invalid: %v", err)
						}
					}
				}
			}
		}
	}
}

func TestExactWeightsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(404, 4))
	for trial := 0; trial < 25; trial++ {
		width := 4 + int(rng.Uint64N(6)) // widths 4..9
		p := randPoly(rng, width)
		e := New(p)
		for _, n := range []int{1, 3, 8, 15, 22} {
			for w := 2; w <= 4; w++ {
				want, err := e.WeightBrute(w, n)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Weight(w, n)
				if err != nil {
					// The pair-collision W4 formula legitimately refuses
					// lengths where W2 > 0.
					if w == 4 {
						w2, werr := e.Weight(2, n)
						if werr == nil && w2 > 0 {
							continue
						}
					}
					t.Fatalf("%v W%d(%d): %v", p, w, n, err)
				}
				if got != want {
					t.Fatalf("%v W%d(%d) = %d, brute = %d", p, w, n, got, want)
				}
			}
		}
	}
}

func TestFirstDataLenMatchesBruteScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(505, 5))
	const maxLen = 24
	for trial := 0; trial < 15; trial++ {
		p := randPoly(rng, 8)
		e := New(p)
		for w := 2; w <= 5; w++ {
			want := 0
			for n := 1; n <= maxLen; n++ {
				c, err := e.WeightBrute(w, n)
				if err != nil {
					t.Fatal(err)
				}
				if c > 0 {
					want = n
					break
				}
			}
			got, wit, found, err := e.FirstDataLen(w, maxLen)
			if err != nil {
				t.Fatal(err)
			}
			if (want == 0) == found {
				t.Fatalf("%v w=%d: found=%v want boundary %d", p, w, found, want)
			}
			if found && got != want {
				t.Fatalf("%v w=%d: FirstDataLen=%d, brute scan=%d (witness %v)", p, w, got, want, wit)
			}
		}
	}
}

func TestStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(606, 6))
	for trial := 0; trial < 10; trial++ {
		p := randPoly(rng, 10)
		e := New(p)
		for w := 5; w <= 6; w++ {
			n1, _, f1, err := e.FirstDataLenStrategy(w, 80, StrategyIncreasing)
			if err != nil {
				t.Fatal(err)
			}
			n2, _, f2, err := e.FirstDataLenStrategy(w, 80, StrategyDirect)
			if err != nil {
				t.Fatal(err)
			}
			if f1 != f2 || n1 != n2 {
				t.Fatalf("%v w=%d: increasing=(%d,%v) direct=(%d,%v)", p, w, n1, f1, n2, f2)
			}
		}
	}
}

func TestOddWeightsZeroForParityPolynomials(t *testing.T) {
	// Polynomials divisible by (x+1) detect all odd numbers of bit errors
	// (paper §3) — the first invariant of the paper's validation (§4.5).
	rng := rand.New(rand.NewPCG(707, 7))
	for trial := 0; trial < 15; trial++ {
		p := xp1Poly(rng, 8)
		e := New(p)
		for _, n := range []int{2, 7, 14, 21} {
			for _, w := range []int{3, 5} {
				count, err := e.WeightBrute(w, n)
				if err != nil {
					t.Fatal(err)
				}
				if count != 0 {
					t.Fatalf("%v divisible by x+1 but W%d(%d) = %d", p, w, n, count)
				}
			}
			if _, found, err := e.Exists(3, n); err != nil || found {
				t.Fatalf("%v: Exists(3,%d) = %v, %v", p, n, found, err)
			}
		}
	}
}

func TestWeightsNonDecreasingInLength(t *testing.T) {
	// The second §4.5 invariant: weights never decrease as the data word
	// grows (every pattern at length n still fits at n+1).
	rng := rand.New(rand.NewPCG(808, 8))
	for trial := 0; trial < 10; trial++ {
		p := randPoly(rng, 8)
		e := New(p)
		for w := 2; w <= 4; w++ {
			prev := uint64(0)
			for n := 1; n <= 20; n++ {
				c, err := e.WeightBrute(w, n)
				if err != nil {
					t.Fatal(err)
				}
				if c < prev {
					t.Fatalf("%v W%d decreased from %d to %d at n=%d", p, w, prev, c, n)
				}
				prev = c
			}
		}
	}
}

func TestProfileConsistentWithHDAt(t *testing.T) {
	rng := rand.New(rand.NewPCG(909, 9))
	for trial := 0; trial < 10; trial++ {
		p := randPoly(rng, 8)
		e := New(p)
		prof, err := e.Profile(30, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Bands must tile [1, 30] exactly.
		next := 1
		for _, b := range prof.Bands {
			if b.From != next || b.To < b.From {
				t.Fatalf("%v: bad band tiling %+v", p, prof.Bands)
			}
			next = b.To + 1
		}
		if next != 31 {
			t.Fatalf("%v: bands end at %d, want 31", p, next)
		}
		for _, n := range []int{1, 7, 15, 30} {
			hd, exact, err := e.HDAt(n, 8)
			if err != nil {
				t.Fatal(err)
			}
			want, atLeast, ok := prof.HDAtLen(n)
			if !ok {
				t.Fatalf("%v: no band for %d", p, n)
			}
			if want != hd || atLeast == exact {
				t.Fatalf("%v n=%d: profile says HD=%d(atLeast=%v), HDAt says %d(exact=%v)",
					p, n, want, atLeast, hd, exact)
			}
		}
	}
}

func TestBandsFromTransitionsSynthetic(t *testing.T) {
	tests := []struct {
		name   string
		ts     []Transition
		maxLen int
		maxHD  int
		want   []Band
	}{
		{
			name:   "no transitions",
			maxLen: 10, maxHD: 6,
			want: []Band{{HD: 7, AtLeast: true, From: 1, To: 10}},
		},
		{
			name:   "single",
			ts:     []Transition{{W: 4, FirstLen: 5}},
			maxLen: 10, maxHD: 6,
			want: []Band{{HD: 7, AtLeast: true, From: 1, To: 4}, {HD: 4, From: 5, To: 10}},
		},
		{
			name:   "descending weights",
			ts:     []Transition{{W: 5, FirstLen: 3}, {W: 4, FirstLen: 7}, {W: 2, FirstLen: 9}},
			maxLen: 12, maxHD: 8,
			want: []Band{
				{HD: 9, AtLeast: true, From: 1, To: 2},
				{HD: 5, From: 3, To: 6},
				{HD: 4, From: 7, To: 8},
				{HD: 2, From: 9, To: 12},
			},
		},
		{
			name:   "same length",
			ts:     []Transition{{W: 5, FirstLen: 4}, {W: 4, FirstLen: 4}},
			maxLen: 6, maxHD: 6,
			want: []Band{{HD: 7, AtLeast: true, From: 1, To: 3}, {HD: 4, From: 4, To: 6}},
		},
		{
			name:   "boundary at 1",
			ts:     []Transition{{W: 3, FirstLen: 1}},
			maxLen: 5, maxHD: 6,
			want: []Band{{HD: 3, From: 1, To: 5}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := bandsFromTransitions(tt.ts, tt.maxLen, tt.maxHD)
			if len(got) != len(tt.want) {
				t.Fatalf("bands = %+v, want %+v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("band %d = %+v, want %+v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestBudgetExceeded(t *testing.T) {
	e := New(poly.IEEE8023, WithMaxProbes(100))
	_, _, err := e.Exists(5, 4096)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := New(poly.IEEE8023, WithMaxPairBuffer(10)).Weight(4, 1000); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("W4 err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := New(poly.IEEE8023, WithMaxProbes(100)).WeightBrute(4, 1000); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("brute err = %v, want ErrBudgetExceeded", err)
	}
}

func TestInvalidArguments(t *testing.T) {
	e := New(poly.IEEE8023)
	if _, _, err := e.Exists(0, 10); err == nil {
		t.Error("Exists(0,...) should error")
	}
	if _, _, err := e.Exists(2, 0); err == nil {
		t.Error("Exists(...,0) should error")
	}
	if _, err := e.Weight(5, 10); err == nil {
		t.Error("Weight(5,...) should error (exact weights limited to w<=4)")
	}
	if _, err := e.Profile(0, 6); err == nil {
		t.Error("Profile(0,...) should error")
	}
	if _, err := e.Profile(10, 1); err == nil {
		t.Error("Profile(...,1) should error")
	}
}

// TestWeightScanCancelAndBudget: the exact W2/W3 scans honour the cancel
// hook and the probe budget like every other engine loop.
func TestWeightScanCancelAndBudget(t *testing.T) {
	p, err := poly.FromFull(0x1D)
	if err != nil {
		t.Fatal(err)
	}
	canceled := New(p, WithCancel(func() bool { return true }))
	for w := 2; w <= 3; w++ {
		if _, err := canceled.Weight(w, 10); !errors.Is(err, ErrCanceled) {
			t.Errorf("Weight(%d, 10) with cancel hook: %v, want ErrCanceled", w, err)
		}
	}
	tight := New(p, WithMaxProbes(1))
	for w := 2; w <= 3; w++ {
		// Data length 12 (codeword 16, period 7): W2 needs 2 scan steps,
		// W3 needs 16 — both beyond a 1-probe budget.
		if _, err := tight.Weight(w, 12); !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("Weight(%d, 12) with 1-probe budget: %v, want ErrBudgetExceeded", w, err)
		}
	}
}

func TestSmallPeriodWeight2(t *testing.T) {
	// (x+1)(x^3+x+1) has period 7: first 2-bit failure spans {0,7}, i.e.
	// codeword length 8, data length 4 for this width-4 generator.
	p, err := poly.FromFull(0x1D)
	if err != nil {
		t.Fatal(err)
	}
	e := New(p)
	if _, found, err := e.Exists(2, 3); err != nil || found {
		t.Fatalf("Exists(2,3) = %v, %v; want no", found, err)
	}
	wit, found, err := e.Exists(2, 4)
	if err != nil || !found {
		t.Fatalf("Exists(2,4) = %v, %v; want yes", found, err)
	}
	if wit[0] != 0 || wit[1] != 7 {
		t.Fatalf("witness = %v, want [0 7]", wit)
	}
	// Weight formula: at data length n (codeword n+4), pairs {i,i+7k}.
	w2, err := e.Weight(2, 10) // codeword 14: k=1 gives 7 pairs
	if err != nil {
		t.Fatal(err)
	}
	if w2 != 7 {
		t.Fatalf("W2(10) = %d, want 7", w2)
	}
	brute, err := e.WeightBrute(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if brute != w2 {
		t.Fatalf("brute W2 = %d", brute)
	}
}

func TestU32Map(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 9))
	m := newU32Map(1000)
	ref := make(map[uint32]int32)
	for i := 0; i < 1000; i++ {
		k := uint32(rng.Uint64N(2000)) // force collisions
		v := int32(i)
		m.put(k, v)
		if _, ok := ref[k]; !ok {
			ref[k] = v // first write wins
		}
	}
	for k, v := range ref {
		if got := m.get(k); got != v {
			t.Fatalf("get(%d) = %d, want %d", k, got, v)
		}
	}
	for i := 0; i < 100; i++ {
		k := uint32(rng.Uint64N(100000) + 5000)
		if got := m.get(k); got != -1 {
			t.Fatalf("get(absent %d) = %d", k, got)
		}
	}
	// Key 0 and value 0 are representable.
	m2 := newU32Map(4)
	m2.put(0, 0)
	if got := m2.get(0); got != 0 {
		t.Fatalf("get(0) = %d, want 0", got)
	}
}

func TestU32Count(t *testing.T) {
	f := func(keys []uint16) bool {
		c := newU32Count(len(keys) + 1)
		ref := make(map[uint32]uint32)
		for _, k := range keys {
			c.add(uint32(k))
			ref[uint32(k)]++
		}
		for k, want := range ref {
			if c.count(k) != want {
				return false
			}
		}
		return c.count(1<<20) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixSortUint32(t *testing.T) {
	f := func(vals []uint32) bool {
		got := append([]uint32(nil), vals...)
		got = radixSortUint32(got, nil)
		want := append([]uint32(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomAtMost(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 11, 0}, {0, 0, 1},
		{12144, 2, 73732296}, {52, 5, 2598960}, {-1, 0, 0},
	}
	for _, tt := range tests {
		if got := binomAtMost(tt.n, tt.k, 1<<62); got != tt.want {
			t.Errorf("binom(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
	if got := binomAtMost(1000, 500, 1000); got != 1000 {
		t.Errorf("capped binom = %d, want 1000", got)
	}
}

func TestMeetsHDAtLengthsShortCircuit(t *testing.T) {
	e := New(poly.IEEE8023)
	// 802.3 has HD=4 (not 5) from 2975 on: the schedule must reject at the
	// first length >= 2975 without evaluating the rest.
	ok, err := e.MeetsHDAtLengths([]int{64, 3000, 12112}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("802.3 should fail HD>=5 at 3000 bits")
	}
	ok, err = e.MeetsHDAtLengths([]int{64, 256, 1024}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("802.3 should keep HD>=5 through 1024 bits")
	}
}

func TestExistsMatchesBruteForceHighWeights(t *testing.T) {
	// Weights 7 and 8 exercise the store-side recursion (p=3) and the
	// probe-side q=4 recursion of the meet-in-the-middle join.
	rng := rand.New(rand.NewPCG(111, 12))
	for trial := 0; trial < 12; trial++ {
		p := randPoly(rng, 8)
		e := New(p)
		for _, n := range []int{4, 9, 14} {
			for w := 7; w <= 8; w++ {
				count, err := e.WeightBrute(w, n)
				if err != nil {
					t.Fatal(err)
				}
				wit, found, err := e.Exists(w, n)
				if err != nil {
					t.Fatal(err)
				}
				if found != (count > 0) {
					t.Fatalf("%v w=%d n=%d: Exists=%v brute=%d", p, w, n, found, count)
				}
				if found && len(wit) != w {
					t.Fatalf("witness %v", wit)
				}
			}
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	// Profiles must be reproducible run to run (the EDF factorization uses
	// a fixed-seed RNG; everything else is deterministic).
	a, err := New(poly.CastagnoliISCSI).Profile(600, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(poly.CastagnoliISCSI).Profile(600, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bands) != len(b.Bands) {
		t.Fatalf("band counts differ: %d vs %d", len(a.Bands), len(b.Bands))
	}
	for i := range a.Bands {
		if a.Bands[i] != b.Bands[i] {
			t.Fatalf("band %d differs: %+v vs %+v", i, a.Bands[i], b.Bands[i])
		}
	}
}

func TestGeneratorItselfIsACodeword(t *testing.T) {
	// G(x) is trivially a multiple of itself: a polynomial of weight m has
	// an undetectable m-bit pattern from data length 1 on. This is why
	// Table 1 shows 0x90022004 (6 terms) capped at HD=6 and 0x80108400
	// (5 terms) capped at HD=5 from the start.
	for _, tt := range []struct {
		p      poly.P
		weight int
	}{
		{poly.KoopmanSparse6, 6},
		{poly.KoopmanSparse5, 5},
	} {
		e := New(tt.p)
		wit, found, err := e.Exists(tt.weight, 1)
		if err != nil || !found {
			t.Fatalf("%v: Exists(%d, 1) = %v, %v", tt.p, tt.weight, found, err)
		}
		// The minimal witness is the generator's own coefficient pattern.
		var acc gf2.Poly
		for _, pos := range wit {
			acc |= 1 << uint(pos)
		}
		if acc != tt.p.Full() {
			t.Errorf("%v: witness %v is not the generator itself", tt.p, wit)
		}
	}
}

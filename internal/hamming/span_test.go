package hamming

import (
	"testing"

	"koopmancrc/internal/poly"
)

// TestSpanHookPhases drives the three search machineries and checks each
// emits its span with sane duration and work accounting.
func TestSpanHookPhases(t *testing.T) {
	var events []SpanEvent
	e := New(poly.IEEE8023, WithSpanHook(func(s SpanEvent) {
		events = append(events, s)
	}))

	if _, _, _, err := e.FirstDataLen(4, 200); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := e.FirstDataLen(6, 80); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Weight(3, 64); err != nil {
		t.Fatal(err)
	}

	got := map[string]int{}
	for _, ev := range events {
		got[ev.Phase]++
		if ev.Duration < 0 {
			t.Errorf("%s: negative duration %v", ev.Phase, ev.Duration)
		}
		if ev.Probes < 0 {
			t.Errorf("%s: negative probe delta %d", ev.Phase, ev.Probes)
		}
	}
	for _, phase := range []string{SpanW4Scan, SpanBoundary, SpanMITMStore, SpanMITMProbe, SpanW3Count} {
		if got[phase] == 0 {
			t.Errorf("no %s span emitted; phases seen: %v", phase, got)
		}
	}
	// The boundary search nests meet-in-the-middle queries, so store and
	// probe spans must outnumber (or equal) the single boundary span.
	if got[SpanMITMStore] < got[SpanBoundary] {
		t.Errorf("mitm_store spans (%d) < boundary spans (%d)", got[SpanMITMStore], got[SpanBoundary])
	}
}

// TestSpanHookOff checks the uninstrumented path still works and that an
// evaluation with no hook emits nothing (guarding the nil fast path).
func TestSpanHookOff(t *testing.T) {
	e := New(poly.IEEE8023)
	if _, _, _, err := e.FirstDataLen(4, 100); err != nil {
		t.Fatal(err)
	}
}

package hamming

import (
	"testing"

	"koopmancrc/internal/poly"
)

// These tests pin the evaluator to values stated in the paper's prose,
// Table 1 (where legible) and the 2014 errata. Only computations cheap
// enough for routine test runs appear here; the full Table 1 reproduction
// to 131072 bits lives in internal/paperdata and cmd/crctables.

func TestAnchor8023Breakpoint(t *testing.T) {
	// §4.1 worked example: the 802.3 HD=5 to HD=4 transition falls between
	// 2974 and 2975 bits, and W4(2975) = 1 — "exactly one such undetected
	// error".
	e := New(poly.IEEE8023)
	n, wit, found, err := e.FirstDataLen(4, 4000)
	if err != nil || !found {
		t.Fatalf("FirstDataLen(4): %v %v", found, err)
	}
	if n != 2975 {
		t.Fatalf("802.3 weight-4 boundary = %d, want 2975", n)
	}
	if len(wit) != 4 {
		t.Fatalf("witness %v", wit)
	}
	w4, err := e.Weight(4, 2975)
	if err != nil {
		t.Fatal(err)
	}
	if w4 != 1 {
		t.Fatalf("W4(2975) = %d, want 1", w4)
	}
	w4prev, err := e.Weight(4, 2974)
	if err != nil {
		t.Fatal(err)
	}
	if w4prev != 0 {
		t.Fatalf("W4(2974) = %d, want 0", w4prev)
	}
}

func TestAnchor8023Bands(t *testing.T) {
	// Prose: "the 802.3 polynomial has a HD greater than or equal to 8 up
	// to a data word length of 91 bits, HD=7 to 171 bits, HD=6 to 268 bits,
	// HD=5 to 2974 bits".
	e := New(poly.IEEE8023)
	prof, err := e.Profile(4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantBoundaries := map[int]int{5: 269, 6: 172, 7: 92, 4: 2975}
	for _, tr := range prof.Transitions {
		if want, ok := wantBoundaries[tr.W]; ok && tr.FirstLen != want {
			t.Errorf("weight-%d boundary = %d, want %d", tr.W, tr.FirstLen, want)
		}
	}
	checks := []struct {
		hd, maxLen int
	}{{8, 91}, {7, 171}, {6, 268}, {5, 2974}}
	for _, c := range checks {
		got, ok := prof.MaxLenAtHD(c.hd)
		if !ok || got != c.maxLen {
			t.Errorf("MaxLenAtHD(%d) = %d,%v, want %d", c.hd, got, ok, c.maxLen)
		}
	}
}

func TestAnchorISCSIBands(t *testing.T) {
	// Table 1 column 2 (0x8F6E37A0): HD=8 for 48-177, HD=6 for 178-5243,
	// HD=4 from 5244 — "only has HD=6 up to less than half an Ethernet MTU".
	e := New(poly.CastagnoliISCSI)
	prof, err := e.Profile(8192, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{4: 5244, 6: 178, 8: 48}
	got := map[int]int{}
	for _, tr := range prof.Transitions {
		got[tr.W] = tr.FirstLen
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("weight-%d boundary = %d, want %d", w, got[w], n)
		}
	}
	if _, found := got[3]; found {
		t.Error("odd weight boundary found for (x+1)-divisible polynomial")
	}
	if l, ok := prof.MaxLenAtHD(6); !ok || l != 5243 {
		t.Errorf("MaxLenAtHD(6) = %d, want 5243", l)
	}
}

func TestAnchorBA0DC66BShortBands(t *testing.T) {
	// Table 1 column 3 (0xBA0DC66B): HD=8 for 19-152, HD=6 from 153 (the
	// 16360 upper end is exercised in the full Table 1 reproduction).
	e := New(poly.Koopman32K)
	prof, err := e.Profile(1024, 13)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	for _, tr := range prof.Transitions {
		got[tr.W] = tr.FirstLen
	}
	if got[6] != 153 {
		t.Errorf("weight-6 boundary = %d, want 153", got[6])
	}
	if got[8] != 19 {
		t.Errorf("weight-8 boundary = %d, want 19", got[8])
	}
	for _, w := range []int{3, 5, 7} {
		if _, ok := got[w]; ok {
			t.Errorf("unexpected odd weight-%d boundary", w)
		}
	}
}

func TestAnchorCastagnoliErratum(t *testing.T) {
	// §3: the misprinted Castagnoli polynomial 1F6ACFB13 "has HD=6 up to a
	// length of only 382 bits and so should not be used". Both of our
	// engines (meet-in-the-middle and paper-faithful brute force)
	// independently find the first weight-5 pattern at 384 bits — HD=6
	// through 383, one bit past the paper's prose. EXPERIMENTS.md records
	// the deviation; the paper's point (HD=6 collapses around ~0.4 Kbit
	// instead of ~32 Kbit) reproduces exactly.
	e := New(poly.CastagnoliMisprint)
	prof, err := e.Profile(1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := prof.MaxLenAtHD(6); !ok || l != 383 {
		t.Fatalf("misprint MaxLenAtHD(6) = %d,%v, want 383 (paper prose: 382)", l, ok)
	}
	// Cross-check with the paper-faithful engine at the boundary.
	if _, found, err := e.ExistsBrute(5, 383, OrderLex); err != nil || found {
		t.Fatalf("brute Exists(5, 383) = %v, %v; want none", found, err)
	}
	if _, found, err := e.ExistsBrute(5, 384, OrderFCSFirst); err != nil || !found {
		t.Fatalf("brute Exists(5, 384) = %v, %v; want found", found, err)
	}
	// The corrected polynomial keeps HD=6 well past that.
	e2 := New(poly.Castagnoli1131515)
	ok, err := e2.MeetsHD(1024, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("corrected 0xFA567D89 should have HD>=6 at 1024 bits")
	}
}

func TestAnchorCCITT16(t *testing.T) {
	// CRC-16/CCITT: period 32767, so HD >= 4 holds through 32751 data bits
	// ((x+1)-divisibility kills weight 3) and fails at 32752.
	e := New(poly.CCITT16)
	n2, wit, found, err := e.FirstDataLen(2, 40000)
	if err != nil || !found {
		t.Fatalf("FirstDataLen(2): %v %v", found, err)
	}
	if n2 != 32752 {
		t.Fatalf("weight-2 boundary = %d, want 32752", n2)
	}
	if wit[1] != 32767 {
		t.Fatalf("witness %v, want {0, 32767}", wit)
	}
	ok, err := e.MeetsHD(32751, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("CCITT-16 should hold HD>=4 at 32751 bits")
	}
	ok, err = e.MeetsHD(32752, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("CCITT-16 must fail HD>=4 at 32752 bits")
	}
}

func TestAnchorMTUHammingDistances(t *testing.T) {
	if testing.Short() {
		t.Skip("MTU-length evaluation in -short mode")
	}
	// The paper's headline comparison at the Ethernet MTU data-word length
	// of 12112 bits: 802.3 and the iSCSI polynomial achieve HD=4, the new
	// {1,3,28} polynomial achieves HD=6.
	tests := []struct {
		p    poly.P
		want int
	}{
		{poly.IEEE8023, 4},
		{poly.CastagnoliISCSI, 4},
		{poly.Koopman32K, 6},
		{poly.Koopman1130, 6},
		{poly.KoopmanSparse6, 6},
		{poly.Castagnoli1131515, 6},
		{poly.CastagnoliHD5, 5},
		{poly.KoopmanSparse5, 5},
	}
	for _, tt := range tests {
		e := New(tt.p)
		hd, exact, err := e.HDAt(12112, 7)
		if err != nil {
			t.Fatalf("%v: %v", tt.p, err)
		}
		if !exact || hd != tt.want {
			t.Errorf("HD(%v @ MTU) = %d (exact=%v), want %d", tt.p, hd, exact, tt.want)
		}
	}
}

func TestAnchorW4AtMTU(t *testing.T) {
	if testing.Short() {
		t.Skip("exact MTU weight in -short mode")
	}
	// §3: the 802.3 CRC at 12112 bits has weights {W2=0, W3=0, W4=223059}.
	e := New(poly.IEEE8023)
	ws, err := e.Weights(12112, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ws[0] != 0 || ws[1] != 0 || ws[2] != 223059 {
		t.Fatalf("weights at MTU = %v, want [0 0 223059]", ws)
	}
}

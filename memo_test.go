package koopmancrc

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// memoTestPoly is an 8-bit polynomial (CRC-8/ATM in Koopman notation)
// whose full evaluation is microseconds, keeping memo tests fast.
func memoTestPoly(t *testing.T) Polynomial {
	t.Helper()
	return MustPolynomial(8, Koopman, "0x83")
}

func TestMemoSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	p := memoTestPoly(t)

	a := NewAnalyzer(p, WithMaxHD(6))
	if _, err := a.Evaluate(ctx, 64); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	coldCount, err := a.Weight(ctx, 3, 32)
	if err != nil {
		t.Fatalf("Weight: %v", err)
	}
	coldHD, coldExact, err := a.HDAt(ctx, 32)
	if err != nil {
		t.Fatalf("HDAt: %v", err)
	}
	coldStats := a.MemoStats()
	if coldStats.Probes == 0 {
		t.Fatalf("expected cold evaluation to spend engine probes, got 0")
	}

	snap, err := a.MemoSnapshot(ctx)
	if err != nil {
		t.Fatalf("MemoSnapshot: %v", err)
	}
	if snap.Version != MemoSnapshotVersion || snap.Width != 8 || snap.Poly != 0x83 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if snap.Probes != coldStats.Probes {
		t.Fatalf("snapshot probes = %d, want %d", snap.Probes, coldStats.Probes)
	}
	if len(snap.Bounds) == 0 || len(snap.Weights) != 1 {
		t.Fatalf("snapshot facts = %d bounds, %d weights", len(snap.Bounds), len(snap.Weights))
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// Through JSON and back — the corpus stores snapshots as JSON records.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded MemoSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(snap, &decoded) {
		t.Fatalf("JSON round trip changed the snapshot:\n got %+v\nwant %+v", &decoded, snap)
	}

	// Restore into a fresh session: same answers, zero live engine work.
	b := NewAnalyzer(p, WithMaxHD(6))
	if err := b.RestoreMemos(ctx, &decoded); err != nil {
		t.Fatalf("RestoreMemos: %v", err)
	}
	warmHD, warmExact, err := b.HDAt(ctx, 32)
	if err != nil {
		t.Fatalf("warm HDAt: %v", err)
	}
	if warmHD != coldHD || warmExact != coldExact {
		t.Fatalf("warm HDAt = (%d, %v), cold = (%d, %v)", warmHD, warmExact, coldHD, coldExact)
	}
	if n, err := b.Weight(ctx, 3, 32); err != nil || n != coldCount {
		t.Fatalf("warm Weight = (%d, %v), cold = %d", n, err, coldCount)
	}
	if got := b.MemoStats().Probes; got != 0 {
		t.Fatalf("restored session spent %d live engine probes, want 0", got)
	}

	// Re-export: restored knowledge carries the original discovery cost.
	resnap, err := b.MemoSnapshot(ctx)
	if err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if resnap.Probes != snap.Probes {
		t.Fatalf("re-exported probes = %d, want %d", resnap.Probes, snap.Probes)
	}
	if !reflect.DeepEqual(resnap.Bounds, snap.Bounds) {
		t.Fatalf("re-exported bounds differ:\n got %+v\nwant %+v", resnap.Bounds, snap.Bounds)
	}
}

func TestMemoSnapshotWarmEvaluateMatchesCold(t *testing.T) {
	ctx := context.Background()
	p := memoTestPoly(t)

	cold := NewAnalyzer(p, WithMaxHD(6))
	want, err := cold.Evaluate(ctx, 64)
	if err != nil {
		t.Fatalf("cold Evaluate: %v", err)
	}
	snap, err := cold.MemoSnapshot(ctx)
	if err != nil {
		t.Fatalf("MemoSnapshot: %v", err)
	}

	warm := NewAnalyzer(p, WithMaxHD(6))
	if err := warm.RestoreMemos(ctx, snap); err != nil {
		t.Fatalf("RestoreMemos: %v", err)
	}
	got, err := warm.Evaluate(ctx, 64)
	if err != nil {
		t.Fatalf("warm Evaluate: %v", err)
	}
	if !reflect.DeepEqual(got.Transitions, want.Transitions) {
		t.Fatalf("warm transitions differ:\n got %+v\nwant %+v", got.Transitions, want.Transitions)
	}
	if got := warm.MemoStats().Probes; got != 0 {
		t.Fatalf("warm Evaluate spent %d live probes, want 0", got)
	}
}

func TestRestoreMemosMonotoneMerge(t *testing.T) {
	ctx := context.Background()
	p := memoTestPoly(t)

	// A session that already knows the exact w=2 boundary must not lose
	// it to a snapshot carrying only a partial clear-prefix.
	a := NewAnalyzer(p, WithMaxHD(2))
	if _, err := a.Evaluate(ctx, 64); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	before, err := a.MemoSnapshot(ctx)
	if err != nil {
		t.Fatalf("MemoSnapshot: %v", err)
	}
	partial := &MemoSnapshot{
		Version: MemoSnapshotVersion,
		Width:   8,
		Poly:    0x83,
		Bounds:  []BoundMemo{{Weight: 2, ClearTo: 3}},
	}
	if err := a.RestoreMemos(ctx, partial); err != nil {
		t.Fatalf("RestoreMemos: %v", err)
	}
	after, err := a.MemoSnapshot(ctx)
	if err != nil {
		t.Fatalf("MemoSnapshot: %v", err)
	}
	if !reflect.DeepEqual(before.Bounds, after.Bounds) {
		t.Fatalf("partial restore regressed exact knowledge:\n got %+v\nwant %+v", after.Bounds, before.Bounds)
	}

	// The reverse: a fresh session restoring partial then exact ends up
	// with the exact boundary.
	b := NewAnalyzer(p, WithMaxHD(2))
	if err := b.RestoreMemos(ctx, partial); err != nil {
		t.Fatalf("restore partial: %v", err)
	}
	if err := b.RestoreMemos(ctx, before); err != nil {
		t.Fatalf("restore exact: %v", err)
	}
	final, err := b.MemoSnapshot(ctx)
	if err != nil {
		t.Fatalf("MemoSnapshot: %v", err)
	}
	if !reflect.DeepEqual(final.Bounds, before.Bounds) {
		t.Fatalf("exact-after-partial restore lost knowledge:\n got %+v\nwant %+v", final.Bounds, before.Bounds)
	}
}

func TestMemoSnapshotMerge(t *testing.T) {
	base := &MemoSnapshot{
		Version: MemoSnapshotVersion, Width: 8, Poly: 0x83, Probes: 10,
		Bounds:  []BoundMemo{{Weight: 2, ClearTo: 5}, {Weight: 3, HitAt: 9, Witness: []int{0, 4, 9}}},
		Weights: []WeightMemo{{Weight: 2, DataLen: 16, Count: 3}},
	}
	other := &MemoSnapshot{
		Version: MemoSnapshotVersion, Width: 8, Poly: 0x83, Probes: 7,
		Bounds:  []BoundMemo{{Weight: 2, First: 8, Exact: true, Witness: []int{0, 8}}, {Weight: 3, HitAt: 7, Witness: []int{1, 3, 7}}},
		Weights: []WeightMemo{{Weight: 3, DataLen: 16, Count: 11}},
	}
	if err := base.Merge(other); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("merged snapshot invalid: %v", err)
	}
	if base.Probes != 10 {
		t.Fatalf("Probes = %d, want max(10, 7) = 10", base.Probes)
	}
	if len(base.Bounds) != 2 || len(base.Weights) != 2 {
		t.Fatalf("merged facts = %+v", base)
	}
	w2 := base.Bounds[0]
	if !w2.Exact || w2.First != 8 || w2.ClearTo != 5 {
		t.Fatalf("merged w=2 bound = %+v, want exact first=8 keeping clearTo=5", w2)
	}
	w3 := base.Bounds[1]
	if w3.HitAt != 7 {
		t.Fatalf("merged w=3 bound = %+v, want the cheaper hit at 7", w3)
	}

	mismatch := &MemoSnapshot{Version: MemoSnapshotVersion, Width: 8, Poly: 0x9c}
	if err := base.Merge(mismatch); err == nil {
		t.Fatalf("Merge accepted a different polynomial")
	}
}

func TestRestoreMemosRejectsInvalid(t *testing.T) {
	ctx := context.Background()
	p := memoTestPoly(t)
	a := NewAnalyzer(p, WithMaxHD(6))

	cases := []struct {
		name string
		snap *MemoSnapshot
	}{
		{"nil", nil},
		{"future version", &MemoSnapshot{Version: MemoSnapshotVersion + 1, Width: 8, Poly: 0x83}},
		{"zero version", &MemoSnapshot{Width: 8, Poly: 0x83}},
		{"wrong poly", &MemoSnapshot{Version: 1, Width: 8, Poly: 0x9c}},
		{"wrong width", &MemoSnapshot{Version: 1, Width: 16, Poly: 0x83}},
		{"weight below 2", &MemoSnapshot{Version: 1, Width: 8, Poly: 0x83,
			Bounds: []BoundMemo{{Weight: 1, ClearTo: 4}}}},
		{"exact without first", &MemoSnapshot{Version: 1, Width: 8, Poly: 0x83,
			Bounds: []BoundMemo{{Weight: 2, Exact: true}}}},
		{"clear contradicts hit", &MemoSnapshot{Version: 1, Width: 8, Poly: 0x83,
			Bounds: []BoundMemo{{Weight: 2, ClearTo: 9, HitAt: 9}}}},
		{"witness wrong size", &MemoSnapshot{Version: 1, Width: 8, Poly: 0x83,
			Bounds: []BoundMemo{{Weight: 3, HitAt: 9, Witness: []int{1, 2}}}}},
		{"count weight out of range", &MemoSnapshot{Version: 1, Width: 8, Poly: 0x83,
			Weights: []WeightMemo{{Weight: 5, DataLen: 8, Count: 1}}}},
		{"count length below 1", &MemoSnapshot{Version: 1, Width: 8, Poly: 0x83,
			Weights: []WeightMemo{{Weight: 2, DataLen: 0, Count: 1}}}},
		{"negative probes", &MemoSnapshot{Version: 1, Width: 8, Poly: 0x83, Probes: -1}},
	}
	for _, tc := range cases {
		if err := a.RestoreMemos(ctx, tc.snap); err == nil {
			t.Errorf("%s: RestoreMemos accepted an invalid snapshot", tc.name)
		}
	}
	// The session must be untouched after every rejection.
	if snap, err := a.MemoSnapshot(ctx); err != nil || snap.Entries() != 0 {
		t.Fatalf("rejected restores leaked state: snap=%+v err=%v", snap, err)
	}
}

// Command crctables regenerates the paper's evaluation artifacts:
//
//	-artifact table1   Table 1 (HD bands of the 8 polynomials) with
//	                   expected-vs-measured comparison
//	-artifact figure1  Figure 1 (HD vs data-word length step series)
//	-artifact weights  §3/§4.1 exact weight anchors (W4 = 223059 at MTU, ...)
//	-artifact table2   scaled Table 2 analog: exhaustive census of a small
//	                   width by factorization class (see DESIGN.md §4)
//	-artifact table2spot  32-bit Table 2 spot verification: class
//	                   representatives and excluded classes at MTU length
//	-artifact all      everything above
//
// Reduced runs for quick checks: -maxlen limits Table 1/Figure 1 lengths.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"time"

	"koopmancrc"
	"koopmancrc/internal/gf2"
	"koopmancrc/internal/hamming"
	"koopmancrc/internal/paperdata"
	"koopmancrc/internal/poly"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crctables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crctables", flag.ContinueOnError)
	artifact := fs.String("artifact", "all", "table1|figure1|weights|table2|table2spot|all")
	maxLen := fs.Int("maxlen", paperdata.MaxComputedBits, "maximum data-word length for table1/figure1")
	censusWidth := fs.Int("censuswidth", 16, "CRC width for the scaled table2 census")
	censusLen := fs.Int("censuslen", 128, "target data-word length for the scaled table2 census")
	spotSamples := fs.Int("spotsamples", 12, "random samples per excluded class for table2spot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *artifact {
	case "table1":
		return table1(*maxLen)
	case "figure1":
		return figure1(*maxLen)
	case "weights":
		return weights()
	case "table2":
		return table2(*censusWidth, *censusLen)
	case "table2spot":
		return table2spot(*spotSamples)
	case "all":
		for _, f := range []func() error{
			func() error { return table1(*maxLen) },
			func() error { return figure1(*maxLen) },
			weights,
			func() error { return table2(*censusWidth, *censusLen) },
			func() error { return table2spot(*spotSamples) },
		} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown artifact %q", *artifact)
	}
}

// profiles computes all Table 1 columns once (capped at maxLen).
func profiles(maxLen int) ([]paperdata.Column, []*hamming.Profile, error) {
	cols := paperdata.Table1Columns()
	out := make([]*hamming.Profile, len(cols))
	for i, col := range cols {
		start := time.Now()
		ev := hamming.New(col.P)
		prof, err := ev.Profile(maxLen, col.MaxHD)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", col.Label, err)
		}
		out[i] = prof
		fmt.Fprintf(os.Stderr, "# profiled %-28s in %v\n", col.Label, time.Since(start).Round(time.Millisecond))
	}
	return cols, out, nil
}

func table1(maxLen int) error {
	fmt.Printf("## Table 1 — message lengths (bits) for which each HD is achieved (computed to %d)\n\n", maxLen)
	cols, profs, err := profiles(maxLen)
	if err != nil {
		return err
	}
	for i, col := range cols {
		fmt.Printf("### %s  %s  %s\n", col.Label, col.P, col.Shape)
		for _, b := range profs[i].Bands {
			ge := ""
			if b.AtLeast {
				ge = ">="
			}
			fmt.Printf("    HD%s%d: %d-%d\n", ge, b.HD, b.From, b.To)
		}
		if maxLen == paperdata.MaxComputedBits {
			fmt.Println("  paper comparison:")
			for _, r := range paperdata.CompareProfile(col, profs[i]) {
				mark := "MATCH"
				if !r.Match {
					mark = "MISMATCH"
				}
				fmt.Printf("    %-45s expected %-9s measured %-9s [%s] %s\n",
					r.Name, r.Expected, r.Measured, r.Source, mark)
			}
		}
		fmt.Println()
	}
	return nil
}

func figure1(maxLen int) error {
	fmt.Printf("## Figure 1 — HD vs data-word length (step series, log-x), computed to %d bits\n\n", maxLen)
	cols, profs, err := profiles(maxLen)
	if err != nil {
		return err
	}
	// The marked lengths of Figure 1 plus powers of two.
	marks := []int{paperdata.AckDataBits, paperdata.Ack512DataBits, paperdata.MTUDataBits,
		2 * paperdata.MTUDataBits, 4 * paperdata.MTUDataBits, paperdata.JumboDataBits}
	lengths := []int{}
	for l := 64; l <= maxLen; l *= 2 {
		lengths = append(lengths, l)
	}
	for _, m := range marks {
		if m <= maxLen {
			lengths = append(lengths, m)
		}
	}
	sort.Ints(lengths)
	fmt.Printf("%-10s", "bits")
	for _, col := range cols {
		fmt.Printf(" %10s", col.P.String())
	}
	fmt.Println()
	for _, l := range lengths {
		fmt.Printf("%-10d", l)
		for i := range cols {
			hd, atLeast, ok := profs[i].HDAtLen(l)
			cell := "-"
			if ok {
				if atLeast {
					cell = fmt.Sprintf(">=%d", hd)
				} else {
					cell = fmt.Sprintf("%d", hd)
				}
			}
			fmt.Printf(" %10s", cell)
		}
		fmt.Println()
	}
	// Step series per polynomial: the exact breakpoints (Figure 1's curve).
	fmt.Println("\nbreakpoints (first length of each band):")
	for i, col := range cols {
		fmt.Printf("  %-12s", col.P.String())
		for _, b := range profs[i].Bands {
			ge := ""
			if b.AtLeast {
				ge = ">="
			}
			fmt.Printf(" (%d, HD%s%d)", b.From, ge, b.HD)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func weights() error {
	fmt.Println("## Exact weight anchors (§3, §4.1)")
	ctx := context.Background()
	// One cached session per distinct polynomial: anchors at several
	// lengths of the same generator share its syndrome tables.
	sessions := map[koopmancrc.Polynomial]*koopmancrc.Analyzer{}
	for _, a := range paperdata.WeightAnchors() {
		an := sessions[a.P]
		if an == nil {
			an = koopmancrc.NewAnalyzer(a.P)
			sessions[a.P] = an
		}
		got, err := an.Weight(ctx, a.W, a.DataLen)
		if err != nil {
			return err
		}
		mark := "MATCH"
		if got != a.Count {
			mark = "MISMATCH"
		}
		fmt.Printf("  %v W%d(%d): paper %d, measured %d [%s] %s\n",
			a.P, a.W, a.DataLen, a.Count, got, a.Source, mark)
	}
	fmt.Println()
	return nil
}

func table2(width, censusLen int) error {
	fmt.Printf("## Table 2 analog — exhaustive width-%d census: polynomials with HD=6 at %d data bits\n",
		width, censusLen)
	fmt.Println("   (scaled substitution for the paper's 2^30-polynomial campaign; see DESIGN.md §4)")
	schedule := []int{}
	for l := 16; l < censusLen; l *= 4 {
		schedule = append(schedule, l)
	}
	schedule = append(schedule, censusLen)
	start := time.Now()
	res, err := koopmancrc.Search(context.Background(), koopmancrc.SearchConfig{
		Width: width, MinHD: 6, Lengths: schedule,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  candidates evaluated: %d (%.0f polys/s; the paper measured ~2/s/CPU in 2001)\n",
		res.Candidates, res.PolysPerSecond)
	fmt.Printf("  survivors: %d in %v\n", len(res.Survivors), time.Since(start).Round(time.Millisecond))
	shapes := make([]string, 0, len(res.CensusByShape))
	for s := range res.CensusByShape {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	parityOnly := true
	for _, s := range shapes {
		fmt.Printf("    %-22s %6d\n", s, res.CensusByShape[s])
	}
	for _, p := range res.Survivors {
		if !p.DivisibleByXPlus1() {
			parityOnly = false
			break
		}
	}
	fmt.Printf("  all survivors divisible by (x+1): %v (paper's Table 2 finding at 32 bits: true)\n\n", parityOnly)
	return nil
}

func table2spot(samples int) error {
	fmt.Println("## Table 2 spot verification at 32 bits (MTU = 12112 data bits)")
	fmt.Println("  class representatives named in the paper:")
	reps := []struct {
		p     koopmancrc.Polynomial
		class string
	}{
		{poly.Koopman32K, "{1,3,28}"},
		{poly.Castagnoli1131515, "{1,1,15,15}"},
		{poly.Koopman1130, "{1,1,30}"},
		{poly.KoopmanSparse6, "{1,1,30}"},
	}
	ctx := context.Background()
	for _, r := range reps {
		an := koopmancrc.NewAnalyzer(r.p, koopmancrc.WithMaxHD(7))
		hd, exact, err := an.HDAt(ctx, paperdata.MTUDataBits)
		if err != nil {
			return err
		}
		fmt.Printf("    %v %-14s HD at MTU = %d (exact=%v) — expect 6\n", r.p, r.class, hd, exact)
	}

	fmt.Printf("  excluded classes, %d random samples each (paper: no member reaches HD=6 at MTU):\n", samples)
	rng := rand.New(rand.NewPCG(2002, 32))
	checkClass := func(name string, gen func() koopmancrc.Polynomial) error {
		for i := 0; i < samples; i++ {
			p := gen()
			// Increasing-length pre-filter: almost every sample fails fast.
			ev := hamming.New(p)
			ok, err := ev.MeetsHDAtLengths([]int{256, 2048, paperdata.MTUDataBits}, 6)
			if err != nil {
				return err
			}
			if ok {
				return fmt.Errorf("sample %v of class %s reaches HD=6 at MTU, contradicting the paper", p, name)
			}
		}
		fmt.Printf("    %-28s 0/%d samples reach HD=6 at MTU\n", name, samples)
		return nil
	}
	if err := checkClass("not divisible by (x+1)", func() koopmancrc.Polynomial {
		for {
			k := rng.Uint64N(1<<32) | 1<<31
			p, err := poly.FromKoopman(32, k)
			if err == nil && !p.DivisibleByXPlus1() {
				return p
			}
		}
	}); err != nil {
		return err
	}
	if err := checkClass("{1,31} (iSCSI draft class)", func() koopmancrc.Polynomial {
		for {
			// (x+1) times a random degree-31 polynomial with +1 term.
			g := uint64(rng.Uint64N(1<<31))<<1 | 1 | 1<<31
			full := mulGF2(0x3, g)
			p, err := poly.FromFull(gf2.Poly(full))
			if err == nil && p.Width() == 32 {
				return p
			}
		}
	}); err != nil {
		return err
	}
	// The named {32} polynomials (802.3, 0xD419CC15, 0x80108400) all have
	// HD <= 5 at MTU, consistent with "none has HD>4 at 12112 bits" among
	// primitive polynomials and the found irreducible ones capping at HD=5.
	for _, p := range []koopmancrc.Polynomial{poly.IEEE8023, poly.CastagnoliHD5, poly.KoopmanSparse5} {
		hd, _, err := koopmancrc.NewAnalyzer(p, koopmancrc.WithMaxHD(7)).HDAt(ctx, paperdata.MTUDataBits)
		if err != nil {
			return err
		}
		fmt.Printf("    {32} %v: HD at MTU = %d (<= 5) ✓\n", p, hd)
	}
	fmt.Println()
	return nil
}

// mulGF2 is carry-less multiplication for the {1,31} sample generator.
func mulGF2(a, b uint64) (r uint64) {
	for ; b != 0; b >>= 1 {
		if b&1 != 0 {
			r ^= a
		}
		a <<= 1
	}
	return r
}

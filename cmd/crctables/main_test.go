package main

import "testing"

func TestTable2SmallWidth(t *testing.T) {
	if err := run([]string{"-artifact", "table2", "-censuswidth", "10", "-censuslen", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Reduced(t *testing.T) {
	// A reduced-length Table 1 (no paper comparison is printed below the
	// full range, but every column must still profile cleanly).
	if err := run([]string{"-artifact", "table1", "-maxlen", "512"}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Reduced(t *testing.T) {
	if err := run([]string{"-artifact", "figure1", "-maxlen", "512"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownArtifact(t *testing.T) {
	if err := run([]string{"-artifact", "bogus"}); err == nil {
		t.Error("unknown artifact should error")
	}
}

// Command crcsearch runs the polynomial design-space search, locally or
// distributed across machines as in the paper's §4.2 workstation fleet.
//
//	crcsearch -mode local -width 16 -hd 6 -lengths 16,64,128
//	crcsearch -mode coord -listen :9000 -width 16 -hd 6 -lengths 16,64,128 -jobsize 1024
//	crcsearch -mode worker -connect host:9000 -id alpha
//
// With -target the coordinator sizes each grant adaptively so every job
// takes roughly that wall time per worker (clamped to [-minjobsize,
// -maxjobsize]), keeping stragglers from dominating tail latency:
//
//	crcsearch -mode coord -target 30s -minjobsize 64 -maxjobsize 1048576 ...
//
// Workers coalesce result lines into gzipped batches (-batch, default 8)
// so the many small jobs adaptive sizing produces do not multiply wire
// traffic; -batch 1 restores one message per result.
//
// Long sweeps should run the coordinator with a durable checkpoint so an
// interrupted search (crash, SIGINT) resumes instead of restarting, and
// so progress can be inspected read-only without touching the running
// coordinator:
//
//	crcsearch -mode coord -checkpoint /var/lib/crcsearch/w32 ...
//	crcsearch -mode status -checkpoint /var/lib/crcsearch/w32
//	crcsearch -mode coord -checkpoint /var/lib/crcsearch/w32 -resume ...
//
// -mode status -json emits the same report as machine-readable JSON.
// A running coordinator can additionally serve live telemetry —
// per-worker EWMA rates, grant sizes, lease ages, requeue counters —
// as a Prometheus exposition:
//
//	crcsearch -mode coord -debug 127.0.0.1:9100 ...
//	curl http://127.0.0.1:9100/metrics
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"koopmancrc"
	"koopmancrc/internal/core"
	"koopmancrc/internal/dist"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crcsearch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crcsearch", flag.ContinueOnError)
	mode := fs.String("mode", "local", "local|coord|worker|status")
	width := fs.Int("width", 16, "CRC width in bits")
	minHD := fs.Int("hd", 6, "minimum Hamming distance to demand")
	lengths := fs.String("lengths", "16,64,128", "increasing-length filter schedule (bits)")
	startIdx := fs.Uint64("start", 0, "first raw index (local mode)")
	endIdx := fs.Uint64("end", 0, "end raw index, 0 = whole space (local mode)")
	listen := fs.String("listen", "127.0.0.1:9000", "coordinator listen address")
	connect := fs.String("connect", "127.0.0.1:9000", "coordinator address (worker mode)")
	id := fs.String("id", "", "worker id, unique per fleet member (default: hostname-pid)")
	jobSize := fs.Uint64("jobsize", 4096, "raw indices per job before throughput data exists (coord mode)")
	target := fs.Duration("target", 0, "adaptive job sizing: target wall time per job, 0 = fixed -jobsize (coord mode)")
	minJob := fs.Uint64("minjobsize", 0, "smallest adaptive grant in raw indices, 0 = 1 (coord mode)")
	maxJob := fs.Uint64("maxjobsize", 0, "largest adaptive grant in raw indices, 0 = 64*jobsize (coord mode)")
	lease := fs.Duration("lease", 30*time.Second, "job lease timeout (coord mode)")
	checkpoint := fs.String("checkpoint", "", "durable journal directory for checkpoint/resume/status")
	resume := fs.Bool("resume", false, "resume the sweep journaled in -checkpoint (coord mode)")
	par := fs.Int("parallelism", 0, "filter goroutines per machine, 0 = GOMAXPROCS (local and worker modes)")
	batch := fs.Int("batch", 0, "results coalesced per gzipped send, 1 = every result its own message, 0 = default (worker mode)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of the human report (status mode)")
	debug := fs.String("debug", "", "read-only telemetry listener: /metrics Prometheus exposition + /healthz (coord mode; keep loopback)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sched, err := parseLengths(*lengths)
	if err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	switch *mode {
	case "local":
		return runLocal(*width, *minHD, sched, *startIdx, *endIdx, *par)
	case "coord":
		return runCoord(*listen, dist.CoordinatorConfig{
			Spec:          dist.SearchSpec{Width: *width, MinHD: *minHD, Lengths: sched},
			JobSize:       *jobSize,
			TargetJobTime: *target,
			MinJobSize:    *minJob,
			MaxJobSize:    *maxJob,
			LeaseTimeout:  *lease,
			CheckpointDir: *checkpoint,
			Resume:        *resume,
			DebugAddr:     *debug,
		})
	case "worker":
		return runWorker(*connect, *id, *par, *batch)
	case "status":
		if *checkpoint == "" {
			return fmt.Errorf("-mode status requires -checkpoint")
		}
		return runStatus(*checkpoint, *jsonOut)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func parseLengths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad length %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func runLocal(width, minHD int, lengths []int, start, end uint64, par int) error {
	res, err := koopmancrc.Search(context.Background(), koopmancrc.SearchConfig{
		Width: width, MinHD: minHD, Lengths: lengths, StartIdx: start, EndIdx: end,
		Parallelism: par,
	})
	if err != nil {
		return err
	}
	printSummary(res.Candidates, res.PolysPerSecond, res.Survivors, res.CensusByShape)
	return nil
}

func runCoord(listen string, cfg dist.CoordinatorConfig) error {
	checkpoint := cfg.CheckpointDir
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	c, err := dist.NewCoordinator(listen, cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(os.Stderr, "coordinator listening on %s\n", c.Addr())
	if da := c.DebugAddr(); da != "" {
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", da)
	}

	// SIGINT/SIGTERM suspend the sweep cleanly: Close disconnects the
	// workers, flushes a final checkpoint snapshot and unblocks Wait.
	interrupted := make(chan struct{})
	finished := make(chan struct{})
	defer close(finished)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		select {
		case <-sig:
			fmt.Fprintln(os.Stderr, "interrupt: flushing checkpoint and shutting down")
			close(interrupted)
			c.Close()
		case <-finished:
		}
	}()

	sum, err := c.Wait(context.Background())
	if err != nil {
		select {
		case <-interrupted:
			if checkpoint != "" {
				done, total := c.Progress()
				fmt.Fprintf(os.Stderr,
					"checkpoint saved: %d/%d indices done; inspect with -mode status, continue with -mode coord -checkpoint %s -resume\n",
					done, total, checkpoint)
				return nil
			}
		default:
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "jobs=%d requeues=%d resumed=%d\n", sum.Jobs, sum.Requeues, sum.Resumed)
	printStages(sum.Stages)
	census, err := core.Census(sum.Survivors)
	if err != nil {
		return err
	}
	// Tiny spaces can complete in under the timer resolution; avoid a
	// division by zero reporting +Inf polys/s.
	rate := 0.0
	if sum.Elapsed > 0 {
		rate = float64(sum.Canonical) / sum.Elapsed.Seconds()
	}
	printSummary(sum.Canonical, rate, sum.Survivors, census)
	return nil
}

func runWorker(connect, id string, par, batch int) error {
	w := dist.NewWorker(connect, dist.WorkerConfig{
		ID:          id,
		Parallelism: par,
		ResultBatch: batch,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	n, err := w.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "worker %s completed %d jobs\n", w.ID(), n)
	return nil
}

// runStatus replays a checkpoint journal read-only and prints the sweep
// status: job/index coverage, per-worker throughput and sizing, requeue
// history and an ETA. It never contacts a running coordinator.
func runStatus(checkpoint string, jsonOut bool) error {
	st, err := dist.ReadStatus(checkpoint)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	fmt.Printf("sweep:     width=%d hd>=%d lengths=%v\n", st.Spec.Width, st.Spec.MinHD, st.Spec.Lengths)
	fmt.Printf("space:     %d raw indices, base job size %d\n", st.TotalIndices, st.JobSize)
	pct := 0.0
	if st.TotalIndices > 0 {
		pct = 100 * float64(st.DoneIndices) / float64(st.TotalIndices)
	}
	fmt.Printf("jobs:      %d carved: %d done, %d pending\n", st.CarvedJobs, st.DoneJobs, st.PendingJobs)
	fmt.Printf("indices:   %d/%d done (%.1f%%); %d pending in carved jobs, %d uncarved\n",
		st.DoneIndices, st.TotalIndices, pct, st.PendingIndices, st.UncarvedIndices)
	fmt.Printf("candidates: %d canonical evaluated, %d survivors so far\n", st.Canonical, st.Survivors)
	fmt.Printf("requeues:  %d\n", st.Requeues)
	for _, rq := range st.RequeueLog {
		fmt.Printf("  job %-6d lost by %-12q at %s\n", rq.JobID, rq.Worker, rq.Time.Format(time.RFC3339))
	}
	fmt.Printf("workers:   %d seen\n", len(st.Workers))
	for _, w := range st.Workers {
		fmt.Printf("  %-12s jobs=%-5d canonical=%-10d compute=%-12v rate=%8.1f cand/s  grant=%d\n",
			w.ID, w.JobsDone, w.Canonical, w.Compute.Round(time.Millisecond), w.Rate, w.LastGrantSize)
	}
	fmt.Printf("activity:  started %s, last record %s (%v active)\n",
		st.Started.Format(time.RFC3339), st.LastActivity.Format(time.RFC3339), st.Active.Round(time.Second))
	switch {
	case st.Complete:
		fmt.Println("state:     complete")
	case st.IndexRate > 0:
		fmt.Printf("state:     in progress; ~%.0f indices/s, ETA %v\n", st.IndexRate, st.ETA.Round(time.Second))
	default:
		fmt.Println("state:     in progress; too little data for an ETA")
	}
	return nil
}

// printStages reports the fleet-wide per-stage drop statistics the
// coordinator aggregated from worker results.
func printStages(stages []core.StageStats) {
	for _, st := range stages {
		drop := 0.0
		if st.In > 0 {
			drop = 100 * float64(st.In-st.Out) / float64(st.In)
		}
		fmt.Fprintf(os.Stderr, "stage %-24s in=%-10d out=%-10d drop=%5.1f%% compute=%v\n",
			st.Name, st.In, st.Out, drop, st.Elapsed)
	}
}

func printSummary(candidates uint64, rate float64, survivors []koopmancrc.Polynomial, census map[string]int) {
	fmt.Printf("candidates: %d (%.0f polys/s)\nsurvivors:  %d\n", candidates, rate, len(survivors))
	shapes := make([]string, 0, len(census))
	for s := range census {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	for _, s := range shapes {
		fmt.Printf("  %-22s %6d\n", s, census[s])
	}
	for i, p := range survivors {
		if i == 40 {
			fmt.Printf("  ... %d more\n", len(survivors)-40)
			break
		}
		fmt.Printf("  %v\n", p)
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"testing"

	"koopmancrc/internal/dist"
)

func TestParseLengths(t *testing.T) {
	got, err := parseLengths(" 16, 64,128 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 16 || got[2] != 128 {
		t.Errorf("parseLengths = %v", got)
	}
	if _, err := parseLengths("16,x"); err == nil {
		t.Error("bad entry should error")
	}
	if _, err := parseLengths("0"); err == nil {
		t.Error("non-positive length should error")
	}
}

func TestRunLocalSmall(t *testing.T) {
	if err := run([]string{"-mode", "local", "-width", "8", "-hd", "4", "-lengths", "9,19"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	if err := run([]string{"-mode", "coord", "-resume"}); err == nil {
		t.Error("-resume without -checkpoint should error")
	}
}

func TestStatusRequiresCheckpoint(t *testing.T) {
	if err := run([]string{"-mode", "status"}); err == nil {
		t.Error("-mode status without -checkpoint should error")
	}
}

func TestStatusEmptyCheckpointErrors(t *testing.T) {
	// A directory with no journal has no sweep to report on; status
	// must fail loudly instead of printing an empty sweep.
	if err := run([]string{"-mode", "status", "-checkpoint", t.TempDir()}); err == nil {
		t.Error("-mode status on an empty checkpoint should error")
	}
}

func TestResumeEmptyCheckpointErrors(t *testing.T) {
	// An empty journal directory has no sweep to continue; the
	// coordinator must refuse before binding the listener.
	err := run([]string{
		"-mode", "coord", "-listen", "127.0.0.1:0",
		"-width", "8", "-hd", "4", "-lengths", "9,19",
		"-checkpoint", t.TempDir(), "-resume",
	})
	if err == nil {
		t.Error("resuming an empty checkpoint should error")
	}
}

func TestStatusJSON(t *testing.T) {
	// Run a tiny checkpointed sweep to completion, then render its
	// status as JSON and decode it back into the dist.Status shape.
	dir := t.TempDir()
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:          dist.SearchSpec{Width: 8, MinHD: 4, Lengths: []int{9, 19}},
		JobSize:       32,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: "solo"})
	done := make(chan error, 1)
	go func() { _, err := w.Run(context.Background()); done <- err }()
	if _, err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	coord.Close()

	old := os.Stdout
	r, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw
	statusErr := runStatus(dir, true)
	pw.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if statusErr != nil {
		t.Fatal(statusErr)
	}

	var st dist.Status
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("status -json is not valid JSON: %v\n%s", err, out)
	}
	if !st.Complete || st.TotalIndices != 128 || st.DoneIndices != 128 {
		t.Errorf("decoded status %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "solo" || st.Workers[0].JobsDone == 0 {
		t.Errorf("decoded workers %+v", st.Workers)
	}
	// The wire field names are snake_case, not Go identifiers.
	for _, key := range []string{`"total_indices"`, `"done_jobs"`, `"jobs_done"`, `"rate"`, `"complete"`} {
		if !bytes.Contains(out, []byte(key)) {
			t.Errorf("JSON missing key %s:\n%s", key, out)
		}
	}
}

package main

import "testing"

func TestParseLengths(t *testing.T) {
	got, err := parseLengths(" 16, 64,128 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 16 || got[2] != 128 {
		t.Errorf("parseLengths = %v", got)
	}
	if _, err := parseLengths("16,x"); err == nil {
		t.Error("bad entry should error")
	}
	if _, err := parseLengths("0"); err == nil {
		t.Error("non-positive length should error")
	}
}

func TestRunLocalSmall(t *testing.T) {
	if err := run([]string{"-mode", "local", "-width", "8", "-hd", "4", "-lengths", "9,19"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	if err := run([]string{"-mode", "coord", "-resume"}); err == nil {
		t.Error("-resume without -checkpoint should error")
	}
}

func TestStatusRequiresCheckpoint(t *testing.T) {
	if err := run([]string{"-mode", "status"}); err == nil {
		t.Error("-mode status without -checkpoint should error")
	}
}

func TestStatusEmptyCheckpointErrors(t *testing.T) {
	// A directory with no journal has no sweep to report on; status
	// must fail loudly instead of printing an empty sweep.
	if err := run([]string{"-mode", "status", "-checkpoint", t.TempDir()}); err == nil {
		t.Error("-mode status on an empty checkpoint should error")
	}
}

func TestResumeEmptyCheckpointErrors(t *testing.T) {
	// An empty journal directory has no sweep to continue; the
	// coordinator must refuse before binding the listener.
	err := run([]string{
		"-mode", "coord", "-listen", "127.0.0.1:0",
		"-width", "8", "-hd", "4", "-lengths", "9,19",
		"-checkpoint", t.TempDir(), "-resume",
	})
	if err == nil {
		t.Error("resuming an empty checkpoint should error")
	}
}

// Command crcbench sweeps every checksum kernel over a range of payload
// sizes and writes the throughput trajectory as JSON — the benchmark
// artifact tracked in BENCH_PR6.json.
//
// Usage:
//
//	crcbench [-o BENCH_PR6.json] [-quick] [-algorithm CRC-32C/iSCSI]
//	         [-kinds slicing8,slicing16,chorba,hardware]
//	         [-sizes 64,4096,1048576] [-budget 50ms] [-serve] [-corpus]
//	         [-tracing]
//	crcbench -validate BENCH_PR6.json
//
// The default sweep runs every concrete kernel kind the algorithm
// admits across payload sizes from 64 B to 16 MiB. -quick shrinks the
// sweep (four sizes up to 1 MiB, small time budget) for CI smoke runs.
// -validate checks an existing report against the schema the sweep
// writes — kernels present, sizes covered, throughput positive — and
// exits non-zero on a malformed file, so CI can gate on artifact shape
// without re-measuring.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"koopmancrc"
	"koopmancrc/crchash"
	"koopmancrc/internal/corpus"
	"koopmancrc/internal/dist"
	"koopmancrc/internal/obs"
	"koopmancrc/serve"
	"koopmancrc/serve/client"
)

// Report is the artifact schema: host identification, the measured
// startup auto-profile, and one row per kernel × payload size.
type Report struct {
	// Schema names the artifact format; bump on incompatible change.
	Schema string `json:"schema"`
	// GeneratedAt is RFC 3339 UTC.
	GeneratedAt string `json:"generated_at"`
	Host        Host   `json:"host"`
	// Algorithm is the catalogued algorithm swept.
	Algorithm string `json:"algorithm"`
	// AutoKernel is the kernel Kind Auto picked for the algorithm on
	// this host during this run.
	AutoKernel string `json:"auto_kernel"`
	// AutoProfile is the startup micro-benchmark that drove the choice.
	AutoProfile crchash.AutoReport `json:"auto_profile"`
	Results     []Result           `json:"results"`
	// Serve, when present (-serve), measures the serving layer's batch
	// amortization: many small checksums in one /v1/checksum/batch round
	// trip versus the same checksums as sequential /v1/checksum calls.
	Serve *ServeBench `json:"serve,omitempty"`
	// Corpus, when present (-corpus), measures the persistent-corpus
	// warm start: the first /v1/evaluate on a cold server versus one
	// warm-started from a corpus baked offline with the same sweep.
	Corpus *CorpusBench `json:"corpus,omitempty"`
	// Tracing, when present (-tracing), measures the request-tracing
	// tax: warm request cost with the flight recorder on versus off,
	// plus raw recorder admission throughput.
	Tracing *TracingBench `json:"tracing,omitempty"`
}

// TracingBench is the tracing overhead measurement: warm /v1/checksum
// requests driven straight through the handler (no network) on a
// server with tracing disabled versus enabled at the default sample
// rate. The overhead is the per-request delta expressed against the
// 50 µs warm-request reference the instrumentation budget has used
// since PR 7, so the gate does not wobble with how fast the checksum
// itself happens to be on the measuring host.
type TracingBench struct {
	// Requests is the per-arm measured request count.
	Requests int `json:"requests"`
	// BaselineUS is microseconds per warm request with tracing off.
	BaselineUS float64 `json:"baseline_us"`
	// InstrumentedUS is the same request with the flight recorder on
	// (256 traces, sample rate 0.1).
	InstrumentedUS float64 `json:"instrumented_us"`
	// ReferenceUS is the warm-request reference the overhead share is
	// taken against (50).
	ReferenceUS float64 `json:"reference_us"`
	// OverheadPct is (InstrumentedUS-BaselineUS)/ReferenceUS * 100;
	// the gate is <= 2.0.
	OverheadPct float64 `json:"overhead_pct"`
	// RecorderOpsPerSec is raw FlightRecorder.Record throughput over
	// pre-built span trees with distinct trace IDs.
	RecorderOpsPerSec float64 `json:"recorder_ops_per_sec"`
}

// CorpusBench is the warm-start measurement: one polynomial baked into
// a throwaway corpus, then the same first-evaluation timed against an
// in-process crcserve without and with -corpus.
type CorpusBench struct {
	Poly   string `json:"poly"` // Koopman notation
	Width  int    `json:"width"`
	MaxLen int    `json:"max_len"`
	MaxHD  int    `json:"max_hd"`
	// ColdSeconds is the first /v1/evaluate on a server with no corpus:
	// the full engine scan runs inline with the request.
	ColdSeconds float64 `json:"cold_seconds"`
	// WarmSeconds is the same first /v1/evaluate on a server whose pool
	// warm-started the session from the baked corpus.
	WarmSeconds float64 `json:"warm_seconds"`
	// Speedup is ColdSeconds / WarmSeconds.
	Speedup float64 `json:"speedup"`
	// WarmProbes is the warm session's live engine probe count after the
	// evaluation — zero when the corpus fully covered the query.
	WarmProbes int64 `json:"warm_probes"`
}

// ServeBench is the serve-level amortization measurement: Items small
// payloads of PayloadBytes each, pushed through an in-process crcserve
// over a loopback TCP listener.
type ServeBench struct {
	Items        int `json:"items"`
	PayloadBytes int `json:"payload_bytes"`
	// SequentialIPS is checksum items per second issuing one
	// /v1/checksum call per item, back to back.
	SequentialIPS float64 `json:"sequential_ips"`
	// BatchIPS is checksum items per second with all items in one
	// /v1/checksum/batch round trip per request.
	BatchIPS float64 `json:"batch_ips"`
	// Amortization is BatchIPS / SequentialIPS — how much per-request
	// overhead batching reclaims.
	Amortization float64 `json:"amortization"`
}

// Host identifies the measuring machine well enough to compare
// trajectories across checkins.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// Result is one kernel × payload-size measurement.
type Result struct {
	Kernel string `json:"kernel"`
	// Size is the payload length in bytes.
	Size int `json:"size"`
	// GBps is throughput in decimal gigabytes per second.
	GBps float64 `json:"gbps"`
}

const schemaName = "koopmancrc/crcbench/v1"

var fullSizes = []int{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20}
var quickSizes = []int{64, 4096, 65536, 1 << 20}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crcbench", flag.ContinueOnError)
	outPath := fs.String("o", "", "write the JSON report here instead of stdout")
	quick := fs.Bool("quick", false, "small sweep with a short budget (CI smoke)")
	algorithm := fs.String("algorithm", "CRC-32C/iSCSI", "catalogued algorithm to sweep")
	kindList := fs.String("kinds", "", "comma-separated kernel kinds (default: every admissible concrete kind)")
	sizeList := fs.String("sizes", "", "comma-separated payload sizes in bytes (default: 64B..16MiB sweep)")
	budget := fs.Duration("budget", 50*time.Millisecond, "time budget per kernel+size measurement")
	serveBench := fs.Bool("serve", false, "also measure serve-level batch amortization (64 small payloads batched vs sequential)")
	corpusBench := fs.Bool("corpus", false, "also measure corpus warm-start: first /v1/evaluate cold vs restored from a baked corpus")
	tracingBench := fs.Bool("tracing", false, "also measure request-tracing overhead: warm requests with the flight recorder on vs off, plus recorder ops/sec")
	validate := fs.String("validate", "", "validate an existing report file and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validate != "" {
		return validateReport(*validate, out)
	}

	params, err := crchash.Lookup(*algorithm)
	if err != nil {
		return err
	}

	kinds, err := pickKinds(*kindList, params)
	if err != nil {
		return err
	}
	sizes := fullSizes
	if *quick {
		sizes = quickSizes
		if *budget == 50*time.Millisecond {
			*budget = 10 * time.Millisecond
		}
	}
	if *sizeList != "" {
		sizes = nil
		for _, f := range strings.Split(*sizeList, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n <= 0 {
				return fmt.Errorf("bad -sizes entry %q", f)
			}
			sizes = append(sizes, n)
		}
		sort.Ints(sizes)
	}

	rep := Report{
		Schema:      schemaName,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host: Host{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Algorithm:   *algorithm,
		AutoKernel:  crchash.AutoKind(params).String(),
		AutoProfile: crchash.AutoProfile(),
	}

	payload := make([]byte, sizes[len(sizes)-1])
	seed := uint64(0x9E3779B97F4A7C15)
	for i := range payload {
		seed = seed*6364136223846793005 + 1442695040888963407
		payload[i] = byte(seed >> 56)
	}

	for _, k := range kinds {
		e, err := crchash.NewEngine(params, k)
		if err != nil {
			return fmt.Errorf("%v: %w", k, err)
		}
		for _, size := range sizes {
			bps := measure(e, payload[:size], *budget)
			rep.Results = append(rep.Results, Result{
				Kernel: k.String(), Size: size, GBps: bps / 1e9,
			})
			fmt.Fprintf(out, "%-10s %9dB %8.3f GB/s\n", k, size, bps/1e9)
		}
	}

	if *serveBench {
		sb, err := measureServe(*algorithm, *quick)
		if err != nil {
			return fmt.Errorf("serve bench: %w", err)
		}
		rep.Serve = sb
		fmt.Fprintf(out, "serve      %3d x %4dB  sequential %9.0f items/s  batch %9.0f items/s  amortization %.1fx\n",
			sb.Items, sb.PayloadBytes, sb.SequentialIPS, sb.BatchIPS, sb.Amortization)
	}

	if *corpusBench {
		cb, err := measureCorpus(*quick)
		if err != nil {
			return fmt.Errorf("corpus bench: %w", err)
		}
		rep.Corpus = cb
		fmt.Fprintf(out, "corpus     %s/%d maxlen %d hd %d  cold %7.3fs  warm %7.3fs  speedup %6.1fx  warm probes %d\n",
			cb.Poly, cb.Width, cb.MaxLen, cb.MaxHD, cb.ColdSeconds, cb.WarmSeconds, cb.Speedup, cb.WarmProbes)
	}

	if *tracingBench {
		tb, err := measureTracing(*quick)
		if err != nil {
			return fmt.Errorf("tracing bench: %w", err)
		}
		rep.Tracing = tb
		fmt.Fprintf(out, "tracing    %6d reqs  off %7.2fus  on %7.2fus  overhead %+5.2f%% of %gus  recorder %9.0f ops/s\n",
			tb.Requests, tb.BaselineUS, tb.InstrumentedUS, tb.OverheadPct, tb.ReferenceUS, tb.RecorderOpsPerSec)
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		_, err = out.Write(enc)
		return err
	}
	return os.WriteFile(*outPath, enc, 0o644)
}

// pickKinds resolves -kinds, defaulting to every concrete kind the
// algorithm admits (Bitwise included: the trajectory tracks the floor
// too).
func pickKinds(list string, p crchash.Params) ([]crchash.Kind, error) {
	if list == "" {
		var out []crchash.Kind
		for _, k := range crchash.Kinds() {
			if k.Admits(p) {
				out = append(out, k)
			}
		}
		return out, nil
	}
	var out []crchash.Kind
	for _, f := range strings.Split(list, ",") {
		k, err := crchash.ParseKind(f)
		if err != nil {
			return nil, err
		}
		if k == crchash.Auto {
			return nil, fmt.Errorf("-kinds wants concrete kinds; auto is a selection policy")
		}
		if !k.Admits(p) {
			return nil, fmt.Errorf("kind %v does not admit %s", k, p.Name)
		}
		out = append(out, k)
	}
	return out, nil
}

// measure times one engine on one payload for the budget and returns
// bytes/second.
func measure(e crchash.Engine, data []byte, budget time.Duration) float64 {
	e.Checksum(data) // warm tables and the stdlib's lazy table init
	var done int64
	start := time.Now()
	for time.Since(start) < budget {
		e.Checksum(data)
		done += int64(len(data))
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(done) / elapsed.Seconds()
}

// measureServe stands up an in-process crcserve on a loopback listener
// and measures the batch amortization the serving layer delivers: 64
// distinct 64-byte payloads as sequential /v1/checksum calls versus the
// same payloads in single /v1/checksum/batch round trips. Loopback
// keeps the network out of the picture, so the ratio isolates exactly
// the per-request HTTP + JSON overhead that batching amortizes.
func measureServe(algorithm string, quick bool) (*ServeBench, error) {
	const items, payloadBytes = 64, 64
	budget := time.Second
	if quick {
		budget = 200 * time.Millisecond
	}

	srv, err := serve.New(serve.Config{})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	c := client.New("http://" + ln.Addr().String())

	req := serve.ChecksumBatchRequest{Items: make([]serve.ChecksumRequest, items)}
	for i := range req.Items {
		payload := make([]byte, payloadBytes)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		req.Items[i] = serve.ChecksumRequest{Algorithm: algorithm, Data: payload}
	}
	ctx := context.Background()

	// Warm both paths: connection establishment, engine build, the
	// measured auto-profile.
	if _, err := c.Checksum(ctx, algorithm, req.Items[0].Data); err != nil {
		return nil, err
	}
	if _, err := c.ChecksumBatch(ctx, req); err != nil {
		return nil, err
	}

	var seqDone int
	start := time.Now()
	for time.Since(start) < budget {
		for _, item := range req.Items {
			if _, err := c.Checksum(ctx, item.Algorithm, item.Data); err != nil {
				return nil, err
			}
		}
		seqDone += items
	}
	seqIPS := float64(seqDone) / time.Since(start).Seconds()

	var batchDone int
	start = time.Now()
	for time.Since(start) < budget {
		resp, err := c.ChecksumBatch(ctx, req)
		if err != nil {
			return nil, err
		}
		if resp.Failed != 0 {
			return nil, fmt.Errorf("%d batch items failed", resp.Failed)
		}
		batchDone += items
	}
	batchIPS := float64(batchDone) / time.Since(start).Seconds()

	if seqIPS <= 0 || batchIPS <= 0 {
		return nil, fmt.Errorf("degenerate measurement: sequential %f, batch %f items/s", seqIPS, batchIPS)
	}
	return &ServeBench{
		Items:         items,
		PayloadBytes:  payloadBytes,
		SequentialIPS: seqIPS,
		BatchIPS:      batchIPS,
		Amortization:  batchIPS / seqIPS,
	}, nil
}

// measureCorpus bakes one real 32-bit polynomial (CRC-32 IEEE 802.3)
// into a throwaway corpus, then times the first /v1/evaluate against an
// in-process crcserve twice: once cold, once warm-started from the
// corpus. The delta is exactly the engine work the corpus replaces; the
// warm session's live probe count pins the "zero probes when covered"
// serving guarantee in the artifact.
func measureCorpus(quick bool) (*CorpusBench, error) {
	const polyHex, width = "0x82608edb", 32 // CRC-32 IEEE 802.3, Koopman notation
	maxLen, maxHD := 4096, 5
	if quick {
		maxLen = 1024
	}
	p, err := koopmancrc.ParsePolynomial(width, koopmancrc.Koopman, polyHex)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "crcbench-corpus-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		return nil, err
	}
	sum, err := dist.Bake(context.Background(), dist.BakeSpec{
		Width: width, Polys: []uint64{p.Koopman()}, MaxLen: maxLen, MaxHD: maxHD,
	}, store, dist.BakeConfig{})
	if err != nil {
		return nil, err
	}
	if len(sum.Failed) != 0 {
		return nil, fmt.Errorf("bake failed: %v", sum.Failed[0].Err)
	}
	if err := store.Close(); err != nil {
		return nil, err
	}

	req := serve.EvaluateRequest{
		PolyRef: serve.PolyRef{Poly: polyHex, Width: width},
		MaxLen:  maxLen,
		MaxHD:   maxHD,
	}
	cold, _, err := timeFirstEvaluate(serve.Config{}, req)
	if err != nil {
		return nil, fmt.Errorf("cold: %w", err)
	}
	warm, warmProbes, err := timeFirstEvaluate(serve.Config{CorpusDir: dir}, req)
	if err != nil {
		return nil, fmt.Errorf("warm: %w", err)
	}
	if warm <= 0 {
		return nil, fmt.Errorf("degenerate warm measurement: %v", warm)
	}
	return &CorpusBench{
		Poly:        polyHex,
		Width:       width,
		MaxLen:      maxLen,
		MaxHD:       maxHD,
		ColdSeconds: cold.Seconds(),
		WarmSeconds: warm.Seconds(),
		Speedup:     cold.Seconds() / warm.Seconds(),
		WarmProbes:  warmProbes,
	}, nil
}

// measureTracing drives warm /v1/checksum requests straight through
// the handler — no listener, no network — against two servers that
// differ only in tracing: recorder off versus on at the defaults
// crcserve ships (256 traces, sample rate 0.1). Each arm takes the
// minimum over several measurement blocks, the standard estimator for
// shaving scheduler noise off a hot-loop timing. The recorder's raw
// admission rate is measured separately over pre-built span trees with
// distinct IDs, so sampling decisions vary the way live traffic's do.
func measureTracing(quick bool) (*TracingBench, error) {
	const refUS = 50.0
	rounds, blocks := 20000, 10
	if quick {
		rounds = 4000
	}
	perBlock := rounds / blocks

	mkArm := func(cfg serve.Config) (func() (float64, error), func(), error) {
		srv, err := serve.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		const body = `{"algorithm":"CRC-32C/iSCSI","text":"123456789"}`
		do := func() int {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/checksum", strings.NewReader(body)))
			return rec.Code
		}
		for i := 0; i < 200; i++ { // warm the engine and the allocator
			if code := do(); code != http.StatusOK {
				srv.Close()
				return nil, nil, fmt.Errorf("warm checksum: %d", code)
			}
		}
		block := func() (float64, error) {
			start := time.Now()
			for i := 0; i < perBlock; i++ {
				if code := do(); code != http.StatusOK {
					return 0, fmt.Errorf("checksum: %d", code)
				}
			}
			return time.Since(start).Seconds() * 1e6 / float64(perBlock), nil
		}
		return block, srv.Close, nil
	}

	// The two arms run interleaved, one block each per round, and each
	// takes its minimum — so a host whose clock drifts mid-measurement
	// (turbo, thermal, a noisy neighbor on a shared VM) shifts both arms
	// instead of silently inflating whichever ran second.
	offBlock, offClose, err := mkArm(serve.Config{TraceBuffer: -1})
	if err != nil {
		return nil, err
	}
	defer offClose()
	onBlock, onClose, err := mkArm(serve.Config{TraceBuffer: 256, TraceSampleRate: 0.1})
	if err != nil {
		return nil, err
	}
	defer onClose()
	var baseline, instrumented float64
	for b := 0; b < blocks; b++ {
		off, err := offBlock()
		if err != nil {
			return nil, err
		}
		on, err := onBlock()
		if err != nil {
			return nil, err
		}
		if baseline == 0 || off < baseline {
			baseline = off
		}
		if instrumented == 0 || on < instrumented {
			instrumented = on
		}
	}

	// Raw recorder admission rate over distinct trace IDs.
	tds := make([]*obs.TraceData, 512)
	for i := range tds {
		tr := obs.NewTrace("/bench")
		sp := tr.Root().StartChild("child")
		sp.End()
		tr.Root().End()
		tds[i] = tr.Data()
	}
	rec := obs.NewFlightRecorder(256, 0.1)
	budget := 500 * time.Millisecond
	if quick {
		budget = 100 * time.Millisecond
	}
	var ops int64
	start := time.Now()
	for time.Since(start) < budget {
		rec.Record(tds[ops%int64(len(tds))])
		ops++
	}
	opsPerSec := float64(ops) / time.Since(start).Seconds()

	if baseline <= 0 || instrumented <= 0 || opsPerSec <= 0 {
		return nil, fmt.Errorf("degenerate measurement: off %f, on %f us, %f ops/s", baseline, instrumented, opsPerSec)
	}
	return &TracingBench{
		Requests:          rounds,
		BaselineUS:        baseline,
		InstrumentedUS:    instrumented,
		ReferenceUS:       refUS,
		OverheadPct:       (instrumented - baseline) / refUS * 100,
		RecorderOpsPerSec: opsPerSec,
	}, nil
}

// timeFirstEvaluate stands up an in-process crcserve with the config,
// times one /v1/evaluate round trip, and returns it with the pool's
// live engine probe total afterwards.
func timeFirstEvaluate(cfg serve.Config, req serve.EvaluateRequest) (time.Duration, int64, error) {
	srv, err := serve.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	c := client.New(base)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil { // connection up before the clock starts
		return 0, 0, err
	}
	start := time.Now()
	if _, err := c.Evaluate(ctx, req); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var m struct {
		Pool struct {
			Probes int64 `json:"probes"`
		} `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, 0, err
	}
	return elapsed, m.Pool.Probes, nil
}

// validateReport checks a report file against the schema the sweep
// writes: schema tag, host fields, at least one kernel measured over at
// least four sizes, every throughput positive, and the auto profile
// present. It is the CI gate on the checked-in artifact.
func validateReport(path string, out io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != schemaName {
		return fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, schemaName)
	}
	if rep.GeneratedAt == "" {
		return fmt.Errorf("%s: missing generated_at", path)
	}
	if _, err := time.Parse(time.RFC3339, rep.GeneratedAt); err != nil {
		return fmt.Errorf("%s: generated_at: %w", path, err)
	}
	if rep.Host.GoVersion == "" || rep.Host.GOARCH == "" || rep.Host.GOOS == "" {
		return fmt.Errorf("%s: incomplete host identification %+v", path, rep.Host)
	}
	if rep.Algorithm == "" {
		return fmt.Errorf("%s: missing algorithm", path)
	}
	if _, err := crchash.ParseKind(rep.AutoKernel); err != nil {
		return fmt.Errorf("%s: auto_kernel: %w", path, err)
	}
	if len(rep.AutoProfile.Kernels) == 0 {
		return fmt.Errorf("%s: empty auto_profile", path)
	}
	sizesByKernel := map[string]map[int]bool{}
	for i, r := range rep.Results {
		if _, err := crchash.ParseKind(r.Kernel); err != nil {
			return fmt.Errorf("%s: results[%d]: %w", path, i, err)
		}
		if r.Size <= 0 {
			return fmt.Errorf("%s: results[%d]: non-positive size %d", path, i, r.Size)
		}
		if r.GBps <= 0 {
			return fmt.Errorf("%s: results[%d]: non-positive throughput %v for %s/%d",
				path, i, r.GBps, r.Kernel, r.Size)
		}
		if sizesByKernel[r.Kernel] == nil {
			sizesByKernel[r.Kernel] = map[int]bool{}
		}
		sizesByKernel[r.Kernel][r.Size] = true
	}
	if len(sizesByKernel) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	for kernel, sizes := range sizesByKernel {
		if len(sizes) < 4 {
			return fmt.Errorf("%s: kernel %s measured at only %d sizes, want >= 4", path, kernel, len(sizes))
		}
	}
	serveNote := ""
	if sb := rep.Serve; sb != nil {
		if sb.Items <= 0 || sb.PayloadBytes <= 0 {
			return fmt.Errorf("%s: serve: non-positive items/payload %+v", path, sb)
		}
		if sb.SequentialIPS <= 0 || sb.BatchIPS <= 0 {
			return fmt.Errorf("%s: serve: non-positive throughput %+v", path, sb)
		}
		ratio := sb.BatchIPS / sb.SequentialIPS
		if sb.Amortization <= 0 || sb.Amortization/ratio < 0.99 || sb.Amortization/ratio > 1.01 {
			return fmt.Errorf("%s: serve: amortization %.3f inconsistent with batch/sequential %.3f", path, sb.Amortization, ratio)
		}
		serveNote = fmt.Sprintf(", serve amortization %.1fx", sb.Amortization)
	}
	corpusNote := ""
	if cb := rep.Corpus; cb != nil {
		if _, err := koopmancrc.ParsePolynomial(cb.Width, koopmancrc.Koopman, cb.Poly); err != nil {
			return fmt.Errorf("%s: corpus: %w", path, err)
		}
		if cb.MaxLen <= 0 || cb.MaxHD < 2 {
			return fmt.Errorf("%s: corpus: bad sweep window %+v", path, cb)
		}
		if cb.ColdSeconds <= 0 || cb.WarmSeconds <= 0 {
			return fmt.Errorf("%s: corpus: non-positive timings %+v", path, cb)
		}
		ratio := cb.ColdSeconds / cb.WarmSeconds
		if cb.Speedup <= 0 || cb.Speedup/ratio < 0.99 || cb.Speedup/ratio > 1.01 {
			return fmt.Errorf("%s: corpus: speedup %.3f inconsistent with cold/warm %.3f", path, cb.Speedup, ratio)
		}
		if cb.WarmProbes != 0 {
			return fmt.Errorf("%s: corpus: warm evaluation did %d live probes, want 0 (corpus must cover the query)", path, cb.WarmProbes)
		}
		corpusNote = fmt.Sprintf(", corpus warm-start %.0fx", cb.Speedup)
	}
	tracingNote := ""
	if tb := rep.Tracing; tb != nil {
		if tb.Requests <= 0 {
			return fmt.Errorf("%s: tracing: non-positive request count %d", path, tb.Requests)
		}
		if tb.BaselineUS <= 0 || tb.InstrumentedUS <= 0 || tb.ReferenceUS <= 0 || tb.RecorderOpsPerSec <= 0 {
			return fmt.Errorf("%s: tracing: non-positive measurement %+v", path, tb)
		}
		want := (tb.InstrumentedUS - tb.BaselineUS) / tb.ReferenceUS * 100
		if d := tb.OverheadPct - want; d < -0.05 || d > 0.05 {
			return fmt.Errorf("%s: tracing: overhead %.3f%% inconsistent with (on-off)/reference %.3f%%", path, tb.OverheadPct, want)
		}
		if tb.OverheadPct > 2.0 {
			return fmt.Errorf("%s: tracing: overhead %.3f%% exceeds the 2%% gate", path, tb.OverheadPct)
		}
		tracingNote = fmt.Sprintf(", tracing overhead %+.2f%%", tb.OverheadPct)
	}
	fmt.Fprintf(out, "%s: valid (%d kernels, %d measurements%s%s%s)\n", path, len(sizesByKernel), len(rep.Results), serveNote, corpusNote, tracingNote)
	return nil
}

// Command crceval evaluates the error-detection performance of one CRC
// generator polynomial: its Hamming-distance bands up to a maximum length
// (one Table 1 column of the DSN 2002 paper) and, optionally, exact
// undetectable-error weights at chosen lengths.
//
// Usage:
//
//	crceval -poly 0xBA0DC66B [-width 32] [-notation koopman] [-max 131072] [-maxhd 13] [-weights 400,12112] [-progress] [-json]
//
// Long evaluations honour SIGINT: the boundary scans are cancelled
// mid-search and the command exits cleanly. -progress streams the live
// search state (weight, length, probe count) to stderr. -json emits the
// serve package's wire form instead of text, byte-comparable with a
// crcserve /v1/evaluate response for the same request.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"koopmancrc"
	"koopmancrc/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crceval:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crceval", flag.ContinueOnError)
	polyStr := fs.String("poly", "", "polynomial in hex (required)")
	width := fs.Int("width", 32, "CRC width in bits")
	notation := fs.String("notation", "koopman", "polynomial notation: koopman|normal|reversed|full")
	maxLen := fs.Int("max", 131072, "maximum data-word length in bits")
	maxHD := fs.Int("maxhd", 13, "largest Hamming distance to classify")
	weights := fs.String("weights", "", "comma-separated lengths for exact W2..W4 computation")
	progress := fs.Bool("progress", false, "stream live search progress to stderr")
	asJSON := fs.Bool("json", false, "emit the serve wire form (matches /v1/evaluate byte for byte)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *polyStr == "" {
		fs.Usage()
		return fmt.Errorf("-poly is required")
	}
	n, err := serve.ParseNotation(*notation)
	if err != nil {
		return err
	}
	p, err := koopmancrc.ParsePolynomial(*width, n, *polyStr)
	if err != nil {
		return err
	}
	var lengths []int
	if *weights != "" {
		for _, part := range strings.Split(*weights, ",") {
			l, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -weights entry %q: %w", part, err)
			}
			lengths = append(lengths, l)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := []koopmancrc.Option{koopmancrc.WithMaxHD(*maxHD)}
	if *progress {
		opts = append(opts, koopmancrc.WithProgress(func(pr koopmancrc.Progress) {
			fmt.Fprintf(os.Stderr, "# searching w=%d at %d bits (%d probes)\n",
				pr.Weight, pr.DataLen, pr.Probes)
		}))
	}
	// One Analyzer session serves the whole invocation: the profile's
	// boundary scans are reused by the exact-weight queries below.
	an := koopmancrc.NewAnalyzer(p, opts...)
	rep, err := an.Evaluate(ctx, *maxLen)
	if err != nil {
		return err
	}

	if *asJSON {
		wcs, err := serve.WeightCounts(ctx, an, lengths)
		if err != nil {
			return err
		}
		return json.NewEncoder(out).Encode(serve.NewEvaluateResponse(rep, *maxHD, wcs))
	}

	fmt.Fprintf(out, "polynomial      %s (koopman) = %#x (normal) = %#x (reversed)\n",
		p, p.In(koopmancrc.Normal), p.In(koopmancrc.Reversed))
	fmt.Fprintf(out, "algebraic       %s\n", p.AlgebraicString())
	fmt.Fprintf(out, "factorization   %s\n", rep.Shape)
	fmt.Fprintf(out, "period (ord x)  %d\n", rep.Period)
	fmt.Fprintf(out, "parity ((x+1)|G) %v\n", rep.ParityBit)
	fmt.Fprintf(out, "\nHD bands to %d data bits:\n", rep.MaxLen)
	for _, b := range rep.Bands {
		ge := " "
		if b.AtLeast {
			ge = ">="
		}
		fmt.Fprintf(out, "  HD %s%2d : %6d - %6d bits\n", ge, b.HD, b.From, b.To)
	}
	fmt.Fprintln(out, "\nweight boundaries (first length with W_w > 0):")
	for _, tr := range rep.Transitions {
		fmt.Fprintf(out, "  w=%2d at %6d bits  witness %v  (%v)\n", tr.W, tr.FirstLen, tr.Witness, tr.Elapsed.Round(1000))
	}

	if len(lengths) > 0 {
		fmt.Fprintln(out, "\nexact weights:")
		for _, l := range lengths {
			fmt.Fprintf(out, "  length %d:", l)
			for w := 2; w <= 4; w++ {
				v, err := an.Weight(ctx, w, l)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, " W%d=%d", w, v)
			}
			fmt.Fprintln(out)
		}
	}
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"koopmancrc/serve"
)

func TestRunSmallEvaluation(t *testing.T) {
	err := run([]string{"-poly", "0x8810", "-width", "16", "-max", "256", "-maxhd", "8", "-weights", "32,64"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunNotations(t *testing.T) {
	for _, n := range []string{"koopman", "normal", "reversed", "full"} {
		v := map[string]string{
			"koopman": "0x83", "normal": "0x07", "reversed": "0xE0", "full": "0x107",
		}[n]
		if err := run([]string{"-poly", v, "-width", "8", "-notation", n, "-max", "64", "-maxhd", "6"}, io.Discard); err != nil {
			t.Errorf("notation %s: %v", n, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-max", "64"}, io.Discard); err == nil {
		t.Error("missing -poly should error")
	}
	if err := run([]string{"-poly", "0x83", "-width", "8", "-notation", "bogus"}, io.Discard); err == nil {
		t.Error("bad notation should error")
	}
	if err := run([]string{"-poly", "zz", "-width", "8", "-max", "64"}, io.Discard); err == nil {
		t.Error("bad hex should error")
	}
	if err := run([]string{"-poly", "0x83", "-width", "8", "-max", "64", "-weights", "x"}, io.Discard); err == nil {
		t.Error("bad weights list should error")
	}
}

// TestRunJSONMatchesServer pins the satellite contract: crceval -json and
// a crcserve /v1/evaluate response for the same request are byte-equal,
// because both sides assemble and encode the same wire type.
func TestRunJSONMatchesServer(t *testing.T) {
	var cli bytes.Buffer
	err := run([]string{"-poly", "0x8810", "-width", "16", "-max", "256", "-maxhd", "8", "-weights", "32,64", "-json"}, &cli)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body, err := json.Marshal(serve.EvaluateRequest{
		PolyRef: serve.PolyRef{Poly: "0x8810", Width: 16},
		MaxLen:  256,
		MaxHD:   8,
		Weights: []int{32, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server status %d", resp.StatusCode)
	}
	www, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cli.Bytes(), www) {
		t.Fatalf("CLI and server JSON differ:\ncli: %s\nsrv: %s", cli.Bytes(), www)
	}

	// And the wire form round-trips.
	var decoded serve.EvaluateResponse
	if err := json.Unmarshal(cli.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Poly != "0x8810" || decoded.Width != 16 || len(decoded.Weights) != 2 {
		t.Fatalf("decoded response %+v", decoded)
	}
}

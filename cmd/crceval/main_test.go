package main

import "testing"

func TestRunSmallEvaluation(t *testing.T) {
	err := run([]string{"-poly", "0x8810", "-width", "16", "-max", "256", "-maxhd", "8", "-weights", "32,64"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunNotations(t *testing.T) {
	for _, n := range []string{"koopman", "normal", "reversed", "full"} {
		v := map[string]string{
			"koopman": "0x83", "normal": "0x07", "reversed": "0xE0", "full": "0x107",
		}[n]
		if err := run([]string{"-poly", v, "-width", "8", "-notation", n, "-max", "64", "-maxhd", "6"}); err != nil {
			t.Errorf("notation %s: %v", n, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-max", "64"}); err == nil {
		t.Error("missing -poly should error")
	}
	if err := run([]string{"-poly", "0x83", "-width", "8", "-notation", "bogus"}); err == nil {
		t.Error("bad notation should error")
	}
	if err := run([]string{"-poly", "zz", "-width", "8", "-max", "64"}); err == nil {
		t.Error("bad hex should error")
	}
	if err := run([]string{"-poly", "0x83", "-width", "8", "-max", "64", "-weights", "x"}); err == nil {
		t.Error("bad weights list should error")
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

const goodDoc = `# HELP demo_total A counter.
# TYPE demo_total counter
demo_total{path="/x"} 3
`

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(good, []byte(goodDoc), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{good}); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}

	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("demo_total{path=\"\\t\"} 3\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("illegal label escape accepted")
	}

	if err := run([]string{good, bad}); err == nil {
		t.Error("two args should be a usage error")
	}
	if err := run([]string{filepath.Join(dir, "missing.txt")}); err == nil {
		t.Error("missing file should error")
	}
}

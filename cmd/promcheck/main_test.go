package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodDoc = `# HELP demo_total A counter.
# TYPE demo_total counter
demo_total{path="/x"} 3
`

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(good, []byte(goodDoc), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{good}); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}

	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("demo_total{path=\"\\t\"} 3\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("illegal label escape accepted")
	}

	if err := run([]string{good, bad}); err == nil {
		t.Error("two args should be a usage error")
	}
	if err := run([]string{filepath.Join(dir, "missing.txt")}); err == nil {
		t.Error("missing file should error")
	}
}

// exemplarDoc is a valid exposition carrying OpenMetrics exemplars in
// both allowed positions: a histogram bucket (with and without a
// timestamp) and a counter.
const exemplarDoc = `# HELP req_seconds Request latency.
# TYPE req_seconds histogram
req_seconds_bucket{endpoint="/v1/evaluate",le="0.01"} 1 # {trace_id="4bf92f3577b34da6"} 0.004
req_seconds_bucket{endpoint="/v1/evaluate",le="+Inf"} 2 # {trace_id="0af7651916cd43dd"} 0.2 1690000000.123
req_seconds_sum{endpoint="/v1/evaluate"} 0.204
req_seconds_count{endpoint="/v1/evaluate"} 2
# HELP hits_total Requests served.
# TYPE hits_total counter
hits_total 5 # {trace_id="4bf92f3577b34da6"} 1
`

func TestRunExemplars(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "exemplars.txt")
	if err := os.WriteFile(good, []byte(exemplarDoc), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{good}); err != nil {
		t.Errorf("exposition with exemplars rejected: %v", err)
	}

	rejects := map[string]string{
		"exemplar on gauge": "# HELP g A gauge.\n# TYPE g gauge\ng 1 # {trace_id=\"abc\"} 1\n",
		"no label set":      "# HELP c_total C.\n# TYPE c_total counter\nc_total 1 # 0.004\n",
		"bad value":         "# HELP c_total C.\n# TYPE c_total counter\nc_total 1 # {trace_id=\"abc\"} nope\n",
		"bad timestamp":     "# HELP c_total C.\n# TYPE c_total counter\nc_total 1 # {trace_id=\"abc\"} 1 later\n",
		"oversized labels": "# HELP c_total C.\n# TYPE c_total counter\nc_total 1 # {trace_id=\"" +
			strings.Repeat("a", 130) + "\"} 1\n",
	}
	for name, doc := range rejects {
		f := filepath.Join(dir, "reject.txt")
		if err := os.WriteFile(f, []byte(doc), 0o600); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{f}); err == nil {
			t.Errorf("%s: malformed exemplar accepted", name)
		}
	}
}

// Command promcheck validates Prometheus text exposition (version
// 0.0.4, or its OpenMetrics superset with exemplar trailers and a
// # EOF terminator) read from a file or stdin: HELP/TYPE grammar,
// label escaping, duplicate series, exemplar placement and syntax, and
// histogram coherence (cumulative buckets, +Inf matching _count). It
// exists so CI can assert that a live /metrics scrape is well-formed
// without depending on a Prometheus binary.
//
//	crcserve -addr :8370 &
//	curl -s 'http://127.0.0.1:8370/metrics?format=prometheus' | promcheck
//	curl -s 'http://127.0.0.1:8370/metrics?format=openmetrics' | promcheck
//	promcheck scrape.txt
//
// Exit status is 0 for a valid document, 1 with a diagnostic on stderr
// otherwise.
package main

import (
	"fmt"
	"io"
	"os"

	"koopmancrc/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var in io.Reader = os.Stdin
	switch len(args) {
	case 0:
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("usage: promcheck [file]")
	}
	return obs.CheckExposition(in)
}

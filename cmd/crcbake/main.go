// Command crcbake sweeps a set of polynomials offline and persists
// their Analyzer memos into a disk-backed corpus (internal/corpus),
// so crcserve -corpus can warm-start sessions with zero engine probes.
//
//	crcbake -corpus /var/lib/crc/corpus -polys 0x82608edb,0xba0dc66b -maxlen 16384 -maxhd 6
//
// Baking is resumable: knowledge already in the corpus is restored
// before evaluating, so re-running after a crash or an interrupt
// (SIGINT finishes durably and exits) skips finished polynomials.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"koopmancrc"
	"koopmancrc/internal/corpus"
	"koopmancrc/internal/dist"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crcbake:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crcbake", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dir        = fs.String("corpus", "", "corpus directory to bake into (required)")
		width      = fs.Int("width", 32, "polynomial width in bits")
		polys      = fs.String("polys", "", "comma-separated polynomials in Koopman notation (hex)")
		polyFile   = fs.String("polyfile", "", "file with one Koopman-notation polynomial per line (# comments)")
		maxLen     = fs.Int("maxlen", 16384, "data-word length ceiling of the baked profile")
		maxHD      = fs.Int("maxhd", 6, "classify Hamming distances up to this weight (0 = analyzer default)")
		weights    = fs.String("weights", "", "comma-separated data lengths to bake exact W2..W4 counts at")
		workers    = fs.Int("workers", 0, "concurrent evaluations (0 = GOMAXPROCS)")
		maxProbes  = fs.Int64("maxprobes", 0, "per-query engine probe budget (0 = default)")
		compactEvN = fs.Int("compactevery", 0, "compact the corpus WAL every N appends (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-corpus is required")
	}
	list, err := parsePolys(*polys, *polyFile)
	if err != nil {
		return err
	}
	weightLens, err := parseInts(*weights)
	if err != nil {
		return fmt.Errorf("-weights: %w", err)
	}

	store, err := corpus.Open(*dir, corpus.Config{CompactEvery: *compactEvN})
	if err != nil {
		return err
	}
	if st := store.Stats(); st.TruncatedAtOpen > 0 || st.SkippedAtOpen > 0 {
		fmt.Fprintf(out, "corpus recovery: truncated %d torn bytes, skipped %d invalid records\n",
			st.TruncatedAtOpen, st.SkippedAtOpen)
	}

	spec := dist.BakeSpec{
		Width:      *width,
		Polys:      list,
		MaxLen:     *maxLen,
		MaxHD:      *maxHD,
		WeightLens: weightLens,
	}
	cfg := dist.BakeConfig{
		Workers: *workers,
		Limits:  koopmancrc.Limits{MaxProbes: *maxProbes},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	}
	start := time.Now()
	sum, bakeErr := dist.Bake(ctx, spec, store, cfg)
	closeErr := store.Close()

	if sum != nil {
		st := store.Stats()
		fmt.Fprintf(out, "baked %d, warm %d, failed %d: %d polynomials in corpus (%d facts, %d bytes) in %s\n",
			sum.Baked, sum.Warm, len(sum.Failed), st.Entries, st.Facts, st.Bytes,
			time.Since(start).Round(time.Millisecond))
		for _, f := range sum.Failed {
			fmt.Fprintf(out, "failed %d:%#x: %v\n", *width, f.Poly, f.Err)
		}
	}
	if bakeErr != nil {
		return bakeErr
	}
	if closeErr != nil {
		return closeErr
	}
	if sum != nil && len(sum.Failed) > 0 {
		return fmt.Errorf("%d polynomials failed", len(sum.Failed))
	}
	return nil
}

// parsePolys merges the -polys list and the -polyfile contents.
func parsePolys(csv, file string) ([]uint64, error) {
	var out []uint64
	add := func(tok string) error {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(tok, "0x"), 16, 64)
		if err != nil {
			return fmt.Errorf("polynomial %q: %w", tok, err)
		}
		out = append(out, v)
		return nil
	}
	for _, tok := range strings.Split(csv, ",") {
		if err := add(tok); err != nil {
			return nil, err
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			if err := add(line); err != nil {
				return nil, err
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no polynomials: pass -polys and/or -polyfile")
	}
	// Dedup, preserving order: baking the same polynomial twice in one
	// run wastes a worker slot for no extra knowledge.
	seen := make(map[uint64]bool, len(out))
	uniq := out[:0]
	for _, v := range out {
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	return uniq, nil
}

// parseInts parses a comma-separated list of positive decimal integers.
func parseInts(csv string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"koopmancrc/internal/corpus"
)

func TestRunBakesAndResumes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	args := []string{
		"-corpus", dir,
		"-width", "8",
		"-polys", "0x83,0x9c",
		"-maxlen", "64",
		"-maxhd", "6",
		"-weights", "32",
	}
	var out bytes.Buffer
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "baked 2, warm 0, failed 0") {
		t.Fatalf("cold bake output:\n%s", out.String())
	}

	s, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("corpus.Open: %v", err)
	}
	if _, ok := s.Get(8, 0x83); !ok {
		t.Fatalf("0x83 not in corpus")
	}
	if _, ok := s.Get(8, 0x9c); !ok {
		t.Fatalf("0x9c not in corpus")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Re-run: everything already baked reports warm.
	out.Reset()
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("re-run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "baked 0, warm 2, failed 0") {
		t.Fatalf("warm bake output:\n%s", out.String())
	}
}

func TestRunPolyFileAndDedup(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	pf := filepath.Join(t.TempDir(), "polys.txt")
	if err := os.WriteFile(pf, []byte("# fast 8-bit polynomials\n0x83\n0x9c # darc\n\n0x83\n"), 0o644); err != nil {
		t.Fatalf("write polyfile: %v", err)
	}
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-corpus", dir, "-width", "8", "-polyfile", pf, "-maxlen", "64", "-maxhd", "6",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "baked 2, warm 0, failed 0") {
		t.Fatalf("polyfile bake output:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                               // no -corpus
		{"-corpus", "x"},                 // no polynomials
		{"-corpus", "x", "-polys", "zz"}, // unparsable polynomial
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestRunReportsFailures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-corpus", dir, "-width", "8", "-polys", "0x83,0x1ff", "-maxlen", "64", "-maxhd", "6",
	}, &out)
	if err == nil {
		t.Fatalf("run accepted an out-of-range polynomial:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "failed 8:0x1ff") {
		t.Fatalf("failure not reported:\n%s", out.String())
	}
}

// Command crcserve serves the koopmancrc evaluation and checksum API
// over HTTP: JSON endpoints backed by a bounded LRU pool of Analyzer
// sessions with singleflight coalescing of identical evaluations (see
// the serve package for the endpoint reference).
//
// Usage:
//
//	crcserve [-addr :8370] [-pool 64] [-maxlen 1048576] [-maxhd 13]
//	         [-timeout 0] [-maxprobes 0] [-token SECRET]
//	         [-cert server.crt -key server.key]
//
// -token enables bearer-token auth (constant-time comparison) on every
// endpoint except /healthz; -cert/-key switch the listener to TLS. The
// server shuts down gracefully on SIGINT/SIGTERM, cancelling in-flight
// evaluations through the engines' cancellation hooks.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"koopmancrc"
	"koopmancrc/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crcserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crcserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8370", "listen address")
	cert := fs.String("cert", "", "TLS certificate file (requires -key)")
	key := fs.String("key", "", "TLS private key file (requires -cert)")
	token := fs.String("token", "", "bearer token required on every endpoint except /healthz")
	pool := fs.Int("pool", 64, "maximum live Analyzer sessions (LRU beyond it)")
	maxLen := fs.Int("maxlen", 1<<20, "clamp on per-request max_len/horizon (bits)")
	maxHD := fs.Int("maxhd", koopmancrc.DefaultMaxHD, "clamp on per-request max_hd")
	timeout := fs.Duration("timeout", 0, "per-request evaluation deadline (0 = none)")
	maxProbes := fs.Int64("maxprobes", 0, "ceiling on per-request probe budgets (0 = engine default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*cert == "") != (*key == "") {
		return errors.New("-cert and -key must be given together")
	}

	srv := serve.New(serve.Config{
		PoolSize:  *pool,
		MaxLenCap: *maxLen,
		MaxHDCap:  *maxHD,
		Timeout:   *timeout,
		Token:     *token,
		Limits:    koopmancrc.Limits{MaxProbes: *maxProbes},
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	scheme := "http"
	if *cert != "" {
		scheme = "https"
	}
	fmt.Fprintf(out, "crcserve listening on %s://%s\n", scheme, ln.Addr())

	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		if *cert != "" {
			errCh <- hs.ServeTLS(ln, *cert, *key)
		} else {
			errCh <- hs.Serve(ln)
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Cancel in-flight evaluations first — a long boundary scan would
	// otherwise hold Shutdown until its connection drained — then drain
	// the listener gracefully.
	srv.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "crcserve stopped")
	return nil
}

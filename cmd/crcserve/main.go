// Command crcserve serves the koopmancrc evaluation and checksum API
// over HTTP: JSON endpoints backed by a bounded LRU pool of Analyzer
// sessions with singleflight coalescing of identical evaluations (see
// the serve package for the endpoint reference).
//
// Usage:
//
//	crcserve [-addr :8370] [-pool 64] [-maxlen 1048576] [-maxhd 13]
//	         [-timeout 0] [-maxprobes 0] [-token SECRET]
//	         [-maxbody 1048576] [-maxbatchitems 256]
//	         [-maxbatchbytes 16777216] [-maxstreambytes 1073741824]
//	         [-cert server.crt -key server.key]
//	         [-pprof 127.0.0.1:6060] [-remeasure 1h]
//	         [-corpus /var/lib/crc/corpus]
//	         [-traces 256] [-tracesample 0.1] [-accesslog]
//
// -token enables bearer-token auth (constant-time comparison) on every
// endpoint except /healthz; -cert/-key switch the listener to TLS. The
// server shuts down gracefully on SIGINT/SIGTERM, cancelling in-flight
// evaluations through the engines' cancellation hooks.
//
// -pprof starts net/http/pprof on its own listener, never on the
// public mux: profiles expose memory contents and the endpoint has no
// auth, so it must not share the API's address or its -token gate
// (which would put secrets and profiler on the same trust boundary).
// A bare port like ":6060" is rewritten to loopback; binding a
// non-loopback host requires spelling it out explicitly, and doing so
// is only sane behind a firewall.
//
// -remeasure enables the kernel-profile drift watch: every interval
// the crchash startup micro-benchmark re-runs, the live auto-selection
// profile is swapped atomically, and the relative per-kernel
// throughput change is recorded in the
// crcserve_kernel_drift_ratio{kernel} histogram (visible in
// /metrics?format=prometheus) and logged. This catches machines whose
// relative kernel speeds move after startup — CPU frequency policy,
// thermal throttling, migration to a different host class.
//
// -corpus enables the persistent analysis corpus: evaluation sessions
// warm-start from memos baked offline with crcbake (a covered query
// answers with zero engine probes) and newly computed memos are
// persisted back write-behind. The directory is crash-safe — torn or
// corrupt journal tails are truncated at open, never served.
//
// -traces sizes the in-process flight recorder (0 disables tracing
// entirely). Every request builds a span tree — pool acquire,
// singleflight join, corpus warm-start, engine phases — and completed
// traces are tail-sampled into the recorder: errored requests and the
// slowest few per endpoint are always retained, the rest kept with
// probability -tracesample. Retained traces are served at
// GET /v1/traces and /v1/traces/{id} (behind -token like the rest of
// the API) and linked from latency buckets via OpenMetrics exemplars
// on the negotiated /metrics?format=openmetrics exposition (the
// classic 0.0.4 format stays exemplar-free, since its parser rejects
// trailers). -accesslog adds one structured log line per retained
// request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"koopmancrc"
	"koopmancrc/crchash"
	"koopmancrc/internal/obs"
	"koopmancrc/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crcserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crcserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8370", "listen address")
	cert := fs.String("cert", "", "TLS certificate file (requires -key)")
	key := fs.String("key", "", "TLS private key file (requires -cert)")
	token := fs.String("token", "", "bearer token required on every endpoint except /healthz")
	pool := fs.Int("pool", 64, "maximum live Analyzer sessions (LRU beyond it)")
	maxLen := fs.Int("maxlen", 1<<20, "clamp on per-request max_len/horizon (bits)")
	maxHD := fs.Int("maxhd", koopmancrc.DefaultMaxHD, "clamp on per-request max_hd")
	timeout := fs.Duration("timeout", 0, "per-request evaluation deadline (0 = none)")
	maxProbes := fs.Int64("maxprobes", 0, "ceiling on per-request probe budgets (0 = engine default)")
	maxBody := fs.Int64("maxbody", 1<<20, "cap on JSON request bodies and per-item batch payloads (bytes)")
	maxBatchItems := fs.Int("maxbatchitems", 256, "cap on items per /v1/checksum/batch request")
	maxBatchBytes := fs.Int64("maxbatchbytes", 16<<20, "cap on total decoded payload bytes per /v1/checksum/batch request")
	maxStreamBytes := fs.Int64("maxstreambytes", 1<<30, "cap on one /v1/checksum/stream body (bytes)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (bare :port binds loopback; empty = off)")
	remeasure := fs.Duration("remeasure", 0, "re-run the kernel micro-benchmark at this interval and track profile drift (0 = off)")
	corpusDir := fs.String("corpus", "", "persistent analysis corpus directory: warm-start sessions from baked memos (see crcbake) and persist new ones write-behind (empty = off)")
	traces := fs.Int("traces", 256, "flight-recorder capacity in retained traces (0 = tracing off)")
	traceSample := fs.Float64("tracesample", 0.1, "tail-sampling keep probability for ordinary traces; errored and slowest-per-endpoint are always kept (0 = keep only those)")
	accessLog := fs.Bool("accesslog", false, "emit one structured access-log line per request whose trace the recorder retained")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*cert == "") != (*key == "") {
		return errors.New("-cert and -key must be given together")
	}
	if *remeasure != 0 && *remeasure < time.Second {
		return errors.New("-remeasure interval must be at least 1s")
	}
	if *traces < 0 {
		return errors.New("-traces must be >= 0")
	}
	if *traceSample < 0 || *traceSample > 1 {
		return errors.New("-tracesample must be in [0, 1]")
	}
	// The Config zero values mean "use the default", so "off" is spelled
	// negative when translating the flags.
	traceBuffer := *traces
	if traceBuffer == 0 {
		traceBuffer = -1
	}
	sampleRate := *traceSample
	if sampleRate == 0 {
		sampleRate = -1
	}

	srv, err := serve.New(serve.Config{
		PoolSize:        *pool,
		MaxLenCap:       *maxLen,
		MaxHDCap:        *maxHD,
		Timeout:         *timeout,
		Token:           *token,
		MaxBodyBytes:    *maxBody,
		MaxBatchItems:   *maxBatchItems,
		MaxBatchBytes:   *maxBatchBytes,
		MaxStreamBytes:  *maxStreamBytes,
		Limits:          koopmancrc.Limits{MaxProbes: *maxProbes},
		CorpusDir:       *corpusDir,
		TraceBuffer:     traceBuffer,
		TraceSampleRate: sampleRate,
		AccessLog:       *accessLog,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if *corpusDir != "" {
		fmt.Fprintf(out, "crcserve corpus at %s\n", *corpusDir)
	}

	if *pprofAddr != "" {
		pln, err := listenPprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer pln.Close()
		fmt.Fprintf(out, "crcserve pprof on http://%s/debug/pprof/ (unauthenticated; keep loopback or firewalled)\n", pln.Addr())
		go servePprof(pln)
	}

	if *remeasure != 0 {
		wctx, wcancel := context.WithCancel(ctx)
		defer wcancel()
		go driftWatch(wctx, srv, *remeasure)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	scheme := "http"
	if *cert != "" {
		scheme = "https"
	}
	fmt.Fprintf(out, "crcserve listening on %s://%s\n", scheme, ln.Addr())

	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		if *cert != "" {
			errCh <- hs.ServeTLS(ln, *cert, *key)
		} else {
			errCh <- hs.Serve(ln)
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Cancel in-flight evaluations first — a long boundary scan would
	// otherwise hold Shutdown until its connection drained — then drain
	// the listener gracefully.
	srv.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "crcserve stopped")
	return nil
}

// listenPprof opens the profiler's own listener. A bare ":port" (or an
// empty host) is rewritten to loopback so the unauthenticated debug
// surface never lands on all interfaces by accident; exposing it wider
// takes an explicit non-loopback host in the flag.
func listenPprof(addr string) (net.Listener, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, err
	}
	if host == "" {
		addr = net.JoinHostPort("127.0.0.1", port)
	}
	return net.Listen("tcp", addr)
}

// servePprof runs net/http/pprof on its own mux and server — the
// handlers are registered explicitly rather than through the package's
// DefaultServeMux side effect, so nothing can ever mount them on the
// public API mux.
func servePprof(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	_ = srv.Serve(ln) // closes with the listener on shutdown
}

// driftWatch periodically re-runs the crchash kernel micro-benchmark,
// atomically swaps the live auto-selection profile, and records how far
// each kernel's measured large-payload throughput moved relative to the
// previous profile.
func driftWatch(ctx context.Context, srv *serve.Server, interval time.Duration) {
	reg := srv.Registry()
	drift := reg.NewHistogramVec("crcserve_kernel_drift_ratio",
		"Relative large-payload throughput change |cur-prev|/prev per kernel at each remeasurement.",
		obs.ExpBuckets(1e-4, 4, 12), "kernel")
	runs := reg.NewCounter("crcserve_remeasure_runs_total",
		"Completed kernel-profile remeasurements.")

	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		prev, cur := crchash.Remeasure()
		runs.Inc()
		prevBps := make(map[string]float64, len(prev.Kernels))
		for _, ks := range prev.Kernels {
			prevBps[ks.Kernel] = ks.LargeBps
		}
		var maxDrift float64
		var maxKernel string
		for _, ks := range cur.Kernels {
			p := prevBps[ks.Kernel]
			if p <= 0 {
				continue
			}
			d := (ks.LargeBps - p) / p
			if d < 0 {
				d = -d
			}
			drift.With(ks.Kernel).Observe(d)
			if d > maxDrift {
				maxDrift, maxKernel = d, ks.Kernel
			}
		}
		slog.Info("kernel profile remeasured",
			"interval", interval,
			"max_drift", maxDrift,
			"max_drift_kernel", maxKernel,
			"fastest", fastestKernel(cur))
	}
}

func fastestKernel(r crchash.AutoReport) string {
	if len(r.Kernels) == 0 {
		return ""
	}
	return r.Kernels[0].Kernel
}

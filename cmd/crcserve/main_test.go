package main

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"io"
	"math/big"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"koopmancrc/serve"
	"koopmancrc/serve/client"
)

// syncBuffer lets the test read run's output while run still writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`listening on (https?)://(\S+)`)

// startServe runs the command on an ephemeral port and returns its base
// URL and a shutdown func that asserts a clean exit.
func startServe(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	var url string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			url = m[1] + "://" + m[2]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("crcserve exited early: %v (output %q)", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if url == "" {
		t.Fatalf("no listen line in output %q", out.String())
	}
	return url, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("shutdown returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("crcserve did not shut down")
		}
	}
}

func TestServeAndGracefulShutdown(t *testing.T) {
	url, stop := startServe(t)
	defer stop()

	c := client.New(url)
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Checksum(ctx, "CRC-32/IEEE-802.3", []byte("123456789"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Hex != "0xcbf43926" {
		t.Fatalf("check value %+v", sum)
	}
}

// TestServeBatchAndStreamLimits wires the new limit flags through the
// binary: a batch over -maxbatchitems is rejected whole, a stream over
// -maxstreambytes gets 413, and within the limits both endpoints answer
// with correct digests.
func TestServeBatchAndStreamLimits(t *testing.T) {
	url, stop := startServe(t, "-maxbatchitems", "2", "-maxstreambytes", "1024")
	defer stop()

	c := client.New(url)
	ctx := context.Background()
	resp, err := c.ChecksumBatch(ctx, serve.ChecksumBatchRequest{
		Items: []serve.ChecksumRequest{
			{Algorithm: "CRC-32C/iSCSI", Text: "123456789"},
			{Algorithm: "CRC-32/BOGUS", Text: "x"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Items[0].Hex != "0xe3069283" || resp.Items[1].Error == "" || resp.Failed != 1 {
		t.Fatalf("batch %+v", resp)
	}

	over := serve.ChecksumBatchRequest{Items: []serve.ChecksumRequest{
		{Algorithm: "CRC-32C/iSCSI", Text: "a"},
		{Algorithm: "CRC-32C/iSCSI", Text: "b"},
		{Algorithm: "CRC-32C/iSCSI", Text: "c"},
	}}
	if _, err := c.ChecksumBatch(ctx, over); err == nil {
		t.Fatal("3-item batch accepted past -maxbatchitems 2")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("batch clamp error %v, want 422", err)
	}

	sum, err := c.ChecksumReader(ctx, "CRC-32/IEEE-802.3", strings.NewReader("123456789"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Hex != "0xcbf43926" || sum.Length != 9 {
		t.Fatalf("stream %+v", sum)
	}
	if _, err := c.ChecksumReader(ctx, "CRC-32/IEEE-802.3", bytes.NewReader(make([]byte, 4096))); err == nil {
		t.Fatal("4 KiB stream accepted past -maxstreambytes 1024")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("stream clamp error %v, want 413", err)
	}
}

func TestServeToken(t *testing.T) {
	url, stop := startServe(t, "-token", "sesame")
	defer stop()

	ctx := context.Background()
	if err := client.New(url).Healthz(ctx); err != nil {
		t.Fatal(err) // healthz stays open
	}
	if _, err := client.New(url).Algorithms(ctx); err == nil {
		t.Fatal("request without token accepted")
	}
	if _, err := client.New(url, client.WithToken("sesame")).Algorithms(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestServeTLS(t *testing.T) {
	certFile, keyFile, pool := selfSigned(t)
	url, stop := startServe(t, "-cert", certFile, "-key", keyFile)
	defer stop()

	hc := &http.Client{Transport: &http.Transport{
		TLSClientConfig: &tls.Config{RootCAs: pool},
	}}
	c := client.New(url, client.WithHTTPClient(hc))
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Plain HTTP clients must not get through a TLS listener.
	if err := client.New(url).Healthz(context.Background()); err == nil {
		t.Fatal("untrusting client connected to TLS listener")
	}
}

func TestFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-cert", "only.crt"}, io.Discard); err == nil {
		t.Error("-cert without -key should error")
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-bogus"}, io.Discard); err == nil {
		t.Error("unknown flag should error")
	}
}

// selfSigned writes a throwaway cert/key pair for 127.0.0.1 and returns
// the paths plus a pool trusting it.
func selfSigned(t *testing.T) (certFile, keyFile string, pool *x509.CertPool) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "crcserve-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "server.crt")
	keyFile = filepath.Join(dir, "server.key")
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	if err := os.WriteFile(certFile, certPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	pool = x509.NewCertPool()
	pool.AppendCertsFromPEM(certPEM)
	return certFile, keyFile, pool
}

var pprofRe = regexp.MustCompile(`pprof on (http://\S+/debug/pprof/)`)

func TestServePprofSeparateListener(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pprof", ":0"}, out)
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("shutdown returned %v", err)
		}
	}()

	var apiURL, pprofURL string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := out.String()
		if m := addrRe.FindStringSubmatch(s); m != nil {
			apiURL = m[1] + "://" + m[2]
		}
		if m := pprofRe.FindStringSubmatch(s); m != nil {
			pprofURL = m[1]
		}
		if apiURL != "" && pprofURL != "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if apiURL == "" || pprofURL == "" {
		t.Fatalf("missing listen lines in output %q", out.String())
	}
	// The bare :0 must have been pinned to loopback.
	if !regexp.MustCompile(`http://127\.0\.0\.1:\d+/`).MatchString(pprofURL) {
		t.Fatalf("pprof bound to %q, want loopback", pprofURL)
	}

	resp, err := http.Get(pprofURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index: %d %q", resp.StatusCode, body[:min(len(body), 120)])
	}

	// The profiler must NOT be reachable through the public API mux.
	resp, err = http.Get(apiURL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof handlers leaked onto the public mux")
	}
}

func TestServeRemeasureDrift(t *testing.T) {
	url, stop := startServe(t, "-remeasure", "1s")
	defer stop()

	// Within a few intervals the drift histogram and run counter must
	// appear in the exposition with at least one completed remeasure.
	deadline := time.Now().Add(20 * time.Second)
	ran := regexp.MustCompile(`crcserve_remeasure_runs_total ([1-9]\d*)`)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/metrics?format=prometheus")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ran.Match(body) {
			if !bytes.Contains(body, []byte(`crcserve_kernel_drift_ratio_bucket{kernel="slicing16"`)) {
				t.Fatalf("drift run recorded but no per-kernel histogram:\n%s", body)
			}
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatal("no remeasure run recorded within deadline")
}

// TestServeTracingFlags wires -traces/-tracesample through the binary:
// at sample rate 1 a request's X-Trace-ID resolves on /v1/traces/{id}
// and the list endpoint sees it; -traces 0 switches tracing off.
func TestServeTracingFlags(t *testing.T) {
	url, stop := startServe(t, "-tracesample", "1")
	defer stop()

	resp, err := http.Post(url+"/v1/checksum", "application/json",
		strings.NewReader(`{"algorithm":"CRC-32/IEEE-802.3","text":"123456789"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-ID")
	if resp.StatusCode != http.StatusOK || traceID == "" {
		t.Fatalf("checksum: %d, X-Trace-ID %q", resp.StatusCode, traceID)
	}

	one, err := http.Get(url + "/v1/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(one.Body)
	one.Body.Close()
	if one.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"/v1/checksum"`)) {
		t.Fatalf("trace lookup: %d %s", one.StatusCode, body)
	}
	list, err := http.Get(url + "/v1/traces?endpoint=/v1/checksum")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(list.Body)
	list.Body.Close()
	if list.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(traceID)) {
		t.Fatalf("trace list: %d %s", list.StatusCode, body)
	}
}

func TestServeTracingDisabled(t *testing.T) {
	url, stop := startServe(t, "-traces", "0")
	defer stop()

	resp, err := http.Get(url + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/traces with -traces 0: %d, want 404", resp.StatusCode)
	}
}

func TestServeTracingFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-traces", "-1"}, io.Discard); err == nil {
		t.Error("negative -traces should error")
	}
	if err := run(context.Background(), []string{"-tracesample", "1.5"}, io.Discard); err == nil {
		t.Error("-tracesample above 1 should error")
	}
}

func TestServeRemeasureIntervalValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-remeasure", "10ms"}, io.Discard); err == nil {
		t.Error("sub-second -remeasure should error")
	}
}

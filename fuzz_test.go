package koopmancrc_test

import (
	"fmt"
	"testing"

	"koopmancrc"
)

// FuzzParsePolynomialRoundTrip feeds arbitrary (width, notation, value)
// triples through ParsePolynomial and asserts the two invariants that
// make the four notations interchangeable:
//
//  1. a value that parses re-encodes to itself in its own notation
//     (no silent bit dropping — this caught FromReversed accepting
//     overflow bits), and
//  2. re-encoding in every other notation and re-parsing yields the
//     same polynomial.
func FuzzParsePolynomialRoundTrip(f *testing.F) {
	f.Add(32, uint8(0), uint64(0xBA0DC66B)) // the paper's proposal, Koopman form
	f.Add(32, uint8(1), uint64(0x04C11DB7)) // 802.3, normal form
	f.Add(32, uint8(2), uint64(0xEDB88320)) // 802.3, reversed form
	f.Add(32, uint8(3), uint64(0x104C11DB7))
	f.Add(16, uint8(2), uint64(0x8408)) // CCITT reversed
	f.Add(16, uint8(2), uint64(0x18408))
	f.Add(12, uint8(0), uint64(0xC07))
	f.Add(8, uint8(3), uint64(0x107))
	f.Add(1, uint8(0), uint64(1))
	f.Add(33, uint8(0), uint64(1)<<32)

	notations := []koopmancrc.Notation{
		koopmancrc.Koopman, koopmancrc.Normal, koopmancrc.Reversed, koopmancrc.Full,
	}
	f.Fuzz(func(t *testing.T, width int, notationIdx uint8, v uint64) {
		n := notations[int(notationIdx)%len(notations)]
		s := fmt.Sprintf("%#x", v)
		p, err := koopmancrc.ParsePolynomial(width, n, s)
		if err != nil {
			return // invalid encodings must error, not panic — which they just did not
		}
		if p.Width() != width && n != koopmancrc.Full {
			t.Fatalf("parsed %q as width %d, asked for %d", s, p.Width(), width)
		}
		if got := p.In(n); got != v {
			t.Fatalf("%v notation %v: parsed %#x but re-encodes to %#x", p, n, v, got)
		}
		for _, m := range notations {
			enc := fmt.Sprintf("%#x", p.In(m))
			q, err := koopmancrc.ParsePolynomial(p.Width(), m, enc)
			if err != nil {
				t.Fatalf("%v does not re-parse from its own %v form %s: %v", p, m, enc, err)
			}
			if q != p {
				t.Fatalf("round trip through %v changed %v into %v", m, p, q)
			}
		}
	})
}

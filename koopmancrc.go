// Package koopmancrc is a library for selecting, evaluating and using
// 32-bit (and narrower) CRC polynomials, reproducing Koopman, "32-Bit
// Cyclic Redundancy Codes for Internet Applications" (DSN 2002).
//
// It answers the three questions the paper poses:
//
//   - How good is a CRC polynomial? An Analyzer is a cached evaluation
//     session for one polynomial: Evaluate computes exact Hamming
//     distance bands (Table 1 / Figure 1), HDAt, MaxLenAtHD, Weight and
//     Witness answer pointwise questions, and every boundary discovered
//     by one call is reused by the next.
//   - Which polynomial should a new protocol adopt? Select (and
//     SelectAnalyzers, over caller-owned sessions) ranks candidates for
//     a target message length, reproducing the paper's §4.3 iSCSI
//     recommendation of 0xBA0DC66B.
//   - Are there better polynomials out there? Search filters slices of
//     the full design space with the paper's §4.1 optimisations (see
//     internal/dist for the multi-machine version).
//
// All long-running entry points take a context.Context and accept
// functional options (WithMaxHD, WithProgress, WithLimits).
//
// Checksum computation lives in the koopmancrc/crchash subpackage:
// catalogued algorithms, user registration, engine selection and
// hash.Hash32 digests, with engines cached per algorithm. The Checksum
// and NewEngine helpers here remain as deprecated wrappers over it.
package koopmancrc

import (
	"context"
	"fmt"

	"koopmancrc/crchash"
	"koopmancrc/internal/core"
	"koopmancrc/internal/crc"
	"koopmancrc/internal/errmodel"
	"koopmancrc/internal/hamming"
	"koopmancrc/internal/poly"
)

// Polynomial is a CRC generator polynomial (width plus coefficient set),
// convertible between Koopman, normal, reversed and full notations.
type Polynomial = poly.P

// Notation names a polynomial encoding (see ParsePolynomial).
type Notation = poly.Notation

// Supported notations.
const (
	Koopman  = poly.Koopman
	Normal   = poly.Normal
	Reversed = poly.Reversed
	Full     = poly.Full
)

// The paper's Table 1 polynomials.
var (
	IEEE8023          = poly.IEEE8023
	CastagnoliISCSI   = poly.CastagnoliISCSI
	Koopman32K        = poly.Koopman32K
	Castagnoli1131515 = poly.Castagnoli1131515
	Koopman1130       = poly.Koopman1130
	KoopmanSparse6    = poly.KoopmanSparse6
	CastagnoliHD5     = poly.CastagnoliHD5
	KoopmanSparse5    = poly.KoopmanSparse5
)

// Table1Polynomials returns the eight polynomials characterised in the
// paper's Table 1 and Figure 1, in column order.
func Table1Polynomials() []Polynomial {
	cols := poly.Table1()
	out := make([]Polynomial, len(cols))
	for i, c := range cols {
		out[i] = c.P
	}
	return out
}

// ParsePolynomial reads a polynomial from hex text in the given notation,
// e.g. ParsePolynomial(32, Koopman, "0xBA0DC66B").
func ParsePolynomial(width int, n Notation, s string) (Polynomial, error) {
	return poly.Parse(width, n, s)
}

// MustPolynomial is ParsePolynomial for known-good constants.
func MustPolynomial(width int, n Notation, s string) Polynomial {
	p, err := poly.Parse(width, n, s)
	if err != nil {
		panic(err)
	}
	return p
}

// Band is a range of data-word lengths (bits, inclusive) sharing a Hamming
// distance.
type Band = hamming.Band

// Report is the evaluation of one polynomial: its HD bands up to MaxLen
// and the weight boundaries behind them.
type Report struct {
	Poly        Polynomial
	MaxLen      int
	Bands       []Band
	Transitions []hamming.Transition
	Shape       string
	Period      uint64 // 0 if the period exceeds practical computation
	ParityBit   bool   // divisible by (x+1): all odd-weight errors caught
}

// HDAt returns the report's Hamming distance at a length (atLeast is true
// when the profile depth truncated the answer).
func (r *Report) HDAt(dataLen int) (hd int, atLeast bool, ok bool) {
	for _, b := range r.Bands {
		if dataLen >= b.From && dataLen <= b.To {
			return b.HD, b.AtLeast, true
		}
	}
	return 0, false, false
}

// MaxLenAtHD returns the largest length guaranteeing at least hd.
func (r *Report) MaxLenAtHD(hd int) (int, bool) {
	best := 0
	for _, b := range r.Bands {
		if b.HD >= hd && b.To > best {
			best = b.To
		}
	}
	return best, best > 0
}

// EvaluateOptions tune the deprecated Evaluate wrapper.
//
// Deprecated: pass WithMaxHD to NewAnalyzer instead.
type EvaluateOptions struct {
	// MaxHD bounds the classified Hamming distances (default 13).
	MaxHD int
}

// Evaluate computes the full HD-vs-length profile of a polynomial up to
// maxLen data bits — one column of the paper's Table 1. Cost grows with
// the polynomial's weight-4 boundary; the full 131072-bit evaluation of a
// Table 1 polynomial takes seconds to about a minute.
//
// Deprecated: use NewAnalyzer(p).Evaluate(ctx, maxLen) — the Analyzer
// keeps the boundary scans this function recomputes on every call, and
// its context supports cancellation.
func Evaluate(p Polynomial, maxLen int, opts *EvaluateOptions) (*Report, error) {
	var o []Option
	if opts != nil && opts.MaxHD >= 2 {
		o = append(o, WithMaxHD(opts.MaxHD))
	}
	return NewAnalyzer(p, o...).Evaluate(context.Background(), maxLen)
}

// HammingDistanceAt returns the exact Hamming distance of the polynomial
// at one data-word length (searching weights up to maxHD; exact=false
// means the true HD exceeds maxHD).
//
// Deprecated: use NewAnalyzer(p, WithMaxHD(maxHD)).HDAt(ctx, dataLen),
// which reuses the session's cached knowledge across calls.
func HammingDistanceAt(p Polynomial, dataLen, maxHD int) (hd int, exact bool, err error) {
	return NewAnalyzer(p, WithMaxHD(maxHD)).HDAt(context.Background(), dataLen)
}

// UndetectableWeight returns the exact number of undetectable w-bit error
// patterns at a data-word length (w <= 4), e.g. 223059 for the 802.3
// polynomial with w=4 at 12112 bits.
//
// Deprecated: use NewAnalyzer(p).Weight(ctx, w, dataLen).
func UndetectableWeight(p Polynomial, w, dataLen int) (uint64, error) {
	return NewAnalyzer(p).Weight(context.Background(), w, dataLen)
}

// UndetectableWitness returns one undetectable error pattern of exactly w
// bits at the given length, as codeword bit positions (position 0 = last
// transmitted bit).
//
// Deprecated: use NewAnalyzer(p).Witness(ctx, w, dataLen).
func UndetectableWitness(p Polynomial, w, dataLen int) (positions []int, found bool, err error) {
	return NewAnalyzer(p).Witness(context.Background(), w, dataLen)
}

// Selection scores one candidate for SelectPolynomial.
type Selection struct {
	Poly Polynomial
	// HD is the Hamming distance at the target length.
	HD int
	// CoverageAtHD is the largest length keeping that HD.
	CoverageAtHD int
}

// SelectPolynomial ranks candidates for protecting messages of the given
// data-word length: highest HD at that length first, ties broken by how
// far the HD extends. It returns the ranking, best first.
//
// Deprecated: use Select(ctx, candidates, dataLen, WithMaxHD(maxHD)),
// or SelectAnalyzers to reuse evaluation sessions across calls.
func SelectPolynomial(candidates []Polynomial, dataLen, maxHD int) ([]Selection, error) {
	return Select(context.Background(), candidates, dataLen, WithMaxHD(maxHD))
}

// SearchConfig describes a design-space search (see the paper's §4).
type SearchConfig struct {
	// Width of the polynomials to search (2..32).
	Width int
	// MinHD is the Hamming distance to demand.
	MinHD int
	// Lengths is the increasing-length filter schedule; the last entry is
	// the target length.
	Lengths []int
	// StartIdx and EndIdx bound the raw index slice to search;
	// EndIdx 0 means the whole space (feasible for width <= ~20).
	StartIdx, EndIdx uint64
	// Parallelism is the number of filter goroutines the slice is
	// fanned out over (0 means GOMAXPROCS, 1 forces sequential). Each
	// internal/dist worker applies the same fan-out to its jobs.
	Parallelism int
}

// SearchResult is the outcome of a Search.
type SearchResult struct {
	// Survivors pass the HD filter at every scheduled length.
	Survivors []Polynomial
	// Candidates is the number of canonical polynomials evaluated.
	Candidates uint64
	// PolysPerSecond is the filter throughput (the paper's §4.2 metric).
	PolysPerSecond float64
	// CensusByShape counts survivors per factorization class (Table 2).
	CensusByShape map[string]int
}

// Search filters a slice of the design space, reproducing the paper's
// search pipeline on a single machine. The slice is carved into
// sub-shards filtered concurrently (see SearchConfig.Parallelism) and
// the partial results merged — the same work-unit layering that
// internal/dist distributes across machines (see cmd/crcsearch).
func Search(ctx context.Context, cfg SearchConfig) (*SearchResult, error) {
	space, err := core.NewSpace(cfg.Width)
	if err != nil {
		return nil, err
	}
	if len(cfg.Lengths) == 0 || cfg.MinHD < 2 {
		return nil, fmt.Errorf("koopmancrc: search needs lengths and MinHD >= 2")
	}
	end := cfg.EndIdx
	if end == 0 {
		end = space.TotalPolynomials()
	}
	pl := &core.Pipeline{
		Space:   space,
		Filters: []core.Filter{core.HDFilter{Lengths: cfg.Lengths, MinHD: cfg.MinHD, Engine: core.EngineFast}},
		Workers: cfg.Parallelism,
	}
	res, err := pl.Run(ctx, cfg.StartIdx, end)
	if err != nil {
		return nil, err
	}
	census, err := core.Census(res.Survivors)
	if err != nil {
		return nil, err
	}
	return &SearchResult{
		Survivors:      res.Survivors,
		Candidates:     res.Canonical,
		PolysPerSecond: res.Rate(),
		CensusByShape:  census,
	}, nil
}

// Checksum computes the CRC of data under a catalogued algorithm name
// (e.g. "CRC-32/IEEE-802.3", "CRC-32C/iSCSI", "CRC-32K/Koopman"). It
// uses crchash's per-algorithm engine cache, so repeated calls no longer
// rebuild lookup tables.
//
// Deprecated: use crchash.Checksum.
func Checksum(algorithm string, data []byte) (uint32, error) {
	return crchash.Checksum(algorithm, data)
}

// Algorithms lists the catalogued algorithm names.
//
// Deprecated: use crchash.Algorithms.
func Algorithms() []string { return crchash.Algorithms() }

// Engine computes CRCs incrementally; obtain one from NewEngine.
//
// Deprecated: use crchash.Engine.
type Engine = crc.Engine

// NewEngine returns a streaming engine for a catalogued algorithm,
// served from crchash's per-algorithm cache.
//
// Deprecated: use crchash.ForAlgorithm (cached) or crchash.NewEngine
// (explicit engine kind).
func NewEngine(algorithm string) (Engine, error) {
	return crchash.ForAlgorithm(algorithm)
}

// PureChecksum computes the plain polynomial-remainder CRC (zero init, no
// reflection, zero xor-out): data(x)*x^width mod G(x). This is the
// convention under which Hamming-distance analysis holds bit-for-bit, used
// by the frame helpers below.
func PureChecksum(p Polynomial, data []byte) uint32 {
	return crc.NewBitwise(crc.Pure(p)).Checksum(data)
}

// AppendFCS appends the pure FCS (big-endian, width/8 bytes) to payload,
// returning the codeword frame. The width must be a multiple of 8.
func AppendFCS(p Polynomial, payload []byte) ([]byte, error) {
	w := p.Width()
	if w%8 != 0 {
		return nil, fmt.Errorf("koopmancrc: width %d is not byte-aligned", w)
	}
	fcs := PureChecksum(p, payload)
	frame := append(append([]byte(nil), payload...), make([]byte, w/8)...)
	for i := 0; i < w/8; i++ {
		frame[len(payload)+i] = byte(fcs >> uint(8*(w/8-1-i)))
	}
	return frame, nil
}

// VerifyFCS reports whether frame (payload followed by its pure FCS) is an
// error-free codeword: the remainder of the whole frame is zero.
func VerifyFCS(p Polynomial, frame []byte) bool {
	return PureChecksum(p, frame) == 0
}

// CorruptCodeword flips codeword bit positions in a frame produced by
// AppendFCS. Positions use the polynomial convention of
// UndetectableWitness: position 0 is the last transmitted bit.
func CorruptCodeword(frame []byte, positions []int) error {
	return errmodel.FlipCodewordPositions(frame, positions)
}

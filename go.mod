module koopmancrc

go 1.24

module koopmancrc

go 1.23

package client

import (
	"context"
	"sync"

	"koopmancrc/serve"
)

// Pipeline issues checksum batches with a bounded number of concurrent
// in-flight requests, so one process can keep the server's ingestion
// tier saturated instead of paying a full round trip of idle wire time
// between batches. Requests ride the client's underlying http.Client,
// which pools keep-alive connections per host; for a deep pipeline make
// sure its Transport.MaxIdleConnsPerHost is at least the pipeline depth
// (or pass a tuned client via WithHTTPClient).
//
// A Pipeline is safe for concurrent use. Submit applies backpressure:
// it blocks while the maximum number of batches is already in flight.
type Pipeline struct {
	c   *Client
	sem chan struct{}
	wg  sync.WaitGroup
}

// Pipeline returns a pipeline over this client issuing at most
// maxInFlight concurrent batches (minimum 1).
func (c *Client) Pipeline(maxInFlight int) *Pipeline {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	return &Pipeline{c: c, sem: make(chan struct{}, maxInFlight)}
}

// BatchCall is the future of one submitted batch.
type BatchCall struct {
	done chan struct{}
	resp *serve.ChecksumBatchResponse
	err  error
}

// Done is closed when the batch has completed.
func (b *BatchCall) Done() <-chan struct{} { return b.done }

// Result blocks until the batch completes and returns its outcome.
func (b *BatchCall) Result() (*serve.ChecksumBatchResponse, error) {
	<-b.done
	return b.resp, b.err
}

// Submit enqueues one batch, blocking while maxInFlight batches are
// already on the wire. The returned call completes with ctx.Err() if the
// context is cancelled first, whether while waiting for a slot or while
// the request is in flight.
func (p *Pipeline) Submit(ctx context.Context, req serve.ChecksumBatchRequest) *BatchCall {
	call := &BatchCall{done: make(chan struct{})}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		call.err = ctx.Err()
		close(call.done)
		return call
	}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
			close(call.done)
		}()
		call.resp, call.err = p.c.ChecksumBatch(ctx, req)
	}()
	return call
}

// Wait blocks until every batch submitted so far has completed.
func (p *Pipeline) Wait() { p.wg.Wait() }

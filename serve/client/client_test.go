package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"koopmancrc/serve"
)

func startServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

var smallEval = serve.EvaluateRequest{
	PolyRef: serve.PolyRef{Poly: "0x83", Width: 8},
	MaxLen:  64,
	MaxHD:   6,
	Weights: []int{32},
}

func TestClientEndToEnd(t *testing.T) {
	ts := startServer(t, serve.Config{})
	c := New(ts.URL)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	// Streamed first (cold session → progress ticks), then plain (warm).
	var ticks int
	streamed, err := c.EvaluateStream(ctx, smallEval, func(serve.ProgressEvent) { ticks++ })
	if err != nil {
		t.Fatal(err)
	}
	if ticks == 0 {
		t.Error("no progress ticks on a cold stream")
	}
	plain, err := c.Evaluate(ctx, smallEval)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Poly != "0x83" || len(plain.Bands) == 0 || len(plain.Weights) != 1 {
		t.Fatalf("evaluate response: %+v", plain)
	}
	jp, _ := json.Marshal(plain)
	js, _ := json.Marshal(streamed)
	if !bytes.Equal(jp, js) {
		t.Fatalf("streamed and plain disagree: %s vs %s", js, jp)
	}

	hd, err := c.HD(ctx, serve.HDRequest{PolyRef: serve.PolyRef{Poly: "0x83", Width: 8}, DataLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	if hd.HD < 2 {
		t.Fatalf("hd response: %+v", hd)
	}

	ml, err := c.MaxLenAtHD(ctx, serve.MaxLenRequest{PolyRef: serve.PolyRef{Poly: "0x83", Width: 8}, HD: 4, Horizon: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !ml.OK || ml.MaxLen < 1 {
		t.Fatalf("maxlen response: %+v", ml)
	}

	sel, err := c.Select(ctx, serve.SelectRequest{
		Candidates: []serve.PolyRef{{Poly: "0x83", Width: 8}, {Poly: "0x9c", Width: 8}},
		DataLen:    16, MaxHD: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Ranking) != 2 {
		t.Fatalf("select response: %+v", sel)
	}

	sum, err := c.Checksum(ctx, "CRC-32C/iSCSI", []byte("123456789"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Checksum != 0xE3069283 {
		t.Fatalf("CRC-32C check value: %+v", sum)
	}

	algs, err := c.Algorithms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(algs) == 0 {
		t.Fatal("no algorithms")
	}
}

// TestEvaluateStreamMultiLineData: successive data: lines of one SSE
// event join with a newline per the spec, so a multi-line JSON payload
// parses intact — and lines that would silently merge into a different
// number under plain concatenation surface as a parse error instead.
func TestEvaluateStreamMultiLineData(t *testing.T) {
	ctx := context.Background()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, "event: progress\ndata: {\ndata:   \"weight\": 3\ndata: }\n\n")
		io.WriteString(w, "event: result\ndata: {\ndata:   \"poly\": \"0x83\",\ndata:   \"width\": 8\ndata: }\n\n")
	}))
	defer ts.Close()
	var progress []serve.ProgressEvent
	out, err := New(ts.URL).EvaluateStream(ctx, smallEval, func(p serve.ProgressEvent) { progress = append(progress, p) })
	if err != nil {
		t.Fatal(err)
	}
	if out.Poly != "0x83" || out.Width != 8 {
		t.Fatalf("multi-line result: %+v", out)
	}
	if len(progress) != 1 || progress[0].Weight != 3 {
		t.Fatalf("multi-line progress: %+v", progress)
	}

	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, "event: result\ndata: {\"max_len\": 12\ndata: 3}\n\n")
	}))
	defer corrupt.Close()
	if _, err := New(corrupt.URL).EvaluateStream(ctx, smallEval, nil); err == nil || !strings.Contains(err.Error(), "bad result event") {
		t.Fatalf("split-number payload: err = %v, want bad result event (not a silently merged 123)", err)
	}
}

func TestClientErrorsAndAuth(t *testing.T) {
	ts := startServer(t, serve.Config{Token: "sesame"})
	ctx := context.Background()

	// Healthz is exempt from auth.
	if err := New(ts.URL).Healthz(ctx); err != nil {
		t.Fatal(err)
	}

	// Missing token → APIError 401.
	_, err := New(ts.URL).Evaluate(ctx, smallEval)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 401 {
		t.Fatalf("unauthenticated evaluate: %v", err)
	}
	// Streaming rejects before any SSE too.
	if _, err := New(ts.URL).EvaluateStream(ctx, smallEval, nil); !errors.As(err, &apiErr) || apiErr.StatusCode != 401 {
		t.Fatalf("unauthenticated stream: %v", err)
	}

	c := New(ts.URL, WithToken("sesame"))
	if _, err := c.Evaluate(ctx, smallEval); err != nil {
		t.Fatal(err)
	}

	// Server-side validation errors surface with the server's message.
	bad := smallEval
	bad.MaxLen = 0
	if _, err := c.Evaluate(ctx, bad); !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("invalid request: %v", err)
	}
	if _, err := c.Checksum(ctx, "CRC-99/NOPE", nil); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown algorithm: %v", err)
	}
}

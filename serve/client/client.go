// Package client is a small Go client for the crcserve HTTP API (see
// koopmancrc/serve): typed wrappers over the JSON endpoints, bearer-token
// auth, and SSE consumption of streaming evaluations.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"koopmancrc/serve"
)

// APIError is a non-2xx reply from the server, carrying the HTTP status,
// the server's error message and the request ID (from the error body or
// the X-Request-ID response header) that locates the failure in the
// server's logs.
type APIError struct {
	StatusCode int
	Message    string
	RequestID  string
}

func (e *APIError) Error() string {
	msg := fmt.Sprintf("crcserve: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
	if e.RequestID != "" {
		msg += " (request " + e.RequestID + ")"
	}
	return msg
}

// Client talks to one crcserve instance. The zero value is not usable;
// construct with New.
type Client struct {
	base  string
	hc    *http.Client
	token string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom TLS
// roots, timeouts, proxies).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithToken attaches a bearer token to every request.
func WithToken(token string) Option { return func(c *Client) { c.token = token } }

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8370").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, fn := range opts {
		fn(c)
	}
	return c
}

// roundTrip performs one JSON request; in is nil for GET.
func (c *Client) roundTrip(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	c.prepare(req, in != nil)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) prepare(req *http.Request, hasBody bool) {
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

func decodeError(resp *http.Response) error {
	apiErr := &APIError{StatusCode: resp.StatusCode, RequestID: resp.Header.Get("X-Request-ID")}
	var er serve.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err == nil && er.Error != "" {
		apiErr.Message = er.Error
		if er.RequestID != "" {
			apiErr.RequestID = er.RequestID
		}
	} else {
		apiErr.Message = "(no error body)"
	}
	return apiErr
}

// Evaluate computes the HD-vs-length profile of one polynomial.
func (c *Client) Evaluate(ctx context.Context, req serve.EvaluateRequest) (*serve.EvaluateResponse, error) {
	var out serve.EvaluateResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/evaluate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EvaluateStream is Evaluate over SSE: onProgress (optional) receives
// live search ticks, and the final result event is returned when the
// evaluation completes.
func (c *Client) EvaluateStream(ctx context.Context, req serve.EvaluateRequest, onProgress func(serve.ProgressEvent)) (*serve.EvaluateResponse, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/evaluate?stream=1", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	c.prepare(hreq, true)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}

	var event string
	var payload bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			// Successive data: lines of one event join with a newline
			// (the SSE spec's concatenation rule).
			if payload.Len() > 0 {
				payload.WriteByte('\n')
			}
			payload.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case line == "":
			switch event {
			case "progress":
				if onProgress != nil {
					var p serve.ProgressEvent
					if err := json.Unmarshal(payload.Bytes(), &p); err == nil {
						onProgress(p)
					}
				}
			case "result":
				var out serve.EvaluateResponse
				if err := json.Unmarshal(payload.Bytes(), &out); err != nil {
					return nil, fmt.Errorf("crcserve: bad result event: %w", err)
				}
				return &out, nil
			case "error":
				var er serve.ErrorResponse
				if err := json.Unmarshal(payload.Bytes(), &er); err != nil {
					return nil, fmt.Errorf("crcserve: bad error event: %w", err)
				}
				rid := er.RequestID
				if rid == "" {
					rid = resp.Header.Get("X-Request-ID")
				}
				return nil, &APIError{StatusCode: http.StatusOK, Message: er.Error, RequestID: rid}
			}
			event = ""
			payload.Reset()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// HD returns the exact Hamming distance at one data-word length.
func (c *Client) HD(ctx context.Context, req serve.HDRequest) (*serve.HDResponse, error) {
	var out serve.HDResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/hd", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MaxLenAtHD returns the largest length keeping a target HD.
func (c *Client) MaxLenAtHD(ctx context.Context, req serve.MaxLenRequest) (*serve.MaxLenResponse, error) {
	var out serve.MaxLenResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/maxlen", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Select ranks candidate polynomials for a message length, best first.
func (c *Client) Select(ctx context.Context, req serve.SelectRequest) (*serve.SelectResponse, error) {
	var out serve.SelectResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/select", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Checksum computes the CRC of data under a catalogued algorithm name.
func (c *Client) Checksum(ctx context.Context, algorithm string, data []byte) (*serve.ChecksumResponse, error) {
	var out serve.ChecksumResponse
	req := serve.ChecksumRequest{Algorithm: algorithm, Data: data}
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/checksum", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ChecksumBatch computes many checksums in one round trip. Per-item
// failures (unknown algorithm, overlong payload) come back in the item's
// Error field; the call itself fails only on transport errors or a
// batch-level rejection (too many items: 422, too many bytes: 413).
func (c *Client) ChecksumBatch(ctx context.Context, req serve.ChecksumBatchRequest) (*serve.ChecksumBatchResponse, error) {
	var out serve.ChecksumBatchResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/checksum/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ChecksumReader streams r to /v1/checksum/stream as a raw
// application/octet-stream body — never buffered on either side — and
// returns the digest the server computed chunk-by-chunk. Use it for
// payloads too large to hold in memory; the server rejects bodies over
// its stream cap with 413.
func (c *Client) ChecksumReader(ctx context.Context, algorithm string, r io.Reader) (*serve.ChecksumResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/checksum/stream?algorithm="+url.QueryEscape(algorithm), r)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	if c.token != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out serve.ChecksumResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TracesOptions filters a Traces listing. Zero values mean "no filter"
// (and the server's default limit of 100).
type TracesOptions struct {
	// Endpoint restricts results to traces rooted at one endpoint label,
	// e.g. "/v1/evaluate".
	Endpoint string
	// MinDuration drops traces faster than this.
	MinDuration time.Duration
	// ErrorsOnly keeps only errored traces.
	ErrorsOnly bool
	// Limit caps the number of summaries returned (server default 100).
	Limit int
}

// Traces lists the server's retained trace summaries, newest first.
// Requires tracing enabled server-side (404 otherwise).
func (c *Client) Traces(ctx context.Context, opts TracesOptions) (*serve.TracesResponse, error) {
	q := url.Values{}
	if opts.Endpoint != "" {
		q.Set("endpoint", opts.Endpoint)
	}
	if opts.MinDuration > 0 {
		q.Set("min_duration", opts.MinDuration.String())
	}
	if opts.ErrorsOnly {
		q.Set("error", "true")
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	path := "/v1/traces"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out serve.TracesResponse
	if err := c.roundTrip(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Trace fetches one retained trace's full span tree by ID (as returned
// in X-Trace-ID response headers, exposition exemplars or Traces
// summaries). A 404 means the trace was never retained or has been
// evicted from the flight recorder.
func (c *Client) Trace(ctx context.Context, id string) (*serve.TraceData, error) {
	var out serve.TraceData
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Algorithms lists the server's catalogued algorithm names.
func (c *Client) Algorithms(ctx context.Context) ([]string, error) {
	var out serve.AlgorithmsResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out.Algorithms, nil
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/healthz", nil, nil)
}

package client

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"koopmancrc/crchash"
	"koopmancrc/serve"
)

func TestChecksumBatch(t *testing.T) {
	ts := startServer(t, serve.Config{})
	c := New(ts.URL)
	resp, err := c.ChecksumBatch(context.Background(), serve.ChecksumBatchRequest{
		Items: []serve.ChecksumRequest{
			{Algorithm: "CRC-32C/iSCSI", Data: []byte("123456789")},
			{Algorithm: "CRC-32/NO-SUCH", Text: "x"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || resp.Failed != 1 {
		t.Fatalf("count/failed = %d/%d, want 2/1", resp.Count, resp.Failed)
	}
	if resp.Items[0].Hex != "0xe3069283" || resp.Items[1].Error == "" {
		t.Fatalf("items %+v", resp.Items)
	}
}

func TestChecksumReader(t *testing.T) {
	ts := startServer(t, serve.Config{})
	c := New(ts.URL)
	data := bytes.Repeat([]byte("streaming checksum "), 150000) // ~2.8 MiB
	want, err := crchash.Checksum("CRC-32/IEEE-802.3", data)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.ChecksumReader(context.Background(), "CRC-32/IEEE-802.3", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Checksum != want || resp.Length != len(data) {
		t.Fatalf("got %+v, want checksum %#x over %d bytes", resp, want, len(data))
	}
}

func TestChecksumReaderAPIError(t *testing.T) {
	ts := startServer(t, serve.Config{MaxStreamBytes: 512})
	c := New(ts.URL)
	_, err := c.ChecksumReader(context.Background(), "CRC-32C/iSCSI", bytes.NewReader(make([]byte, 2048)))
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error %v (%T), want *APIError", err, err)
	}
	if apiErr.StatusCode != http.StatusRequestEntityTooLarge || apiErr.RequestID == "" {
		t.Fatalf("APIError %+v, want 413 with a request ID", apiErr)
	}
}

// TestPipelineBoundedInFlight drives eight batches through a depth-3
// pipeline against a server that records its concurrent in-flight count:
// the pipeline must overlap requests (otherwise it is just a loop) while
// never exceeding its bound.
func TestPipelineBoundedInFlight(t *testing.T) {
	srv, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	defer srv.Close()
	var inFlight, maxInFlight atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			prev := maxInFlight.Load()
			if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		// Hold each request long enough that a pipelining client
		// necessarily overlaps them.
		time.Sleep(20 * time.Millisecond)
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL)
	p := c.Pipeline(3)
	var calls []*BatchCall
	for i := 0; i < 8; i++ {
		calls = append(calls, p.Submit(context.Background(), serve.ChecksumBatchRequest{
			Items: []serve.ChecksumRequest{
				{Algorithm: "CRC-32C/iSCSI", Text: fmt.Sprintf("payload-%d", i)},
			},
		}))
	}
	p.Wait()
	for i, call := range calls {
		resp, err := call.Result()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if resp.Failed != 0 || len(resp.Items) != 1 || resp.Items[0].Kernel == "" {
			t.Fatalf("batch %d: %+v", i, resp)
		}
	}
	if got := maxInFlight.Load(); got > 3 {
		t.Errorf("max in-flight %d exceeded the pipeline bound 3", got)
	}
	if got := maxInFlight.Load(); got < 2 {
		t.Errorf("max in-flight %d: the pipeline never overlapped requests", got)
	}
}

func TestPipelineSubmitHonorsContext(t *testing.T) {
	ts := startServer(t, serve.Config{})
	c := New(ts.URL)
	p := c.Pipeline(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	call := p.Submit(ctx, serve.ChecksumBatchRequest{
		Items: []serve.ChecksumRequest{{Algorithm: "CRC-32C/iSCSI", Text: "x"}},
	})
	select {
	case <-call.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled submit never completed")
	}
	if _, err := call.Result(); err == nil {
		t.Fatal("cancelled submit returned no error")
	}
	p.Wait()
}

// batchOf builds n small distinct checksum items.
func batchOf(n int) serve.ChecksumBatchRequest {
	req := serve.ChecksumBatchRequest{Items: make([]serve.ChecksumRequest, n)}
	for i := range req.Items {
		req.Items[i] = serve.ChecksumRequest{
			Algorithm: "CRC-32C/iSCSI",
			Data:      bytes.Repeat([]byte{byte(i)}, 64),
		}
	}
	return req
}

// The amortization pair: 64 small payloads one-at-a-time vs in one
// round trip. cmd/crcbench -serve measures the same ratio outside the
// test harness and records it in the BENCH_PR8.json trajectory.

func BenchmarkChecksumSequential64(b *testing.B) {
	srv, err := serve.New(serve.Config{})
	if err != nil {
		b.Fatalf("serve.New: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(ts.URL)
	req := batchOf(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, item := range req.Items {
			if _, err := c.Checksum(context.Background(), item.Algorithm, item.Data); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N)*64/b.Elapsed().Seconds(), "items/s")
}

func BenchmarkChecksumBatch64(b *testing.B) {
	srv, err := serve.New(serve.Config{})
	if err != nil {
		b.Fatalf("serve.New: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(ts.URL)
	req := batchOf(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.ChecksumBatch(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Failed != 0 {
			b.Fatalf("%d items failed", resp.Failed)
		}
	}
	b.ReportMetric(float64(b.N)*64/b.Elapsed().Seconds(), "items/s")
}

func BenchmarkChecksumBatch64Pipelined(b *testing.B) {
	srv, err := serve.New(serve.Config{})
	if err != nil {
		b.Fatalf("serve.New: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(ts.URL)
	req := batchOf(64)
	p := c.Pipeline(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(context.Background(), req)
	}
	p.Wait()
	b.ReportMetric(float64(b.N)*64/b.Elapsed().Seconds(), "items/s")
}

package serve

import (
	"context"
	"fmt"
	"strings"

	"koopmancrc"
)

// PolyRef identifies a polynomial on the wire. Width defaults to 32 and
// Notation to "koopman" when omitted.
type PolyRef struct {
	Poly     string `json:"poly"`
	Width    int    `json:"width,omitempty"`
	Notation string `json:"notation,omitempty"` // koopman|normal|reversed|full
}

// ParseNotation maps a wire notation name (case-insensitive; "" means
// koopman) to the library constant.
func ParseNotation(s string) (koopmancrc.Notation, error) {
	switch strings.ToLower(s) {
	case "", "koopman":
		return koopmancrc.Koopman, nil
	case "normal":
		return koopmancrc.Normal, nil
	case "reversed":
		return koopmancrc.Reversed, nil
	case "full":
		return koopmancrc.Full, nil
	default:
		return 0, fmt.Errorf("unknown notation %q", s)
	}
}

// Polynomial resolves the reference to a library Polynomial.
func (r PolyRef) Polynomial() (koopmancrc.Polynomial, error) {
	if r.Poly == "" {
		return koopmancrc.Polynomial{}, fmt.Errorf("missing poly")
	}
	width := r.Width
	if width == 0 {
		width = 32
	}
	n, err := ParseNotation(r.Notation)
	if err != nil {
		return koopmancrc.Polynomial{}, err
	}
	return koopmancrc.ParsePolynomial(width, n, r.Poly)
}

// Limits carries per-request engine resource budgets; zero fields keep
// the server defaults, and the server clamps every field to its
// configured ceiling.
type Limits struct {
	MaxProbes       int64 `json:"max_probes,omitempty"`
	MaxStoreEntries int   `json:"max_store_entries,omitempty"`
	MaxPairBuffer   int   `json:"max_pair_buffer,omitempty"`
}

// EvaluateRequest asks for the HD-vs-length profile of one polynomial —
// one column of the paper's Table 1 — plus, optionally, exact W2..W4
// counts at chosen lengths.
type EvaluateRequest struct {
	PolyRef
	MaxLen  int     `json:"max_len"`
	MaxHD   int     `json:"max_hd,omitempty"`
	Limits  *Limits `json:"limits,omitempty"`
	Weights []int   `json:"weights,omitempty"` // lengths for exact W2..W4
}

// Band is a range of data-word lengths (bits, inclusive) sharing a
// Hamming distance.
type Band struct {
	HD      int  `json:"hd"`
	AtLeast bool `json:"at_least,omitempty"`
	From    int  `json:"from"`
	To      int  `json:"to"`
}

// Transition is a weight boundary: the first data-word length at which an
// undetectable pattern of the given weight exists, with one witness
// (codeword bit positions, position 0 = last transmitted bit).
type Transition struct {
	Weight   int   `json:"weight"`
	FirstLen int   `json:"first_len"`
	Witness  []int `json:"witness,omitempty"`
}

// WeightCount reports the exact number of undetectable 2-, 3- and 4-bit
// error patterns at one data-word length.
type WeightCount struct {
	Length int    `json:"length"`
	W2     uint64 `json:"w2"`
	W3     uint64 `json:"w3"`
	W4     uint64 `json:"w4"`
}

// EvaluateResponse is the wire form of a koopmancrc.Report. Timing
// fields are deliberately absent so equal evaluations marshal to equal
// bytes (cmd/crceval -json round-trips through this type).
type EvaluateResponse struct {
	Poly        string        `json:"poly"` // koopman notation hex
	Normal      string        `json:"normal"`
	Reversed    string        `json:"reversed"`
	Width       int           `json:"width"`
	MaxLen      int           `json:"max_len"`
	MaxHD       int           `json:"max_hd"`
	Shape       string        `json:"shape,omitempty"`
	Period      uint64        `json:"period,omitempty"`
	ParityBit   bool          `json:"parity_bit"`
	Bands       []Band        `json:"bands"`
	Transitions []Transition  `json:"transitions"`
	Weights     []WeightCount `json:"weights,omitempty"`
}

// hexStr formats a polynomial word the way the wire types spell them.
func hexStr(v uint64) string { return fmt.Sprintf("%#x", v) }

// NewEvaluateResponse assembles the wire response for a completed
// evaluation. It is shared by the server's /v1/evaluate handler and
// cmd/crceval -json, which keeps the two outputs byte-comparable.
func NewEvaluateResponse(rep *koopmancrc.Report, maxHD int, weights []WeightCount) *EvaluateResponse {
	p := rep.Poly
	resp := &EvaluateResponse{
		Poly:      hexStr(p.In(koopmancrc.Koopman)),
		Normal:    hexStr(p.In(koopmancrc.Normal)),
		Reversed:  hexStr(p.In(koopmancrc.Reversed)),
		Width:     p.Width(),
		MaxLen:    rep.MaxLen,
		MaxHD:     maxHD,
		Shape:     rep.Shape,
		Period:    rep.Period,
		ParityBit: rep.ParityBit,
		Weights:   weights,
	}
	for _, b := range rep.Bands {
		resp.Bands = append(resp.Bands, Band{HD: b.HD, AtLeast: b.AtLeast, From: b.From, To: b.To})
	}
	for _, tr := range rep.Transitions {
		resp.Transitions = append(resp.Transitions, Transition{Weight: tr.W, FirstLen: tr.FirstLen, Witness: tr.Witness})
	}
	return resp
}

// WeightCounts computes the exact W2..W4 counts at each length on an
// Analyzer session. The server's /v1/evaluate handler and cmd/crceval
// -json share it, which is what keeps their outputs byte-comparable.
func WeightCounts(ctx context.Context, an *koopmancrc.Analyzer, lengths []int) ([]WeightCount, error) {
	var out []WeightCount
	for _, l := range lengths {
		wc := WeightCount{Length: l}
		for w := 2; w <= 4; w++ {
			v, err := an.Weight(ctx, w, l)
			if err != nil {
				return nil, err
			}
			switch w {
			case 2:
				wc.W2 = v
			case 3:
				wc.W3 = v
			case 4:
				wc.W4 = v
			}
		}
		out = append(out, wc)
	}
	return out, nil
}

// HDRequest asks for the exact Hamming distance at one data-word length.
type HDRequest struct {
	PolyRef
	DataLen int     `json:"data_len"`
	MaxHD   int     `json:"max_hd,omitempty"`
	Limits  *Limits `json:"limits,omitempty"`
}

// HDResponse answers an HDRequest; Exact false means every weight up to
// MaxHD came back clean, so the true HD is at least HD.
type HDResponse struct {
	Poly    string `json:"poly"`
	DataLen int    `json:"data_len"`
	HD      int    `json:"hd"`
	Exact   bool   `json:"exact"`
}

// MaxLenRequest asks for the largest data-word length (searched up to
// Horizon) still guaranteeing the given Hamming distance.
type MaxLenRequest struct {
	PolyRef
	HD      int     `json:"hd"`
	Horizon int     `json:"horizon"`
	Limits  *Limits `json:"limits,omitempty"`
}

// MaxLenResponse answers a MaxLenRequest; OK false means even length 1
// falls short of the requested HD.
type MaxLenResponse struct {
	Poly    string `json:"poly"`
	HD      int    `json:"hd"`
	Horizon int    `json:"horizon"`
	MaxLen  int    `json:"max_len"`
	OK      bool   `json:"ok"`
}

// SelectRequest ranks candidate polynomials for protecting messages of
// DataLen bits (the paper's §4.3 methodology).
type SelectRequest struct {
	Candidates []PolyRef `json:"candidates"`
	DataLen    int       `json:"data_len"`
	MaxHD      int       `json:"max_hd,omitempty"`
	Limits     *Limits   `json:"limits,omitempty"`
}

// Selection scores one ranked candidate.
type Selection struct {
	Poly         string `json:"poly"`
	Width        int    `json:"width"`
	HD           int    `json:"hd"`
	CoverageAtHD int    `json:"coverage_at_hd"`
}

// SelectResponse lists candidates best-first.
type SelectResponse struct {
	DataLen int         `json:"data_len"`
	Ranking []Selection `json:"ranking"`
}

// ChecksumRequest computes a CRC under a catalogued algorithm. Data is
// base64 on the wire (Go []byte JSON convention); Text is a convenience
// alternative for hand-written requests and is used when Data is empty.
type ChecksumRequest struct {
	Algorithm string `json:"algorithm"`
	Data      []byte `json:"data,omitempty"`
	Text      string `json:"text,omitempty"`
}

// ChecksumResponse reports the check value in decimal and hex, plus
// which checksum kernel actually served the request ("hardware",
// "slicing16", ... — see crchash.Kind) so operators can confirm the
// measured Auto selection or a CRCHASH_KIND override took effect.
type ChecksumResponse struct {
	Algorithm string `json:"algorithm"`
	Length    int    `json:"length"` // payload bytes
	Checksum  uint32 `json:"checksum"`
	Hex       string `json:"hex"`
	Kernel    string `json:"kernel"`
}

// ChecksumBatchRequest carries many checksum payloads in one round
// trip, amortizing per-request HTTP and JSON overhead. Items follow the
// single-checksum convention (base64 Data, or Text when Data is empty).
type ChecksumBatchRequest struct {
	Items []ChecksumRequest `json:"items"`
}

// ChecksumBatchItem is one per-item outcome. On success Error is empty
// and the remaining fields mirror ChecksumResponse; on failure (unknown
// algorithm, overlong payload) Error explains, the checksum fields are
// zero, and RequestID carries the batch request's ID so the failure can
// be located in the server's logs like a top-level ErrorResponse can. A
// failed item never fails its batch.
type ChecksumBatchItem struct {
	Algorithm string `json:"algorithm,omitempty"`
	Length    int    `json:"length"`
	Checksum  uint32 `json:"checksum"`
	Hex       string `json:"hex,omitempty"`
	Kernel    string `json:"kernel,omitempty"`
	Error     string `json:"error,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// ChecksumBatchResponse answers a batch: one item per request item, in
// order, plus summary counts so clients can cheaply spot partial
// failure.
type ChecksumBatchResponse struct {
	Count  int                 `json:"count"`
	Failed int                 `json:"failed"`
	Items  []ChecksumBatchItem `json:"items"`
}

// AlgorithmsResponse lists the catalogued algorithm names, sorted.
type AlgorithmsResponse struct {
	Algorithms []string `json:"algorithms"`
}

// ProgressEvent is one SSE progress tick of a streaming evaluation.
type ProgressEvent struct {
	Poly    string `json:"poly"`
	Weight  int    `json:"weight"`
	DataLen int    `json:"data_len"`
	Probes  int64  `json:"probes"`
}

// ErrorResponse is the body of every non-2xx JSON reply (and the SSE
// "error" event of a failed stream). RequestID matches the response's
// X-Request-ID header, so a failure seen by a client can be located in
// the server's structured logs.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

package serve

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"koopmancrc"
	"koopmancrc/crchash"
	"koopmancrc/internal/corpus"
	"koopmancrc/internal/obs"
)

// Config tunes a Server. The zero value serves with sensible defaults
// and no authentication.
type Config struct {
	// PoolSize caps the number of live Analyzer sessions; beyond it the
	// least recently used session is evicted (default 64).
	PoolSize int
	// MaxLenCap clamps per-request max_len and horizon (default 2^20).
	MaxLenCap int
	// MaxHDCap clamps per-request max_hd (default koopmancrc.DefaultMaxHD).
	MaxHDCap int
	// DefaultMaxHD is used when a request omits max_hd (default MaxHDCap).
	DefaultMaxHD int
	// MaxCandidates caps /v1/select candidate lists (default 64).
	MaxCandidates int
	// MaxWeightLens caps the exact-weight lengths of one evaluate
	// request (default 8).
	MaxWeightLens int
	// MaxBodyBytes caps JSON request bodies and the per-item payload of
	// a checksum batch (default 1 MiB).
	MaxBodyBytes int64
	// MaxBatchItems caps the item count of one /v1/checksum/batch
	// request (default 256).
	MaxBatchItems int
	// MaxBatchBytes caps the total decoded payload bytes of one
	// /v1/checksum/batch request; the wire body is bounded at twice this
	// to cover base64 and JSON framing (default 16 MiB).
	MaxBatchBytes int64
	// MaxStreamBytes caps one /v1/checksum/stream body (default 1 GiB).
	MaxStreamBytes int64
	// Timeout bounds each request's evaluation, streaming included
	// (0 = no server-side deadline).
	Timeout time.Duration
	// Token, when non-empty, requires "Authorization: Bearer <Token>" on
	// every endpoint except /healthz. Comparison is constant-time.
	Token string
	// CorpusDir, when non-empty, opens (creating if needed) the
	// persistent analysis corpus in that directory: new sessions
	// warm-start from stored memos — a baked polynomial answers with
	// zero engine probes — and newly computed memos are persisted back
	// write-behind, never blocking the request path. See internal/corpus
	// for the on-disk format and crash-safety guarantees.
	CorpusDir string
	// TraceBuffer caps the completed request traces the in-process
	// flight recorder retains for /v1/traces (default 256; negative
	// disables tracing entirely — no spans, no recorder, no exemplars).
	TraceBuffer int
	// TraceSampleRate is the probability a healthy, fast request's trace
	// is retained. Errored traces and the slowest-K per endpoint are
	// always retained regardless (tail sampling: the decision is made at
	// completion, when the outcome is known). 0 means the default 0.1;
	// negative means "errors and slowest-K only".
	TraceSampleRate float64
	// AccessLog emits one structured info-level log line per completed
	// request (method, endpoint, status, duration, bytes, request and
	// trace IDs). With tracing enabled the log is sampled by the same
	// tail-sampling decision as the flight recorder, so under load it
	// keeps exactly the requests whose traces are retrievable.
	AccessLog bool
	// Limits are ceilings for per-request engine budgets: a request may
	// lower a budget below the ceiling but never raise it. Zero fields
	// leave the engine defaults as the only bound.
	Limits koopmancrc.Limits
	// Logger receives structured request and engine-phase events at
	// debug level (default slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 64
	}
	if c.MaxLenCap <= 0 {
		c.MaxLenCap = 1 << 20
	}
	if c.MaxHDCap <= 0 {
		c.MaxHDCap = koopmancrc.DefaultMaxHD
	}
	if c.DefaultMaxHD <= 0 || c.DefaultMaxHD > c.MaxHDCap {
		c.DefaultMaxHD = c.MaxHDCap
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 64
	}
	if c.MaxWeightLens <= 0 {
		c.MaxWeightLens = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 16 << 20
	}
	if c.MaxStreamBytes <= 0 {
		c.MaxStreamBytes = 1 << 30
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 256
	}
	if c.TraceSampleRate == 0 {
		c.TraceSampleRate = 0.1
	} else if c.TraceSampleRate < 0 {
		c.TraceSampleRate = 0
	}
	return c
}

// metrics are the server's counters, expvar types kept unpublished so
// multiple Servers can coexist in one process; /metrics renders them.
type metrics struct {
	requests    *expvar.Map // per-endpoint request counts
	errors      *expvar.Map // per-endpoint non-2xx counts
	kernels     *expvar.Map // checksums served, by kernel kind
	flights     expvar.Int  // evaluations actually started on an engine
	coalesced   expvar.Int  // requests that joined an in-flight identical evaluation
	canceled    expvar.Int  // evaluations aborted via the engine's cancel hook
	streams     expvar.Int  // SSE streams served
	batchItems  expvar.Int  // checksum items received via /v1/checksum/batch
	streamBytes expvar.Int  // payload bytes digested via /v1/checksum/stream

	corpusHits      expvar.Int // sessions warm-started from the corpus
	corpusMisses    expvar.Int // sessions created with no stored knowledge
	corpusWrites    expvar.Int // memo snapshots persisted write-behind
	corpusWriteErrs expvar.Int // persistence attempts that failed
}

func newMetrics() *metrics {
	return &metrics{
		requests: new(expvar.Map).Init(),
		errors:   new(expvar.Map).Init(),
		kernels:  new(expvar.Map).Init(),
	}
}

// Server is the HTTP serving layer: JSON endpoints over a bounded LRU
// pool of Analyzer sessions with singleflight coalescing of identical
// evaluations. Create one with New; it implements http.Handler.
type Server struct {
	cfg     Config
	pool    *pool
	flights flightGroup
	metrics *metrics
	obs     *serverObs
	logger  *slog.Logger
	mux     *http.ServeMux

	// recorder is the tail-sampled flight recorder behind /v1/traces
	// (nil when Config.TraceBuffer is negative — tracing disabled).
	recorder *obs.FlightRecorder

	// corpus is the persistent analysis store (nil without CorpusDir);
	// persistCh feeds the write-behind persister goroutine, which signals
	// persistDone when it has drained on shutdown.
	corpus      *corpus.Store
	persistCh   chan *session
	persistDone chan struct{}

	// base parents every coalesced evaluation; Close cancels it so
	// shutdown aborts in-flight engine scans promptly.
	base      context.Context
	cancel    context.CancelFunc
	closeOnce sync.Once
}

// New returns a Server for the configuration. The only failure mode is
// a Config.CorpusDir that cannot be opened. Call Close during shutdown
// to cancel in-flight evaluations and flush the corpus.
func New(cfg Config) (*Server, error) {
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg.withDefaults(),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
		base:    base,
		cancel:  cancel,
	}
	s.logger = s.cfg.Logger
	if s.logger == nil {
		s.logger = slog.Default()
	}
	s.pool = newPool(s.cfg.PoolSize)
	s.pool.spans = s.observeSpan
	if s.cfg.TraceBuffer > 0 {
		s.recorder = obs.NewFlightRecorder(s.cfg.TraceBuffer, s.cfg.TraceSampleRate)
	}
	if s.cfg.CorpusDir != "" {
		if err := s.setupCorpus(s.cfg.CorpusDir); err != nil {
			cancel()
			return nil, err
		}
	}
	s.obs = newServerObs(s)
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/hd", s.handleHD)
	s.mux.HandleFunc("POST /v1/maxlen", s.handleMaxLen)
	s.mux.HandleFunc("POST /v1/select", s.handleSelect)
	s.mux.HandleFunc("POST /v1/checksum", s.handleChecksum)
	s.mux.HandleFunc("POST /v1/checksum/batch", s.handleChecksumBatch)
	s.mux.HandleFunc("POST /v1/checksum/stream", s.handleChecksumStream)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Close cancels every in-flight evaluation and, with a corpus enabled,
// drains the write-behind queue and closes the store (compacting its
// WAL). Idempotent. The Server keeps answering cheap requests (healthz,
// checksum) afterwards; pair it with http.Server.Shutdown for a full
// graceful stop.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.cancel()
		if s.corpus != nil {
			<-s.persistDone
			if err := s.corpus.Close(); err != nil {
				s.logger.Warn("corpus close failed", slog.String("error", err.Error()))
			}
		}
	})
}

// tokenEqual compares bearer tokens in constant time, hashing first so
// even the length is not leaked through timing.
func tokenEqual(got, want string) bool {
	hg, hw := sha256.Sum256([]byte(got)), sha256.Sum256([]byte(want))
	return subtle.ConstantTimeCompare(hg[:], hw[:]) == 1
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Request-ID middleware: echo (or mint) the ID on every response,
	// carry it via context through pool → flight → engine span hooks, and
	// record the completed request in the latency/outcome metrics. With
	// tracing enabled the middleware also opens the request's root span;
	// handlers hang child spans (pool acquire, flight, engine phases) off
	// it through the same context.
	rid := requestID(r)
	w.Header().Set("X-Request-ID", rid)
	ctx := obs.WithRequestID(r.Context(), rid)
	var tr *obs.Trace
	if s.recorder != nil {
		tr = obs.NewTrace(endpointLabel(r.URL.Path),
			obs.Attr{K: "request_id", V: rid},
			obs.Attr{K: "method", V: r.Method},
			obs.Attr{K: "path", V: r.URL.Path})
		w.Header().Set("X-Trace-ID", tr.ID())
		ctx = obs.ContextWithSpan(ctx, tr.Root())
	}
	r = r.WithContext(ctx)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.observe(r, status, rid, time.Since(start), tr, sw.bytes)
	}()

	if s.cfg.Token != "" && r.URL.Path != "/healthz" {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || !tokenEqual(got, s.cfg.Token) {
			sw.Header().Set("WWW-Authenticate", `Bearer realm="crcserve"`)
			// Fixed counter key: keying by request path would let
			// unauthenticated scanners grow the errors map unboundedly.
			// Deliberately not writeError: that would mark the root span
			// errored, and errored traces are always retained and pinned —
			// unauthenticated probes must not be able to fill the flight
			// recorder (or, with AccessLog, drive log volume).
			s.metrics.errors.Add("auth", 1)
			writeJSON(sw, http.StatusUnauthorized,
				ErrorResponse{Error: "missing or invalid bearer token", RequestID: rid})
			return
		}
	}
	s.mux.ServeHTTP(sw, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, endpoint string, status int, err error) {
	s.metrics.errors.Add(endpoint, 1)
	// The span keeps the specific failure; tail sampling then pins this
	// request's trace in the flight recorder (errors are always retained).
	obs.SpanFromContext(r.Context()).SetError(err.Error())
	writeJSON(w, status, ErrorResponse{Error: err.Error(), RequestID: obs.RequestID(r.Context())})
}

// statusFor maps evaluation errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, koopmancrc.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client is gone (or the server is shutting down); the status is
		// for the error counter more than for anyone still listening.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// decode reads a JSON request body, bounded and strict about unknown
// fields so typos fail loudly instead of silently using defaults.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	return s.decodeBounded(w, r, v, s.cfg.MaxBodyBytes)
}

// decodeBounded is decode with an explicit body bound, for endpoints
// (checksum batches) whose legitimate bodies exceed MaxBodyBytes.
func (s *Server) decodeBounded(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("request body exceeds the %d-byte cap: %w", mbe.Limit, err)
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// decodeStatus maps a decode failure onto its HTTP status: 413 when the
// body blew through the MaxBytesReader bound (the connection is also
// closed — the server must not drain an unbounded body), 400 otherwise.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// clampLimits resolves a request's engine budgets against the server
// ceilings: zero request fields inherit the ceiling, non-zero ones are
// capped by it.
func (s *Server) clampLimits(l *Limits) koopmancrc.Limits {
	var out koopmancrc.Limits
	if l != nil {
		out = koopmancrc.Limits{MaxProbes: l.MaxProbes, MaxStoreEntries: l.MaxStoreEntries, MaxPairBuffer: l.MaxPairBuffer}
	}
	ceil := s.cfg.Limits
	if ceil.MaxProbes > 0 && (out.MaxProbes <= 0 || out.MaxProbes > ceil.MaxProbes) {
		out.MaxProbes = ceil.MaxProbes
	}
	if ceil.MaxStoreEntries > 0 && (out.MaxStoreEntries <= 0 || out.MaxStoreEntries > ceil.MaxStoreEntries) {
		out.MaxStoreEntries = ceil.MaxStoreEntries
	}
	if ceil.MaxPairBuffer > 0 && (out.MaxPairBuffer <= 0 || out.MaxPairBuffer > ceil.MaxPairBuffer) {
		out.MaxPairBuffer = ceil.MaxPairBuffer
	}
	return out
}

// clampMaxHD applies the default and ceiling to a request max_hd.
func (s *Server) clampMaxHD(hd int) (int, error) {
	if hd == 0 {
		return s.cfg.DefaultMaxHD, nil
	}
	if hd < 2 {
		return 0, fmt.Errorf("max_hd %d: need at least 2", hd)
	}
	return min(hd, s.cfg.MaxHDCap), nil
}

// clampLen applies the ceiling to a request length/horizon.
func (s *Server) clampLen(name string, n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("%s %d: need at least 1", name, n)
	}
	return min(n, s.cfg.MaxLenCap), nil
}

// requestCtx derives the evaluation context: the client's (so a
// disconnect detaches the request) bounded by the server timeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.Timeout)
	}
	return context.WithCancel(r.Context())
}

// evaluation runs fn through the singleflight group, counting flights,
// coalesced joins and engine-level cancellations. It opens the request's
// "flight" child span: when this caller starts the flight, engine phase
// spans nest under it (the flight context inherits the span); a caller
// that joins an in-flight run gets the coalesced attribute instead.
func (s *Server) evaluation(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error) {
	fsp := obs.SpanFromContext(ctx).StartChild("flight")
	ctx = obs.ContextWithSpan(ctx, fsp)
	onJoin := func() {
		s.metrics.coalesced.Add(1)
		fsp.SetAttr("coalesced", "true")
	}
	v, err := s.flights.do(ctx, s.base, key, onJoin, func(fctx context.Context) (any, error) {
		s.metrics.flights.Add(1)
		v, err := fn(fctx)
		if err != nil && errors.Is(err, context.Canceled) {
			s.metrics.canceled.Add(1)
		}
		return v, err
	})
	if err != nil {
		fsp.SetError(err.Error())
	}
	fsp.End()
	return v, err
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/evaluate"
	s.metrics.requests.Add(ep, 1)
	var req EvaluateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, r, ep, decodeStatus(err), err)
		return
	}
	p, err := req.Polynomial()
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	maxHD, err := s.clampMaxHD(req.MaxHD)
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	maxLen, err := s.clampLen("max_len", req.MaxLen)
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	if len(req.Weights) > s.cfg.MaxWeightLens {
		s.writeError(w, r, ep, http.StatusBadRequest,
			fmt.Errorf("weights: %d lengths exceed the cap of %d", len(req.Weights), s.cfg.MaxWeightLens))
		return
	}
	// Weight lengths are clamped like every other length knob: an entry
	// beyond MaxLenCap would otherwise reach the engine's O(n) exact
	// weight scans unbounded.
	weights := make([]int, len(req.Weights))
	for i, l := range req.Weights {
		cl, err := s.clampLen("weights", l)
		if err != nil {
			s.writeError(w, r, ep, http.StatusBadRequest, err)
			return
		}
		weights[i] = cl
	}
	limits := s.clampLimits(req.Limits)
	sess, _ := s.poolGet(r.Context(), p, maxHD, limits)
	// Persist whatever the evaluation taught the session — even a failed
	// or cancelled one leaves monotone partial knowledge worth keeping.
	defer s.notePersist(sess)
	key := fmt.Sprintf("evaluate|s%d|%d|%#x|hd=%d|len=%d|lim=%+v|w=%v",
		sess.id, p.Width(), p.Koopman(), maxHD, maxLen, limits, weights)
	run := func(fctx context.Context) (any, error) {
		rep, err := sess.an.Evaluate(fctx, maxLen)
		if err != nil {
			return nil, err
		}
		wcs, err := WeightCounts(fctx, sess.an, weights)
		if err != nil {
			return nil, err
		}
		return NewEvaluateResponse(rep, maxHD, wcs), nil
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if isStream(r) {
		s.streamEvaluate(w, ctx, sess, key, run)
		return
	}
	v, err := s.evaluation(ctx, key, run)
	if err != nil {
		s.writeError(w, r, ep, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// isStream reports whether the request asked for SSE progress.
func isStream(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "", "0", "false":
		return false
	}
	return true
}

// writeSSE emits one server-sent event with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// streamEvaluate serves ?stream=1: progress ticks from the session's
// fan-out as SSE events, then the final result (or error) event. The
// evaluation itself still goes through the singleflight group, so many
// streaming clients can watch one engine run. Ticks are session-scoped,
// not flight-scoped: while this request waits its turn on the session's
// Analyzer, ticks from another query on the same polynomial may arrive —
// same poly, possibly different data_len — so progress consumers should
// treat events as "the session is working", not as a percentage of this
// request's max_len.
func (s *Server) streamEvaluate(w http.ResponseWriter, ctx context.Context, sess *session, key string, run func(context.Context) (any, error)) {
	const ep = "/v1/evaluate"
	fl, ok := w.(http.Flusher)
	if !ok {
		s.metrics.errors.Add(ep, 1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: "streaming unsupported by connection", RequestID: obs.RequestID(ctx),
		})
		return
	}
	s.metrics.streams.Add(1)
	id, ticks := sess.subscribe(64)
	defer sess.unsubscribe(id)

	type outcome struct {
		v   any
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		v, err := s.evaluation(ctx, key, run)
		resCh <- outcome{v, err}
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	progress := func(p koopmancrc.Progress) {
		writeSSE(w, "progress", ProgressEvent{
			Poly: hexStr(p.Poly.In(koopmancrc.Koopman)), Weight: p.Weight, DataLen: p.DataLen, Probes: p.Probes,
		})
	}
	// finish drains ticks queued before completion — so every progress
	// event precedes the final event deterministically — then emits the
	// result or error.
	finish := func(res outcome) {
		for {
			select {
			case p := <-ticks:
				progress(p)
				continue
			default:
			}
			break
		}
		if res.err != nil {
			s.metrics.errors.Add(ep, 1)
			// SSE errors ride inside a 200 stream; mark the root span so the
			// trace is still retained as errored.
			obs.SpanFromContext(ctx).SetError(res.err.Error())
			writeSSE(w, "error", ErrorResponse{Error: res.err.Error(), RequestID: obs.RequestID(ctx)})
		} else {
			writeSSE(w, "result", res.v)
		}
		fl.Flush()
	}

	for {
		select {
		case p := <-ticks:
			progress(p)
			fl.Flush()
		case res := <-resCh:
			finish(res)
			return
		case <-ctx.Done():
			// Client gone or server deadline; the evaluation goroutine
			// detaches from the flight on the same signal, promptly. A
			// timed-out-but-connected client still deserves the trailing
			// progress and error events (writes to a gone client fail
			// harmlessly).
			finish(<-resCh)
			return
		}
	}
}

func (s *Server) handleHD(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/hd"
	s.metrics.requests.Add(ep, 1)
	var req HDRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, r, ep, decodeStatus(err), err)
		return
	}
	p, err := req.Polynomial()
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	maxHD, err := s.clampMaxHD(req.MaxHD)
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	dataLen, err := s.clampLen("data_len", req.DataLen)
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	limits := s.clampLimits(req.Limits)
	sess, _ := s.poolGet(r.Context(), p, maxHD, limits)
	defer s.notePersist(sess)
	key := fmt.Sprintf("hd|s%d|%d|%#x|hd=%d|len=%d|lim=%+v", sess.id, p.Width(), p.Koopman(), maxHD, dataLen, limits)

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, err := s.evaluation(ctx, key, func(fctx context.Context) (any, error) {
		hd, exact, err := sess.an.HDAt(fctx, dataLen)
		if err != nil {
			return nil, err
		}
		return &HDResponse{
			Poly: hexStr(p.In(koopmancrc.Koopman)), DataLen: dataLen, HD: hd, Exact: exact,
		}, nil
	})
	if err != nil {
		s.writeError(w, r, ep, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleMaxLen(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/maxlen"
	s.metrics.requests.Add(ep, 1)
	var req MaxLenRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, r, ep, decodeStatus(err), err)
		return
	}
	p, err := req.Polynomial()
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	if req.HD < 2 {
		s.writeError(w, r, ep, http.StatusBadRequest, fmt.Errorf("hd %d: need at least 2", req.HD))
		return
	}
	horizon, err := s.clampLen("horizon", req.Horizon)
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	// The session must classify up to hd-1 to answer; derive its depth
	// from the question rather than the default.
	maxHD := min(max(req.HD, s.cfg.DefaultMaxHD), s.cfg.MaxHDCap)
	if req.HD-1 > s.cfg.MaxHDCap {
		s.writeError(w, r, ep, http.StatusBadRequest,
			fmt.Errorf("hd %d exceeds the server's classification cap of %d", req.HD, s.cfg.MaxHDCap))
		return
	}
	limits := s.clampLimits(req.Limits)
	sess, _ := s.poolGet(r.Context(), p, maxHD, limits)
	defer s.notePersist(sess)
	key := fmt.Sprintf("maxlen|s%d|%d|%#x|hd=%d|hor=%d|shd=%d|lim=%+v", sess.id, p.Width(), p.Koopman(), req.HD, horizon, maxHD, limits)

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, err := s.evaluation(ctx, key, func(fctx context.Context) (any, error) {
		maxLen, ok, err := sess.an.MaxLenAtHD(fctx, req.HD, horizon)
		if err != nil {
			return nil, err
		}
		return &MaxLenResponse{
			Poly: hexStr(p.In(koopmancrc.Koopman)), HD: req.HD, Horizon: horizon, MaxLen: maxLen, OK: ok,
		}, nil
	})
	if err != nil {
		s.writeError(w, r, ep, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/select"
	s.metrics.requests.Add(ep, 1)
	var req SelectRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, r, ep, decodeStatus(err), err)
		return
	}
	if len(req.Candidates) == 0 {
		s.writeError(w, r, ep, http.StatusBadRequest, errors.New("no candidates"))
		return
	}
	if len(req.Candidates) > s.cfg.MaxCandidates {
		s.writeError(w, r, ep, http.StatusBadRequest,
			fmt.Errorf("%d candidates exceed the cap of %d", len(req.Candidates), s.cfg.MaxCandidates))
		return
	}
	maxHD, err := s.clampMaxHD(req.MaxHD)
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	dataLen, err := s.clampLen("data_len", req.DataLen)
	if err != nil {
		s.writeError(w, r, ep, http.StatusBadRequest, err)
		return
	}
	limits := s.clampLimits(req.Limits)
	analyzers := make([]*koopmancrc.Analyzer, len(req.Candidates))
	keys := make([]string, len(req.Candidates))
	for i, ref := range req.Candidates {
		p, err := ref.Polynomial()
		if err != nil {
			s.writeError(w, r, ep, http.StatusBadRequest, fmt.Errorf("candidate %d: %w", i, err))
			return
		}
		sess, _ := s.poolGet(r.Context(), p, maxHD, limits)
		analyzers[i] = sess.an
		defer s.notePersist(sess)
		keys[i] = fmt.Sprintf("s%d:%d:%#x", sess.id, p.Width(), p.Koopman())
	}
	key := fmt.Sprintf("select|%s|hd=%d|len=%d|lim=%+v", strings.Join(keys, ","), maxHD, dataLen, limits)

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, err := s.evaluation(ctx, key, func(fctx context.Context) (any, error) {
		ranked, err := koopmancrc.SelectAnalyzers(fctx, analyzers, dataLen, koopmancrc.WithMaxHD(maxHD))
		if err != nil {
			return nil, err
		}
		resp := &SelectResponse{DataLen: dataLen}
		for _, sel := range ranked {
			resp.Ranking = append(resp.Ranking, Selection{
				Poly:         hexStr(sel.Poly.In(koopmancrc.Koopman)),
				Width:        sel.Poly.Width(),
				HD:           sel.HD,
				CoverageAtHD: sel.CoverageAtHD,
			})
		}
		return resp, nil
	})
	if err != nil {
		s.writeError(w, r, ep, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleChecksum(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/checksum"
	s.metrics.requests.Add(ep, 1)
	var req ChecksumRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, r, ep, decodeStatus(err), err)
		return
	}
	if req.Algorithm == "" {
		s.writeError(w, r, ep, http.StatusBadRequest, errors.New("missing algorithm"))
		return
	}
	params, err := crchash.Lookup(req.Algorithm)
	if err != nil {
		s.writeError(w, r, ep, http.StatusNotFound, err)
		return
	}
	data := req.Data
	if len(data) == 0 && req.Text != "" {
		data = []byte(req.Text)
	}
	engine, err := crchash.ForAlgorithm(req.Algorithm)
	if err != nil {
		s.writeError(w, r, ep, http.StatusInternalServerError, err)
		return
	}
	kernel := crchash.KindOf(engine).String()
	s.metrics.kernels.Add(kernel, 1)
	sum := engine.Checksum(data)
	writeJSON(w, http.StatusOK, &ChecksumResponse{
		Algorithm: req.Algorithm,
		Length:    len(data),
		Checksum:  sum,
		Hex:       fmt.Sprintf("0x%0*x", (params.Poly.Width()+3)/4, sum),
		Kernel:    kernel,
	})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/algorithms"
	s.metrics.requests.Add(ep, 1)
	writeJSON(w, http.StatusOK, &AlgorithmsResponse{Algorithms: crchash.Algorithms()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// wantsOpenMetrics decides whether the scrape negotiated the
// OpenMetrics exposition — the only mode that carries exemplar
// trailers, which the classic 0.0.4 parser rejects. An explicit
// ?format=openmetrics wins; otherwise the Accept header must name
// application/openmetrics-text (what Prometheus sends when configured
// to scrape exemplars).
func wantsOpenMetrics(r *http.Request) bool {
	if r.URL.Query().Get("format") == "openmetrics" {
		return true
	}
	return r.URL.Query().Get("format") == "" && obs.AcceptsOpenMetrics(r.Header.Get("Accept"))
}

// wantsPrometheus decides the /metrics format: an explicit ?format=
// parameter wins, otherwise an Accept header preferring text/plain over
// JSON selects the Prometheus text exposition. The default stays the
// historical JSON document.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// handleMetrics renders the expvar counters and the session pool's
// per-session memo costs as one JSON document — or, with
// ?format=prometheus (or an Accept header preferring text/plain), the
// obs registry in exemplar-free Prometheus 0.0.4 text exposition, or,
// with ?format=openmetrics (or Accept: application/openmetrics-text),
// the OpenMetrics exposition carrying the histogram exemplars and the
// "# EOF" terminator.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsOpenMetrics(r) {
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		if err := s.obs.registry.WriteOpenMetrics(w); err != nil {
			s.logger.Debug("metrics exposition write failed", slog.String("error", err.Error()))
		}
		return
	}
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.obs.registry.WritePrometheus(w); err != nil {
			s.logger.Debug("metrics exposition write failed", slog.String("error", err.Error()))
		}
		return
	}
	out := map[string]any{
		"requests":         json.RawMessage(s.metrics.requests.String()),
		"errors":           json.RawMessage(s.metrics.errors.String()),
		"checksum_kernels": json.RawMessage(s.metrics.kernels.String()),
		"flights":          json.RawMessage(s.metrics.flights.String()),
		"coalesced":        json.RawMessage(s.metrics.coalesced.String()),
		"canceled":         json.RawMessage(s.metrics.canceled.String()),
		"streams":          json.RawMessage(s.metrics.streams.String()),
		"batch_items":      json.RawMessage(s.metrics.batchItems.String()),
		"stream_bytes":     json.RawMessage(s.metrics.streamBytes.String()),
		"pool":             s.pool.stats(),
		"corpus":           s.corpusMetrics(),
		"auto_profile":     crchash.AutoProfile(),
	}
	writeJSON(w, http.StatusOK, out)
}

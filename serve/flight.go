package serve

import (
	"context"
	"sync"

	"koopmancrc/internal/obs"
)

// flight is one in-progress coalesced call. Waiters are counted so the
// underlying evaluation is cancelled exactly when the last interested
// client has gone, not when any single one disconnects.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

// flightGroup coalesces concurrent calls that share a key — the
// singleflight pattern, with two twists the serving layer needs: the
// work runs on a context detached from any individual caller (derived
// from base, cancelled when the waiter count reaches zero), and a caller
// whose own context dies detaches without disturbing the others.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do returns the result of fn for key, running fn at most once among
// concurrent callers. onJoin (optional) fires the moment this call
// attaches to an already-running flight — at attach, not completion, so
// the /metrics coalescing counter is observable while the flight is
// still airborne. fn's context is cancelled when every caller has gone
// or base is done.
func (g *flightGroup) do(ctx, base context.Context, key string, onJoin func(), fn func(context.Context) (any, error)) (val any, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	f, ok := g.m[key]
	if ok {
		f.waiters++
		if onJoin != nil {
			onJoin()
		}
	} else {
		// The flight runs detached from any single caller, but it carries
		// the request ID and trace span of the caller that started it, so
		// engine spans remain attributable to the request that paid for
		// the work. (Joiners keep their own IDs only in their own
		// response paths.)
		fctx, cancel := context.WithCancel(obs.ContextWithSpan(
			obs.WithRequestID(base, obs.RequestID(ctx)), obs.SpanFromContext(ctx)))
		f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
		g.m[key] = f
		go func() {
			v, err := fn(fctx)
			g.mu.Lock()
			f.val, f.err = v, err
			if g.m[key] == f {
				delete(g.m, key)
			}
			g.mu.Unlock()
			cancel()
			close(f.done)
		}()
	}
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		if last && g.m[key] == f {
			// Forget the flight so a later identical request starts
			// fresh instead of inheriting a cancelled run.
			delete(g.m, key)
		}
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, ctx.Err()
	}
}

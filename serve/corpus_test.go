package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"koopmancrc"
	"koopmancrc/internal/corpus"
	"koopmancrc/internal/dist"
)

// bakeTestCorpus bakes the two small 8-bit polynomials the serve tests
// use into a fresh corpus at dir, exactly covering smallEval's window.
func bakeTestCorpus(t *testing.T, dir string) {
	t.Helper()
	store, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("corpus.Open: %v", err)
	}
	sum, err := dist.Bake(context.Background(), dist.BakeSpec{
		Width:  8,
		Polys:  []uint64{0x83, 0x9c},
		MaxLen: smallEval.MaxLen,
		MaxHD:  smallEval.MaxHD,
	}, store, dist.BakeConfig{})
	if err != nil {
		t.Fatalf("Bake: %v", err)
	}
	if len(sum.Failed) != 0 || sum.Baked != 2 {
		t.Fatalf("bake summary: %+v", sum)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("corpus.Close: %v", err)
	}
}

// TestWarmStartServesBakedCorpus is the end-to-end satellite: bake two
// polynomials offline, start a server pointed at the corpus, and assert
// a covered /v1/evaluate answers byte-identically to a cold server while
// the session performs zero live engine probes.
func TestWarmStartServesBakedCorpus(t *testing.T) {
	dir := t.TempDir()
	bakeTestCorpus(t, dir)

	// Cold reference answer from a corpus-less server.
	_, cold := startServer(t, Config{})
	coldCode, coldBody := postJSON(t, cold.URL+"/v1/evaluate", smallEval, nil)
	if coldCode != http.StatusOK {
		t.Fatalf("cold evaluate: %d %s", coldCode, coldBody)
	}

	_, warm := startServer(t, Config{CorpusDir: dir})
	warmCode, warmBody := postJSON(t, warm.URL+"/v1/evaluate", smallEval, nil)
	if warmCode != http.StatusOK {
		t.Fatalf("warm evaluate: %d %s", warmCode, warmBody)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("warm answer differs from cold:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}

	// The second baked polynomial serves /v1/hd from the corpus too.
	var hd struct {
		HD int `json:"hd"`
	}
	hdReq := HDRequest{PolyRef: PolyRef{Poly: "0x9c", Width: 8}, DataLen: 56, MaxHD: smallEval.MaxHD}
	if code, body := postJSON(t, warm.URL+"/v1/hd", hdReq, &hd); code != http.StatusOK {
		t.Fatalf("warm hd: %d %s", code, body)
	}

	m := getMetrics(t, warm)
	if !m.Corpus.Enabled || m.Corpus.Entries != 2 {
		t.Fatalf("corpus metrics: %+v", m.Corpus)
	}
	if m.Corpus.Hits < 1 {
		t.Fatalf("expected at least one corpus hit: %+v", m.Corpus)
	}
	if m.Pool.Probes != 0 {
		t.Fatalf("warm sessions probed the engine: %+v", m.Pool)
	}
	for _, si := range m.Pool.Detail {
		if !si.Restored {
			t.Fatalf("session %s/%d not marked restored: %+v", si.Poly, si.Width, si)
		}
		if si.Probes != 0 {
			t.Fatalf("session %s/%d did %d live probes", si.Poly, si.Width, si.Probes)
		}
	}
}

// TestCorpusWriteBehindPersists exercises the write-behind path: a
// server over an empty corpus learns a polynomial from a live request
// and persists it without blocking the request, so a fresh store opened
// after shutdown holds the memo.
func TestCorpusWriteBehindPersists(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{CorpusDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv)
	closed := false
	closeAll := func() {
		if !closed {
			closed = true
			ts.Close()
			srv.Close()
		}
	}
	defer closeAll()

	if code, body := postJSON(t, ts.URL+"/v1/evaluate", smallEval, nil); code != http.StatusOK {
		t.Fatalf("evaluate: %d %s", code, body)
	}
	waitFor(t, 5*time.Second, "write-behind persist", func() bool {
		return getMetrics(t, ts).Corpus.Writes >= 1
	})
	m := getMetrics(t, ts)
	if m.Corpus.Misses < 1 || m.Corpus.Entries != 1 {
		t.Fatalf("corpus metrics after persist: %+v", m.Corpus)
	}
	closeAll() // release the journal before reopening the store

	store, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("reopen corpus: %v", err)
	}
	defer store.Close()
	p := koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0x83")
	snap, ok := store.Get(p.Width(), p.Koopman())
	if !ok {
		t.Fatal("persisted memo missing after reopen")
	}
	if snap.Probes == 0 || len(snap.Bounds) == 0 {
		t.Fatalf("persisted memo is empty: %+v", snap)
	}
}

// TestPoolEvictsCheapestSession is the cost-aware eviction regression:
// under capacity pressure the pool sacrifices the session cheapest to
// rebuild, so an expensive evaluated session outlives a cheap untouched
// one even when the cheap one is more recently used.
func TestPoolEvictsCheapestSession(t *testing.T) {
	expensive := koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0x83")
	cheap := koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0x9c")
	third := koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0xe7")

	p := newPool(2)
	var evicted []*session
	p.evicted = func(s *session) { evicted = append(evicted, s) }

	a, _ := p.get(context.Background(), expensive, 6, koopmancrc.Limits{})
	if _, err := a.an.Evaluate(context.Background(), smallEval.MaxLen); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if a.an.MemoStats().Probes == 0 {
		t.Fatal("evaluation did no probes; test premise broken")
	}
	p.get(context.Background(), cheap, 6, koopmancrc.Limits{}) // more recent than a, but zero probes

	p.get(context.Background(), third, 6, koopmancrc.Limits{}) // capacity pressure

	if len(evicted) != 1 || evicted[0].poly.Koopman() != cheap.Koopman() {
		t.Fatalf("evicted %d sessions, want exactly the cheap one: %+v", len(evicted), evicted)
	}
	for _, si := range p.stats().Detail {
		if si.Poly == "0x9c" {
			t.Fatalf("cheap session survived eviction: %+v", p.stats().Detail)
		}
	}
}

// TestRestoredSessionIsCheapToEvict pins the restoredProbes accounting:
// a corpus-restored session reports zero live probes, so under pressure
// it is evicted before a session that paid for its knowledge live —
// restoring from the corpus again is nearly free.
func TestRestoredSessionIsCheapToEvict(t *testing.T) {
	dir := t.TempDir()
	bakeTestCorpus(t, dir)
	store, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		t.Fatalf("corpus.Open: %v", err)
	}
	defer store.Close()

	live := koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0xe7")
	restored := koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0x83")
	third := koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0xcd")

	p := newPool(2)
	p.warm = func(_ context.Context, sess *session) {
		if snap, ok := store.Get(sess.poly.Width(), sess.poly.Koopman()); ok {
			if err := sess.an.RestoreMemos(context.Background(), snap); err != nil {
				t.Errorf("RestoreMemos: %v", err)
			}
		}
	}
	var evicted []*session
	p.evicted = func(s *session) { evicted = append(evicted, s) }

	a, _ := p.get(context.Background(), live, 6, koopmancrc.Limits{})
	if _, err := a.an.Evaluate(context.Background(), smallEval.MaxLen); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	p.get(context.Background(), restored, 6, koopmancrc.Limits{})
	p.get(context.Background(), third, 6, koopmancrc.Limits{})

	if len(evicted) != 1 || evicted[0].poly.Koopman() != restored.Koopman() {
		t.Fatalf("want the restored session evicted, got: %+v", evicted)
	}
}

package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"koopmancrc"
)

// sessionKey identifies an Analyzer session in the pool. Sessions are
// keyed by the full configuration that shapes their memo — polynomial,
// classification depth and engine limits — so a request only ever reuses
// knowledge computed under its own budget.
type sessionKey struct {
	width   int
	koopman uint64
	maxHD   int
	limits  koopmancrc.Limits
}

// session is one pooled Analyzer plus the progress fan-out that lets any
// number of streaming requests watch its scans. The Analyzer itself
// serializes evaluations; the session only adds subscriber plumbing.
type session struct {
	// id is unique per session instance (pool-assigned), so work keyed on
	// it never coalesces across an eviction: a request that got a fresh
	// session never joins a flight still running on the evicted one.
	id   int64
	poly koopmancrc.Polynomial
	an   *koopmancrc.Analyzer

	// restored marks a session warm-started from the corpus; queries the
	// stored knowledge covers are then answered at zero engine probes.
	restored bool
	// enqueued guards the write-behind queue: a session sits in the
	// persist channel at most once, however many evaluations note it.
	enqueued atomic.Bool
	// persisted is the memo state the persister last wrote (or the state
	// restored from the corpus), read and written only by the persister
	// and the warm-start path, so an unchanged session costs no append.
	persisted koopmancrc.MemoStats

	mu   sync.Mutex
	subs map[int]chan koopmancrc.Progress
	next int
}

func newSession(p koopmancrc.Polynomial, maxHD int, limits koopmancrc.Limits, spans func(context.Context, koopmancrc.Span)) *session {
	s := &session{poly: p, subs: make(map[int]chan koopmancrc.Progress)}
	opts := []koopmancrc.Option{
		koopmancrc.WithMaxHD(maxHD),
		koopmancrc.WithLimits(limits),
		koopmancrc.WithProgress(s.dispatch),
	}
	if spans != nil {
		opts = append(opts, koopmancrc.WithSpans(spans))
	}
	s.an = koopmancrc.NewAnalyzer(p, opts...)
	return s
}

// dispatch fans a progress tick out to every subscriber. It runs on the
// evaluating goroutine under the engine's "must not block" contract, so
// sends are non-blocking: a slow stream drops ticks rather than stalling
// the scan.
func (s *session) dispatch(p koopmancrc.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.subs {
		select {
		case ch <- p:
		default:
		}
	}
}

// subscribe registers a progress channel with the given buffer and
// returns its id for unsubscribe.
func (s *session) subscribe(buf int) (int, <-chan koopmancrc.Progress) {
	ch := make(chan koopmancrc.Progress, buf)
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	s.subs[id] = ch
	return id, ch
}

func (s *session) unsubscribe(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, id)
}

// poolEntry pairs a key with its session inside the LRU list.
type poolEntry struct {
	key  sessionKey
	sess *session
}

// pool is a bounded LRU of Analyzer sessions. An evicted session is not
// torn down — requests already holding it simply finish and let it be
// collected — the pool just stops handing it to new requests.
type pool struct {
	// spans, when non-nil, is installed as the span hook of every session
	// the pool creates, fanning engine phase telemetry into the server's
	// per-phase histograms. Set before the first get.
	spans func(context.Context, koopmancrc.Span)
	// warm, when non-nil, hydrates a freshly created session from the
	// persistent corpus before its first request runs. It is called under
	// the pool lock (restores into a fresh analyzer never contend), so a
	// burst of first requests for one polynomial warm-starts exactly
	// once. The context carries the creating request's trace span.
	warm func(context.Context, *session)
	// evicted, when non-nil, receives each session the pool stops handing
	// out, so the server can persist knowledge the write-behind queue has
	// not flushed yet.
	evicted func(*session)

	mu        sync.Mutex
	cap       int
	seq       int64      // session id generator
	order     *list.List // of *poolEntry; front = most recently used
	byKey     map[sessionKey]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

func newPool(capacity int) *pool {
	return &pool{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[sessionKey]*list.Element),
	}
}

// get returns the session for the key, creating (and, at capacity,
// evicting the least recently used) as needed. hit reports whether the
// session already existed — a warm session answers repeat queries from
// its memo with zero engine probes.
func (p *pool) get(ctx context.Context, poly koopmancrc.Polynomial, maxHD int, limits koopmancrc.Limits) (sess *session, hit bool) {
	key := sessionKey{width: poly.Width(), koopman: poly.Koopman(), maxHD: maxHD, limits: limits}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		p.order.MoveToFront(el)
		p.hits++
		return el.Value.(*poolEntry).sess, true
	}
	p.misses++
	for p.order.Len() >= p.cap {
		victim := p.cheapestLocked()
		e := victim.Value.(*poolEntry)
		p.order.Remove(victim)
		delete(p.byKey, e.key)
		p.evictions++
		if p.evicted != nil {
			p.evicted(e.sess)
		}
	}
	sess = newSession(poly, maxHD, limits, p.spans)
	p.seq++
	sess.id = p.seq
	if p.warm != nil {
		p.warm(ctx, sess)
	}
	p.byKey[key] = p.order.PushFront(&poolEntry{key: key, sess: sess})
	return sess, false
}

// cheapestLocked picks the eviction victim: the session cheapest to
// rebuild, measured by the live engine probes its memo cost
// (MemoStats.Probes ≈ rebuild cost — and a corpus-restored session
// counts only the probes spent beyond its snapshot, since the snapshot
// part rebuilds for free). Ties — common when several sessions have
// done no live work — fall to the least recently used, scanning from
// the back so recency still breaks cost ties.
func (p *pool) cheapestLocked() *list.Element {
	victim := p.order.Back()
	minProbes := victim.Value.(*poolEntry).sess.an.MemoStats().Probes
	for el := victim.Prev(); el != nil; el = el.Prev() {
		if probes := el.Value.(*poolEntry).sess.an.MemoStats().Probes; probes < minProbes {
			victim, minProbes = el, probes
		}
	}
	return victim
}

// counts returns the pool's scalar gauges without building the full
// per-session stats document.
func (p *pool) counts() (sessions int, hits, misses, evictions int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len(), p.hits, p.misses, p.evictions
}

// PoolStats aggregates the pool's live state for /metrics.
type PoolStats struct {
	Capacity    int           `json:"capacity"`
	Sessions    int           `json:"sessions"`
	Hits        int64         `json:"hits"`
	Misses      int64         `json:"misses"`
	Evictions   int64         `json:"evictions"`
	Probes      int64         `json:"probes"`       // engine probes across live sessions
	MemoEntries int           `json:"memo_entries"` // boundary + weight memo entries across live sessions
	Detail      []SessionInfo `json:"sessions_detail"`
}

// SessionInfo reports one live session's identity and memoized cost, the
// per-session view the eviction policy and capacity planning read.
type SessionInfo struct {
	Poly            string `json:"poly"`
	Width           int    `json:"width"`
	MaxHD           int    `json:"max_hd"`
	BoundWeights    int    `json:"bound_weights"`
	ExactBoundaries int    `json:"exact_boundaries"`
	WeightEntries   int    `json:"weight_entries"`
	Probes          int64  `json:"probes"`
	// Restored marks a session warm-started from the persistent corpus.
	Restored bool `json:"restored,omitempty"`
}

// stats snapshots the pool, most recently used session first. Session
// memo numbers come from Analyzer.MemoStats, which never waits behind an
// in-flight evaluation.
func (p *pool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Capacity:  p.cap,
		Sessions:  p.order.Len(),
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
	}
	for el := p.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*poolEntry)
		m := e.sess.an.MemoStats()
		st.Probes += m.Probes
		st.MemoEntries += m.BoundWeights + m.WeightEntries
		st.Detail = append(st.Detail, SessionInfo{
			Poly:            hexStr(e.sess.poly.In(koopmancrc.Koopman)),
			Width:           e.key.width,
			MaxHD:           e.key.maxHD,
			BoundWeights:    m.BoundWeights,
			ExactBoundaries: m.ExactBoundaries,
			WeightEntries:   m.WeightEntries,
			Probes:          m.Probes,
			Restored:        e.sess.restored,
		})
	}
	return st
}

package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"koopmancrc"
)

func TestPoolKeysAndLRU(t *testing.T) {
	p := newPool(2)
	atm := koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0x83")
	darc := koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0x9c")

	s1, hit := p.get(context.Background(), atm, 6, koopmancrc.Limits{})
	if hit {
		t.Fatal("first get reported a hit")
	}
	if s2, hit := p.get(context.Background(), atm, 6, koopmancrc.Limits{}); !hit || s2 != s1 {
		t.Fatal("same key did not return the same session")
	}
	if s3, hit := p.get(context.Background(), atm, 8, koopmancrc.Limits{}); hit || s3 == s1 {
		t.Fatal("different max_hd shared a session")
	}
	if _, hit := p.get(context.Background(), atm, 6, koopmancrc.Limits{MaxProbes: 10}); hit {
		t.Fatal("different limits shared a session")
	}
	// Capacity 2: the MaxProbes get above evicted one entry; atm/6 was
	// least recently used at that point, so it must rebuild now.
	st := p.stats()
	if st.Sessions != 2 || st.Evictions != 1 {
		t.Fatalf("pool state: %+v", st)
	}
	if _, hit := p.get(context.Background(), darc, 6, koopmancrc.Limits{}); hit {
		t.Fatal("new polynomial hit")
	}
	if p.stats().Evictions != 2 {
		t.Fatalf("eviction count: %+v", p.stats())
	}
}

func TestSessionFanout(t *testing.T) {
	sess := newSession(koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0x83"), 6, koopmancrc.Limits{}, nil)
	id1, ch1 := sess.subscribe(8)
	_, ch2 := sess.subscribe(8)
	if _, err := sess.an.Evaluate(context.Background(), 64); err != nil {
		t.Fatal(err)
	}
	if len(ch1) == 0 || len(ch2) == 0 {
		t.Fatalf("subscribers got %d/%d ticks", len(ch1), len(ch2))
	}
	sess.unsubscribe(id1)
	drain := len(ch2)
	if _, err := sess.an.Evaluate(context.Background(), 64); err != nil { // warm: no ticks
		t.Fatal(err)
	}
	if len(ch2) != drain {
		t.Fatal("warm evaluation emitted progress")
	}
}

func TestFlightCoalesceAndRefcountCancel(t *testing.T) {
	var g flightGroup
	base := context.Background()
	release := make(chan struct{})
	var runs, joins int
	var mu sync.Mutex

	started := make(chan struct{}, 2)
	fn := func(fctx context.Context) (any, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		started <- struct{}{}
		select {
		case <-release:
			return "done", nil
		case <-fctx.Done():
			return nil, fctx.Err()
		}
	}
	onJoin := func() { mu.Lock(); joins++; mu.Unlock() }

	var wg sync.WaitGroup
	results := make([]any, 2)
	errs := make([]error, 2)
	ctxB, cancelB := context.WithCancel(base)
	defer cancelB()
	wg.Add(2)
	go func() { defer wg.Done(); results[0], errs[0] = g.do(base, base, "k", onJoin, fn) }()
	<-started // A's fn is running before B arrives
	go func() { defer wg.Done(); results[1], errs[1] = g.do(ctxB, base, "k", onJoin, fn) }()

	// Wait until B has joined, then release the flight.
	waitFor(t, 5e9, "join", func() bool { mu.Lock(); defer mu.Unlock(); return joins == 1 })
	close(release)
	wg.Wait()
	if runs != 1 {
		t.Fatalf("fn ran %d times", runs)
	}
	for i := range results {
		if errs[i] != nil || results[i] != "done" {
			t.Fatalf("caller %d: %v, %v", i, results[i], errs[i])
		}
	}

	// Refcounted cancellation: the flight context dies only when the
	// last waiter leaves.
	ctx1, cancel1 := context.WithCancel(base)
	ctx2, cancel2 := context.WithCancel(base)
	fnCtx := make(chan context.Context, 1)
	blocked := func(fctx context.Context) (any, error) {
		fnCtx <- fctx
		<-fctx.Done()
		return nil, fctx.Err()
	}
	done1 := make(chan error, 1)
	done2 := make(chan error, 1)
	go func() { _, err := g.do(ctx1, base, "k2", nil, blocked); done1 <- err }()
	fc := <-fnCtx
	waitFor(t, 5e9, "second waiter attach", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		f := g.m["k2"]
		return f != nil && f.waiters >= 1
	})
	go func() { _, err := g.do(ctx2, base, "k2", nil, blocked); done2 <- err }()
	waitFor(t, 5e9, "two waiters", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		f := g.m["k2"]
		return f != nil && f.waiters == 2
	})

	cancel1()
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter 1: %v", err)
	}
	if fc.Err() != nil {
		t.Fatal("flight cancelled while a waiter remained")
	}
	cancel2()
	if err := <-done2; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter 2: %v", err)
	}
	waitFor(t, 5e9, "flight cancellation", func() bool { return fc.Err() != nil })
}

package serve

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"koopmancrc"
	"koopmancrc/internal/obs"
)

// serverObs bundles the server's obs-based instrumentation: per-endpoint
// request latency and outcome counters, per-phase engine histograms, and
// gauge views over the expvar counters and the session pool. It is the
// Prometheus-format sibling of the expvar metrics struct — the JSON
// /metrics document is untouched, this adds the exposition the ROADMAP's
// fleet tooling scrapes.
type serverObs struct {
	registry *obs.Registry

	reqSeconds *obs.HistogramVec // request wall time by endpoint
	requests   *obs.CounterVec   // completions by endpoint and status code

	phaseSeconds *obs.HistogramVec // engine phase wall time by phase
	phaseProbes  *obs.HistogramVec // engine phase work ops by phase

	batchItems  *obs.Histogram // items per checksum batch
	batchBytes  *obs.Histogram // total decoded payload bytes per checksum batch
	streamBytes *obs.Histogram // body bytes per completed checksum stream

	corpusLoad *obs.Histogram // corpus lookup+restore wall time per new session
}

func newServerObs(s *Server) *serverObs {
	r := obs.NewRegistry()
	o := &serverObs{
		registry: r,
		reqSeconds: r.NewHistogramVec("crcserve_request_duration_seconds",
			"Request wall time by endpoint.", obs.LatencyBuckets(), "endpoint"),
		requests: r.NewCounterVec("crcserve_requests_total",
			"Completed requests by endpoint and HTTP status code.", "endpoint", "code"),
		phaseSeconds: r.NewHistogramVec("crcserve_engine_phase_seconds",
			"Engine probe-phase wall time (boundary, w3_scan, w4_scan, mitm_store, mitm_probe, w2..w4_count).",
			obs.LatencyBuckets(), "phase"),
		phaseProbes: r.NewHistogramVec("crcserve_engine_phase_probes",
			"Engine probe-phase work operations (probes + store inserts).",
			obs.WorkBuckets(), "phase"),
		batchItems: r.NewHistogram("crcserve_checksum_batch_items",
			"Items per /v1/checksum/batch request.", obs.WorkBuckets()),
		batchBytes: r.NewHistogram("crcserve_checksum_batch_bytes",
			"Total decoded payload bytes per /v1/checksum/batch request.", obs.WorkBuckets()),
		streamBytes: r.NewHistogram("crcserve_checksum_stream_bytes",
			"Body bytes digested per completed /v1/checksum/stream request.", obs.WorkBuckets()),
		corpusLoad: r.NewHistogram("crcserve_corpus_load_seconds",
			"Corpus lookup plus memo restore wall time per new session (hits and misses).",
			obs.LatencyBuckets()),
	}
	r.NewGaugeFunc("crcserve_flights",
		"Evaluations actually started on an engine.", func() float64 { return float64(s.metrics.flights.Value()) })
	r.NewGaugeFunc("crcserve_coalesced_requests",
		"Requests that joined an in-flight identical evaluation.", func() float64 { return float64(s.metrics.coalesced.Value()) })
	r.NewGaugeFunc("crcserve_canceled_evaluations",
		"Evaluations aborted via the engine's cancel hook.", func() float64 { return float64(s.metrics.canceled.Value()) })
	r.NewGaugeFunc("crcserve_streams",
		"SSE streams served.", func() float64 { return float64(s.metrics.streams.Value()) })
	r.NewGaugeFunc("crcserve_pool_sessions",
		"Live Analyzer sessions in the pool.", func() float64 { n, _, _, _ := s.pool.counts(); return float64(n) })
	r.NewGaugeFunc("crcserve_pool_hits",
		"Session pool hits.", func() float64 { _, h, _, _ := s.pool.counts(); return float64(h) })
	r.NewGaugeFunc("crcserve_pool_misses",
		"Session pool misses.", func() float64 { _, _, m, _ := s.pool.counts(); return float64(m) })
	r.NewGaugeFunc("crcserve_pool_evictions",
		"Session pool evictions.", func() float64 { _, _, _, e := s.pool.counts(); return float64(e) })
	r.NewGaugeCollector("crcserve_pool_session_probes",
		"Engine probes spent by each live session.", []string{"poly", "width", "max_hd"},
		func(emit func([]string, float64)) {
			for _, si := range s.pool.stats().Detail {
				emit([]string{si.Poly, strconv.Itoa(si.Width), strconv.Itoa(si.MaxHD)}, float64(si.Probes))
			}
		})
	if s.corpus != nil {
		r.NewGaugeFunc("crcserve_corpus_hits",
			"Sessions warm-started from the persistent corpus.", func() float64 { return float64(s.metrics.corpusHits.Value()) })
		r.NewGaugeFunc("crcserve_corpus_misses",
			"Sessions created with no stored corpus knowledge.", func() float64 { return float64(s.metrics.corpusMisses.Value()) })
		r.NewGaugeFunc("crcserve_corpus_writes",
			"Memo snapshots persisted to the corpus write-behind.", func() float64 { return float64(s.metrics.corpusWrites.Value()) })
		r.NewGaugeFunc("crcserve_corpus_write_errors",
			"Corpus persistence attempts that failed.", func() float64 { return float64(s.metrics.corpusWriteErrs.Value()) })
		r.NewGaugeFunc("crcserve_corpus_entries",
			"Polynomials with stored knowledge in the corpus.", func() float64 { return float64(s.corpus.Stats().Entries) })
		r.NewGaugeFunc("crcserve_corpus_bytes",
			"Approximate serialized bytes of the corpus entries.", func() float64 { return float64(s.corpus.Stats().Bytes) })
	}
	return o
}

// endpointLabel bounds the endpoint label cardinality to the mux's known
// paths; anything else (404 probes, scanners) collapses to "other". It
// also names request traces' root spans, so trace filtering by endpoint
// shares the metrics' cardinality bound.
func endpointLabel(path string) string {
	switch path {
	case "/v1/evaluate", "/v1/hd", "/v1/maxlen", "/v1/select",
		"/v1/checksum", "/v1/checksum/batch", "/v1/checksum/stream",
		"/v1/algorithms", "/v1/traces", "/healthz", "/metrics":
		return path
	}
	if strings.HasPrefix(path, "/v1/traces/") {
		return "/v1/traces/{id}"
	}
	return "other"
}

// statusWriter captures the response status and body byte count for the
// request metrics and the access log. Flush is forwarded so SSE
// streaming still works through the wrapper (streamEvaluate type-asserts
// http.Flusher).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID extracts a usable client-supplied request ID, or mints one.
// Client values are length-capped and restricted to printable ASCII so
// hostile IDs cannot smuggle header/log structure.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > 64 {
		return obs.NewRequestID()
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return obs.NewRequestID()
		}
	}
	return id
}

// observe records a completed request in the histograms, counters, the
// flight recorder and the structured log. When the trace is retained the
// latency observation carries an exemplar pointing at its trace ID, so a
// slow histogram bucket on a dashboard links to a resolvable span tree.
func (s *Server) observe(r *http.Request, status int, rid string, elapsed time.Duration, tr *obs.Trace, bytes int64) {
	ep := endpointLabel(r.URL.Path)
	kept := false
	traceID := ""
	if tr != nil {
		traceID = tr.ID()
		root := tr.Root()
		if status >= 500 {
			// writeError marks spans with the real message; this is the
			// fallback for server-error paths that bypass it. Client
			// errors are deliberately excluded: an errored trace is
			// always retained and pinned, and unauthenticated 401/404
			// probes (scanners walking random paths) must not be able to
			// fill the flight recorder with unevictable traces or make
			// the access log attacker-controlled. Real request errors on
			// known endpoints (bad poly, budget exceeded) still pin via
			// writeError's explicit SetError.
			root.SetError("HTTP " + statusLabel(status))
		}
		root.SetAttr("status", statusLabel(status))
		root.End()
		if s.recorder != nil {
			kept, _ = s.recorder.RecordTrace(tr)
		}
	}
	if kept {
		s.obs.reqSeconds.With(ep).ObserveExemplar(elapsed.Seconds(), traceID)
	} else {
		s.obs.reqSeconds.With(ep).Observe(elapsed.Seconds())
	}
	s.obs.requests.With(ep, statusLabel(status)).Inc()
	// The access log rides the tail-sampling decision: under load only
	// retained (errored / slowest-K / sampled) requests produce a line,
	// so log volume tracks the flight recorder's budget. With tracing
	// disabled every request is logged.
	if s.cfg.AccessLog && (s.recorder == nil || kept) {
		s.logger.Info("access",
			slog.String("method", r.Method),
			slog.String("endpoint", ep),
			slog.Int("status", status),
			slog.Duration("elapsed", elapsed),
			slog.Int64("bytes", bytes),
			slog.String("request_id", rid),
			slog.String("trace_id", traceID),
			slog.Bool("sampled", kept),
		)
	}
	// Building slog attrs boxes each one even when debug logging is off;
	// the explicit Enabled gate keeps the disabled-path cost at a few
	// nanoseconds so per-request instrumentation stays under its budget.
	if !s.logger.Enabled(r.Context(), slog.LevelDebug) {
		return
	}
	s.logger.Debug("request",
		slog.String("request_id", rid),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("elapsed", elapsed),
	)
}

// observeSpan is the session pool's span sink: every engine phase of
// every evaluation lands in the per-phase histograms and, at debug
// level, the structured log with the request ID of the caller that paid
// for the work.
func (s *Server) observeSpan(ctx context.Context, sp koopmancrc.Span) {
	s.obs.phaseSeconds.With(sp.Phase).Observe(sp.Duration.Seconds())
	s.obs.phaseProbes.With(sp.Phase).Observe(float64(sp.Probes))
	// Engine phases complete before the hook fires, so they attach to the
	// request trace as backdated leaf spans rather than open children.
	obs.SpanFromContext(ctx).AddLeaf("engine."+sp.Phase, sp.Duration,
		obs.Attr{K: "poly", V: hexStr(sp.Poly.In(koopmancrc.Koopman))},
		obs.Attr{K: "weight", V: strconv.Itoa(sp.Weight)},
		obs.Attr{K: "data_len", V: strconv.Itoa(sp.DataLen)},
		obs.Attr{K: "probes", V: strconv.FormatInt(sp.Probes, 10)},
	)
	if !s.logger.Enabled(ctx, slog.LevelDebug) {
		return
	}
	s.logger.Debug("engine_phase",
		slog.String("request_id", obs.RequestID(ctx)),
		slog.String("poly", hexStr(sp.Poly.In(koopmancrc.Koopman))),
		slog.String("phase", sp.Phase),
		slog.Int("weight", sp.Weight),
		slog.Int("data_len", sp.DataLen),
		slog.Duration("elapsed", sp.Duration),
		slog.Int64("probes", sp.Probes),
	)
}

// Registry exposes the server's obs registry so the embedding binary can
// register process-level metrics (e.g. crcserve's auto-profile drift
// histogram) onto the same /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.obs.registry }

// statusLabel formats an HTTP status for the code label without
// allocating for the codes a healthy server actually returns.
func statusLabel(status int) string {
	switch status {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusUnauthorized:
		return "401"
	case http.StatusNotFound:
		return "404"
	case http.StatusMethodNotAllowed:
		return "405"
	case http.StatusRequestEntityTooLarge:
		return "413"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusGatewayTimeout:
		return "504"
	}
	return strconv.Itoa(status)
}

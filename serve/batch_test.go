package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"koopmancrc/crchash"
)

func TestChecksumBatchMixed(t *testing.T) {
	_, ts := startServer(t, Config{})
	req := ChecksumBatchRequest{Items: []ChecksumRequest{
		{Algorithm: "CRC-32/IEEE-802.3", Text: "123456789"},
		{Algorithm: "CRC-32C/iSCSI", Text: "123456789"},
		{Algorithm: "CRC-32/NO-SUCH", Text: "x"},
		{Text: "missing algorithm"},
		{Algorithm: "CRC-32C/iSCSI", Data: []byte("123456789")},
	}}
	var resp ChecksumBatchResponse
	status, body := postJSON(t, ts.URL+"/v1/checksum/batch", req, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if resp.Count != 5 || resp.Failed != 2 || len(resp.Items) != 5 {
		t.Fatalf("count/failed/items = %d/%d/%d, want 5/2/5", resp.Count, resp.Failed, len(resp.Items))
	}
	wantHex := []string{"0xcbf43926", "0xe3069283", "", "", "0xe3069283"}
	for i, want := range wantHex {
		item := resp.Items[i]
		if want == "" {
			if item.Error == "" {
				t.Errorf("item %d: expected an error slot, got %+v", i, item)
			}
			continue
		}
		if item.Error != "" {
			t.Errorf("item %d: unexpected error %q", i, item.Error)
		}
		if item.Hex != want {
			t.Errorf("item %d: hex %q, want %q", i, item.Hex, want)
		}
		if item.Kernel == "" || item.Length != 9 {
			t.Errorf("item %d: kernel %q length %d", i, item.Kernel, item.Length)
		}
	}
	if m := getMetrics(t, ts); m.BatchItems != 5 {
		t.Errorf("batch_items metric = %d, want 5", m.BatchItems)
	}
}

func TestChecksumBatchPerItemOverlong(t *testing.T) {
	_, ts := startServer(t, Config{MaxBodyBytes: 16})
	req := ChecksumBatchRequest{Items: []ChecksumRequest{
		{Algorithm: "CRC-32C/iSCSI", Text: "123456789"},
		{Algorithm: "CRC-32C/iSCSI", Text: strings.Repeat("a", 64)},
	}}
	var resp ChecksumBatchResponse
	status, body := postJSON(t, ts.URL+"/v1/checksum/batch", req, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if resp.Failed != 1 {
		t.Fatalf("failed = %d, want 1 (items %+v)", resp.Failed, resp.Items)
	}
	if resp.Items[0].Hex != "0xe3069283" {
		t.Errorf("item 0 hex %q", resp.Items[0].Hex)
	}
	if !strings.Contains(resp.Items[1].Error, "per-item cap") {
		t.Errorf("item 1 error %q does not name the per-item cap", resp.Items[1].Error)
	}
}

func TestChecksumBatchClamps(t *testing.T) {
	t.Run("too many items", func(t *testing.T) {
		_, ts := startServer(t, Config{MaxBatchItems: 2})
		req := ChecksumBatchRequest{Items: []ChecksumRequest{
			{Algorithm: "CRC-32C/iSCSI", Text: "a"},
			{Algorithm: "CRC-32C/iSCSI", Text: "b"},
			{Algorithm: "CRC-32C/iSCSI", Text: "c"},
		}}
		status, body := postJSON(t, ts.URL+"/v1/checksum/batch", req, nil)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422: %s", status, body)
		}
		assertErrorBody(t, body)
	})
	t.Run("too many total bytes", func(t *testing.T) {
		_, ts := startServer(t, Config{MaxBatchBytes: 64})
		req := ChecksumBatchRequest{Items: []ChecksumRequest{
			{Algorithm: "CRC-32C/iSCSI", Text: strings.Repeat("a", 48)},
			{Algorithm: "CRC-32C/iSCSI", Text: strings.Repeat("b", 48)},
		}}
		status, body := postJSON(t, ts.URL+"/v1/checksum/batch", req, nil)
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413: %s", status, body)
		}
		assertErrorBody(t, body)
	})
	t.Run("empty batch", func(t *testing.T) {
		_, ts := startServer(t, Config{})
		status, body := postJSON(t, ts.URL+"/v1/checksum/batch", ChecksumBatchRequest{}, nil)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", status, body)
		}
	})
}

// assertErrorBody checks a non-2xx JSON reply carries an error message
// and the request ID that locates it in the server's logs.
func assertErrorBody(t *testing.T, body []byte) {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body %s: %v", body, err)
	}
	if er.Error == "" || er.RequestID == "" {
		t.Fatalf("error body %s missing error or request_id", body)
	}
}

// streamPayload builds a deterministic pseudorandom payload.
func streamPayload(n int) []byte {
	data := make([]byte, n)
	seed := uint64(0x9E3779B97F4A7C15)
	for i := range data {
		seed = seed*6364136223846793005 + 1442695040888963407
		data[i] = byte(seed >> 48)
	}
	return data
}

func TestChecksumStreamDigest(t *testing.T) {
	_, ts := startServer(t, Config{})
	data := streamPayload(3 << 20)
	const algorithm = "CRC-32K/Koopman"
	want, err := crchash.Checksum(algorithm, data)
	if err != nil {
		t.Fatal(err)
	}

	// Algorithm via header on this request; the query-parameter spelling
	// is covered by the client tests.
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/checksum/stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	hreq.Header.Set(StreamAlgorithmHeader, algorithm)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ChecksumResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Checksum != want {
		t.Errorf("checksum %#x, want %#x", out.Checksum, want)
	}
	if out.Length != len(data) || out.Kernel == "" || out.Algorithm != algorithm {
		t.Errorf("response %+v", out)
	}
	if m := getMetrics(t, ts); m.StreamBytes != int64(len(data)) {
		t.Errorf("stream_bytes metric = %d, want %d", m.StreamBytes, len(data))
	}
}

func TestChecksumStreamLimit(t *testing.T) {
	_, ts := startServer(t, Config{MaxStreamBytes: 1024})
	resp, err := http.Post(ts.URL+"/v1/checksum/stream?algorithm=CRC-32C/iSCSI",
		"application/octet-stream", bytes.NewReader(make([]byte, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
	assertErrorBody(t, body)
}

func TestChecksumStreamBadAlgorithm(t *testing.T) {
	_, ts := startServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/checksum/stream", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing algorithm: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/checksum/stream?algorithm=CRC-32/NO-SUCH",
		"application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown algorithm: status %d, want 404", resp.StatusCode)
	}
}

// TestChecksumStreamCancelMidBody proves a client disconnect mid-body
// stops the server's read loop: the digest is abandoned and the request
// lands in the stream endpoint's error counter instead of hanging until
// the body would have completed.
func TestChecksumStreamCancelMidBody(t *testing.T) {
	srv, ts := startServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pr, pw := io.Pipe()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/checksum/stream?algorithm=CRC-32C/iSCSI", pr)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")

	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(hreq)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	// Feed the handler a first chunk so it is demonstrably mid-body,
	// then kill the request.
	chunk := make([]byte, 32<<10)
	if _, err := pw.Write(chunk); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Fail the body before waiting on Do: the transport's write loop may
	// be blocked mid-pipe-read, and Do does not return until that loop
	// exits — waiting first would deadlock the test against itself.
	pw.CloseWithError(errors.New("test: client abandoned body"))
	if err := <-errCh; err == nil {
		t.Fatal("request succeeded despite cancellation")
	}

	// The handler notices between chunks; poll until its error is
	// accounted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if srv.metrics.errors.Get("/v1/checksum/stream") != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream handler never recorded the abandoned request")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m := getMetrics(t, ts); m.StreamBytes != 0 {
		t.Errorf("abandoned stream still counted %d digested bytes", m.StreamBytes)
	}
}

func TestJSONBodyLimit413(t *testing.T) {
	_, ts := startServer(t, Config{MaxBodyBytes: 64})
	for _, ep := range []string{"/v1/evaluate", "/v1/hd", "/v1/maxlen", "/v1/select", "/v1/checksum"} {
		big := fmt.Sprintf(`{"poly":"0x%s"}`, strings.Repeat("a", 4096))
		resp, err := http.Post(ts.URL+ep, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413: %s", ep, resp.StatusCode, body)
		}
		assertErrorBody(t, body)
	}
}

// zeroReader yields n zero bytes without allocating, so request-body
// size can scale without the test itself allocating proportionally.
type zeroReader struct{ n int64 }

func (z *zeroReader) Read(p []byte) (int, error) {
	if z.n <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > z.n {
		p = p[:z.n]
	}
	for i := range p {
		p[i] = 0
	}
	z.n -= int64(len(p))
	return len(p), nil
}

// TestStreamConstantBuffering pins the O(1)-buffering contract of the
// stream handler: digesting a 64 MiB body must allocate about as little
// as digesting 1 MiB — nothing proportional to the body may ever be
// held. A regression to read-then-hash (io.ReadAll and friends) blows
// the ceiling by an order of magnitude immediately.
func TestStreamConstantBuffering(t *testing.T) {
	srv, err := New(Config{MaxStreamBytes: 1 << 30})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	run := func(n int64) string {
		req := httptest.NewRequest(http.MethodPost, "/v1/checksum/stream?algorithm=CRC-32C/iSCSI", &zeroReader{n: n})
		req.Header.Set("Content-Type", "application/octet-stream")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
		var out ChecksumResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out.Hex
	}
	// Warm everything once: engine construction, the measured
	// auto-profile, the pooled copy buffer.
	run(1 << 20)

	allocBytes := func(n int64) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		run(n)
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	small := allocBytes(1 << 20)
	big := allocBytes(64 << 20)
	t.Logf("allocated: 1 MiB body -> %d B, 64 MiB body -> %d B", small, big)
	if big > 2<<20 {
		t.Errorf("64 MiB stream allocated %d bytes; the handler must buffer O(1), not the body", big)
	}

	want, err := crchash.Checksum("CRC-32C/iSCSI", make([]byte, 64<<20))
	if err != nil {
		t.Fatal(err)
	}
	if got := run(64 << 20); got != fmt.Sprintf("0x%08x", want) {
		t.Errorf("64 MiB digest %s, want 0x%08x", got, want)
	}
}

package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"koopmancrc"
	"koopmancrc/internal/obs"
)

// The trace wire types are the obs types verbatim: the recorder already
// snapshots immutable JSON-tagged data, so re-marshalling through a
// serve-local mirror would only invite drift.
type (
	// TraceSummary is one flight-recorder entry in /v1/traces listings.
	TraceSummary = obs.TraceSummary
	// TraceData is the full span tree served at /v1/traces/{id}.
	TraceData = obs.TraceData
	// SpanData is one node of a TraceData span tree.
	SpanData = obs.SpanData
)

// TracesResponse is the body of GET /v1/traces.
type TracesResponse struct {
	Count  int            `json:"count"`
	Traces []TraceSummary `json:"traces"`
}

// poolGet wraps pool.get with a "pool.acquire" child span on the
// request's trace, so session creation cost (including a corpus
// warm-start) is attributable inside the span tree.
func (s *Server) poolGet(ctx context.Context, p koopmancrc.Polynomial, maxHD int, limits koopmancrc.Limits) (*session, bool) {
	sp := obs.SpanFromContext(ctx).StartChild("pool.acquire")
	sp.SetAttr("poly", hexStr(p.In(koopmancrc.Koopman)))
	sess, hit := s.pool.get(obs.ContextWithSpan(ctx, sp), p, maxHD, limits)
	sp.SetAttr("hit", strconv.FormatBool(hit))
	sp.End()
	return sess, hit
}

// handleTraces lists retained traces, newest first. Filters: endpoint
// (exact root-span name), min_duration (Go duration string), error
// (true → errored only), limit (default 100).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/traces"
	if s.recorder == nil {
		s.writeError(w, r, endpoint, http.StatusNotFound, errors.New("tracing disabled"))
		return
	}
	q := r.URL.Query()
	f := obs.TraceFilter{
		Name:  q.Get("endpoint"),
		Limit: 100,
	}
	if v := q.Get("min_duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			s.writeError(w, r, endpoint, http.StatusBadRequest, errors.New("min_duration: "+err.Error()))
			return
		}
		f.MinDuration = d
	}
	if v := q.Get("error"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			s.writeError(w, r, endpoint, http.StatusBadRequest, errors.New("error: "+err.Error()))
			return
		}
		f.ErrorsOnly = b
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeError(w, r, endpoint, http.StatusBadRequest, errors.New("limit must be a positive integer"))
			return
		}
		f.Limit = n
	}
	traces := s.recorder.Summaries(f)
	writeJSON(w, http.StatusOK, &TracesResponse{Count: len(traces), Traces: traces})
}

// handleTrace serves one retained trace's full span tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/traces/{id}"
	if s.recorder == nil {
		s.writeError(w, r, endpoint, http.StatusNotFound, errors.New("tracing disabled"))
		return
	}
	td, ok := s.recorder.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, endpoint, http.StatusNotFound, errors.New("trace not found (evicted or never retained)"))
		return
	}
	writeJSON(w, http.StatusOK, td)
}

package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"koopmancrc/internal/obs"
)

// TestRequestIDEchoAndMint pins the X-Request-ID contract: a sane
// client-supplied ID is echoed, a missing or hostile one is replaced,
// and error bodies repeat the ID.
func TestRequestIDEchoAndMint(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "client-id-42")
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "client-id-42" {
		t.Errorf("echo: X-Request-ID = %q, want client-id-42", got)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	minted := rec.Header().Get("X-Request-ID")
	if len(minted) != 16 {
		t.Errorf("mint: X-Request-ID = %q, want 16 hex chars", minted)
	}

	for _, hostile := range []string{"a\nb", "id with space", strings.Repeat("x", 65)} {
		rec = httptest.NewRecorder()
		req = httptest.NewRequest("GET", "/healthz", nil)
		req.Header.Set("X-Request-ID", hostile)
		s.ServeHTTP(rec, req)
		if got := rec.Header().Get("X-Request-ID"); got == hostile {
			t.Errorf("hostile ID %q echoed verbatim", hostile)
		}
	}

	// Error bodies carry the request ID.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/v1/hd", strings.NewReader(`{"poly":"not-a-poly"}`))
	req.Header.Set("X-Request-ID", "err-req-1")
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID != "err-req-1" {
		t.Errorf("error body request_id = %q, want err-req-1", er.RequestID)
	}
}

// TestMetricsPrometheusFormat drives a real evaluation through the
// server and checks the Prometheus exposition contains the latency and
// engine-phase series the acceptance criteria name, validated by the
// pure-Go format checker.
func TestMetricsPrometheusFormat(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	// 32-bit 802.3 at a short length: w3/w4 scans run and find nothing
	// within 128 bits, so the w>=5 boundary searches (and their nested
	// meet-in-the-middle store/probe phases) also run — every span phase
	// fires, all in milliseconds.
	body := `{"poly":"0x82608edb","width":32,"max_len":128,"max_hd":6}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/evaluate", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("evaluate: %d %s", rec.Code, rec.Body.String())
	}

	// Default stays JSON.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("default /metrics Content-Type = %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("default /metrics not JSON: %v", err)
	}

	check := func(name string, r *http.Request) string {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, r)
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Errorf("%s: Content-Type = %q", name, ct)
		}
		out := rec.Body.String()
		if err := obs.CheckExposition(strings.NewReader(out)); err != nil {
			t.Errorf("%s: invalid exposition: %v", name, err)
		}
		return out
	}

	out := check("format=prometheus", httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	for _, want := range []string{
		`crcserve_request_duration_seconds_bucket{endpoint="/v1/evaluate",le="+Inf"} 1`,
		`crcserve_requests_total{endpoint="/v1/evaluate",code="200"} 1`,
		"# TYPE crcserve_engine_phase_seconds histogram",
		`phase="w3_scan"`,
		`phase="boundary"`,
		"crcserve_engine_phase_probes",
		`phase="mitm_store"`,
		`phase="mitm_probe"`,
		"crcserve_pool_sessions 1",
		"crcserve_flights 1",
		`crcserve_pool_session_probes{poly="0x82608edb",width="32",max_hd="6"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Accept negotiation selects the same exposition.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	check("accept text/plain", req)
}

// BenchmarkWarmEvaluate measures the full warm-request path — ServeHTTP
// middleware, request-ID handling, session-memo hit, response encoding,
// metrics observation — for comparison with
// BenchmarkRequestInstrumentation: the instrumentation share of a warm
// request must stay under 2%.
func BenchmarkWarmEvaluate(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	body := `{"poly":"0x82608edb","width":32,"max_len":128,"max_hd":6}`
	warm := httptest.NewRecorder()
	s.ServeHTTP(warm, httptest.NewRequest("POST", "/v1/evaluate", strings.NewReader(body)))
	if warm.Code != http.StatusOK {
		b.Fatalf("prime: %d %s", warm.Code, warm.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/evaluate", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
}

// BenchmarkRequestInstrumentation isolates what the observability layer
// adds to every request: the histogram/counter observation plus the
// request-ID mint the middleware performs, without tracing.
func BenchmarkRequestInstrumentation(b *testing.B) {
	s, err := New(Config{TraceBuffer: -1})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	r := httptest.NewRequest("POST", "/v1/evaluate", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rid := obs.NewRequestID()
		s.observe(r, http.StatusOK, rid, 50*time.Microsecond, nil, 0)
	}
}

// BenchmarkRequestInstrumentationTraced measures the same per-request
// path with tracing on: trace mint, root span lifecycle, recorder
// admission and (when retained) the exemplar store. The delta against
// BenchmarkRequestInstrumentation is the tracing tax BENCH_PR10 gates.
func BenchmarkRequestInstrumentationTraced(b *testing.B) {
	s, err := New(Config{TraceBuffer: 256, TraceSampleRate: 0.1})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	r := httptest.NewRequest("POST", "/v1/evaluate", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rid := obs.NewRequestID()
		tr := obs.NewTrace("/v1/evaluate")
		s.observe(r, http.StatusOK, rid, 50*time.Microsecond, tr, 0)
	}
}

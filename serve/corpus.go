package serve

import (
	"context"
	"log/slog"
	"strconv"
	"time"

	"koopmancrc"
	"koopmancrc/internal/corpus"
	"koopmancrc/internal/obs"
)

// persistQueueLen bounds the write-behind queue. A full queue never
// blocks a request: the enqueue is dropped and the session is re-noted
// by its next evaluation (or by eviction), so knowledge reaches the
// corpus eventually without ever gating the request path.
const persistQueueLen = 128

// setupCorpus opens the store and wires the pool's warm-start and
// eviction hooks plus the background persister.
func (s *Server) setupCorpus(dir string) error {
	store, err := corpus.Open(dir, corpus.Config{})
	if err != nil {
		return err
	}
	s.corpus = store
	if st := store.Stats(); st.TruncatedAtOpen > 0 || st.SkippedAtOpen > 0 {
		s.logger.Warn("corpus recovery",
			slog.String("dir", dir),
			slog.Int64("truncated_bytes", st.TruncatedAtOpen),
			slog.Int("skipped_records", st.SkippedAtOpen))
	}
	s.pool.warm = s.warmStart
	s.pool.evicted = s.notePersist
	s.persistCh = make(chan *session, persistQueueLen)
	s.persistDone = make(chan struct{})
	go s.persister()
	return nil
}

// warmStart hydrates a freshly created session from the corpus. Called
// under the pool lock, before the session serves anything, so the
// restore never contends with an evaluation. A corpus error is a miss,
// never a failure: the session simply starts cold. The warm-start shows
// up as a child span of the creating request's trace.
func (s *Server) warmStart(ctx context.Context, sess *session) {
	sp := obs.SpanFromContext(ctx).StartChild("corpus.warmstart")
	sp.SetAttr("poly", hexStr(sess.poly.In(koopmancrc.Koopman)))
	start := time.Now()
	snap, ok := s.corpus.Get(sess.poly.Width(), sess.poly.Koopman())
	if ok {
		if err := sess.an.RestoreMemos(context.Background(), snap); err != nil {
			s.logger.Warn("corpus restore failed; session starts cold",
				slog.String("poly", hexStr(sess.poly.In(koopmancrc.Koopman))),
				slog.String("error", err.Error()))
			sp.SetError(err.Error())
			ok = false
		}
	}
	if ok {
		sess.restored = true
		sess.persisted = sess.an.MemoStats()
		s.metrics.corpusHits.Add(1)
	} else {
		s.metrics.corpusMisses.Add(1)
	}
	sp.SetAttr("hit", strconv.FormatBool(ok))
	sp.End()
	if s.obs != nil {
		s.obs.corpusLoad.Observe(time.Since(start).Seconds())
	}
}

// notePersist queues a session for write-behind persistence. Safe (and
// a no-op) without a corpus; never blocks — see persistQueueLen.
func (s *Server) notePersist(sess *session) {
	if s.corpus == nil || sess == nil {
		return
	}
	if !sess.enqueued.CompareAndSwap(false, true) {
		return // already queued; the persister will see the latest memo
	}
	select {
	case s.persistCh <- sess:
	default:
		sess.enqueued.Store(false)
	}
}

// persister is the single write-behind goroutine: it exports each queued
// session's memo (waiting behind in-flight evaluations is fine off the
// request path) and appends it to the corpus, skipping sessions whose
// memo has not grown since their last write. It drains the queue on
// shutdown so acknowledged knowledge is not lost to a clean stop.
func (s *Server) persister() {
	defer close(s.persistDone)
	for {
		select {
		case sess := <-s.persistCh:
			s.persistSession(sess)
		case <-s.base.Done():
			for {
				select {
				case sess := <-s.persistCh:
					s.persistSession(sess)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) persistSession(sess *session) {
	sess.enqueued.Store(false)
	if sess.an.MemoStats() == sess.persisted {
		return // nothing learned since the last write
	}
	// Background persists have no originating request, so they get their
	// own trace; a failed write is then an errored trace the recorder
	// pins, making corpus trouble visible at /v1/traces without logs.
	tr := obs.NewTrace("corpus.persist")
	root := tr.Root()
	root.SetAttr("poly", hexStr(sess.poly.In(koopmancrc.Koopman)))
	defer func() {
		root.End()
		if s.recorder != nil {
			s.recorder.RecordTrace(tr)
		}
	}()
	// Export under the session's own serialization; bounded so a stuck
	// evaluation cannot wedge the persister forever.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	sp := root.StartChild("memo.snapshot")
	snap, err := sess.an.MemoSnapshot(ctx)
	cancel()
	if err != nil {
		sp.SetError(err.Error())
		sp.End()
		s.metrics.corpusWriteErrs.Add(1)
		s.logger.Warn("corpus export failed",
			slog.String("poly", hexStr(sess.poly.In(koopmancrc.Koopman))),
			slog.String("error", err.Error()))
		return
	}
	sp.End()
	sp = root.StartChild("corpus.put")
	if err := s.corpus.Put(snap); err != nil {
		sp.SetError(err.Error())
		sp.End()
		s.metrics.corpusWriteErrs.Add(1)
		s.logger.Warn("corpus write failed",
			slog.String("poly", hexStr(sess.poly.In(koopmancrc.Koopman))),
			slog.String("error", err.Error()))
		return
	}
	sp.End()
	root.SetAttr("facts", strconv.Itoa(snap.Entries()))
	sess.persisted = sess.an.MemoStats()
	s.metrics.corpusWrites.Add(1)
	s.logger.Debug("corpus write",
		slog.String("poly", hexStr(sess.poly.In(koopmancrc.Koopman))),
		slog.Int("facts", snap.Entries()),
		slog.Int64("probes", snap.Probes))
}

// corpusMetrics builds the "corpus" document of the JSON /metrics view.
func (s *Server) corpusMetrics() map[string]any {
	out := map[string]any{"enabled": s.corpus != nil}
	if s.corpus == nil {
		return out
	}
	st := s.corpus.Stats()
	out["entries"] = st.Entries
	out["facts"] = st.Facts
	out["bytes"] = st.Bytes
	out["truncated_at_open"] = st.TruncatedAtOpen
	out["skipped_at_open"] = st.SkippedAtOpen
	out["appends"] = st.Appends
	out["compactions"] = st.Compactions
	out["hits"] = s.metrics.corpusHits.Value()
	out["misses"] = s.metrics.corpusMisses.Value()
	out["writes"] = s.metrics.corpusWrites.Value()
	out["write_errors"] = s.metrics.corpusWriteErrs.Value()
	return out
}

package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"koopmancrc"
	"koopmancrc/crchash"
)

// metricsSnapshot mirrors the /metrics document for test assertions.
type metricsSnapshot struct {
	Requests    map[string]int64 `json:"requests"`
	Errors      map[string]int64 `json:"errors"`
	Kernels     map[string]int64 `json:"checksum_kernels"`
	Flights     int64            `json:"flights"`
	Coalesced   int64            `json:"coalesced"`
	Canceled    int64            `json:"canceled"`
	Streams     int64            `json:"streams"`
	BatchItems  int64            `json:"batch_items"`
	StreamBytes int64            `json:"stream_bytes"`
	Pool        PoolStats        `json:"pool"`
	Corpus      struct {
		Enabled bool  `json:"enabled"`
		Entries int   `json:"entries"`
		Facts   int   `json:"facts"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Writes  int64 `json:"writes"`
	} `json:"corpus"`
	Profile struct {
		Override string `json:"override"`
		Kernels  []struct {
			Kernel   string  `json:"kernel"`
			SmallBps float64 `json:"small_bps"`
			LargeBps float64 `json:"large_bps"`
		} `json:"kernels"`
	} `json:"auto_profile"`
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, req, resp any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, resp); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
	}
	return r.StatusCode, data
}

func getMetrics(t *testing.T, ts *httptest.Server) metricsSnapshot {
	t.Helper()
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var m metricsSnapshot
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// smallEval is a cheap 8-bit evaluation used wherever the test needs a
// real engine run without real cost.
var smallEval = EvaluateRequest{
	PolyRef: PolyRef{Poly: "0x83", Width: 8},
	MaxLen:  64,
	MaxHD:   6,
}

// TestEvaluateWarmSessionZeroProbes is the acceptance criterion: a second
// identical /v1/evaluate answers from the pooled Analyzer's memo with
// zero new engine probes, observed through the MemoStats-backed /metrics.
func TestEvaluateWarmSessionZeroProbes(t *testing.T) {
	_, ts := startServer(t, Config{})

	var first EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", smallEval, &first); code != http.StatusOK {
		t.Fatalf("first evaluate: %d %s", code, body)
	}
	m1 := getMetrics(t, ts)
	if m1.Pool.Misses != 1 || m1.Pool.Sessions != 1 {
		t.Fatalf("after first request: %+v", m1.Pool)
	}
	if m1.Pool.Probes == 0 {
		t.Fatal("first evaluation did no engine probes?")
	}

	var second EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", smallEval, &second); code != http.StatusOK {
		t.Fatalf("second evaluate: %d %s", code, body)
	}
	m2 := getMetrics(t, ts)
	if m2.Pool.Hits != 1 {
		t.Fatalf("second request missed the pool: %+v", m2.Pool)
	}
	if m2.Pool.Probes != m1.Pool.Probes {
		t.Fatalf("warm session probed the engine: %d -> %d probes", m1.Pool.Probes, m2.Pool.Probes)
	}
	if !bytesEqualJSON(t, first, second) {
		t.Fatalf("warm response differs: %+v vs %+v", first, second)
	}
	if len(m2.Pool.Detail) != 1 || m2.Pool.Detail[0].Probes != m2.Pool.Probes {
		t.Fatalf("per-session detail: %+v", m2.Pool.Detail)
	}
}

func bytesEqualJSON(t *testing.T, a, b any) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ja, jb)
}

// sseEvents reads an SSE stream line by line, sending each event name as
// it completes.
func sseEvents(t *testing.T, body io.Reader, events chan<- string) {
	t.Helper()
	sc := bufio.NewScanner(body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case line == "":
			if event != "" {
				events <- event
				event = ""
			}
		}
	}
	close(events)
}

// slowEval keeps an engine busy for tens of seconds if never cancelled —
// the full-depth profile of the paper's 0xBA0DC66B at 131072 bits, whose
// high-weight boundary scans dominate — while emitting progress ticks
// from the first existence query on.
var slowEval = EvaluateRequest{
	PolyRef: PolyRef{Poly: "0xba0dc66b"},
	MaxLen:  131072,
	MaxHD:   13,
}

// TestSingleflightAndDisconnectCancellation is the second acceptance
// criterion, end to end over real HTTP: an identical concurrent request
// coalesces onto the in-flight evaluation instead of starting a second
// engine run; a departing client leaves the evaluation running for the
// remaining one; and when the last client disconnects, the cancellation
// reaches the engine's scan loops.
func TestSingleflightAndDisconnectCancellation(t *testing.T) {
	_, ts := startServer(t, Config{})

	// Client A: streaming request, so progress events prove the engine
	// is mid-scan.
	body, err := json.Marshal(slowEval)
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	reqA, err := http.NewRequestWithContext(ctxA, http.MethodPost, ts.URL+"/v1/evaluate?stream=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	respA, err := http.DefaultClient.Do(reqA)
	if err != nil {
		t.Fatal(err)
	}
	defer respA.Body.Close()
	events := make(chan string, 64)
	go sseEvents(t, respA.Body, events)
	waitEvent(t, events, "progress", 30*time.Second)

	// Client B: identical plain request while A's evaluation is in
	// flight — it must join the flight, not start a second engine run.
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	bErr := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(ctxB, http.MethodPost, ts.URL+"/v1/evaluate", bytes.NewReader(body))
		if err != nil {
			bErr <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request B completed with status %d before cancellation", resp.StatusCode)
		}
		bErr <- err
	}()
	waitFor(t, 10*time.Second, "request B to coalesce", func() bool {
		return getMetrics(t, ts).Coalesced >= 1
	})
	if m := getMetrics(t, ts); m.Flights != 1 {
		t.Fatalf("identical concurrent requests started %d engine runs", m.Flights)
	}

	// B disconnects; the flight must keep running for A. Progress events
	// still flowing prove the engine was not cancelled.
	cancelB()
	if err := <-bErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("request B returned %v, want context.Canceled", err)
	}
	waitEvent(t, events, "progress", 30*time.Second)
	if m := getMetrics(t, ts); m.Canceled != 0 {
		t.Fatalf("evaluation canceled while a client was still attached")
	}

	// A — the last client — disconnects: the refcounted flight cancels
	// its context and the engine's cancel hook must abort the scan.
	cancelA()
	waitFor(t, 30*time.Second, "engine cancellation", func() bool {
		return getMetrics(t, ts).Canceled == 1
	})
}

func waitEvent(t *testing.T, events <-chan string, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed while waiting for %q event", want)
			}
			if ev == want {
				return
			}
		case <-deadline:
			t.Fatalf("no %q event within %v", want, timeout)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLRUEviction bounds the pool: with capacity 1, a second polynomial
// evicts the first, and re-requesting the first rebuilds a session.
func TestLRUEviction(t *testing.T) {
	_, ts := startServer(t, Config{PoolSize: 1})

	other := smallEval
	other.Poly = "0x9c" // CRC-8/DARC generator
	for _, req := range []EvaluateRequest{smallEval, other, smallEval} {
		if code, body := postJSON(t, ts.URL+"/v1/evaluate", req, nil); code != http.StatusOK {
			t.Fatalf("evaluate %s: %d %s", req.Poly, code, body)
		}
	}
	m := getMetrics(t, ts)
	if m.Pool.Sessions != 1 || m.Pool.Evictions != 2 || m.Pool.Misses != 3 || m.Pool.Hits != 0 {
		t.Fatalf("pool after eviction churn: %+v", m.Pool)
	}
	if len(m.Pool.Detail) != 1 || m.Pool.Detail[0].Poly != "0x83" {
		t.Fatalf("surviving session: %+v", m.Pool.Detail)
	}
}

// TestStreamedEvaluationMatchesPlain checks the SSE success path: the
// result event equals the plain JSON response and progress ticks arrive
// before it. The stream goes first — a cold session is what emits
// progress; the plain repeat is then served from the warm memo.
func TestStreamedEvaluationMatchesPlain(t *testing.T) {
	_, ts := startServer(t, Config{})

	body, _ := json.Marshal(smallEval)
	resp, err := http.Post(ts.URL+"/v1/evaluate?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var progress int
	var result *EvaluateResponse
	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "":
			switch event {
			case "progress":
				if result != nil {
					t.Fatal("progress event after result")
				}
				progress++
			case "result":
				result = new(EvaluateResponse)
				if err := json.Unmarshal([]byte(data), result); err != nil {
					t.Fatal(err)
				}
			case "error":
				t.Fatalf("error event: %s", data)
			}
			event, data = "", ""
		}
	}
	if result == nil {
		t.Fatal("stream ended without a result event")
	}
	if progress == 0 {
		t.Error("no progress events before the result")
	}

	var plain EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", smallEval, &plain); code != http.StatusOK {
		t.Fatalf("plain evaluate: %d %s", code, body)
	}
	if !bytesEqualJSON(t, plain, *result) {
		t.Fatalf("streamed result differs from plain: %+v vs %+v", plain, result)
	}
}

// TestEvaluateWeights covers the weights field end to end: in-cap lengths
// get exact engine-checked counts, an over-cap length is clamped to
// MaxLenCap instead of reaching the engine's O(n) weight scans unbounded,
// and invalid or oversized lists are rejected.
func TestEvaluateWeights(t *testing.T) {
	_, ts := startServer(t, Config{MaxLenCap: 64})

	req := smallEval
	req.Weights = []int{16, 1 << 30} // second entry far beyond the cap
	var resp EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", req, &resp); code != http.StatusOK {
		t.Fatalf("evaluate with weights: %d %s", code, body)
	}
	if len(resp.Weights) != 2 || resp.Weights[0].Length != 16 || resp.Weights[1].Length != 64 {
		t.Fatalf("weights lengths not clamped to MaxLenCap: %+v", resp.Weights)
	}
	p, err := koopmancrc.ParsePolynomial(8, koopmancrc.Koopman, "0x83")
	if err != nil {
		t.Fatal(err)
	}
	for _, wc := range resp.Weights {
		for w, got := range map[int]uint64{2: wc.W2, 3: wc.W3, 4: wc.W4} {
			want, err := koopmancrc.UndetectableWeight(p, w, wc.Length)
			if err != nil {
				t.Fatalf("reference W%d at %d: %v", w, wc.Length, err)
			}
			if got != want {
				t.Errorf("W%d at %d bits: got %d, want %d", w, wc.Length, got, want)
			}
		}
	}

	// The clamped entry answers identically to an explicit request at the
	// cap itself.
	capReq := smallEval
	capReq.Weights = []int{64}
	var capResp EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", capReq, &capResp); code != http.StatusOK {
		t.Fatalf("evaluate at the cap: %d %s", code, body)
	}
	if !bytesEqualJSON(t, resp.Weights[1], capResp.Weights[0]) {
		t.Fatalf("clamped entry differs from explicit cap entry: %+v vs %+v", resp.Weights[1], capResp.Weights[0])
	}

	// A non-positive length is rejected, as is a list beyond MaxWeightLens.
	bad := smallEval
	bad.Weights = []int{0}
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("weights [0]: %d %s, want 400", code, body)
	}
	long := smallEval
	for l := 1; l <= 9; l++ { // default MaxWeightLens is 8
		long.Weights = append(long.Weights, l)
	}
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", long, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized weights list: %d %s, want 400", code, body)
	}
}

// TestClampsAndLimits: per-request knobs are honoured but bounded by the
// server configuration.
func TestClampsAndLimits(t *testing.T) {
	_, ts := startServer(t, Config{MaxLenCap: 128, MaxHDCap: 5})

	req := smallEval
	req.MaxLen = 4096
	req.MaxHD = 13
	var resp EvaluateResponse
	if code, body := postJSON(t, ts.URL+"/v1/evaluate", req, &resp); code != http.StatusOK {
		t.Fatalf("evaluate: %d %s", code, body)
	}
	if resp.MaxLen != 128 || resp.MaxHD != 5 {
		t.Fatalf("clamps not applied: max_len %d, max_hd %d", resp.MaxLen, resp.MaxHD)
	}

	// A probe-budget ceiling turns an expensive request into 422 — even
	// when the request asks for a bigger budget than the ceiling allows.
	_, ts2 := startServer(t, Config{Limits: koopmancrc.Limits{MaxProbes: 10}})
	code, body := postJSON(t, ts2.URL+"/v1/hd", HDRequest{
		PolyRef: PolyRef{Poly: "0x82608edb"}, DataLen: 2048,
		Limits: &Limits{MaxProbes: 1 << 40},
	}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("budget-capped request: %d %s", code, body)
	}
}

// TestTimeout: the server deadline bounds an evaluation, and a streaming
// client that is still connected when the deadline fires gets a
// deterministic error event rather than a silently closed stream.
func TestTimeout(t *testing.T) {
	_, ts := startServer(t, Config{Timeout: 50 * time.Millisecond})
	code, body := postJSON(t, ts.URL+"/v1/evaluate", slowEval, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out evaluate: %d %s", code, body)
	}

	payload, _ := json.Marshal(slowEval)
	resp, err := http.Post(ts.URL+"/v1/evaluate?stream=1", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan string, 64)
	go sseEvents(t, resp.Body, events)
	waitEvent(t, events, "error", 10*time.Second)
}

// TestAuth: bearer-token gating on everything but /healthz.
func TestAuth(t *testing.T) {
	_, ts := startServer(t, Config{Token: "sesame"})

	if r, err := http.Get(ts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz without token: %v %v", r, err)
	} else {
		r.Body.Close()
	}
	if r, err := http.Get(ts.URL + "/metrics"); err != nil || r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("metrics without token not rejected: %v %v", r, err)
	} else {
		r.Body.Close()
	}
	for token, want := range map[string]int{"sesame": http.StatusOK, "wrong": http.StatusUnauthorized} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/algorithms", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("token %q: status %d, want %d", token, r.StatusCode, want)
		}
	}
}

// TestEndpoints covers the pointwise endpoints with known paper answers.
func TestEndpoints(t *testing.T) {
	_, ts := startServer(t, Config{})

	var hd HDResponse
	if code, body := postJSON(t, ts.URL+"/v1/hd", HDRequest{
		PolyRef: PolyRef{Poly: "0x8f6e37a0"}, DataLen: 400, MaxHD: 6,
	}, &hd); code != http.StatusOK {
		t.Fatalf("hd: %d %s", code, body)
	}
	if hd.HD != 6 || !hd.Exact {
		t.Fatalf("Castagnoli HD at 400 bits: %+v", hd)
	}

	var ml MaxLenResponse
	if code, body := postJSON(t, ts.URL+"/v1/maxlen", MaxLenRequest{
		PolyRef: PolyRef{Poly: "0x82608edb"}, HD: 5, Horizon: 12112,
	}, &ml); code != http.StatusOK {
		t.Fatalf("maxlen: %d %s", code, body)
	}
	if !ml.OK || ml.MaxLen != 2974 {
		t.Fatalf("IEEE HD=5 coverage: %+v (paper says 2974)", ml)
	}

	var sel SelectResponse
	if code, body := postJSON(t, ts.URL+"/v1/select", SelectRequest{
		Candidates: []PolyRef{{Poly: "0x8f6e37a0"}, {Poly: "0xba0dc66b"}},
		DataLen:    1024, MaxHD: 6,
	}, &sel); code != http.StatusOK {
		t.Fatalf("select: %d %s", code, body)
	}
	if len(sel.Ranking) != 2 || sel.Ranking[0].HD < sel.Ranking[1].HD {
		t.Fatalf("ranking not best-first: %+v", sel)
	}
	if sel.Ranking[0].HD != 6 || sel.Ranking[0].CoverageAtHD != 4096 {
		t.Fatalf("both candidates hold HD 6 through the 4x horizon at 1024 bits: %+v", sel)
	}

	var sum ChecksumResponse
	if code, body := postJSON(t, ts.URL+"/v1/checksum", ChecksumRequest{
		Algorithm: "CRC-32/IEEE-802.3", Text: "123456789",
	}, &sum); code != http.StatusOK {
		t.Fatalf("checksum: %d %s", code, body)
	}
	if sum.Checksum != 0xCBF43926 || sum.Hex != "0xcbf43926" || sum.Length != 9 {
		t.Fatalf("IEEE check value: %+v", sum)
	}
	if _, err := crchash.ParseKind(sum.Kernel); err != nil || sum.Kernel == "auto" {
		t.Fatalf("checksum response kernel %q is not a concrete kind", sum.Kernel)
	}
	m := getMetrics(t, ts)
	if m.Kernels[sum.Kernel] == 0 {
		t.Fatalf("checksum_kernels missing %q: %+v", sum.Kernel, m.Kernels)
	}
	if len(m.Profile.Kernels) == 0 {
		t.Fatal("auto_profile absent from /metrics")
	}
	for _, ks := range m.Profile.Kernels {
		if ks.LargeBps <= 0 {
			t.Fatalf("auto_profile kernel %q has non-positive throughput", ks.Kernel)
		}
	}
	var sumData ChecksumResponse
	if code, _ := postJSON(t, ts.URL+"/v1/checksum", ChecksumRequest{
		Algorithm: "CRC-32/IEEE-802.3", Data: []byte("123456789"),
	}, &sumData); code != http.StatusOK || sumData.Checksum != sum.Checksum {
		t.Fatalf("base64 data path: %d %+v", code, sumData)
	}

	var algs AlgorithmsResponse
	r, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&algs); err != nil {
		t.Fatal(err)
	}
	if len(algs.Algorithms) == 0 {
		t.Fatal("no algorithms listed")
	}
}

// TestValidation: malformed requests come back 4xx with JSON errors, and
// the error counters tick.
func TestValidation(t *testing.T) {
	_, ts := startServer(t, Config{})

	cases := []struct {
		path string
		req  any
		want int
	}{
		{"/v1/evaluate", EvaluateRequest{PolyRef: PolyRef{Poly: "zz", Width: 8}, MaxLen: 64}, http.StatusBadRequest},
		{"/v1/evaluate", EvaluateRequest{PolyRef: PolyRef{Poly: "0x83", Width: 8}}, http.StatusBadRequest},                                // max_len 0
		{"/v1/evaluate", EvaluateRequest{PolyRef: PolyRef{Poly: "0x83", Width: 8, Notation: "bogus"}, MaxLen: 64}, http.StatusBadRequest}, // notation
		{"/v1/evaluate", map[string]any{"poly": "0x83", "width": 8, "max_len": 64, "typo_field": 1}, http.StatusBadRequest},
		{"/v1/hd", HDRequest{PolyRef: PolyRef{Poly: "0x83", Width: 8}}, http.StatusBadRequest}, // data_len 0
		{"/v1/select", SelectRequest{DataLen: 64}, http.StatusBadRequest},                      // no candidates
		{"/v1/checksum", ChecksumRequest{Algorithm: "CRC-99/NOPE"}, http.StatusNotFound},
		{"/v1/checksum", ChecksumRequest{}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, body := postJSON(t, ts.URL+c.path, c.req, nil); code != c.want {
			t.Errorf("%s %+v: status %d (%s), want %d", c.path, c.req, code, body, c.want)
		}
	}

	// Wrong method.
	r, err := http.Get(ts.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate: %d", r.StatusCode)
	}

	m := getMetrics(t, ts)
	if m.Errors["/v1/evaluate"] == 0 || m.Errors["/v1/checksum"] == 0 {
		t.Errorf("error counters did not tick: %+v", m.Errors)
	}
}

// TestSelectReusesEvaluationSessions: a selection over polynomials whose
// sessions are already warm does zero new engine work.
func TestSelectReusesEvaluationSessions(t *testing.T) {
	_, ts := startServer(t, Config{})

	sel := SelectRequest{
		Candidates: []PolyRef{{Poly: "0x83", Width: 8}, {Poly: "0x9c", Width: 8}},
		DataLen:    16, MaxHD: 6,
	}
	if code, body := postJSON(t, ts.URL+"/v1/select", sel, nil); code != http.StatusOK {
		t.Fatalf("first select: %d %s", code, body)
	}
	before := getMetrics(t, ts).Pool
	if code, body := postJSON(t, ts.URL+"/v1/select", sel, nil); code != http.StatusOK {
		t.Fatalf("second select: %d %s", code, body)
	}
	after := getMetrics(t, ts).Pool
	if after.Probes != before.Probes {
		t.Fatalf("repeat selection probed the engine: %d -> %d", before.Probes, after.Probes)
	}
	if after.Hits != before.Hits+2 {
		t.Fatalf("repeat selection missed the pool: %+v -> %+v", before, after)
	}
}

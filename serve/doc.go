// Package serve is the HTTP serving layer over the koopmancrc v1 API:
// Analyzer evaluation sessions and crchash checksum engines behind JSON
// endpoints, built for the repeated, overlapping queries of a polynomial
// registry or protocol-design service.
//
// # Endpoints
//
//	POST /v1/evaluate    HD-vs-length profile (add ?stream=1 for SSE progress)
//	POST /v1/hd          exact Hamming distance at one data-word length
//	POST /v1/maxlen      largest length keeping a target HD
//	POST /v1/select      rank candidate polynomials for a message length
//	POST /v1/checksum    CRC of a payload under a catalogued algorithm
//	GET  /v1/algorithms  catalogued algorithm names
//	GET  /healthz        liveness (always unauthenticated)
//	GET  /metrics        request/pool counters, expvar-style JSON;
//	                     ?format=prometheus (or Accept: text/plain) selects
//	                     the Prometheus text exposition: per-endpoint
//	                     latency histograms, request outcomes, engine
//	                     probe-phase histograms, flight/pool gauges
//
// # Observability
//
// Every response carries an X-Request-ID header — echoed from the
// request when the client supplied one, minted otherwise — and every
// error body repeats it as request_id, so a client-side failure can be
// matched to the server's structured debug log (Config.Logger). The ID
// travels by context through the session pool and singleflight group
// into the engine's span hook: each evaluation phase (boundary, w3_scan,
// w4_scan, mitm_store, mitm_probe, w2..w4_count) is logged with its
// duration and probe count and recorded in the
// crcserve_engine_phase_seconds / crcserve_engine_phase_probes
// histograms. A coalesced flight is attributed to the request that
// started it.
//
// The crcserve binary adds -pprof (net/http/pprof on a separate,
// default-loopback listener, never this mux) and -remeasure (periodic
// kernel-profile drift watch registered on Server.Registry); the dist
// coordinator's DebugAddr serves its live ledger in the same exposition
// format. cmd/promcheck validates any scrape offline.
//
// # Sessions, coalescing, cancellation
//
// Evaluation requests are served from a bounded LRU pool of per-
// polynomial Analyzer sessions keyed by (polynomial, max_hd, limits), so
// a repeat query for a hot polynomial answers from the session memo with
// zero engine probes. Concurrent identical long evaluations are
// singleflight-coalesced onto one engine run; the run's context is
// detached from any single caller and cancelled only when every caller
// has disconnected, which the engine's cancel hook turns into a prompt
// abort of the scan loops.
//
// Per-request max_hd and limits are honoured but clamped by the server
// Config; server-side timeouts bound each request's evaluation budget.
//
// The wire types in this package are shared with cmd/crceval's -json
// output, so CLI results are byte-comparable with /v1/evaluate
// responses.
package serve

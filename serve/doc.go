// Package serve is the HTTP serving layer over the koopmancrc v1 API:
// Analyzer evaluation sessions and crchash checksum engines behind JSON
// endpoints, built for the repeated, overlapping queries of a polynomial
// registry or protocol-design service.
//
// # Endpoints
//
//	POST /v1/evaluate    HD-vs-length profile (add ?stream=1 for SSE progress)
//	POST /v1/hd          exact Hamming distance at one data-word length
//	POST /v1/maxlen      largest length keeping a target HD
//	POST /v1/select      rank candidate polynomials for a message length
//	POST /v1/checksum    CRC of a payload under a catalogued algorithm
//	POST /v1/checksum/batch
//	                     many payloads in one round trip; per-item results
//	                     with per-item error slots (a bad algorithm or
//	                     overlong payload fails that item, not the batch)
//	POST /v1/checksum/stream
//	                     CRC of a raw octet-stream body fed chunk-by-chunk
//	                     into a digest — O(1) server memory regardless of
//	                     body size; algorithm in ?algorithm= or the
//	                     X-Checksum-Algorithm header
//	GET  /v1/algorithms  catalogued algorithm names
//	GET  /v1/traces      retained traces, newest first; filters:
//	                     ?endpoint= (root span name), ?min_duration=
//	                     (Go duration), ?error=true, ?limit=
//	GET  /v1/traces/{id} one retained trace's full span tree
//	GET  /healthz        liveness (always unauthenticated)
//	GET  /metrics        request/pool counters, expvar-style JSON;
//	                     ?format=prometheus (or Accept: text/plain) selects
//	                     the classic 0.0.4 text exposition (exemplar-free):
//	                     per-endpoint latency histograms, request outcomes,
//	                     engine probe-phase histograms, flight/pool gauges;
//	                     ?format=openmetrics (or Accept:
//	                     application/openmetrics-text) selects the
//	                     OpenMetrics exposition with histogram exemplars
//	                     and the # EOF terminator
//
// # Observability
//
// Every response carries an X-Request-ID header — echoed from the
// request when the client supplied one, minted otherwise — and every
// error body repeats it as request_id, so a client-side failure can be
// matched to the server's structured debug log (Config.Logger). The ID
// travels by context through the session pool and singleflight group
// into the engine's span hook: each evaluation phase (boundary, w3_scan,
// w4_scan, mitm_store, mitm_probe, w2..w4_count) is logged with its
// duration and probe count and recorded in the
// crcserve_engine_phase_seconds / crcserve_engine_phase_probes
// histograms. A coalesced flight is attributed to the request that
// started it.
//
// # Tracing
//
// On top of the request ID, every request is recorded as a span tree:
// the middleware opens a root span named by the bounded endpoint label
// (its ID returned in the X-Trace-ID response header), and the layers
// underneath attach children — pool.acquire (with hit/miss),
// flight (the singleflight window), corpus.warmstart, and one
// engine.<phase> leaf per evaluation phase with its duration and probe
// count. Background corpus persists run under their own corpus.persist
// trace, so a failed write-behind is visible at /v1/traces without
// logs.
//
// Completed traces feed a bounded FlightRecorder (internal/obs) with
// tail sampling: the keep/drop decision happens when the trace ends,
// so errored traces and the slowest-K per endpoint are always retained
// and pinned against eviction, while healthy fast traces are kept with
// probability Config.TraceSampleRate. A request that exceeds its
// evaluation budget therefore always leaves its full span tree behind.
// Config.TraceBuffer sizes the ring (negative disables tracing; the
// trace endpoints then 404). Retention resists abuse: unauthenticated
// 401s and unknown-path 404s are never marked errored (probes cannot
// fill the recorder), pinning is capped at half the ring with error
// pins at half of that, and a warm-up trace must exceed a 1 ms floor
// before an underfull slowest-K set keeps it. The latency histograms
// attach OpenMetrics exemplars — each bucket carries the most recent
// retained trace ID observed in it — so a dashboard spike resolves to
// a span tree in two steps; exemplars render only on the negotiated
// OpenMetrics exposition, since the classic 0.0.4 parser rejects them.
// Config.AccessLog additionally emits one structured log line per
// request, sampled by the same tail decision so log volume tracks
// trace volume.
//
// The crcserve binary adds -pprof (net/http/pprof on a separate,
// default-loopback listener, never this mux) and -remeasure (periodic
// kernel-profile drift watch registered on Server.Registry); the dist
// coordinator's DebugAddr serves its live ledger in the same exposition
// format. cmd/promcheck validates any scrape offline.
//
// # Sessions, coalescing, cancellation
//
// Evaluation requests are served from a bounded LRU pool of per-
// polynomial Analyzer sessions keyed by (polynomial, max_hd, limits), so
// a repeat query for a hot polynomial answers from the session memo with
// zero engine probes. Concurrent identical long evaluations are
// singleflight-coalesced onto one engine run; the run's context is
// detached from any single caller and cancelled only when every caller
// has disconnected, which the engine's cancel hook turns into a prompt
// abort of the scan loops.
//
// Per-request max_hd and limits are honoured but clamped by the server
// Config; server-side timeouts bound each request's evaluation budget.
//
// # Persistent corpus
//
// Config.CorpusDir connects the pool to a disk-backed corpus of memo
// snapshots (internal/corpus, typically filled offline by cmd/crcbake).
// Every fresh session warm-starts from the stored snapshot for its
// polynomial before serving its first request — a query the snapshot
// covers answers with zero engine probes — and knowledge learned live
// is persisted back write-behind: requests only enqueue a note; a
// single background goroutine exports and appends the session memo
// afterwards, skipping sessions that have not learned anything since
// their last write. A full queue drops the note rather than blocking
// (the next evaluation re-notes the session), eviction flushes a
// session on its way out of the pool, and Close drains the queue, so
// persistence is eventual but never on the request path. Pool eviction
// is cost-aware: under capacity pressure the session with the fewest
// live engine probes — the cheapest to rebuild, since corpus-restored
// knowledge rebuilds for free — is evicted first, LRU breaking ties.
// The store itself is crash-safe (CRC-protected journal; torn or
// corrupt tails truncated at open, never served), and /metrics reports
// hits, misses, writes, write errors, entry/byte totals and load
// latency under the "corpus" document and the crcserve_corpus_* series.
//
// # Checksum ingestion tier
//
// The batch and stream endpoints make the checksum path usable as a
// data-plane ingestion tier rather than a one-shot demo. A batch resolves
// each distinct algorithm's engine once per request and clamps both item
// count (Config.MaxBatchItems → 422) and total decoded bytes
// (Config.MaxBatchBytes → 413); each item is additionally held to the
// per-body cap (Config.MaxBodyBytes), failing only that item. A stream
// never buffers the body: chunks move through a pooled 64 KiB buffer into
// a crchash digest, the request context is polled between chunks so a
// dropped client aborts the hash mid-body, and Config.MaxStreamBytes
// bounds the total (413 past it). Every JSON endpoint bounds its request
// body with http.MaxBytesReader and answers an over-limit body with 413
// and a request_id-bearing error. The serve/client package mirrors the
// pair with ChecksumBatch and ChecksumReader, and its Pipeline keeps a
// bounded number of batches in flight over the pooled keep-alive
// connections to hide round-trip latency.
//
// The wire types in this package are shared with cmd/crceval's -json
// output, so CLI results are byte-comparable with /v1/evaluate
// responses.
package serve

// Package serve is the HTTP serving layer over the koopmancrc v1 API:
// Analyzer evaluation sessions and crchash checksum engines behind JSON
// endpoints, built for the repeated, overlapping queries of a polynomial
// registry or protocol-design service.
//
// # Endpoints
//
//	POST /v1/evaluate    HD-vs-length profile (add ?stream=1 for SSE progress)
//	POST /v1/hd          exact Hamming distance at one data-word length
//	POST /v1/maxlen      largest length keeping a target HD
//	POST /v1/select      rank candidate polynomials for a message length
//	POST /v1/checksum    CRC of a payload under a catalogued algorithm
//	GET  /v1/algorithms  catalogued algorithm names
//	GET  /healthz        liveness (always unauthenticated)
//	GET  /metrics        request/pool counters, expvar-style JSON
//
// # Sessions, coalescing, cancellation
//
// Evaluation requests are served from a bounded LRU pool of per-
// polynomial Analyzer sessions keyed by (polynomial, max_hd, limits), so
// a repeat query for a hot polynomial answers from the session memo with
// zero engine probes. Concurrent identical long evaluations are
// singleflight-coalesced onto one engine run; the run's context is
// detached from any single caller and cancelled only when every caller
// has disconnected, which the engine's cancel hook turns into a prompt
// abort of the scan loops.
//
// Per-request max_hd and limits are honoured but clamped by the server
// Config; server-side timeouts bound each request's evaluation budget.
//
// The wire types in this package are shared with cmd/crceval's -json
// output, so CLI results are byte-comparable with /v1/evaluate
// responses.
package serve

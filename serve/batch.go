package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"koopmancrc/crchash"
	"koopmancrc/internal/obs"
)

// This file is the high-throughput ingestion tier: /v1/checksum/batch
// amortizes per-request HTTP/JSON overhead over many small payloads, and
// /v1/checksum/stream digests arbitrarily large bodies chunk-by-chunk
// through a hash.Hash32 without ever buffering them.

// StreamAlgorithmHeader names the algorithm for /v1/checksum/stream when
// the ?algorithm= query parameter is absent.
const StreamAlgorithmHeader = "X-Checksum-Algorithm"

// batchEngine is one resolved algorithm, looked up once per distinct
// name per batch no matter how many items use it.
type batchEngine struct {
	engine   crchash.Engine
	kernel   string
	hexWidth int
	err      error
}

func resolveBatchEngine(algorithm string) batchEngine {
	if algorithm == "" {
		return batchEngine{err: errors.New("missing algorithm")}
	}
	params, err := crchash.Lookup(algorithm)
	if err != nil {
		return batchEngine{err: err}
	}
	engine, err := crchash.ForAlgorithm(algorithm)
	if err != nil {
		return batchEngine{err: err}
	}
	return batchEngine{
		engine:   engine,
		kernel:   crchash.KindOf(engine).String(),
		hexWidth: (params.Poly.Width() + 3) / 4,
	}
}

func (s *Server) handleChecksumBatch(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/checksum/batch"
	s.metrics.requests.Add(ep, 1)
	var req ChecksumBatchRequest
	// The batch body bound is derived from MaxBatchBytes, not
	// MaxBodyBytes: base64 inflates payloads by 4/3 and the JSON framing
	// adds more, so twice the decoded-bytes cap covers any legitimate
	// batch while still bounding hostile ones.
	if err := s.decodeBounded(w, r, &req, 2*s.cfg.MaxBatchBytes); err != nil {
		s.writeError(w, r, ep, decodeStatus(err), err)
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, r, ep, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.writeError(w, r, ep, http.StatusUnprocessableEntity,
			fmt.Errorf("%d items exceed the batch cap of %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}
	var total int64
	for _, item := range req.Items {
		n := int64(len(item.Data))
		if n == 0 {
			n = int64(len(item.Text))
		}
		total += n
	}
	if total > s.cfg.MaxBatchBytes {
		s.writeError(w, r, ep, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch payloads total %d bytes, exceeding the cap of %d", total, s.cfg.MaxBatchBytes))
		return
	}

	// One engine resolution per distinct algorithm: a 1000-item batch of
	// one algorithm pays one catalogue lookup, not 1000.
	engines := make(map[string]batchEngine)
	resp := &ChecksumBatchResponse{Count: len(req.Items), Items: make([]ChecksumBatchItem, len(req.Items))}
	for i, item := range req.Items {
		out := &resp.Items[i]
		out.Algorithm = item.Algorithm
		be, ok := engines[item.Algorithm]
		if !ok {
			be = resolveBatchEngine(item.Algorithm)
			engines[item.Algorithm] = be
		}
		if be.err != nil {
			out.Error = be.err.Error()
			out.RequestID = obs.RequestID(r.Context())
			resp.Failed++
			continue
		}
		data := item.Data
		if len(data) == 0 && item.Text != "" {
			data = []byte(item.Text)
		}
		if int64(len(data)) > s.cfg.MaxBodyBytes {
			// The per-item ceiling matches the single-checksum endpoint:
			// an item too big for /v1/checksum fails alone, not the batch.
			out.Error = fmt.Sprintf("payload %d bytes exceeds the per-item cap of %d", len(data), s.cfg.MaxBodyBytes)
			out.RequestID = obs.RequestID(r.Context())
			resp.Failed++
			continue
		}
		sum := be.engine.Checksum(data)
		out.Length = len(data)
		out.Checksum = sum
		out.Hex = fmt.Sprintf("0x%0*x", be.hexWidth, sum)
		out.Kernel = be.kernel
		s.metrics.kernels.Add(be.kernel, 1)
	}
	s.metrics.batchItems.Add(int64(resp.Count))
	s.obs.batchItems.Observe(float64(resp.Count))
	s.obs.batchBytes.Observe(float64(total))
	writeJSON(w, http.StatusOK, resp)
}

// streamBufs pools the fixed-size copy buffers of the stream handler so
// its per-request buffering cost is O(1) in the body size and near-zero
// in steady state.
var streamBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 64<<10)
		return &b
	},
}

func (s *Server) handleChecksumStream(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/checksum/stream"
	s.metrics.requests.Add(ep, 1)
	algorithm := r.URL.Query().Get("algorithm")
	if algorithm == "" {
		algorithm = r.Header.Get(StreamAlgorithmHeader)
	}
	if algorithm == "" {
		s.writeError(w, r, ep, http.StatusBadRequest,
			fmt.Errorf("missing algorithm (use ?algorithm= or the %s header)", StreamAlgorithmHeader))
		return
	}
	params, err := crchash.Lookup(algorithm)
	if err != nil {
		s.writeError(w, r, ep, http.StatusNotFound, err)
		return
	}
	engine, err := crchash.ForAlgorithm(algorithm)
	if err != nil {
		s.writeError(w, r, ep, http.StatusInternalServerError, err)
		return
	}
	kernel := crchash.KindOf(engine).String()
	digest := crchash.NewDigest(engine)

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxStreamBytes)
	bufp := streamBufs.Get().(*[]byte)
	defer streamBufs.Put(bufp)
	buf := *bufp

	var hashed int64
	for {
		// Poll cancellation between chunks: a gone client or an expired
		// server deadline stops the read loop promptly and abandons the
		// digest — the server never drains a body nobody is waiting on.
		if err := ctx.Err(); err != nil {
			s.writeError(w, r, ep, statusForStream(r, err), fmt.Errorf("stream abandoned after %d bytes: %w", hashed, err))
			return
		}
		n, err := body.Read(buf)
		if n > 0 {
			digest.Write(buf[:n])
			hashed += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			s.writeError(w, r, ep, statusForStream(r, err), fmt.Errorf("reading stream body after %d bytes: %w", hashed, err))
			return
		}
	}

	sum := digest.Sum32()
	s.metrics.streamBytes.Add(hashed)
	s.obs.streamBytes.Observe(float64(hashed))
	s.metrics.kernels.Add(kernel, 1)
	writeJSON(w, http.StatusOK, &ChecksumResponse{
		Algorithm: algorithm,
		Length:    int(hashed),
		Checksum:  sum,
		Hex:       fmt.Sprintf("0x%0*x", (params.Poly.Width()+3)/4, sum),
		Kernel:    kernel,
	})
}

// statusForStream maps a mid-body failure to a status: 413 when the
// MaxStreamBytes bound tripped, 499 (the de-facto "client closed
// request" code) when the client went away, 504 on the server deadline,
// 400 for a broken body otherwise. For disconnects the status only
// feeds the error counters — nobody is listening for the response.
func statusForStream(r *http.Request, err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case r.Context().Err() != nil:
		return 499
	default:
		return http.StatusBadRequest
	}
}

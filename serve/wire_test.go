package serve

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"koopmancrc"
)

// TestPolyRefDefaults: width defaults to 32 and notation to koopman.
func TestPolyRefDefaults(t *testing.T) {
	p, err := PolyRef{Poly: "0xba0dc66b"}.Polynomial()
	if err != nil {
		t.Fatal(err)
	}
	if p != koopmancrc.Koopman32K {
		t.Fatalf("parsed %v, want %v", p, koopmancrc.Koopman32K)
	}
	for _, bad := range []PolyRef{
		{},
		{Poly: "zz"},
		{Poly: "0x83", Width: 8, Notation: "bogus"},
	} {
		if _, err := bad.Polynomial(); err == nil {
			t.Errorf("PolyRef %+v parsed without error", bad)
		}
	}
	// Normal notation resolves the same polynomial.
	n, err := PolyRef{Poly: "0x1edc6f41", Notation: "normal"}.Polynomial()
	if err != nil {
		t.Fatal(err)
	}
	if n != koopmancrc.CastagnoliISCSI {
		t.Fatalf("normal notation parsed %v, want %v", n, koopmancrc.CastagnoliISCSI)
	}
}

// TestEvaluateResponseRoundTrip: the shared wire type marshals and
// unmarshals without loss — the property the CLI/server byte-equality
// contract rests on.
func TestEvaluateResponseRoundTrip(t *testing.T) {
	an := koopmancrc.NewAnalyzer(koopmancrc.MustPolynomial(8, koopmancrc.Koopman, "0x83"), koopmancrc.WithMaxHD(6))
	rep, err := an.Evaluate(context.Background(), 64)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewEvaluateResponse(rep, 6, []WeightCount{{Length: 32, W2: 1, W3: 2, W4: 3}})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var decoded EvaluateResponse
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*orig, decoded) {
		t.Fatalf("round trip lost data:\norig %+v\ngot  %+v", *orig, decoded)
	}
	if orig.Poly != "0x83" || orig.Width != 8 || len(orig.Bands) == 0 || len(orig.Transitions) == 0 {
		t.Fatalf("response fields: %+v", orig)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"koopmancrc/internal/obs"
)

// postRaw posts JSON and returns the raw *http.Response (callers need
// headers, unlike postJSON).
func postRaw(t *testing.T, url string, req any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Body.Close() })
	return r
}

func getTrace(t *testing.T, ts string, id string) (TraceData, int) {
	t.Helper()
	r, err := http.Get(ts + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var td TraceData
	if r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(&td); err != nil {
			t.Fatalf("decode trace: %v", err)
		}
	}
	return td, r.StatusCode
}

// spanNames flattens a span tree into its set of names.
func spanNames(sp *SpanData, into map[string]*SpanData) {
	if sp == nil {
		return
	}
	into[sp.Name] = sp
	for _, c := range sp.Children {
		spanNames(c, into)
	}
}

// TestTraceEndToEnd is the tentpole's acceptance path: a real
// /v1/evaluate produces a trace whose ID (from the X-Trace-ID header)
// resolves at /v1/traces/{id} to a span tree containing the root, the
// pool acquisition, the coalesced flight and the engine's phase spans —
// and the same ID appears as an exemplar on the latency histogram.
func TestTraceEndToEnd(t *testing.T) {
	_, ts := startServer(t, Config{TraceSampleRate: 1})

	r := postRaw(t, ts.URL+"/v1/evaluate", smallEval)
	io.Copy(io.Discard, r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: %d", r.StatusCode)
	}
	id := r.Header.Get("X-Trace-ID")
	if id == "" {
		t.Fatal("no X-Trace-ID header on a traced request")
	}

	td, code := getTrace(t, ts.URL, id)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s: %d", id, code)
	}
	if td.TraceID != id || td.Name != "/v1/evaluate" {
		t.Fatalf("trace identity: got %q/%q, want %q/%q", td.TraceID, td.Name, id, "/v1/evaluate")
	}
	if td.Error != "" {
		t.Fatalf("successful request marked errored: %q", td.Error)
	}
	names := map[string]*SpanData{}
	spanNames(td.Root, names)
	for _, want := range []string{"/v1/evaluate", "pool.acquire", "flight"} {
		if names[want] == nil {
			t.Errorf("span %q missing from tree %v", want, keys(names))
		}
	}
	engine := 0
	for name := range names {
		if strings.HasPrefix(name, "engine.") {
			engine++
		}
	}
	if engine == 0 {
		t.Errorf("no engine phase spans in tree %v", keys(names))
	}
	// Engine spans must nest under the flight, not dangle off the root.
	if fl := names["flight"]; fl != nil {
		under := map[string]*SpanData{}
		spanNames(fl, under)
		found := false
		for name := range under {
			if strings.HasPrefix(name, "engine.") {
				found = true
			}
		}
		if !found {
			t.Error("engine spans not nested under the flight span")
		}
	}

	// The trace is listed, and the endpoint filter finds it.
	resp, err := http.Get(ts.URL + "/v1/traces?endpoint=/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range list.Traces {
		if s.TraceID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not in filtered listing (%d entries)", id, list.Count)
	}

	// The negotiated OpenMetrics exposition carries a resolvable
	// exemplar and the mandatory terminator.
	om, err := http.Get(ts.URL + "/metrics?format=openmetrics")
	if err != nil {
		t.Fatal(err)
	}
	defer om.Body.Close()
	if ct := om.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("OpenMetrics content type: %q", ct)
	}
	text, _ := io.ReadAll(om.Body)
	if !strings.Contains(string(text), `# {trace_id="`) {
		t.Error("no exemplar in the OpenMetrics exposition")
	}
	if !strings.HasSuffix(string(text), "# EOF\n") {
		t.Error("OpenMetrics exposition lacks the # EOF terminator")
	}
	if err := obs.CheckExposition(bytes.NewReader(text)); err != nil {
		t.Errorf("exposition with exemplars fails validation: %v", err)
	}

	// The classic 0.0.4 exposition must stay exemplar-free: its parser
	// errors on the trailer and a real Prometheus would lose the whole
	// scrape.
	prom, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	text, _ = io.ReadAll(prom.Body)
	if strings.Contains(string(text), " # {") {
		t.Error("exemplar trailer leaked into the 0.0.4 exposition")
	}
	if err := obs.CheckExposition(bytes.NewReader(text)); err != nil {
		t.Errorf("0.0.4 exposition fails validation: %v", err)
	}
}

// TestScannerProbesNotRetained is the flight-recorder abuse regression:
// unauthenticated 401s and unknown-path 404s must not produce errored
// (always-retained, pinned) traces, or scanners walking random paths
// would fill the ring and displace every legitimate trace.
func TestScannerProbesNotRetained(t *testing.T) {
	_, ts := startServer(t, Config{Token: "sesame", TraceSampleRate: -1})

	for i := 0; i < 40; i++ {
		r, err := http.Get(ts.URL + "/some/random/path")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusUnauthorized && r.StatusCode != http.StatusNotFound {
			t.Fatalf("probe status %d", r.StatusCode)
		}
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/traces", nil)
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	for _, s := range list.Traces {
		if s.Error != "" {
			t.Errorf("probe retained as errored trace: %+v", s)
		}
	}
}

func keys(m map[string]*SpanData) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceBudgetExceededRetained pins the tail-sampling guarantee the
// issue names: an evaluation that dies on its probe budget is always
// retained — even at sample rate 0 — with the full span tree and the
// engine phases that completed before the budget tripped.
func TestTraceBudgetExceededRetained(t *testing.T) {
	_, ts := startServer(t, Config{TraceSampleRate: -1})

	req := EvaluateRequest{
		PolyRef: PolyRef{Poly: "0x82608edb", Width: 32},
		MaxLen:  4096,
		MaxHD:   6,
		Limits:  &Limits{MaxProbes: 20000},
	}
	r := postRaw(t, ts.URL+"/v1/evaluate", req)
	body, _ := io.ReadAll(r.Body)
	if r.StatusCode == http.StatusOK {
		t.Fatalf("budget-capped evaluate succeeded; raise the test's cost: %s", body)
	}
	id := r.Header.Get("X-Trace-ID")
	td, code := getTrace(t, ts.URL, id)
	if code != http.StatusOK {
		t.Fatalf("errored trace %s not retained: %d", id, code)
	}
	if td.Error == "" {
		t.Fatal("retained trace lost its error status")
	}
	names := map[string]*SpanData{}
	spanNames(td.Root, names)
	for _, want := range []string{"pool.acquire", "flight"} {
		if names[want] == nil {
			t.Errorf("span %q missing from errored tree %v", want, keys(names))
		}
	}
	if fl := names["flight"]; fl != nil && fl.Error == "" {
		t.Error("flight span did not record the evaluation error")
	}
	engine := 0
	for name := range names {
		if strings.HasPrefix(name, "engine.") {
			engine++
		}
	}
	if engine == 0 {
		t.Errorf("no completed engine phases in errored tree %v", keys(names))
	}

	// And it shows up under the errors-only filter.
	resp, err := http.Get(ts.URL + "/v1/traces?error=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range list.Traces {
		if s.TraceID == id {
			found = true
			if s.Error == "" {
				t.Error("summary lost the error flag")
			}
		}
	}
	if !found {
		t.Fatalf("errored trace %s missing from ?error=true listing", id)
	}
}

// TestTracingDisabled checks the negative-TraceBuffer kill switch: no
// trace headers, no span overhead, and /v1/traces answers 404.
func TestTracingDisabled(t *testing.T) {
	_, ts := startServer(t, Config{TraceBuffer: -1})

	r := postRaw(t, ts.URL+"/v1/evaluate", smallEval)
	io.Copy(io.Discard, r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: %d", r.StatusCode)
	}
	if id := r.Header.Get("X-Trace-ID"); id != "" {
		t.Fatalf("X-Trace-ID %q present with tracing disabled", id)
	}
	for _, path := range []string{"/v1/traces", "/v1/traces/deadbeef"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with tracing disabled: %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestTracesQueryValidation covers the filter error paths.
func TestTracesQueryValidation(t *testing.T) {
	_, ts := startServer(t, Config{})
	for _, q := range []string{"?min_duration=bogus", "?error=maybe", "?limit=0", "?limit=x"} {
		resp, err := http.Get(ts.URL + "/v1/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/traces%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestBatchItemErrorRequestID is the satellite bugfix regression:
// per-item failures inside a 200 batch response must carry the batch's
// request ID so the failure can be located in the server's logs.
func TestBatchItemErrorRequestID(t *testing.T) {
	_, ts := startServer(t, Config{})
	req := ChecksumBatchRequest{Items: []ChecksumRequest{
		{Algorithm: "no-such-algorithm", Text: "x"},
		{Algorithm: "CRC-32/IEEE-802.3", Text: "x"},
	}}
	r := postRaw(t, ts.URL+"/v1/checksum/batch", req)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", r.StatusCode)
	}
	rid := r.Header.Get("X-Request-ID")
	var resp ChecksumBatchResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Items[0].Error == "" {
		t.Fatal("bad-algorithm item did not fail")
	}
	if resp.Items[0].RequestID != rid {
		t.Errorf("failed item request_id %q, want the batch's %q", resp.Items[0].RequestID, rid)
	}
	if resp.Items[1].Error != "" || resp.Items[1].RequestID != "" {
		t.Errorf("successful item should carry no error or request_id: %+v", resp.Items[1])
	}
}

// TestAccessLog checks the satellite: with -accesslog on, each retained
// request emits one structured "access" line carrying the trace ID and
// the sampling verdict; with tracing at rate 1 every request is logged.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	_, ts := startServer(t, Config{TraceSampleRate: 1, AccessLog: true, Logger: logger})

	r := postRaw(t, ts.URL+"/v1/evaluate", smallEval)
	io.Copy(io.Discard, r.Body)
	id := r.Header.Get("X-Trace-ID")

	var line map[string]any
	found := false
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(ln, `"access"`) {
			continue
		}
		if err := json.Unmarshal([]byte(ln), &line); err != nil {
			t.Fatalf("bad log line %q: %v", ln, err)
		}
		if line["trace_id"] == id {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no access line for trace %s in:\n%s", id, buf.String())
	}
	for _, k := range []string{"method", "endpoint", "status", "elapsed", "bytes", "request_id", "sampled"} {
		if _, ok := line[k]; !ok {
			t.Errorf("access line missing %q: %v", k, line)
		}
	}
	if line["endpoint"] != "/v1/evaluate" || line["sampled"] != true {
		t.Errorf("access line fields wrong: %v", line)
	}
}

// TestAccessLogDisabledByDefault: no Config.AccessLog, no access lines.
func TestAccessLogDisabledByDefault(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	_, ts := startServer(t, Config{TraceSampleRate: 1, Logger: logger})
	r := postRaw(t, ts.URL+"/v1/evaluate", smallEval)
	io.Copy(io.Discard, r.Body)
	if strings.Contains(buf.String(), `"access"`) {
		t.Fatalf("access line emitted without AccessLog: %s", buf.String())
	}
}

// Command serve starts a crcserve instance in-process and drives it with
// the Go client: a checksum, a cached evaluation (the second call answers
// from the pooled Analyzer's memo with zero new engine probes), a
// streaming evaluation with live progress, and a candidate ranking.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"koopmancrc/serve"
	"koopmancrc/serve/client"
)

func main() {
	srv := serve.New(serve.Config{PoolSize: 8})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv) }()

	ctx := context.Background()
	c := client.New("http://" + ln.Addr().String())

	sum, err := c.Checksum(ctx, "CRC-32C/iSCSI", []byte("123456789"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CRC-32C(\"123456789\") = %s\n", sum.Hex)

	req := serve.EvaluateRequest{
		PolyRef: serve.PolyRef{Poly: "0xba0dc66b"},
		MaxLen:  1024, MaxHD: 6,
	}
	first, err := c.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0xBA0DC66B: %d HD bands to %d bits\n", len(first.Bands), first.MaxLen)

	// Identical repeat: served from the session memo, zero engine probes.
	if _, err := c.Evaluate(ctx, req); err != nil {
		log.Fatal(err)
	}

	// Streaming variant with live progress ticks.
	ticks := 0
	if _, err := c.EvaluateStream(ctx, serve.EvaluateRequest{
		PolyRef: serve.PolyRef{Poly: "0xba0dc66b"},
		MaxLen:  2048, MaxHD: 6,
	}, func(serve.ProgressEvent) { ticks++ }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed evaluation delivered %d progress ticks\n", ticks)

	ranked, err := c.Select(ctx, serve.SelectRequest{
		Candidates: []serve.PolyRef{{Poly: "0xba0dc66b"}, {Poly: "0x82608edb"}},
		DataLen:    1024, MaxHD: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best candidate at 1024 bits: %s (HD %d)\n",
		ranked.Ranking[0].Poly, ranked.Ranking[0].HD)
}

// Command serve starts a crcserve instance in-process and drives it with
// the Go client: a checksum, a mixed-algorithm batch in one round trip,
// a raw-body streaming checksum, a pipelined burst of batches, a cached
// evaluation (the second call answers from the pooled Analyzer's memo
// with zero new engine probes), a streaming evaluation with live
// progress, and a candidate ranking.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"koopmancrc/serve"
	"koopmancrc/serve/client"
)

func main() {
	srv, err := serve.New(serve.Config{PoolSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv) }()

	ctx := context.Background()
	c := client.New("http://" + ln.Addr().String())

	sum, err := c.Checksum(ctx, "CRC-32C/iSCSI", []byte("123456789"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CRC-32C(\"123456789\") = %s\n", sum.Hex)

	// Many small checksums in one round trip; the bad algorithm fails
	// its item, not the batch.
	batch, err := c.ChecksumBatch(ctx, serve.ChecksumBatchRequest{
		Items: []serve.ChecksumRequest{
			{Algorithm: "CRC-32/IEEE-802.3", Text: "123456789"},
			{Algorithm: "CRC-32K/Koopman", Text: "123456789"},
			{Algorithm: "CRC-32/TYPO", Text: "x"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d: %s %s, %d failed\n",
		batch.Count, batch.Items[0].Hex, batch.Items[1].Hex, batch.Failed)

	// A large payload streams through a chunked digest — never buffered
	// on either side.
	big := bytes.Repeat([]byte("internet-scale payload "), 1<<16) // ~1.4 MiB
	streamed, err := c.ChecksumReader(ctx, "CRC-32C/iSCSI", bytes.NewReader(big))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d bytes -> %s (%s kernel)\n", streamed.Length, streamed.Hex, streamed.Kernel)

	// Pipelining keeps several batches in flight to hide round-trip
	// latency; futures deliver the results in submission order.
	pipe := c.Pipeline(4)
	var calls []*client.BatchCall
	for i := 0; i < 8; i++ {
		calls = append(calls, pipe.Submit(ctx, serve.ChecksumBatchRequest{
			Items: []serve.ChecksumRequest{
				{Algorithm: "CRC-32C/iSCSI", Text: fmt.Sprintf("message %d", i)},
			},
		}))
	}
	pipe.Wait()
	ok := 0
	for _, call := range calls {
		if resp, err := call.Result(); err == nil && resp.Failed == 0 {
			ok++
		}
	}
	fmt.Printf("pipelined %d/%d batches\n", ok, len(calls))

	req := serve.EvaluateRequest{
		PolyRef: serve.PolyRef{Poly: "0xba0dc66b"},
		MaxLen:  1024, MaxHD: 6,
	}
	first, err := c.Evaluate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0xBA0DC66B: %d HD bands to %d bits\n", len(first.Bands), first.MaxLen)

	// Identical repeat: served from the session memo, zero engine probes.
	if _, err := c.Evaluate(ctx, req); err != nil {
		log.Fatal(err)
	}

	// Streaming variant with live progress ticks.
	ticks := 0
	if _, err := c.EvaluateStream(ctx, serve.EvaluateRequest{
		PolyRef: serve.PolyRef{Poly: "0xba0dc66b"},
		MaxLen:  2048, MaxHD: 6,
	}, func(serve.ProgressEvent) { ticks++ }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed evaluation delivered %d progress ticks\n", ticks)

	ranked, err := c.Select(ctx, serve.SelectRequest{
		Candidates: []serve.PolyRef{{Poly: "0xba0dc66b"}, {Poly: "0x82608edb"}},
		DataLen:    1024, MaxHD: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best candidate at 1024 bits: %s (HD %d)\n",
		ranked.Ranking[0].Poly, ranked.Ranking[0].HD)
}

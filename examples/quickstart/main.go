// Quickstart: compute checksums, inspect a polynomial, and read its
// error-detection profile.
package main

import (
	"fmt"
	"log"

	"koopmancrc"
)

func main() {
	// 1. Checksums under catalogued algorithms (validated against
	//    hash/crc32 in the test suite).
	data := []byte("hello, dependable networks")
	for _, alg := range []string{"CRC-32/IEEE-802.3", "CRC-32C/iSCSI", "CRC-32K/Koopman"} {
		sum, err := koopmancrc.Checksum(alg, data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %08X\n", alg, sum)
	}

	// 2. Inspect the paper's headline polynomial 0xBA0DC66B.
	p := koopmancrc.Koopman32K
	fmt.Printf("\npolynomial %v\n  normal form  %#x\n  algebraic    %s\n",
		p, p.In(koopmancrc.Normal), p.AlgebraicString())
	shape, err := p.Shape()
	if err != nil {
		log.Fatal(err)
	}
	period, err := p.Period()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  factorization %s, period %d, parity bit %v\n", shape, period, p.DivisibleByXPlus1())

	// 3. How many bit errors does it guarantee to catch at each length?
	rep, err := koopmancrc.Evaluate(p, 4096, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nguaranteed error detection (HD-1 bit errors always caught):")
	for _, b := range rep.Bands {
		ge := ""
		if b.AtLeast {
			ge = ">="
		}
		fmt.Printf("  data words %5d-%5d bits: HD %s%d\n", b.From, b.To, ge, b.HD)
	}

	// 4. Frame a payload and verify it survives the trip.
	frame, err := koopmancrc.AppendFCS(p, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframed %d payload bytes into %d-byte codeword, verify: %v\n",
		len(data), len(frame), koopmancrc.VerifyFCS(p, frame))
}

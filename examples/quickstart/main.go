// Quickstart: compute checksums with the crchash subpackage, inspect a
// polynomial, and read its error-detection profile through an Analyzer
// session.
package main

import (
	"context"
	"fmt"
	"log"

	"koopmancrc"
	"koopmancrc/crchash"
)

func main() {
	// 1. Checksums under catalogued algorithms (validated against
	//    hash/crc32 in the test suite). Engines are cached per
	//    algorithm, so calling this in a loop never rebuilds tables.
	data := []byte("hello, dependable networks")
	for _, alg := range []string{"CRC-32/IEEE-802.3", "CRC-32C/iSCSI", "CRC-32K/Koopman"} {
		sum, err := crchash.Checksum(alg, data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %08X\n", alg, sum)
	}

	// 2. Inspect the paper's headline polynomial 0xBA0DC66B through a
	//    long-lived analysis session.
	p := koopmancrc.Koopman32K
	an := koopmancrc.NewAnalyzer(p)
	fmt.Printf("\npolynomial %v\n  normal form  %#x\n  algebraic    %s\n",
		p, p.In(koopmancrc.Normal), p.AlgebraicString())
	shape, err := an.Shape()
	if err != nil {
		log.Fatal(err)
	}
	period, err := an.Period()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  factorization %s, period %d, parity bit %v\n", shape, period, an.ParityBit())

	// 3. How many bit errors does it guarantee to catch at each length?
	//    The session memoizes every boundary this discovers, so follow-up
	//    queries (HDAt, Witness, Select) are free where they overlap.
	ctx := context.Background()
	rep, err := an.Evaluate(ctx, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nguaranteed error detection (HD-1 bit errors always caught):")
	for _, b := range rep.Bands {
		ge := ""
		if b.AtLeast {
			ge = ">="
		}
		fmt.Printf("  data words %5d-%5d bits: HD %s%d\n", b.From, b.To, ge, b.HD)
	}

	// 4. Frame a payload and verify it survives the trip.
	frame, err := koopmancrc.AppendFCS(p, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframed %d payload bytes into %d-byte codeword, verify: %v\n",
		len(data), len(frame), koopmancrc.VerifyFCS(p, frame))
}

// iSCSI polynomial choice (paper §4.3): compares the CRC the iSCSI draft
// adopted (Castagnoli's {1,31} 0x8F6E37A0, later standardised as CRC-32C)
// with the paper's proposed {1,3,28} 0xBA0DC66B on MTU-sized storage
// frames, then demonstrates a concrete 4-bit corruption that slips past the
// draft polynomial but is caught by the proposed one.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"koopmancrc"
)

const mtuDataBits = 12112 // Ethernet MTU data word, the paper's yardstick

func main() {
	iscsi := koopmancrc.CastagnoliISCSI
	proposed := koopmancrc.Koopman32K

	fmt.Println("Hamming distance at iSCSI-relevant lengths:")
	fmt.Printf("%-12s %14s %14s\n", "data bits", iscsi.String(), proposed.String())
	for _, l := range []int{400, 4496, mtuDataBits} {
		hd1, _, err := koopmancrc.HammingDistanceAt(iscsi, l, 7)
		if err != nil {
			log.Fatal(err)
		}
		hd2, _, err := koopmancrc.HammingDistanceAt(proposed, l, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %14d %14d\n", l, hd1, hd2)
	}

	// Find a 4-bit error pattern the draft polynomial cannot see at MTU
	// length (it has HD=4 there, so such patterns exist).
	wit, found, err := koopmancrc.UndetectableWitness(iscsi, 4, mtuDataBits)
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		log.Fatal("expected a weight-4 failure for the draft polynomial at MTU length")
	}
	fmt.Printf("\nweight-4 pattern invisible to %v: codeword bit positions %v\n", iscsi, wit)

	// Build an MTU-sized storage frame and corrupt exactly those bits.
	rng := rand.New(rand.NewPCG(42, 1))
	payload := make([]byte, mtuDataBits/8)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	frameISCSI, err := koopmancrc.AppendFCS(iscsi, payload)
	if err != nil {
		log.Fatal(err)
	}
	if err := koopmancrc.CorruptCodeword(frameISCSI, wit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("draft iSCSI CRC still accepts the corrupted frame: %v\n",
		koopmancrc.VerifyFCS(iscsi, frameISCSI))

	frameProposed, err := koopmancrc.AppendFCS(proposed, payload)
	if err != nil {
		log.Fatal(err)
	}
	if err := koopmancrc.CorruptCodeword(frameProposed, wit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0xBA0DC66B rejects the same corruption:           %v\n",
		!koopmancrc.VerifyFCS(proposed, frameProposed))

	// The paper's bottom line.
	repI, err := koopmancrc.Evaluate(iscsi, 16384, &koopmancrc.EvaluateOptions{MaxHD: 7})
	if err != nil {
		log.Fatal(err)
	}
	repP, err := koopmancrc.Evaluate(proposed, 16384, &koopmancrc.EvaluateOptions{MaxHD: 7})
	if err != nil {
		log.Fatal(err)
	}
	lI, _ := repI.MaxLenAtHD(6)
	lP, _ := repP.MaxLenAtHD(6)
	fmt.Printf("\nHD=6 coverage: %v to %d bits vs %v to %d bits (paper: 5243 vs 16360)\n",
		iscsi, lI, proposed, lP)
}

// iSCSI polynomial choice (paper §4.3): compares the CRC the iSCSI draft
// adopted (Castagnoli's {1,31} 0x8F6E37A0, later standardised as CRC-32C)
// with the paper's proposed {1,3,28} 0xBA0DC66B on MTU-sized storage
// frames, then demonstrates a concrete 4-bit corruption that slips past the
// draft polynomial but is caught by the proposed one.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"koopmancrc"
)

const mtuDataBits = 12112 // Ethernet MTU data word, the paper's yardstick

func main() {
	ctx := context.Background()
	iscsi := koopmancrc.CastagnoliISCSI
	proposed := koopmancrc.Koopman32K

	// One analysis session per polynomial for the whole comparison: the
	// HD table, the witness hunt and the coverage summary below all
	// share the same cached boundary knowledge.
	anISCSI := koopmancrc.NewAnalyzer(iscsi, koopmancrc.WithMaxHD(7))
	anProposed := koopmancrc.NewAnalyzer(proposed, koopmancrc.WithMaxHD(7))

	fmt.Println("Hamming distance at iSCSI-relevant lengths:")
	fmt.Printf("%-12s %14s %14s\n", "data bits", iscsi.String(), proposed.String())
	for _, l := range []int{400, 4496, mtuDataBits} {
		hd1, _, err := anISCSI.HDAt(ctx, l)
		if err != nil {
			log.Fatal(err)
		}
		hd2, _, err := anProposed.HDAt(ctx, l)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %14d %14d\n", l, hd1, hd2)
	}

	// Find a 4-bit error pattern the draft polynomial cannot see at MTU
	// length (it has HD=4 there, so such patterns exist). The session
	// already met weight-4 patterns while answering HDAt, so this is a
	// cache hit, not a new search.
	wit, found, err := anISCSI.Witness(ctx, 4, mtuDataBits)
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		log.Fatal("expected a weight-4 failure for the draft polynomial at MTU length")
	}
	fmt.Printf("\nweight-4 pattern invisible to %v: codeword bit positions %v\n", iscsi, wit)

	// Build an MTU-sized storage frame and corrupt exactly those bits.
	rng := rand.New(rand.NewPCG(42, 1))
	payload := make([]byte, mtuDataBits/8)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	frameISCSI, err := koopmancrc.AppendFCS(iscsi, payload)
	if err != nil {
		log.Fatal(err)
	}
	if err := koopmancrc.CorruptCodeword(frameISCSI, wit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("draft iSCSI CRC still accepts the corrupted frame: %v\n",
		koopmancrc.VerifyFCS(iscsi, frameISCSI))

	frameProposed, err := koopmancrc.AppendFCS(proposed, payload)
	if err != nil {
		log.Fatal(err)
	}
	if err := koopmancrc.CorruptCodeword(frameProposed, wit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0xBA0DC66B rejects the same corruption:           %v\n",
		!koopmancrc.VerifyFCS(proposed, frameProposed))

	// The paper's bottom line, straight from the cached sessions.
	lI, _, err := anISCSI.MaxLenAtHD(ctx, 6, 16384)
	if err != nil {
		log.Fatal(err)
	}
	lP, _, err := anProposed.MaxLenAtHD(ctx, 6, 16384)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHD=6 coverage: %v to %d bits vs %v to %d bits (paper: 5243 vs 16360)\n",
		iscsi, lI, proposed, lP)
}

// Distributed design-space search (paper §4.2): the paper filtered the
// 2^30 32-bit candidates on ~50 idle workstations for three months. This
// example runs the same coordinator/worker architecture in-process — one
// coordinator, three workers over localhost TCP, lease-based fault
// tolerance — on the complete width-14 space, then prints the census.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"koopmancrc/internal/core"
	"koopmancrc/internal/dist"
)

func main() {
	spec := dist.SearchSpec{Width: 14, MinHD: 5, Lengths: []int{16, 57}}
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:         spec,
		JobSize:      512,
		LeaseTimeout: 10 * time.Second,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	fmt.Printf("coordinator on %s; searching width-%d space for HD>=%d at %d bits\n",
		coord.Addr(), spec.Width, spec.MinHD, spec.Lengths[len(spec.Lengths)-1])

	var wg sync.WaitGroup
	for _, id := range []string{"alpha", "beta", "gamma"} {
		// Each worker runs every job through the shared core.Pipeline
		// engine with its own intra-machine fan-out. A real deployment
		// runs one worker per machine with Parallelism 0 (= GOMAXPROCS)
		// to saturate it; here three workers share one process, so a
		// small fixed fan-out avoids oversubscribing the host.
		w := dist.NewWorker(coord.Addr(), dist.WorkerConfig{ID: id, Parallelism: 2})
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := w.Run(context.Background())
			if err != nil {
				log.Printf("worker: %v", err)
				return
			}
			fmt.Printf("worker %s finished %d jobs\n", id, n)
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	sum, err := coord.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\nevaluated %d canonical candidates across %d jobs (%d lease requeues)\n",
		sum.Canonical, sum.Jobs, sum.Requeues)
	fmt.Printf("survivors with HD>=%d at %d bits: %d\n", spec.MinHD, spec.Lengths[len(spec.Lengths)-1], len(sum.Survivors))
	census, err := core.Census(sum.Survivors)
	if err != nil {
		log.Fatal(err)
	}
	shapes := make([]string, 0, len(census))
	for s := range census {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	for _, s := range shapes {
		fmt.Printf("  %-16s %5d\n", s, census[s])
	}
	show := len(sum.Survivors)
	if show > 8 {
		show = 8
	}
	fmt.Printf("first %d survivors:", show)
	for _, p := range sum.Survivors[:show] {
		fmt.Printf(" %v", p)
	}
	fmt.Println()
}

// Distributed design-space search with durable checkpointing (paper
// §4.2): the paper filtered the 2^30 32-bit candidates on ~50 idle
// workstations for three months — at that scale a crashed coordinator
// must resume the sweep, not restart it from index zero. This example
// runs the coordinator/worker architecture in-process on the complete
// width-14 space and deliberately kills the coordinator halfway: the
// first coordinator journals every grant, completion and sizing
// decision to a checkpoint directory, dies mid-sweep, the orphaned
// journal is inspected read-only with dist.ReadStatus (what `crcsearch
// -mode status` prints), and a second coordinator resumes from the
// journal and finishes — with exactly-once accounting and a census
// identical to an uninterrupted run. Workers renew their leases with
// mid-job heartbeats that carry live candidate counts, feeding the
// coordinator's adaptive job sizing: each grant targets a fixed wall
// time per worker, so stragglers get smaller jobs instead of dominating
// tail latency. The many small jobs sizing produces are amortized on
// the wire by result batching: workers coalesce completed-job results
// into gzipped batch messages while heartbeats keep the held jobs'
// leases alive.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"koopmancrc/internal/core"
	"koopmancrc/internal/dist"
)

func main() {
	spec := dist.SearchSpec{Width: 14, MinHD: 5, Lengths: []int{16, 57}}
	checkpoint, err := os.MkdirTemp("", "distsearch-checkpoint-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(checkpoint)
	fmt.Printf("searching width-%d space for HD>=%d at %d bits; checkpoint in %s\n",
		spec.Width, spec.MinHD, spec.Lengths[len(spec.Lengths)-1], checkpoint)

	// Phase 1: a coordinator with a durable journal and adaptive job
	// sizing (each grant targets ~100ms of worker wall time, clamped so
	// the demo sweep still spans enough jobs to die in the middle of),
	// killed mid-sweep.
	coord, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:          spec,
		JobSize:       256,
		TargetJobTime: 100 * time.Millisecond,
		MinJobSize:    64,
		MaxJobSize:    512,
		LeaseTimeout:  10 * time.Second,
		CheckpointDir: checkpoint,
	})
	if err != nil {
		log.Fatal(err)
	}
	stopWorkers := runWorkers(coord.Addr())
	deadline := time.Now().Add(2 * time.Minute)
	for {
		done, total := coord.Progress()
		if done >= total/8 {
			fmt.Printf("\n--- killing coordinator at %d/%d indices ---\n\n", done, total)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("phase 1 stalled at %d/%d indices (workers dead?)", done, total)
		}
		time.Sleep(time.Millisecond)
	}
	coord.Close() // the "crash": workers are cut off, the journal is flushed
	stopWorkers()

	// Interlude: inspect the orphaned checkpoint read-only — exactly
	// what `crcsearch -mode status -checkpoint DIR` does for an
	// operator who cannot (or must not) attach to a live coordinator.
	st, err := dist.ReadStatus(checkpoint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status from journal: %d/%d jobs done, %d/%d indices (%d requeues, %d survivors so far)\n",
		st.DoneJobs, st.CarvedJobs, st.DoneIndices, st.TotalIndices, st.Requeues, st.Survivors)
	for _, w := range st.Workers {
		fmt.Printf("  worker %-6s jobs=%-3d rate~%.0f cand/s  current grant=%d indices\n",
			w.ID, w.JobsDone, w.Rate, w.LastGrantSize)
	}
	if st.ETA > 0 {
		fmt.Printf("  estimated remaining sweep time: %v\n", st.ETA.Round(time.Millisecond))
	}

	// Phase 2: a fresh coordinator resumes from the journal. Completed
	// jobs are restored from disk — along with each worker's throughput
	// estimate, so sizing picks up where it left off — and only the
	// remainder is re-leased.
	coord2, err := dist.NewCoordinator("127.0.0.1:0", dist.CoordinatorConfig{
		Spec:          spec,
		JobSize:       256,
		TargetJobTime: 100 * time.Millisecond,
		MinJobSize:    64,
		MaxJobSize:    512,
		LeaseTimeout:  10 * time.Second,
		CheckpointDir: checkpoint,
		Resume:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord2.Close()
	done, total := coord2.Progress()
	fmt.Printf("resumed: %d/%d indices already done on disk\n", done, total)
	stopWorkers2 := runWorkers(coord2.Addr())
	defer stopWorkers2()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	sum, err := coord2.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nevaluated %d canonical candidates across %d jobs (%d restored from checkpoint, %d lease requeues)\n",
		sum.Canonical, sum.Jobs, sum.Resumed, sum.Requeues)
	for _, st := range sum.Stages {
		fmt.Printf("stage %-16s in=%-6d out=%-6d (fleet compute %v)\n", st.Name, st.In, st.Out, st.Elapsed)
	}
	fmt.Printf("survivors with HD>=%d at %d bits: %d\n", spec.MinHD, spec.Lengths[len(spec.Lengths)-1], len(sum.Survivors))
	census, err := core.Census(sum.Survivors)
	if err != nil {
		log.Fatal(err)
	}
	shapes := make([]string, 0, len(census))
	for s := range census {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	for _, s := range shapes {
		fmt.Printf("  %-16s %5d\n", s, census[s])
	}
	show := len(sum.Survivors)
	if show > 8 {
		show = 8
	}
	fmt.Printf("first %d survivors:", show)
	for _, p := range sum.Survivors[:show] {
		fmt.Printf(" %v", p)
	}
	fmt.Println()
}

// runWorkers starts three TCP workers against a coordinator and returns
// a stop function that cancels them and waits for them to exit. Each
// worker runs every job through the shared core.Pipeline engine. A real
// deployment runs one worker per machine with Parallelism 0
// (= GOMAXPROCS) to saturate it; here three workers share one process,
// so a small fixed fan-out avoids oversubscribing the host.
func runWorkers(addr string) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, id := range []string{"alpha", "beta", "gamma"} {
		// ResultBatch 4: up to four completed jobs travel as one gzipped
		// result_batch message (the default is 8; 1 disables coalescing).
		w := dist.NewWorker(addr, dist.WorkerConfig{ID: id, Parallelism: 2, ResultBatch: 4})
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := w.Run(ctx)
			if err != nil {
				// Expected when the coordinator is killed mid-sweep.
				fmt.Printf("worker %s stopped after %d jobs: %v\n", id, n, err)
				return
			}
			fmt.Printf("worker %s finished %d jobs (%d batched sends)\n", id, n, w.BatchesSent())
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

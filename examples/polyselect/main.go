// Polynomial selection for a custom protocol (paper §5: "identifying
// optimal polynomials that are customized to the particular message lengths
// of specific applications"). Ranks the paper's Table 1 polynomials for
// three application profiles and runs a small exhaustive search for an
// embedded 12-bit CRC.
package main

import (
	"context"
	"fmt"
	"log"

	"koopmancrc"
)

func main() {
	// Short frames rank all eight Table 1 polynomials; the longer profiles
	// use a shortlist because coverage exploration at 32K-bit boundaries
	// costs tens of seconds per HD=6 candidate (see EXPERIMENTS.md).
	apps := []struct {
		name       string
		bits       int
		candidates []koopmancrc.Polynomial
	}{
		{"TCP ack (40 B)", 400, koopmancrc.Table1Polynomials()},
		{"512 B storage block", 4496, []koopmancrc.Polynomial{
			koopmancrc.IEEE8023, koopmancrc.CastagnoliISCSI,
			koopmancrc.Koopman32K, koopmancrc.CastagnoliHD5,
		}},
		{"Ethernet MTU frame", 12112, []koopmancrc.Polynomial{
			koopmancrc.IEEE8023, koopmancrc.CastagnoliISCSI, koopmancrc.Koopman32K,
		}},
	}
	ctx := context.Background()
	for _, app := range apps {
		ranked, err := koopmancrc.Select(ctx, app.candidates, app.bits, koopmancrc.WithMaxHD(8))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d data bits):\n", app.name, app.bits)
		for i, s := range ranked[:3] {
			fmt.Printf("  %d. %v  HD=%d holds to %d bits\n", i+1, s.Poly, s.HD, s.CoverageAtHD)
		}
	}

	// An embedded network with 48-bit frames wants the best 12-bit CRC:
	// search the whole width-12 design space (2^11 candidates) for the
	// highest HD at 48 bits.
	fmt.Println("\nexhaustive width-12 search for 48-bit frames:")
	for hd := 6; hd >= 4; hd-- {
		res, err := koopmancrc.Search(ctx, koopmancrc.SearchConfig{
			Width: 12, MinHD: hd, Lengths: []int{16, 48},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  HD>=%d at 48 bits: %d of %d candidates", hd, len(res.Survivors), res.Candidates)
		if len(res.Survivors) > 0 {
			fmt.Printf(" — e.g. %v", res.Survivors[0])
			fmt.Printf(" (census %v)", res.CensusByShape)
			fmt.Println()
			break
		}
		fmt.Println()
	}
}

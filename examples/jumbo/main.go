// Gigabit Ethernet jumbo frames (paper §4.4): 9000-byte payloads form a
// 72,112-bit data word, far beyond the standard MTU. This example shows
// what each polynomial still guarantees at that length and why the paper
// suggests 0xBA0DC66B for beyond-1-Gb/s Ethernet generations.
package main

import (
	"context"
	"fmt"
	"log"

	"koopmancrc"
)

const jumboDataBits = 72112 // 9000-byte jumbo payload + headers

func main() {
	ctx := context.Background()
	polys := []koopmancrc.Polynomial{
		koopmancrc.IEEE8023,        // legacy Ethernet CRC
		koopmancrc.CastagnoliISCSI, // CRC-32C
		koopmancrc.Koopman32K,      // the paper's proposal
		koopmancrc.Castagnoli1131515,
	}
	fmt.Printf("error detection at jumbo length (%d data bits):\n", jumboDataBits)
	for _, p := range polys {
		// MaxHD 4 keeps the session cheap: the jumbo question is only
		// whether HD=4 still holds at 72,112 bits.
		an := koopmancrc.NewAnalyzer(p, koopmancrc.WithMaxHD(4))
		rep, err := an.Evaluate(ctx, jumboDataBits)
		if err != nil {
			log.Fatal(err)
		}
		hd, atLeast, ok := rep.HDAt(jumboDataBits)
		if !ok {
			log.Fatalf("%v: no band at jumbo length", p)
		}
		ge := ""
		if atLeast {
			ge = ">="
		}
		fmt.Printf("  %v: HD%s%d at jumbo length", p, ge, hd)
		// The coverage question hits the boundaries Evaluate just cached.
		if l, ok, err := an.MaxLenAtHD(ctx, 4, jumboDataBits); err != nil {
			log.Fatal(err)
		} else if ok {
			fmt.Printf(" (HD>=4 through %d bits)", l)
		} else {
			fmt.Printf(" (HD>=4 lost before jumbo length)")
		}
		fmt.Println()
	}
	fmt.Println("\npaper §4.4: 0xBA0DC66B keeps HD=4 to 114,663 bits — more than 9x an")
	fmt.Println("Ethernet MTU and comfortably past the 72,112-bit jumbo data word, while")
	fmt.Println("0xFA567D89 has already fallen to HD=2 there.")
}

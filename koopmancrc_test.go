package koopmancrc

import (
	"context"
	"hash/crc32"
	"testing"
)

func TestParseAndNotations(t *testing.T) {
	p, err := ParsePolynomial(32, Koopman, "0xBA0DC66B")
	if err != nil {
		t.Fatal(err)
	}
	if p != Koopman32K {
		t.Fatalf("parsed %v", p)
	}
	if p.In(Normal) != 0x741B8CD7 || p.In(Reversed) != 0xEB31D82E {
		t.Errorf("notations: normal %#x reversed %#x", p.In(Normal), p.In(Reversed))
	}
	if _, err := ParsePolynomial(32, Koopman, "xyz"); err == nil {
		t.Error("expected parse error")
	}
}

func TestEvaluate8023Short(t *testing.T) {
	rep, err := Evaluate(IEEE8023, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shape != "{32}" || rep.ParityBit {
		t.Errorf("shape %s parity %v", rep.Shape, rep.ParityBit)
	}
	hd, atLeast, ok := rep.HDAt(400) // 40-byte ack packet
	if !ok || atLeast || hd != 5 {
		t.Errorf("HD at 400 bits = %d (atLeast=%v ok=%v), want exactly 5", hd, atLeast, ok)
	}
	if l, ok := rep.MaxLenAtHD(6); !ok || l != 268 {
		t.Errorf("MaxLenAtHD(6) = %d, want 268", l)
	}
}

func TestHammingDistanceAt(t *testing.T) {
	hd, exact, err := HammingDistanceAt(Koopman32K, 1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !exact || hd != 6 {
		t.Errorf("HD = %d exact=%v, want 6", hd, exact)
	}
}

func TestUndetectableWeightAndWitness(t *testing.T) {
	w4, err := UndetectableWeight(IEEE8023, 4, 2975)
	if err != nil {
		t.Fatal(err)
	}
	if w4 != 1 {
		t.Errorf("W4(2975) = %d, want 1 (paper §4.1)", w4)
	}
	wit, found, err := UndetectableWitness(IEEE8023, 4, 2975)
	if err != nil || !found || len(wit) != 4 {
		t.Errorf("witness = %v found=%v err=%v", wit, found, err)
	}
	_, found, err = UndetectableWitness(Koopman32K, 4, 2975)
	if err != nil || found {
		t.Errorf("0xBA0DC66B should have no 4-bit failures at 2975 bits (found=%v err=%v)", found, err)
	}
}

func TestSelectPolynomialPrefersKoopmanAtISCSILengths(t *testing.T) {
	// §4.3: at MTU-ish lengths 0xBA0DC66B (HD=6) beats the drafted iSCSI
	// polynomial 0x8F6E37A0 (HD=4). Use a shorter length for test speed:
	// at 4096 bits the iSCSI polynomial already has HD=6 but 0xBA0DC66B
	// holds HD=6 further (16360 vs 5243).
	ranked, err := SelectPolynomial([]Polynomial{CastagnoliISCSI, Koopman32K, IEEE8023}, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Poly != Koopman32K {
		t.Fatalf("ranked[0] = %v, want 0xBA0DC66B", ranked[0].Poly)
	}
	if ranked[0].HD != 6 || ranked[0].CoverageAtHD != 16360 {
		t.Errorf("best: HD=%d coverage=%d, want 6/16360", ranked[0].HD, ranked[0].CoverageAtHD)
	}
	if ranked[1].Poly != CastagnoliISCSI || ranked[1].CoverageAtHD != 5243 {
		t.Errorf("second: %v coverage %d, want iSCSI/5243", ranked[1].Poly, ranked[1].CoverageAtHD)
	}
	if ranked[2].Poly != IEEE8023 || ranked[2].HD != 4 {
		t.Errorf("third: %v HD %d, want 802.3/4", ranked[2].Poly, ranked[2].HD)
	}
	if _, err := SelectPolynomial(nil, 100, 8); err == nil {
		t.Error("empty candidates should error")
	}
}

func TestSearchSmallWidth(t *testing.T) {
	res, err := Search(context.Background(), SearchConfig{
		Width: 8, MinHD: 4, Lengths: []int{9, 19},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Survivors) == 0 {
		t.Fatal("expected survivors")
	}
	if res.Candidates != 72 { // canonical width-8 candidates
		t.Errorf("candidates = %d, want 72", res.Candidates)
	}
	total := 0
	for _, n := range res.CensusByShape {
		total += n
	}
	if total != len(res.Survivors) {
		t.Errorf("census sums to %d, survivors %d", total, len(res.Survivors))
	}
	// Every survivor must genuinely achieve the HD.
	for _, p := range res.Survivors {
		hd, _, err := HammingDistanceAt(p, 19, 6)
		if err != nil {
			t.Fatal(err)
		}
		if hd < 4 {
			t.Errorf("survivor %v has HD %d at 19 bits", p, hd)
		}
	}
	if res.PolysPerSecond <= 0 {
		t.Error("throughput should be positive")
	}
}

func TestSearchParallelismMatchesSequential(t *testing.T) {
	seq, err := Search(context.Background(), SearchConfig{
		Width: 10, MinHD: 4, Lengths: []int{11, 25}, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Search(context.Background(), SearchConfig{
		Width: 10, MinHD: 4, Lengths: []int{11, 25}, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Candidates != seq.Candidates || len(par.Survivors) != len(seq.Survivors) {
		t.Fatalf("parallel %d/%d, sequential %d/%d",
			par.Candidates, len(par.Survivors), seq.Candidates, len(seq.Survivors))
	}
	for i := range par.Survivors {
		if par.Survivors[i] != seq.Survivors[i] {
			t.Errorf("survivor %d: %v vs %v", i, par.Survivors[i], seq.Survivors[i])
		}
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(context.Background(), SearchConfig{Width: 99, MinHD: 4, Lengths: []int{8}}); err == nil {
		t.Error("bad width should error")
	}
	if _, err := Search(context.Background(), SearchConfig{Width: 8, MinHD: 1, Lengths: []int{8}}); err == nil {
		t.Error("bad MinHD should error")
	}
	if _, err := Search(context.Background(), SearchConfig{Width: 8, MinHD: 4}); err == nil {
		t.Error("missing lengths should error")
	}
}

func TestChecksumMatchesStdlib(t *testing.T) {
	data := []byte("The quick brown fox jumps over the lazy dog")
	got, err := Checksum("CRC-32/IEEE-802.3", data)
	if err != nil {
		t.Fatal(err)
	}
	if want := crc32.ChecksumIEEE(data); got != want {
		t.Errorf("Checksum = %#x, want %#x", got, want)
	}
	got, err = Checksum("CRC-32C/iSCSI", data)
	if err != nil {
		t.Fatal(err)
	}
	if want := crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli)); got != want {
		t.Errorf("CRC-32C = %#x, want %#x", got, want)
	}
	if _, err := Checksum("nope", data); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestNewEngineStreaming(t *testing.T) {
	e, err := NewEngine("CRC-32K/Koopman")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("streaming interface check")
	s := e.Update(e.Init(), data[:7])
	s = e.Update(s, data[7:])
	if e.Finalize(s) != e.Checksum(data) {
		t.Error("streaming disagrees with one-shot")
	}
	if len(Algorithms()) < 5 {
		t.Errorf("catalogue too small: %v", Algorithms())
	}
}

func TestTable1Polynomials(t *testing.T) {
	ps := Table1Polynomials()
	if len(ps) != 8 {
		t.Fatalf("%d polynomials, want 8", len(ps))
	}
	if ps[0] != IEEE8023 || ps[2] != Koopman32K {
		t.Error("unexpected column order")
	}
}

func TestFrameHelpers(t *testing.T) {
	payload := []byte("frame helper payload bytes")
	frame, err := AppendFCS(IEEE8023, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyFCS(IEEE8023, frame) {
		t.Fatal("freshly framed codeword should verify")
	}
	// A single-bit error is always caught.
	if err := CorruptCodeword(frame, []int{5}); err != nil {
		t.Fatal(err)
	}
	if VerifyFCS(IEEE8023, frame) {
		t.Fatal("single-bit error must be detected")
	}
	if err := CorruptCodeword(frame, []int{5}); err != nil {
		t.Fatal(err)
	}
	// An undetectable witness pattern is, by construction, not caught.
	wit, found, err := UndetectableWitness(IEEE8023, 4, len(payload)*8)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		if err := CorruptCodeword(frame, wit); err != nil {
			t.Fatal(err)
		}
		if !VerifyFCS(IEEE8023, frame) {
			t.Fatal("witness pattern should pass the CRC undetected")
		}
	}
	if _, err := AppendFCS(MustPolynomial(5, Normal, "0x05"), payload); err == nil {
		t.Error("non-byte width should error")
	}
}
